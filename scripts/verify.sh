#!/bin/sh
# Repository verification: formatting, vet, static analysis, build, then
# race-checked tests on the concurrency-heavy packages (executors,
# scheduler, cluster), and finally an end-to-end netlist lint of a
# compiled benchmark program.
set -eux

cd "$(dirname "$0")/.."

# gofmt must be a no-op over the whole module (testdata fixtures included).
fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_diff" >&2
    exit 1
fi

go vet ./...
go build ./...

# Crypto-safety and concurrency static analysis over the module.
go run ./cmd/pytfhelint ./...

go test -race ./internal/exec/... ./internal/backend/... ./internal/sched/... \
    ./internal/cluster/... ./internal/serve/... ./internal/wire/... ./internal/plan/...

# End-to-end: compile a VIP-Bench kernel, lint the emitted binary, then
# run the semantic analyses over it and the bench netlist: noise-budget
# dataflow plus plan-soundness verification (`pytfhe check`).
tmp=$(mktemp -d)
daemon_pid=
worker_pids=
trap 'for p in $daemon_pid $worker_pids; do kill "$p" 2>/dev/null || true; done; rm -rf "$tmp"' EXIT
go run ./cmd/pytfhe compile -bench hamming-distance -out "$tmp/prog.ptfhe"
go run ./cmd/pytfhe lint "$tmp/prog.ptfhe"
go run ./cmd/pytfhe check -bench -prog "$tmp/prog.ptfhe"

# End-to-end serving: start pytfhed on a random port, run one encrypted
# evaluation through the registry/session/executor path, then drain it
# with SIGTERM and require a clean exit.
go build -o "$tmp/pytfhed" ./cmd/pytfhed
go build -o "$tmp/pytfhe" ./cmd/pytfhe
"$tmp/pytfhe" keygen -params test -out "$tmp/keys"
"$tmp/pytfhed" -listen 127.0.0.1:0 -addr-file "$tmp/addr" -workers 2 \
    -metrics-addr 127.0.0.1:0 -metrics-addr-file "$tmp/maddr" &
daemon_pid=$!
i=0
while [ ! -s "$tmp/addr" ] || [ ! -s "$tmp/maddr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "pytfhed never wrote its address" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr")
maddr=$(cat "$tmp/maddr")
# Hamming distance of a 64-bit word with itself is zero: 7 output bits,
# all clear.
word=1011001110001111000010100110010111010010001101011100101000110111
out=$("$tmp/pytfhe" eval -server "$addr" -keys "$tmp/keys" \
    -prog "$tmp/prog.ptfhe" -in "$word$word" | grep '^outputs:')
[ "$out" = "outputs: 0000000" ]
# /metrics must serve valid Prometheus text and already reflect the first
# evaluation.
curl -fsS "http://$maddr/metrics" >"$tmp/m1"
grep -q '^# TYPE pytfhed_evaluations_total counter$' "$tmp/m1"
grep -q '^pytfhed_evaluations_total 1$' "$tmp/m1"
grep -q '^# TYPE pytfhed_request_latency_ms histogram$' "$tmp/m1"
grep -q '^pytfhed_cache_bytes{cache="plan"}' "$tmp/m1"
# A second evaluation of the same program must hit the server's plan cache:
# the first request paid the capture (one miss), the repeat replays it.
out=$("$tmp/pytfhe" eval -server "$addr" -keys "$tmp/keys" \
    -prog "$tmp/prog.ptfhe" -in "$word$word" | grep '^outputs:')
[ "$out" = "outputs: 0000000" ]
"$tmp/pytfhe" server-stats -server "$addr" | tee "$tmp/stats"
grep -q 'plan cache: 1 hits, 1 misses' "$tmp/stats"
# Registration ran the static noise analysis; its per-program summary
# must ride the Stats RPC.
grep -q 'noise: .* bits headroom under default128' "$tmp/stats"
# The key series moved with the second evaluation, and the plan-cache hit
# is visible both as a counter and in the JSON stats snapshot.
curl -fsS "http://$maddr/metrics" >"$tmp/m2"
grep -q '^pytfhed_evaluations_total 2$' "$tmp/m2"
grep -q '^pytfhed_cache_hits_total{cache="plan"} 1$' "$tmp/m2"
grep -q 'outcome="ok"} 2$' "$tmp/m2"
"$tmp/pytfhe" server-stats -server "$addr" -json | tee "$tmp/stats.json"
grep -q '"Evaluations": 2' "$tmp/stats.json"
grep -q '"PlanCache"' "$tmp/stats.json"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=

# End-to-end sharded cluster: a fresh pytfhed with a cluster coordinator,
# two pytfhe-worker processes, and two evaluations of the same program.
# The first ships the plan shards (misses), the second must replay them
# from the workers' caches (hits); both decrypt to the same bits.
go build -o "$tmp/pytfhe-worker" ./cmd/pytfhe-worker
"$tmp/pytfhed" -listen 127.0.0.1:0 -addr-file "$tmp/addr2" -workers 2 \
    -cluster-listen 127.0.0.1:0 -cluster-addr-file "$tmp/caddr" -cluster-workers 2 &
daemon_pid=$!
i=0
while [ ! -s "$tmp/caddr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "pytfhed never wrote its cluster address" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr2")
caddr=$(cat "$tmp/caddr")
"$tmp/pytfhe-worker" -join "$caddr" -slots 2 &
worker_pids="$!"
"$tmp/pytfhe-worker" -join "$caddr" -slots 2 &
worker_pids="$worker_pids $!"
out1=$("$tmp/pytfhe" eval -server "$addr" -keys "$tmp/keys" \
    -prog "$tmp/prog.ptfhe" -in "$word$word" | grep '^outputs:')
out2=$("$tmp/pytfhe" eval -server "$addr" -keys "$tmp/keys" \
    -prog "$tmp/prog.ptfhe" -in "$word$word" | grep '^outputs:')
[ "$out1" = "outputs: 0000000" ]
[ "$out2" = "$out1" ]
"$tmp/pytfhe" server-stats -server "$addr" | tee "$tmp/cstats"
# Both evaluations rode the worker pool, and the second found every shard
# already resident (cache hit — nothing reshipped).
grep -q 'cluster: 2 workers (0 lost) — 2 sharded evaluations' "$tmp/cstats"
grep -q 'shards: 2 hits, 2 misses, 0 reships' "$tmp/cstats"
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=
for p in $worker_pids; do
    wait "$p" 2>/dev/null || true
done
worker_pids=

# End-to-end multi-bit LUT serving: compile a clusterable VIP-Bench
# kernel classically, then register it with a -lut daemon. Admission
# re-synthesizes it into k-input programmable bootstraps (the stats
# surface must show a nonzero LUT count) and the encrypted outputs must
# match a local classic run bit for bit — the rewrite is exact.
go run ./cmd/pytfhe compile -bench parrondo -out "$tmp/parrondo.ptfhe"
pin=101101110010
ref=$("$tmp/pytfhe" run -prog "$tmp/parrondo.ptfhe" -keys "$tmp/keys" \
    -in "$pin" | grep '^outputs:')
"$tmp/pytfhed" -listen 127.0.0.1:0 -addr-file "$tmp/addr3" -workers 2 -lut &
daemon_pid=$!
i=0
while [ ! -s "$tmp/addr3" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "pytfhed -lut never wrote its address" >&2
        exit 1
    fi
    sleep 0.1
done
addr=$(cat "$tmp/addr3")
out=$("$tmp/pytfhe" eval -server "$addr" -keys "$tmp/keys" \
    -prog "$tmp/parrondo.ptfhe" -in "$pin" | grep '^outputs:')
[ "$out" = "$ref" ]
"$tmp/pytfhe" server-stats -server "$addr" | tee "$tmp/lstats"
grep -Eq '^luts: [1-9][0-9]* multi-input LUT gates evaluated' "$tmp/lstats"
"$tmp/pytfhe" server-stats -server "$addr" -json | grep -Eq '"LUTsEvaluated": [1-9]'
kill -TERM "$daemon_pid"
wait "$daemon_pid"
daemon_pid=
