#!/bin/sh
# Repository verification: formatting, vet, static analysis, build, then
# race-checked tests on the concurrency-heavy packages (executors,
# scheduler, cluster), and finally an end-to-end netlist lint of a
# compiled benchmark program.
set -eux

cd "$(dirname "$0")/.."

# gofmt must be a no-op over the whole module (testdata fixtures included).
fmt_diff=$(gofmt -l .)
if [ -n "$fmt_diff" ]; then
    echo "gofmt needed on:" >&2
    echo "$fmt_diff" >&2
    exit 1
fi

go vet ./...
go build ./...

# Crypto-safety and concurrency static analysis over the module.
go run ./cmd/pytfhelint ./...

go test -race ./internal/backend/... ./internal/sched/... ./internal/cluster/...

# End-to-end: compile a VIP-Bench kernel and lint the emitted binary.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/pytfhe compile -bench hamming-distance -out "$tmp/prog.ptfhe"
go run ./cmd/pytfhe lint "$tmp/prog.ptfhe"
