#!/bin/sh
# Repository verification: vet, build, then race-checked tests on the
# concurrency-heavy packages (executors, scheduler, cluster).
set -eux

cd "$(dirname "$0")/.."

go vet ./...
go build ./...
go test -race ./internal/backend/... ./internal/sched/... ./internal/cluster/...
