module pytfhe

go 1.22
