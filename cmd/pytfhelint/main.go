// Command pytfhelint runs the PyTFHE static-analysis suite (internal/lint)
// over the module:
//
//	pytfhelint ./...          # analyze the module containing the cwd
//	pytfhelint /path/to/mod   # analyze the module at that root
//	pytfhelint -list          # show the analyzers and exit
//
// The suite type-checks every package with only the standard library and
// reports crypto-safety and concurrency-hygiene defects: insecure-rand,
// discarded-error, locked-bootstrap, leaked-ciphertext,
// unsynced-exec-state and batch-alias. Exit status is 0 when no findings
// survive, 1 when findings are reported, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"pytfhe/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: pytfhelint [-list] [./... | <module-root>]")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-18s %s\n", a.Name(), a.Doc())
		}
		return
	}

	root, err := resolveRoot(flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "pytfhelint: %v\n", err)
		os.Exit(2)
	}
	mod, err := lint.LoadModule(root)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pytfhelint: %v\n", err)
		os.Exit(2)
	}
	findings := lint.Run(mod, lint.Analyzers())
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "pytfhelint: %d finding(s) in %s\n", len(findings), mod.Path)
		os.Exit(1)
	}
	fmt.Printf("pytfhelint: %s clean (%d packages, %d analyzers)\n",
		mod.Path, len(mod.Packages), len(lint.Analyzers()))
}

// resolveRoot maps the argument list to a module root: no argument or the
// conventional "./..." analyzes the module containing the working
// directory (walking up to the nearest go.mod); a path argument is used
// directly.
func resolveRoot(args []string) (string, error) {
	start := "."
	if len(args) > 1 {
		return "", fmt.Errorf("at most one target, got %d", len(args))
	}
	if len(args) == 1 && args[0] != "./..." && args[0] != "..." {
		start = filepath.Clean(args[0])
	}
	dir, err := filepath.Abs(start)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", start)
		}
		dir = parent
	}
}
