// Command pytfhed is the persistent PyTFHE evaluation daemon: a
// multi-tenant TCP server with a program registry (upload a PyTFHE binary
// once, evaluate it many times), per-session cloud keys, a bounded
// admission queue with ErrOverloaded backpressure, and one shared
// dependency-driven executor interleaving gates from concurrent requests.
//
//	pytfhed -listen 127.0.0.1:7701 -workers 8 -max-concurrent 16 -queue 64
//
// SIGTERM/SIGINT triggers a graceful drain: the daemon stops accepting,
// finishes in-flight evaluations, then exits. Clients use the `pytfhe`
// subcommands register, eval and server-stats, or serve.Client in Go.
package main

import (
	"fmt"
	"os"

	"pytfhe/internal/serve"
)

func main() {
	if err := serve.RunDaemon(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pytfhed: %v\n", err)
		os.Exit(1)
	}
}
