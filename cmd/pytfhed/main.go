// Command pytfhed is the persistent PyTFHE evaluation daemon: a
// multi-tenant TCP server with a program registry (upload a PyTFHE binary
// once, evaluate it many times), per-session cloud keys, a bounded
// admission queue with ErrOverloaded backpressure, and one shared
// dependency-driven executor interleaving gates from concurrent requests.
//
//	pytfhed -listen 127.0.0.1:7701 -workers 8 -max-concurrent 16 -queue 64
//
// Multi-tenant QoS and observability (internal/qos, internal/telemetry):
//
//	pytfhed -metrics-addr 127.0.0.1:9090 \
//	        -plan-cache-bytes 8388608 -runtime-cache-bytes 67108864 \
//	        -tenant-max-inflight 4 -tenant-max-queued-gates 4096 \
//	        -tenant-weight ab12cd34=4
//
// Tenants are identified by their cloud-key hash; the shared executor
// serves them with start-time fair queuing weighted by -tenant-weight,
// per-tenant quotas reject excess load with a typed quota error, and the
// compiled-plan and replay-runner caches evict coldest-first under their
// byte caps. /metrics on -metrics-addr exports Prometheus text.
//
// SIGTERM/SIGINT triggers a graceful drain: the daemon stops accepting,
// finishes in-flight evaluations, then exits. Clients use the `pytfhe`
// subcommands register, eval and server-stats, or serve.Client in Go.
package main

import (
	"fmt"
	"os"

	"pytfhe/internal/serve"
)

func main() {
	if err := serve.RunDaemon(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "pytfhed: %v\n", err)
		os.Exit(1)
	}
}
