// Command pytfhe-worker joins a PyTFHE cluster as an evaluation worker: it
// dials the coordinator (retrying with capped backoff while it comes up),
// receives the broadcast cloud key, and serves bootstrapped-gate jobs and
// cached plan shards until the coordinator shuts down — the role a Ray
// actor plays in the paper's distributed CPU backend.
//
//	pytfhe-worker -join 10.0.0.1:7700 -slots 18 -shard-cache 8
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pytfhe/internal/cluster"
)

func main() {
	join := flag.String("join", "127.0.0.1:7700", "coordinator address")
	slots := flag.Int("slots", runtime.NumCPU(), "parallel gate engines to run")
	shardCache := flag.Int("shard-cache", cluster.DefaultShardCache, "plan shards to keep cached across runs (LRU)")
	dialTimeout := flag.Duration("dial-timeout", cluster.DefaultDialTimeout, "total budget for dial retries before giving up")
	flag.Parse()

	fmt.Printf("pytfhe-worker: joining %s with %d slots\n", *join, *slots)
	w := cluster.NewWorker(*slots)
	w.ShardCache = *shardCache
	w.DialTimeout = *dialTimeout
	if err := w.Serve(*join); err != nil {
		fmt.Fprintf(os.Stderr, "pytfhe-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("pytfhe-worker: coordinator closed the session, exiting")
}
