// Command pytfhe-worker joins a PyTFHE cluster as an evaluation worker: it
// dials the coordinator, receives the broadcast cloud key, and serves
// bootstrapped-gate jobs until the coordinator shuts down — the role a Ray
// actor plays in the paper's distributed CPU backend.
//
//	pytfhe-worker -join 10.0.0.1:7700 -slots 18
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"

	"pytfhe/internal/cluster"
)

func main() {
	join := flag.String("join", "127.0.0.1:7700", "coordinator address")
	slots := flag.Int("slots", runtime.NumCPU(), "parallel gate engines to run")
	flag.Parse()

	fmt.Printf("pytfhe-worker: joining %s with %d slots\n", *join, *slots)
	w := cluster.NewWorker(*slots)
	if err := w.Serve(*join); err != nil {
		fmt.Fprintf(os.Stderr, "pytfhe-worker: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("pytfhe-worker: coordinator closed the session, exiting")
}
