//go:build !race

package main

// raceEnabled mirrors the race detector's build tag so throughput-heavy
// agreement targets can be skipped under -race (the small targets exercise
// the same code paths and keep the race coverage).
const raceEnabled = false
