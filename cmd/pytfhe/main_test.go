package main

import (
	"math"
	"strings"
	"testing"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/experiments"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/noise"
)

func TestParseBits(t *testing.T) {
	bits, err := parseBits("10 1,1 0")
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, true, false}
	if len(bits) != len(want) {
		t.Fatalf("parsed %d bits", len(bits))
	}
	for i := range want {
		if bits[i] != want[i] {
			t.Fatalf("bit %d = %v", i, bits[i])
		}
	}
	if _, err := parseBits("10x"); err == nil {
		t.Fatal("invalid character accepted")
	}
}

func TestFormatBits(t *testing.T) {
	if got := formatBits([]bool{true, false, true}); got != "101" {
		t.Fatalf("formatBits = %q", got)
	}
}

func TestParseDType(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"sint8", "SInt(8)"},
		{"fixed8.8", "Fixed(8,8)"},
		{"float5.11", "Float(5,11)"},
	}
	for _, c := range cases {
		dt, err := parseDType(c.in)
		if err != nil {
			t.Fatalf("%s: %v", c.in, err)
		}
		if dt.Name() != c.want {
			t.Fatalf("%s -> %s, want %s", c.in, dt.Name(), c.want)
		}
	}
	for _, bad := range []string{"", "int8", "fixed8", "float8", "sint0", "sint-3"} {
		if _, err := parseDType(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	var _ chiseltorch.DType // dtype interface is the contract under test
}

func TestParseBackendSpec(t *testing.T) {
	cases := []struct {
		in      string
		workers int
		kind    string
		count   int
	}{
		{"auto", 1, "single", 1},
		{"auto", 4, "async", 4}, // async is the default multi-worker executor
		{"auto:6", 1, "async", 6},
		{"single", 8, "single", 1},
		{"pool", 3, "pool", 3},
		{"pool:5", 1, "pool", 5},
		{"async", 2, "async", 2},
		{"async:7", 1, "async", 7},
		{"async", 0, "async", 1},
	}
	for _, c := range cases {
		spec, err := parseBackendSpec(c.in, c.workers)
		if err != nil {
			t.Fatalf("%s/%d: %v", c.in, c.workers, err)
		}
		if spec.kind != c.kind || spec.workers != c.count {
			t.Fatalf("%s/%d -> %+v, want %s:%d", c.in, c.workers, spec, c.kind, c.count)
		}
	}
	for _, bad := range []string{"", "ray", "pool:", "pool:x", "async:0", "async:-2"} {
		if _, err := parseBackendSpec(bad, 1); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
}

func TestParamSet(t *testing.T) {
	for _, name := range []string{"test", "default128", "default"} {
		if _, err := paramSet(name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := paramSet("bogus"); err == nil {
		t.Fatal("unknown set accepted")
	}
}

// TestCheckTargets drives the `pytfhe check` analyses over the quickstart
// example and the bench netlist: both must pass the noise budget with
// positive headroom and verify as sound plans under the production
// parameter set — the acceptance bar the CLI command enforces.
func TestCheckTargets(t *testing.T) {
	ex, err := exampleNetlists()
	if err != nil {
		t.Fatal(err)
	}
	targets := []checkTarget{{"bench/ripple-imbalanced", experiments.ImbalancedNetlist()}}
	for _, tg := range ex {
		if tg.name == "examples/quickstart" {
			targets = append(targets, tg)
		}
	}
	if len(targets) != 2 {
		t.Fatalf("quickstart target missing from %d example netlists", len(ex))
	}
	p := params.Default128()
	for _, tg := range targets {
		rep, err := noise.AnalyzeNetlist(tg.nl, p, 0)
		if err != nil {
			t.Fatalf("%s: %v", tg.name, err)
		}
		if err := rep.Err(); err != nil {
			t.Fatalf("%s over budget: %v", tg.name, err)
		}
		if rep.HeadroomBits <= 0 {
			t.Fatalf("%s: headroom %.3f bits, want > 0", tg.name, rep.HeadroomBits)
		}
		if err := checkNetlist(tg.nl, p, 0, 4, 16); err != nil {
			t.Fatalf("%s: %v", tg.name, err)
		}
	}
}

// TestCheckRejectsOverBudget pins the failure path: under a degraded
// parameter set the bench netlist blows the sigma floor and checkNetlist
// surfaces the noise error instead of proceeding to plan verification.
func TestCheckRejectsOverBudget(t *testing.T) {
	degraded := *params.Test()
	degraded.Name = "degraded"
	degraded.LWEStdev = math.Exp2(-8)
	err := checkNetlist(experiments.ImbalancedNetlist(), &degraded, 0, 4, 16)
	if err == nil || !strings.Contains(err.Error(), "over budget") {
		t.Fatalf("degraded bench netlist: err = %v, want over-budget failure", err)
	}
}
