package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
	"pytfhe/internal/experiments"
	"pytfhe/internal/hdl"
	"pytfhe/internal/models"
	"pytfhe/internal/params"
	"pytfhe/internal/plan"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/noise"
	"pytfhe/internal/vipbench"
)

// checkTarget is one netlist `pytfhe check` analyzes.
type checkTarget struct {
	name string
	nl   *circuit.Netlist
}

// cmdCheck is the static-analysis entry point: for each target netlist it
// runs the noise-budget dataflow analysis (internal/tfhe/noise) and the
// plan-soundness verifier (internal/plan), printing both reports and
// failing the command if any target is over budget or compiles to an
// unsound plan. Program binaries additionally pass the strict structural
// lint (asm.Lint) at load time.
func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	path := fs.String("prog", "", "PyTFHE binary path (or pass it as the argument)")
	bench := fs.Bool("bench", false, "also check the ripple-imbalanced bench netlist")
	examples := fs.Bool("examples", false, "also check every examples/* netlist")
	pname := fs.String("params", "default128", "parameter set the noise analysis assumes: test or default128")
	minSigmas := fs.Float64("min-sigmas", 0, "sigma margin every gate and output must keep (0: default 4)")
	workers := fs.Int("workers", 4, "worker count the verified execution plan is compiled for")
	batch := fs.Int("batch", 16, "bootstrap batch size the plan verifier assumes")
	fs.Parse(args)
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" && !*bench && !*examples {
		return fmt.Errorf("usage: pytfhe check <prog.ptfhe> (or -bench / -examples)")
	}
	p, err := paramSet(*pname)
	if err != nil {
		return err
	}

	var targets []checkTarget
	if *path != "" {
		bin, err := os.ReadFile(*path)
		if err != nil {
			return err
		}
		prog, err := core.LoadStrict(bin)
		if err != nil {
			return err
		}
		targets = append(targets, checkTarget{filepath.Base(*path), prog.Netlist})
	}
	if *bench {
		targets = append(targets, checkTarget{"bench/ripple-imbalanced", experiments.ImbalancedNetlist()})
	}
	if *examples {
		ex, err := exampleNetlists()
		if err != nil {
			return err
		}
		targets = append(targets, ex...)
	}

	var failed []string
	for i, tg := range targets {
		if i > 0 {
			fmt.Println()
		}
		fmt.Printf("== %s ==\n", tg.name)
		if err := checkNetlist(tg.nl, p, *minSigmas, *workers, *batch); err != nil {
			fmt.Printf("FAIL %s: %v\n", tg.name, err)
			failed = append(failed, tg.name)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("check failed for %s", strings.Join(failed, ", "))
	}
	return nil
}

// checkNetlist runs both analyses over one netlist and prints their
// reports; the returned error is the first analysis failure.
func checkNetlist(nl *circuit.Netlist, p *params.GateParams, minSigmas float64, workers, batch int) error {
	rep, err := noise.AnalyzeNetlist(nl, p, minSigmas)
	if err != nil {
		return err
	}
	fmt.Println(rep)
	if err := rep.Err(); err != nil {
		return err
	}
	pl, err := plan.Compile(nl, workers)
	if err != nil {
		return fmt.Errorf("plan compile: %w", err)
	}
	vrep, err := plan.VerifyBatch(nl, pl, batch)
	if err != nil {
		return err
	}
	fmt.Println(vrep)
	return nil
}

// lutDemoNetlist rebuilds the examples/lut demo circuit: an 8-input parity
// chain plus a majority vote over three AND pairs — the cone-heavy shape
// lut-cluster collapses. Keep in sync with examples/lut/main.go.
func lutDemoNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-demo", circuit.AllOptimizations())
	xs := b.Inputs("x", 8)
	par := xs[0]
	for _, x := range xs[1:] {
		par = b.Xor(par, x)
	}
	b.Output("parity", par)
	b.Output("majority", b.LUT(0xE8,
		b.And(xs[0], xs[1]),
		b.And(xs[2], xs[3]),
		b.And(xs[4], xs[5])))
	return b.MustBuild()
}

// exampleNetlists rebuilds the circuits of every example program that has
// one, at the reduced sizes the examples themselves use, so `pytfhe check
// -examples` certifies exactly what `go run ./examples/...` evaluates.
func exampleNetlists() ([]checkTarget, error) {
	var out []checkTarget

	m := hdl.New("quickstart")
	xa := m.InputBus("a", 8)
	xb := m.InputBus("b", 8)
	m.OutputBus("sum", m.AddExpand(xa, xb))
	m.Output("a_lt_b", m.LtU(xa, xb))
	out = append(out, checkTarget{"examples/quickstart", m.MustBuild()})

	w, err := vipbench.CompileMNIST(models.MNISTS().Scaled(5), chiseltorch.NewFixed(8, 8))
	if err != nil {
		return nil, fmt.Errorf("examples/mnist: %w", err)
	}
	out = append(out, checkTarget{"examples/mnist", w.Netlist})

	wa, err := vipbench.CompileAttention(models.AttentionS().Scaled(2, 2), chiseltorch.NewFixed(3, 3))
	if err != nil {
		return nil, fmt.Errorf("examples/attention: %w", err)
	}
	out = append(out, checkTarget{"examples/attention", wa.Netlist})

	// The examples/lut demo netlist, analyzed in its clustered form — the
	// multi-input LUT gates the demo actually executes.
	lres, err := synth.OptimizeLUT(lutDemoNetlist())
	if err != nil {
		return nil, fmt.Errorf("examples/lut: %w", err)
	}
	out = append(out, checkTarget{"examples/lut", lres.Netlist})

	rb, err := vipbench.ByName("roberts-cross")
	if err != nil {
		return nil, fmt.Errorf("examples/distributed: %w", err)
	}
	nl, err := rb.Build()
	if err != nil {
		return nil, fmt.Errorf("examples/distributed: %w", err)
	}
	out = append(out, checkTarget{"examples/distributed", nl})

	return out, nil
}
