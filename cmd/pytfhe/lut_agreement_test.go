package main

import (
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/experiments"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/lwe"
)

// TestLUTAgreement is the `-lut` half of the acceptance matrix: for the
// bench netlist and the examples/lut demo circuit, the LUT-clustered form
// must decrypt bit-identically to the LUT-off plan-replay reference on
// every executor — async, planned replay, and the sharded cluster-plan
// path — while executing strictly fewer bootstraps than it has logical
// gates (the whole point of clustering).
func TestLUTAgreement(t *testing.T) {
	sk, ck := agreeKeys(t)
	coord := startShardCluster(t, ck, 2, 2)

	targets := []checkTarget{
		{"bench/lut-cones", experiments.LUTBenchNetlist()},
		{"examples/lut", lutDemoNetlist()},
	}
	for _, tg := range targets {
		t.Run(tg.name, func(t *testing.T) {
			res, err := synth.OptimizeLUT(tg.nl)
			if err != nil {
				t.Fatal(err)
			}
			clustered := res.Netlist
			cs := clustered.ComputeStats()
			if cs.LUTs == 0 {
				t.Fatalf("lut-cluster produced no LUTs on %s: %+v", tg.name, cs)
			}
			os := tg.nl.ComputeStats()
			if cs.Bootstrapped >= os.Bootstrapped {
				t.Fatalf("clustering did not reduce bootstraps: %d -> %d", os.Bootstrapped, cs.Bootstrapped)
			}

			// LUT-off reference: plan replay of the original netlist.
			enc := backend.EncryptInputs(sk, patternBits(tg.nl.NumInputs))
			refOuts, err := backend.NewPlanned(ck, 2).Run(tg.nl, enc)
			if err != nil {
				t.Fatalf("lut-off plan replay: %v", err)
			}
			want := backend.DecryptOutputs(sk, refOuts)

			runners := []struct {
				name string
				run  func(*circuit.Netlist, []*lwe.Sample) ([]*lwe.Sample, error)
			}{
				{"async(2)", backend.NewAsync(ck, 2).Run},
				{"planned(2)", backend.NewPlanned(ck, 2).Run},
				{"cluster-plan(2)", coord.RunSharded},
			}
			for _, r := range runners {
				outs, err := r.run(clustered, enc)
				if err != nil {
					t.Fatalf("%s over clustered netlist: %v", r.name, err)
				}
				got := backend.DecryptOutputs(sk, outs)
				if len(got) != len(want) {
					t.Fatalf("%s: %d outputs, want %d", r.name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: output %d = %v with LUTs, lut-off reference says %v", r.name, i, got[i], want[i])
					}
				}
			}
		})
	}
}
