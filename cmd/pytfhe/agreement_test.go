package main

import (
	"encoding/gob"
	"net"
	"sync"
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/cluster"
	"pytfhe/internal/experiments"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

var (
	agreeOnce sync.Once
	agreeSK   *boot.SecretKey
	agreeCK   *boot.CloudKey
)

func agreeKeys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	t.Helper()
	agreeOnce.Do(func() {
		rng := trand.NewSeeded([]byte("cmd-pytfhe-agreement"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		agreeSK, agreeCK = sk, ck
	})
	return agreeSK, agreeCK
}

// startShardCluster brings up a coordinator plus n in-process workers over
// localhost TCP, ready for RunSharded.
func startShardCluster(t *testing.T, ck *boot.CloudKey, n, slots int) *cluster.Coordinator {
	t.Helper()
	coord, err := cluster.NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		go func() { _ = cluster.NewWorker(slots).Serve(coord.Addr()) }()
	}
	if err := coord.AcceptWorkers(n); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

// patternBits builds a deterministic, non-trivial input vector.
func patternBits(n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = (i*2654435761)>>4&1 == 1
	}
	return bits
}

// agreementTargets is the full matrix the sharded executor must agree on:
// the bench netlist plus every example circuit that `pytfhe check
// -examples` certifies.
func agreementTargets(t *testing.T) []checkTarget {
	t.Helper()
	ex, err := exampleNetlists()
	if err != nil {
		t.Fatal(err)
	}
	return append([]checkTarget{{"bench/ripple-imbalanced", experiments.ImbalancedNetlist()}}, ex...)
}

// TestClusterPlanAgreement is the cross-backend acceptance matrix:
// cluster-plan at 2 and 4 workers must be bit-exact with the plan-replay
// backend and the dynamic async executor on the bench netlist and every
// example circuit. Multi-thousand-gate targets are skipped under -short
// and under the race detector (the small targets cover the same code
// paths; full `go test ./...` and the CI shard job run everything).
func TestClusterPlanAgreement(t *testing.T) {
	sk, ck := agreeKeys(t)
	coord2 := startShardCluster(t, ck, 2, 2)
	coord4 := startShardCluster(t, ck, 4, 2)

	for _, tg := range agreementTargets(t) {
		big := len(tg.nl.Gates) > 1000
		t.Run(tg.name, func(t *testing.T) {
			if big && (testing.Short() || raceEnabled) {
				t.Skipf("skipping %d-gate target under -short/-race", len(tg.nl.Gates))
			}
			enc := backend.EncryptInputs(sk, patternBits(tg.nl.NumInputs))
			refOuts, err := backend.NewPlanned(ck, 2).Run(tg.nl, enc)
			if err != nil {
				t.Fatalf("plan replay: %v", err)
			}
			want := backend.DecryptOutputs(sk, refOuts)

			runners := []struct {
				name string
				run  func(*circuit.Netlist, []*lwe.Sample) ([]*lwe.Sample, error)
			}{
				{"async(2)", backend.NewAsync(ck, 2).Run},
				{"cluster-plan(2)", coord2.RunSharded},
				{"cluster-plan(4)", coord4.RunSharded},
			}
			for _, r := range runners {
				outs, err := r.run(tg.nl, enc)
				if err != nil {
					t.Fatalf("%s: %v", r.name, err)
				}
				got := backend.DecryptOutputs(sk, outs)
				if len(got) != len(want) {
					t.Fatalf("%s: %d outputs, want %d", r.name, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s: output %d = %v, plan replay says %v", r.name, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// dyingShardWorker joins the cluster over the real v2 protocol, caches its
// shard, then drops the connection on the first ShardStep — a worker crash
// in the middle of a sharded run.
func dyingShardWorker(t *testing.T, addr string) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		defer conn.Close()
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		if err := enc.Encode(cluster.Message{Hello: &cluster.Hello{Slots: 1, Version: cluster.ProtoVersion}}); err != nil {
			return
		}
		var welcome, key cluster.Message
		if dec.Decode(&welcome) != nil || dec.Decode(&key) != nil {
			return
		}
		for {
			var msg cluster.Message
			if err := dec.Decode(&msg); err != nil {
				return
			}
			switch {
			case msg.ShardInit != nil:
				if enc.Encode(cluster.Message{ShardReady: &cluster.ShardReady{Hash: msg.ShardInit.Hash}}) != nil {
					return
				}
			case msg.ShardData != nil:
				if enc.Encode(cluster.Message{ShardReady: &cluster.ShardReady{Hash: msg.ShardData.Hash, Cached: true}}) != nil {
					return
				}
			case msg.Step != nil:
				return // crash mid-run
			default:
				return
			}
		}
	}()
	return done
}

// TestClusterPlanAgreementWorkerLoss injects a worker crash mid-run: one
// real worker plus one that dies on its first step. The run must re-host
// the dead worker's shard and still match the plan-replay backend bit for
// bit on the bench netlist.
func TestClusterPlanAgreementWorkerLoss(t *testing.T) {
	sk, ck := agreeKeys(t)
	coord, err := cluster.NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	coord.JobTimeout = 10 * time.Second
	go func() { _ = cluster.NewWorker(2).Serve(coord.Addr()) }()
	dead := dyingShardWorker(t, coord.Addr())
	if err := coord.AcceptWorkers(2); err != nil {
		t.Fatal(err)
	}

	nl := experiments.ImbalancedNetlist()
	enc := backend.EncryptInputs(sk, patternBits(nl.NumInputs))
	refOuts, err := backend.NewPlanned(ck, 2).Run(nl, enc)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := coord.RunSharded(nl, enc)
	if err != nil {
		t.Fatalf("sharded run with a dying worker: %v", err)
	}
	<-dead
	want := backend.DecryptOutputs(sk, refOuts)
	got := backend.DecryptOutputs(sk, outs)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("output %d = %v after worker loss, plan replay says %v", i, got[i], want[i])
		}
	}
	if lost := coord.Totals().WorkersLost; lost != 1 {
		t.Fatalf("WorkersLost = %d, want 1", lost)
	}
}
