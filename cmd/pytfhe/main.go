// Command pytfhe is the PyTFHE command-line toolchain:
//
//	pytfhe keygen     -params test|default128 -out keys/
//	pytfhe compile    -bench <vip-bench name> | -mnist S|M|L [-image N] -out prog.ptfhe [-verilog prog.v]
//	pytfhe inspect    -prog prog.ptfhe [-listing]
//	pytfhe lint       prog.ptfhe  (or -prog prog.ptfhe)
//	pytfhe check      prog.ptfhe | -bench | -examples [-params test|default128] [-min-sigmas S]
//	pytfhe run        -prog prog.ptfhe -keys keys/ -backend plain|single|pool:N|async:N|plan:N [-sched critical|fifo] [-batch N] [-strict] -in 1011,0110,...
//	pytfhe calibrate  -keys keys/ [-samples N]
//	pytfhe serve      [-listen addr] [-max-concurrent N] [-queue N] [-batch N]   (the pytfhed daemon, in-process)
//	pytfhe register   -server addr -prog prog.ptfhe
//	pytfhe eval       -server addr -keys keys/ (-prog prog.ptfhe | -hash H) -in 1011...
//	pytfhe server-stats -server addr [-json]
//
// Programs are PyTFHE binaries (the 128-bit instruction format of the
// paper); keys serialize with encoding/gob.
package main

import (
	"encoding/gob"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"pytfhe/internal/asm"
	"pytfhe/internal/backend"
	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/circuit"
	"pytfhe/internal/cluster"
	"pytfhe/internal/core"
	"pytfhe/internal/models"
	"pytfhe/internal/params"
	"pytfhe/internal/serve"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/noise"
	"pytfhe/internal/verilog"
	"pytfhe/internal/vipbench"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "keygen":
		err = cmdKeygen(os.Args[2:])
	case "compile":
		err = cmdCompile(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "lint":
		err = cmdLint(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "run":
		err = cmdRun(os.Args[2:])
	case "calibrate":
		err = cmdCalibrate(os.Args[2:])
	case "serve":
		err = serve.RunDaemon(os.Args[2:], os.Stdout)
	case "register":
		err = cmdRegister(os.Args[2:])
	case "eval":
		err = cmdEval(os.Args[2:])
	case "server-stats":
		err = cmdServerStats(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pytfhe: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pytfhe: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: pytfhe <command> [flags]

commands:
  keygen     generate a secret/cloud key pair
  compile    compile a VIP-Bench kernel or MNIST model to a PyTFHE binary
  inspect    show the structure of a PyTFHE binary
  lint       statically verify a PyTFHE binary (cycles, wiring, gate types)
  check      run the semantic analyses: noise-budget dataflow and plan soundness
  run        execute a PyTFHE binary over encrypted inputs
  calibrate  measure the single-core bootstrapped-gate time
  serve      run the pytfhed evaluation daemon in-process
  register   upload a PyTFHE binary to a pytfhed daemon
  eval       evaluate a registered program on a pytfhed daemon
  server-stats  print a pytfhed daemon's statistics`)
}

func paramSet(name string) (*params.GateParams, error) {
	switch name {
	case "test":
		return params.Test(), nil
	case "default128", "default":
		return params.Default128(), nil
	}
	return nil, fmt.Errorf("unknown parameter set %q (want test or default128)", name)
}

func cmdKeygen(args []string) error {
	fs := flag.NewFlagSet("keygen", flag.ExitOnError)
	pname := fs.String("params", "default128", "parameter set: test or default128")
	out := fs.String("out", "keys", "output directory")
	fs.Parse(args)

	p, err := paramSet(*pname)
	if err != nil {
		return err
	}
	fmt.Printf("generating %s keys (n=%d, N=%d)...\n", p.Name, p.LWEDimension, p.PolyDegree)
	kp, err := core.GenerateKeys(p)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(*out, "secret.key"), kp.Secret); err != nil {
		return err
	}
	if err := writeGob(filepath.Join(*out, "cloud.key"), kp.Cloud); err != nil {
		return err
	}
	fmt.Printf("wrote %s/secret.key and %s/cloud.key\n", *out, *out)
	return nil
}

func cmdCompile(args []string) error {
	fs := flag.NewFlagSet("compile", flag.ExitOnError)
	bench := fs.String("bench", "", "VIP-Bench kernel name (see internal/vipbench)")
	mnist := fs.String("mnist", "", "MNIST model size: S, M or L")
	attention := fs.String("attention", "", "attention layer size: S or L")
	image := fs.Int("image", 0, "override MNIST image size (e.g. 10 for a quick build)")
	dtype := fs.String("dtype", "fixed8.8", "model data type: sintW, fixedI.F or floatE.M (e.g. sint8, fixed8.8, float5.11)")
	out := fs.String("out", "prog.ptfhe", "output binary path")
	vout := fs.String("verilog", "", "also emit structural Verilog to this path")
	lut := fs.Bool("lut", false, "cluster fanout-free gate cones into k-input LUT records (synth lut-cluster pass)")
	fs.Parse(args)

	dt, err := parseDType(*dtype)
	if err != nil {
		return err
	}
	compile := core.Compile
	if *lut {
		compile = core.CompileLUT
	}

	var prog *core.Program
	switch {
	case *bench != "":
		b, err := vipbench.ByName(*bench)
		if err != nil {
			names := make([]string, 0, 18)
			for _, bb := range vipbench.All() {
				names = append(names, bb.Name)
			}
			return fmt.Errorf("%w\navailable: %s", err, strings.Join(names, ", "))
		}
		nl, err := b.Build()
		if err != nil {
			return err
		}
		prog, err = compile(nl)
		if err != nil {
			return err
		}
	case *mnist != "":
		var spec models.MNISTSpec
		switch strings.ToUpper(*mnist) {
		case "S":
			spec = models.MNISTS()
		case "M":
			spec = models.MNISTM()
		case "L":
			spec = models.MNISTL()
		default:
			return fmt.Errorf("unknown MNIST size %q", *mnist)
		}
		if *image > 0 {
			spec = spec.Scaled(*image)
		}
		w, err := vipbench.CompileMNIST(spec, dt)
		if err != nil {
			return err
		}
		prog, err = compile(w.Netlist)
		if err != nil {
			return err
		}
	case *attention != "":
		var spec models.AttentionSpec
		switch strings.ToUpper(*attention) {
		case "S":
			spec = models.AttentionS()
		case "L":
			spec = models.AttentionL()
		default:
			return fmt.Errorf("unknown attention size %q", *attention)
		}
		w, err := vipbench.CompileAttention(spec, dt)
		if err != nil {
			return err
		}
		prog, err = compile(w.Netlist)
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -bench, -mnist or -attention is required")
	}

	if err := os.WriteFile(*out, prog.Binary, 0o644); err != nil {
		return err
	}
	s := prog.Stats
	lutNote := ""
	if s.LUTs > 0 {
		lutNote = fmt.Sprintf(", %d LUTs", s.LUTs)
	}
	fmt.Printf("%s: %d inputs, %d gates (%d bootstrapped%s), %d outputs, depth %d -> %s (%d bytes)\n",
		prog.Name, s.Inputs, s.Gates, s.Bootstrapped, lutNote, s.Outputs, s.Depth, *out, len(prog.Binary))
	if *vout != "" {
		src, err := verilog.Emit(prog.Netlist)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*vout, []byte(src), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote Verilog to %s\n", *vout)
	}
	return nil
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	path := fs.String("prog", "", "PyTFHE binary path")
	listing := fs.Bool("listing", false, "print the full instruction listing")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("-prog is required")
	}
	bin, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	prog, err := core.Load(bin)
	if err != nil {
		return err
	}
	s := prog.Stats
	fmt.Printf("instructions: %d (16 bytes each)\n", len(bin)/16)
	fmt.Printf("inputs: %d  gates: %d (bootstrapped %d, free %d, LUTs %d)  outputs: %d\n",
		s.Inputs, s.Gates, s.Bootstrapped, s.Free, s.LUTs, s.Outputs)
	fmt.Printf("depth: %d  wavefronts: %d  widest level: %d\n", s.Depth, s.Levels, s.MaxWidth)
	if *listing {
		text, err := asm.Listing(bin)
		if err != nil {
			return err
		}
		fmt.Print(text)
	}
	return nil
}

// cmdLint statically verifies a program binary: binary framing, gate-graph
// wiring (cycles, undriven wires, bad gate types), output ports, dead
// logic, and the depth/fan-out structure report.
func cmdLint(args []string) error {
	fs := flag.NewFlagSet("lint", flag.ExitOnError)
	path := fs.String("prog", "", "PyTFHE binary path (or pass it as the argument)")
	fs.Parse(args)
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("usage: pytfhe lint <prog.ptfhe>")
	}
	bin, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	rep := asm.Lint(bin)
	rep.Name = filepath.Base(*path)
	fmt.Print(rep)
	return rep.Err()
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	path := fs.String("prog", "", "PyTFHE binary path")
	keys := fs.String("keys", "keys", "key directory from `pytfhe keygen`")
	be := fs.String("backend", "auto", "plain, single, pool[:N], async[:N], plan[:N], cluster:addr, cluster-plan:addr, or auto")
	workers := fs.Int("workers", 1, "worker count for auto/pool/async without an explicit :N")
	clusterWorkers := fs.Int("cluster-workers", 2, "workers to wait for on the cluster backends")
	sched := fs.String("sched", "critical", "async ready-queue policy: critical (longest remaining depth first) or fifo")
	batch := fs.Int("batch", 1, "bootstrap batch size for async/plan backends: each worker fuses up to N ready gates into one amortized blind-rotation dispatch (1: unbatched)")
	stats := fs.Bool("stats", false, "print executor statistics after the run")
	strict := fs.Bool("strict", false, "lint the program and verify its noise budget at load time; refuse to run on any error")
	lut := fs.Bool("lut", false, "re-synthesize the program through LUT clustering: fanout-free gate cones collapse into k-input programmable bootstraps before execution")
	in := fs.String("in", "", "input bits as 0/1 characters (LSB first), e.g. 10110")
	fs.Parse(args)
	if *path == "" {
		return fmt.Errorf("-prog is required")
	}
	schedPolicy, err := backend.ParseSched(*sched)
	if err != nil {
		return err
	}
	bin, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	load := core.Load
	if *strict {
		load = core.LoadStrict
	}
	prog, err := load(bin)
	if err != nil {
		return err
	}
	if *lut {
		before := prog.Stats
		if prog, err = core.ApplyLUT(prog); err != nil {
			return err
		}
		fmt.Printf("lut: %d gates (%d bootstrapped) -> %d gates (%d bootstrapped, %d LUTs)\n",
			before.Gates, before.Bootstrapped, prog.Stats.Gates, prog.Stats.Bootstrapped, prog.Stats.LUTs)
	}
	bits, err := parseBits(*in)
	if err != nil {
		return err
	}
	if len(bits) != prog.Stats.Inputs {
		return fmt.Errorf("program takes %d input bits, got %d", prog.Stats.Inputs, len(bits))
	}

	if *be == "plain" {
		// No key carries a parameter set on the plain path; strict mode
		// checks the noise budget against the production default.
		if *strict {
			if err := noise.CheckNetlist(prog.Netlist, params.Default128()); err != nil {
				return err
			}
		}
		out, err := core.RunPlain(prog, bits)
		if err != nil {
			return err
		}
		fmt.Printf("outputs: %s\n", formatBits(out))
		return nil
	}

	var sk boot.SecretKey
	if err := readGob(filepath.Join(*keys, "secret.key"), &sk); err != nil {
		return err
	}
	var ck boot.CloudKey
	if err := readGob(filepath.Join(*keys, "cloud.key"), &ck); err != nil {
		return err
	}
	kp := &core.KeyPair{Secret: &sk, Cloud: &ck}
	if *strict {
		if err := noise.CheckNetlist(prog.Netlist, ck.Params); err != nil {
			return err
		}
	}

	spec, err := parseBackendSpec(*be, *workers)
	if err != nil {
		return err
	}
	spec.sched = schedPolicy
	spec.batch = *batch
	if spec.batch > 1 && (spec.kind == "single" || spec.kind == "pool") {
		return fmt.Errorf("-batch needs the async or plan backend (got %s)", spec.kind)
	}
	var runner backend.Backend
	if spec.kind == "cluster" || spec.kind == "cluster-plan" {
		coord, err := cluster.NewCoordinator(kp.Cloud, spec.addr)
		if err != nil {
			return err
		}
		defer coord.Close()
		fmt.Printf("coordinator listening on %s, waiting for %d workers...\n", coord.Addr(), *clusterWorkers)
		if err := coord.AcceptWorkers(*clusterWorkers); err != nil {
			return err
		}
		if spec.kind == "cluster-plan" {
			runner = &shardBackend{coord: coord}
		} else {
			runner = coord
		}
	} else {
		runner = spec.build(kp.Cloud)
	}

	fmt.Printf("encrypting %d input bits...\n", len(bits))
	cts := kp.EncryptBits(bits)
	fmt.Printf("evaluating %d gates on %s...\n", prog.Stats.Gates, runner.Name())
	outs, err := core.Run(prog, runner, cts)
	if err != nil {
		return err
	}
	fmt.Printf("outputs: %s\n", formatBits(kp.DecryptBits(outs)))
	if *stats {
		printRunStats(runner, ck.Params.CiphertextBytes())
	}
	return nil
}

// shardBackend adapts Coordinator.RunSharded to the backend contract, so
// `-backend cluster-plan:addr` plugs into the same run path as everything
// else.
type shardBackend struct {
	coord *cluster.Coordinator
}

func (b *shardBackend) Name() string {
	return strings.Replace(b.coord.Name(), "cluster(", "cluster-plan(", 1)
}

func (b *shardBackend) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	return b.coord.RunSharded(nl, inputs)
}

// backendSpec is a parsed -backend/-workers selection, kept separate from
// construction so it can be validated without keys.
type backendSpec struct {
	kind    string // "single", "pool", "async", "plan", "cluster", "cluster-plan"
	workers int
	addr    string        // listen address for the cluster backends
	sched   backend.Sched // async ready-queue policy
	batch   int           // bootstrap batch size (async/plan; ≤1 unbatched)
}

// parseBackendSpec resolves the -backend flag. "auto" picks the
// single-core evaluator for one worker and the barrier-free Async executor
// for multi-worker runs — the async executor is the default whenever more
// than one worker is requested; the barriered pool remains selectable as
// the Algorithm 1 baseline. The cluster backends are matched by prefix
// before the generic kind:N split, because their operand is a listen
// address ("cluster-plan:127.0.0.1:7700") that itself contains colons.
func parseBackendSpec(s string, workers int) (backendSpec, error) {
	if workers < 1 {
		workers = 1
	}
	for _, kind := range []string{"cluster-plan", "cluster"} {
		if rest, ok := strings.CutPrefix(s, kind+":"); ok {
			if rest == "" {
				return backendSpec{}, fmt.Errorf("backend %s needs a listen address, e.g. %s:127.0.0.1:7700", kind, kind)
			}
			return backendSpec{kind: kind, addr: rest}, nil
		}
	}
	kind, count := s, workers
	if i := strings.IndexByte(s, ':'); i >= 0 {
		kind = s[:i]
		n, err := strconv.Atoi(s[i+1:])
		if err != nil || n < 1 {
			return backendSpec{}, fmt.Errorf("bad %s worker count %q", kind, s[i+1:])
		}
		count = n
	}
	switch kind {
	case "auto":
		if count > 1 {
			return backendSpec{kind: "async", workers: count}, nil
		}
		return backendSpec{kind: "single", workers: 1}, nil
	case "single":
		return backendSpec{kind: "single", workers: 1}, nil
	case "pool", "async", "plan":
		return backendSpec{kind: kind, workers: count}, nil
	case "cluster", "cluster-plan":
		return backendSpec{}, fmt.Errorf("backend %s needs a listen address, e.g. %s:127.0.0.1:7700", kind, kind)
	}
	return backendSpec{}, fmt.Errorf("unknown backend %q (want plain, single, pool[:N], async[:N], plan[:N], cluster:addr, cluster-plan:addr or auto)", s)
}

func (bs backendSpec) build(ck *boot.CloudKey) backend.Backend {
	switch bs.kind {
	case "pool":
		return backend.NewPool(ck, bs.workers)
	case "async":
		if bs.batch > 1 {
			return backend.NewAsyncBatch(ck, bs.workers, bs.sched, bs.batch)
		}
		return backend.NewAsyncSched(ck, bs.workers, bs.sched)
	case "plan":
		return backend.NewPlannedBatch(ck, bs.workers, bs.batch)
	}
	return backend.NewSingle(ck)
}

// printRunStats reports the executor breakdown recorded by the last Run.
// ctBytes is the serialized ciphertext size (the paper's ≈2.46 KB pin at
// n=630), used to contextualize the cluster backends' wire traffic.
func printRunStats(runner backend.Backend, ctBytes int) {
	var st backend.RunStats
	switch r := runner.(type) {
	case *backend.Single:
		st = r.Stats
	case *backend.Pool:
		st = r.Stats
	case *backend.Async:
		st = r.Stats
	case *backend.Planned:
		st = r.Stats
		ps := r.PlanStats
		fmt.Printf("plan:  %d logical bootstraps captured as %d executed (%d levels, %d arena slots), compiled in %v\n",
			ps.LogicalBootstraps, ps.ExecBootstraps, ps.Levels, ps.ArenaSlots,
			ps.CompileTime.Round(time.Microsecond))
	case *cluster.Coordinator:
		printClusterStats(r.LastStat, ctBytes)
		return
	case *shardBackend:
		printClusterStats(r.coord.LastStat, ctBytes)
		return
	default:
		return
	}
	lutNote := ""
	if st.LUTs > 0 {
		lutNote = fmt.Sprintf(", %d LUTs", st.LUTs)
	}
	fmt.Printf("stats: %d gates (%d bootstrapped%s) in %v — %.1f gates/s, %.1f bootstraps/s\n",
		st.Gates, st.Bootstraps, lutNote, st.Elapsed.Round(time.Millisecond), st.GatesPerSec, st.BootstrapsPerSec)
	if st.Levels > 0 {
		fmt.Printf("       %d wavefronts, %d workers\n", st.Levels, st.Workers)
	}
	if st.WorkerBusy > 0 {
		fmt.Printf("       %d workers, %.0f%% utilization, avg queue wait %v\n",
			st.Workers, 100*st.Utilization, st.AvgQueueWait.Round(time.Microsecond))
	}
	if st.Batches > 0 {
		fmt.Printf("batch: %d dispatches covering %d bootstraps (avg fill %.1f of %d",
			st.Batches, st.BatchedBootstraps, st.AvgBatchFill, st.BatchSize)
		if st.BatchFullFlushes+st.BatchDrainFlushes > 0 {
			fmt.Printf("; %d full, %d drained early", st.BatchFullFlushes, st.BatchDrainFlushes)
		}
		fmt.Println(")")
	}
}

// printClusterStats reports a distributed run: throughput, then wire
// traffic — the estimate next to the measured socket counters, and the
// shard-cache economics on the cluster-plan path.
func printClusterStats(st cluster.Stats, ctBytes int) {
	boots := float64(st.Bootstraps) / st.Elapsed.Seconds()
	fmt.Printf("stats: %d workers (%d slots), %d gates (%d bootstrapped) over %d levels in %v — %.1f bootstraps/s\n",
		st.Workers, st.Slots, st.Gates, st.Bootstraps, st.Levels, st.Elapsed.Round(time.Millisecond), boots)
	if st.WorkersLost > 0 {
		fmt.Printf("       %d workers lost mid-run, work requeued on survivors\n", st.WorkersLost)
	}
	fmt.Printf("wire:  %d samples out, %d back at %.2f KB/ciphertext — estimate %.1f KB, measured %.1f KB out / %.1f KB in\n",
		st.SamplesSent, st.SamplesReceived, float64(ctBytes)/1024,
		float64(st.BytesSent)/1024, float64(st.WireBytesSent)/1024, float64(st.WireBytesRecv)/1024)
	if st.ShardHits+st.ShardMisses > 0 {
		fmt.Printf("shard: %d hits, %d misses, %d reships — %.1f KB of shards shipped, %.1f KB boundary traffic\n",
			st.ShardHits, st.ShardMisses, st.ShardReships,
			float64(st.ShardBytesShipped)/1024, float64(st.BoundaryBytes)/1024)
	}
}

// cmdRegister uploads a program binary to a running pytfhed daemon.
func cmdRegister(args []string) error {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	server := fs.String("server", "127.0.0.1:7701", "pytfhed address")
	path := fs.String("prog", "", "PyTFHE binary path")
	fs.Parse(args)
	if *path == "" && fs.NArg() == 1 {
		*path = fs.Arg(0)
	}
	if *path == "" {
		return fmt.Errorf("-prog is required")
	}
	bin, err := os.ReadFile(*path)
	if err != nil {
		return err
	}
	cl, err := serve.Dial(*server)
	if err != nil {
		return err
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(bin)
	if err != nil {
		return err
	}
	state := "admitted"
	if info.Cached {
		state = "cached"
	}
	fmt.Printf("%s (%s): %d inputs, %d gates (%d bootstrapped), %d outputs, depth %d\n",
		info.Name, state, info.Inputs, info.Gates, info.Bootstrapped, info.Outputs, info.Depth)
	fmt.Printf("hash: %s\n", info.Hash)
	return nil
}

// cmdEval opens a session (cloud-key upload) against a pytfhed daemon and
// evaluates one registered program over encrypted inputs; decryption stays
// client-side, under the secret key the server never sees.
func cmdEval(args []string) error {
	fs := flag.NewFlagSet("eval", flag.ExitOnError)
	server := fs.String("server", "127.0.0.1:7701", "pytfhed address")
	keys := fs.String("keys", "keys", "key directory from `pytfhe keygen`")
	path := fs.String("prog", "", "PyTFHE binary to register and evaluate")
	hash := fs.String("hash", "", "hash of an already-registered program")
	in := fs.String("in", "", "input bits as 0/1 characters (LSB first)")
	timeout := fs.Duration("timeout", 0, "per-request timeout (0: server default)")
	fs.Parse(args)
	if (*path == "") == (*hash == "") {
		return fmt.Errorf("exactly one of -prog or -hash is required")
	}
	bits, err := parseBits(*in)
	if err != nil {
		return err
	}

	var sk boot.SecretKey
	if err := readGob(filepath.Join(*keys, "secret.key"), &sk); err != nil {
		return err
	}
	var ck boot.CloudKey
	if err := readGob(filepath.Join(*keys, "cloud.key"), &ck); err != nil {
		return err
	}
	kp := &core.KeyPair{Secret: &sk, Cloud: &ck}

	cl, err := serve.Dial(*server)
	if err != nil {
		return err
	}
	defer cl.Close()

	progHash := *hash
	nInputs := len(bits)
	if *path != "" {
		bin, err := os.ReadFile(*path)
		if err != nil {
			return err
		}
		info, err := cl.RegisterProgram(bin)
		if err != nil {
			return err
		}
		progHash = info.Hash
		nInputs = info.Inputs
		fmt.Printf("registered %s as %.16s…\n", info.Name, info.Hash)
	}
	if len(bits) != nInputs {
		return fmt.Errorf("program takes %d input bits, got %d", nInputs, len(bits))
	}
	sess, err := cl.OpenSession(kp.Cloud)
	if err != nil {
		return err
	}
	fmt.Printf("session %d open, cloud key uploaded — evaluating %d encrypted bits\n", sess.ID, len(bits))
	outs, err := cl.EvaluateTimeout(progHash, kp.EncryptBits(bits), *timeout)
	if err != nil {
		return err
	}
	fmt.Printf("outputs: %s\n", formatBits(kp.DecryptBits(outs)))
	return nil
}

// cmdServerStats prints a pytfhed statistics snapshot.
func cmdServerStats(args []string) error {
	fs := flag.NewFlagSet("server-stats", flag.ExitOnError)
	server := fs.String("server", "127.0.0.1:7701", "pytfhed address")
	asJSON := fs.Bool("json", false, "emit the raw statistics snapshot as JSON (stable wire field names)")
	fs.Parse(args)
	cl, err := serve.Dial(*server)
	if err != nil {
		return err
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	}
	fmt.Printf("uptime %v, %d sessions, %d programs registered\n",
		(time.Duration(st.UptimeMs) * time.Millisecond).Round(time.Second), st.Sessions, st.Programs)
	fmt.Printf("evaluations: %d done, %d shed (overloaded), %d quota-rejected, queue depth %d, in flight %d\n",
		st.Evaluations, st.Rejected, st.QuotaRejected, st.QueueDepth, st.InFlight)
	fmt.Printf("executor: %d gates evaluated, %.1f gates/s, %.1f bootstraps/s\n",
		st.ExecutorGates, st.GatesPerSec, st.BootstrapsPerSec)
	if st.LUTsEvaluated > 0 || st.ExecutorLUTs > 0 {
		fmt.Printf("luts: %d multi-input LUT gates evaluated (%d on the dynamic executor)\n",
			st.LUTsEvaluated, st.ExecutorLUTs)
	}
	fmt.Printf("plan cache: %d hits, %d misses — %d replays, %d dynamic fallbacks, arena high water %d ciphertexts\n",
		st.PlanHits, st.PlanMisses, st.PlanReplays, st.PlanFallbacks, st.ArenaHighWater)
	cacheLine := func(cs serve.CacheStats) string {
		capStr := "unbounded"
		if cs.CapBytes > 0 {
			capStr = fmt.Sprintf("cap %.1f KB", float64(cs.CapBytes)/1024)
		}
		return fmt.Sprintf("%d entries, %.1f KB (%s), %d evicted",
			cs.Entries, float64(cs.Bytes)/1024, capStr, cs.Evictions)
	}
	fmt.Printf("  plan LRU: %s\n  runtime LRU: %s\n", cacheLine(st.PlanCache), cacheLine(st.RuntimeCache))
	if st.KeysReleased > 0 {
		fmt.Printf("keys released: %d (engines and replay runners freed on last session close)\n", st.KeysReleased)
	}
	for tenant, picks := range st.TenantPicks {
		fmt.Printf("tenant %s: %d scheduler picks, %d gates queued\n",
			tenant, picks, st.TenantQueued[tenant])
	}
	if st.Batches > 0 {
		fmt.Printf("batching: %d dispatches covering %d bootstraps (avg fill %.1f of %d), %d spanning multiple requests\n",
			st.Batches, st.BatchedBootstraps, st.AvgBatchFill, st.BatchSize, st.CrossRunBatches)
	}
	if cs := st.Cluster; cs != nil {
		fmt.Printf("cluster: %d workers (%d lost) — %d sharded evaluations, %d local fallbacks\n",
			cs.Workers, cs.WorkersLost, cs.Evals, cs.Fallbacks)
		fmt.Printf("  shards: %d hits, %d misses, %d reships — boundary traffic %.1f KB of %.1f KB sent / %.1f KB received\n",
			cs.ShardHits, cs.ShardMisses, cs.ShardReships,
			float64(cs.BoundaryBytes)/1024, float64(cs.WireBytesSent)/1024, float64(cs.WireBytesRecv)/1024)
	}
	for hash, hits := range st.PerProgram {
		if lat, ok := st.PerProgramLatency[hash]; ok && lat.Samples > 0 {
			fmt.Printf("  %.16s… %d evaluations, p50 %.1fms, p95 %.1fms\n",
				hash, hits, lat.P50Ms, lat.P95Ms)
		} else {
			fmt.Printf("  %.16s… %d evaluations\n", hash, hits)
		}
		if pn := st.ProgramNoise[hash]; pn.Checked {
			fmt.Printf("    noise: %.1f bits headroom under %s (worst %.2f sigmas, failure prob %.2e)\n",
				pn.HeadroomBits, pn.Params, pn.WorstSigmas, pn.FailureProb)
		}
	}
	return nil
}

func cmdCalibrate(args []string) error {
	fs := flag.NewFlagSet("calibrate", flag.ExitOnError)
	keys := fs.String("keys", "", "key directory (empty: generate fresh test-parameter keys)")
	pname := fs.String("params", "default128", "parameter set when generating")
	samples := fs.Int("samples", 5, "gates to time")
	fs.Parse(args)

	var kp *core.KeyPair
	if *keys != "" {
		var sk boot.SecretKey
		if err := readGob(filepath.Join(*keys, "secret.key"), &sk); err != nil {
			return err
		}
		var ck boot.CloudKey
		if err := readGob(filepath.Join(*keys, "cloud.key"), &ck); err != nil {
			return err
		}
		kp = &core.KeyPair{Secret: &sk, Cloud: &ck}
	} else {
		p, err := paramSet(*pname)
		if err != nil {
			return err
		}
		fmt.Printf("generating %s keys...\n", p.Name)
		kp, err = core.GenerateKeys(p)
		if err != nil {
			return err
		}
	}
	gt, err := core.CalibrateGateTime(kp, *samples)
	if err != nil {
		return err
	}
	fmt.Printf("bootstrapped gate time: %v (%.1f gates/s single core)\n", gt, 1e9/float64(gt.Nanoseconds()))
	return nil
}

// parseDType parses the ChiselTorch data type notation: sint8, fixed8.8,
// float5.11.
func parseDType(s string) (chiseltorch.DType, error) {
	var a, b int
	switch {
	case strings.HasPrefix(s, "sint"):
		if _, err := fmt.Sscanf(s, "sint%d", &a); err != nil || a <= 0 {
			return nil, fmt.Errorf("bad dtype %q", s)
		}
		return chiseltorch.NewSInt(a), nil
	case strings.HasPrefix(s, "fixed"):
		if _, err := fmt.Sscanf(s, "fixed%d.%d", &a, &b); err != nil || a <= 0 || b < 0 {
			return nil, fmt.Errorf("bad dtype %q", s)
		}
		return chiseltorch.NewFixed(a, b), nil
	case strings.HasPrefix(s, "float"):
		if _, err := fmt.Sscanf(s, "float%d.%d", &a, &b); err != nil || a <= 0 || b <= 0 {
			return nil, fmt.Errorf("bad dtype %q", s)
		}
		return chiseltorch.NewFloat(a, b), nil
	}
	return nil, fmt.Errorf("unknown dtype %q (want sintW, fixedI.F or floatE.M)", s)
}

func parseBits(s string) ([]bool, error) {
	s = strings.NewReplacer(",", "", " ", "").Replace(s)
	bits := make([]bool, 0, len(s))
	for _, r := range s {
		switch r {
		case '0':
			bits = append(bits, false)
		case '1':
			bits = append(bits, true)
		default:
			return nil, fmt.Errorf("input bits must be 0 or 1, got %q", r)
		}
	}
	return bits, nil
}

func formatBits(bits []bool) string {
	var sb strings.Builder
	for _, b := range bits {
		if b {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func writeGob(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(v)
}

func readGob(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewDecoder(f).Decode(v)
}
