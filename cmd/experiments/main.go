// Command experiments regenerates the paper's tables and figures as text
// reports.
//
//	experiments -all                 # everything, full-size workloads
//	experiments -quick -all          # scaled workloads, finishes in seconds
//	experiments -fig 10              # one figure
//	experiments -table 4
//	experiments -calibrate           # measure the real gate time first
//	experiments -executors           # measured Pool-vs-Async CPU scaling
//	experiments -planbench           # plan capture/replay vs dynamic executors
//
// Without -calibrate, the cost models use -gatetime (default 100ms, the
// magnitude of this repository's pure-Go bootstrap at 128-bit parameters).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"pytfhe/internal/core"
	"pytfhe/internal/experiments"
	"pytfhe/internal/params"
	"pytfhe/internal/vipbench"
)

func main() {
	quick := flag.Bool("quick", false, "scale workloads down (small MNIST images)")
	all := flag.Bool("all", false, "run every figure and table")
	fig := flag.String("fig", "", "comma-separated figure numbers: 7,8,9,10,11,12,13,14")
	table := flag.String("table", "", "comma-separated table numbers: 1,2,4")
	calibrate := flag.Bool("calibrate", false, "measure the bootstrapped-gate time with real keys first")
	gatetime := flag.Duration("gatetime", 0, "assumed single-core gate time (overrides -calibrate)")
	testParams := flag.Bool("testparams", false, "use the fast test parameter set for measured experiments")
	executors := flag.Bool("executors", false, "measure real Pool-vs-Async CPU scaling (Fig. 10 on the in-process executors)")
	execBench := flag.String("execbench", "hamming-distance", "VIP-Bench kernel for -executors")
	execWorkers := flag.String("execworkers", "1,2,4,8", "comma-separated worker counts for -executors")
	planBench := flag.Bool("planbench", false, "measure plan capture/replay vs the dynamic executors on the imbalanced ripple netlist")
	planOut := flag.String("planout", "", "write the -planbench report as JSON to this path (e.g. BENCH_PLAN.json)")
	planBaseline := flag.String("planbaseline", "", "compare the -planbench report against this committed JSON baseline and fail on >10% regression")
	planWorkers := flag.Int("planworkers", 4, "worker count for -planbench")
	flag.Parse()

	cfg := experiments.Config{Quick: *quick, GateTime: *gatetime}
	if *calibrate && *gatetime == 0 {
		p := params.Default128()
		if *testParams {
			p = params.Test()
		}
		fmt.Fprintf(os.Stderr, "calibrating with %s parameters...\n", p.Name)
		kp, err := core.GenerateKeysSeeded(p, []byte("experiments-calibration"))
		fatal(err)
		gt, err := core.CalibrateGateTime(kp, 3)
		fatal(err)
		fmt.Fprintf(os.Stderr, "measured gate time: %v\n", gt)
		cfg.GateTime = gt
	}

	figs := map[string]bool{}
	tables := map[string]bool{}
	if *all {
		for _, f := range []string{"7", "8", "9", "10", "11", "12", "13", "14"} {
			figs[f] = true
		}
		for _, t := range []string{"1", "2", "4"} {
			tables[t] = true
		}
	}
	for _, f := range strings.Split(*fig, ",") {
		if f = strings.TrimSpace(f); f != "" {
			figs[f] = true
		}
	}
	for _, t := range strings.Split(*table, ",") {
		if t = strings.TrimSpace(t); t != "" {
			tables[t] = true
		}
	}
	if len(figs) == 0 && len(tables) == 0 && !*executors && !*planBench {
		flag.Usage()
		os.Exit(2)
	}

	w := os.Stdout
	start := time.Now()
	gt := cfg.GateTime
	if gt == 0 {
		gt = experiments.DefaultGateTime
	}
	fmt.Fprintf(w, "PyTFHE experiment harness (quick=%v, gate time=%v)\n\n", *quick, gt)

	if tables["1"] {
		experiments.RenderTable1(w)
		fmt.Fprintln(w)
	}
	if tables["2"] {
		experiments.RenderPlatforms(w, cfg)
		fmt.Fprintln(w)
	}
	if figs["7"] {
		p := params.Default128()
		if *testParams || *quick {
			p = params.Test()
		}
		prof, err := experiments.Fig07GateProfile(p, 3)
		fatal(err)
		prof.Render(w)
		fmt.Fprintln(w)
	}
	if figs["8"] || figs["9"] {
		experiments.Fig0809GPUTimelines(cfg).Render(w)
		fmt.Fprintln(w)
	}
	if figs["10"] {
		rows, err := experiments.Fig10DistributedCPU(cfg)
		fatal(err)
		experiments.RenderFig10(w, rows)
		fmt.Fprintln(w)
	}
	if figs["11"] {
		rows, err := experiments.Fig11GPU(cfg)
		fatal(err)
		experiments.RenderFig11(w, rows)
		fmt.Fprintln(w)
	}
	if figs["12"] {
		rows, err := experiments.Fig12TranspilerCross(cfg)
		fatal(err)
		experiments.RenderFig12(w, rows)
		fmt.Fprintln(w)
	}
	if figs["13"] || tables["4"] {
		cmp, err := experiments.Fig13Table4Comparison(cfg)
		fatal(err)
		cmp.Render(w)
		fmt.Fprintln(w)
	}
	if figs["14"] {
		d, err := experiments.Fig14GateDistribution(cfg)
		fatal(err)
		d.Render(w)
		fmt.Fprintln(w)
	}
	if *executors {
		p := params.Default128()
		if *testParams || *quick {
			p = params.Test()
		}
		fmt.Fprintf(os.Stderr, "generating %s keys for the measured executor run...\n", p.Name)
		kp, err := core.GenerateKeysSeeded(p, []byte("experiments-executors"))
		fatal(err)
		b, err := vipbench.ByName(*execBench)
		fatal(err)
		nl, err := b.Build()
		fatal(err)
		var counts []int
		for _, s := range strings.Split(*execWorkers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			fatal(err)
			counts = append(counts, n)
		}
		inputs := kp.EncryptBits(make([]bool, nl.NumInputs))
		rows, err := experiments.ExecutorScaling(kp.Cloud, nl, inputs, counts)
		fatal(err)
		experiments.RenderExecutorScaling(w, b.Name, rows)
		fmt.Fprintln(w)
	}
	if *planBench {
		p := params.Default128()
		if *testParams || *quick {
			p = params.Test()
		}
		fmt.Fprintf(os.Stderr, "generating %s keys for the plan capture/replay run...\n", p.Name)
		kp, err := core.GenerateKeysSeeded(p, []byte("experiments-planbench"))
		fatal(err)
		nl := experiments.ImbalancedNetlist()
		inputs := kp.EncryptBits(make([]bool, nl.NumInputs))
		report, err := experiments.PlanBench(kp.Cloud, nl, inputs, *planWorkers)
		fatal(err)
		report.LUT, err = experiments.LUTSweepBench(kp.Cloud, kp.EncryptBits, *planWorkers)
		fatal(err)
		experiments.RenderPlanBench(w, report)
		if *planBaseline != "" {
			base, err := experiments.LoadPlanBaseline(*planBaseline)
			fatal(err)
			fatal(experiments.CheckPlanParity(report, base, 0.10))
			fmt.Fprintf(os.Stderr, "bench parity vs %s: async, plan and batch within 10%%\n", *planBaseline)
		}
		if *planOut != "" {
			fatal(experiments.WritePlanBench(*planOut, report))
			fmt.Fprintf(os.Stderr, "wrote %s\n", *planOut)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintf(w, "done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}
