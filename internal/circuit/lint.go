package circuit

import (
	"fmt"
	"sort"
	"strings"

	"pytfhe/internal/logic"
)

// Severity ranks a lint diagnostic.
type Severity int

// Severities. Errors make a program unsafe to execute; warnings are
// legal-but-suspicious shapes; infos are reports.
const (
	SevError Severity = iota
	SevWarning
	SevInfo
)

func (s Severity) String() string {
	switch s {
	case SevError:
		return "error"
	case SevWarning:
		return "warning"
	}
	return "info"
}

// Diagnostic is one netlist lint finding. Code is a stable machine-readable
// identifier; each distinct defect class gets its own code.
type Diagnostic struct {
	Severity Severity
	Code     string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s [%s]: %s", d.Severity, d.Code, d.Message)
}

// Diagnostic codes emitted by Lint.
const (
	CodeCycle         = "cycle"           // gate dependency cycle
	CodeUndrivenWire  = "undriven-wire"   // gate operand names a node no instruction drives
	CodeBadGateType   = "bad-gate-type"   // gate kind outside the 4-bit alphabet
	CodeConstGate     = "const-gate"      // constant TRUE/FALSE gate survived synthesis
	CodeDanglingOut   = "dangling-output" // output port names a nonexistent node
	CodeDupOutput     = "dup-output"      // two output ports export the same node
	CodeNoOutputs     = "no-outputs"      // program computes nothing observable
	CodeDeadGates     = "dead-gates"      // gates unreachable from any output
	CodeForwardRef    = "forward-ref"     // operand defined later than its reader (needs re-sort)
	CodeShapeMismatch = "shape-mismatch"  // name tables disagree with port counts
	CodeBadLUTArity   = "bad-lut-arity"   // LUT arity outside [2, logic.MaxLUTArity]
	CodeWideLUTTable  = "wide-lut-table"  // LUT truth table wider than 2^arity bits
	CodeInfeasibleLUT = "infeasible-lut"  // LUT table with no single-bootstrap plan
)

// Report is the result of linting one netlist: diagnostics plus the
// structural summary (depth, widths, fan-out) used by capacity planning.
type Report struct {
	Name  string
	Diags []Diagnostic

	// Structure summary; valid when the netlist is acyclic.
	Inputs       int
	Gates        int
	Outputs      int
	Bootstrapped int
	Depth        int
	Levels       int
	MaxWidth     int
	DeadGates    int
	MaxFanOut    int
	MaxFanOutID  NodeID
}

// Err returns a non-nil error summarizing the report when any
// error-severity diagnostic is present.
func (r *Report) Err() error {
	n := 0
	var first *Diagnostic
	for i := range r.Diags {
		if r.Diags[i].Severity == SevError {
			if first == nil {
				first = &r.Diags[i]
			}
			n++
		}
	}
	if first == nil {
		return nil
	}
	return fmt.Errorf("circuit: netlist %q has %d lint error(s), first: %s", r.Name, n, *first)
}

// String renders the report for humans: diagnostics, then the structure
// summary.
func (r *Report) String() string {
	var sb strings.Builder
	for _, d := range r.Diags {
		fmt.Fprintf(&sb, "%s\n", d)
	}
	fmt.Fprintf(&sb, "netlist %s: %d inputs, %d gates (%d bootstrapped), %d outputs\n",
		r.Name, r.Inputs, r.Gates, r.Bootstrapped, r.Outputs)
	fmt.Fprintf(&sb, "depth %d, %d wavefronts (widest %d), %d dead gate(s), max fan-out %d (node %d)\n",
		r.Depth, r.Levels, r.MaxWidth, r.DeadGates, r.MaxFanOut, r.MaxFanOutID)
	return sb.String()
}

// Lint statically verifies a netlist before execution. Unlike Validate —
// which enforces the builder's invariants and assumes topological order —
// Lint treats the netlist as an untrusted general graph (the shape a
// hand-crafted or corrupted program binary can take) and reports every
// defect it can find rather than stopping at the first:
//
//   - dependency cycles over the gate DAG (cycle)
//   - operands that no instruction drives (undriven-wire) and operands
//     defined after their reader (forward-ref)
//   - gate types outside the 4-bit alphabet (bad-gate-type) and constant
//     gates that synthesis should have folded (const-gate)
//   - output ports naming nonexistent nodes (dangling-output), duplicate
//     exports (dup-output), and programs with no outputs at all
//   - gates whose results can never reach an output (dead-gates)
//
// plus a depth / wavefront / fan-out structure report.
func Lint(nl *Netlist) *Report {
	r := &Report{
		Name:    nl.Name,
		Inputs:  nl.NumInputs,
		Gates:   len(nl.Gates),
		Outputs: len(nl.Outputs),
	}
	diag := func(sev Severity, code, format string, args ...any) {
		r.Diags = append(r.Diags, Diagnostic{sev, code, fmt.Sprintf(format, args...)})
	}

	if nl.NumInputs < 0 {
		diag(SevError, CodeShapeMismatch, "negative input count %d", nl.NumInputs)
		return r
	}
	if nl.InputNames != nil && len(nl.InputNames) != nl.NumInputs {
		diag(SevError, CodeShapeMismatch, "%d input names for %d inputs", len(nl.InputNames), nl.NumInputs)
	}
	if nl.OutputNames != nil && len(nl.OutputNames) != len(nl.Outputs) {
		diag(SevError, CodeShapeMismatch, "%d output names for %d outputs", len(nl.OutputNames), len(nl.Outputs))
	}

	numNodes := NodeID(nl.NumNodes())

	// Per-gate wiring and type checks.
	for i, g := range nl.Gates {
		id := nl.GateID(i)
		nOps := 2
		if g.IsLUT() {
			if g.Arity < 2 || int(g.Arity) > logic.MaxLUTArity {
				diag(SevError, CodeBadLUTArity, "gate %d is a LUT with arity %d, outside [2, %d]", id, g.Arity, logic.MaxLUTArity)
			} else {
				nOps = int(g.Arity)
				if g.TT != g.TT&logic.TTMask(nOps) {
					diag(SevError, CodeWideLUTTable, "gate %d holds truth table %#x, wider than the 2^%d bits arity %d allows", id, g.TT, 1<<nOps, g.Arity)
				} else if c, _ := g.TT.IsConst(nOps); c {
					diag(SevWarning, CodeConstGate, "gate %d is a constant LUT (table %#x); synthesis should have folded it", id, g.TT)
				} else if !logic.LUTFeasible(nOps, g.TT) {
					diag(SevError, CodeInfeasibleLUT, "gate %d: LUT table %#x has no single-bootstrap plan at arity %d", id, g.TT, g.Arity)
				}
			}
		} else if g.Kind >= logic.NumKinds {
			diag(SevError, CodeBadGateType, "gate %d has type %d, outside the 4-bit gate alphabet", id, g.Kind)
		} else if g.Kind.IsConst() {
			diag(SevWarning, CodeConstGate, "gate %d is constant %s; synthesis should have folded it", id, g.Kind)
		}
		for k := 0; k < nOps; k++ {
			in := g.Operand(k)
			switch {
			case in <= 0:
				diag(SevError, CodeUndrivenWire, "gate %d (%s) reads node %d, which no instruction drives", id, gateName(&g), in)
			case in > numNodes:
				diag(SevError, CodeUndrivenWire, "gate %d (%s) reads node %d, past the last defined node %d", id, gateName(&g), in, numNodes)
			case in >= id:
				diag(SevError, CodeForwardRef, "gate %d (%s) reads node %d, defined at or after it", id, gateName(&g), in)
			}
		}
	}

	// Output port checks.
	seen := map[NodeID][]int{}
	for i, out := range nl.Outputs {
		if out.IsConst() {
			continue
		}
		if out <= 0 || out > numNodes {
			diag(SevError, CodeDanglingOut, "output %d names nonexistent node %d", i, out)
			continue
		}
		seen[out] = append(seen[out], i)
	}
	dups := make([]NodeID, 0, len(seen))
	for id, ports := range seen {
		if len(ports) > 1 {
			dups = append(dups, id)
		}
	}
	sort.Slice(dups, func(i, j int) bool { return dups[i] < dups[j] })
	for _, id := range dups {
		diag(SevWarning, CodeDupOutput, "node %d is exported by output ports %v", id, seen[id])
	}
	if len(nl.Outputs) == 0 {
		diag(SevWarning, CodeNoOutputs, "netlist has no outputs; nothing is observable")
	}

	// Cycle detection over the gate graph, treating the netlist as a
	// general (possibly non-topological) graph.
	if cycle := findCycle(nl); cycle != nil {
		diag(SevError, CodeCycle, "gate dependency cycle: %s", formatCycle(cycle))
	} else {
		// The structure summary is only meaningful on an acyclic graph.
		for _, g := range nl.Gates {
			if g.IsLUT() || (g.Kind < logic.NumKinds && g.Kind.NeedsBootstrap()) {
				r.Bootstrapped++
			}
		}
		r.DeadGates = countDeadGates(nl)
		if r.DeadGates > 0 {
			diag(SevInfo, CodeDeadGates, "%d of %d gates cannot reach any output (dead logic)", r.DeadGates, len(nl.Gates))
		}
		// Depth/wavefront/fan-out passes index by node id and assume a
		// defect-free graph; skip them when wiring errors were found.
		if wellFormed(r) {
			stats := nl.ComputeStats()
			r.Depth, r.Levels, r.MaxWidth = stats.Depth, stats.Levels, stats.MaxWidth
			for id, f := range nl.FanOut() {
				if f > r.MaxFanOut {
					r.MaxFanOut, r.MaxFanOutID = f, NodeID(id)
				}
			}
		}
	}
	return r
}

// gateName renders a gate's function for diagnostics: the kind mnemonic
// for classic gates, "lutK(table)" for LUT nodes.
func gateName(g *Gate) string {
	if g.IsLUT() {
		return fmt.Sprintf("lut%d(%#x)", g.Arity, g.TT)
	}
	return g.Kind.String()
}

// wellFormed reports whether the report so far has no error diagnostics —
// the precondition for running the order-assuming Stats passes.
func wellFormed(r *Report) bool {
	for _, d := range r.Diags {
		if d.Severity == SevError {
			return false
		}
	}
	return true
}

// findCycle runs an iterative three-color DFS over the gate dependency
// graph (edges gate -> operand gate) and returns one cycle as a node-id
// sequence, or nil. Out-of-range operands are ignored here; they are
// reported separately as undriven wires.
func findCycle(nl *Netlist) []NodeID {
	const (
		white = 0 // unvisited
		gray  = 1 // on the current DFS path
		black = 2 // finished
	)
	color := make([]byte, len(nl.Gates))
	parent := make([]int, len(nl.Gates))

	operands := func(gi int) []int {
		var ops []int
		g := nl.Gates[gi]
		for k := 0; k < g.NumOperands(); k++ {
			if j := nl.GateIndex(g.Operand(k)); j >= 0 {
				ops = append(ops, j)
			}
		}
		return ops
	}

	for start := range nl.Gates {
		if color[start] != white {
			continue
		}
		parent[start] = -1
		stack := []int{start}
		for len(stack) > 0 {
			gi := stack[len(stack)-1]
			if color[gi] == white {
				color[gi] = gray
				for _, op := range operands(gi) {
					switch color[op] {
					case white:
						parent[op] = gi
						stack = append(stack, op)
					case gray:
						// Back edge: walk parents from gi to op.
						cycle := []NodeID{nl.GateID(op)}
						for v := gi; v != op && v >= 0; v = parent[v] {
							cycle = append(cycle, nl.GateID(v))
						}
						cycle = append(cycle, nl.GateID(op))
						// Reverse into dependency order.
						for i, j := 0, len(cycle)-1; i < j; i, j = i+1, j-1 {
							cycle[i], cycle[j] = cycle[j], cycle[i]
						}
						return cycle
					}
				}
			} else {
				color[gi] = black
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

func formatCycle(cycle []NodeID) string {
	parts := make([]string, len(cycle))
	for i, id := range cycle {
		parts[i] = fmt.Sprintf("%d", id)
	}
	return strings.Join(parts, " -> ")
}

// countDeadGates counts gates whose output can never reach an output port,
// via reverse reachability from the output set.
func countDeadGates(nl *Netlist) int {
	live := make([]bool, len(nl.Gates))
	var stack []int
	mark := func(id NodeID) {
		if gi := nl.GateIndex(id); gi >= 0 && !live[gi] {
			live[gi] = true
			stack = append(stack, gi)
		}
	}
	for _, out := range nl.Outputs {
		mark(out)
	}
	for len(stack) > 0 {
		gi := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		g := nl.Gates[gi]
		for k := 0; k < g.NumOperands(); k++ {
			mark(g.Operand(k))
		}
	}
	dead := 0
	for _, l := range live {
		if !l {
			dead++
		}
	}
	return dead
}
