package circuit

import (
	"strings"
	"testing"

	"pytfhe/internal/logic"
)

const (
	ttMAJ  = logic.TT(0xE8) // majority(a,b,c)
	ttPAR3 = logic.TT(0x96) // a XOR b XOR c
	ttAND3 = logic.TT(0x80) // a AND b AND c (no single-bootstrap plan)
)

// evalRef evaluates a netlist against a cleartext reference function over
// every input assignment.
func evalRef(t *testing.T, nl *Netlist, ref func(bits []bool) bool) {
	t.Helper()
	n := nl.NumInputs
	for v := 0; v < 1<<n; v++ {
		bits := make([]bool, n)
		for i := range bits {
			bits[i] = v>>i&1 == 1
		}
		outs, err := nl.Evaluate(bits)
		if err != nil {
			t.Fatalf("evaluate: %v", err)
		}
		if len(outs) != 1 {
			t.Fatalf("want 1 output, got %d", len(outs))
		}
		if outs[0] != ref(bits) {
			t.Fatalf("input %03b: got %v, want %v", v, outs[0], ref(bits))
		}
	}
}

func TestBuilderLUTMajority(t *testing.T) {
	b := NewBuilder("maj", AllOptimizations())
	in := b.Inputs("x", 3)
	b.Output("out", b.LUT(ttMAJ, in[0], in[1], in[2]))
	nl := b.MustBuild()
	if len(nl.Gates) != 1 || !nl.Gates[0].IsLUT() || nl.Gates[0].Arity != 3 {
		t.Fatalf("want a single arity-3 LUT gate, got %+v", nl.Gates)
	}
	evalRef(t, nl, func(x []bool) bool {
		n := 0
		for _, v := range x {
			if v {
				n++
			}
		}
		return n >= 2
	})
	s := nl.ComputeStats()
	if s.LUTs != 1 || s.LUTInputs != 3 || s.Bootstrapped != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBuilderLUTConstFold(t *testing.T) {
	b := NewBuilder("fold", AllOptimizations())
	in := b.Inputs("x", 2)
	// majority(a, b, true) = a OR b: the constant folds into the table and
	// the node degenerates to a classic 2-input gate.
	id := b.LUT(ttMAJ, in[0], in[1], b.Const(true))
	b.Output("out", id)
	nl := b.MustBuild()
	if len(nl.Gates) != 1 || nl.Gates[0].IsLUT() || nl.Gates[0].Kind != logic.OR {
		t.Fatalf("want one OR gate, got %+v", nl.Gates)
	}
}

func TestBuilderLUTDuplicateAndIgnored(t *testing.T) {
	b := NewBuilder("dup", AllOptimizations())
	in := b.Inputs("x", 2)
	// majority(a, b, b) = b: duplicate merge reduces the table to identity.
	if id := b.LUT(ttMAJ, in[0], in[1], in[1]); id != in[1] {
		t.Fatalf("majority(a,b,b) should fold to b, got node %d", id)
	}
	// A table that ignores its middle input degenerates to arity 2:
	// f(a,b,c) = a AND c.
	var tt logic.TT
	for v := 0; v < 8; v++ {
		if v>>2&1 == 1 && v&1 == 1 {
			tt |= 1 << v
		}
	}
	b.Output("out", b.LUT(tt, in[0], in[0], in[1]))
	nl := b.MustBuild()
	if len(nl.Gates) != 1 || nl.Gates[0].IsLUT() || nl.Gates[0].Kind != logic.AND {
		t.Fatalf("want one AND gate, got %+v", nl.Gates)
	}
}

func TestBuilderLUTInfeasibleDecomposes(t *testing.T) {
	b := NewBuilder("and3", AllOptimizations())
	in := b.Inputs("x", 3)
	b.Output("out", b.LUT(ttAND3, in[0], in[1], in[2]))
	nl := b.MustBuild()
	for i := range nl.Gates {
		if nl.Gates[i].IsLUT() {
			t.Fatalf("AND3 has no LUT plan; gate %d is still a LUT", i)
		}
	}
	evalRef(t, nl, func(x []bool) bool { return x[0] && x[1] && x[2] })
}

func TestBuilderLUTCSEAcrossPermutation(t *testing.T) {
	b := NewBuilder("cse", AllOptimizations())
	in := b.Inputs("x", 3)
	// Majority is symmetric, so any operand order is the same function;
	// canonicalization must dedup it.
	a := b.LUT(ttMAJ, in[0], in[1], in[2])
	c := b.LUT(ttMAJ, in[2], in[0], in[1])
	if a != c {
		t.Fatalf("permuted majority not CSE'd: %d vs %d", a, c)
	}
	// Parity with one negated operand under a different order: parity is
	// also symmetric, and ¬ absorption plus permutation should reach the
	// same canonical node for both spellings of ¬(a⊕b⊕c).
	n0 := b.LUT(ttPAR3, b.Not(in[0]), in[1], in[2])
	n1 := b.LUT(ttPAR3, in[1], in[2], b.Not(in[0]))
	if n0 != n1 {
		t.Fatalf("negated parity not canonicalized: %d vs %d", n0, n1)
	}
	b.Output("out", n0)
	nl := b.MustBuild()
	evalRef(t, nl, func(x []bool) bool { return !x[0] != x[1] != x[2] })
}

func TestValidateRejectsBadLUT(t *testing.T) {
	mk := func(g Gate) *Netlist {
		return &Netlist{Name: "bad", NumInputs: 3, Gates: []Gate{g}, Outputs: []NodeID{4}}
	}
	cases := []struct {
		name string
		g    Gate
		frag string
	}{
		{"arity", Gate{A: 1, B: 2, C: 3, TT: ttMAJ, Arity: 5}, "arity"},
		{"wide", Gate{A: 1, B: 2, TT: 0xE8, Arity: 2}, "wider"},
		{"infeasible", Gate{A: 1, B: 2, C: 3, TT: ttAND3, Arity: 3}, "no single-bootstrap plan"},
		{"operand", Gate{A: 1, B: 2, C: 9, TT: ttMAJ, Arity: 3}, "topological"},
	}
	for _, c := range cases {
		err := mk(c.g).Validate()
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("%s: error %v, want fragment %q", c.name, err, c.frag)
		}
	}
	if err := mk(Gate{A: 1, B: 2, C: 3, TT: ttMAJ, Arity: 3}).Validate(); err != nil {
		t.Errorf("valid LUT rejected: %v", err)
	}
}

func TestLintLUTDiagnostics(t *testing.T) {
	nl := &Netlist{
		Name:      "lint",
		NumInputs: 3,
		Gates: []Gate{
			{A: 1, B: 2, C: 3, TT: ttMAJ, Arity: 3},  // fine
			{A: 1, B: 2, C: 3, TT: ttMAJ, Arity: 7},  // bad arity
			{A: 1, B: 2, TT: 0x96, Arity: 2},         // wide table
			{A: 1, B: 2, C: 3, TT: ttAND3, Arity: 3}, // infeasible
			{A: 1, B: 2, C: 3, TT: 0xFF, Arity: 3},   // constant LUT
		},
		Outputs: []NodeID{4, 5, 6, 7, 8},
	}
	r := Lint(nl)
	want := map[string]bool{
		CodeBadLUTArity:   false,
		CodeWideLUTTable:  false,
		CodeInfeasibleLUT: false,
		CodeConstGate:     false,
	}
	for _, d := range r.Diags {
		if _, ok := want[d.Code]; ok {
			want[d.Code] = true
		}
	}
	for code, seen := range want {
		if !seen {
			t.Errorf("lint did not emit %s; diags: %v", code, r.Diags)
		}
	}

	// A clean LUT netlist lints clean and counts its bootstraps.
	b := NewBuilder("clean", AllOptimizations())
	in := b.Inputs("x", 3)
	b.Output("out", b.LUT(ttPAR3, in[0], in[1], in[2]))
	clean := b.MustBuild()
	cr := Lint(clean)
	if err := cr.Err(); err != nil {
		t.Fatalf("clean LUT netlist lint: %v", err)
	}
	if cr.Bootstrapped != 1 {
		t.Fatalf("clean LUT netlist bootstrap count %d, want 1", cr.Bootstrapped)
	}
}
