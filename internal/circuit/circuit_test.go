package circuit

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pytfhe/internal/logic"
)

// buildHalfAdder returns the paper's Fig. 6 half adder.
func buildHalfAdder(t *testing.T, opts BuilderOptions) *Netlist {
	t.Helper()
	b := NewBuilder("half_adder", opts)
	a := b.Input("A")
	bb := b.Input("B")
	b.Output("Sum", b.Xor(a, bb))
	b.Output("Carry", b.And(a, bb))
	nl, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return nl
}

func TestHalfAdder(t *testing.T) {
	nl := buildHalfAdder(t, AllOptimizations())
	if len(nl.Gates) != 2 {
		t.Fatalf("half adder has %d gates, want 2", len(nl.Gates))
	}
	for _, tc := range []struct{ a, b, sum, carry bool }{
		{false, false, false, false},
		{false, true, true, false},
		{true, false, true, false},
		{true, true, false, true},
	} {
		out, err := nl.Evaluate([]bool{tc.a, tc.b})
		if err != nil {
			t.Fatal(err)
		}
		if out[0] != tc.sum || out[1] != tc.carry {
			t.Errorf("HA(%v,%v) = %v,%v want %v,%v", tc.a, tc.b, out[0], out[1], tc.sum, tc.carry)
		}
	}
}

func TestConstFold(t *testing.T) {
	b := NewBuilder("fold", AllOptimizations())
	x := b.Input("x")
	if got := b.And(x, b.Const(false)); got != ConstFalse {
		t.Errorf("x AND false = %d, want ConstFalse", got)
	}
	if got := b.And(x, b.Const(true)); got != x {
		t.Errorf("x AND true = %d, want x", got)
	}
	if got := b.Or(x, b.Const(true)); got != ConstTrue {
		t.Errorf("x OR true = %d, want ConstTrue", got)
	}
	if got := b.Xor(b.Const(true), b.Const(true)); got != ConstFalse {
		t.Errorf("true XOR true = %d, want ConstFalse", got)
	}
	if got := b.Gate(logic.NAND, x, b.Const(true)); got == x || got.IsConst() {
		// NAND(x, true) = NOT x: must be a real NOT gate.
		gi := b.gates[int(got)-b.numInputs-1]
		if gi.Kind != logic.NOT || gi.A != x {
			t.Errorf("NAND(x,true) lowered to %v", gi)
		}
	}
	if b.NumGates() != 1 {
		t.Errorf("expected exactly one gate (the NOT), got %d", b.NumGates())
	}
}

func TestSameInputSimplification(t *testing.T) {
	b := NewBuilder("same", AllOptimizations())
	x := b.Input("x")
	if got := b.And(x, x); got != x {
		t.Errorf("x AND x should be x")
	}
	if got := b.Xor(x, x); got != ConstFalse {
		t.Errorf("x XOR x should be false")
	}
	if got := b.Xnor(x, x); got != ConstTrue {
		t.Errorf("x XNOR x should be true")
	}
	n := b.Nand(x, x)
	if n == x || n.IsConst() {
		t.Errorf("x NAND x should be a NOT gate")
	}
}

func TestCSEDeduplicates(t *testing.T) {
	b := NewBuilder("cse", AllOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g1 := b.And(x, y)
	g2 := b.And(y, x) // commuted duplicate
	if g1 != g2 {
		t.Errorf("AND(x,y) and AND(y,x) should hash-cons to the same gate")
	}
	g3 := b.Gate(logic.ANDYN, x, y)
	g4 := b.Gate(logic.ANDNY, y, x) // swapped asymmetric duplicate
	if g3 != g4 {
		t.Errorf("ANDYN(x,y) and ANDNY(y,x) should hash-cons together")
	}
	if b.NumGates() != 2 {
		t.Errorf("expected 2 unique gates, got %d", b.NumGates())
	}
}

func TestNoOptimizationsEmitsEverything(t *testing.T) {
	b := NewBuilder("noopt", NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g1 := b.And(x, y)
	g2 := b.And(x, y)
	if g1 == g2 {
		t.Errorf("without CSE duplicates must be distinct gates")
	}
	if b.NumGates() != 2 {
		t.Errorf("expected 2 gates, got %d", b.NumGates())
	}
}

func TestPushNotAbsorbsInverters(t *testing.T) {
	b := NewBuilder("pushnot", AllOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	nx := b.Not(x)
	g := b.And(nx, y) // should become ANDNY(x, y)
	gi := b.gates[int(g)-b.numInputs-1]
	if gi.Kind.NeedsBootstrap() != true {
		t.Fatalf("expected a bootstrapped gate")
	}
	// The consumer must read x directly, not the NOT gate.
	if gi.A != x && gi.B != x {
		t.Errorf("NOT was not absorbed: gate reads %d,%d", gi.A, gi.B)
	}
	// Double negation cancels entirely.
	if back := b.Not(b.Not(y)); back != y {
		t.Errorf("double negation should return the original node")
	}
}

func TestValidateCatchesOrderViolation(t *testing.T) {
	nl := &Netlist{
		NumInputs: 1,
		Gates:     []Gate{{Kind: logic.AND, A: 3, B: 1}}, // node 3 doesn't exist yet
		Outputs:   []NodeID{2},
	}
	if err := nl.Validate(); err == nil {
		t.Fatal("expected topological order violation")
	}
}

func TestValidateCatchesBadOutput(t *testing.T) {
	nl := &Netlist{NumInputs: 1, Outputs: []NodeID{5}}
	if err := nl.Validate(); err == nil {
		t.Fatal("expected invalid output error")
	}
}

func TestLevelsAndDepth(t *testing.T) {
	b := NewBuilder("levels", NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	g1 := b.And(x, y)   // level 1
	g2 := b.Or(g1, z)   // level 2
	g3 := b.Xor(x, z)   // level 1
	g4 := b.And(g2, g3) // level 3
	b.Output("o", g4)
	nl := b.MustBuild()
	levels := nl.Levels()
	if len(levels) != 3 {
		t.Fatalf("got %d levels, want 3", len(levels))
	}
	if len(levels[0]) != 2 || len(levels[1]) != 1 || len(levels[2]) != 1 {
		t.Fatalf("level sizes %d/%d/%d, want 2/1/1", len(levels[0]), len(levels[1]), len(levels[2]))
	}
	if d := nl.Depth(); d != 3 {
		t.Fatalf("depth = %d, want 3", d)
	}
	_ = g1
}

func TestDepthIgnoresFreeGates(t *testing.T) {
	b := NewBuilder("freedepth", NoOptimizations())
	x := b.Input("x")
	n1 := b.Not(x)
	n2 := b.Not(n1)
	g := b.And(n2, x)
	b.Output("o", g)
	nl := b.MustBuild()
	if d := nl.Depth(); d != 1 {
		t.Fatalf("depth = %d, want 1 (NOTs are free)", d)
	}
}

func TestStats(t *testing.T) {
	nl := buildHalfAdder(t, AllOptimizations())
	s := nl.ComputeStats()
	if s.Gates != 2 || s.Bootstrapped != 2 || s.Free != 0 {
		t.Fatalf("unexpected stats %+v", s)
	}
	if s.ByKind[logic.XOR] != 1 || s.ByKind[logic.AND] != 1 {
		t.Fatalf("unexpected kind histogram %v", s.ByKind)
	}
	if s.Depth != 1 || s.Levels != 1 || s.MaxWidth != 2 {
		t.Fatalf("unexpected structure stats %+v", s)
	}
}

func TestFanOut(t *testing.T) {
	b := NewBuilder("fan", NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g := b.And(x, y)
	b.Output("o1", g)
	b.Output("o2", g)
	nl := b.MustBuild()
	fan := nl.FanOut()
	if fan[x] != 1 || fan[y] != 1 {
		t.Fatalf("input fanout %d/%d, want 1/1", fan[x], fan[y])
	}
	if fan[g] != 2 {
		t.Fatalf("gate fanout %d, want 2", fan[g])
	}
}

// TestOptimizedMatchesUnoptimized builds random expression trees twice —
// with and without optimizations — and checks functional equivalence on all
// inputs. This is the key safety property of the builder rewrites.
func TestOptimizedMatchesUnoptimized(t *testing.T) {
	build := func(seed int64, opts BuilderOptions) *Netlist {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder("rand", opts)
		nodes := []NodeID{b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d")}
		for i := 0; i < 40; i++ {
			kind := logic.Kind(rng.Intn(logic.NumKinds))
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			id := b.Gate(kind, x, y)
			nodes = append(nodes, id)
		}
		b.Output("out0", nodes[len(nodes)-1])
		b.Output("out1", nodes[len(nodes)-2])
		return b.MustBuild()
	}
	f := func(seed int64) bool {
		opt := build(seed, AllOptimizations())
		ref := build(seed, NoOptimizations())
		for v := 0; v < 16; v++ {
			in := []bool{v&1 != 0, v&2 != 0, v&4 != 0, v&8 != 0}
			a, err := opt.Evaluate(in)
			if err != nil {
				return false
			}
			b, err := ref.Evaluate(in)
			if err != nil {
				return false
			}
			if a[0] != b[0] || a[1] != b[1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateInputMismatch(t *testing.T) {
	nl := buildHalfAdder(t, AllOptimizations())
	if _, err := nl.Evaluate([]bool{true}); err == nil {
		t.Fatal("expected input count error")
	}
}

func TestConstOutputs(t *testing.T) {
	b := NewBuilder("constout", AllOptimizations())
	x := b.Input("x")
	b.Output("zero", b.Xor(x, x))
	b.Output("one", b.Xnor(x, x))
	nl := b.MustBuild()
	out, err := nl.Evaluate([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true {
		t.Fatalf("constant outputs evaluated to %v", out)
	}
	if len(nl.Gates) != 0 {
		t.Fatalf("constant outputs should produce no gates, got %d", len(nl.Gates))
	}
}
