package circuit

import (
	"fmt"

	"pytfhe/internal/logic"
)

// BuilderOptions control which local optimizations the builder applies as
// gates are created. The PyTFHE frontend enables everything; the baseline
// framework models (Cingulata, E3, Transpiler) disable some or all of them
// to reproduce their larger netlists.
type BuilderOptions struct {
	// ConstFold evaluates gates whose operands are known constants and
	// specializes gates with one constant operand.
	ConstFold bool
	// CSE hash-conses structurally identical gates (after commutative
	// normalization) so each distinct function is computed once.
	CSE bool
	// PushNot absorbs NOT gates into their consumers by rewriting the
	// consumer's truth table, exploiting that input negation is free in
	// the TFHE gate alphabet.
	PushNot bool
	// SameInput simplifies gates whose two operands are the same node.
	SameInput bool
}

// AllOptimizations returns the options used by the PyTFHE frontend.
func AllOptimizations() BuilderOptions {
	return BuilderOptions{ConstFold: true, CSE: true, PushNot: true, SameInput: true}
}

// NoOptimizations returns options that emit gates exactly as requested.
func NoOptimizations() BuilderOptions {
	return BuilderOptions{}
}

type gateKey struct {
	kind logic.Kind
	a, b NodeID
}

type lutKey struct {
	tt      logic.TT
	a, b, c NodeID
}

// Builder constructs a Netlist incrementally. All nodes must be created
// through the builder so topological order holds by construction.
type Builder struct {
	name        string
	opts        BuilderOptions
	numInputs   int
	inputNames  []string
	gates       []Gate
	outputs     []NodeID
	outputNames []string
	cse         map[gateKey]NodeID
	lutCSE      map[lutKey]NodeID
}

// NewBuilder returns a builder with the given options.
func NewBuilder(name string, opts BuilderOptions) *Builder {
	return &Builder{
		name:   name,
		opts:   opts,
		cse:    make(map[gateKey]NodeID),
		lutCSE: make(map[lutKey]NodeID),
	}
}

// Input adds a named primary input and returns its node id. Inputs must be
// created before any gate that reads them; creating inputs later is legal
// but they receive higher indices than existing gates only in the final
// renumbering, so the builder simply forbids it to keep ids stable.
func (b *Builder) Input(name string) NodeID {
	if len(b.gates) > 0 {
		panic("circuit: all inputs must be declared before the first gate")
	}
	b.numInputs++
	b.inputNames = append(b.inputNames, name)
	return NodeID(b.numInputs)
}

// Inputs declares n inputs named prefix[0..n-1].
func (b *Builder) Inputs(prefix string, n int) []NodeID {
	ids := make([]NodeID, n)
	for i := range ids {
		ids[i] = b.Input(fmt.Sprintf("%s[%d]", prefix, i))
	}
	return ids
}

// Const returns the constant node for v.
func (b *Builder) Const(v bool) NodeID {
	if v {
		return ConstTrue
	}
	return ConstFalse
}

func constVal(id NodeID) bool { return id == ConstTrue }

// notOperand returns (x, true) when id is a NOT gate over x.
func (b *Builder) notOperand(id NodeID) (NodeID, bool) {
	gi := int(id) - b.numInputs - 1
	if gi < 0 || gi >= len(b.gates) {
		return 0, false
	}
	g := b.gates[gi]
	if g.Kind == logic.NOT {
		return g.A, true
	}
	return 0, false
}

// Gate creates (or reuses) a gate computing kind(a, b) and returns its node
// id. Operands may be constants; with ConstFold enabled the gate is
// specialized or eliminated, otherwise constants are materialized as
// TRUE/FALSE-producing gates over input 1 (matching what gate-level
// baselines without constant propagation emit).
func (b *Builder) Gate(kind logic.Kind, a, bb NodeID) NodeID {
	if b.opts.ConstFold {
		if a.IsConst() && bb.IsConst() {
			return b.Const(kind.Eval(constVal(a), constVal(bb)))
		}
		if a.IsConst() {
			// Restrict the truth table to f(const, b).
			if constVal(a) {
				kind = (kind >> 2) & 3 // rows a=1
			} else {
				kind = kind & 3 // rows a=0
			}
			kind |= kind << 2 // ignore a
			a = bb
		} else if bb.IsConst() {
			if constVal(bb) {
				kind = (kind >> 1) & 5 // columns b=1: bits 1,3 -> 0,2
			} else {
				kind = kind & 5 // columns b=0: bits 0,2
			}
			kind |= kind << 1 // ignore b
			bb = a
		}
		// Degenerate kinds after specialization.
		if kind.IsConst() {
			return b.Const(kind.ConstValue())
		}
		switch kind {
		case logic.COPY:
			return a
		case logic.COPYB:
			return bb
		}
	}
	if a.IsConst() || bb.IsConst() {
		// No constant folding: materialize the constant as a gate so the
		// netlist stays within the binary format (which has no immediate
		// operands). TRUE = XNOR(x,x), FALSE = XOR(x,x).
		if a.IsConst() {
			a = b.materializeConst(constVal(a), bb)
		}
		if bb.IsConst() {
			bb = b.materializeConst(constVal(bb), a)
		}
	}

	if b.opts.SameInput && a == bb {
		// f(x, x): truth table restricted to the diagonal.
		f00 := kind.Eval(false, false)
		f11 := kind.Eval(true, true)
		switch {
		case !f00 && !f11:
			return b.Const(false)
		case f00 && f11:
			return b.Const(true)
		case f11: // identity
			return a
		default: // negation
			kind = logic.NOT
			bb = a
		}
	}

	if b.opts.PushNot && kind != logic.NOT && kind != logic.COPY {
		if x, ok := b.notOperand(a); ok {
			kind = kind.NegateA()
			a = x
		}
		if x, ok := b.notOperand(bb); ok {
			kind = kind.NegateB()
			bb = x
		}
		// The rewrite may have produced a degenerate kind.
		if b.opts.ConstFold {
			if kind.IsConst() {
				return b.Const(kind.ConstValue())
			}
			switch kind {
			case logic.COPY:
				return a
			case logic.COPYB:
				return bb
			}
		}
	}

	// Normalize unary forms so NOT always has its operand in A.
	switch kind {
	case logic.NOTB:
		kind, a = logic.NOT, bb
	case logic.COPYB:
		kind, a = logic.COPY, bb
	}
	if kind == logic.NOT || kind == logic.COPY {
		bb = a
		if b.opts.ConstFold && kind == logic.COPY {
			return a // a buffer computes nothing
		}
		if b.opts.PushNot && kind == logic.NOT {
			if x, ok := b.notOperand(a); ok {
				return x // ¬¬x = x
			}
		}
	}

	// Commutative normalization for CSE: order operands of symmetric kinds.
	if b.opts.CSE {
		if kind.SwapInputs() == kind && bb < a {
			a, bb = bb, a
		} else if bb < a {
			// For asymmetric kinds, canonicalize by swapping both operands
			// and the truth table.
			kind = kind.SwapInputs()
			a, bb = bb, a
		}
		key := gateKey{kind, a, bb}
		if id, ok := b.cse[key]; ok {
			return id
		}
		id := b.emit(kind, a, bb)
		b.cse[key] = id
		return id
	}
	return b.emit(kind, a, bb)
}

func (b *Builder) emit(kind logic.Kind, a, bb NodeID) NodeID {
	b.gates = append(b.gates, Gate{Kind: kind, A: a, B: bb})
	return NodeID(b.numInputs + len(b.gates))
}

// LUT creates a gate computing truth table tt over the operands (bit
// x₀·2^(k-1)|…|x₍k₋₁₎ of tt holds f(x₀,…,x₍k₋₁₎), MSB-first like
// logic.TT). Unlike Gate, the LUT path always simplifies regardless of
// BuilderOptions: constant operands fold into the table, duplicate and
// ignored operands are dropped, and tables of effective arity ≤ 2
// degenerate to classic gates (where the usual options then apply).
// Tables with no single-bootstrap plan (logic.SolveLUT) are decomposed by
// Shannon expansion into 2-input gates, so the builder never emits a LUT
// node Validate would reject.
func (b *Builder) LUT(tt logic.TT, ins ...NodeID) NodeID {
	arity := len(ins)
	if arity < 1 || arity > logic.MaxLUTArity {
		panic(fmt.Sprintf("circuit: LUT arity %d outside [1,%d]", arity, logic.MaxLUTArity))
	}
	tt &= logic.TTMask(arity)
	ops := append([]NodeID(nil), ins...)

	// Reduce to minimal support: fold constants into the table, merge
	// duplicate operands, drop ignored ones, until stable.
	for changed := true; changed; {
		changed = false
		for i := 0; i < arity && !changed; i++ {
			if ops[i].IsConst() {
				tt = tt.Restrict(arity, i, constVal(ops[i]))
				ops = append(ops[:i], ops[i+1:]...)
				arity--
				changed = true
			}
		}
		for i := 0; i < arity && !changed; i++ {
			for j := i + 1; j < arity && !changed; j++ {
				if ops[i] == ops[j] {
					tt = tt.MergeDup(arity, i, j)
					ops = append(ops[:j], ops[j+1:]...)
					arity--
					changed = true
				}
			}
		}
		for i := 0; i < arity && !changed; i++ {
			if tt.IgnoresInput(arity, i) {
				tt = tt.DropInput(arity, i)
				ops = append(ops[:i], ops[i+1:]...)
				arity--
				changed = true
			}
		}
	}

	switch arity {
	case 0:
		return b.Const(tt&1 == 1)
	case 1:
		switch tt & 3 {
		case 0:
			return b.Const(false)
		case 3:
			return b.Const(true)
		case 2: // f(x) = x
			return ops[0]
		default: // f(x) = ¬x
			return b.Not(ops[0])
		}
	case 2:
		return b.Gate(tt.Kind(), ops[0], ops[1])
	}

	if b.opts.PushNot {
		negated := false
		for i := 0; i < arity; i++ {
			if x, ok := b.notOperand(ops[i]); ok {
				tt = tt.FlipInput(arity, i)
				ops[i] = x
				negated = true
			}
		}
		if negated {
			// Absorption may have created duplicates (x alongside ¬x):
			// restart the reduction from the top.
			for i := 0; i < arity; i++ {
				for j := i + 1; j < arity; j++ {
					if ops[i] == ops[j] {
						return b.LUT(tt, ops...)
					}
				}
			}
		}
	}

	if !logic.LUTFeasible(arity, tt) {
		// No single-bootstrap plan: Shannon-expand on the first operand.
		// Both cofactors are 2-input functions, recombined with a mux.
		hi := b.LUT(tt.Restrict(arity, 0, true), ops[1], ops[2])
		lo := b.LUT(tt.Restrict(arity, 0, false), ops[1], ops[2])
		return b.Mux(ops[0], hi, lo)
	}

	if b.opts.CSE {
		// Canonicalize operand order (ids are distinct after reduction):
		// sort operands ascending and permute the table to match.
		perm := []int{0, 1, 2}
		for i := 0; i < arity; i++ {
			for j := i + 1; j < arity; j++ {
				if ops[perm[j]] < ops[perm[i]] {
					perm[i], perm[j] = perm[j], perm[i]
				}
			}
		}
		if perm[0] != 0 || perm[1] != 1 {
			tt = tt.Permute(arity, perm)
			ops = []NodeID{ops[perm[0]], ops[perm[1]], ops[perm[2]]}
		}
		key := lutKey{tt: tt, a: ops[0], b: ops[1], c: ops[2]}
		if id, ok := b.lutCSE[key]; ok {
			return id
		}
		id := b.emitLUT(tt, ops)
		b.lutCSE[key] = id
		return id
	}
	return b.emitLUT(tt, ops)
}

func (b *Builder) emitLUT(tt logic.TT, ops []NodeID) NodeID {
	b.gates = append(b.gates, Gate{
		A: ops[0], B: ops[1], C: ops[2],
		TT: tt, Arity: uint8(len(ops)),
	})
	return NodeID(b.numInputs + len(b.gates))
}

// materializeConst produces a node computing the constant v, anchored on an
// arbitrary existing node (or input 1 if none is supplied).
func (b *Builder) materializeConst(v bool, anchor NodeID) NodeID {
	if anchor <= 0 {
		if b.numInputs == 0 {
			panic("circuit: cannot materialize a constant in a netlist with no inputs")
		}
		anchor = 1
	}
	kind := logic.XOR // XOR(x,x) = 0
	if v {
		kind = logic.XNOR // XNOR(x,x) = 1
	}
	if b.opts.CSE {
		key := gateKey{kind, anchor, anchor}
		if id, ok := b.cse[key]; ok {
			return id
		}
		id := b.emit(kind, anchor, anchor)
		b.cse[key] = id
		return id
	}
	return b.emit(kind, anchor, anchor)
}

// Convenience wrappers for the common gates.

// And returns a AND b.
func (b *Builder) And(x, y NodeID) NodeID { return b.Gate(logic.AND, x, y) }

// Or returns a OR b.
func (b *Builder) Or(x, y NodeID) NodeID { return b.Gate(logic.OR, x, y) }

// Xor returns a XOR b.
func (b *Builder) Xor(x, y NodeID) NodeID { return b.Gate(logic.XOR, x, y) }

// Nand returns NOT(a AND b).
func (b *Builder) Nand(x, y NodeID) NodeID { return b.Gate(logic.NAND, x, y) }

// Nor returns NOT(a OR b).
func (b *Builder) Nor(x, y NodeID) NodeID { return b.Gate(logic.NOR, x, y) }

// Xnor returns NOT(a XOR b).
func (b *Builder) Xnor(x, y NodeID) NodeID { return b.Gate(logic.XNOR, x, y) }

// Not returns NOT a.
func (b *Builder) Not(x NodeID) NodeID {
	if x.IsConst() {
		if b.opts.ConstFold {
			return b.Const(!constVal(x))
		}
		x = b.materializeConst(constVal(x), 0)
	}
	return b.Gate(logic.NOT, x, x)
}

// Mux returns sel ? t : f, lowered to the two-input alphabet:
// (t AND sel) OR (f AND NOT sel) — with the free-negation gate forms this
// costs three bootstrapped gates (ANDYN avoids the explicit NOT).
func (b *Builder) Mux(sel, t, f NodeID) NodeID {
	hi := b.Gate(logic.AND, t, sel)
	lo := b.Gate(logic.ANDYN, f, sel) // f AND NOT sel
	return b.Gate(logic.OR, hi, lo)
}

// Output registers a named output.
func (b *Builder) Output(name string, id NodeID) {
	b.outputs = append(b.outputs, id)
	b.outputNames = append(b.outputNames, name)
}

// OutputBus registers a named bus of outputs, LSB first.
func (b *Builder) OutputBus(prefix string, ids []NodeID) {
	for i, id := range ids {
		b.Output(fmt.Sprintf("%s[%d]", prefix, i), id)
	}
}

// NumGates returns the number of gates emitted so far.
func (b *Builder) NumGates() int { return len(b.gates) }

// Build finalizes the netlist. The builder remains usable afterwards, but
// the returned netlist does not alias builder state.
func (b *Builder) Build() (*Netlist, error) {
	nl := &Netlist{
		Name:        b.name,
		NumInputs:   b.numInputs,
		Gates:       append([]Gate(nil), b.gates...),
		Outputs:     append([]NodeID(nil), b.outputs...),
		InputNames:  append([]string(nil), b.inputNames...),
		OutputNames: append([]string(nil), b.outputNames...),
	}
	if err := nl.Validate(); err != nil {
		return nil, err
	}
	return nl, nil
}

// MustBuild is Build for construction code paths that cannot produce
// invalid netlists (panics on error).
func (b *Builder) MustBuild() *Netlist {
	nl, err := b.Build()
	if err != nil {
		panic(err)
	}
	return nl
}
