// Package circuit defines the gate-level intermediate representation of the
// toolchain: a directed acyclic graph of two-input boolean gates with named
// input and output ports, in strict topological order.
//
// A Netlist is what the synthesizer produces, what the PyTFHE assembler
// encodes (see internal/asm), and what every backend executes. Node indices
// follow the paper's sequential naming scheme: index 0 is reserved (the
// header slot of the binary format), inputs occupy 1..NumInputs, and gate i
// has index NumInputs+1+i.
package circuit

import (
	"fmt"

	"pytfhe/internal/logic"
)

// NodeID names a node in the DAG. Valid node ids are positive; the two
// negative sentinels represent the boolean constants, which exist only
// during construction (the builder folds them away) and at output ports.
type NodeID int64

// Constant sentinels. They never appear as gate operands in a built
// Netlist; they may appear in Outputs when an output is statically known.
const (
	Invalid    NodeID = 0
	ConstFalse NodeID = -1
	ConstTrue  NodeID = -2
)

// IsConst reports whether the id is one of the constant sentinels.
func (id NodeID) IsConst() bool { return id == ConstFalse || id == ConstTrue }

// Gate is one two-input gate. For unary kinds (NOT, COPY) both operands
// hold the same node, mirroring the binary encoding.
type Gate struct {
	Kind logic.Kind
	A, B NodeID
}

// Netlist is an immutable gate-level program.
type Netlist struct {
	Name        string
	NumInputs   int
	Gates       []Gate
	Outputs     []NodeID
	InputNames  []string // len NumInputs (may be empty if unnamed)
	OutputNames []string // len(Outputs) (may be empty if unnamed)
}

// NumNodes returns the total number of nodes (inputs + gates).
func (nl *Netlist) NumNodes() int { return nl.NumInputs + len(nl.Gates) }

// GateID returns the node id of gate index i.
func (nl *Netlist) GateID(i int) NodeID { return NodeID(nl.NumInputs + 1 + i) }

// GateIndex returns the gate slice index for node id, or -1 if id names an
// input or constant.
func (nl *Netlist) GateIndex(id NodeID) int {
	i := int(id) - nl.NumInputs - 1
	if i < 0 || i >= len(nl.Gates) {
		return -1
	}
	return i
}

// IsInput reports whether id names a primary input.
func (nl *Netlist) IsInput(id NodeID) bool {
	return id >= 1 && int(id) <= nl.NumInputs
}

// Validate checks the structural invariants: every gate reads only nodes
// with strictly smaller indices (topological order), no gate reads a
// constant sentinel, and every output names a valid node or constant.
func (nl *Netlist) Validate() error {
	if nl.NumInputs < 0 {
		return fmt.Errorf("circuit: negative input count %d", nl.NumInputs)
	}
	if nl.InputNames != nil && len(nl.InputNames) != nl.NumInputs {
		return fmt.Errorf("circuit: %d input names for %d inputs", len(nl.InputNames), nl.NumInputs)
	}
	if nl.OutputNames != nil && len(nl.OutputNames) != len(nl.Outputs) {
		return fmt.Errorf("circuit: %d output names for %d outputs", len(nl.OutputNames), len(nl.Outputs))
	}
	for i, g := range nl.Gates {
		id := nl.GateID(i)
		for _, in := range [2]NodeID{g.A, g.B} {
			if in <= 0 {
				return fmt.Errorf("circuit: gate %d (%v) reads invalid node %d", id, g.Kind, in)
			}
			if in >= id {
				return fmt.Errorf("circuit: gate %d (%v) reads node %d, violating topological order", id, g.Kind, in)
			}
		}
	}
	for i, out := range nl.Outputs {
		if out.IsConst() {
			continue
		}
		if out <= 0 || int(out) > nl.NumNodes() {
			return fmt.Errorf("circuit: output %d names invalid node %d", i, out)
		}
	}
	return nil
}

// Evaluate runs the netlist on cleartext inputs, returning the output bits.
// It is the functional reference for every homomorphic backend.
func (nl *Netlist) Evaluate(inputs []bool) ([]bool, error) {
	if len(inputs) != nl.NumInputs {
		return nil, fmt.Errorf("circuit: %d inputs supplied, want %d", len(inputs), nl.NumInputs)
	}
	values := make([]bool, nl.NumNodes()+1)
	copy(values[1:], inputs)
	for i, g := range nl.Gates {
		values[nl.GateID(i)] = g.Kind.Eval(values[g.A], values[g.B])
	}
	outs := make([]bool, len(nl.Outputs))
	for i, id := range nl.Outputs {
		switch id {
		case ConstTrue:
			outs[i] = true
		case ConstFalse:
			outs[i] = false
		default:
			outs[i] = values[id]
		}
	}
	return outs, nil
}

// Levels partitions the gates into wavefronts: level L contains every gate
// whose operands are all inputs or gates of level < L. The slices hold gate
// indices (not node ids). This is the schedule structure of Algorithm 1.
func (nl *Netlist) Levels() [][]int {
	level := make([]int, nl.NumNodes()+1) // inputs have level 0
	var levels [][]int
	for i, g := range nl.Gates {
		l := level[g.A]
		if lb := level[g.B]; lb > l {
			l = lb
		}
		l++
		level[nl.GateID(i)] = l
		for len(levels) < l {
			levels = append(levels, nil)
		}
		levels[l-1] = append(levels[l-1], i)
	}
	return levels
}

// Depth returns the length of the critical path in bootstrapped gates:
// gates that bootstrap count 1, free gates (NOT) count 0.
func (nl *Netlist) Depth() int {
	depth := make([]int, nl.NumNodes()+1)
	max := 0
	for i, g := range nl.Gates {
		d := depth[g.A]
		if db := depth[g.B]; db > d {
			d = db
		}
		if g.Kind.NeedsBootstrap() {
			d++
		}
		depth[nl.GateID(i)] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Stats summarizes a netlist for reports and the gate-distribution figure.
type Stats struct {
	Inputs       int
	Outputs      int
	Gates        int
	Bootstrapped int // gates that cost a bootstrap (the paper's gate count)
	Free         int // NOT/COPY gates, linear on ciphertexts
	Depth        int // critical path in bootstrapped gates
	Levels       int // wavefront count
	MaxWidth     int // widest wavefront
	ByKind       [logic.NumKinds]int
}

// ComputeStats gathers Stats in one pass.
func (nl *Netlist) ComputeStats() Stats {
	s := Stats{
		Inputs:  nl.NumInputs,
		Outputs: len(nl.Outputs),
		Gates:   len(nl.Gates),
		Depth:   nl.Depth(),
	}
	for _, g := range nl.Gates {
		s.ByKind[g.Kind]++
		if g.Kind.NeedsBootstrap() {
			s.Bootstrapped++
		} else {
			s.Free++
		}
	}
	levels := nl.Levels()
	s.Levels = len(levels)
	for _, l := range levels {
		if len(l) > s.MaxWidth {
			s.MaxWidth = len(l)
		}
	}
	return s
}

// FanOut returns, for every node id, how many gate operands and outputs
// read it. Index 0 is unused.
func (nl *Netlist) FanOut() []int {
	fan := make([]int, nl.NumNodes()+1)
	for _, g := range nl.Gates {
		fan[g.A]++
		fan[g.B]++
	}
	for _, out := range nl.Outputs {
		if out > 0 {
			fan[out]++
		}
	}
	return fan
}

// String returns a short human-readable summary.
func (nl *Netlist) String() string {
	return fmt.Sprintf("%s: %d inputs, %d gates, %d outputs", nl.Name, nl.NumInputs, len(nl.Gates), len(nl.Outputs))
}
