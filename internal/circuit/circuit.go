// Package circuit defines the gate-level intermediate representation of the
// toolchain: a directed acyclic graph of two-input boolean gates with named
// input and output ports, in strict topological order.
//
// A Netlist is what the synthesizer produces, what the PyTFHE assembler
// encodes (see internal/asm), and what every backend executes. Node indices
// follow the paper's sequential naming scheme: index 0 is reserved (the
// header slot of the binary format), inputs occupy 1..NumInputs, and gate i
// has index NumInputs+1+i.
package circuit

import (
	"fmt"

	"pytfhe/internal/logic"
)

// NodeID names a node in the DAG. Valid node ids are positive; the two
// negative sentinels represent the boolean constants, which exist only
// during construction (the builder folds them away) and at output ports.
type NodeID int64

// Constant sentinels. They never appear as gate operands in a built
// Netlist; they may appear in Outputs when an output is statically known.
const (
	Invalid    NodeID = 0
	ConstFalse NodeID = -1
	ConstTrue  NodeID = -2
)

// IsConst reports whether the id is one of the constant sentinels.
func (id NodeID) IsConst() bool { return id == ConstFalse || id == ConstTrue }

// Gate is one gate node. For the classic two-input gates (Arity 0) the
// function is Kind over (A, B); for unary kinds (NOT, COPY) both operands
// hold the same node, mirroring the binary encoding.
//
// When Arity is 2 or 3 the gate is a k-input LUT: it computes the truth
// table TT over its operands read MSB-first (bit A<<2|B<<1|C at arity 3,
// A<<1|B at arity 2, matching logic.TT's convention), and Kind is unused
// (zero). LUT gates always cost exactly one programmable bootstrap, so a
// built netlist only holds tables logic.SolveLUT can separate — Validate
// enforces it.
type Gate struct {
	Kind logic.Kind
	A, B NodeID

	C     NodeID   // third LUT operand (Arity 3 only)
	TT    logic.TT // LUT truth table (Arity ≥ 2 only)
	Arity uint8    // 0: classic 2-input gate; 2..3: k-input LUT
}

// IsLUT reports whether the gate is a multi-input LUT node.
func (g *Gate) IsLUT() bool { return g.Arity != 0 }

// NumOperands returns how many distinct operand slots the gate reads:
// always 2 for classic gates (unary kinds duplicate A into B), Arity for
// LUTs.
func (g *Gate) NumOperands() int {
	if g.Arity >= 2 {
		return int(g.Arity)
	}
	return 2
}

// Operand returns operand slot i (0 → A, 1 → B, 2 → C).
func (g *Gate) Operand(i int) NodeID {
	switch i {
	case 0:
		return g.A
	case 1:
		return g.B
	}
	return g.C
}

// Table returns the gate's truth table in the unified TT encoding —
// the Kind nibble for classic gates, TT for LUTs.
func (g *Gate) Table() logic.TT {
	if g.IsLUT() {
		return g.TT
	}
	return logic.TTOf(g.Kind)
}

// NeedsBootstrap reports whether evaluating the gate homomorphically
// costs a bootstrap. LUT nodes always do — that is their whole point:
// one programmable bootstrap standing in for a cone of 2-input gates.
func (g *Gate) NeedsBootstrap() bool {
	if g.IsLUT() {
		return true
	}
	return g.Kind.NeedsBootstrap()
}

// Eval applies the gate to cleartext operand values (vals[i] is the value
// of Operand(i); classic gates read the first two).
func (g *Gate) Eval(vals [logic.MaxLUTArity]bool) bool {
	if g.IsLUT() {
		var v uint8
		for i := 0; i < int(g.Arity); i++ {
			v <<= 1
			if vals[i] {
				v |= 1
			}
		}
		return g.TT.Eval(v)
	}
	return g.Kind.Eval(vals[0], vals[1])
}

// Netlist is an immutable gate-level program.
type Netlist struct {
	Name        string
	NumInputs   int
	Gates       []Gate
	Outputs     []NodeID
	InputNames  []string // len NumInputs (may be empty if unnamed)
	OutputNames []string // len(Outputs) (may be empty if unnamed)
}

// NumNodes returns the total number of nodes (inputs + gates).
func (nl *Netlist) NumNodes() int { return nl.NumInputs + len(nl.Gates) }

// GateID returns the node id of gate index i.
func (nl *Netlist) GateID(i int) NodeID { return NodeID(nl.NumInputs + 1 + i) }

// GateIndex returns the gate slice index for node id, or -1 if id names an
// input or constant.
func (nl *Netlist) GateIndex(id NodeID) int {
	i := int(id) - nl.NumInputs - 1
	if i < 0 || i >= len(nl.Gates) {
		return -1
	}
	return i
}

// IsInput reports whether id names a primary input.
func (nl *Netlist) IsInput(id NodeID) bool {
	return id >= 1 && int(id) <= nl.NumInputs
}

// Validate checks the structural invariants: every gate reads only nodes
// with strictly smaller indices (topological order), no gate reads a
// constant sentinel, and every output names a valid node or constant.
func (nl *Netlist) Validate() error {
	if nl.NumInputs < 0 {
		return fmt.Errorf("circuit: negative input count %d", nl.NumInputs)
	}
	if nl.InputNames != nil && len(nl.InputNames) != nl.NumInputs {
		return fmt.Errorf("circuit: %d input names for %d inputs", len(nl.InputNames), nl.NumInputs)
	}
	if nl.OutputNames != nil && len(nl.OutputNames) != len(nl.Outputs) {
		return fmt.Errorf("circuit: %d output names for %d outputs", len(nl.OutputNames), len(nl.Outputs))
	}
	for i := range nl.Gates {
		g := &nl.Gates[i]
		id := nl.GateID(i)
		if g.IsLUT() {
			if g.Arity < 2 || int(g.Arity) > logic.MaxLUTArity {
				return fmt.Errorf("circuit: gate %d: LUT arity %d outside [2,%d]", id, g.Arity, logic.MaxLUTArity)
			}
			if g.TT != g.TT&logic.TTMask(int(g.Arity)) {
				return fmt.Errorf("circuit: gate %d: truth table %#x wider than 2^%d bits", id, g.TT, g.Arity)
			}
			if !logic.LUTFeasible(int(g.Arity), g.TT) {
				return fmt.Errorf("circuit: gate %d: LUT table %#x has no single-bootstrap plan", id, g.TT)
			}
		}
		for k := 0; k < g.NumOperands(); k++ {
			in := g.Operand(k)
			if in <= 0 {
				return fmt.Errorf("circuit: gate %d (%v) reads invalid node %d", id, g.Kind, in)
			}
			if in >= id {
				return fmt.Errorf("circuit: gate %d (%v) reads node %d, violating topological order", id, g.Kind, in)
			}
		}
	}
	for i, out := range nl.Outputs {
		if out.IsConst() {
			continue
		}
		if out <= 0 || int(out) > nl.NumNodes() {
			return fmt.Errorf("circuit: output %d names invalid node %d", i, out)
		}
	}
	return nil
}

// Evaluate runs the netlist on cleartext inputs, returning the output bits.
// It is the functional reference for every homomorphic backend.
func (nl *Netlist) Evaluate(inputs []bool) ([]bool, error) {
	if len(inputs) != nl.NumInputs {
		return nil, fmt.Errorf("circuit: %d inputs supplied, want %d", len(inputs), nl.NumInputs)
	}
	values := make([]bool, nl.NumNodes()+1)
	copy(values[1:], inputs)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		var vals [logic.MaxLUTArity]bool
		for k := 0; k < g.NumOperands(); k++ {
			vals[k] = values[g.Operand(k)]
		}
		values[nl.GateID(i)] = g.Eval(vals)
	}
	outs := make([]bool, len(nl.Outputs))
	for i, id := range nl.Outputs {
		switch id {
		case ConstTrue:
			outs[i] = true
		case ConstFalse:
			outs[i] = false
		default:
			outs[i] = values[id]
		}
	}
	return outs, nil
}

// Levels partitions the gates into wavefronts: level L contains every gate
// whose operands are all inputs or gates of level < L. The slices hold gate
// indices (not node ids). This is the schedule structure of Algorithm 1.
func (nl *Netlist) Levels() [][]int {
	level := make([]int, nl.NumNodes()+1) // inputs have level 0
	var levels [][]int
	for i := range nl.Gates {
		g := &nl.Gates[i]
		l := 0
		for k := 0; k < g.NumOperands(); k++ {
			if lv := level[g.Operand(k)]; lv > l {
				l = lv
			}
		}
		l++
		level[nl.GateID(i)] = l
		for len(levels) < l {
			levels = append(levels, nil)
		}
		levels[l-1] = append(levels[l-1], i)
	}
	return levels
}

// Depth returns the length of the critical path in bootstrapped gates:
// gates that bootstrap count 1, free gates (NOT) count 0.
func (nl *Netlist) Depth() int {
	depth := make([]int, nl.NumNodes()+1)
	max := 0
	for i := range nl.Gates {
		g := &nl.Gates[i]
		d := 0
		for k := 0; k < g.NumOperands(); k++ {
			if dv := depth[g.Operand(k)]; dv > d {
				d = dv
			}
		}
		if g.NeedsBootstrap() {
			d++
		}
		depth[nl.GateID(i)] = d
		if d > max {
			max = d
		}
	}
	return max
}

// Stats summarizes a netlist for reports and the gate-distribution figure.
type Stats struct {
	Inputs       int
	Outputs      int
	Gates        int
	Bootstrapped int                 // gates that cost a bootstrap (the paper's gate count)
	Free         int                 // NOT/COPY gates, linear on ciphertexts
	LUTs         int                 // multi-input LUT gates (each one bootstrap)
	LUTInputs    int                 // operand slots across LUT gates (absorption measure)
	Depth        int                 // critical path in bootstrapped gates
	Levels       int                 // wavefront count
	MaxWidth     int                 // widest wavefront
	ByKind       [logic.NumKinds]int // classic gates only; LUTs counted in LUTs
}

// ComputeStats gathers Stats in one pass.
func (nl *Netlist) ComputeStats() Stats {
	s := Stats{
		Inputs:  nl.NumInputs,
		Outputs: len(nl.Outputs),
		Gates:   len(nl.Gates),
		Depth:   nl.Depth(),
	}
	for i := range nl.Gates {
		g := &nl.Gates[i]
		if g.IsLUT() {
			s.LUTs++
			s.LUTInputs += int(g.Arity)
		} else {
			s.ByKind[g.Kind]++
		}
		if g.NeedsBootstrap() {
			s.Bootstrapped++
		} else {
			s.Free++
		}
	}
	levels := nl.Levels()
	s.Levels = len(levels)
	for _, l := range levels {
		if len(l) > s.MaxWidth {
			s.MaxWidth = len(l)
		}
	}
	return s
}

// FanOut returns, for every node id, how many gate operands and outputs
// read it. Index 0 is unused.
func (nl *Netlist) FanOut() []int {
	fan := make([]int, nl.NumNodes()+1)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		for k := 0; k < g.NumOperands(); k++ {
			fan[g.Operand(k)]++
		}
	}
	for _, out := range nl.Outputs {
		if out > 0 {
			fan[out]++
		}
	}
	return fan
}

// String returns a short human-readable summary.
func (nl *Netlist) String() string {
	return fmt.Sprintf("%s: %d inputs, %d gates, %d outputs", nl.Name, nl.NumInputs, len(nl.Gates), len(nl.Outputs))
}
