package circuit

import (
	"strings"
	"testing"

	"pytfhe/internal/logic"
)

func diagCodes(r *Report) map[string]int {
	codes := map[string]int{}
	for _, d := range r.Diags {
		codes[d.Code]++
	}
	return codes
}

// lintAdder builds a clean two-bit adder-ish netlist: Lint must pass it
// with no diagnostics and a sensible structure report.
func TestLintCleanNetlist(t *testing.T) {
	b := NewBuilder("clean", AllOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	b.Output("s", b.Xor(x, y))
	b.Output("c", b.And(x, y))
	nl := b.MustBuild()

	r := Lint(nl)
	if err := r.Err(); err != nil {
		t.Fatalf("clean netlist flagged: %v\n%s", err, r)
	}
	if len(r.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", r.Diags)
	}
	if r.Depth != 1 || r.Gates != 2 || r.DeadGates != 0 {
		t.Fatalf("structure report wrong: %+v", r)
	}
	if r.MaxFanOut < 2 {
		t.Fatalf("fan-out of shared inputs not reported: %+v", r)
	}
}

// TestLintCycle: gates 2 and 3 read each other — a dependency cycle that
// Validate would reject as a forward reference but Lint names precisely.
func TestLintCycle(t *testing.T) {
	nl := &Netlist{
		Name:      "cyclic",
		NumInputs: 1,
		Gates: []Gate{
			{Kind: logic.AND, A: 1, B: 3}, // node 2 reads node 3
			{Kind: logic.OR, A: 2, B: 1},  // node 3 reads node 2
		},
		Outputs: []NodeID{3},
	}
	r := Lint(nl)
	codes := diagCodes(r)
	if codes[CodeCycle] == 0 {
		t.Fatalf("cycle not detected: %v", r.Diags)
	}
	if r.Err() == nil {
		t.Fatal("cyclic netlist must be an error")
	}
	var msg string
	for _, d := range r.Diags {
		if d.Code == CodeCycle {
			msg = d.Message
		}
	}
	if !strings.Contains(msg, "2") || !strings.Contains(msg, "3") {
		t.Fatalf("cycle message does not name the nodes: %q", msg)
	}
}

// TestLintUndrivenWire: an operand past the last defined node.
func TestLintUndrivenWire(t *testing.T) {
	nl := &Netlist{
		Name:      "undriven",
		NumInputs: 1,
		Gates:     []Gate{{Kind: logic.AND, A: 1, B: 9}}, // node 9 does not exist
		Outputs:   []NodeID{2},
	}
	r := Lint(nl)
	if diagCodes(r)[CodeUndrivenWire] != 1 {
		t.Fatalf("undriven wire not detected: %v", r.Diags)
	}
	if r.Err() == nil {
		t.Fatal("undriven wire must be an error")
	}
}

// TestLintBadGateType: a kind outside the 4-bit alphabet.
func TestLintBadGateType(t *testing.T) {
	nl := &Netlist{
		Name:      "badtype",
		NumInputs: 2,
		Gates:     []Gate{{Kind: logic.Kind(17), A: 1, B: 2}},
		Outputs:   []NodeID{3},
	}
	r := Lint(nl)
	if diagCodes(r)[CodeBadGateType] != 1 {
		t.Fatalf("bad gate type not detected: %v", r.Diags)
	}
	if r.Err() == nil {
		t.Fatal("bad gate type must be an error")
	}
}

// TestLintConstGateWarns: constant TRUE/FALSE gates are legal to execute
// but should have been folded — warning, not error.
func TestLintConstGateWarns(t *testing.T) {
	nl := &Netlist{
		Name:      "constgate",
		NumInputs: 1,
		Gates:     []Gate{{Kind: logic.True, A: 1, B: 1}},
		Outputs:   []NodeID{2},
	}
	r := Lint(nl)
	if diagCodes(r)[CodeConstGate] != 1 {
		t.Fatalf("const gate not flagged: %v", r.Diags)
	}
	if r.Err() != nil {
		t.Fatalf("const gate must stay a warning: %v", r.Err())
	}
}

// TestLintOutputDiagnostics: dangling and duplicate output ports.
func TestLintOutputDiagnostics(t *testing.T) {
	nl := &Netlist{
		Name:      "outputs",
		NumInputs: 2,
		Gates:     []Gate{{Kind: logic.XOR, A: 1, B: 2}},
		Outputs:   []NodeID{3, 3, 44},
	}
	r := Lint(nl)
	codes := diagCodes(r)
	if codes[CodeDanglingOut] != 1 {
		t.Fatalf("dangling output not detected: %v", r.Diags)
	}
	if codes[CodeDupOutput] != 1 {
		t.Fatalf("duplicate output not detected: %v", r.Diags)
	}
}

// TestLintDeadGates: a gate feeding nothing is reported (info) with the
// correct count, without making the program an error.
func TestLintDeadGates(t *testing.T) {
	nl := &Netlist{
		Name:      "dead",
		NumInputs: 2,
		Gates: []Gate{
			{Kind: logic.XOR, A: 1, B: 2}, // node 3: exported
			{Kind: logic.AND, A: 1, B: 2}, // node 4: dead
			{Kind: logic.OR, A: 4, B: 4},  // node 5: dead (feeds only dead)
		},
		Outputs: []NodeID{3},
	}
	r := Lint(nl)
	if r.DeadGates != 2 {
		t.Fatalf("dead gates = %d, want 2: %v", r.DeadGates, r.Diags)
	}
	if diagCodes(r)[CodeDeadGates] != 1 {
		t.Fatalf("dead-gate report missing: %v", r.Diags)
	}
	if r.Err() != nil {
		t.Fatalf("dead gates must not be an error: %v", r.Err())
	}
}

// TestLintSelfLoop: a gate reading its own output is a cycle of length 1.
func TestLintSelfLoop(t *testing.T) {
	nl := &Netlist{
		Name:      "self",
		NumInputs: 1,
		Gates:     []Gate{{Kind: logic.AND, A: 2, B: 1}},
		Outputs:   []NodeID{2},
	}
	r := Lint(nl)
	if diagCodes(r)[CodeCycle] == 0 {
		t.Fatalf("self-loop not detected: %v", r.Diags)
	}
}
