package params

import "testing"

func TestDefault128MatchesReference(t *testing.T) {
	p := Default128()
	// The reference TFHE library's default gate bootstrapping set.
	if p.LWEDimension != 630 || p.PolyDegree != 1024 || p.RingCount != 1 {
		t.Fatalf("dimensions: %+v", p)
	}
	if p.DecompLevels != 3 || p.DecompBaseLog != 7 {
		t.Fatalf("gadget: %+v", p)
	}
	if p.KSLevels != 8 || p.KSBaseLog != 2 {
		t.Fatalf("key switch: %+v", p)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCiphertextBytesMatchesPaper(t *testing.T) {
	// The paper reports ~2.46 KB per ciphertext: (630+1)*4 = 2524 bytes.
	if got := Default128().CiphertextBytes(); got != 2524 {
		t.Fatalf("ciphertext bytes = %d, want 2524", got)
	}
}

func TestTestParamsValid(t *testing.T) {
	if err := Test().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExtractedDimension(t *testing.T) {
	if got := Default128().ExtractedLWEDimension(); got != 1024 {
		t.Fatalf("extracted dimension = %d", got)
	}
}

func TestBases(t *testing.T) {
	p := Default128()
	if p.DecompBase() != 128 {
		t.Fatalf("Bg = %d", p.DecompBase())
	}
	if p.KSBase() != 4 {
		t.Fatalf("KS base = %d", p.KSBase())
	}
}

func TestValidateRejectsBadSets(t *testing.T) {
	cases := []func(*GateParams){
		func(p *GateParams) { p.LWEDimension = 0 },
		func(p *GateParams) { p.PolyDegree = 100 },
		func(p *GateParams) { p.PolyDegree = -4 },
		func(p *GateParams) { p.RingCount = 0 },
		func(p *GateParams) { p.DecompLevels = 0 },
		func(p *GateParams) { p.DecompBaseLog = 0 },
		func(p *GateParams) { p.DecompLevels = 10; p.DecompBaseLog = 5 },
		func(p *GateParams) { p.KSLevels = 0 },
		func(p *GateParams) { p.KSLevels = 20; p.KSBaseLog = 2 },
		func(p *GateParams) { p.LWEStdev = 0.7 },
		func(p *GateParams) { p.TLWEStdev = -1 },
	}
	for i, mutate := range cases {
		p := Default128()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid parameters accepted", i)
		}
	}
}
