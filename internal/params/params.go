// Package params defines the TFHE parameter sets used throughout PyTFHE.
//
// The Default128 set follows the defaults of the reference TFHE library
// (Chillotti et al., §VIII of the TFHE paper) for a 128-bit security level:
// LWE dimension n = 630, ring dimension N = 1024 with k = 1, TGSW gadget
// decomposition with l = 3 levels in base 2^7, and a key-switching key with
// t = 8 digits in base 2^2.
//
// The Test set is a drastically reduced configuration used by unit tests. It
// exercises exactly the same code paths (blind rotation, external products,
// key switching) at a fraction of the cost, with noise small enough that
// gate evaluations always decrypt correctly. It provides no security.
package params

import (
	"fmt"
	"math"
)

// GateParams bundles every parameter needed for TFHE gate bootstrapping.
type GateParams struct {
	// Name identifies the set in logs and benchmark output.
	Name string

	// LWE (scalar) ciphertext parameters.
	LWEDimension int     // n: length of an LWE mask
	LWEStdev     float64 // fresh LWE noise standard deviation (as a real in [0,1))

	// TLWE (ring) ciphertext parameters.
	PolyDegree int     // N: degree of the quotient ring X^N+1 (power of two)
	RingCount  int     // k: number of mask polynomials
	TLWEStdev  float64 // fresh TLWE noise standard deviation

	// TGSW gadget decomposition parameters (bootstrapping key).
	DecompLevels  int // l: number of decomposition levels
	DecompBaseLog int // Bgbit: log2 of the decomposition base Bg

	// Key-switching key parameters.
	KSLevels  int // t: number of key-switch digits
	KSBaseLog int // basebit: log2 of the key-switch base
}

// Default128 returns the 128-bit-security gate bootstrapping parameter set
// used by the reference TFHE library and assumed throughout the paper.
func Default128() *GateParams {
	return &GateParams{
		Name:          "default128",
		LWEDimension:  630,
		LWEStdev:      math.Pow(2, -15),
		PolyDegree:    1024,
		RingCount:     1,
		TLWEStdev:     math.Pow(2, -25),
		DecompLevels:  3,
		DecompBaseLog: 7,
		KSLevels:      8,
		KSBaseLog:     2,
	}
}

// Test returns a reduced parameter set for fast unit testing. It offers no
// cryptographic security: the dimensions are tiny and the noise is far below
// what a secure instantiation would require. It exists so that the full
// bootstrapping pipeline can be exercised in milliseconds.
func Test() *GateParams {
	return &GateParams{
		Name:          "test",
		LWEDimension:  64,
		LWEStdev:      math.Pow(2, -20),
		PolyDegree:    256,
		RingCount:     1,
		TLWEStdev:     math.Pow(2, -30),
		DecompLevels:  3,
		DecompBaseLog: 7,
		KSLevels:      8,
		KSBaseLog:     2,
	}
}

// ExtractedLWEDimension returns the dimension of LWE samples extracted from
// a TLWE sample under this parameter set (N*k).
func (p *GateParams) ExtractedLWEDimension() int {
	return p.PolyDegree * p.RingCount
}

// DecompBase returns the gadget decomposition base Bg = 2^DecompBaseLog.
func (p *GateParams) DecompBase() int32 {
	return int32(1) << p.DecompBaseLog
}

// KSBase returns the key-switching base 2^KSBaseLog.
func (p *GateParams) KSBase() int32 {
	return int32(1) << p.KSBaseLog
}

// CiphertextBytes returns the serialized size in bytes of one LWE ciphertext
// under this parameter set: (n+1) torus coefficients of 4 bytes each. For
// Default128 this is (630+1)*4 = 2524 bytes ≈ the 2.46 KB the paper reports
// as the per-gate communication payload.
func (p *GateParams) CiphertextBytes() int {
	return (p.LWEDimension + 1) * 4
}

// Validate reports whether the parameter set is internally consistent.
func (p *GateParams) Validate() error {
	switch {
	case p.LWEDimension <= 0:
		return errf("LWE dimension must be positive, got %d", p.LWEDimension)
	case p.PolyDegree <= 0 || p.PolyDegree&(p.PolyDegree-1) != 0:
		return errf("polynomial degree must be a positive power of two, got %d", p.PolyDegree)
	case p.RingCount <= 0:
		return errf("ring count must be positive, got %d", p.RingCount)
	case p.DecompLevels <= 0 || p.DecompBaseLog <= 0:
		return errf("invalid gadget decomposition l=%d Bgbit=%d", p.DecompLevels, p.DecompBaseLog)
	case p.DecompLevels*p.DecompBaseLog > 32:
		return errf("gadget decomposition deeper than the torus: l*Bgbit = %d > 32", p.DecompLevels*p.DecompBaseLog)
	case p.KSLevels <= 0 || p.KSBaseLog <= 0:
		return errf("invalid key switch t=%d basebit=%d", p.KSLevels, p.KSBaseLog)
	case p.KSLevels*p.KSBaseLog > 32:
		return errf("key switch decomposition deeper than the torus: t*basebit = %d > 32", p.KSLevels*p.KSBaseLog)
	case p.LWEStdev < 0 || p.LWEStdev >= 0.5:
		return errf("LWE stdev out of range: %g", p.LWEStdev)
	case p.TLWEStdev < 0 || p.TLWEStdev >= 0.5:
		return errf("TLWE stdev out of range: %g", p.TLWEStdev)
	}
	return nil
}

func errf(format string, args ...any) error {
	return fmt.Errorf(format, args...)
}
