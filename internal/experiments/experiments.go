// Package experiments regenerates every table and figure of the paper's
// evaluation section. Each experiment returns a structured result and can
// render itself as text; cmd/experiments drives them from the command line
// and bench_test.go exposes them as Go benchmarks.
//
// Methodology (see DESIGN.md §2 and §4): the single quantity measured on
// real hardware is the single-core bootstrapped-gate time of this
// repository's TFHE implementation. Multi-worker, multi-node and GPU
// results come from the schedule simulators in internal/sched and
// internal/gpu, whose cost models are expressed relative to that
// calibration; baseline-framework runtimes follow the paper's own
// methodology (gate count ÷ single-core gate throughput, footnote 1).
// Absolute times therefore track this machine; the relative shapes are the
// reproduction targets.
package experiments

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/circuit"
	"pytfhe/internal/frameworks"
	"pytfhe/internal/gpu"
	"pytfhe/internal/models"
	"pytfhe/internal/sched"
	"pytfhe/internal/vipbench"
)

// Config controls workload sizing and calibration.
type Config struct {
	// Quick scales the MNIST/attention workloads down (small images, small
	// hidden sizes) so the whole suite runs in seconds. The VIP-Bench
	// kernels always run at full size.
	Quick bool
	// GateTime is the calibrated single-core bootstrapped-gate cost. Zero
	// selects DefaultGateTime.
	GateTime time.Duration
}

// DefaultGateTime is used when no calibration is supplied: the order of
// magnitude of this repository's pure-Go bootstrap at the 128-bit
// parameters on one commodity core.
const DefaultGateTime = 100 * time.Millisecond

func (c Config) gateTime() time.Duration {
	if c.GateTime > 0 {
		return c.GateTime
	}
	return DefaultGateTime
}

// mnistSpecs returns the three MNIST specs at the configured scale.
func (c Config) mnistSpecs() []models.MNISTSpec {
	specs := []models.MNISTSpec{models.MNISTS(), models.MNISTM(), models.MNISTL()}
	if c.Quick {
		for i := range specs {
			specs[i] = specs[i].Scaled(10)
		}
	}
	return specs
}

func (c Config) mnistS() models.MNISTSpec {
	if c.Quick {
		return models.MNISTS().Scaled(10)
	}
	return models.MNISTS()
}

func (c Config) attentionSpecs() []models.AttentionSpec {
	specs := []models.AttentionSpec{models.AttentionS(), models.AttentionL()}
	if c.Quick {
		specs[0] = specs[0].Scaled(4, 8)
		specs[1] = specs[1].Scaled(4, 16)
	}
	return specs
}

// Workload is a named netlist used across the figures.
type Workload struct {
	Name    string
	Serial  bool
	Netlist *circuit.Netlist
}

// Compiled workloads are memoized per scale: netlists are immutable, the
// larger models take seconds to minutes to compile, and several figures
// share them.
var workloadCache sync.Map // string -> any

func cacheKey(kind string, quick bool) string {
	if quick {
		return kind + "/quick"
	}
	return kind + "/full"
}

// VIPWorkloads builds every VIP-Bench kernel plus the MNIST and attention
// networks, in ascending gate-count order (the x-axis ordering of
// Figs. 10 and 11).
func (c Config) VIPWorkloads() ([]Workload, error) {
	key := cacheKey("vip", c.Quick)
	if v, ok := workloadCache.Load(key); ok {
		return v.([]Workload), nil
	}
	ws, err := c.buildVIPWorkloads()
	if err != nil {
		return nil, err
	}
	workloadCache.Store(key, ws)
	return ws, nil
}

func (c Config) buildVIPWorkloads() ([]Workload, error) {
	var out []Workload
	for _, b := range vipbench.All() {
		nl, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", b.Name, err)
		}
		out = append(out, Workload{Name: b.Name, Serial: b.Serial, Netlist: nl})
	}
	dt := chiseltorch.NewFixed(8, 8)
	for _, spec := range c.mnistSpecs() {
		w, err := vipbench.CompileMNIST(spec, dt)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{Name: spec.Name, Netlist: w.Netlist})
	}
	for _, spec := range c.attentionSpecs() {
		w, err := vipbench.CompileAttention(spec, dt)
		if err != nil {
			return nil, err
		}
		out = append(out, Workload{Name: spec.Name, Netlist: w.Netlist})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return len(out[i].Netlist.Gates) < len(out[j].Netlist.Gates)
	})
	return out, nil
}

// mnistSNetlists compiles MNIST_S with the ChiselTorch frontend and the
// three baseline frameworks (memoized: Figs. 12-14 share these netlists).
func (c Config) mnistSNetlists() (map[string]*circuit.Netlist, error) {
	key := cacheKey("mnistS", c.Quick)
	if v, ok := workloadCache.Load(key); ok {
		return v.(map[string]*circuit.Netlist), nil
	}
	nls, err := c.buildMNISTSNetlists()
	if err != nil {
		return nil, err
	}
	workloadCache.Store(key, nls)
	return nls, nil
}

func (c Config) buildMNISTSNetlists() (map[string]*circuit.Netlist, error) {
	spec := c.mnistS()
	out := map[string]*circuit.Netlist{}
	model := spec.ToChiselTorch(chiseltorch.NewFixed(8, 8))
	compiled, err := model.Compile(1, spec.Image, spec.Image)
	if err != nil {
		return nil, err
	}
	out["pytfhe"] = compiled.Netlist
	for _, fw := range frameworks.AllBaselines() {
		nl, err := fw.CompileMNIST(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", fw.Name(), err)
		}
		out[fw.Name()] = nl
	}
	return out, nil
}

// platforms returns the modeled CPU platforms of Table II.
func (c Config) platforms() (single, oneNode, fourNodes sched.Platform) {
	gt := c.gateTime()
	return sched.SingleCore(gt), sched.XeonNode(1, gt), sched.XeonNode(4, gt)
}

func (c Config) devices() (a5000, rtx4090 gpu.Device) {
	gt := c.gateTime()
	return gpu.A5000Scaled(gt), gpu.RTX4090Scaled(gt)
}

// fprintf writes formatted output, ignoring errors (report writers are
// in-memory buffers or stdout).
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
