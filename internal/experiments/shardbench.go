package experiments

import (
	"fmt"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/cluster"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// ShardPoint is one worker-count measurement of the cluster's two
// execution paths on the same in-process TCP cluster: per-gate operand
// dispatch against cached-shard plan replay. Wire bytes are measured at
// the coordinator's sockets (gob framing included), per steady-state run.
// Throughput is logical bootstraps per second, the same convention as the
// rest of the report, so the shard path's plan deduplication counts as
// speedup.
type ShardPoint struct {
	Workers               int     `json:"workers"`
	GateBootstrapsPerSec  float64 `json:"gate_dispatch_bootstraps_per_sec"`
	GateWireBytesPerRun   int64   `json:"gate_dispatch_wire_bytes_per_run"`
	ShardBootstrapsPerSec float64 `json:"shard_bootstraps_per_sec"`
	ShardWireBytesPerRun  int64   `json:"shard_wire_bytes_per_run"`
}

// ClusterBench measures gate dispatch against sharded plan replay at each
// worker count: a real coordinator and n in-process workers over localhost
// TCP, two slots each. Both paths get one untimed warm-up run — for the
// shard path that run pays the plan compile and the one-time shard
// shipment, so the timed runs are the steady state of a coordinator
// re-evaluating a cached program (only input and boundary ciphertexts on
// the wire).
func ClusterBench(ck *boot.CloudKey, nl *circuit.Netlist, inputs []*lwe.Sample, workerCounts []int) ([]ShardPoint, error) {
	boots := float64(nl.ComputeStats().Bootstrapped)
	var points []ShardPoint
	for _, n := range workerCounts {
		pt, err := clusterPoint(ck, nl, inputs, n, boots)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

func clusterPoint(ck *boot.CloudKey, nl *circuit.Netlist, inputs []*lwe.Sample, n int, boots float64) (ShardPoint, error) {
	pt := ShardPoint{Workers: n}
	coord, err := cluster.NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		return pt, fmt.Errorf("experiments: cluster bench: %w", err)
	}
	defer func() { _ = coord.Close() }()
	for i := 0; i < n; i++ {
		go func() { _ = cluster.NewWorker(2).Serve(coord.Addr()) }()
	}
	if err := coord.AcceptWorkers(n); err != nil {
		return pt, fmt.Errorf("experiments: cluster bench: %w", err)
	}

	wirePerRun := func() int64 {
		return coord.LastStat.WireBytesSent + coord.LastStat.WireBytesRecv
	}
	if _, err := coord.Run(nl, inputs); err != nil {
		return pt, fmt.Errorf("experiments: cluster bench gate(%d): %w", n, err)
	}
	const gateRuns = 2
	var gateWire int64
	start := time.Now()
	for i := 0; i < gateRuns; i++ {
		if _, err := coord.Run(nl, inputs); err != nil {
			return pt, fmt.Errorf("experiments: cluster bench gate(%d): %w", n, err)
		}
		gateWire += wirePerRun()
	}
	if e := time.Since(start).Seconds(); e > 0 {
		pt.GateBootstrapsPerSec = gateRuns * boots / e
	}
	pt.GateWireBytesPerRun = gateWire / gateRuns

	if _, err := coord.RunSharded(nl, inputs); err != nil {
		return pt, fmt.Errorf("experiments: cluster bench shard(%d): %w", n, err)
	}
	const shardRuns = 3
	var shardWire int64
	start = time.Now()
	for i := 0; i < shardRuns; i++ {
		if _, err := coord.RunSharded(nl, inputs); err != nil {
			return pt, fmt.Errorf("experiments: cluster bench shard(%d): %w", n, err)
		}
		shardWire += wirePerRun()
	}
	if e := time.Since(start).Seconds(); e > 0 {
		pt.ShardBootstrapsPerSec = shardRuns * boots / e
	}
	pt.ShardWireBytesPerRun = shardWire / shardRuns
	return pt, nil
}
