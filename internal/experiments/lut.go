package experiments

import (
	"fmt"
	"io"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// LUTBenchNetlist builds the cone-heavy voting workload the multi-bit LUT
// sweep measures: six independent 9-input blocks, each three
// not-all-equal detectors NAE(a,b,c) = (a⊕b)∨(b⊕c) — three gates whose
// composed table 0x7E has a single-bootstrap plan, so each cone collapses
// to one LUT — combined by a two-XOR parity chain whose second XOR
// absorbs the first into a PARITY3 LUT. 11 bootstrapped gates per block
// classic, 4 programmable bootstraps clustered: the ≥2× bootstraps-per-
// gate drop the acceptance criterion demands, with margin. Builder
// optimizations are off so the logical gate count is exactly 11 per
// block; the blocks use disjoint inputs so neither CSE nor plan-level
// functional deduplication can shrink the LUT-off baseline.
func LUTBenchNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-cones", circuit.NoOptimizations())
	const blocks = 6
	ins := b.Inputs("x", blocks*9)
	for c := 0; c < blocks; c++ {
		xs := ins[c*9 : (c+1)*9]
		nae := func(x, y, z circuit.NodeID) circuit.NodeID {
			return b.Or(b.Xor(x, y), b.Xor(y, z))
		}
		out := b.Xor(
			b.Xor(nae(xs[0], xs[1], xs[2]), nae(xs[3], xs[4], xs[5])),
			nae(xs[6], xs[7], xs[8]))
		b.Output("o", out)
	}
	return b.MustBuild()
}

// LUTSweepReport is the Fig. 14-style netlist-size comparison with LUT
// synthesis on and off: the same source netlist through the classic
// pipeline and through lut-cluster, each replayed on the plan backend.
// Serialized under "lut_sweep" in BENCH_PLAN.json; CheckPlanParity holds
// the on-path throughput to the ±10% guard and requires the bootstrap
// reduction to stay ≥ 2×.
type LUTSweepReport struct {
	Netlist             string  `json:"netlist"`
	Workers             int     `json:"workers"`
	LogicalGates        int     `json:"logical_gates"` // classic pipeline gate count
	OffBootstraps       int     `json:"off_exec_bootstraps"`
	OnGates             int     `json:"on_logical_gates"` // after lut-cluster
	OnLUTs              int     `json:"on_luts"`
	OnBootstraps        int     `json:"on_exec_bootstraps"`
	OffBootstrapsPerSec float64 `json:"off_bootstraps_per_sec"`
	OnBootstrapsPerSec  float64 `json:"on_bootstraps_per_sec"`
	// BootstrapReduction is OffBootstraps / OnBootstraps — both paths
	// compute the same source netlist, so this is exactly the drop in
	// bootstraps executed per logical gate.
	BootstrapReduction float64 `json:"bootstrap_reduction"`
}

// LUTSweepBench measures the LUT on/off pair on LUTBenchNetlist. encrypt
// turns a plaintext bit vector into backend inputs (kp.EncryptBits); both
// paths replay their cached plan after an untimed capture. Bit-exactness
// of the two paths is the agreement matrix's job (cmd/pytfhe); here only
// the output arities are cross-checked.
func LUTSweepBench(ck *boot.CloudKey, encrypt func([]bool) []*lwe.Sample, workers int) (*LUTSweepReport, error) {
	src := LUTBenchNetlist()
	off, err := synth.Optimize(src)
	if err != nil {
		return nil, fmt.Errorf("experiments: lut sweep classic synth: %w", err)
	}
	on, err := synth.OptimizeLUT(src)
	if err != nil {
		return nil, fmt.Errorf("experiments: lut sweep lut synth: %w", err)
	}
	r := &LUTSweepReport{Netlist: src.Name, Workers: workers}
	r.LogicalGates = len(off.Netlist.Gates)
	onStats := on.Netlist.ComputeStats()
	r.OnGates = onStats.Gates
	r.OnLUTs = onStats.LUTs

	bits := make([]bool, src.NumInputs)
	for i := range bits {
		bits[i] = (i*2654435761)>>3&1 == 1
	}
	inputs := encrypt(bits)

	run := func(nl *circuit.Netlist) (int, float64, []*lwe.Sample, error) {
		be := backend.NewPlanned(ck, workers)
		if _, err := be.Run(nl, inputs); err != nil { // untimed capture
			return 0, 0, nil, err
		}
		const replays = 3
		start := time.Now()
		var outs []*lwe.Sample
		for i := 0; i < replays; i++ {
			var err error
			if outs, err = be.Run(nl, inputs); err != nil {
				return 0, 0, nil, err
			}
		}
		boots := be.PlanStats.ExecBootstraps
		var perSec float64
		if e := time.Since(start).Seconds(); e > 0 {
			perSec = float64(replays*boots) / e
		}
		return boots, perSec, outs, nil
	}

	var offOuts, onOuts []*lwe.Sample
	if r.OffBootstraps, r.OffBootstrapsPerSec, offOuts, err = run(off.Netlist); err != nil {
		return nil, fmt.Errorf("experiments: lut sweep off path: %w", err)
	}
	if r.OnBootstraps, r.OnBootstrapsPerSec, onOuts, err = run(on.Netlist); err != nil {
		return nil, fmt.Errorf("experiments: lut sweep on path: %w", err)
	}
	if len(offOuts) != len(onOuts) {
		return nil, fmt.Errorf("experiments: lut sweep output arity mismatch: %d vs %d", len(offOuts), len(onOuts))
	}
	if r.OnBootstraps > 0 {
		r.BootstrapReduction = float64(r.OffBootstraps) / float64(r.OnBootstraps)
	}
	return r, nil
}

// RenderLUTSweep writes the human-readable form of the LUT on/off sweep.
func RenderLUTSweep(w io.Writer, r *LUTSweepReport) {
	fprintf(w, "LUT synthesis on/off on %s (%d workers)\n", r.Netlist, r.Workers)
	fprintf(w, "  off: %d gates, %d bootstraps executed, %.1f bootstraps/s\n",
		r.LogicalGates, r.OffBootstraps, r.OffBootstrapsPerSec)
	fprintf(w, "  on:  %d gates (%d LUTs), %d bootstraps executed, %.1f bootstraps/s\n",
		r.OnGates, r.OnLUTs, r.OnBootstraps, r.OnBootstrapsPerSec)
	fprintf(w, "  bootstraps per logical gate: %.2fx fewer with -lut\n", r.BootstrapReduction)
}
