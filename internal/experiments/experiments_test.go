package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

var quick = Config{Quick: true, GateTime: 10 * time.Millisecond}

func TestFig07BlindRotationDominates(t *testing.T) {
	g, err := Fig07GateProfile(params.Test(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.BlindRotate <= g.KeySwitch {
		t.Fatalf("blind rotation (%v) must dominate key switching (%v)", g.BlindRotate, g.KeySwitch)
	}
	if g.CommFraction > 0.05 {
		t.Fatalf("communication fraction %.4f too large", g.CommFraction)
	}
	var buf bytes.Buffer
	g.Render(&buf)
	if !strings.Contains(buf.String(), "blind rotation") {
		t.Fatal("render missing content")
	}
}

func TestFig0809GraphBeatsCuFHEOnChain(t *testing.T) {
	tl := Fig0809GPUTimelines(quick)
	if tl.Graph.Makespan >= tl.CuFHE.Makespan {
		t.Fatalf("graph (%v) should be at least as fast as cuFHE (%v)", tl.Graph.Makespan, tl.CuFHE.Makespan)
	}
	// Fig. 8 pattern: 4 gates, each with copies and a launch.
	if tl.CuFHE.Batches != 4 {
		t.Fatalf("cuFHE should need 4 serialized batches, got %d", tl.CuFHE.Batches)
	}
	var buf bytes.Buffer
	tl.Render(&buf)
	if !strings.Contains(buf.String(), "copy-in") {
		t.Fatal("timeline render missing segments")
	}
}

func TestFig10Shape(t *testing.T) {
	rows, err := Fig10DistributedCPU(quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 18+3+2 {
		t.Fatalf("Fig. 10 covers %d workloads, want 23 (18 VIP + 3 MNIST + 2 attention)", len(rows))
	}
	// Sorted ascending by gate count.
	for i := 1; i < len(rows); i++ {
		if rows[i].Gates < rows[i-1].Gates {
			t.Fatalf("rows not sorted by gate count at %d", i)
		}
	}
	byName := map[string]ScalingRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// The largest benchmarks scale near-ideally on one node (paper: 17.4 of 18).
	big := rows[len(rows)-1]
	if big.Speedup1Node < 10 || big.Speedup1Node > 18 {
		t.Fatalf("largest workload %s 1-node speedup %.1f, want near 18", big.Name, big.Speedup1Node)
	}
	if big.Speedup4Nodes < 30 || big.Speedup4Nodes > 72 {
		t.Fatalf("largest workload %s 4-node speedup %.1f, want well above 1-node but below 72", big.Name, big.Speedup4Nodes)
	}
	// Serial workloads see far less benefit (paper: NR-Solver et al.).
	// nr-solver retains some intra-multiplier parallelism; parrondo's
	// bit-serial decision chain has essentially none.
	nr := byName["nr-solver"]
	if nr.Speedup4Nodes > 0.75*big.Speedup4Nodes {
		t.Fatalf("nr-solver 4-node speedup %.1f should trail the largest workload's %.1f",
			nr.Speedup4Nodes, big.Speedup4Nodes)
	}
	par := byName["parrondo"]
	if par.Speedup4Nodes > big.Speedup4Nodes/2 {
		t.Fatalf("parrondo 4-node speedup %.1f should be far below %.1f",
			par.Speedup4Nodes, big.Speedup4Nodes)
	}
	var buf bytes.Buffer
	RenderFig10(&buf, rows)
	if !strings.Contains(buf.String(), "MNIST_L") {
		t.Fatal("render missing MNIST_L")
	}
}

func TestFig11Shape(t *testing.T) {
	rows, err := Fig11GPU(quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]GPURow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	big := rows[len(rows)-1]
	if big.SpeedupA5000 < 8 {
		t.Fatalf("largest workload GPU speedup %.1f too low (paper: up to 61.5x)", big.SpeedupA5000)
	}
	if big.Speedup4090 <= big.SpeedupA5000 {
		t.Fatalf("4090 (%.1fx) should beat A5000 (%.1fx)", big.Speedup4090, big.SpeedupA5000)
	}
	// Serial benchmarks see modest gains (paper: Parrondo, Euler, NRSolver).
	for _, name := range []string{"parrondo", "nr-solver"} {
		if s := byName[name].SpeedupA5000; s > big.SpeedupA5000/2 {
			t.Fatalf("%s speedup %.1f should be modest vs %.1f", name, s, big.SpeedupA5000)
		}
	}
	var buf bytes.Buffer
	RenderFig11(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFig12Shape(t *testing.T) {
	rows, err := Fig12TranspilerCross(quick)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Config != "GT+GC (1 core)" || rows[0].Speedup != 1 {
		t.Fatalf("baseline row wrong: %+v", rows[0])
	}
	for _, r := range rows[1:] {
		if r.Speedup <= 1 {
			t.Fatalf("%s speedup %.2f should exceed the GT+GC baseline", r.Config, r.Speedup)
		}
	}
	// PyT+PyT beats GT+PyT on the same backend class (fewer gates).
	var gtCPU, pytCPU, gt4090, pyt4090 float64
	for _, r := range rows {
		switch r.Config {
		case "GT+PyT CPU (4 nodes)":
			gtCPU = r.Speedup
		case "PyT+PyT CPU (4 nodes)":
			pytCPU = r.Speedup
		case "GT+PyT GPU (4090)":
			gt4090 = r.Speedup
		case "PyT+PyT GPU (4090)":
			pyt4090 = r.Speedup
		}
	}
	if pytCPU <= gtCPU {
		t.Fatalf("ChiselTorch frontend should beat Transpiler frontend on CPU: %.1f vs %.1f", pytCPU, gtCPU)
	}
	if pyt4090 <= gt4090 {
		t.Fatalf("ChiselTorch frontend should beat Transpiler frontend on GPU: %.1f vs %.1f", pyt4090, gt4090)
	}
	var buf bytes.Buffer
	RenderFig12(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty render")
	}
}

func TestFig13Table4Shape(t *testing.T) {
	cmp, err := Fig13Table4Comparison(quick)
	if err != nil {
		t.Fatal(err)
	}
	// Every PyTFHE configuration beats every baseline (Table IV is all > 1).
	for cfg, row := range cmp.Speedups {
		for base, s := range row {
			if s <= 1 {
				t.Fatalf("%s vs %s speedup %.2f, want > 1", cfg, base, s)
			}
		}
	}
	// Speedups grow monotonically along the platform ladder, per Table IV.
	ladder := []string{"PyTFHE Single Core", "PyTFHE 1 Node", "PyTFHE 4 Nodes", "PyTFHE A5000 GPU", "PyTFHE 4090 GPU"}
	for i := 1; i < len(ladder); i++ {
		if cmp.Speedups[ladder[i]]["transpiler"] <= cmp.Speedups[ladder[i-1]]["transpiler"] {
			t.Fatalf("speedup ladder not monotone between %s and %s", ladder[i-1], ladder[i])
		}
	}
	// Transpiler speedups dwarf E3/Cingulata speedups (28.4 vs 1.5/1.8).
	sc := cmp.Speedups["PyTFHE Single Core"]
	if sc["transpiler"] < 3*sc["e3"] {
		t.Fatalf("transpiler speedup %.1f should far exceed e3's %.1f", sc["transpiler"], sc["e3"])
	}
	var buf bytes.Buffer
	cmp.Render(&buf)
	if !strings.Contains(buf.String(), "Table IV") {
		t.Fatal("render missing Table IV")
	}
}

func TestFig14Shape(t *testing.T) {
	d, err := Fig14GateDistribution(quick)
	if err != nil {
		t.Fatal(err)
	}
	if !(d.Counts["pytfhe"] < d.Counts["cingulata"] &&
		d.Counts["cingulata"] < d.Counts["e3"] &&
		d.Counts["e3"] < d.Counts["transpiler"]) {
		t.Fatalf("Fig. 14 ordering broken: %v", d.Counts)
	}
	if d.Ratio["pytfhe"] != 1 {
		t.Fatalf("self ratio %v", d.Ratio["pytfhe"])
	}
	var buf bytes.Buffer
	d.Render(&buf)
	if !strings.Contains(buf.String(), "transpiler") {
		t.Fatal("render missing frameworks")
	}
}

func TestExecutorScalingMeasured(t *testing.T) {
	rng := trand.NewSeeded([]byte("executor-scaling-test"))
	sk, ck, err := boot.GenerateKeys(params.Test(), rng)
	if err != nil {
		t.Fatal(err)
	}
	// Four independent NAND chains: enough slack for 2 workers, deep
	// enough that the level barrier is visible.
	b := circuit.NewBuilder("scaling", circuit.NoOptimizations())
	ins := b.Inputs("x", 5)
	for c := 0; c < 4; c++ {
		cur := ins[c]
		for d := 0; d < 5; d++ {
			cur = b.Gate(logic.NAND, cur, ins[4])
		}
		b.Output("o", cur)
	}
	nl := b.MustBuild()
	inputs := backend.EncryptInputs(sk, make([]bool, nl.NumInputs))

	rows, err := ExecutorScaling(ck, nl, inputs, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Pool.Elapsed <= 0 || r.Async.Elapsed <= 0 || r.Predicted <= 0 {
			t.Fatalf("row not measured: %+v", r)
		}
		if r.Async.Utilization <= 0 {
			t.Fatalf("async utilization not recorded: %+v", r.Async)
		}
	}
	var buf bytes.Buffer
	RenderExecutorScaling(&buf, nl.Name, rows)
	if !strings.Contains(buf.String(), "async/pool") {
		t.Fatal("render missing comparison column")
	}
}

func TestRenderTables(t *testing.T) {
	var buf bytes.Buffer
	RenderTable1(&buf)
	RenderPlatforms(&buf, quick)
	out := buf.String()
	for _, want := range []string{"Conv2d", "argmax", "Table II", "Table III", "rtx-4090"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tables render missing %q", want)
		}
	}
}
