package experiments

import (
	"bytes"
	"strings"
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/params"
	"pytfhe/internal/synth"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

// TestLUTBenchNetlistClusters pins the bench workload's shape: 11
// bootstrapped gates per block classic, 4 LUT bootstraps per block after
// lut-cluster — the ≥2× acceptance floor with room to spare — and the two
// forms evaluate identically on cleartext bits.
func TestLUTBenchNetlistClusters(t *testing.T) {
	src := LUTBenchNetlist()
	off, err := synth.Optimize(src)
	if err != nil {
		t.Fatal(err)
	}
	on, err := synth.OptimizeLUT(src)
	if err != nil {
		t.Fatal(err)
	}
	offBoots := off.Netlist.ComputeStats().Bootstrapped
	onStats := on.Netlist.ComputeStats()
	if onStats.LUTs == 0 {
		t.Fatalf("no LUTs after clustering: %+v", onStats)
	}
	if ratio := float64(offBoots) / float64(onStats.Bootstrapped); ratio < 2 {
		t.Fatalf("bootstrap reduction %.2fx below the 2x acceptance floor (%d -> %d)",
			ratio, offBoots, onStats.Bootstrapped)
	}
	for _, seed := range []uint64{0, 0x5a5a5a5a5a5a, ^uint64(0)} {
		bits := make([]bool, src.NumInputs)
		for i := range bits {
			bits[i] = seed>>(uint(i)%64)&1 == 1
		}
		want, err := off.Netlist.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		got, err := on.Netlist.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %#x output %d: clustered %v, classic %v", seed, i, got[i], want[i])
			}
		}
	}
}

// TestLUTSweepBenchMeasured runs the sweep end to end with test keys and
// checks every serialized field is filled and the parity guard's hard
// invariant holds on a fresh report.
func TestLUTSweepBenchMeasured(t *testing.T) {
	rng := trand.NewSeeded([]byte("lut-sweep-test"))
	sk, ck, err := boot.GenerateKeys(params.Test(), rng)
	if err != nil {
		t.Fatal(err)
	}
	encrypt := func(bits []bool) []*lwe.Sample { return backend.EncryptInputs(sk, bits) }
	r, err := LUTSweepBench(ck, encrypt, 2)
	if err != nil {
		t.Fatal(err)
	}
	if r.OffBootstraps == 0 || r.OnBootstraps == 0 || r.OnLUTs == 0 {
		t.Fatalf("sweep not measured: %+v", r)
	}
	if r.OffBootstrapsPerSec <= 0 || r.OnBootstrapsPerSec <= 0 {
		t.Fatalf("throughput not measured: %+v", r)
	}
	if r.BootstrapReduction < 2 {
		t.Fatalf("bootstrap reduction %.2fx below the 2x floor", r.BootstrapReduction)
	}

	// The parity guard accepts the fresh report against itself and against
	// a pre-LUT baseline with no lut_sweep block.
	base := &PlanBenchReport{LUT: r}
	if err := CheckPlanParity(&PlanBenchReport{LUT: r}, base, 0.10); err != nil {
		t.Fatalf("parity guard rejected a self-comparison: %v", err)
	}
	if err := CheckPlanParity(&PlanBenchReport{LUT: r}, &PlanBenchReport{}, 0.10); err != nil {
		t.Fatalf("parity guard rejected a pre-LUT baseline: %v", err)
	}
	weak := *r
	weak.BootstrapReduction = 1.5
	if err := CheckPlanParity(&PlanBenchReport{LUT: &weak}, base, 0.10); err == nil {
		t.Fatal("parity guard accepted a sub-2x reduction")
	}

	var buf bytes.Buffer
	RenderLUTSweep(&buf, r)
	if !strings.Contains(buf.String(), "fewer with -lut") {
		t.Fatalf("render missing reduction line: %s", buf.String())
	}
}
