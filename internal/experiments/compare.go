package experiments

import (
	"io"
	"sort"
	"time"

	"pytfhe/internal/gpu"
	"pytfhe/internal/logic"
	"pytfhe/internal/sched"
	"pytfhe/internal/synth"
)

// --- Figure 12: frontend/backend cross on MNIST_S ---

// CrossRow is one configuration of Fig. 12: a frontend (Google Transpiler
// or ChiselTorch) paired with a backend.
type CrossRow struct {
	Config  string
	Gates   int
	Runtime time.Duration
	Speedup float64 // over GT+GC
}

// Fig12TranspilerCross evaluates MNIST_S under the five configurations of
// Fig. 12: GT+GC (Transpiler frontend, codegen single-core backend),
// GT+PyT on the distributed CPU and GPUs (same Transpiler IR, PyTFHE
// executors), and PyT+PyT (ChiselTorch frontend, PyTFHE executors).
func Fig12TranspilerCross(c Config) ([]CrossRow, error) {
	nls, err := c.mnistSNetlists()
	if err != nil {
		return nil, err
	}
	gt := nls["transpiler"]
	pyt := nls["pytfhe"]
	_, _, four := c.platforms()
	a5000, rtx4090 := c.devices()
	single := sched.SingleCore(c.gateTime())

	baseline := sched.Simulate(gt, single).Makespan
	rows := []CrossRow{
		{Config: "GT+GC (1 core)", Gates: len(gt.Gates), Runtime: baseline},
		{Config: "GT+PyT CPU (4 nodes)", Gates: len(gt.Gates), Runtime: sched.Simulate(gt, four).Makespan},
		{Config: "GT+PyT GPU (A5000)", Gates: len(gt.Gates), Runtime: gpu.GraphDriver{Dev: a5000}.Simulate(gt).Makespan},
		{Config: "GT+PyT GPU (4090)", Gates: len(gt.Gates), Runtime: gpu.GraphDriver{Dev: rtx4090}.Simulate(gt).Makespan},
		{Config: "PyT+PyT CPU (4 nodes)", Gates: len(pyt.Gates), Runtime: sched.Simulate(pyt, four).Makespan},
		{Config: "PyT+PyT GPU (A5000)", Gates: len(pyt.Gates), Runtime: gpu.GraphDriver{Dev: a5000}.Simulate(pyt).Makespan},
		{Config: "PyT+PyT GPU (4090)", Gates: len(pyt.Gates), Runtime: gpu.GraphDriver{Dev: rtx4090}.Simulate(pyt).Makespan},
	}
	for i := range rows {
		rows[i].Speedup = float64(baseline) / float64(rows[i].Runtime)
	}
	return rows, nil
}

// RenderFig12 writes the cross-configuration table.
func RenderFig12(w io.Writer, rows []CrossRow) {
	fprintf(w, "Fig. 12 — Transpiler vs PyTFHE on MNIST_S (speedups over GT+GC)\n")
	fprintf(w, "  %-24s %10s %14s %10s\n", "configuration", "gates", "runtime", "speedup")
	for _, r := range rows {
		fprintf(w, "  %-24s %10d %14v %9.1fx\n", r.Config, r.Gates, r.Runtime.Round(time.Millisecond), r.Speedup)
	}
	fprintf(w, "  (paper: GT+PyT CPU 52x, GT+PyT GPU 69-89x; PyT+PyT raises it further)\n")
}

// --- Figure 13 & Table IV: framework comparison on MNIST_S ---

// FrameworkRow is one framework/backend runtime for MNIST_S.
type FrameworkRow struct {
	Name    string
	Gates   int
	Runtime time.Duration
}

// Comparison bundles Fig. 13's runtimes and Table IV's speedup matrix.
type Comparison struct {
	Baselines []FrameworkRow // E3, Cingulata, Transpiler (single core)
	PyTFHE    []FrameworkRow // single core, 1 node, 4 nodes, A5000, 4090
	// Speedups[pytfheConfig][baseline] = baseline runtime / PyTFHE runtime.
	Speedups map[string]map[string]float64
}

// Fig13Table4Comparison computes the framework comparison. Baseline
// runtimes use the paper's methodology: gate count divided by the
// single-core gate throughput (footnote 1).
func Fig13Table4Comparison(c Config) (*Comparison, error) {
	nls, err := c.mnistSNetlists()
	if err != nil {
		return nil, err
	}
	gt := c.gateTime()
	single := sched.SingleCore(gt)
	_, one, four := c.platforms()
	a5000, rtx4090 := c.devices()
	pyt := nls["pytfhe"]

	cmp := &Comparison{Speedups: map[string]map[string]float64{}}
	for _, name := range []string{"e3", "cingulata", "transpiler"} {
		nl := nls[name]
		cmp.Baselines = append(cmp.Baselines, FrameworkRow{
			Name:    name,
			Gates:   len(nl.Gates),
			Runtime: sched.Simulate(nl, single).Makespan,
		})
	}
	cmp.PyTFHE = []FrameworkRow{
		{Name: "PyTFHE Single Core", Gates: len(pyt.Gates), Runtime: sched.Simulate(pyt, single).Makespan},
		{Name: "PyTFHE 1 Node", Gates: len(pyt.Gates), Runtime: sched.Simulate(pyt, one).Makespan},
		{Name: "PyTFHE 4 Nodes", Gates: len(pyt.Gates), Runtime: sched.Simulate(pyt, four).Makespan},
		{Name: "PyTFHE A5000 GPU", Gates: len(pyt.Gates), Runtime: gpu.GraphDriver{Dev: a5000}.Simulate(pyt).Makespan},
		{Name: "PyTFHE 4090 GPU", Gates: len(pyt.Gates), Runtime: gpu.GraphDriver{Dev: rtx4090}.Simulate(pyt).Makespan},
	}
	for _, p := range cmp.PyTFHE {
		row := map[string]float64{}
		for _, b := range cmp.Baselines {
			row[b.Name] = float64(b.Runtime) / float64(p.Runtime)
		}
		cmp.Speedups[p.Name] = row
	}
	return cmp, nil
}

// Render writes Fig. 13 and Table IV.
func (cmp *Comparison) Render(w io.Writer) {
	fprintf(w, "Fig. 13 — MNIST_S runtime by framework (baselines at single-core gate throughput)\n")
	for _, b := range cmp.Baselines {
		fprintf(w, "  %-22s %10d gates %14v\n", b.Name, b.Gates, b.Runtime.Round(time.Millisecond))
	}
	for _, p := range cmp.PyTFHE {
		fprintf(w, "  %-22s %10d gates %14v\n", p.Name, p.Gates, p.Runtime.Round(time.Millisecond))
	}
	fprintf(w, "\nTable IV — speedup of PyTFHE over E3, Cingulata, Transpiler\n")
	fprintf(w, "  %-22s %10s %12s %12s\n", "", "E3", "Cingulata", "Transpiler")
	for _, p := range cmp.PyTFHE {
		s := cmp.Speedups[p.Name]
		fprintf(w, "  %-22s %9.1fx %11.1fx %11.1fx\n", p.Name, s["e3"], s["cingulata"], s["transpiler"])
	}
	fprintf(w, "  (paper's Table IV: 1.5/1.8/28.4 single core up to 218.9/266.9/4070.5 on the 4090)\n")
}

// --- Figure 14: gate distribution ---

// Distribution is the per-framework gate census of MNIST_S.
type Distribution struct {
	Counts map[string]int                 // total gates per framework
	ByKind map[string][logic.NumKinds]int // per-kind histogram
	LUTs   map[string]int                 // multi-input LUT gates (lut-cluster output)
	Ratio  map[string]float64             // PyTFHE gates / framework gates
}

// Fig14GateDistribution builds MNIST_S with every frontend and counts
// gates. The "pytfhe+lut" row is the PyTFHE netlist re-synthesized through
// lut-cluster — the netlist-size comparison with LUT synthesis on and off.
func Fig14GateDistribution(c Config) (*Distribution, error) {
	nls, err := c.mnistSNetlists()
	if err != nil {
		return nil, err
	}
	d := &Distribution{
		Counts: map[string]int{},
		ByKind: map[string][logic.NumKinds]int{},
		LUTs:   map[string]int{},
		Ratio:  map[string]float64{},
	}
	for name, nl := range nls {
		s := nl.ComputeStats()
		d.Counts[name] = len(nl.Gates)
		d.ByKind[name] = s.ByKind
		d.LUTs[name] = s.LUTs
	}
	if on, err := synth.OptimizeLUT(nls["pytfhe"]); err == nil {
		s := on.Netlist.ComputeStats()
		d.Counts["pytfhe+lut"] = len(on.Netlist.Gates)
		d.ByKind["pytfhe+lut"] = s.ByKind
		d.LUTs["pytfhe+lut"] = s.LUTs
	}
	py := float64(d.Counts["pytfhe"])
	for name, n := range d.Counts {
		d.Ratio[name] = py / float64(n)
	}
	return d, nil
}

// Render writes the gate distribution.
func (d *Distribution) Render(w io.Writer) {
	fprintf(w, "Fig. 14 — gate distribution of the MNIST_S network by framework\n")
	names := make([]string, 0, len(d.Counts))
	for n := range d.Counts {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool { return d.Counts[names[i]] < d.Counts[names[j]] })
	for _, n := range names {
		fprintf(w, "  %-12s %10d gates (PyTFHE/this = %.3f)\n", n, d.Counts[n], d.Ratio[n])
		hist := d.ByKind[n]
		for k := logic.Kind(0); k < logic.NumKinds; k++ {
			if hist[k] == 0 {
				continue
			}
			fprintf(w, "      %-6s %10d\n", k, hist[k])
		}
		if d.LUTs[n] > 0 {
			fprintf(w, "      %-6s %10d\n", "LUT", d.LUTs[n])
		}
	}
	fprintf(w, "  (paper: PyTFHE = 65.3%% of Cingulata, 53.6%% of E3, far below Transpiler)\n")
}

// --- Tables I-III ---

// RenderTable1 lists the ChiselTorch primitives (Table I), verified by the
// chiseltorch package tests.
func RenderTable1(w io.Writer) {
	fprintf(w, "Table I — ChiselTorch supported primitives\n")
	fprintf(w, "  layers:  Conv1d Conv2d BatchNorm1d BatchNorm2d Linear ReLU\n")
	fprintf(w, "           MaxPool1d MaxPool2d AvgPool1d AvgPool2d Flatten (+SelfAttention via primitives)\n")
	fprintf(w, "  tensors: matmul dot == != > < >= <= view reshape transpose pad\n")
	fprintf(w, "           sum prod argmax argmin + - * / max min\n")
	fprintf(w, "  dtypes:  SInt(w) UInt via SInt, Fixed(i,f), Float(e,m)\n")
}

// RenderPlatforms writes the modeled platforms (Tables II and III).
func RenderPlatforms(w io.Writer, c Config) {
	gt := c.gateTime()
	_, one, four := c.platforms()
	a5000, rtx4090 := c.devices()
	fprintf(w, "Table II — CPU platform models (calibrated gate time %v)\n", gt)
	for _, p := range []sched.Platform{one, four} {
		fprintf(w, "  %-14s nodes=%d workers/node=%d dispatch=%v sync=%v ct=%dB net=%.0f MB/s\n",
			p.Name, p.Nodes, p.WorkersPerNode, p.Cost.DispatchOverhead, p.Cost.LevelSync,
			p.Cost.CiphertextBytes, p.Cost.NetBandwidth/1e6)
	}
	fprintf(w, "Table III — GPU device models\n")
	for _, d := range []gpu.Device{a5000, rtx4090} {
		fprintf(w, "  %-10s SMs=%d kernel=%v launch=%v copy/ct=%v\n",
			d.Name, d.SMs, d.GateKernel, d.KernelLaunch, d.CopyPerCT)
	}
}
