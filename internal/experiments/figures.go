package experiments

import (
	"io"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/gpu"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/sched"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/trand"
)

// --- Figure 7: single-core gate profile ---

// GateProfile is the Fig. 7 breakdown of one bootstrapped gate.
type GateProfile struct {
	BlindRotate  time.Duration
	Extract      time.Duration
	KeySwitch    time.Duration
	Total        time.Duration
	CommBytes    int
	CommTime     time.Duration
	CommFraction float64
}

// Fig07GateProfile measures a real bootstrapped gate (with the given
// parameter set) and models the per-gate communication of the distributed
// backend: three ciphertexts (two in, one out) over the Table II 1 Gbit
// NIC.
func Fig07GateProfile(p *params.GateParams, samples int) (GateProfile, error) {
	rng := trand.NewSeeded([]byte("fig7"))
	sk, ck, err := boot.GenerateKeys(p, rng)
	if err != nil {
		return GateProfile{}, err
	}
	eng := gate.NewEngine(ck)
	eng.Eval.Profile = true
	a := gate.NewCiphertext(p)
	b := gate.NewCiphertext(p)
	out := gate.NewCiphertext(p)
	gate.Encrypt(a, true, sk, rng)
	gate.Encrypt(b, false, sk, rng)
	if samples < 1 {
		samples = 1
	}
	// Warm-up evaluation, then reset the profile.
	if err := eng.Binary(logic.NAND, out, a, b); err != nil {
		return GateProfile{}, err
	}
	eng.Eval.Prof = boot.Profile{}
	for i := 0; i < samples; i++ {
		if err := eng.Binary(logic.NAND, out, a, b); err != nil {
			return GateProfile{}, err
		}
	}
	prof := eng.Eval.Prof
	g := GateProfile{
		BlindRotate: prof.BlindRotate / time.Duration(samples),
		Extract:     prof.Extract / time.Duration(samples),
		KeySwitch:   prof.KeySwitch / time.Duration(samples),
		CommBytes:   3 * p.CiphertextBytes(),
	}
	g.Total = g.BlindRotate + g.Extract + g.KeySwitch
	// 1 Gbit/s NIC from Table II.
	g.CommTime = time.Duration(float64(g.CommBytes) / 125e6 * float64(time.Second))
	g.CommFraction = float64(g.CommTime) / float64(g.Total+g.CommTime)
	return g, nil
}

// Render writes the profile as text.
func (g GateProfile) Render(w io.Writer) {
	fprintf(w, "Fig. 7 — profile of one bootstrapped TFHE gate (single core)\n")
	fprintf(w, "  blind rotation : %12v (%5.1f%%)\n", g.BlindRotate, 100*float64(g.BlindRotate)/float64(g.Total))
	fprintf(w, "  sample extract : %12v (%5.1f%%)\n", g.Extract, 100*float64(g.Extract)/float64(g.Total))
	fprintf(w, "  key switching  : %12v (%5.1f%%)\n", g.KeySwitch, 100*float64(g.KeySwitch)/float64(g.Total))
	fprintf(w, "  total compute  : %12v\n", g.Total)
	fprintf(w, "  communication  : %12v for %d B (%.3f%% of gate; paper: 0.094%%)\n",
		g.CommTime, g.CommBytes, 100*g.CommFraction)
}

// --- Figures 8 & 9: GPU execution timelines ---

// GPUTimelines holds the simulated cuFHE and CUDA-graph executions of the
// same small gate chain.
type GPUTimelines struct {
	CuFHE gpu.Exec
	Graph gpu.Exec
}

// Fig0809GPUTimelines simulates the four-dependent-gate example of Figs. 8
// and 9 on the A5000 model.
func Fig0809GPUTimelines(c Config) GPUTimelines {
	nl := chainNetlist(4)
	a5000, _ := c.devices()
	return GPUTimelines{
		CuFHE: gpu.CuFHEDriver{Dev: a5000}.Simulate(nl),
		Graph: gpu.GraphDriver{Dev: a5000}.Simulate(nl),
	}
}

// chainNetlist builds a dependent chain of NAND gates.
func chainNetlist(depth int) *circuit.Netlist {
	b := circuit.NewBuilder("chain", circuit.NoOptimizations())
	x := b.Input("a")
	y := b.Input("b")
	cur := x
	for i := 0; i < depth; i++ {
		cur = b.Gate(logic.NAND, cur, y)
	}
	b.Output("o", cur)
	return b.MustBuild()
}

// Render writes both timelines.
func (t GPUTimelines) Render(w io.Writer) {
	fprintf(w, "Fig. 8 — cuFHE-style execution of 4 dependent gates\n")
	renderTimeline(w, t.CuFHE)
	fprintf(w, "Fig. 9 — PyTFHE CUDA-graph execution of the same gates\n")
	renderTimeline(w, t.Graph)
	fprintf(w, "  makespan: cuFHE %v vs graph %v (%.1fx)\n",
		t.CuFHE.Makespan, t.Graph.Makespan,
		float64(t.CuFHE.Makespan)/float64(t.Graph.Makespan))
}

func renderTimeline(w io.Writer, e gpu.Exec) {
	for _, s := range e.Timeline {
		fprintf(w, "  %-9s start=%-12v dur=%-12v gates=%d\n", s.Kind, s.Start, s.Dur, s.Gates)
	}
	fprintf(w, "  breakdown: copy=%v kernel=%v launch=%v construct=%v total=%v\n",
		e.Copy, e.Kernel, e.Launch, e.Construct, e.Makespan)
}

// --- Figure 10: distributed CPU scaling across VIP-Bench ---

// ScalingRow is one benchmark's row in Fig. 10.
type ScalingRow struct {
	Name          string
	Gates         int
	Bootstraps    int
	Serial        bool
	SingleCore    time.Duration
	OneNode       sched.Result
	FourNodes     sched.Result
	Speedup1Node  float64
	Speedup4Nodes float64
}

// Fig10DistributedCPU simulates every workload on the single-core, 1-node
// (18 worker) and 4-node (72 worker) platforms.
func Fig10DistributedCPU(c Config) ([]ScalingRow, error) {
	ws, err := c.VIPWorkloads()
	if err != nil {
		return nil, err
	}
	single, one, four := c.platforms()
	rows := make([]ScalingRow, 0, len(ws))
	for _, w := range ws {
		s := sched.Simulate(w.Netlist, single)
		r1 := sched.Simulate(w.Netlist, one)
		r4 := sched.Simulate(w.Netlist, four)
		rows = append(rows, ScalingRow{
			Name:          w.Name,
			Gates:         len(w.Netlist.Gates),
			Bootstraps:    r1.Bootstraps,
			Serial:        w.Serial,
			SingleCore:    s.Makespan,
			OneNode:       r1,
			FourNodes:     r4,
			Speedup1Node:  float64(s.Makespan) / float64(r1.Makespan),
			Speedup4Nodes: float64(s.Makespan) / float64(r4.Makespan),
		})
	}
	return rows, nil
}

// RenderFig10 writes the scaling table (sorted by gate count, like the
// paper's x axis).
func RenderFig10(w io.Writer, rows []ScalingRow) {
	fprintf(w, "Fig. 10 — distributed CPU vs single-threaded CPU (speedup; ideals: 18 and 72)\n")
	fprintf(w, "  %-22s %10s %8s %10s %10s\n", "benchmark", "gates", "serial", "1 node", "4 nodes")
	for _, r := range rows {
		mark := ""
		if r.Serial {
			mark = "*"
		}
		fprintf(w, "  %-22s %10d %8s %9.1fx %9.1fx\n", r.Name, r.Gates, mark, r.Speedup1Node, r.Speedup4Nodes)
	}
	fprintf(w, "  (* mostly-serial workloads; the paper reports up to 17.4x / 60.5x on the largest benchmarks)\n")
}

// --- Figure 11: GPU vs cuFHE across VIP-Bench ---

// GPURow is one benchmark's row in Fig. 11.
type GPURow struct {
	Name         string
	Gates        int
	CuFHE        time.Duration
	GraphA5000   time.Duration
	Graph4090    time.Duration
	SpeedupA5000 float64
	Speedup4090  float64
}

// Fig11GPU simulates every workload under the cuFHE driver and the PyTFHE
// graph driver on both boards.
func Fig11GPU(c Config) ([]GPURow, error) {
	ws, err := c.VIPWorkloads()
	if err != nil {
		return nil, err
	}
	a5000, rtx4090 := c.devices()
	rows := make([]GPURow, 0, len(ws))
	for _, w := range ws {
		cu := gpu.CuFHEDriver{Dev: a5000}.Simulate(w.Netlist)
		ga := gpu.GraphDriver{Dev: a5000}.Simulate(w.Netlist)
		g4 := gpu.GraphDriver{Dev: rtx4090}.Simulate(w.Netlist)
		rows = append(rows, GPURow{
			Name:         w.Name,
			Gates:        len(w.Netlist.Gates),
			CuFHE:        cu.Makespan,
			GraphA5000:   ga.Makespan,
			Graph4090:    g4.Makespan,
			SpeedupA5000: float64(cu.Makespan) / float64(ga.Makespan),
			Speedup4090:  float64(cu.Makespan) / float64(g4.Makespan),
		})
	}
	return rows, nil
}

// RenderFig11 writes the GPU comparison table.
func RenderFig11(w io.Writer, rows []GPURow) {
	fprintf(w, "Fig. 11 — PyTFHE GPU backend vs cuFHE (speedup over cuFHE on the A5000 model)\n")
	fprintf(w, "  %-22s %10s %12s %12s %12s\n", "benchmark", "gates", "cuFHE", "A5000", "4090")
	for _, r := range rows {
		fprintf(w, "  %-22s %10d %12v %10.1fx %10.1fx\n", r.Name, r.Gates, r.CuFHE.Round(time.Microsecond), r.SpeedupA5000, r.Speedup4090)
	}
	fprintf(w, "  (paper: up to 61.5x on the largest benchmarks; serial kernels see modest gains)\n")
}
