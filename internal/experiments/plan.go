package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/torus"
	"pytfhe/internal/trand"
)

// ImbalancedNetlist builds the deep, irregular ripple workload the executor
// benchmarks share: seven serial NAND chains of unequal depths {30, 30, 30,
// 30, 30, 12, 6} against one shared operand, with builder optimizations off
// so the logical gate count is exactly the sum of the depths. Most
// wavefronts hold five ready gates — one more than four workers — so
// barriered executors pay a nearly-empty second round per level, while the
// chains' period-2 ciphertext sequences give the plan backend's exact
// functional deduplication its best case.
func ImbalancedNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("ripple-imbalanced", circuit.NoOptimizations())
	depths := []int{30, 30, 30, 30, 30, 12, 6}
	ins := b.Inputs("x", len(depths)+1)
	for c, depth := range depths {
		cur := ins[c]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.NAND, cur, ins[len(depths)])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

// PlanBenchReport is one point on the plan-replay performance trajectory:
// the capture/replay backend against the dynamic executors on the same
// netlist at the same worker count, plus the capture statistics that explain
// the gap. Throughput is logical bootstraps per second — the program's
// effective throughput, so deduplication counts as speedup. (Earlier
// revisions serialized these under *_gates_per_sec names; LoadPlanBaseline
// still reads both.) Serialized to BENCH_PLAN.json by `make bench`.
type PlanBenchReport struct {
	Netlist                string  `json:"netlist"`
	Workers                int     `json:"workers"`
	LogicalGates           int     `json:"logical_gates"`
	LogicalBootstraps      int     `json:"logical_bootstraps"`
	ExecBootstraps         int     `json:"exec_bootstraps"`
	Levels                 int     `json:"levels"`
	ArenaSlots             int     `json:"arena_slots"`
	CompileMs              float64 `json:"compile_ms"`
	AsyncBootstrapsPerSec  float64 `json:"async_bootstraps_per_sec"`
	SharedBootstrapsPerSec float64 `json:"shared_bootstraps_per_sec"`
	PlanBootstrapsPerSec   float64 `json:"plan_bootstraps_per_sec"`
	// PlanSpeedup is PlanBootstrapsPerSec / AsyncBootstrapsPerSec, the
	// acceptance metric (must be ≥ 1.2 at 4 workers).
	PlanSpeedup float64 `json:"plan_speedup_vs_async"`

	// Batched blind-rotation kernel: the single-gate bootstrap path
	// against gate.BinaryBatch on one core, 64 independent NAND gates per
	// measurement. BatchBootstrapsPerSec is the batch-16 point (the
	// parity-guarded figure); BatchSpeedup = batch / single must be ≥ 1.5.
	SingleBootstrapsPerSec float64      `json:"single_bootstraps_per_sec"`
	BatchBootstrapsPerSec  float64      `json:"batch_bootstraps_per_sec"`
	BatchSpeedup           float64      `json:"batch_speedup_vs_single"`
	BatchSweep             []BatchPoint `json:"batch_sweep,omitempty"`

	// Cluster execution paths on an in-process TCP cluster: per-gate
	// operand dispatch against cached-shard plan replay. The headline
	// figures are the 4-worker point of ShardSweep; the wire-byte pair is
	// the data-plane claim — per steady-state run the shard path ships
	// O(cut edges) boundary ciphertexts where gate dispatch ships O(gates)
	// operands, so ShardWireBytesPerRun must stay strictly below
	// GateWireBytesPerRun (enforced by CheckPlanParity).
	GateBootstrapsPerSec  float64      `json:"gate_dispatch_bootstraps_per_sec"`
	GateWireBytesPerRun   int64        `json:"gate_dispatch_wire_bytes_per_run"`
	ShardBootstrapsPerSec float64      `json:"shard_bootstraps_per_sec"`
	ShardWireBytesPerRun  int64        `json:"shard_wire_bytes_per_run"`
	ShardSpeedup          float64      `json:"shard_speedup_vs_gate_dispatch"`
	ShardSweep            []ShardPoint `json:"shard_sweep,omitempty"`

	// LUT is the multi-bit LUT synthesis on/off sweep on LUTBenchNetlist
	// (see LUTSweepBench); nil in reports written before the LUT path
	// existed, which LoadPlanBaseline and CheckPlanParity tolerate.
	LUT *LUTSweepReport `json:"lut_sweep,omitempty"`
}

// BatchPoint is one batch-size measurement of the batched kernel sweep.
type BatchPoint struct {
	Batch            int     `json:"batch"`
	BootstrapsPerSec float64 `json:"bootstraps_per_sec"`
}

// PlanBench measures the plan backend against Async and Shared on one
// netlist. The plan backend runs once untimed to pay the capture, then the
// timed runs replay the cached plan — the steady state of a server
// evaluating the same program repeatedly.
func PlanBench(ck *boot.CloudKey, nl *circuit.Netlist, inputs []*lwe.Sample, workers int) (*PlanBenchReport, error) {
	boots := float64(nl.ComputeStats().Bootstrapped)
	r := &PlanBenchReport{Netlist: nl.Name, Workers: workers}

	async := backend.NewAsync(ck, workers)
	if _, err := async.Run(nl, inputs); err != nil {
		return nil, fmt.Errorf("experiments: plan bench async(%d): %w", workers, err)
	}
	r.AsyncBootstrapsPerSec = async.Stats.BootstrapsPerSec

	shared := backend.NewShared(workers)
	defer shared.Close()
	key, err := shared.RegisterKey(ck)
	if err != nil {
		return nil, fmt.Errorf("experiments: plan bench shared key: %w", err)
	}
	start := time.Now()
	if _, err := shared.Submit(context.Background(), key, nl, inputs); err != nil {
		return nil, fmt.Errorf("experiments: plan bench shared(%d): %w", workers, err)
	}
	if e := time.Since(start).Seconds(); e > 0 {
		r.SharedBootstrapsPerSec = boots / e
	}

	planned := backend.NewPlanned(ck, workers)
	if _, err := planned.Run(nl, inputs); err != nil { // untimed capture
		return nil, fmt.Errorf("experiments: plan bench capture(%d): %w", workers, err)
	}
	const replays = 3
	start = time.Now()
	for i := 0; i < replays; i++ {
		if _, err := planned.Run(nl, inputs); err != nil {
			return nil, fmt.Errorf("experiments: plan bench replay(%d): %w", workers, err)
		}
	}
	if e := time.Since(start).Seconds(); e > 0 {
		r.PlanBootstrapsPerSec = replays * boots / e
	}

	ps := planned.PlanStats
	r.LogicalGates = ps.LogicalGates
	r.LogicalBootstraps = ps.LogicalBootstraps
	r.ExecBootstraps = ps.ExecBootstraps
	r.Levels = ps.Levels
	r.ArenaSlots = ps.ArenaSlots
	r.CompileMs = float64(ps.CompileTime.Microseconds()) / 1e3
	if r.AsyncBootstrapsPerSec > 0 {
		r.PlanSpeedup = r.PlanBootstrapsPerSec / r.AsyncBootstrapsPerSec
	}

	r.SingleBootstrapsPerSec, r.BatchSweep = batchKernelBench(ck)
	for _, pt := range r.BatchSweep {
		if pt.Batch == 16 {
			r.BatchBootstrapsPerSec = pt.BootstrapsPerSec
		}
	}
	if r.SingleBootstrapsPerSec > 0 {
		r.BatchSpeedup = r.BatchBootstrapsPerSec / r.SingleBootstrapsPerSec
	}

	r.ShardSweep, err = ClusterBench(ck, nl, inputs, []int{2, 4})
	if err != nil {
		return nil, err
	}
	for _, pt := range r.ShardSweep {
		if pt.Workers == 4 {
			r.GateBootstrapsPerSec = pt.GateBootstrapsPerSec
			r.GateWireBytesPerRun = pt.GateWireBytesPerRun
			r.ShardBootstrapsPerSec = pt.ShardBootstrapsPerSec
			r.ShardWireBytesPerRun = pt.ShardWireBytesPerRun
		}
	}
	if r.GateBootstrapsPerSec > 0 {
		r.ShardSpeedup = r.ShardBootstrapsPerSec / r.GateBootstrapsPerSec
	}
	return r, nil
}

// batchKernelBench measures the single-gate bootstrap path against the
// batched blind-rotation engine on one core: 64 independent NAND gates per
// repetition, the batched path chunked at each sweep size. The inputs are
// random-mask samples rather than trivial ones — a zero mask lets blind
// rotation skip every CMux (the bara==0 short-circuit), which would time a
// bootstrap that never rotates.
func batchKernelBench(ck *boot.CloudKey) (single float64, sweep []BatchPoint) {
	const lanes, reps = 64, 2
	rng := trand.NewSeeded([]byte("batch-kernel-bench"))
	kinds := make([]logic.Kind, lanes)
	xs := make([]*gate.Ciphertext, lanes)
	ys := make([]*gate.Ciphertext, lanes)
	outs := make([]*gate.Ciphertext, lanes)
	randomize := func(s *lwe.Sample) {
		for j := range s.A {
			s.A[j] = torus.Torus32(rng.Torus32())
		}
		s.B = torus.Torus32(rng.Torus32())
	}
	for m := range kinds {
		kinds[m] = logic.NAND
		xs[m] = gate.NewCiphertext(ck.Params)
		ys[m] = gate.NewCiphertext(ck.Params)
		outs[m] = gate.NewCiphertext(ck.Params)
		randomize(xs[m])
		randomize(ys[m])
	}
	eng := gate.NewEngine(ck)
	start := time.Now()
	for rep := 0; rep < reps; rep++ {
		for m := 0; m < lanes; m++ {
			if err := eng.Binary(kinds[m], outs[m], xs[m], ys[m]); err != nil {
				return 0, nil
			}
		}
	}
	if e := time.Since(start).Seconds(); e > 0 {
		single = reps * lanes / e
	}
	for _, size := range []int{1, 4, 16, 64} {
		start := time.Now()
		for rep := 0; rep < reps; rep++ {
			for lo := 0; lo < lanes; lo += size {
				if err := eng.BinaryBatch(kinds[lo:lo+size], outs[lo:lo+size], xs[lo:lo+size], ys[lo:lo+size]); err != nil {
					return single, sweep
				}
			}
		}
		pt := BatchPoint{Batch: size}
		if e := time.Since(start).Seconds(); e > 0 {
			pt.BootstrapsPerSec = reps * lanes / e
		}
		sweep = append(sweep, pt)
	}
	return single, sweep
}

// WritePlanBench serializes the report as indented JSON at path.
func WritePlanBench(path string, r *PlanBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal plan bench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadPlanBaseline reads a committed BENCH_PLAN.json. It tolerates both
// the current *_bootstraps_per_sec field names and the *_gates_per_sec
// names earlier revisions wrote (the values were always bootstraps per
// second; only the labels were wrong), so parity checks keep working
// across the rename.
func LoadPlanBaseline(path string) (*PlanBenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: read plan baseline: %w", err)
	}
	var r PlanBenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("experiments: parse plan baseline %s: %w", path, err)
	}
	var legacy struct {
		Async  float64 `json:"async_gates_per_sec"`
		Shared float64 `json:"shared_gates_per_sec"`
		Plan   float64 `json:"plan_gates_per_sec"`
	}
	if err := json.Unmarshal(data, &legacy); err == nil {
		if r.AsyncBootstrapsPerSec == 0 {
			r.AsyncBootstrapsPerSec = legacy.Async
		}
		if r.SharedBootstrapsPerSec == 0 {
			r.SharedBootstrapsPerSec = legacy.Shared
		}
		if r.PlanBootstrapsPerSec == 0 {
			r.PlanBootstrapsPerSec = legacy.Plan
		}
	}
	return &r, nil
}

// CheckPlanParity compares a fresh report against a committed baseline:
// the Async and Planned throughputs must be within tol (e.g. 0.10 for
// ±10%) of the baseline, the bench-parity guard that keeps executor
// refactors honest. Only regressions fail — running faster than the
// baseline is not an error.
func CheckPlanParity(r, base *PlanBenchReport, tol float64) error {
	check := func(name string, got, want float64) error {
		if want <= 0 {
			return nil
		}
		if got < want*(1-tol) {
			return fmt.Errorf("experiments: %s %.1f/s regressed more than %.0f%% below baseline %.1f/s",
				name, got, tol*100, want)
		}
		return nil
	}
	if err := check("async", r.AsyncBootstrapsPerSec, base.AsyncBootstrapsPerSec); err != nil {
		return err
	}
	if err := check("plan", r.PlanBootstrapsPerSec, base.PlanBootstrapsPerSec); err != nil {
		return err
	}
	if err := check("batch", r.BatchBootstrapsPerSec, base.BatchBootstrapsPerSec); err != nil {
		return err
	}
	if err := check("shard", r.ShardBootstrapsPerSec, base.ShardBootstrapsPerSec); err != nil {
		return err
	}
	// The sharded data plane's hard invariant, checked on the fresh report
	// alone: a steady-state shard run must put strictly fewer bytes on the
	// wire than gate dispatch — O(cut edges) vs O(gates) ciphertexts.
	if r.GateWireBytesPerRun > 0 && r.ShardWireBytesPerRun >= r.GateWireBytesPerRun {
		return fmt.Errorf("experiments: shard run wire bytes %d not below gate dispatch %d",
			r.ShardWireBytesPerRun, r.GateWireBytesPerRun)
	}
	if r.LUT != nil {
		if base.LUT != nil {
			if err := check("lut-on", r.LUT.OnBootstrapsPerSec, base.LUT.OnBootstrapsPerSec); err != nil {
				return err
			}
		}
		// The LUT path's hard invariant, on the fresh report alone: the
		// acceptance criterion's ≥2× drop in bootstraps per logical gate.
		if r.LUT.BootstrapReduction < 2 {
			return fmt.Errorf("experiments: lut sweep bootstrap reduction %.2fx below the 2x floor",
				r.LUT.BootstrapReduction)
		}
	}
	return nil
}

// RenderPlanBench writes the human-readable form of the report.
func RenderPlanBench(w io.Writer, r *PlanBenchReport) {
	fprintf(w, "Plan capture/replay vs dynamic executors on %s (%d workers)\n", r.Netlist, r.Workers)
	fprintf(w, "  %12s %12s %12s %10s\n", "async", "shared", "plan", "plan/async")
	fprintf(w, "  %9.1f/s %9.1f/s %9.1f/s %9.2fx\n",
		r.AsyncBootstrapsPerSec, r.SharedBootstrapsPerSec, r.PlanBootstrapsPerSec, r.PlanSpeedup)
	fprintf(w, "  capture: %d logical bootstraps → %d executed over %d levels, %d arena slots, compiled in %.1fms\n",
		r.LogicalBootstraps, r.ExecBootstraps, r.Levels, r.ArenaSlots, r.CompileMs)
	fprintf(w, "  (throughput = logical bootstraps per second; deduplication counts as speedup)\n")
	if len(r.BatchSweep) > 0 {
		fprintf(w, "  batched kernel: single %.1f/s;", r.SingleBootstrapsPerSec)
		for _, pt := range r.BatchSweep {
			fprintf(w, " batch-%d %.1f/s", pt.Batch, pt.BootstrapsPerSec)
		}
		fprintf(w, " — %.2fx at batch 16\n", r.BatchSpeedup)
	}
	if len(r.ShardSweep) > 0 {
		fprintf(w, "  cluster (gate dispatch vs cached shard replay, per steady-state run):\n")
		for _, pt := range r.ShardSweep {
			fprintf(w, "    %d workers: gate %.1f/s %.1f KB on wire — shard %.1f/s %.1f KB on wire\n",
				pt.Workers, pt.GateBootstrapsPerSec, float64(pt.GateWireBytesPerRun)/1024,
				pt.ShardBootstrapsPerSec, float64(pt.ShardWireBytesPerRun)/1024)
		}
		fprintf(w, "  shard/gate-dispatch at 4 workers: %.2fx throughput, %.2fx wire bytes\n",
			r.ShardSpeedup, safeRatio(float64(r.ShardWireBytesPerRun), float64(r.GateWireBytesPerRun)))
	}
	if r.LUT != nil {
		RenderLUTSweep(w, r.LUT)
	}
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
