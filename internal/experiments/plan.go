package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// ImbalancedNetlist builds the deep, irregular ripple workload the executor
// benchmarks share: seven serial NAND chains of unequal depths {30, 30, 30,
// 30, 30, 12, 6} against one shared operand, with builder optimizations off
// so the logical gate count is exactly the sum of the depths. Most
// wavefronts hold five ready gates — one more than four workers — so
// barriered executors pay a nearly-empty second round per level, while the
// chains' period-2 ciphertext sequences give the plan backend's exact
// functional deduplication its best case.
func ImbalancedNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("ripple-imbalanced", circuit.NoOptimizations())
	depths := []int{30, 30, 30, 30, 30, 12, 6}
	ins := b.Inputs("x", len(depths)+1)
	for c, depth := range depths {
		cur := ins[c]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.NAND, cur, ins[len(depths)])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

// PlanBenchReport is one point on the plan-replay performance trajectory:
// the capture/replay backend against the dynamic executors on the same
// netlist at the same worker count, plus the capture statistics that explain
// the gap. Gates/s is logical bootstraps per second — the program's
// effective throughput, so deduplication counts as speedup. Serialized to
// BENCH_PLAN.json by `make bench`.
type PlanBenchReport struct {
	Netlist           string  `json:"netlist"`
	Workers           int     `json:"workers"`
	LogicalGates      int     `json:"logical_gates"`
	LogicalBootstraps int     `json:"logical_bootstraps"`
	ExecBootstraps    int     `json:"exec_bootstraps"`
	Levels            int     `json:"levels"`
	ArenaSlots        int     `json:"arena_slots"`
	CompileMs         float64 `json:"compile_ms"`
	AsyncGatesPerSec  float64 `json:"async_gates_per_sec"`
	SharedGatesPerSec float64 `json:"shared_gates_per_sec"`
	PlanGatesPerSec   float64 `json:"plan_gates_per_sec"`
	// PlanSpeedup is PlanGatesPerSec / AsyncGatesPerSec, the acceptance
	// metric (must be ≥ 1.2 at 4 workers).
	PlanSpeedup float64 `json:"plan_speedup_vs_async"`
}

// PlanBench measures the plan backend against Async and Shared on one
// netlist. The plan backend runs once untimed to pay the capture, then the
// timed runs replay the cached plan — the steady state of a server
// evaluating the same program repeatedly.
func PlanBench(ck *boot.CloudKey, nl *circuit.Netlist, inputs []*lwe.Sample, workers int) (*PlanBenchReport, error) {
	boots := float64(nl.ComputeStats().Bootstrapped)
	r := &PlanBenchReport{Netlist: nl.Name, Workers: workers}

	async := backend.NewAsync(ck, workers)
	if _, err := async.Run(nl, inputs); err != nil {
		return nil, fmt.Errorf("experiments: plan bench async(%d): %w", workers, err)
	}
	r.AsyncGatesPerSec = async.Stats.GatesPerSec

	shared := backend.NewShared(workers)
	defer shared.Close()
	key, err := shared.RegisterKey(ck)
	if err != nil {
		return nil, fmt.Errorf("experiments: plan bench shared key: %w", err)
	}
	start := time.Now()
	if _, err := shared.Submit(context.Background(), key, nl, inputs); err != nil {
		return nil, fmt.Errorf("experiments: plan bench shared(%d): %w", workers, err)
	}
	if e := time.Since(start).Seconds(); e > 0 {
		r.SharedGatesPerSec = boots / e
	}

	planned := backend.NewPlanned(ck, workers)
	if _, err := planned.Run(nl, inputs); err != nil { // untimed capture
		return nil, fmt.Errorf("experiments: plan bench capture(%d): %w", workers, err)
	}
	const replays = 3
	start = time.Now()
	for i := 0; i < replays; i++ {
		if _, err := planned.Run(nl, inputs); err != nil {
			return nil, fmt.Errorf("experiments: plan bench replay(%d): %w", workers, err)
		}
	}
	if e := time.Since(start).Seconds(); e > 0 {
		r.PlanGatesPerSec = replays * boots / e
	}

	ps := planned.PlanStats
	r.LogicalGates = ps.LogicalGates
	r.LogicalBootstraps = ps.LogicalBootstraps
	r.ExecBootstraps = ps.ExecBootstraps
	r.Levels = ps.Levels
	r.ArenaSlots = ps.ArenaSlots
	r.CompileMs = float64(ps.CompileTime.Microseconds()) / 1e3
	if r.AsyncGatesPerSec > 0 {
		r.PlanSpeedup = r.PlanGatesPerSec / r.AsyncGatesPerSec
	}
	return r, nil
}

// WritePlanBench serializes the report as indented JSON at path.
func WritePlanBench(path string, r *PlanBenchReport) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("experiments: marshal plan bench: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// RenderPlanBench writes the human-readable form of the report.
func RenderPlanBench(w io.Writer, r *PlanBenchReport) {
	fprintf(w, "Plan capture/replay vs dynamic executors on %s (%d workers)\n", r.Netlist, r.Workers)
	fprintf(w, "  %12s %12s %12s %10s\n", "async", "shared", "plan", "plan/async")
	fprintf(w, "  %9.1f/s %9.1f/s %9.1f/s %9.2fx\n",
		r.AsyncGatesPerSec, r.SharedGatesPerSec, r.PlanGatesPerSec, r.PlanSpeedup)
	fprintf(w, "  capture: %d logical bootstraps → %d executed over %d levels, %d arena slots, compiled in %.1fms\n",
		r.LogicalBootstraps, r.ExecBootstraps, r.Levels, r.ArenaSlots, r.CompileMs)
	fprintf(w, "  (gates/s = logical bootstraps per second; deduplication counts as speedup)\n")
}
