package experiments

import (
	"fmt"
	"io"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/sched"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// ExecutorRow is one worker count of the measured CPU-scaling experiment:
// the barriered wavefront Pool and the barrier-free Async executor run the
// same netlist over real ciphertexts, side by side with the makespan
// sched.SimulateAsync predicts for that worker count.
type ExecutorRow struct {
	Workers      int
	Pool         backend.RunStats
	Async        backend.RunStats
	AsyncSpeedup float64       // Pool.Elapsed / Async.Elapsed
	Predicted    time.Duration // SimulateAsync makespan at the calibrated gate time
}

// ExecutorScaling measures Fig. 10-style CPU scaling on the real executors
// rather than the schedule simulator: unlike Fig10DistributedCPU, every
// number here is wall clock over actual bootstrapped gates. The single-core
// gate cost is calibrated from a 1-worker Async run of the same netlist, so
// the Predicted column makes the simulator's claims checkable against the
// measurement in the same table.
func ExecutorScaling(ck *boot.CloudKey, nl *circuit.Netlist, inputs []*lwe.Sample, workerCounts []int) ([]ExecutorRow, error) {
	calib := backend.NewAsync(ck, 1)
	if _, err := calib.Run(nl, inputs); err != nil {
		return nil, fmt.Errorf("experiments: calibration run: %w", err)
	}
	gt := DefaultGateTime
	if b := calib.Stats.Bootstraps; b > 0 {
		gt = calib.Stats.Elapsed / time.Duration(b)
	}

	rows := make([]ExecutorRow, 0, len(workerCounts))
	for _, w := range workerCounts {
		pool := backend.NewPool(ck, w)
		if _, err := pool.Run(nl, inputs); err != nil {
			return nil, fmt.Errorf("experiments: pool(%d): %w", w, err)
		}
		async := backend.NewAsync(ck, w)
		if _, err := async.Run(nl, inputs); err != nil {
			return nil, fmt.Errorf("experiments: async(%d): %w", w, err)
		}
		row := ExecutorRow{
			Workers:   w,
			Pool:      pool.Stats,
			Async:     async.Stats,
			Predicted: sched.SimulateAsync(nl, sched.LocalPool(w, gt)).Makespan,
		}
		if async.Stats.Elapsed > 0 {
			row.AsyncSpeedup = float64(pool.Stats.Elapsed) / float64(async.Stats.Elapsed)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderExecutorScaling writes the measured executor comparison.
func RenderExecutorScaling(w io.Writer, name string, rows []ExecutorRow) {
	fprintf(w, "Measured CPU scaling on %s — barriered Pool vs dependency-driven Async\n", name)
	fprintf(w, "  %7s %12s %12s %10s %8s %12s %12s\n",
		"workers", "pool", "async", "async/pool", "util", "queue-wait", "predicted")
	for _, r := range rows {
		fprintf(w, "  %7d %12v %12v %9.2fx %7.0f%% %12v %12v\n",
			r.Workers,
			r.Pool.Elapsed.Round(time.Millisecond),
			r.Async.Elapsed.Round(time.Millisecond),
			r.AsyncSpeedup,
			100*r.Async.Utilization,
			r.Async.AvgQueueWait.Round(time.Microsecond),
			r.Predicted.Round(time.Millisecond))
	}
	fprintf(w, "  (async removes the per-level barrier of Algorithm 1; predicted = sched.SimulateAsync)\n")
}
