// Package frameworks models the three baseline TFHE toolchains the paper
// compares against — Cingulata, E3, and Google's Transpiler — as
// alternative lowering styles over the same netlist IR. Each baseline
// reproduces the structural reasons the paper gives for its gate counts:
//
//   - Cingulata: an integer DSL with constant folding but no gate-level
//     boolean optimization — no common-subexpression elimination, no free
//     input negation, and plain binary (non-CSD) shift-add constant
//     multiplication.
//
//   - E3: hardcoded gate templates — a 7-gate full adder, explicit NOT
//     gates — and no gate-level optimization passes.
//
//   - Transpiler: an HLS-style flow whose IR is restricted to AND/OR/NOT
//     (XOR and friends expand to multiple gates), keeps data movement
//     (Flatten/reshape) as COPY gates instead of wiring, and performs no
//     netlist optimization; the total-ordering of the source program
//     prevents the reshaping optimizations PyTFHE applies.
//
// The gate-count ordering that falls out — PyTFHE < Cingulata < E3 ≪
// Transpiler — is the paper's Fig. 14.
package frameworks

import (
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Alphabet restricts which gate kinds a lowering may emit.
type Alphabet int

// Alphabets.
const (
	// FullAlphabet is the 11-gate TFHE set (plus free COPY).
	FullAlphabet Alphabet = iota
	// AndOrNot is the Transpiler/XLS IR alphabet: AND, OR, NOT only.
	AndOrNot
)

// Style captures how one framework lowers arithmetic to gates.
type Style struct {
	Name string
	// Opts are the builder-level optimizations the framework performs.
	Opts circuit.BuilderOptions
	// Alphabet restricts the emitted gate kinds.
	Alphabet Alphabet
	// CSD selects canonical-signed-digit recoding for constant
	// multiplication; false means one addition per set bit.
	CSD bool
	// TemplateAdder selects the hardcoded 7-gate full adder instead of the
	// shared-XOR 5-gate form.
	TemplateAdder bool
	// DataMovementGates emits COPY gates for flatten/reshape instead of
	// rewiring.
	DataMovementGates bool
}

// PyTFHEStyle is the reference lowering used by ChiselTorch (for
// comparison within this package's DSL).
func PyTFHEStyle() Style {
	return Style{
		Name: "pytfhe",
		Opts: circuit.AllOptimizations(),
		CSD:  true,
	}
}

// CingulataStyle models the Cingulata/Armadillo DSL.
func CingulataStyle() Style {
	return Style{
		Name: "cingulata",
		Opts: circuit.BuilderOptions{ConstFold: true, SameInput: true},
	}
}

// E3Style models the Encrypt-Everything-Everywhere DSL: plaintext
// constants fold at the C++ level like Cingulata's, but the gate templates
// are hardcoded (7-gate full adders) and no boolean optimization runs.
func E3Style() Style {
	return Style{
		Name:          "e3",
		Opts:          circuit.BuilderOptions{ConstFold: true, SameInput: true},
		TemplateAdder: true,
	}
}

// TranspilerStyle models Google's Transpiler (XLS-based HLS flow).
func TranspilerStyle() Style {
	return Style{
		Name:              "transpiler",
		Opts:              circuit.NoOptimizations(),
		Alphabet:          AndOrNot,
		TemplateAdder:     true,
		DataMovementGates: true,
	}
}

// Program accumulates a circuit in one framework's style.
type Program struct {
	Style Style
	B     *circuit.Builder

	anchor     circuit.NodeID // first input, used to materialize constants
	constFalse circuit.NodeID
	constTrue  circuit.NodeID
}

// NewProgram starts a program named name in the given style.
func NewProgram(name string, style Style) *Program {
	return &Program{Style: style, B: circuit.NewBuilder(name+"_"+style.Name, style.Opts)}
}

// materialize turns a constant operand into a real node using only the
// style's alphabet (the builder's fallback would emit XOR/XNOR, which the
// Transpiler IR does not have). Folding styles keep the sentinel and let
// the builder fold it.
func (p *Program) materialize(id circuit.NodeID) circuit.NodeID {
	if !id.IsConst() || p.Style.Opts.ConstFold {
		return id
	}
	if p.anchor == 0 {
		panic("frameworks: constant used before any input exists")
	}
	want := id == circuit.ConstTrue
	if want && p.constTrue != 0 {
		return p.constTrue
	}
	if !want && p.constFalse != 0 {
		return p.constFalse
	}
	var node circuit.NodeID
	if p.Style.Alphabet == AndOrNot {
		n := p.B.Gate(logic.NOT, p.anchor, p.anchor)
		if want {
			node = p.B.Gate(logic.OR, p.anchor, n)
		} else {
			node = p.B.Gate(logic.AND, p.anchor, n)
		}
	} else {
		if want {
			node = p.B.Gate(logic.XNOR, p.anchor, p.anchor)
		} else {
			node = p.B.Gate(logic.XOR, p.anchor, p.anchor)
		}
	}
	if want {
		p.constTrue = node
	} else {
		p.constFalse = node
	}
	return node
}

// Gate emits kind(a, b), expanding to the style's alphabet if needed.
func (p *Program) Gate(kind logic.Kind, a, b circuit.NodeID) circuit.NodeID {
	a = p.materialize(a)
	b = p.materialize(b)
	if p.Style.Alphabet == FullAlphabet {
		return p.B.Gate(kind, a, b)
	}
	// AND/OR/NOT expansion (the XLS IR of the Transpiler).
	not := func(x circuit.NodeID) circuit.NodeID { return p.B.Gate(logic.NOT, x, x) }
	and := func(x, y circuit.NodeID) circuit.NodeID { return p.B.Gate(logic.AND, x, y) }
	or := func(x, y circuit.NodeID) circuit.NodeID { return p.B.Gate(logic.OR, x, y) }
	switch kind {
	case logic.AND, logic.OR, logic.NOT, logic.COPY, logic.False, logic.True:
		return p.B.Gate(kind, a, b)
	case logic.NOTB:
		return not(b)
	case logic.COPYB:
		return p.B.Gate(logic.COPY, b, b)
	case logic.NAND:
		return not(and(a, b))
	case logic.NOR:
		return not(or(a, b))
	case logic.XOR:
		return or(and(a, not(b)), and(not(a), b))
	case logic.XNOR:
		return not(or(and(a, not(b)), and(not(a), b)))
	case logic.ANDNY:
		return and(not(a), b)
	case logic.ANDYN:
		return and(a, not(b))
	case logic.ORNY:
		return or(not(a), b)
	case logic.ORYN:
		return or(a, not(b))
	}
	return p.B.Gate(kind, a, b)
}

// fullAdder returns (sum, carry) in the style's preferred form.
func (p *Program) fullAdder(a, b, cin circuit.NodeID) (circuit.NodeID, circuit.NodeID) {
	if p.Style.TemplateAdder {
		// Hardcoded textbook template: 2 XOR + 3 AND + 2 OR.
		sum := p.Gate(logic.XOR, p.Gate(logic.XOR, a, b), cin)
		carry := p.Gate(logic.OR,
			p.Gate(logic.OR, p.Gate(logic.AND, a, b), p.Gate(logic.AND, a, cin)),
			p.Gate(logic.AND, b, cin))
		return sum, carry
	}
	axb := p.Gate(logic.XOR, a, b)
	sum := p.Gate(logic.XOR, axb, cin)
	carry := p.Gate(logic.OR, p.Gate(logic.AND, a, b), p.Gate(logic.AND, axb, cin))
	return sum, carry
}
