package frameworks

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/models"
)

// Compiler is one baseline toolchain: a lowering style plus the fixed-point
// format its DSL uses for the neural-network workloads.
type Compiler struct {
	style Style
	// width/frac: the DSL's fixed-point format (raw width and fractional
	// bits). E3's public types are 8-bit only; wider values are emulated
	// with limb composition, which costs the same ripple structure modeled
	// here (see DESIGN.md).
	width, frac int
}

// Name returns the framework name.
func (c *Compiler) Name() string { return c.style.Name }

// Style returns the lowering style.
func (c *Compiler) Style() Style { return c.style }

// Cingulata returns the Cingulata/Armadillo baseline compiler.
func Cingulata() *Compiler { return &Compiler{style: CingulataStyle(), width: 16, frac: 8} }

// E3 returns the Encrypt-Everything-Everywhere baseline compiler.
func E3() *Compiler { return &Compiler{style: E3Style(), width: 16, frac: 8} }

// Transpiler returns the Google Transpiler baseline compiler. Width 32
// reflects the paper's observation that Transpiler is "restricted to using
// C native data types": the C MNIST implementation computes in `int`
// (32-bit) arithmetic, where the ChiselTorch model chooses Fixed(8,8).
func Transpiler() *Compiler { return &Compiler{style: TranspilerStyle(), width: 32, frac: 16} }

// PyTFHEDSL returns a PyTFHE-style compiler over the same DSL. It exists
// for like-for-like ablations of the lowering choices; the production
// PyTFHE frontend is ChiselTorch.
func PyTFHEDSL() *Compiler { return &Compiler{style: PyTFHEStyle(), width: 16, frac: 8} }

// AllBaselines returns the three baseline compilers in presentation order.
func AllBaselines() []*Compiler {
	return []*Compiler{Transpiler(), Cingulata(), E3()}
}

// CompileMNIST builds the spec's CNN in this framework's DSL, mirroring
// what a user of that framework would write by hand (the paper's
// methodology: "we built the same MNIST_S model for both Cingulata and
// E3").
func (c *Compiler) CompileMNIST(spec models.MNISTSpec) (*circuit.Netlist, error) {
	w := spec.GenWeights()
	p := NewProgram(spec.Name, c.style)

	img := spec.Image
	pixels := make([]CInt, img*img)
	for i := range pixels {
		pixels[i] = p.Input(fmt.Sprintf("x[%d]", i), c.width)
	}

	// Convolution: Conv2d(1, Kernels, Conv, 1) + bias.
	co := spec.ConvOut()
	conv := make([]CInt, spec.Kernels*co*co)
	for oc := 0; oc < spec.Kernels; oc++ {
		for oy := 0; oy < co; oy++ {
			for ox := 0; ox < co; ox++ {
				var acc CInt
				accSet := false
				for ky := 0; ky < spec.Conv; ky++ {
					for kx := 0; kx < spec.Conv; kx++ {
						wv := w.ConvW[(oc*spec.Conv+ky)*spec.Conv+kx]
						if wv == 0 {
							continue
						}
						term := p.MulConstFixed(pixels[(oy+ky)*img+ox+kx], wv, c.frac)
						if !accSet {
							acc, accSet = term, true
						} else {
							acc = p.Add(acc, term)
						}
					}
				}
				if !accSet {
					acc = p.Const(0, c.width)
				}
				acc = p.Add(acc, p.Const(int64(float64(int64(1)<<uint(c.frac))*w.ConvB[oc]), c.width))
				conv[(oc*co+oy)*co+ox] = p.Relu(acc)
			}
		}
	}

	// MaxPool2d(Pool, 1).
	po := spec.PoolOut()
	pooled := make([]CInt, spec.Kernels*po*po)
	for oc := 0; oc < spec.Kernels; oc++ {
		for oy := 0; oy < po; oy++ {
			for ox := 0; ox < po; ox++ {
				acc := conv[(oc*co+oy)*co+ox]
				for ky := 0; ky < spec.Pool; ky++ {
					for kx := 0; kx < spec.Pool; kx++ {
						if ky == 0 && kx == 0 {
							continue
						}
						acc = p.Max(acc, conv[(oc*co+oy+ky)*co+ox+kx])
					}
				}
				pooled[(oc*po+oy)*po+ox] = acc
			}
		}
	}

	// Flatten: free wiring in most frameworks; the Transpiler keeps it as
	// gates (the paper's example of its missing reshape optimization).
	flat := make([]CInt, len(pooled))
	for i, v := range pooled {
		flat[i] = p.Buffer(v)
	}

	// Linear(FlatSize, Classes).
	fs := spec.FlatSize()
	if len(flat) != fs {
		return nil, fmt.Errorf("frameworks: flatten produced %d features, want %d", len(flat), fs)
	}
	for cls := 0; cls < spec.Classes; cls++ {
		acc := p.Const(int64(float64(int64(1)<<uint(c.frac))*w.LinB[cls]), c.width)
		for i := 0; i < fs; i++ {
			wv := w.LinW[cls*fs+i]
			if wv == 0 {
				continue
			}
			acc = p.Add(acc, p.MulConstFixed(flat[i], wv, c.frac))
		}
		p.Output(fmt.Sprintf("logit[%d]", cls), acc)
	}
	return p.B.Build()
}
