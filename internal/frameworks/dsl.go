package frameworks

import (
	"fmt"
	"math"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// CInt is an encrypted two's-complement integer in a framework DSL — the
// overloaded-operator "secure integer" class that Cingulata and E3 expose.
// Bits are LSB first. Fixed-point semantics are layered on top by the
// workload builders (a CInt with frac fractional bits represents
// raw / 2^frac).
type CInt struct {
	p    *Program
	bits []circuit.NodeID
}

// Width returns the bit width.
func (x CInt) Width() int { return len(x.bits) }

// Input declares an encrypted integer input of width w.
func (p *Program) Input(name string, w int) CInt {
	bits := make([]circuit.NodeID, w)
	for i := range bits {
		bits[i] = p.B.Input(fmt.Sprintf("%s[%d]", name, i))
	}
	if p.anchor == 0 && w > 0 {
		p.anchor = bits[0]
	}
	return CInt{p: p, bits: bits}
}

// Const embeds the plaintext constant v as a w-bit value. Styles without
// constant folding materialize every bit as a gate — one of the costs the
// baselines pay.
func (p *Program) Const(v int64, w int) CInt {
	bits := make([]circuit.NodeID, w)
	for i := range bits {
		bits[i] = p.B.Const(v>>uint(i)&1 == 1)
	}
	return CInt{p: p, bits: bits}
}

// Output registers all bits of x as outputs.
func (p *Program) Output(name string, x CInt) {
	p.B.OutputBus(name, x.bits)
}

// OutputBit registers one wire.
func (p *Program) OutputBit(name string, b circuit.NodeID) { p.B.Output(name, b) }

// Buffer re-emits x through COPY gates when the style keeps data movement
// as gates (Transpiler), or returns x unchanged otherwise.
func (p *Program) Buffer(x CInt) CInt {
	if !p.Style.DataMovementGates {
		return x
	}
	out := make([]circuit.NodeID, len(x.bits))
	for i, b := range x.bits {
		if b.IsConst() {
			out[i] = b
			continue
		}
		out[i] = p.B.Gate(logic.COPY, b, b)
	}
	return CInt{p: p, bits: out}
}

// AddCarry returns x + y + cin and the carry out.
func (p *Program) AddCarry(x, y CInt, cin circuit.NodeID) (CInt, circuit.NodeID) {
	if len(x.bits) != len(y.bits) {
		panic(fmt.Sprintf("frameworks: width mismatch %d vs %d", len(x.bits), len(y.bits)))
	}
	out := make([]circuit.NodeID, len(x.bits))
	c := cin
	for i := range x.bits {
		out[i], c = p.fullAdder(x.bits[i], y.bits[i], c)
	}
	return CInt{p: p, bits: out}, c
}

// Add returns x + y (mod 2^w).
func (p *Program) Add(x, y CInt) CInt {
	s, _ := p.AddCarry(x, y, p.B.Const(false))
	return s
}

// Not returns the bitwise complement.
func (p *Program) Not(x CInt) CInt {
	out := make([]circuit.NodeID, len(x.bits))
	for i, b := range x.bits {
		if b.IsConst() {
			out[i] = p.B.Const(b == circuit.ConstFalse)
			continue
		}
		out[i] = p.Gate(logic.NOT, b, b)
	}
	return CInt{p: p, bits: out}
}

// Sub returns x - y.
func (p *Program) Sub(x, y CInt) CInt {
	s, _ := p.AddCarry(x, p.Not(y), p.B.Const(true))
	return s
}

// Neg returns -x.
func (p *Program) Neg(x CInt) CInt {
	return p.Sub(p.Const(0, len(x.bits)), x)
}

// SignBit returns the sign wire.
func (x CInt) SignBit() circuit.NodeID { return x.bits[len(x.bits)-1] }

// SignExtend widens x to w bits.
func (p *Program) SignExtend(x CInt, w int) CInt {
	if len(x.bits) >= w {
		return CInt{p: p, bits: x.bits[:w]}
	}
	out := make([]circuit.NodeID, w)
	copy(out, x.bits)
	s := x.SignBit()
	for i := len(x.bits); i < w; i++ {
		out[i] = s
	}
	return CInt{p: p, bits: out}
}

// ShiftLeft returns x << k with the original width.
func (p *Program) ShiftLeft(x CInt, k int) CInt {
	out := make([]circuit.NodeID, len(x.bits))
	for i := range out {
		if i < k {
			out[i] = p.B.Const(false)
		} else {
			out[i] = x.bits[i-k]
		}
	}
	return CInt{p: p, bits: out}
}

// ShiftRightArith returns x >> k (arithmetic) with the original width.
func (p *Program) ShiftRightArith(x CInt, k int) CInt {
	out := make([]circuit.NodeID, len(x.bits))
	s := x.SignBit()
	for i := range out {
		if i+k < len(x.bits) {
			out[i] = x.bits[i+k]
		} else {
			out[i] = s
		}
	}
	return CInt{p: p, bits: out}
}

// MulConst multiplies x by the integer constant c using the style's
// recoding (CSD for PyTFHE, one add per set bit otherwise), producing a
// value of the same width.
func (p *Program) MulConst(x CInt, c int64) CInt {
	w := len(x.bits)
	if c == 0 {
		return p.Const(0, w)
	}
	neg := c < 0
	if neg {
		c = -c
	}
	var acc CInt
	accSet := false
	addTerm := func(shift int, subtract bool) {
		term := p.ShiftLeft(x, shift)
		switch {
		case !accSet:
			if subtract {
				acc = p.Neg(term)
			} else {
				acc = term
			}
			accSet = true
		case subtract:
			acc = p.Sub(acc, term)
		default:
			acc = p.Add(acc, term)
		}
	}
	if p.Style.CSD {
		for shift := 0; c != 0; {
			for c&1 == 0 {
				c >>= 1
				shift++
			}
			run := 0
			for c>>uint(run)&1 == 1 {
				run++
			}
			if run >= 3 {
				addTerm(shift, true)
				c >>= uint(run)
				c++
				shift += run
			} else {
				addTerm(shift, false)
				c >>= 1
				shift++
			}
		}
	} else {
		for shift := 0; c != 0; shift++ {
			if c&1 == 1 {
				addTerm(shift, false)
			}
			c >>= 1
		}
	}
	if neg {
		acc = p.Neg(acc)
	}
	return acc
}

// Mul multiplies two encrypted integers (mod 2^w) by shift-add over the
// second operand's bits.
func (p *Program) Mul(x, y CInt) CInt {
	w := len(x.bits)
	acc := p.Const(0, w)
	for i := 0; i < w; i++ {
		masked := make([]circuit.NodeID, w)
		for j := range masked {
			masked[j] = p.Gate(logic.AND, x.bits[j], y.bits[i])
		}
		acc = p.Add(acc, p.ShiftLeft(CInt{p: p, bits: masked}, i))
	}
	return acc
}

// MulConstFixed multiplies the fixed-point value x (frac fractional bits)
// by the real constant c, keeping the same fixed-point format: the product
// is computed at double precision and shifted back.
func (p *Program) MulConstFixed(x CInt, c float64, frac int) CInt {
	ci := int64(math.Round(c * math.Ldexp(1, frac)))
	w := len(x.bits)
	wide := p.SignExtend(x, w+frac+1)
	prod := p.MulConst(wide, ci)
	shifted := p.ShiftRightArith(prod, frac)
	return CInt{p: p, bits: shifted.bits[:w]}
}

// LessThan returns the signed comparison x < y as one wire.
func (p *Program) LessThan(x, y CInt) circuit.NodeID {
	// x < y  <=>  sign(x - y) with overflow fixup: for DSL simplicity (and
	// like the baselines), compare on sign-extended operands so overflow
	// cannot occur.
	w := len(x.bits) + 1
	diff := p.Sub(p.SignExtend(x, w), p.SignExtend(y, w))
	return diff.SignBit()
}

// Mux returns sel ? x : y bitwise.
func (p *Program) Mux(sel circuit.NodeID, x, y CInt) CInt {
	out := make([]circuit.NodeID, len(x.bits))
	for i := range out {
		hi := p.Gate(logic.AND, x.bits[i], sel)
		lo := p.Gate(logic.ANDYN, y.bits[i], sel)
		out[i] = p.Gate(logic.OR, hi, lo)
	}
	return CInt{p: p, bits: out}
}

// Max returns the signed maximum of x and y.
func (p *Program) Max(x, y CInt) CInt {
	return p.Mux(p.LessThan(x, y), y, x)
}

// Relu returns max(x, 0): each bit masked with the complement of the sign.
func (p *Program) Relu(x CInt) CInt {
	notSign := p.Gate(logic.NOT, x.SignBit(), x.SignBit())
	out := make([]circuit.NodeID, len(x.bits))
	for i, b := range x.bits {
		out[i] = p.Gate(logic.AND, b, notSign)
	}
	return CInt{p: p, bits: out}
}
