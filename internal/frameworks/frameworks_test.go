package frameworks

import (
	"math"
	"testing"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/logic"
	"pytfhe/internal/models"
)

// fmtSscanf parses "name[idx]".
func fmtSscanf(s string, base *string, idx *int) (int, error) {
	open := -1
	for i, r := range s {
		if r == '[' {
			open = i
			break
		}
	}
	if open < 0 || s[len(s)-1] != ']' {
		return 0, errBadName
	}
	*base = s[:open]
	n := 0
	for _, r := range s[open+1 : len(s)-1] {
		n = n*10 + int(r-'0')
	}
	*idx = n
	return 2, nil
}

var errBadName = circuitError("bad name")

type circuitError string

func (e circuitError) Error() string { return string(e) }

// TestDSLArithmeticAllStyles verifies that every style computes the same
// function, whatever its gate count.
func TestDSLArithmeticAllStyles(t *testing.T) {
	styles := []Style{PyTFHEStyle(), CingulataStyle(), E3Style(), TranspilerStyle()}
	for _, st := range styles {
		st := st
		t.Run(st.Name, func(t *testing.T) {
			p := NewProgram("arith", st)
			x := p.Input("x", 12)
			y := p.Input("y", 12)
			sum := p.Add(x, y)
			diff := p.Sub(x, y)
			prod := p.Mul(x, y)
			cmul := p.MulConst(x, 13)
			mx := p.Max(x, y)
			rl := p.Relu(diff)
			p.Output("sum", sum)
			p.Output("diff", diff)
			p.Output("prod", prod)
			p.Output("cmul", cmul)
			p.Output("max", mx)
			p.Output("relu", rl)
			nl, err := p.B.Build()
			if err != nil {
				t.Fatal(err)
			}

			cases := [][2]int64{{5, 9}, {100, -3}, {-50, -60}, {0, 7}, {2000, 1}}
			for _, c := range cases {
				ins := map[string]int64{"x": c[0], "y": c[1]}
				mask := func(v int64) int64 { return int64(uint64(v)<<52) >> 52 }
				get := func(off int) int64 {
					bits := make([]bool, nl.NumInputs)
					for i, name := range nl.InputNames {
						var base string
						var idx int
						if _, err := fmtSscanf(name, &base, &idx); err != nil {
							t.Fatal(err)
						}
						bits[i] = ins[base]>>uint(idx)&1 == 1
					}
					out, err := nl.Evaluate(bits)
					if err != nil {
						t.Fatal(err)
					}
					var raw uint64
					for i := 0; i < 12; i++ {
						if out[off*12+i] {
							raw |= 1 << uint(i)
						}
					}
					return int64(raw<<52) >> 52
				}
				if got := get(0); got != mask(c[0]+c[1]) {
					t.Fatalf("%s: add(%d,%d) = %d", st.Name, c[0], c[1], got)
				}
				if got := get(1); got != mask(c[0]-c[1]) {
					t.Fatalf("%s: sub = %d", st.Name, got)
				}
				if got := get(2); got != mask(c[0]*c[1]) {
					t.Fatalf("%s: mul(%d,%d) = %d want %d", st.Name, c[0], c[1], got, mask(c[0]*c[1]))
				}
				if got := get(3); got != mask(c[0]*13) {
					t.Fatalf("%s: mulconst = %d", st.Name, got)
				}
				wantMax := c[0]
				if c[1] > c[0] {
					wantMax = c[1]
				}
				if got := get(4); got != mask(wantMax) {
					t.Fatalf("%s: max = %d", st.Name, got)
				}
				wantRelu := mask(c[0] - c[1])
				if wantRelu < 0 {
					wantRelu = 0
				}
				if got := get(5); got != wantRelu {
					t.Fatalf("%s: relu = %d want %d", st.Name, got, wantRelu)
				}
			}
		})
	}
}

func TestTranspilerAlphabetRestriction(t *testing.T) {
	p := NewProgram("alpha", TranspilerStyle())
	x := p.Input("x", 8)
	y := p.Input("y", 8)
	p.Output("sum", p.Add(x, y))
	nl, err := p.B.Build()
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range nl.Gates {
		switch g.Kind {
		case logic.AND, logic.OR, logic.NOT, logic.COPY:
		default:
			t.Fatalf("transpiler netlist contains %v gate", g.Kind)
		}
	}
}

func TestMulConstFixed(t *testing.T) {
	for _, st := range []Style{PyTFHEStyle(), E3Style()} {
		p := NewProgram("fx", st)
		x := p.Input("x", 16)
		p.Output("y", p.MulConstFixed(x, 0.75, 8))
		nl, err := p.B.Build()
		if err != nil {
			t.Fatal(err)
		}
		// x = 2.0 in Fixed(8,8) -> raw 512; 0.75*2 = 1.5 -> raw 384.
		bits := make([]bool, 16)
		for i := 0; i < 16; i++ {
			bits[i] = 512>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		var raw int64
		for i := 0; i < 16; i++ {
			if out[i] {
				raw |= 1 << uint(i)
			}
		}
		if raw != 384 {
			t.Fatalf("%s: 0.75 * 2.0 raw = %d, want 384", st.Name, raw)
		}
	}
}

// TestGateCountOrdering is the structural heart of Fig. 14: on the same
// model, PyTFHE(ChiselTorch) < Cingulata < E3 << Transpiler.
func TestGateCountOrdering(t *testing.T) {
	spec := models.MNISTS().Scaled(9) // small image, same topology
	counts := map[string]int{}
	for _, c := range AllBaselines() {
		nl, err := c.CompileMNIST(spec)
		if err != nil {
			t.Fatalf("%s: %v", c.Name(), err)
		}
		counts[c.Name()] = len(nl.Gates)
	}
	model := spec.ToChiselTorch(chiseltorch.NewFixed(8, 8))
	ct, err := model.Compile(1, spec.Image, spec.Image)
	if err != nil {
		t.Fatal(err)
	}
	counts["pytfhe"] = len(ct.Netlist.Gates)

	if !(counts["pytfhe"] < counts["cingulata"] &&
		counts["cingulata"] < counts["e3"] &&
		counts["e3"] < counts["transpiler"]) {
		t.Fatalf("gate-count ordering broken: %v", counts)
	}
	// Rough factors from the paper: PyTFHE ≈ 65%/54% of Cingulata/E3 and
	// far below Transpiler. Accept generous bands.
	rc := float64(counts["pytfhe"]) / float64(counts["cingulata"])
	re := float64(counts["pytfhe"]) / float64(counts["e3"])
	rt := float64(counts["pytfhe"]) / float64(counts["transpiler"])
	if rc < 0.35 || rc > 0.95 {
		t.Errorf("PyTFHE/Cingulata ratio %.2f outside plausible band (paper: 0.65)", rc)
	}
	if re < 0.25 || re > 0.85 {
		t.Errorf("PyTFHE/E3 ratio %.2f outside plausible band (paper: 0.54)", re)
	}
	if rt > 0.45 {
		t.Errorf("PyTFHE/Transpiler ratio %.2f — Transpiler should be far larger", rt)
	}
	t.Logf("gate counts: %v (ratios vs cingulata %.3f, e3 %.3f, transpiler %.3f)", counts, rc, re, rt)
}

// TestBaselineMNISTMatchesChiselTorch checks functional agreement between
// a baseline-compiled MNIST and the ChiselTorch one on the same input.
func TestBaselineMNISTMatchesChiselTorch(t *testing.T) {
	spec := models.MNISTS().Scaled(7)
	model := spec.ToChiselTorch(chiseltorch.NewFixed(8, 8))
	ct, err := model.Compile(1, spec.Image, spec.Image)
	if err != nil {
		t.Fatal(err)
	}
	in := make([]float64, spec.Image*spec.Image)
	for i := range in {
		in[i] = math.Sin(float64(i)) / 2
	}
	want, err := ct.Infer(in)
	if err != nil {
		t.Fatal(err)
	}

	for _, c := range []*Compiler{Cingulata(), E3()} {
		nl, err := c.CompileMNIST(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Encode the same Fixed(8,8) input for the DSL netlist.
		bits := make([]bool, nl.NumInputs)
		for i := range in {
			raw := uint64(int64(math.Round(in[i]*256))) & 0xFFFF
			for b := 0; b < 16; b++ {
				bits[i*16+b] = raw>>uint(b)&1 == 1
			}
		}
		out, err := nl.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		for cls := 0; cls < spec.Classes; cls++ {
			var raw uint64
			for b := 0; b < 16; b++ {
				if out[cls*16+b] {
					raw |= 1 << uint(b)
				}
			}
			got := float64(int64(raw<<48)>>48) / 256
			if math.Abs(got-want[cls]) > 0.25 {
				t.Fatalf("%s: logit %d = %g, ChiselTorch %g", c.Name(), cls, got, want[cls])
			}
		}
	}
}
