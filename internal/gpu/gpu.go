// Package gpu simulates the PyTFHE GPU backend on machines without a GPU.
// Two driver models are implemented, matching the paper's Figures 8 and 9:
//
//   - CuFHEDriver reproduces the cuFHE execution style: every gate (or
//     batch of independent same-kind gates) pays a host-to-device copy, a
//     kernel launch, the kernel, and a device-to-host copy, with the CPU
//     thread blocked throughout.
//
//   - GraphDriver reproduces the PyTFHE CUDA-Graphs backend: the program is
//     cut into large sub-DAG batches; each batch launches once, resolves
//     gate dependencies on-device, keeps intermediates resident in device
//     memory, and overlaps next-batch construction on the CPU with current
//     batch execution on the GPU.
//
// Costs are parameters of a Device; the paper's two boards (Table III) are
// provided as presets whose relative throughputs follow the published
// speedups. Both drivers also emit the schedule they would execute so tests
// can verify that every gate's operands are produced before use.
package gpu

import (
	"fmt"
	"time"

	"pytfhe/internal/circuit"
)

// Device models one GPU.
type Device struct {
	Name string
	// SMs is the number of gate kernels that execute concurrently.
	SMs int
	// GateKernel is the duration of one bootstrapped-gate kernel.
	GateKernel time.Duration
	// KernelLaunch is the CPU-side cost of launching one kernel (or one
	// fused CUDA graph).
	KernelLaunch time.Duration
	// CopyPerCT is the PCIe transfer time of one ciphertext (either
	// direction).
	CopyPerCT time.Duration
	// MemCiphertexts bounds how many ciphertexts fit in device memory;
	// the graph driver sizes its batches against it.
	MemCiphertexts int
	// ConstructPerGate is the CPU-side cost of adding one gate to a CUDA
	// graph during batch construction.
	ConstructPerGate time.Duration
}

// A5000 models the NVIDIA RTX A5000 24 GB of Table III.
func A5000() Device {
	return Device{
		Name:             "rtx-a5000",
		SMs:              64,
		GateKernel:       600 * time.Microsecond,
		KernelLaunch:     10 * time.Microsecond,
		CopyPerCT:        2 * time.Microsecond,
		MemCiphertexts:   8_000_000, // 24 GB / ~2.5 KB
		ConstructPerGate: 300 * time.Nanosecond,
	}
}

// A5000Scaled returns the A5000 model with every cost expressed relative
// to a measured single-core CPU bootstrapped-gate time. The paper's
// numbers imply one GPU gate kernel costs about one CPU-core gate — the
// backend's advantage comes from the 64-way SM parallelism plus the
// elimination of per-gate transfers, landing at the ~72× (A5000) and
// ~145× (4090) full-device advantages Table IV implies.
func A5000Scaled(cpuGate time.Duration) Device {
	d := A5000()
	d.GateKernel = cpuGate
	d.KernelLaunch = cpuGate / 1500
	d.CopyPerCT = cpuGate / 7500
	d.ConstructPerGate = cpuGate / 50000
	return d
}

// RTX4090Scaled is A5000Scaled for the RTX 4090: twice the SMs and ~10%
// faster per-kernel clocks (≈2× the A5000's throughput in the paper).
func RTX4090Scaled(cpuGate time.Duration) Device {
	d := RTX4090()
	d.GateKernel = cpuGate * 9 / 10
	d.KernelLaunch = cpuGate / 1500
	d.CopyPerCT = cpuGate / 7500
	d.ConstructPerGate = cpuGate / 50000
	return d
}

// RTX4090 models the NVIDIA RTX 4090 24 GB of Table III: more SMs and
// higher clocks than the A5000 (the paper measures roughly 2× its
// throughput).
func RTX4090() Device {
	return Device{
		Name:             "rtx-4090",
		SMs:              128,
		GateKernel:       450 * time.Microsecond,
		KernelLaunch:     10 * time.Microsecond,
		CopyPerCT:        2 * time.Microsecond,
		MemCiphertexts:   8_000_000,
		ConstructPerGate: 300 * time.Nanosecond,
	}
}

// SegmentKind labels one span of the simulated timeline.
type SegmentKind string

// Timeline segment kinds.
const (
	SegCopyIn    SegmentKind = "copy-in"
	SegKernel    SegmentKind = "kernel"
	SegCopyOut   SegmentKind = "copy-out"
	SegLaunch    SegmentKind = "launch"
	SegConstruct SegmentKind = "construct"
)

// Segment is one span of simulated GPU or driver activity.
type Segment struct {
	Kind  SegmentKind
	Start time.Duration
	Dur   time.Duration
	Gates int
}

// Exec is the simulated execution of one program.
type Exec struct {
	Device   Device
	Makespan time.Duration
	// Breakdown sums time per segment kind.
	Copy      time.Duration
	Kernel    time.Duration
	Launch    time.Duration
	Construct time.Duration // non-overlapped construction time
	Batches   int
	Timeline  []Segment
	// Schedule is the gate evaluation order the driver would issue,
	// batch by batch (gate indices into the netlist).
	Schedule [][]int
}

// GatesPerSecond returns simulated throughput of bootstrapped gates.
func (e Exec) GatesPerSecond(bootstraps int) float64 {
	if e.Makespan <= 0 {
		return 0
	}
	return float64(bootstraps) / e.Makespan.Seconds()
}

// CuFHEDriver simulates per-gate cuFHE-style execution.
type CuFHEDriver struct {
	Dev Device
	// BatchCap bounds how many independent same-kind gates one cuFHE call
	// vectorizes. The paper observes that interdependent operations and
	// mixed gate types keep real programs from batching ("limiting the
	// size of each cuFHE batch"), so the default (0 → 1) models the
	// per-gate API usage of Fig. 8. Raise it to ablate the batching
	// assumption.
	BatchCap int
}

// Simulate walks the program level by level; within a level, gates of the
// same kind batch up to BatchCap, and every batch pays copy-in, launch,
// kernel, copy-out with the host blocked — the serialization of Fig. 8.
func (d CuFHEDriver) Simulate(nl *circuit.Netlist) Exec {
	cap := d.BatchCap
	if cap <= 0 {
		cap = 1
	}
	if cap > d.Dev.SMs {
		cap = d.Dev.SMs
	}
	e := Exec{Device: d.Dev}
	var now time.Duration
	emit := func(kind SegmentKind, dur time.Duration, gates int) {
		if dur <= 0 {
			return
		}
		e.Timeline = append(e.Timeline, Segment{Kind: kind, Start: now, Dur: dur, Gates: gates})
		now += dur
		switch kind {
		case SegCopyIn, SegCopyOut:
			e.Copy += dur
		case SegKernel:
			e.Kernel += dur
		case SegLaunch:
			e.Launch += dur
		}
	}
	for _, level := range nl.Levels() {
		// Group by kind: cuFHE batches only homogeneous gates.
		byKind := map[uint8][]int{}
		order := []uint8{}
		for _, gi := range level {
			k := uint8(nl.Gates[gi].Kind)
			if _, seen := byKind[k]; !seen {
				order = append(order, k)
			}
			byKind[k] = append(byKind[k], gi)
		}
		for _, k := range order {
			gates := byKind[k]
			for off := 0; off < len(gates); off += cap {
				hi := off + cap
				if hi > len(gates) {
					hi = len(gates)
				}
				batch := gates[off:hi]
				n := len(batch)
				emit(SegCopyIn, time.Duration(2*n)*d.Dev.CopyPerCT, n)
				emit(SegLaunch, d.Dev.KernelLaunch, n)
				emit(SegKernel, d.Dev.GateKernel, n)
				emit(SegCopyOut, time.Duration(n)*d.Dev.CopyPerCT, n)
				e.Batches++
				e.Schedule = append(e.Schedule, append([]int(nil), batch...))
			}
		}
	}
	e.Makespan = now
	return e
}

// GraphDriver simulates the PyTFHE CUDA-Graphs backend.
type GraphDriver struct {
	Dev Device
	// BatchGates bounds the gates per fused graph; 0 means size to device
	// memory (the paper: "hundreds of thousands of nodes").
	BatchGates int
}

// Simulate cuts the topological order into batches, executes each batch as
// one fused launch whose internal wavefronts use all SMs, keeps ciphertexts
// device-resident, and overlaps construction of batch i+1 with execution of
// batch i (Fig. 9).
func (d GraphDriver) Simulate(nl *circuit.Netlist) Exec {
	e := Exec{Device: d.Dev}
	limit := d.BatchGates
	if limit <= 0 {
		limit = d.Dev.MemCiphertexts / 4
		if limit < 1 {
			limit = 1
		}
	}
	// Cut the topological gate order into batches.
	var batches [][]int
	for off := 0; off < len(nl.Gates); off += limit {
		hi := off + limit
		if hi > len(nl.Gates) {
			hi = len(nl.Gates)
		}
		idx := make([]int, 0, hi-off)
		for gi := off; gi < hi; gi++ {
			idx = append(idx, gi)
		}
		batches = append(batches, idx)
	}
	e.Batches = len(batches)
	e.Schedule = batches

	// Per-batch execution time: internal wavefront over the batch sub-DAG.
	execTime := make([]time.Duration, len(batches))
	constructTime := make([]time.Duration, len(batches))
	level := make([]int, nl.NumNodes()+1)
	for bi, batch := range batches {
		width := map[int]int{}
		maxLvl := 0
		for _, gi := range batch {
			g := nl.Gates[gi]
			l := level[g.A]
			if lb := level[g.B]; lb > l {
				l = lb
			}
			l++
			level[nl.GateID(gi)] = l
			width[l]++
			if l > maxLvl {
				maxLvl = l
			}
		}
		var t time.Duration
		for _, w := range width {
			t += time.Duration((w+d.Dev.SMs-1)/d.Dev.SMs) * d.Dev.GateKernel
		}
		execTime[bi] = t + d.Dev.KernelLaunch
		constructTime[bi] = time.Duration(len(batch)) * d.Dev.ConstructPerGate
		// Reset intra-batch levels relative to batch boundaries: outputs of
		// this batch are ready when the batch completes, so downstream
		// batches see them at level 0.
		for _, gi := range batch {
			level[nl.GateID(gi)] = 0
		}
	}

	// Copies: only program inputs in and outputs out (intermediates stay
	// resident).
	copyIn := time.Duration(nl.NumInputs) * d.Dev.CopyPerCT
	copyOut := time.Duration(len(nl.Outputs)) * d.Dev.CopyPerCT

	// Pipeline: construct batch 0; then exec(i) overlaps construct(i+1).
	var now time.Duration
	emit := func(kind SegmentKind, start, dur time.Duration, gates int) {
		if dur <= 0 {
			return
		}
		e.Timeline = append(e.Timeline, Segment{Kind: kind, Start: start, Dur: dur, Gates: gates})
	}
	emit(SegCopyIn, now, copyIn, nl.NumInputs)
	now += copyIn
	e.Copy += copyIn

	if len(batches) > 0 {
		emit(SegConstruct, now, constructTime[0], len(batches[0]))
		now += constructTime[0]
		e.Construct += constructTime[0]
		for i := range batches {
			emit(SegLaunch, now, d.Dev.KernelLaunch, len(batches[i]))
			emit(SegKernel, now+d.Dev.KernelLaunch, execTime[i]-d.Dev.KernelLaunch, len(batches[i]))
			e.Launch += d.Dev.KernelLaunch
			e.Kernel += execTime[i] - d.Dev.KernelLaunch
			step := execTime[i]
			if i+1 < len(batches) {
				// Next-batch construction happens during execution; only
				// the excess extends the timeline.
				emit(SegConstruct, now, constructTime[i+1], len(batches[i+1]))
				if constructTime[i+1] > step {
					e.Construct += constructTime[i+1] - step
					step = constructTime[i+1]
				}
			}
			now += step
		}
	}
	emit(SegCopyOut, now, copyOut, len(nl.Outputs))
	now += copyOut
	e.Copy += copyOut
	e.Makespan = now
	return e
}

// ValidateSchedule checks that a driver's schedule respects data
// dependencies: every gate's operands are inputs or gates scheduled in an
// earlier position. It returns the number of gates checked.
func ValidateSchedule(nl *circuit.Netlist, schedule [][]int) (int, error) {
	pos := make([]int, nl.NumNodes()+1)
	for i := range pos {
		pos[i] = -1
	}
	seq := 0
	for _, batch := range schedule {
		for _, gi := range batch {
			pos[nl.GateID(gi)] = seq
			seq++
		}
	}
	checked := 0
	seq = 0
	for _, batch := range schedule {
		for _, gi := range batch {
			g := nl.Gates[gi]
			for _, in := range [2]circuit.NodeID{g.A, g.B} {
				if nl.IsInput(in) {
					continue
				}
				p := pos[in]
				if p < 0 {
					return checked, fmt.Errorf("gpu: gate %d reads unscheduled node %d", nl.GateID(gi), in)
				}
				if p >= seq {
					return checked, fmt.Errorf("gpu: gate %d scheduled before its operand %d", nl.GateID(gi), in)
				}
			}
			checked++
			seq++
		}
	}
	if checked != len(nl.Gates) {
		return checked, fmt.Errorf("gpu: schedule covers %d of %d gates", checked, len(nl.Gates))
	}
	return checked, nil
}
