package gpu

import (
	"testing"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

func chain(depth int) *circuit.Netlist {
	b := circuit.NewBuilder("chain", circuit.NoOptimizations())
	a := b.Input("a")
	bb := b.Input("b")
	cur := a
	for i := 0; i < depth; i++ {
		cur = b.Gate(logic.NAND, cur, bb)
	}
	b.Output("o", cur)
	return b.MustBuild()
}

func wide(width, depth int) *circuit.Netlist {
	b := circuit.NewBuilder("wide", circuit.NoOptimizations())
	ins := b.Inputs("x", width+1)
	for w := 0; w < width; w++ {
		cur := ins[w]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.XOR, cur, ins[w+1])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

func TestCuFHEFourGateTimeline(t *testing.T) {
	// Fig. 8: four dependent gates — each pays copy-in, launch, kernel,
	// copy-out, fully serialized.
	nl := chain(4)
	e := CuFHEDriver{Dev: A5000()}.Simulate(nl)
	if e.Batches != 4 {
		t.Fatalf("4 dependent gates should need 4 batches, got %d", e.Batches)
	}
	var kinds []SegmentKind
	for _, s := range e.Timeline {
		kinds = append(kinds, s.Kind)
	}
	// Pattern: (copy-in, launch, kernel, copy-out) × 4.
	if len(kinds) != 16 {
		t.Fatalf("timeline has %d segments: %v", len(kinds), kinds)
	}
	for i := 0; i < 16; i += 4 {
		if kinds[i] != SegCopyIn || kinds[i+1] != SegLaunch || kinds[i+2] != SegKernel || kinds[i+3] != SegCopyOut {
			t.Fatalf("segment pattern broken at %d: %v", i, kinds[i:i+4])
		}
	}
	if _, err := ValidateSchedule(nl, e.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDriverBeatsCuFHE(t *testing.T) {
	// A realistically wide program: the graph backend must win big
	// (Fig. 11 reports up to ~62×).
	nl := wide(512, 8)
	dev := A5000()
	cu := CuFHEDriver{Dev: dev}.Simulate(nl)
	gr := GraphDriver{Dev: dev}.Simulate(nl)
	if gr.Makespan >= cu.Makespan {
		t.Fatalf("graph (%v) should beat cuFHE (%v)", gr.Makespan, cu.Makespan)
	}
	if _, err := ValidateSchedule(nl, gr.Schedule); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateSchedule(nl, cu.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestSerialProgramGetsModestGPUSpeedup(t *testing.T) {
	// The paper observes serial benchmarks (NRSolver, Parrondo) barely
	// speed up on GPU: a pure chain keeps only one SM busy.
	nl := chain(64)
	dev := A5000()
	cu := CuFHEDriver{Dev: dev}.Simulate(nl)
	gr := GraphDriver{Dev: dev}.Simulate(nl)
	ratio := float64(cu.Makespan) / float64(gr.Makespan)
	if ratio > 3 {
		t.Fatalf("serial chain sped up %.1fx; launch/copy elimination alone cannot explain that", ratio)
	}
	if ratio < 1 {
		t.Fatalf("graph driver slower than cuFHE on a chain (%.2fx)", ratio)
	}
}

func Test4090FasterThanA5000(t *testing.T) {
	nl := wide(512, 4)
	a := GraphDriver{Dev: A5000()}.Simulate(nl)
	b := GraphDriver{Dev: RTX4090()}.Simulate(nl)
	if b.Makespan >= a.Makespan {
		t.Fatalf("4090 (%v) should beat A5000 (%v)", b.Makespan, a.Makespan)
	}
}

func TestGraphBatchesRespectLimit(t *testing.T) {
	nl := wide(64, 4)
	e := GraphDriver{Dev: A5000(), BatchGates: 50}.Simulate(nl)
	if e.Batches < len(nl.Gates)/50 {
		t.Fatalf("expected multiple batches, got %d", e.Batches)
	}
	for _, b := range e.Schedule {
		if len(b) > 50 {
			t.Fatalf("batch of %d exceeds limit", len(b))
		}
	}
	if _, err := ValidateSchedule(nl, e.Schedule); err != nil {
		t.Fatal(err)
	}
}

func TestGraphCopiesOnlyProgramBoundary(t *testing.T) {
	nl := wide(32, 8)
	e := GraphDriver{Dev: A5000()}.Simulate(nl)
	wantCopy := time.Duration(nl.NumInputs+len(nl.Outputs)) * A5000().CopyPerCT
	if e.Copy != wantCopy {
		t.Fatalf("graph copies %v, want boundary-only %v", e.Copy, wantCopy)
	}
	// cuFHE, by contrast, copies per gate.
	cu := CuFHEDriver{Dev: A5000()}.Simulate(nl)
	if cu.Copy <= e.Copy {
		t.Fatalf("cuFHE copy time (%v) should exceed graph's (%v)", cu.Copy, e.Copy)
	}
}

func TestValidateScheduleCatchesViolations(t *testing.T) {
	nl := chain(3)
	// Reverse order violates dependencies.
	bad := [][]int{{2}, {1}, {0}}
	if _, err := ValidateSchedule(nl, bad); err == nil {
		t.Fatal("reversed schedule not rejected")
	}
	// Missing gate.
	if _, err := ValidateSchedule(nl, [][]int{{0, 1}}); err == nil {
		t.Fatal("incomplete schedule not rejected")
	}
}

func TestBreakdownAccounting(t *testing.T) {
	nl := wide(100, 3)
	cu := CuFHEDriver{Dev: A5000()}.Simulate(nl)
	if got := cu.Copy + cu.Kernel + cu.Launch; got != cu.Makespan {
		t.Fatalf("cuFHE breakdown %v != makespan %v", got, cu.Makespan)
	}
	if cu.GatesPerSecond(300) <= 0 {
		t.Fatal("throughput should be positive")
	}
}
