package logic

import "testing"

// ttFromFunc builds an arity-k table from a reference function.
func ttFromFunc(arity int, f func(v uint8) bool) TT {
	var t TT
	for v := 0; v < 1<<arity; v++ {
		if f(uint8(v)) {
			t |= 1 << v
		}
	}
	return t
}

// TestSolveLUTKnownPlans pins the hand-derived weight vectors: AND
// separates with (1,1), XOR needs (2,1), majority is the symmetric
// (1,1,1), and 3-input parity needs (2,2,1) — the norms matter because
// the noise analysis amplifies input variance by Σc².
func TestSolveLUTKnownPlans(t *testing.T) {
	cases := []struct {
		name  string
		arity int
		tt    TT
		norm  int
	}{
		{"AND", 2, TTOf(AND), 2},
		{"OR", 2, TTOf(OR), 2},
		{"NAND", 2, TTOf(NAND), 2},
		{"XOR", 2, TTOf(XOR), 5},
		{"XNOR", 2, TTOf(XNOR), 5},
		{"MAJ", 3, 0xE8, 3},
		{"PARITY3", 3, 0x96, 9},
		{"A_XOR_BC", 3, 0x78, 6},   // a ⊕ (b ∧ c)
		{"XOR_SPREAD", 3, 0x7E, 3}, // (a⊕b) ∨ (a⊕c)
	}
	for _, c := range cases {
		p, ok := SolveLUT(c.arity, c.tt)
		if !ok {
			t.Fatalf("%s: no plan found", c.name)
		}
		if p.WeightNormSq() != c.norm {
			t.Errorf("%s: Σc² = %d, want %d (plan %v)", c.name, p.WeightNormSq(), c.norm, p)
		}
	}
}

// TestSolveLUTCellsMatchTable replays every feasible plan through the
// cell model: for each assignment the weighted phase sum must land on a
// cell whose sign encodes exactly the table's output, and the cell array
// must be antiperiodic (the negacyclic test-vector constraint).
func TestSolveLUTCellsMatchTable(t *testing.T) {
	for arity := 2; arity <= MaxLUTArity; arity++ {
		feasible := 0
		for tt := TT(0); ; tt++ {
			p, ok := SolveLUT(arity, tt)
			if ok {
				feasible++
				for m := 0; m < LUTMsize/2; m++ {
					if p.Cells[m] != -p.Cells[m+LUTMsize/2] {
						t.Fatalf("arity %d tt %#x: cells not antiperiodic: %v", arity, tt, p.Cells)
					}
				}
				for v := 0; v < 1<<arity; v++ {
					sum := int32(0)
					for i := 0; i < arity; i++ {
						s := int32(-1)
						if v>>(arity-1-i)&1 == 1 {
							s = 1
						}
						sum += p.Weights[i] * s
					}
					cell := ((sum % LUTMsize) + LUTMsize) % LUTMsize
					got := p.Cells[cell] > 0
					if got != tt.Eval(uint8(v)) {
						t.Fatalf("arity %d tt %#x assignment %d: cell %d decodes %v, table says %v",
							arity, tt, v, cell, got, tt.Eval(uint8(v)))
					}
				}
			}
			if tt == TTMask(arity) {
				break
			}
		}
		if feasible == 0 {
			t.Fatalf("arity %d: no feasible tables at all", arity)
		}
		t.Logf("arity %d: %d/%d tables single-bootstrap feasible", arity, feasible, int(TTMask(arity))+1)
	}
}

// TestSolveLUTInfeasible pins tables with no plan. 3-input AND puts two
// want-false assignments on antipodal cells for every weight vector (any
// bias included), so it — and by input/output negation symmetry OR3,
// NAND3 and the multiplexer — cannot be evaluated in one msize-8
// bootstrap; they would need a 16-slot message space at half the noise
// margin. The clustering pass simply leaves such cones as 2-input gates.
func TestSolveLUTInfeasible(t *testing.T) {
	for _, c := range []struct {
		name string
		tt   TT
	}{
		{"AND3", 0x80},
		{"OR3", 0xFE},
		{"NAND3", 0x7F},
		{"MUX", 0xCA}, // a ? b : c
	} {
		if p, ok := SolveLUT(3, c.tt); ok {
			t.Errorf("%s (tt %#x) unexpectedly has plan %v", c.name, c.tt, p)
		}
	}
}

// TestSolveLUTEveryArity2 verifies every non-constant 2-input gate has a
// LUT plan — the clustering pass relies on being able to re-express any
// absorbed root gate. (Constants are infeasible by design: all four
// assignments want the same sign, which antiperiodicity forbids; they
// never bootstrap anyway.)
func TestSolveLUTEveryArity2(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		_, ok := SolveLUT(2, TTOf(k))
		if k.IsConst() {
			if ok {
				t.Errorf("%v: constant table unexpectedly has a plan", k)
			}
			continue
		}
		if !ok {
			t.Errorf("%v: no arity-2 LUT plan", k)
		}
	}
}

// TestSolveLUTBounds rejects out-of-range arities.
func TestSolveLUTBounds(t *testing.T) {
	for _, arity := range []int{0, 1, MaxLUTArity + 1} {
		if _, ok := SolveLUT(arity, 0xFF); ok {
			t.Errorf("arity %d: unexpectedly solvable", arity)
		}
	}
}

// TestTTHelpers exercises the projection helpers the builder and the
// clustering pass use to degenerate LUTs with ignored inputs.
func TestTTHelpers(t *testing.T) {
	// f(a,b,c) = a AND c ignores input 1 (b).
	tt := ttFromFunc(3, func(v uint8) bool { return v>>2&1 == 1 && v&1 == 1 })
	if !tt.IgnoresInput(3, 1) {
		t.Fatal("a AND c should ignore input 1")
	}
	if tt.IgnoresInput(3, 0) || tt.IgnoresInput(3, 2) {
		t.Fatal("a AND c depends on inputs 0 and 2")
	}
	if got := tt.DropInput(3, 1); got.Kind() != AND {
		t.Fatalf("dropping b from (a AND c) = %#x, want AND", got)
	}
	if c, _ := tt.IsConst(3); c {
		t.Fatal("a AND c is not constant")
	}
	if c, v := TT(0xFF).IsConst(3); !c || !v {
		t.Fatal("0xFF should be constant true at arity 3")
	}
	if TTOf(XOR).Kind() != XOR {
		t.Fatal("arity-2 TT/Kind round trip broken")
	}
	if !TT(0x96).EvalBits(true, false, false) { // parity(1,0,0)
		t.Fatal("EvalBits MSB-first convention broken")
	}
}
