// Package logic defines the two-input boolean gate alphabet shared by the
// whole toolchain: the netlist IR, the synthesizer, the PyTFHE binary
// format, and the homomorphic gate engine.
//
// A gate kind is its own truth table, packed into a nibble with
// bit (2a+b) holding f(a,b); the most significant bit is f(1,1) and the
// least significant is f(0,0). This is exactly the 4-bit gate-type encoding
// of the PyTFHE instruction format (Fig. 5): XOR encodes as 0110 = 6, as in
// the paper's half-adder example (Fig. 6).
package logic

import "fmt"

// Kind identifies a two-input boolean function by its truth table nibble.
type Kind uint8

// The sixteen two-input boolean functions. The paper's eleven TFHE gate
// types are False..True excluding the constants and projections: AND, OR,
// XOR, NAND, NOR, XNOR, ANDNY, ANDYN, ORNY, ORYN and NOT.
const (
	False Kind = 0  // 0000: constant 0
	NOR   Kind = 1  // 0001: ¬(a ∨ b)
	ANDNY Kind = 2  // 0010: ¬a ∧ b
	NOT   Kind = 3  // 0011: ¬a (second input ignored)
	ANDYN Kind = 4  // 0100: a ∧ ¬b
	NOTB  Kind = 5  // 0101: ¬b (first input ignored)
	XOR   Kind = 6  // 0110: a ⊕ b
	NAND  Kind = 7  // 0111: ¬(a ∧ b)
	AND   Kind = 8  // 1000: a ∧ b
	XNOR  Kind = 9  // 1001: ¬(a ⊕ b)
	COPYB Kind = 10 // 1010: b (first input ignored)
	ORNY  Kind = 11 // 1011: ¬a ∨ b
	COPY  Kind = 12 // 1100: a (second input ignored)
	ORYN  Kind = 13 // 1101: a ∨ ¬b
	OR    Kind = 14 // 1110: a ∨ b
	True  Kind = 15 // 1111: constant 1
)

// NumKinds is the size of the gate alphabet (the 4-bit encoding space).
const NumKinds = 16

var kindNames = [NumKinds]string{
	"FALSE", "NOR", "ANDNY", "NOT", "ANDYN", "NOTB", "XOR", "NAND",
	"AND", "XNOR", "COPYB", "ORNY", "COPY", "ORYN", "OR", "TRUE",
}

// String returns the canonical gate mnemonic.
func (k Kind) String() string {
	if k < NumKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("KIND(%d)", uint8(k))
}

// Parse returns the Kind with the given mnemonic.
func Parse(name string) (Kind, error) {
	for i, n := range kindNames {
		if n == name {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("logic: unknown gate kind %q", name)
}

// Eval applies the boolean function to (a, b).
func (k Kind) Eval(a, b bool) bool {
	idx := 0
	if a {
		idx |= 2
	}
	if b {
		idx |= 1
	}
	return k&(1<<idx) != 0
}

// EvalBit applies the boolean function to bits in {0,1}.
func (k Kind) EvalBit(a, b uint8) uint8 {
	return uint8(k>>((a&1)<<1|b&1)) & 1
}

// IsConst reports whether the function ignores both inputs.
func (k Kind) IsConst() bool { return k == False || k == True }

// ConstValue returns the value of a constant function.
func (k Kind) ConstValue() bool { return k == True }

// IgnoresA reports whether the function is independent of input a.
func (k Kind) IgnoresA() bool {
	// f(0,b) == f(1,b) for both b: bit0==bit2 and bit1==bit3.
	return (k>>2)&3 == k&3
}

// IgnoresB reports whether the function is independent of input b.
func (k Kind) IgnoresB() bool {
	// f(a,0) == f(a,1) for both a: bit0==bit1 and bit2==bit3.
	b0 := k & 1
	b1 := (k >> 1) & 1
	b2 := (k >> 2) & 1
	b3 := (k >> 3) & 1
	return b0 == b1 && b2 == b3
}

// IsUnary reports whether the function depends on exactly one input.
func (k Kind) IsUnary() bool {
	return !k.IsConst() && (k.IgnoresA() || k.IgnoresB())
}

// Negate returns the complement function ¬f.
func (k Kind) Negate() Kind { return k ^ 0xF }

// SwapInputs returns the function g with g(a,b) = f(b,a).
func (k Kind) SwapInputs() Kind {
	// Bits 1 (f(0,1)) and 2 (f(1,0)) swap; bits 0 and 3 stay.
	return k&0x9 | (k&2)<<1 | (k&4)>>1
}

// NegateA returns the function g with g(a,b) = f(¬a, b).
func (k Kind) NegateA() Kind {
	// Swap the a=0 half (bits 0,1) with the a=1 half (bits 2,3).
	return k>>2 | (k&3)<<2
}

// NegateB returns the function g with g(a,b) = f(a, ¬b).
func (k Kind) NegateB() Kind {
	// Swap bit 0 with 1 and bit 2 with 3.
	return (k&0x5)<<1 | (k&0xA)>>1
}

// FromTruthTable builds a Kind from explicit outputs.
func FromTruthTable(f00, f01, f10, f11 bool) Kind {
	var k Kind
	if f00 {
		k |= 1 << 0
	}
	if f01 {
		k |= 1 << 1
	}
	if f10 {
		k |= 1 << 2
	}
	if f11 {
		k |= 1 << 3
	}
	return k
}

// TFHEGates lists the paper's eleven bootstrappable gate types in a stable
// order: the ten genuine two-input functions plus NOT.
func TFHEGates() []Kind {
	return []Kind{AND, NAND, OR, NOR, XOR, XNOR, ANDNY, ANDYN, ORNY, ORYN, NOT}
}

// NeedsBootstrap reports whether evaluating the gate homomorphically
// requires a bootstrapping operation. Projections, negation and constants
// are linear on ciphertexts and essentially free; everything else costs one
// bootstrap.
func (k Kind) NeedsBootstrap() bool {
	switch k {
	case False, True, COPY, COPYB, NOT, NOTB:
		return false
	}
	return true
}
