// Multi-input LUT gates. A k-input LUT (k ≤ MaxLUTArity) names an
// arbitrary boolean function by its truth table and is evaluated
// homomorphically with a single programmable bootstrap: the k boolean
// ciphertexts (phases ±1/8) are combined with small integer weights, so
// the sum's phase lands on one of eight torus cells m/8, and the
// bootstrap's test vector reads the function value off the cell.
//
// Not every truth table is reachable this way. Integer-weighted sums of
// ±1/8 stay on the 1/8 grid — eight cells, not 2^k distinct points — and
// the negacyclic ring forces the test vector to be antiperiodic:
// lut(m+4 mod 8) = −lut(m). A table is feasible exactly when some weight
// vector c ∈ {±1,±2,±3}^k separates it: assignments that share a cell
// must want the same output, and assignments on opposite cells (m and
// m+4) must want opposite outputs. SolveLUT searches weight vectors in
// order of increasing Σc² (the pre-bootstrap noise amplification) and
// returns the cheapest plan, or reports the table unreachable — AND is
// (1,1), XOR needs (2,1), majority is (1,1,1), and 3-input parity needs
// (1,2,2); 3-input AND has no plan at all (every weight vector puts two
// want-false assignments on antipodal cells).
package logic

import (
	"fmt"
	"sync"
)

// MaxLUTArity is the largest LUT input count the toolchain supports. The
// weighted phase sum must stay on the eight-cell 1/8 grid with a slot
// half-width of 1/16 — the same internal decryption margin the 2-input
// gates use — which caps useful arity at three.
const MaxLUTArity = 3

// LUTMsize is the programmable-bootstrap message space LUT evaluation
// uses: eight torus cells, of which the negacyclic half-torus convention
// (see internal/tfhe/boot) samples the lower four.
const LUTMsize = 8

// TT is a truth table over up to MaxLUTArity inputs, one bit per input
// assignment. The bit index is the assignment read MSB-first — for
// arity k and inputs x₀..x₍k₋₁₎, bit (x₀·2^(k-1) | … | x₍k₋₁₎) holds
// f(x₀,…,x₍k₋₁₎) — so an arity-2 TT is numerically identical to the Kind
// nibble (bit 2a+b = f(a,b)).
type TT uint8

// TTOf converts a 2-input gate kind to its truth table.
func TTOf(k Kind) TT { return TT(k) }

// Kind converts an arity-2 truth table back to the gate alphabet.
func (t TT) Kind() Kind { return Kind(t & 0xF) }

// Mask returns the valid-bit mask for a table of the given arity.
func TTMask(arity int) TT { return TT(1<<(1<<arity)) - 1 }

// Eval evaluates the table for one input assignment v (read MSB-first,
// matching the bit-index convention above).
func (t TT) Eval(v uint8) bool { return t>>(v)&1 == 1 }

// EvalBits evaluates the table on explicit input bits, bits[0] being the
// most significant index bit.
func (t TT) EvalBits(bits ...bool) bool {
	var v uint8
	for _, b := range bits {
		v <<= 1
		if b {
			v |= 1
		}
	}
	return t.Eval(v)
}

// IgnoresInput reports whether the arity-wide table is independent of
// input i (0-based, MSB-first).
func (t TT) IgnoresInput(arity, i int) bool {
	shift := uint(arity - 1 - i)
	for v := 0; v < 1<<arity; v++ {
		if v>>shift&1 == 0 && t.Eval(uint8(v)) != t.Eval(uint8(v)|1<<shift) {
			return false
		}
	}
	return true
}

// DropInput projects away input i (which must be ignored, or the i=0
// restriction is taken), returning the table over the remaining arity-1
// inputs in the same MSB-first order.
func (t TT) DropInput(arity, i int) TT {
	shift := uint(arity - 1 - i)
	var out TT
	var w uint8
	for v := 0; v < 1<<arity; v++ {
		if v>>shift&1 == 1 {
			continue
		}
		if t.Eval(uint8(v)) {
			out |= 1 << w
		}
		w++
	}
	return out
}

// Restrict pins input i (0-based, MSB-first) to val, returning the table
// over the remaining arity-1 inputs in the same order. Restrict(arity, i,
// false) coincides with DropInput for ignored inputs.
func (t TT) Restrict(arity, i int, val bool) TT {
	shift := uint(arity - 1 - i)
	var out TT
	var w uint8
	for v := 0; v < 1<<arity; v++ {
		if (v>>shift&1 == 1) != val {
			continue
		}
		if t.Eval(uint8(v)) {
			out |= 1 << w
		}
		w++
	}
	return out
}

// MergeDup identifies inputs i and j (i < j): input j is dropped and its
// index bit copies input i's, for collapsing duplicate operands.
func (t TT) MergeDup(arity, i, j int) TT {
	var out TT
	n := arity - 1
	for v := 0; v < 1<<n; v++ {
		var full uint8
		ri := 0
		for pos := 0; pos < arity; pos++ {
			if pos == j {
				continue
			}
			full |= uint8(v>>(n-1-ri)&1) << (arity - 1 - pos)
			ri++
		}
		if full>>(arity-1-i)&1 == 1 {
			full |= 1 << (arity - 1 - j)
		}
		if t.Eval(full) {
			out |= 1 << v
		}
	}
	return out
}

// FlipInput negates input i, absorbing a NOT gate feeding that operand.
func (t TT) FlipInput(arity, i int) TT {
	shift := uint(arity - 1 - i)
	var out TT
	for v := 0; v < 1<<arity; v++ {
		if t.Eval(uint8(v) ^ 1<<shift) {
			out |= 1 << v
		}
	}
	return out
}

// Permute reorders inputs: the returned table g satisfies
// g(x[perm[0]], …, x[perm[k-1]]) = t(x[0], …, x[k-1]), matching an
// operand slice reordered as newOps[i] = ops[perm[i]]. perm must be a
// permutation of 0..arity-1.
func (t TT) Permute(arity int, perm []int) TT {
	var out TT
	for v := 0; v < 1<<arity; v++ {
		var ov uint8
		for i := 0; i < arity; i++ {
			ov |= uint8(v>>(arity-1-i)&1) << (arity - 1 - perm[i])
		}
		if t.Eval(ov) {
			out |= 1 << v
		}
	}
	return out
}

// IsConst reports whether the arity-wide table is constant, and its value.
func (t TT) IsConst(arity int) (bool, bool) {
	m := TTMask(arity)
	switch t & m {
	case 0:
		return true, false
	case m:
		return true, true
	}
	return false, false
}

// LUTPlan is the single-bootstrap recipe for a feasible LUT: the
// per-input integer weights of the linear combination and the resolved
// test-vector cell signs (+1 encrypts true, −1 false; antiperiodic, so
// Cells[m+4] = −Cells[m]).
type LUTPlan struct {
	Arity   int
	Weights [MaxLUTArity]int32
	Cells   [LUTMsize]int8
}

// WeightNormSq is Σc², the factor the input noise variance is amplified
// by before the bootstrap refreshes it. The noise analysis divides the
// 1/16 internal margin by the square root of this times the input
// variance.
func (p LUTPlan) WeightNormSq() int {
	n := 0
	for _, c := range p.Weights {
		n += int(c * c)
	}
	return n
}

// lutWeightChoices is the per-input weight alphabet, ordered so the
// lexicographic sweep below visits small magnitudes (and positive signs)
// first.
var lutWeightChoices = []int32{1, -1, 2, -2, 3, -3}

// solveLUTSearch runs the exhaustive weight search for one table.
func solveLUTSearch(arity int, tt TT) (LUTPlan, bool) {
	tt &= TTMask(arity)
	best := LUTPlan{}
	bestNorm := -1
	var weights [MaxLUTArity]int32
	var sweep func(i int)
	sweep = func(i int) {
		if i == arity {
			cells, ok := lutCells(arity, tt, weights)
			if !ok {
				return
			}
			norm := 0
			for j := 0; j < arity; j++ {
				norm += int(weights[j] * weights[j])
			}
			if bestNorm < 0 || norm < bestNorm {
				best = LUTPlan{Arity: arity, Weights: weights, Cells: cells}
				bestNorm = norm
			}
			return
		}
		for _, c := range lutWeightChoices {
			weights[i] = c
			sweep(i + 1)
		}
		weights[i] = 0
	}
	sweep(0)
	return best, bestNorm >= 0
}

// lutCells checks one weight vector against the table: every assignment
// is dropped onto its phase cell, and the induced cell signs must be
// self-consistent and antiperiodic. Unconstrained cells are filled
// arbitrarily (the bootstrap never lands on them).
func lutCells(arity int, tt TT, weights [MaxLUTArity]int32) ([LUTMsize]int8, bool) {
	var cells [LUTMsize]int8
	for v := 0; v < 1<<arity; v++ {
		sum := int32(0)
		for i := 0; i < arity; i++ {
			s := int32(-1)
			if v>>(arity-1-i)&1 == 1 {
				s = 1
			}
			sum += weights[i] * s
		}
		cell := ((sum % LUTMsize) + LUTMsize) % LUTMsize
		want := int8(-1)
		if tt.Eval(uint8(v)) {
			want = 1
		}
		opp := (cell + LUTMsize/2) % LUTMsize
		if cells[cell] == -want || cells[opp] == want {
			return cells, false
		}
		cells[cell] = want
		cells[opp] = -want
	}
	for m := 0; m < LUTMsize/2; m++ {
		if cells[m] == 0 {
			cells[m] = 1
			cells[m+LUTMsize/2] = -1
		}
	}
	return cells, true
}

// lutPlans caches the search results: 16 arity-2 and 256 arity-3 tables,
// computed once on first use.
var lutPlans struct {
	once  sync.Once
	plan  [MaxLUTArity + 1][1 << (1 << MaxLUTArity)]LUTPlan
	valid [MaxLUTArity + 1][1 << (1 << MaxLUTArity)]bool
}

func lutSolveAll() {
	for arity := 2; arity <= MaxLUTArity; arity++ {
		for tt := 0; tt < 1<<(1<<arity); tt++ {
			p, ok := solveLUTSearch(arity, TT(tt))
			lutPlans.plan[arity][tt] = p
			lutPlans.valid[arity][tt] = ok
		}
	}
}

// SolveLUT returns the cheapest single-bootstrap plan for the table, or
// ok=false when no weight vector in {±1,±2,±3}^arity separates it.
// Results are memoized; the call is a table lookup after first use.
func SolveLUT(arity int, tt TT) (LUTPlan, bool) {
	if arity < 2 || arity > MaxLUTArity {
		return LUTPlan{}, false
	}
	lutPlans.once.Do(lutSolveAll)
	tt &= TTMask(arity)
	return lutPlans.plan[arity][tt], lutPlans.valid[arity][tt]
}

// LUTFeasible reports whether the table has a single-bootstrap plan.
func LUTFeasible(arity int, tt TT) bool {
	_, ok := SolveLUT(arity, tt)
	return ok
}

// String renders the plan for diagnostics.
func (p LUTPlan) String() string {
	return fmt.Sprintf("lut%d weights %v (Σc²=%d)", p.Arity, p.Weights[:p.Arity], p.WeightNormSq())
}
