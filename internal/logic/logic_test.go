package logic

import (
	"testing"
	"testing/quick"
)

func TestTruthTables(t *testing.T) {
	cases := []struct {
		kind Kind
		f    func(a, b bool) bool
	}{
		{AND, func(a, b bool) bool { return a && b }},
		{OR, func(a, b bool) bool { return a || b }},
		{XOR, func(a, b bool) bool { return a != b }},
		{NAND, func(a, b bool) bool { return !(a && b) }},
		{NOR, func(a, b bool) bool { return !(a || b) }},
		{XNOR, func(a, b bool) bool { return a == b }},
		{ANDNY, func(a, b bool) bool { return !a && b }},
		{ANDYN, func(a, b bool) bool { return a && !b }},
		{ORNY, func(a, b bool) bool { return !a || b }},
		{ORYN, func(a, b bool) bool { return a || !b }},
		{NOT, func(a, b bool) bool { return !a }},
		{NOTB, func(a, b bool) bool { return !b }},
		{COPY, func(a, b bool) bool { return a }},
		{COPYB, func(a, b bool) bool { return b }},
		{False, func(a, b bool) bool { return false }},
		{True, func(a, b bool) bool { return true }},
	}
	for _, tc := range cases {
		for _, a := range []bool{false, true} {
			for _, b := range []bool{false, true} {
				if got := tc.kind.Eval(a, b); got != tc.f(a, b) {
					t.Errorf("%v(%v,%v) = %v", tc.kind, a, b, got)
				}
			}
		}
	}
}

func TestXOREncodingMatchesPaper(t *testing.T) {
	// Fig. 6 of the paper encodes the XOR gate type as 0110.
	if XOR != 6 {
		t.Fatalf("XOR encodes as %d, want 6", XOR)
	}
}

func TestEvalBitMatchesEval(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		for a := uint8(0); a < 2; a++ {
			for b := uint8(0); b < 2; b++ {
				want := uint8(0)
				if k.Eval(a == 1, b == 1) {
					want = 1
				}
				if got := k.EvalBit(a, b); got != want {
					t.Errorf("%v.EvalBit(%d,%d) = %d, want %d", k, a, b, got, want)
				}
			}
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	for k := Kind(0); k < NumKinds; k++ {
		got, err := Parse(k.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", k.String(), err)
		}
		if got != k {
			t.Fatalf("Parse(%q) = %v", k.String(), got)
		}
	}
	if _, err := Parse("BOGUS"); err == nil {
		t.Fatal("expected parse error")
	}
}

func TestNegate(t *testing.T) {
	f := func(k uint8, a, b bool) bool {
		kind := Kind(k % NumKinds)
		return kind.Negate().Eval(a, b) == !kind.Eval(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSwapInputs(t *testing.T) {
	f := func(k uint8, a, b bool) bool {
		kind := Kind(k % NumKinds)
		return kind.SwapInputs().Eval(a, b) == kind.Eval(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNegateOperands(t *testing.T) {
	f := func(k uint8, a, b bool) bool {
		kind := Kind(k % NumKinds)
		return kind.NegateA().Eval(a, b) == kind.Eval(!a, b) &&
			kind.NegateB().Eval(a, b) == kind.Eval(a, !b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestClassification(t *testing.T) {
	if !False.IsConst() || !True.IsConst() || AND.IsConst() {
		t.Fatal("IsConst misclassifies")
	}
	if !NOT.IsUnary() || !COPYB.IsUnary() || AND.IsUnary() || True.IsUnary() {
		t.Fatal("IsUnary misclassifies")
	}
	if !NOTB.IgnoresA() || !COPY.IgnoresB() || XOR.IgnoresA() || XOR.IgnoresB() {
		t.Fatal("Ignores* misclassifies")
	}
}

func TestTFHEGatesCount(t *testing.T) {
	gates := TFHEGates()
	if len(gates) != 11 {
		t.Fatalf("the paper supports eleven gates, got %d", len(gates))
	}
	seen := map[Kind]bool{}
	for _, g := range gates {
		if seen[g] {
			t.Fatalf("duplicate gate %v", g)
		}
		seen[g] = true
	}
}

func TestNeedsBootstrap(t *testing.T) {
	free := 0
	for k := Kind(0); k < NumKinds; k++ {
		if !k.NeedsBootstrap() {
			free++
		}
	}
	if free != 6 { // FALSE, TRUE, NOT, NOTB, COPY, COPYB
		t.Fatalf("%d free kinds, want 6", free)
	}
}

func TestFromTruthTable(t *testing.T) {
	if got := FromTruthTable(false, true, true, false); got != XOR {
		t.Fatalf("FromTruthTable XOR = %v", got)
	}
	if got := FromTruthTable(true, true, true, false); got != NAND {
		t.Fatalf("FromTruthTable NAND = %v", got)
	}
}
