package vipbench

import (
	"fmt"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/circuit"
	"pytfhe/internal/models"
)

// NNWorkload is a compiled neural-network benchmark (MNIST_S/M/L or
// Attention_S/L) with its metadata.
type NNWorkload struct {
	Name     string
	Netlist  *circuit.Netlist
	Compiled *chiseltorch.Compiled
}

// CompileMNIST builds one of the paper's MNIST CNNs at the given data type
// (nil = Fixed(8,8)). Pass a scaled spec for quick runs.
func CompileMNIST(spec models.MNISTSpec, dt chiseltorch.DType) (*NNWorkload, error) {
	model := spec.ToChiselTorch(dt)
	c, err := model.Compile(1, spec.Image, spec.Image)
	if err != nil {
		return nil, fmt.Errorf("vipbench: %s: %w", spec.Name, err)
	}
	return &NNWorkload{Name: spec.Name, Netlist: c.Netlist, Compiled: c}, nil
}

// CompileAttention builds one of the paper's self-attention layers.
func CompileAttention(spec models.AttentionSpec, dt chiseltorch.DType) (*NNWorkload, error) {
	model := spec.ToChiselTorch(dt)
	c, err := model.Compile(spec.Seq, spec.Hidden)
	if err != nil {
		return nil, fmt.Errorf("vipbench: %s: %w", spec.Name, err)
	}
	return &NNWorkload{Name: spec.Name, Netlist: c.Netlist, Compiled: c}, nil
}
