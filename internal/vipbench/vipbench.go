// Package vipbench implements the VIP-Bench workloads the paper evaluates
// (Biernacki et al., SEED 2021): 18 privacy-enhanced-computation kernels
// ranging from tiny linear arithmetic (Hamming distance, dot product)
// through iterative approximation (Euler, Newton-Raphson, Kepler) to
// real-world applications (Roberts-Cross edge detection, MNIST), plus the
// paper's additional MNIST_M/MNIST_L CNNs and Attention_S/Attention_L
// self-attention layers.
//
// Every benchmark carries a plaintext reference implementation; tests
// compare the synthesized circuit against it on random inputs. Benchmarks
// are built with the hdl library (the paper implements them in Chisel) and
// run through the synth optimization pipeline.
package vipbench

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/hdl"
	"pytfhe/internal/synth"
)

// Benchmark is one VIP-Bench kernel.
type Benchmark struct {
	Name string
	Desc string
	// InputBits and OutputBits give the widths of the logical input and
	// output words, in declaration order.
	InputBits  []int
	OutputBits []int
	// Serial marks workloads whose dataflow is mostly a dependent chain —
	// the ones the paper observes scale poorly (NR-Solver, Parrondo,
	// Euler, Kadane, gradient descent, Kepler).
	Serial bool
	// Build synthesizes the optimized netlist.
	Build func() (*circuit.Netlist, error)
	// Ref computes the same function on plaintext words.
	Ref func(in []uint64) []uint64
}

// EncodeInputs packs logical input words into the netlist's input bits.
func (b Benchmark) EncodeInputs(vals []uint64) ([]bool, error) {
	if len(vals) != len(b.InputBits) {
		return nil, fmt.Errorf("vipbench: %s takes %d inputs, got %d", b.Name, len(b.InputBits), len(vals))
	}
	var bits []bool
	for i, w := range b.InputBits {
		for j := 0; j < w; j++ {
			bits = append(bits, vals[i]>>uint(j)&1 == 1)
		}
	}
	return bits, nil
}

// DecodeOutputs unpacks netlist output bits into logical words.
func (b Benchmark) DecodeOutputs(bits []bool) ([]uint64, error) {
	total := 0
	for _, w := range b.OutputBits {
		total += w
	}
	if len(bits) != total {
		return nil, fmt.Errorf("vipbench: %s produces %d bits, got %d", b.Name, total, len(bits))
	}
	out := make([]uint64, len(b.OutputBits))
	off := 0
	for i, w := range b.OutputBits {
		for j := 0; j < w; j++ {
			if bits[off+j] {
				out[i] |= 1 << uint(j)
			}
		}
		off += w
	}
	return out, nil
}

// finish optimizes and returns the module's netlist.
func finish(m *hdl.Module) (*circuit.Netlist, error) {
	nl, err := m.Build()
	if err != nil {
		return nil, err
	}
	res, err := synth.Optimize(nl)
	if err != nil {
		return nil, err
	}
	return res.Netlist, nil
}

func signExt(v uint64, w int) int64 {
	shift := 64 - uint(w)
	return int64(v<<shift) >> shift
}

func toRaw(v int64, w int) uint64 { return uint64(v) & (1<<uint(w) - 1) }

// repeatBits returns n copies of w.
func repeatBits(w, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = w
	}
	return out
}

// All returns the 18 VIP-Bench kernels in ascending rough gate-count order
// (the ordering Fig. 10 uses on its x axis), excluding the MNIST networks,
// which are produced by MNISTS/MNISTM/MNISTL in models.go.
func All() []Benchmark {
	return []Benchmark{
		HammingDistance(),
		FanControl(),
		Primality(),
		Distinctness(),
		EulersApprox(),
		StringSearch(),
		FilteredQuery(),
		Kadane(),
		BubbleSort(),
		DotProduct(),
		LinearRegression(),
		KNN(),
		Parrondo(),
		GradientDescent(),
		NRSolver(),
		KeplerCalc(),
		EditDistance(),
		RobertsCross(),
	}
}

// ByName returns the benchmark with the given name.
func ByName(name string) (Benchmark, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Benchmark{}, fmt.Errorf("vipbench: unknown benchmark %q", name)
}

// --- small linear kernels ---

// HammingDistance counts differing bits of two 64-bit words.
func HammingDistance() Benchmark {
	return Benchmark{
		Name:       "hamming-distance",
		Desc:       "popcount of the XOR of two 64-bit words",
		InputBits:  []int{64, 64},
		OutputBits: []int{7},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("hamming_distance")
			a := m.InputBus("a", 64)
			b := m.InputBus("b", 64)
			m.OutputBus("dist", m.PopCount(m.Xor(a, b)))
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			x := in[0] ^ in[1]
			n := uint64(0)
			for x != 0 {
				n += x & 1
				x >>= 1
			}
			return []uint64{n}
		},
	}
}

// FanControl picks one of four fan speeds from an 8-bit temperature.
func FanControl() Benchmark {
	thresholds := []uint64{40, 80, 160}
	speeds := []uint64{0, 1, 2, 3}
	return Benchmark{
		Name:       "fan-control",
		Desc:       "threshold ladder selecting a fan speed",
		InputBits:  []int{8},
		OutputBits: []int{2},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("fan_control")
			t := m.InputBus("t", 8)
			out := m.ConstBus(speeds[0], 2)
			for i, th := range thresholds {
				ge := m.GeU(t, m.ConstBus(th, 8))
				out = m.Mux(ge, m.ConstBus(speeds[i+1], 2), out)
			}
			m.OutputBus("speed", out)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			s := speeds[0]
			for i, th := range thresholds {
				if in[0] >= th {
					s = speeds[i+1]
				}
			}
			return []uint64{s}
		},
	}
}

// Primality tests whether a 6-bit input is prime.
func Primality() Benchmark {
	primes := []uint64{2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61}
	return Benchmark{
		Name:       "primality",
		Desc:       "primality of a 6-bit value by comparison ladder",
		InputBits:  []int{6},
		OutputBits: []int{1},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("primality")
			n := m.InputBus("n", 6)
			hits := make(hdl.Bus, 0, len(primes))
			for _, p := range primes {
				hits = append(hits, m.Eq(n, m.ConstBus(p, 6)))
			}
			m.Output("prime", m.OrReduce(hits))
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			for _, p := range primes {
				if in[0] == p {
					return []uint64{1}
				}
			}
			return []uint64{0}
		},
	}
}

// Distinctness reports whether 8 unsigned bytes are pairwise distinct.
func Distinctness() Benchmark {
	const n = 8
	return Benchmark{
		Name:       "distinctness",
		Desc:       "pairwise distinctness of 8 bytes",
		InputBits:  repeatBits(8, n),
		OutputBits: []int{1},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("distinctness")
			xs := make([]hdl.Bus, n)
			for i := range xs {
				xs[i] = m.InputBus(fmt.Sprintf("x%d", i), 8)
			}
			var pairs hdl.Bus
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					pairs = append(pairs, m.Ne(xs[i], xs[j]))
				}
			}
			m.Output("distinct", m.AndReduce(pairs))
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			for i := 0; i < n; i++ {
				for j := i + 1; j < n; j++ {
					if in[i] == in[j] {
						return []uint64{0}
					}
				}
			}
			return []uint64{1}
		},
	}
}

// StringSearch finds whether a constant 4-character needle occurs in an
// encrypted 16-character haystack (4-bit alphabet).
func StringSearch() Benchmark {
	needle := []uint64{3, 1, 4, 1}
	const hay = 16
	return Benchmark{
		Name:       "string-search",
		Desc:       "constant needle search over an encrypted string",
		InputBits:  repeatBits(4, hay),
		OutputBits: []int{1},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("string_search")
			cs := make([]hdl.Bus, hay)
			for i := range cs {
				cs[i] = m.InputBus(fmt.Sprintf("c%d", i), 4)
			}
			var hits hdl.Bus
			for off := 0; off+len(needle) <= hay; off++ {
				var eqs hdl.Bus
				for k, nc := range needle {
					eqs = append(eqs, m.Eq(cs[off+k], m.ConstBus(nc, 4)))
				}
				hits = append(hits, m.AndReduce(eqs))
			}
			m.Output("found", m.OrReduce(hits))
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			for off := 0; off+len(needle) <= hay; off++ {
				match := true
				for k, nc := range needle {
					if in[off+k] != nc {
						match = false
						break
					}
				}
				if match {
					return []uint64{1}
				}
			}
			return []uint64{0}
		},
	}
}

// FilteredQuery sums the 8-bit values of the records whose 4-bit key
// equals an encrypted query key (16 records).
func FilteredQuery() Benchmark {
	const n = 16
	return Benchmark{
		Name:       "filtered-query",
		Desc:       "SELECT SUM(value) WHERE key = q over 16 records",
		InputBits:  append(repeatBits(4, n+1), repeatBits(8, n)...),
		OutputBits: []int{12},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("filtered_query")
			q := m.InputBus("q", 4)
			keys := make([]hdl.Bus, n)
			for i := range keys {
				keys[i] = m.InputBus(fmt.Sprintf("k%d", i), 4)
			}
			vals := make([]hdl.Bus, n)
			for i := range vals {
				vals[i] = m.InputBus(fmt.Sprintf("v%d", i), 8)
			}
			sum := m.ConstBus(0, 12)
			for i := 0; i < n; i++ {
				hit := m.Eq(keys[i], q)
				masked := m.AndBit(m.ZeroExtend(vals[i], 12), hit)
				sum = m.Add(sum, masked)
			}
			m.OutputBus("sum", sum)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			q := in[0]
			var sum uint64
			for i := 0; i < n; i++ {
				if in[1+i] == q {
					sum += in[1+n+i]
				}
			}
			return []uint64{sum & 0xFFF}
		},
	}
}
