package vipbench

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/hdl"
)

// --- sorting / selection / dynamic programming ---

// BubbleSort sorts 8 unsigned bytes with a full compare-and-swap network.
func BubbleSort() Benchmark {
	const n = 8
	return Benchmark{
		Name:       "bubble-sort",
		Desc:       "bubble sort network over 8 bytes",
		InputBits:  repeatBits(8, n),
		OutputBits: repeatBits(8, n),
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("bubble_sort")
			xs := make([]hdl.Bus, n)
			for i := range xs {
				xs[i] = m.InputBus(fmt.Sprintf("x%d", i), 8)
			}
			for pass := 0; pass < n-1; pass++ {
				for i := 0; i < n-1-pass; i++ {
					lo := m.MinU(xs[i], xs[i+1])
					hi := m.MaxU(xs[i], xs[i+1])
					xs[i], xs[i+1] = lo, hi
				}
			}
			for i, x := range xs {
				m.OutputBus(fmt.Sprintf("y%d", i), x)
			}
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			out := append([]uint64(nil), in...)
			for p := 0; p < n-1; p++ {
				for i := 0; i < n-1-p; i++ {
					if out[i] > out[i+1] {
						out[i], out[i+1] = out[i+1], out[i]
					}
				}
			}
			return out
		},
	}
}

// Kadane computes the maximum-subarray sum of 12 signed bytes (serial DP).
func Kadane() Benchmark {
	const n = 12
	const w = 12
	return Benchmark{
		Name:       "kadane",
		Desc:       "maximum subarray sum (serial dynamic program)",
		InputBits:  repeatBits(8, n),
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("kadane")
			xs := make([]hdl.Bus, n)
			for i := range xs {
				xs[i] = m.SignExtend(m.InputBus(fmt.Sprintf("x%d", i), 8), w)
			}
			cur := xs[0]
			best := xs[0]
			for i := 1; i < n; i++ {
				cur = m.MaxS(xs[i], m.Add(cur, xs[i]))
				best = m.MaxS(best, cur)
			}
			m.OutputBus("best", best)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			cur := signExt(in[0], 8)
			best := cur
			for i := 1; i < n; i++ {
				x := signExt(in[i], 8)
				if cur+x > x {
					cur += x
				} else {
					cur = x
				}
				if cur > best {
					best = cur
				}
			}
			return []uint64{toRaw(best, w)}
		},
	}
}

// EditDistance computes the Levenshtein distance of two 8-character
// strings over a 4-bit alphabet.
func EditDistance() Benchmark {
	const n = 8
	const w = 5
	return Benchmark{
		Name:       "edit-distance",
		Desc:       "Levenshtein distance of two 8-char strings",
		InputBits:  repeatBits(4, 2*n),
		OutputBits: []int{w},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("edit_distance")
			a := make([]hdl.Bus, n)
			b := make([]hdl.Bus, n)
			for i := range a {
				a[i] = m.InputBus(fmt.Sprintf("a%d", i), 4)
			}
			for i := range b {
				b[i] = m.InputBus(fmt.Sprintf("b%d", i), 4)
			}
			// DP over the (n+1)x(n+1) grid.
			prev := make([]hdl.Bus, n+1)
			for j := range prev {
				prev[j] = m.ConstBus(uint64(j), w)
			}
			one := m.ConstBus(1, w)
			for i := 1; i <= n; i++ {
				cur := make([]hdl.Bus, n+1)
				cur[0] = m.ConstBus(uint64(i), w)
				for j := 1; j <= n; j++ {
					eq := m.Eq(a[i-1], b[j-1])
					subCost := m.Mux(eq, prev[j-1], m.Add(prev[j-1], one))
					del := m.Add(prev[j], one)
					ins := m.Add(cur[j-1], one)
					cur[j] = m.MinU(subCost, m.MinU(del, ins))
				}
				prev = cur
			}
			m.OutputBus("dist", prev[n])
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			a, b := in[:n], in[n:]
			prev := make([]uint64, n+1)
			for j := range prev {
				prev[j] = uint64(j)
			}
			for i := 1; i <= n; i++ {
				cur := make([]uint64, n+1)
				cur[0] = uint64(i)
				for j := 1; j <= n; j++ {
					sub := prev[j-1]
					if a[i-1] != b[j-1] {
						sub++
					}
					best := sub
					if prev[j]+1 < best {
						best = prev[j] + 1
					}
					if cur[j-1]+1 < best {
						best = cur[j-1] + 1
					}
					cur[j] = best
				}
				prev = cur
			}
			return []uint64{prev[n]}
		},
	}
}

// --- linear arithmetic ---

// DotProduct computes the inner product of two encrypted 8-vectors of
// signed bytes.
func DotProduct() Benchmark {
	const n = 8
	const w = 20
	return Benchmark{
		Name:       "dot-product",
		Desc:       "inner product of two encrypted 8-vectors",
		InputBits:  repeatBits(8, 2*n),
		OutputBits: []int{w},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("dot_product")
			as := make([]hdl.Bus, n)
			bs := make([]hdl.Bus, n)
			for i := 0; i < n; i++ {
				as[i] = m.InputBus(fmt.Sprintf("a%d", i), 8)
				bs[i] = m.InputBus(fmt.Sprintf("b%d", i), 8)
			}
			acc := m.ConstBus(0, w)
			for i := 0; i < n; i++ {
				prod := m.MulS(as[i], bs[i]) // 16 bits
				acc = m.Add(acc, m.SignExtend(prod, w))
			}
			m.OutputBus("dot", acc)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			var acc int64
			for i := 0; i < n; i++ {
				acc += signExt(in[2*i], 8) * signExt(in[2*i+1], 8)
			}
			return []uint64{toRaw(acc, w)}
		},
	}
}

// LinearRegression evaluates slope and intercept of a least-squares fit of
// encrypted y values against constant x = 0..7, which reduces to two
// constant-weighted sums.
func LinearRegression() Benchmark {
	const n = 8
	const w = 16
	const frac = 6
	// Closed form with x = 0..n-1: slope = sum_i cS_i*y_i,
	// intercept = sum_i cI_i*y_i.
	var cs, ci [n]float64
	{
		var sx, sxx float64
		for i := 0; i < n; i++ {
			sx += float64(i)
			sxx += float64(i) * float64(i)
		}
		den := float64(n)*sxx - sx*sx
		for i := 0; i < n; i++ {
			cs[i] = (float64(n)*float64(i) - sx) / den
			ci[i] = (sxx - sx*float64(i)) / den
		}
	}
	quant := func(c float64) int64 { return int64(c*(1<<frac) + 0.5) }
	return Benchmark{
		Name:       "linear-regression",
		Desc:       "least-squares slope/intercept over 8 points",
		InputBits:  repeatBits(8, n),
		OutputBits: []int{w, w},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("linear_regression")
			ys := make([]hdl.Bus, n)
			for i := 0; i < n; i++ {
				ys[i] = m.SignExtend(m.InputBus(fmt.Sprintf("y%d", i), 8), w)
			}
			slope := m.ConstBus(0, w)
			icept := m.ConstBus(0, w)
			for i := 0; i < n; i++ {
				slope = m.Add(slope, m.Truncate(m.MulConstS(ys[i], quant(cs[i]), w+1), w))
				icept = m.Add(icept, m.Truncate(m.MulConstS(ys[i], quant(ci[i]), w+1), w))
			}
			m.OutputBus("slope", slope)
			m.OutputBus("intercept", icept)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			var s, c int64
			for i := 0; i < n; i++ {
				y := signExt(in[i], 8)
				s += y * quant(cs[i])
				c += y * quant(ci[i])
			}
			return []uint64{toRaw(s, w), toRaw(c, w)}
		},
	}
}

// KNN returns the index of the nearest of 8 constant 2-D points to an
// encrypted query, under Manhattan distance.
func KNN() Benchmark {
	points := [8][2]int64{{3, 7}, {12, 2}, {-5, 9}, {0, 0}, {8, 8}, {-10, -3}, {6, -6}, {1, 12}}
	const w = 10
	return Benchmark{
		Name:       "knn",
		Desc:       "nearest neighbor among 8 points (Manhattan)",
		InputBits:  []int{8, 8},
		OutputBits: []int{3},
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("knn")
			qx := m.SignExtend(m.InputBus("qx", 8), w)
			qy := m.SignExtend(m.InputBus("qy", 8), w)
			bestIdx := m.ConstBus(0, 3)
			var bestDist hdl.Bus
			for i, pt := range points {
				dx := m.AbsS(m.Sub(qx, m.ConstBusSigned(pt[0], w)))
				dy := m.AbsS(m.Sub(qy, m.ConstBusSigned(pt[1], w)))
				d := m.Add(dx, dy)
				if i == 0 {
					bestDist = d
					continue
				}
				closer := m.LtU(d, bestDist)
				bestDist = m.Mux(closer, d, bestDist)
				bestIdx = m.Mux(closer, m.ConstBus(uint64(i), 3), bestIdx)
			}
			m.OutputBus("idx", bestIdx)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			qx, qy := signExt(in[0], 8), signExt(in[1], 8)
			best := 0
			bestD := int64(1) << 32
			abs := func(v int64) int64 {
				if v < 0 {
					return -v
				}
				return v
			}
			for i, pt := range points {
				d := abs(qx-pt[0]) + abs(qy-pt[1])
				if d < bestD {
					bestD, best = d, i
				}
			}
			return []uint64{uint64(best)}
		},
	}
}

// --- iterative approximation (serial workloads) ---

// EulersApprox sums the truncated series for e over an encrypted term
// count: out = sum_{k<=n} 1/k! in Fixed(4,10), with n in 0..7.
func EulersApprox() Benchmark {
	const w = 14
	const frac = 10
	inv := [8]int64{1024, 1024, 512, 171, 43, 9, 1, 0} // round(1024/k!)
	return Benchmark{
		Name:       "eulers-approx",
		Desc:       "series approximation of e gated by an encrypted term count",
		InputBits:  []int{3},
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("eulers_approx")
			n := m.InputBus("n", 3)
			acc := m.ConstBus(0, w)
			for k := 0; k < 8; k++ {
				include := m.GeU(n, m.ConstBus(uint64(k), 3))
				term := m.AndBit(m.ConstBus(uint64(inv[k]), w), include)
				acc = m.Add(acc, term)
			}
			m.OutputBus("e", acc)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			var acc int64
			for k := 0; k <= int(in[0]); k++ {
				acc += inv[k]
			}
			return []uint64{toRaw(acc, w)}
		},
	}
}

// GradientDescent runs four steps of 1-D least-squares gradient descent
// w <- w - lr*(w*x - y)*x on encrypted fixed-point inputs (Fixed(8,6)).
func GradientDescent() Benchmark {
	const w = 14
	const frac = 6
	const steps = 4
	const lrShift = 3 // lr = 1/8
	return Benchmark{
		Name:       "gradient-descent",
		Desc:       "4 serial steps of 1-D gradient descent",
		InputBits:  []int{w, w, w}, // w0, x, y
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("gradient_descent")
			wgt := m.InputBus("w0", w)
			x := m.InputBus("x", w)
			y := m.InputBus("y", w)
			for s := 0; s < steps; s++ {
				pred := m.Slice(m.MulS(wgt, x), frac, frac+w)
				err := m.Sub(pred, y)
				gradRaw := m.MulS(err, x) // 2w bits, frac*2 fractional
				grad := m.Slice(gradRaw, frac, frac+w)
				wgt = m.Sub(wgt, m.AshrConst(grad, lrShift))
			}
			m.OutputBus("w", wgt)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			wgt := signExt(in[0], w)
			x := signExt(in[1], w)
			y := signExt(in[2], w)
			mask := func(v int64) int64 { return int64(uint64(v)<<(64-w)) >> (64 - w) }
			for s := 0; s < steps; s++ {
				pred := mask((wgt * x) >> frac)
				err := mask(pred - y)
				grad := mask((err * x) >> frac)
				wgt = mask(wgt - grad>>lrShift)
			}
			return []uint64{toRaw(wgt, w)}
		},
	}
}

// NRSolver runs Newton-Raphson reciprocal iterations x <- x*(2 - a*x) in
// Fixed(4,10) — the deeply serial benchmark the paper calls out.
func NRSolver() Benchmark {
	const w = 14
	const frac = 10
	const steps = 4
	return Benchmark{
		Name:       "nr-solver",
		Desc:       "Newton-Raphson reciprocal (serial multiply chain)",
		InputBits:  []int{w, w}, // a, x0
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("nr_solver")
			a := m.InputBus("a", w)
			x := m.InputBus("x0", w)
			two := m.ConstBus(2<<frac, w)
			for s := 0; s < steps; s++ {
				ax := m.Slice(m.MulS(a, x), frac, frac+w)
				t := m.Sub(two, ax)
				x = m.Slice(m.MulS(x, t), frac, frac+w)
			}
			m.OutputBus("x", x)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			a := signExt(in[0], w)
			x := signExt(in[1], w)
			mask := func(v int64) int64 { return int64(uint64(v)<<(64-w)) >> (64 - w) }
			for s := 0; s < steps; s++ {
				ax := mask((a * x) >> frac)
				t := mask(2<<frac - ax)
				x = mask((x * t) >> frac)
			}
			return []uint64{toRaw(x, w)}
		},
	}
}

// KeplerCalc iterates E <- M + e*(E - E^3/6) — a fixed-point Kepler
// equation solve with a cubic sine approximation (Fixed(4,10)).
func KeplerCalc() Benchmark {
	const w = 14
	const frac = 10
	const steps = 3
	const ecc = 205 // e = 0.2 in Fixed(4,10)
	return Benchmark{
		Name:       "kepler-calc",
		Desc:       "Kepler equation iterations with cubic sine",
		InputBits:  []int{w}, // mean anomaly M
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("kepler_calc")
			M := m.InputBus("M", w)
			E := M
			for s := 0; s < steps; s++ {
				e2 := m.Slice(m.MulS(E, E), frac, frac+w)
				e3 := m.Slice(m.MulS(e2, E), frac, frac+w)
				// (e3 * 171) >> frac, computed wide enough not to clip.
				cube := m.Truncate(m.AshrConst(m.MulConstS(e3, 171, w+frac+2), frac), w)
				sinE := m.Sub(E, cube)
				scaled := m.Truncate(m.AshrConst(m.MulConstS(sinE, ecc, w+frac+2), frac), w)
				E = m.Add(M, scaled)
			}
			m.OutputBus("E", E)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			M := signExt(in[0], w)
			E := M
			mask := func(v int64) int64 { return int64(uint64(v)<<(64-w)) >> (64 - w) }
			for s := 0; s < steps; s++ {
				e2 := mask((E * E) >> frac)
				e3 := mask((e2 * E) >> frac)
				cube := mask((e3 * 171) >> frac)
				sinE := mask(E - cube)
				scaled := mask((sinE * ecc) >> frac)
				E = mask(M + scaled)
			}
			return []uint64{toRaw(E, w)}
		},
	}
}

// Parrondo simulates 12 rounds of the Parrondo game: capital evolves by ±1
// depending on encrypted coin bits and the sign of the running capital —
// an inherently serial mux chain.
func Parrondo() Benchmark {
	const rounds = 12
	const w = 8
	return Benchmark{
		Name:       "parrondo",
		Desc:       "Parrondo's paradox game simulation (serial)",
		InputBits:  repeatBits(1, rounds),
		OutputBits: []int{w},
		Serial:     true,
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("parrondo")
			coins := make([]circuit.NodeID, rounds)
			for i := range coins {
				coins[i] = m.Input(fmt.Sprintf("coin%d", i))
			}
			capital := m.ConstBus(0, w)
			one := m.ConstBus(1, w)
			for r := 0; r < rounds; r++ {
				neg := capital[w-1] // losing: play the safe game
				// win if coin XOR sign (game switch), else lose
				win := m.B.Xor(coins[r], neg)
				up := m.Add(capital, one)
				down := m.Sub(capital, one)
				capital = m.Mux(win, up, down)
			}
			m.OutputBus("capital", capital)
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			var capital int64
			for r := 0; r < rounds; r++ {
				neg := int64(0)
				if capital < 0 {
					neg = 1
				}
				if in[r]^uint64(neg) == 1 {
					capital++
				} else {
					capital--
				}
			}
			return []uint64{toRaw(capital, w)}
		},
	}
}

// RobertsCross applies Roberts-Cross edge detection over an encrypted
// 8x8 image of unsigned bytes: out = |p(i,j)-p(i+1,j+1)| + |p(i+1,j)-p(i,j+1)|.
func RobertsCross() Benchmark {
	const size = 8
	const w = 10
	return Benchmark{
		Name:       "roberts-cross",
		Desc:       "Roberts-Cross edge detection over an 8x8 image",
		InputBits:  repeatBits(8, size*size),
		OutputBits: repeatBits(w, (size-1)*(size-1)),
		Build: func() (*circuit.Netlist, error) {
			m := hdl.New("roberts_cross")
			img := make([]hdl.Bus, size*size)
			for i := range img {
				img[i] = m.SignExtend(m.ZeroExtend(m.InputBus(fmt.Sprintf("p%d", i), 8), 9), w)
			}
			for y := 0; y < size-1; y++ {
				for x := 0; x < size-1; x++ {
					g1 := m.AbsS(m.Sub(img[y*size+x], img[(y+1)*size+x+1]))
					g2 := m.AbsS(m.Sub(img[(y+1)*size+x], img[y*size+x+1]))
					m.OutputBus(fmt.Sprintf("e%d_%d", y, x), m.Add(g1, g2))
				}
			}
			return finish(m)
		},
		Ref: func(in []uint64) []uint64 {
			abs := func(v int64) int64 {
				if v < 0 {
					return -v
				}
				return v
			}
			var out []uint64
			for y := 0; y < size-1; y++ {
				for x := 0; x < size-1; x++ {
					g1 := abs(int64(in[y*size+x]) - int64(in[(y+1)*size+x+1]))
					g2 := abs(int64(in[(y+1)*size+x]) - int64(in[y*size+x+1]))
					out = append(out, toRaw(g1+g2, w))
				}
			}
			return out
		},
	}
}
