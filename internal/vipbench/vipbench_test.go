package vipbench

import (
	"math/rand"
	"testing"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/models"
)

// TestAllBenchmarksMatchReference builds every VIP-Bench kernel and
// compares the synthesized circuit against its plaintext reference on
// random inputs.
func TestAllBenchmarksMatchReference(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			nl, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			if err := nl.Validate(); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(len(b.Name)) * 97))
			for trial := 0; trial < 12; trial++ {
				vals := make([]uint64, len(b.InputBits))
				for i, w := range b.InputBits {
					vals[i] = rng.Uint64() & (1<<uint(w) - 1)
				}
				bits, err := b.EncodeInputs(vals)
				if err != nil {
					t.Fatal(err)
				}
				outBits, err := nl.Evaluate(bits)
				if err != nil {
					t.Fatal(err)
				}
				got, err := b.DecodeOutputs(outBits)
				if err != nil {
					t.Fatal(err)
				}
				want := b.Ref(vals)
				if len(got) != len(want) {
					t.Fatalf("output count %d vs %d", len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("trial %d output %d: circuit %d, reference %d (inputs %v)",
							trial, i, got[i], want[i], vals)
					}
				}
			}
		})
	}
}

func TestSuiteHas18Benchmarks(t *testing.T) {
	all := All()
	if len(all) != 18 {
		t.Fatalf("VIP-Bench suite has %d benchmarks, want 18", len(all))
	}
	seen := map[string]bool{}
	for _, b := range all {
		if seen[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		seen[b.Name] = true
		if b.Build == nil || b.Ref == nil {
			t.Fatalf("%s missing Build or Ref", b.Name)
		}
	}
	// The paper's named examples must be present.
	for _, name := range []string{"dot-product", "eulers-approx", "roberts-cross", "hamming-distance", "nr-solver", "parrondo"} {
		if !seen[name] {
			t.Fatalf("missing paper-referenced benchmark %q", name)
		}
	}
}

func TestByName(t *testing.T) {
	if _, err := ByName("kadane"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("expected error for unknown benchmark")
	}
}

func TestSerialBenchmarksAreDeep(t *testing.T) {
	// The benchmarks the paper singles out as serial must have critical
	// paths that are a large fraction of their gate count per output.
	for _, b := range All() {
		if !b.Serial {
			continue
		}
		nl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := nl.ComputeStats()
		if s.Depth*3 < s.Levels {
			t.Fatalf("%s marked serial but depth %d vs levels %d", b.Name, s.Depth, s.Levels)
		}
		// Parallelism = gates/depth must be small for serial workloads.
		// "Serial" means far from the 72-way parallelism of the 4-node
		// platform; arithmetic inside each step still has some width.
		if par := float64(s.Bootstrapped) / float64(s.Depth); par > 32 {
			t.Errorf("%s marked serial but has average parallelism %.1f", b.Name, par)
		}
	}
}

func TestParallelBenchmarksAreWide(t *testing.T) {
	for _, name := range []string{"roberts-cross", "bubble-sort", "distinctness"} {
		b, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		nl, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		s := nl.ComputeStats()
		if par := float64(s.Bootstrapped) / float64(s.Depth); par < 4 {
			t.Errorf("%s should be parallel, got average parallelism %.1f", name, par)
		}
	}
}

func TestCompileMNISTScaled(t *testing.T) {
	spec := models.MNISTS().Scaled(8)
	w, err := CompileMNIST(spec, chiseltorch.NewFixed(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Netlist.Gates) == 0 {
		t.Fatal("MNIST netlist is empty")
	}
	// Run one plaintext inference end to end.
	in := make([]float64, spec.Image*spec.Image)
	for i := range in {
		in[i] = float64(i%7)/7 - 0.5
	}
	out, err := w.Compiled.Infer(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != spec.Classes {
		t.Fatalf("MNIST produced %d outputs", len(out))
	}
}

func TestCompileAttentionScaled(t *testing.T) {
	spec := models.AttentionS().Scaled(2, 4)
	w, err := CompileAttention(spec, chiseltorch.NewFixed(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Netlist.Gates) == 0 {
		t.Fatal("attention netlist is empty")
	}
}

func TestMNISTSizesOrdered(t *testing.T) {
	// MNIST_S < MNIST_M < MNIST_L in gate count (at a reduced image size
	// to keep the test fast).
	var counts []int
	for _, spec := range []models.MNISTSpec{models.MNISTS().Scaled(8), models.MNISTM().Scaled(8), models.MNISTL().Scaled(8)} {
		w, err := CompileMNIST(spec, chiseltorch.NewFixed(8, 8))
		if err != nil {
			t.Fatal(err)
		}
		counts = append(counts, len(w.Netlist.Gates))
	}
	if !(counts[0] < counts[1] && counts[1] < counts[2]) {
		t.Fatalf("MNIST sizes not ordered: %v", counts)
	}
}

func TestFlatSizeMatchesPaper(t *testing.T) {
	// Fig. 4 declares Linear(576, 10) for the VIP-Bench MNIST network.
	if got := models.MNISTS().FlatSize(); got != 576 {
		t.Fatalf("MNIST_S flat size = %d, want 576", got)
	}
}
