package plan

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"pytfhe/internal/exec"
	"pytfhe/internal/logic"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// Runtime holds the mutable replay state: the arena ciphertexts and the
// resolved value table. It persists across replays of the same plan, which
// is what makes the second and later runs allocation-free (output
// ciphertexts excepted — the caller owns those). A Runtime is single-use
// at a time: serialize replays that share one.
type Runtime struct {
	// pool is the shared execution core's liveness arena: slots are bound
	// once per plan by the compile-time liveness analysis instead of
	// refcounted at runtime, and the arena's own accounting supplies the
	// high-water figure.
	pool *exec.Arena
	// vals is the ref-indexed value table: the first NumInputs entries are
	// the caller's input ciphertexts (rebound per replay), the rest are
	// arena slots allocated lazily the first time a level writes them.
	vals      []*lwe.Sample
	numInputs int

	// Batch occupancy of the most recent batched replay (atomics: the
	// replay workers update them concurrently).
	batches      int64
	batchedBoots int64
}

// BatchOccupancy reports the most recent batched replay's dispatch count
// and the number of bootstrapped instructions those dispatches covered
// (both zero after an unbatched replay).
func (rt *Runtime) BatchOccupancy() (batches, batchedBootstraps int64) {
	return atomic.LoadInt64(&rt.batches), atomic.LoadInt64(&rt.batchedBoots)
}

// NewRuntime returns a replay runtime allocating ciphertexts of the given
// LWE dimension.
func NewRuntime(dim int) *Runtime { return &Runtime{pool: exec.NewArena(dim)} }

// HighWater returns the largest number of arena ciphertexts this runtime
// has held live at once across all replays.
func (rt *Runtime) HighWater() int { return rt.pool.HighWater() }

// Reset releases every arena ciphertext back to the free list, for reuse
// when the runtime is rebound to a different plan.
func (rt *Runtime) Reset() {
	for i := rt.numInputs; i < len(rt.vals); i++ {
		rt.pool.Put(rt.vals[i])
		rt.vals[i] = nil
	}
	rt.vals = rt.vals[:0]
	rt.numInputs = 0
}

// bind sizes the value table for a plan with the given input count and
// arena bound, and installs the run's input ciphertexts.
func (rt *Runtime) bind(inputs []*lwe.Sample, arenaSlots int) {
	if rt.numInputs != len(inputs) {
		// Input count changed (different plan): slots shift, start over.
		rt.Reset()
		rt.numInputs = len(inputs)
	}
	n := len(inputs) + arenaSlots
	for len(rt.vals) < n {
		rt.vals = append(rt.vals, nil)
	}
	copy(rt.vals, inputs)
}

// unbindInputs drops the run's input refs after output collection (the
// caller owns the inputs; holding them would pin their memory).
func (rt *Runtime) unbindInputs() {
	for i := 0; i < rt.numInputs && i < len(rt.vals); i++ {
		rt.vals[i] = nil
	}
}

// levelFeed hands planned levels to the replay workers in order. For a
// finished plan it is pre-filled; for a streaming compile a receiver
// goroutine appends levels as the planner emits them and workers block in
// get until their next level (or the end of the plan) is known.
type levelFeed struct {
	mu     sync.Mutex
	cond   *sync.Cond
	levels []Level
	closed bool
}

func newLevelFeed() *levelFeed {
	f := &levelFeed{}
	f.cond = sync.NewCond(&f.mu)
	return f
}

func (f *levelFeed) add(lv Level) {
	f.mu.Lock()
	f.levels = append(f.levels, lv)
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *levelFeed) finish() {
	f.mu.Lock()
	f.closed = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

// get blocks until level i exists (ok=true) or the plan is known to have
// only i levels (ok=false).
func (f *levelFeed) get(i int) (Level, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for len(f.levels) <= i && !f.closed {
		f.cond.Wait()
	}
	if i < len(f.levels) {
		return f.levels[i], true
	}
	return Level{}, false
}

// barrier is a cyclic barrier for the replay workers: the only
// synchronization between gate evaluations (one await per level).
type barrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	waiting int
	gen     uint64
}

func newBarrier(n int) *barrier {
	b := &barrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrier) await() {
	b.mu.Lock()
	gen := b.gen
	b.waiting++
	if b.waiting == b.n {
		b.waiting = 0
		b.gen++
		b.mu.Unlock()
		b.cond.Broadcast()
		return
	}
	for b.gen == gen {
		b.cond.Wait()
	}
	b.mu.Unlock()
}

// Replay executes a finished plan: one engine per worker (engine 0 is
// used alone when only one is supplied), the caller's input ciphertexts,
// and a persistent Runtime. The returned slice parallels the source
// netlist's outputs and is freshly allocated; inputs are not modified.
func Replay(ctx context.Context, p *Plan, engines []*gate.Engine, inputs []*lwe.Sample, rt *Runtime) ([]*lwe.Sample, error) {
	return ReplayBatch(ctx, p, engines, inputs, rt, 1)
}

// ReplayBatch is Replay with batched bootstrap dispatch: within each
// worker's instruction sequence — one wavefront slice, so every
// instruction in it is independent — bootstrapped instructions are grouped
// up to batch per gate.Engine.BinaryBatch call, amortizing the
// bootstrapping-key stream; free instructions run inline at their original
// position. batch <= 1 reproduces Replay exactly.
func ReplayBatch(ctx context.Context, p *Plan, engines []*gate.Engine, inputs []*lwe.Sample, rt *Runtime, batch int) ([]*lwe.Sample, error) {
	feed := newLevelFeed()
	feed.levels = p.levels
	feed.closed = true
	defer rt.unbindInputs()
	if err := execute(ctx, feed, p.NumInputs, p.Workers, p.stats.ArenaSlots, engines, inputs, rt, batch); err != nil {
		return nil, err
	}
	return collect(p, rt, engines[0].Params().LWEDimension)
}

// ReplayStream executes a plan while it is still being compiled,
// overlapping level execution with level construction: level 0 runs as
// soon as the planner emits it. It blocks until both the compile and the
// replay finish.
func ReplayStream(ctx context.Context, s *Stream, engines []*gate.Engine, inputs []*lwe.Sample, rt *Runtime) ([]*lwe.Sample, error) {
	return ReplayStreamBatch(ctx, s, engines, inputs, rt, 1)
}

// ReplayStreamBatch is ReplayStream with batched bootstrap dispatch (see
// ReplayBatch).
func ReplayStreamBatch(ctx context.Context, s *Stream, engines []*gate.Engine, inputs []*lwe.Sample, rt *Runtime, batch int) ([]*lwe.Sample, error) {
	feed := newLevelFeed()
	go func() {
		for lv := range s.Levels() {
			feed.add(lv)
		}
		feed.finish()
	}()
	// The final arena size is not known until the planner finishes, so the
	// value table is sized to the exec-gate upper bound; slots themselves
	// are only allocated when a level writes them. The workers drain the
	// feed to the end even on failure, so by the time execute returns the
	// planner goroutine has finished and Plan() does not block.
	defer rt.unbindInputs()
	if err := execute(ctx, feed, s.p.NumInputs, s.p.Workers, s.maxArena, engines, inputs, rt, batch); err != nil {
		s.Plan()
		return nil, err
	}
	p := s.Plan()
	return collect(p, rt, engines[0].Params().LWEDimension)
}

// execute runs every level of the feed over the runtime's value table.
func execute(ctx context.Context, feed *levelFeed, numInputs, planWorkers, arenaSlots int, engines []*gate.Engine, inputs []*lwe.Sample, rt *Runtime, batch int) error {
	if len(engines) == 0 {
		return fmt.Errorf("plan: replay needs at least one engine")
	}
	if err := exec.CheckRawInputs(inputs, numInputs, engines[0].Params().LWEDimension); err != nil {
		return err
	}
	rt.bind(inputs, arenaSlots)
	if batch < 1 {
		batch = 1
	}
	atomic.StoreInt64(&rt.batches, 0)
	atomic.StoreInt64(&rt.batchedBoots, 0)

	nw := len(engines)
	if nw > planWorkers {
		// More engines than plan partitions: the extras would only spin on
		// the barrier.
		nw = planWorkers
	}
	if nw == 1 {
		return executeSeq(ctx, feed, engines[0], rt, batch)
	}

	// Worker w owns batches j with j % nw == w of every level, so a plan
	// partitioned for more workers than we have engines still replays
	// correctly (batches are merely coarser than ideal). The per-level
	// barrier is the only synchronization; on error or cancellation the
	// workers keep arriving at the barrier (skipping the gate work) so
	// nobody deadlocks mid-plan.
	bar := newBarrier(nw)
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	failed := func() bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil
	}

	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(w int, eng *gate.Engine) {
			defer wg.Done()
			for i := 0; ; i++ {
				lv, ok := feed.get(i)
				if !ok {
					return
				}
				if !failed() {
					if w == 0 && ctx.Err() != nil {
						fail(ctx.Err())
					} else {
						for j := w; j < len(lv.Batches); j += nw {
							if err := runBatch(eng, lv.Batches[j], rt, batch); err != nil {
								fail(err)
								break
							}
						}
					}
				}
				bar.await()
			}
		}(w, engines[w])
	}
	wg.Wait()
	return firstErr
}

// executeSeq is the single-engine fast path: no barrier, no goroutines.
func executeSeq(ctx context.Context, feed *levelFeed, eng *gate.Engine, rt *Runtime, batch int) error {
	for i := 0; ; i++ {
		lv, ok := feed.get(i)
		if !ok {
			return nil
		}
		if err := ctx.Err(); err != nil {
			// Let a streaming planner finish feeding before returning.
			for {
				if _, more := feed.get(i + 1); !more {
					break
				}
				i++
			}
			return err
		}
		for _, instrs := range lv.Batches {
			if err := runBatch(eng, instrs, rt, batch); err != nil {
				return err
			}
		}
	}
}

// runBatch evaluates one worker's instruction sequence for one level.
// Output slots are allocated on first touch; each slot is written by
// exactly one instruction per level, so the lazy allocation is race-free.
// With batch > 1 the bootstrapped instructions of the sequence are grouped
// up to batch per BinaryBatch dispatch (instructions within a level are
// independent, so reordering the frees around them is safe); free
// instructions evaluate inline where they appear.
func runBatch(eng *gate.Engine, instrs []Instr, rt *Runtime, batch int) error {
	slot := func(ins Instr) *lwe.Sample {
		out := rt.vals[ins.Out]
		if out == nil {
			out = rt.pool.Get()
			rt.vals[ins.Out] = out
		}
		return out
	}
	// evalOne is the unbatched instruction path: classic gates via Binary,
	// LUT instructions via the programmable bootstrap.
	evalOne := func(ins Instr) error {
		if ins.IsLUT() {
			var opv [logic.MaxLUTArity]*lwe.Sample
			opv[0], opv[1] = rt.vals[ins.A], rt.vals[ins.B]
			n := 2
			if ins.Arity >= 3 {
				opv[2] = rt.vals[ins.C]
				n = 3
			}
			if err := eng.LUT(n, ins.TT, slot(ins), opv[:n]...); err != nil {
				return fmt.Errorf("plan: replay lut instr: %w", err)
			}
			return nil
		}
		if err := eng.Binary(ins.Kind, slot(ins), rt.vals[ins.A], rt.vals[ins.B]); err != nil {
			return fmt.Errorf("plan: replay instr: %w", err)
		}
		return nil
	}
	if batch <= 1 {
		for _, ins := range instrs {
			if err := evalOne(ins); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		ops  []gate.Op
		outs []*lwe.Sample
		avs  []*lwe.Sample
		bvs  []*lwe.Sample
		cvs  []*lwe.Sample
	)
	flush := func() error {
		if len(ops) == 0 {
			return nil
		}
		if err := eng.OpBatch(ops, outs, avs, bvs, cvs); err != nil {
			return fmt.Errorf("plan: replay batch: %w", err)
		}
		atomic.AddInt64(&rt.batches, 1)
		atomic.AddInt64(&rt.batchedBoots, int64(len(ops)))
		ops, outs, avs, bvs, cvs = ops[:0], outs[:0], avs[:0], bvs[:0], cvs[:0]
		return nil
	}
	for _, ins := range instrs {
		if !ins.NeedsBootstrap() {
			if err := evalOne(ins); err != nil {
				return err
			}
			continue
		}
		var cv *lwe.Sample
		if ins.IsLUT() {
			ops = append(ops, gate.Op{TT: ins.TT, Arity: ins.Arity})
			if ins.Arity >= 3 {
				cv = rt.vals[ins.C]
			}
		} else {
			ops = append(ops, gate.Op{Kind: ins.Kind})
		}
		outs = append(outs, slot(ins))
		avs = append(avs, rt.vals[ins.A])
		bvs = append(bvs, rt.vals[ins.B])
		cvs = append(cvs, cv)
		if len(ops) == batch {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// collect materializes the output ciphertexts from the value table via
// the shared execution core's collector.
func collect(p *Plan, rt *Runtime, dim int) ([]*lwe.Sample, error) {
	return exec.CollectOutputs(dim, p.outputs, func(ref Ref) *lwe.Sample {
		if int(ref) >= len(rt.vals) {
			return nil
		}
		return rt.vals[ref]
	})
}
