package plan

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/trand"
)

var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func testKeys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("plan-test-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

// evalPlan interprets the plan over cleartext bits, mirroring exactly what
// replay does over ciphertexts (value table = inputs then arena slots).
func evalPlan(p *Plan, inputs []bool) []bool {
	vals := make([]bool, p.NumInputs+p.stats.ArenaSlots)
	copy(vals, inputs)
	for _, lv := range p.levels {
		for _, batch := range lv.Batches {
			for _, ins := range batch {
				if ins.IsLUT() {
					if ins.Arity >= 3 {
						vals[ins.Out] = ins.TT.EvalBits(vals[ins.A], vals[ins.B], vals[ins.C])
					} else {
						vals[ins.Out] = ins.TT.EvalBits(vals[ins.A], vals[ins.B])
					}
					continue
				}
				vals[ins.Out] = ins.Kind.Eval(vals[ins.A], vals[ins.B])
			}
		}
	}
	outs := make([]bool, len(p.outputs))
	for i, ref := range p.outputs {
		switch ref {
		case ConstTrue:
			outs[i] = true
		case ConstFalse:
			outs[i] = false
		default:
			outs[i] = vals[ref]
		}
	}
	return outs
}

func randomNetlist(seed int64, numInputs, numGates int) *circuit.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand", circuit.NoOptimizations())
	nodes := make([]circuit.NodeID, 0, numInputs+numGates)
	for i := 0; i < numInputs; i++ {
		nodes = append(nodes, b.Input("x"))
	}
	for i := 0; i < numGates; i++ {
		kind := logic.TFHEGates()[rng.Intn(11)]
		x := nodes[rng.Intn(len(nodes))]
		y := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.Gate(kind, x, y))
	}
	for i := 0; i < 4; i++ {
		b.Output("o", nodes[len(nodes)-1-i*2])
	}
	return b.MustBuild()
}

// nandChains builds c parallel NAND chains of the given depth that all
// share the second operand — the shape of the imbalanced benchmark
// netlist. The chain is algebraically periodic with period 2
// (c3 = NAND(NAND(NAND(x,y),y),y) = NAND(x,y)), so functional
// deduplication collapses each chain to two executed bootstraps.
func nandChains(chains, depth int) *circuit.Netlist {
	b := circuit.NewBuilder("nand-chains", circuit.NoOptimizations())
	starts := b.Inputs("x", chains)
	y := b.Input("y")
	for c := 0; c < chains; c++ {
		n := starts[c]
		for d := 0; d < depth; d++ {
			n = b.Gate(logic.NAND, n, y)
		}
		b.Output("o", n)
	}
	return b.MustBuild()
}

// TestPlanMatchesEvaluate checks, exhaustively over all input assignments,
// that compiled plans compute the same function as the netlist reference
// interpreter — this is the end-to-end correctness proof of the functional
// deduplication, liveness analysis and arena assignment.
func TestPlanMatchesEvaluate(t *testing.T) {
	netlists := []*circuit.Netlist{
		randomNetlist(1, 5, 40),
		randomNetlist(2, 6, 80),
		randomNetlist(3, 4, 200),
		nandChains(3, 17),
	}
	for _, nl := range netlists {
		for _, workers := range []int{1, 2, 4} {
			p, err := Compile(nl, workers)
			if err != nil {
				t.Fatalf("%s w=%d: %v", nl.Name, workers, err)
			}
			for m := 0; m < 1<<nl.NumInputs; m++ {
				in := make([]bool, nl.NumInputs)
				for i := range in {
					in[i] = m>>i&1 == 1
				}
				want, err := nl.Evaluate(in)
				if err != nil {
					t.Fatal(err)
				}
				got := evalPlan(p, in)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("%s w=%d input %b output %d: plan %v, reference %v",
							nl.Name, workers, m, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestDedupCollapsesPeriodicChains asserts the capture-time win the plan
// backend is built for: the periodic NAND chains execute two bootstraps
// per chain regardless of depth.
func TestDedupCollapsesPeriodicChains(t *testing.T) {
	nl := nandChains(7, 30)
	p, err := Compile(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.LogicalBootstraps != 7*30 {
		t.Fatalf("logical bootstraps = %d, want %d", st.LogicalBootstraps, 7*30)
	}
	if want := 7 * 2; st.ExecBootstraps != want {
		t.Fatalf("exec bootstraps = %d, want %d (period-2 chains)", st.ExecBootstraps, want)
	}
	if st.Levels != 2 {
		t.Fatalf("levels = %d, want 2", st.Levels)
	}
}

// TestArenaLiveness verifies the compile-time slot assignment against the
// refcounting invariants the dynamic executors enforce at runtime: no
// arena slot is overwritten while a previous value in it still has a
// pending reader (barrier granularity: reuse is legal only from the level
// after the last read), and the arena is no larger than the peak number of
// simultaneously live values.
func TestArenaLiveness(t *testing.T) {
	for seed := int64(10); seed < 16; seed++ {
		nl := randomNetlist(seed, 6, 150)
		for _, workers := range []int{1, 3, 4} {
			p, err := Compile(nl, workers)
			if err != nil {
				t.Fatal(err)
			}
			type version struct{ write, lastRead int }
			var versions []version
			current := make(map[Ref]int)     // slot ref → live version index
			outputRefs := make(map[Ref]bool) // pinned until the end
			for _, ref := range p.Outputs() {
				if ref >= Ref(p.NumInputs) {
					outputRefs[ref] = true
				}
			}
			for li, lv := range p.Levels() {
				level := li + 1
				written := make(map[Ref]bool)
				for _, batch := range lv.Batches {
					for _, ins := range batch {
						for _, op := range [2]Ref{ins.A, ins.B} {
							if op < Ref(p.NumInputs) {
								continue
							}
							v, ok := current[op]
							if !ok {
								t.Fatalf("w=%d level %d reads slot %d before any write", workers, level, op)
							}
							versions[v].lastRead = level
						}
					}
				}
				for _, batch := range lv.Batches {
					for _, ins := range batch {
						if written[ins.Out] {
							t.Fatalf("w=%d level %d writes slot %d twice", workers, level, ins.Out)
						}
						written[ins.Out] = true
						if v, ok := current[ins.Out]; ok && versions[v].lastRead >= level {
							t.Fatalf("w=%d level %d reuses slot %d whose value is read at level %d",
								workers, level, ins.Out, versions[v].lastRead)
						}
						versions = append(versions, version{write: level, lastRead: level})
						current[ins.Out] = len(versions) - 1
					}
				}
			}
			// Output slots must still hold their final version (no overwrite
			// was flagged above), and the arena must not exceed peak liveness.
			for ref := range outputRefs {
				versions[current[ref]].lastRead = p.Stats().Levels + 1
			}
			peak := 0
			for l := 1; l <= p.Stats().Levels; l++ {
				live := 0
				for _, v := range versions {
					if v.write <= l && l <= v.lastRead {
						live++
					}
				}
				if live > peak {
					peak = live
				}
			}
			if p.ArenaSlots() > peak {
				t.Fatalf("w=%d arena %d exceeds peak liveness %d", workers, p.ArenaSlots(), peak)
			}
		}
	}
}

// TestStreamMatchesBlocking checks the streamed levels are exactly the
// finished plan's levels.
func TestStreamMatchesBlocking(t *testing.T) {
	nl := randomNetlist(42, 6, 120)
	s, err := CompileStream(nl, 3)
	if err != nil {
		t.Fatal(err)
	}
	var streamed []Level
	for lv := range s.Levels() {
		streamed = append(streamed, lv)
	}
	p := s.Plan()
	if len(streamed) != len(p.Levels()) {
		t.Fatalf("streamed %d levels, plan has %d", len(streamed), len(p.Levels()))
	}
	for i, lv := range p.Levels() {
		if len(streamed[i].Batches) != len(lv.Batches) {
			t.Fatalf("level %d batch count mismatch", i)
		}
		for w, batch := range lv.Batches {
			if len(streamed[i].Batches[w]) != len(batch) {
				t.Fatalf("level %d batch %d length mismatch", i, w)
			}
			for j, ins := range batch {
				if streamed[i].Batches[w][j] != ins {
					t.Fatalf("level %d batch %d instr %d mismatch", i, w, j)
				}
			}
		}
	}
	if s.maxArena < p.ArenaSlots() {
		t.Fatalf("maxArena %d below final arena %d", s.maxArena, p.ArenaSlots())
	}
}

// TestReplayHomomorphic runs encrypted replays — blocking and streaming,
// one and two engines — against the cleartext reference, and checks the
// runtime reuses its arena across replays (the zero-allocation property).
func TestReplayHomomorphic(t *testing.T) {
	sk, ck := testKeys(t)
	nl := randomNetlist(7, 4, 24)
	p, err := Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*gate.Engine{gate.NewEngine(ck), gate.NewEngine(ck)}
	rt := NewRuntime(ck.Params.LWEDimension)

	encrypt := func(in []bool) []*gate.Ciphertext {
		rng := trand.NewSeeded([]byte{byte(len(in))})
		cts := make([]*gate.Ciphertext, len(in))
		for i, b := range in {
			cts[i] = gate.NewCiphertext(sk.Params)
			gate.Encrypt(cts[i], b, sk, rng)
		}
		return cts
	}
	check := func(in []bool, outs []*gate.Ciphertext) {
		t.Helper()
		want, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i, ct := range outs {
			if got := gate.Decrypt(ct, sk); got != want[i] {
				t.Fatalf("output %d: got %v want %v", i, got, want[i])
			}
		}
	}

	for trial := 0; trial < 3; trial++ {
		in := []bool{trial&1 == 1, trial&2 != 0, true, trial == 0}
		outs, err := Replay(context.Background(), p, engines, encrypt(in), rt)
		if err != nil {
			t.Fatal(err)
		}
		check(in, outs)
	}
	hw := rt.HighWater()
	if hw == 0 || hw > p.ArenaSlots() {
		t.Fatalf("high water %d outside (0, %d]", hw, p.ArenaSlots())
	}

	// Single-engine sequential path.
	in := []bool{true, false, true, true}
	outs, err := Replay(context.Background(), p, engines[:1], encrypt(in), rt)
	if err != nil {
		t.Fatal(err)
	}
	check(in, outs)

	// Streaming replay overlapped with compilation.
	s, err := CompileStream(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	outs, err = ReplayStream(context.Background(), s, engines, encrypt(in), NewRuntime(ck.Params.LWEDimension))
	if err != nil {
		t.Fatal(err)
	}
	check(in, outs)
	if rt.HighWater() != hw {
		t.Fatalf("high water moved from %d to %d across replays", hw, rt.HighWater())
	}
}

// TestReplayEdgeCases covers constant and pass-through outputs, input
// validation, and context cancellation.
func TestReplayEdgeCases(t *testing.T) {
	sk, ck := testKeys(t)
	b := circuit.NewBuilder("edges", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	n := b.Gate(logic.XNOR, x, x) // constant true after dedup
	b.Output("one", n)
	b.Output("echo", b.Gate(logic.COPY, y, y))
	b.Output("cf", circuit.ConstFalse)
	nl := b.MustBuild()

	p, err := Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*gate.Engine{gate.NewEngine(ck)}
	rt := NewRuntime(ck.Params.LWEDimension)
	rng := trand.NewSeeded([]byte("edge"))
	in := make([]*gate.Ciphertext, 2)
	for i, bit := range []bool{true, false} {
		in[i] = gate.NewCiphertext(sk.Params)
		gate.Encrypt(in[i], bit, sk, rng)
	}
	outs, err := Replay(context.Background(), p, engines, in, rt)
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []bool{true, false, false} {
		if got := gate.Decrypt(outs[i], sk); got != want {
			t.Fatalf("output %d: got %v want %v", i, got, want)
		}
	}

	if _, err := Replay(context.Background(), p, engines, in[:1], rt); err == nil {
		t.Fatal("short inputs not rejected")
	}
	if _, err := Replay(context.Background(), p, nil, in, rt); err == nil {
		t.Fatal("missing engines not rejected")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	big := randomNetlist(9, 4, 60)
	bp, err := Compile(big, 2)
	if err != nil {
		t.Fatal(err)
	}
	bin := make([]*gate.Ciphertext, 4)
	for i := range bin {
		bin[i] = gate.NewCiphertext(sk.Params)
		gate.Encrypt(bin[i], i%2 == 0, sk, rng)
	}
	if _, err := Replay(ctx, bp, engines, bin, NewRuntime(ck.Params.LWEDimension)); err == nil {
		t.Fatal("cancelled context not honored")
	}
}

// TestRuntimeReset verifies Reset releases slots for rebinding to another
// plan.
func TestRuntimeReset(t *testing.T) {
	rt := NewRuntime(4)
	rt.bind(make([]*gate.Ciphertext, 0), 3)
	rt.vals[0] = rt.pool.Get()
	rt.vals[2] = rt.pool.Get()
	if rt.HighWater() != 2 {
		t.Fatalf("high water = %d, want 2", rt.HighWater())
	}
	if live := rt.pool.Live(); live != 2 {
		t.Fatalf("live = %d, want 2", live)
	}
	rt.Reset()
	if live := rt.pool.Live(); live != 0 {
		t.Fatalf("reset left %d samples live, want 0", live)
	}
	if rt.HighWater() != 2 {
		t.Fatalf("high water after reset = %d, want 2", rt.HighWater())
	}
}
