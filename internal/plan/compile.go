package plan

import (
	"fmt"
	"sort"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// maxSupport bounds the functional-deduplication window: a node whose
// boolean function depends on more than this many live frontier nodes is
// treated as opaque (it becomes a frontier variable itself). Six variables
// keep every truth table in one uint64, so sweeping stays a few dozen
// word operations per gate no matter how large the program is.
const maxSupport = 6

// fn is a node's exact boolean function over a small support: vars is the
// sorted list of frontier exec-node ids, table the truth table with bit i
// holding the function value for the assignment where var j takes bit j
// of i.
type fn struct {
	vars  []int32
	table uint64
}

// identityFn is the function of a frontier variable itself.
func identityFn(id int32) fn { return fn{vars: []int32{id}, table: 0b10} }

// key serializes the function into a map key: the support ids then the
// table. Two nodes with equal keys compute the same boolean function of
// the same live values and are therefore interchangeable.
func (f fn) key() string {
	b := make([]byte, 0, 8+4*len(f.vars))
	for _, v := range f.vars {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	b = append(b, byte(f.table), byte(f.table>>8), byte(f.table>>16), byte(f.table>>24),
		byte(f.table>>32), byte(f.table>>40), byte(f.table>>48), byte(f.table>>56))
	return string(b)
}

// combineGate computes the gate's function (classic kind or LUT table)
// over the union support of its operand functions, or ok=false when the
// union exceeds maxSupport. LUT operands contribute their cones exactly
// like classic operands — the symbolic composition is what lets dedup
// merge a LUT with the 2-input cone computing the same function.
func combineGate(g *circuit.Gate, ops []fn) (fn, bool) {
	union := make([]int32, 0, maxSupport)
	for _, of := range ops {
		merged := make([]int32, 0, maxSupport)
		i, j := 0, 0
		for i < len(union) || j < len(of.vars) {
			switch {
			case j >= len(of.vars) || (i < len(union) && union[i] < of.vars[j]):
				merged = append(merged, union[i])
				i++
			case i >= len(union) || of.vars[j] < union[i]:
				merged = append(merged, of.vars[j])
				j++
			default:
				merged = append(merged, union[i])
				i++
				j++
			}
			if len(merged) > maxSupport {
				return fn{}, false
			}
		}
		union = merged
	}
	// pos[oi][i] is the union position of ops[oi].vars[i].
	var pos [logic.MaxLUTArity][maxSupport]int
	for oi, of := range ops {
		for i, v := range of.vars {
			for u, uv := range union {
				if uv == v {
					pos[oi][i] = u
				}
			}
		}
	}
	k := len(union)
	var table uint64
	for m := 0; m < 1<<k; m++ {
		var vals [logic.MaxLUTArity]bool
		for oi, of := range ops {
			var idx int
			for i := range of.vars {
				idx |= int(m>>pos[oi][i]&1) << i
			}
			vals[oi] = of.table>>idx&1 == 1
		}
		if g.Eval(vals) {
			table |= uint64(1) << m
		}
	}
	return fn{vars: union, table: table}.dropDummies(), true
}

// dropDummies removes support variables the table does not depend on —
// this is what folds COPY chains onto their source and constant-valued
// cones onto a single class.
func (f fn) dropDummies() fn {
	for i := 0; i < len(f.vars); {
		k := len(f.vars)
		if dependsOn(f.table, k, i) {
			i++
			continue
		}
		// Project the table onto var i = 0 and drop the variable.
		var nt uint64
		for m := 0; m < 1<<(k-1); m++ {
			src := m&(1<<i-1) | (m>>i)<<(i+1)
			nt |= f.table >> src & 1 << m
		}
		f.table = nt
		f.vars = append(f.vars[:i], f.vars[i+1:]...)
	}
	return f
}

// dependsOn reports whether the k-variable table depends on variable i.
func dependsOn(table uint64, k, i int) bool {
	for m := 0; m < 1<<k; m++ {
		if m>>i&1 == 0 && table>>m&1 != table>>(m|1<<i)&1 {
			return true
		}
	}
	return false
}

// execGate is one deduplicated gate of the capture: operands are exec-node
// ids (inputs occupy ids 0..NumInputs-1, gates follow in creation order).
// LUT gates carry their table and arity; c is meaningful at arity 3 only.
type execGate struct {
	kind  logic.Kind
	a, b  int32
	c     int32
	tt    logic.TT
	arity uint8
	level int32
}

// needsBootstrap mirrors circuit.Gate.NeedsBootstrap for exec gates.
func (g *execGate) needsBootstrap() bool {
	return g.arity != 0 || g.kind.NeedsBootstrap()
}

// structKey is the hash-consing key of the support-overflow fallback. It
// covers the full gate identity — kind, truth table, arity, and all
// operand ids — so structurally distinct gates never merge.
type structKey struct {
	kind    logic.Kind
	tt      logic.TT
	arity   uint8
	a, b, c int32
}

// Stream is an in-flight compilation. Levels are emitted on Levels() as
// they are laid out (the paper's overlapped batch construction); Plan()
// blocks until capture finishes and returns the completed immutable plan.
type Stream struct {
	p        *Plan
	ch       chan Level
	done     chan struct{}
	maxArena int // exec-gate count: upper bound on the final arena size
}

// Levels returns the channel of planned levels, closed after the last
// level. ReplayStream consumes it; a caller that only wants the finished
// plan can ignore it and call Plan().
func (s *Stream) Levels() <-chan Level { return s.ch }

// Plan waits for capture to finish and returns the completed plan.
func (s *Stream) Plan() *Plan {
	<-s.done
	return s.p
}

// Compile captures nl into an execution plan partitioned for the given
// worker count. It is the blocking form of CompileStream.
func Compile(nl *circuit.Netlist, workers int) (*Plan, error) {
	s, err := CompileStream(nl, workers)
	if err != nil {
		return nil, err
	}
	return s.Plan(), nil
}

// CompileStream captures nl and streams the planned levels. Validation and
// the functional-deduplication pass run synchronously (errors surface
// here); level layout — arena slot assignment and worker partitioning —
// runs in a background goroutine so replay can overlap execution with
// construction. The Levels channel is buffered for the whole plan, so the
// planner never blocks on a slow consumer.
func CompileStream(nl *circuit.Netlist, workers int) (*Stream, error) {
	start := time.Now()
	if workers < 1 {
		workers = 1
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	for i := range nl.Gates {
		if g := &nl.Gates[i]; !g.IsLUT() && g.Kind >= logic.NumKinds {
			return nil, fmt.Errorf("plan: gate %d has kind %d outside the gate alphabet", nl.GateID(i), g.Kind)
		}
	}

	numInputs := nl.NumInputs
	stats := Stats{LogicalGates: len(nl.Gates)}
	for i := range nl.Gates {
		g := &nl.Gates[i]
		if g.NeedsBootstrap() {
			stats.LogicalBootstraps++
		}
		if g.IsLUT() {
			stats.LogicalLUTs++
		}
	}

	// Pass 1 — functional deduplication. Walk gates in topological order,
	// computing each node's exact function over a bounded support of live
	// exec nodes; nodes with an already-seen function reuse its exec node.
	execOf := make([]int32, nl.NumNodes()+1) // logical node id → exec id
	fns := make([]fn, numInputs, numInputs+len(nl.Gates))
	var gates []execGate
	fnIndex := make(map[string]int32, numInputs+len(nl.Gates))
	structIndex := make(map[structKey]int32, len(nl.Gates))
	for i := 0; i < numInputs; i++ {
		fns[i] = identityFn(int32(i))
		fnIndex[fns[i].key()] = int32(i)
		execOf[i+1] = int32(i)
	}
	for i := range nl.Gates {
		g := &nl.Gates[i]
		var eg execGate
		var opFns []fn
		if g.IsLUT() {
			arity := int(g.Arity)
			eops := make([]int32, arity)
			for k := 0; k < arity; k++ {
				eops[k] = execOf[g.Operand(k)]
			}
			// Canonical operand order: sort the exec ids ascending and
			// permute the table to match (newOps[k] = eops[perm[k]]), so
			// LUTs differing only by operand order merge — the LUT
			// counterpart of the classic SwapInputs canonicalization.
			perm := make([]int, arity)
			for k := range perm {
				perm[k] = k
			}
			sort.Slice(perm, func(x, y int) bool { return eops[perm[x]] < eops[perm[y]] })
			sorted := make([]int32, arity)
			for k, pk := range perm {
				sorted[k] = eops[pk]
			}
			eg = execGate{tt: g.TT.Permute(arity, perm), arity: g.Arity, a: sorted[0], b: sorted[1], c: -1}
			if arity >= 3 {
				eg.c = sorted[2]
			}
			opFns = make([]fn, arity)
			for k, e := range sorted {
				opFns[k] = fns[e]
			}
		} else {
			kind := g.Kind
			ea, eb := execOf[g.A], execOf[g.B]
			// Canonical operand order: f(a,b) = f.SwapInputs()(b,a), so
			// sorting the operands merges commuted duplicates (AND(x,y)
			// with AND(y,x), ANDNY(x,y) with ANDYN(y,x), ...).
			if ea > eb {
				ea, eb = eb, ea
				kind = kind.SwapInputs()
			}
			eg = execGate{kind: kind, a: ea, b: eb, c: -1}
			opFns = []fn{fns[ea], fns[eb]}
		}
		cg := circuit.Gate{Kind: eg.kind, TT: eg.tt, Arity: eg.arity}
		var id int32
		if f, ok := combineGate(&cg, opFns); ok {
			if hit, seen := fnIndex[f.key()]; seen {
				execOf[nl.GateID(i)] = hit
				continue
			}
			id = newExec(&gates, &fns, eg, f)
			fnIndex[f.key()] = id
		} else {
			// Support overflow: fall back to structural hash-consing (the
			// key covers the truth table, so distinct LUTs never merge),
			// and let the new node be a frontier variable for its readers.
			skey := structKey{kind: eg.kind, tt: eg.tt, arity: eg.arity, a: eg.a, b: eg.b, c: eg.c}
			if hit, seen := structIndex[skey]; seen {
				execOf[nl.GateID(i)] = hit
				continue
			}
			id = newExec(&gates, &fns, eg, fn{})
			fns[id] = identityFn(id)
			fnIndex[fns[id].key()] = id
			structIndex[skey] = id
		}
		execOf[nl.GateID(i)] = id
	}
	stats.ExecGates = len(gates)
	for i := range gates {
		if gates[i].needsBootstrap() {
			stats.ExecBootstraps++
		}
		if gates[i].arity != 0 {
			stats.ExecLUTs++
		}
	}

	// Levelize the exec graph and record, per exec node, the last level
	// that reads it — the compile-time counterpart of the async executor's
	// runtime fan-out refcounts.
	level := make([]int32, numInputs+len(gates)) // inputs at level 0
	lastRead := make([]int32, numInputs+len(gates))
	numLevels := 0
	for i := range gates {
		g := &gates[i]
		l := level[g.a]
		if lb := level[g.b]; lb > l {
			l = lb
		}
		if g.arity >= 3 {
			if lc := level[g.c]; lc > l {
				l = lc
			}
		}
		g.level = l + 1
		level[int32(numInputs)+int32(i)] = g.level
		if int(g.level) > numLevels {
			numLevels = int(g.level)
		}
		if g.level > lastRead[g.a] {
			lastRead[g.a] = g.level
		}
		if g.level > lastRead[g.b] {
			lastRead[g.b] = g.level
		}
		if g.arity >= 3 && g.level > lastRead[g.c] {
			lastRead[g.c] = g.level
		}
	}
	byLevel := make([][]int32, numLevels)
	for i := range gates {
		l := gates[i].level - 1
		byLevel[l] = append(byLevel[l], int32(i))
	}

	// Outputs pin their exec nodes for the whole replay (collectors read
	// them after the last barrier).
	const pinned = int32(1<<31 - 1)
	outputs := make([]Ref, len(nl.Outputs))
	for i, out := range nl.Outputs {
		switch out {
		case circuit.ConstFalse:
			outputs[i] = ConstFalse
		case circuit.ConstTrue:
			outputs[i] = ConstTrue
		default:
			lastRead[execOf[out]] = pinned
		}
	}

	p := &Plan{
		Name:      nl.Name,
		NumInputs: numInputs,
		Workers:   workers,
		levels:    make([]Level, 0, numLevels),
		outputs:   outputs,
		execOf:    execOf, // complete after pass 1; read-only from here on
	}
	s := &Stream{p: p, ch: make(chan Level, numLevels), done: make(chan struct{}), maxArena: len(gates)}

	// Pass 2 — streamed level layout: arena slot assignment by liveness
	// (a slot frees one level after its last read, so no reuse can race a
	// reader across the barrier) and per-worker batch partitioning.
	go func() {
		defer close(s.done)
		defer close(s.ch)
		slotOf := make([]int32, len(gates))
		refOf := func(id int32) Ref {
			if id < int32(numInputs) {
				return id
			}
			return int32(numInputs) + slotOf[id-int32(numInputs)]
		}
		var freeSlots []int32
		freeAt := make([][]int32, numLevels+1) // level → slots released after it
		arena := 0
		for l, gs := range byLevel {
			lvl := int32(l + 1)
			for _, slot := range freeAt[l] {
				freeSlots = append(freeSlots, slot)
			}
			// Slot assignment for this wavefront's outputs.
			for _, gi := range gs {
				var slot int32
				if n := len(freeSlots); n > 0 {
					slot = freeSlots[n-1]
					freeSlots = freeSlots[:n-1]
				} else {
					slot = int32(arena)
					arena++
				}
				slotOf[gi] = slot
				if lr := lastRead[int32(numInputs)+gi]; lr != pinned {
					if lr < lvl { // no reader at all: dead exec node (outputs only)
						lr = lvl
					}
					freeAt[lr] = append(freeAt[lr], slot)
				}
			}
			// Partition across workers, heaviest-first greedy on bootstrap
			// weight so no batch ends up with all the expensive gates.
			batches := make([][]Instr, workers)
			load := make([]int, workers)
			for _, gi := range gs {
				g := gates[gi]
				w := 0
				for c := 1; c < workers; c++ {
					if load[c] < load[w] {
						w = c
					}
				}
				cost := 1
				if g.needsBootstrap() {
					cost = 1024
				}
				load[w] += cost
				ins := Instr{
					Kind:  g.kind,
					Out:   int32(numInputs) + slotOf[gi],
					A:     refOf(g.a),
					B:     refOf(g.b),
					TT:    g.tt,
					Arity: g.arity,
				}
				if g.arity >= 3 {
					ins.C = refOf(g.c)
				}
				batches[w] = append(batches[w], ins)
			}
			lv := Level{Batches: batches}
			p.levels = append(p.levels, lv)
			s.ch <- lv
		}
		for i, out := range nl.Outputs {
			if outputs[i] >= 0 {
				p.outputs[i] = refOf(execOf[out])
			}
		}
		stats.Levels = numLevels
		stats.ArenaSlots = arena
		stats.CompileTime = time.Since(start)
		p.stats = stats
	}()
	return s, nil
}

// newExec appends an exec gate and its function, returning the node id.
func newExec(gates *[]execGate, fns *[]fn, eg execGate, f fn) int32 {
	id := int32(len(*fns))
	*gates = append(*gates, eg)
	*fns = append(*fns, f)
	return id
}
