// Package plan is the execution-plan capture & replay subsystem — the CPU
// analogue of the paper's CUDA-Graph batch scheduling. Compile runs once
// per program and turns a gate netlist into an immutable Plan: levelized
// gate batches pre-partitioned across workers, a flat ciphertext arena
// whose slot indices come from compile-time liveness analysis (replacing
// the executors' runtime refcounting), and precomputed per-instruction
// operand/output slot references. Replay executes the plan with no ready
// heap, no per-gate atomics (synchronization is one barrier per level) and
// zero ciphertext allocations after warm-up, so a program served hundreds
// of times pays its scheduling cost exactly once.
//
// Capture is also where analysis that is too expensive for the dynamic
// executors runs: Compile performs bounded-support functional
// deduplication (exact truth-table sweeping over supports of up to six
// live nodes, the plan-level counterpart of internal/synth's cut-based
// resynthesis), so replay evaluates only the program's distinct boolean
// functions and shares the resulting ciphertexts. The merge is provably
// exact — two nodes merge only when their truth tables over the same
// support agree — and gate evaluation is deterministic, so replayed
// outputs decrypt bit-identically to the dynamic executors' outputs.
//
// Mirroring the paper's overlapped batch construction, CompileStream
// emits levels over a channel as they are planned, and ReplayStream starts
// executing level 0 while later levels are still being laid out.
package plan

import (
	"sync"
	"time"

	"pytfhe/internal/logic"
)

// Ref names a replay value: refs below Plan.NumInputs index the caller's
// input ciphertexts, refs at or above it index the arena
// (slot = ref - NumInputs). Output refs may also be the two constant
// sentinels.
type Ref = int32

// Constant output sentinels, mirroring circuit.ConstFalse/ConstTrue.
const (
	ConstFalse Ref = -1
	ConstTrue  Ref = -2
)

// Instr is one captured gate evaluation. Classic gates (Arity 0) compute
// values[Out] = Kind(values[A], values[B]); k-input LUT instructions
// (Arity 2..3) compute values[Out] = TT(values[A], values[B], values[C])
// with one programmable bootstrap, mirroring circuit.Gate's encoding (C is
// meaningful only at arity 3). All refs are resolved at compile time.
type Instr struct {
	Kind logic.Kind
	Out  Ref
	A, B Ref

	C     Ref      // third LUT operand (Arity 3 only)
	TT    logic.TT // LUT truth table (Arity ≥ 2 only)
	Arity uint8    // 0: classic gate; 2..3: k-input LUT
}

// IsLUT reports whether the instruction is a multi-input LUT.
func (ins Instr) IsLUT() bool { return ins.Arity != 0 }

// NeedsBootstrap reports whether replaying the instruction costs a
// bootstrap (LUT instructions always do).
func (ins Instr) NeedsBootstrap() bool {
	return ins.Arity != 0 || ins.Kind.NeedsBootstrap()
}

// Level is one wavefront of the plan: Batches[w] is the instruction
// sequence pre-assigned to worker w. Instructions within a level are
// mutually independent; a per-level barrier is the only synchronization
// replay needs.
type Level struct {
	Batches [][]Instr
}

// Stats summarizes what capture did to the program.
type Stats struct {
	LogicalGates      int // gates in the source netlist
	LogicalBootstraps int // bootstrapped gates in the source netlist
	LogicalLUTs       int // multi-input LUT gates in the source netlist
	ExecGates         int // instructions replay actually executes
	ExecBootstraps    int // bootstrapped instructions after deduplication
	ExecLUTs          int // LUT instructions after deduplication
	Levels            int
	ArenaSlots        int // ciphertexts the arena holds (peak liveness)
	CompileTime       time.Duration
}

// Plan is an immutable compiled execution plan. A Plan is safe to share
// between goroutines and replay concurrently (each replay brings its own
// Runtime and engines).
type Plan struct {
	Name      string
	NumInputs int
	Workers   int // batch partitions per level

	levels  []Level
	outputs []Ref
	stats   Stats
	execOf  []int32

	fpOnce sync.Once
	fp     string
}

// Levels exposes the level list (read-only by convention).
func (p *Plan) Levels() []Level { return p.levels }

// Outputs exposes the output refs (read-only by convention).
func (p *Plan) Outputs() []Ref { return p.outputs }

// Stats returns the capture summary.
func (p *Plan) Stats() Stats { return p.stats }

// ArenaSlots returns the arena size liveness analysis assigned.
func (p *Plan) ArenaSlots() int { return p.stats.ArenaSlots }

// ExecOf exposes the compiler's deduplication map: entry id holds the exec
// node the logical netlist node id was merged onto (inputs 1..NumInputs map
// to exec ids 0..NumInputs-1; entry 0 is unused, mirroring circuit node
// numbering). Exec ids below NumInputs are inputs; higher ids are
// deduplicated gates in creation order. Verify uses it to re-check, with
// an independent cone simulation, that every merge the compiler performed
// really was between functionally identical nodes. Read-only by
// convention.
func (p *Plan) ExecOf() []int32 { return p.execOf }

// SizeBytes estimates the plan's resident memory: instructions, the
// per-worker batch slice headers, output refs, and the dedup map. The
// figure feeds the daemon's byte-accounted plan cache — it is an
// accounting estimate (struct padding and allocator overhead included as
// flat constants), not an exact heap measurement.
func (p *Plan) SizeBytes() int64 {
	const (
		instrBytes  = 24 // Kind + Arity + TT + 4×Ref, padded
		sliceHeader = 24
		fixed       = 256 // Plan struct, name, stats
	)
	size := int64(fixed)
	size += int64(len(p.execOf)) * 4
	size += int64(len(p.outputs)) * 4
	for _, lvl := range p.levels {
		size += sliceHeader
		for _, batch := range lvl.Batches {
			size += sliceHeader + int64(len(batch))*instrBytes
		}
	}
	return size
}
