package plan

import (
	"errors"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// clonePlan deep-copies a plan so mutation tests can seed defects without
// touching the compiled original.
func clonePlan(p *Plan) *Plan {
	q := &Plan{
		Name:      p.Name,
		NumInputs: p.NumInputs,
		Workers:   p.Workers,
		outputs:   append([]Ref(nil), p.outputs...),
		stats:     p.stats,
		execOf:    append([]int32(nil), p.execOf...),
	}
	for _, lv := range p.levels {
		nb := make([][]Instr, len(lv.Batches))
		for w, b := range lv.Batches {
			nb[w] = append([]Instr(nil), b...)
		}
		q.levels = append(q.levels, Level{Batches: nb})
	}
	return q
}

// mustCompile compiles or fails the test.
func mustCompile(t *testing.T, nl *circuit.Netlist, workers int) *Plan {
	t.Helper()
	p, err := Compile(nl, workers)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVerifyCompiledPlansPass(t *testing.T) {
	nets := []*circuit.Netlist{
		nandChains(5, 12),
		randomNetlist(7, 6, 40),
		randomNetlist(11, 10, 120),
		randomNetlist(13, 20, 200), // >12 inputs: sampled simulation
	}
	for _, nl := range nets {
		for _, workers := range []int{1, 2, 4} {
			p := mustCompile(t, nl, workers)
			for _, batch := range []int{1, 3, 16} {
				r, err := VerifyBatch(nl, p, batch)
				if err != nil {
					t.Fatalf("%s/w%d/b%d: compiled plan failed verification: %v", nl.Name, workers, batch, err)
				}
				if r.Instructions == 0 || r.Levels != len(p.levels) || r.ArenaSlots != p.stats.ArenaSlots {
					t.Fatalf("%s/w%d/b%d: implausible report %+v", nl.Name, workers, batch, r)
				}
				if (nl.NumInputs <= 12) != r.Exhaustive {
					t.Fatalf("%s: exhaustive=%v with %d inputs", nl.Name, r.Exhaustive, nl.NumInputs)
				}
			}
		}
	}
}

func TestVerifyCountsDedupMerges(t *testing.T) {
	// AND(x,y), AND(y,x) and a rebuilt AND(x,y) are one function; NAND is
	// its own class.
	b := circuit.NewBuilder("dups", circuit.NoOptimizations())
	x, y := b.Input("x"), b.Input("y")
	g1 := b.Gate(logic.AND, x, y)
	g2 := b.Gate(logic.AND, y, x)
	g3 := b.Gate(logic.AND, x, y)
	g4 := b.Gate(logic.NAND, x, y)
	b.Output("a", g1)
	b.Output("b", g2)
	b.Output("c", g3)
	b.Output("d", g4)
	nl := b.MustBuild()
	p := mustCompile(t, nl, 1)
	r, err := Verify(nl, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.MergedNodes != 2 || r.DedupClasses != 1 {
		t.Fatalf("merged %d nodes in %d classes, want 2 in 1", r.MergedNodes, r.DedupClasses)
	}
}

// twoGates builds u=AND(x1,x2), v=OR(x1,x2), both outputs — the minimal
// netlist where a wrong merge is observable.
func twoGates(t *testing.T) (*circuit.Netlist, *Plan) {
	t.Helper()
	b := circuit.NewBuilder("two", circuit.NoOptimizations())
	x, y := b.Input("x"), b.Input("y")
	b.Output("and", b.Gate(logic.AND, x, y))
	b.Output("or", b.Gate(logic.OR, x, y))
	nl := b.MustBuild()
	return nl, mustCompile(t, nl, 1)
}

// chain builds x1 -NAND x2-> g1 -NAND x2-> g2 -NAND x2-> g3, output g3.
func chain(t *testing.T, depth int) (*circuit.Netlist, *Plan) {
	t.Helper()
	b := circuit.NewBuilder("chain", circuit.NoOptimizations())
	x, y := b.Input("x"), b.Input("y")
	cur := x
	for i := 0; i < depth; i++ {
		cur = b.Gate(logic.NAND, cur, y)
	}
	b.Output("o", cur)
	nl := b.MustBuild()
	return nl, mustCompile(t, nl, 1)
}

// findInstr locates the single instruction writing ref, failing the test
// when it is absent.
func findInstr(t *testing.T, p *Plan, ref Ref) (level, worker, idx int) {
	t.Helper()
	for li, lv := range p.levels {
		for w, instrs := range lv.Batches {
			for k, ins := range instrs {
				if ins.Out == ref {
					return li, w, k
				}
			}
		}
	}
	t.Fatalf("no instruction writes ref %d", ref)
	return 0, 0, 0
}

func wantErr(t *testing.T, nl *circuit.Netlist, p *Plan, batch int, sentinel error, what string) {
	t.Helper()
	_, err := VerifyBatch(nl, p, batch)
	if err == nil {
		t.Fatalf("%s: mutated plan passed verification", what)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("%s: got %v, want %v", what, err, sentinel)
	}
}

func TestVerifyShapeDefects(t *testing.T) {
	nl, p := chain(t, 2)

	m := clonePlan(p)
	m.levels[0].Batches[0][0].Kind = logic.Kind(99)
	wantErr(t, nl, m, 1, ErrShape, "unknown kind")

	m = clonePlan(p)
	m.levels[0].Batches[0][0].Out = Ref(m.NumInputs + m.stats.ArenaSlots + 5)
	wantErr(t, nl, m, 1, ErrShape, "out ref past arena")

	m = clonePlan(p)
	m.levels[0].Batches[0][0].A = -3
	wantErr(t, nl, m, 1, ErrShape, "negative operand ref")

	m = clonePlan(p)
	m.execOf = m.execOf[:len(m.execOf)-1]
	wantErr(t, nl, m, 1, ErrShape, "truncated dedup map")

	m = clonePlan(p)
	m.outputs[0] = Ref(m.NumInputs + m.stats.ArenaSlots)
	wantErr(t, nl, m, 1, ErrShape, "output ref past arena")

	m = clonePlan(p)
	m.NumInputs++
	wantErr(t, nl, m, 1, ErrShape, "input count mismatch")
}

func TestVerifyDroppedInstruction(t *testing.T) {
	// Drop the first gate: its consumer now reads a never-written slot.
	nl, p := chain(t, 3)
	firstOut := p.levels[0].Batches[0][0].Out
	li, w, k := findInstr(t, p, firstOut)
	m := clonePlan(p)
	m.levels[li].Batches[w] = append(m.levels[li].Batches[w][:k], m.levels[li].Batches[w][k+1:]...)
	wantErr(t, nl, m, 1, ErrOrder, "dropped producer")

	// Dropping the final gate instead starves the output ref.
	nl2, p2 := chain(t, 2)
	li, w, k = findInstr(t, p2, p2.outputs[0])
	m = clonePlan(p2)
	m.levels[li].Batches[w] = append(m.levels[li].Batches[w][:k], m.levels[li].Batches[w][k+1:]...)
	wantErr(t, nl2, m, 1, ErrOrder, "dropped output producer")
}

func TestVerifyLifetimeOverlap(t *testing.T) {
	// Two independent gates share level 1; retargeting one onto the
	// other's slot makes two live values collide in one wavefront.
	nl, p := twoGates(t)
	var refs []struct{ w, k int }
	for w, instrs := range p.levels[0].Batches {
		for k := range instrs {
			refs = append(refs, struct{ w, k int }{w, k})
		}
	}
	if len(refs) < 2 {
		t.Fatalf("expected both gates in level 0, have %d", len(refs))
	}
	m := clonePlan(p)
	a, b := refs[0], refs[1]
	m.levels[0].Batches[b.w][b.k].Out = m.levels[0].Batches[a.w][a.k].Out
	wantErr(t, nl, m, 1, ErrLifetime, "double write")

	// Read/write overlap in one wavefront: pull the level-2 consumer down
	// into level 1, where its operand is being produced. Under sequential
	// replay that is a lifetime violation (wrong-generation read), not a
	// batch-dispatch alias.
	nl2, p2 := chain(t, 2)
	m = clonePlan(p2)
	consumer := m.levels[1].Batches[0][0]
	m.levels[1].Batches[0] = m.levels[1].Batches[0][:0]
	m.levels[0].Batches[0] = append(m.levels[0].Batches[0], consumer)
	wantErr(t, nl2, m, 1, ErrLifetime, "same-level read/write")
}

func TestVerifyBatchAlias(t *testing.T) {
	// The same collapsed plan — producer and consumer forced into one
	// worker's sequence — classifies as a dispatch-group alias when the
	// batched schedule would buffer both bootstraps into one kernel call.
	nl, p := chain(t, 2)
	m := clonePlan(p)
	consumer := m.levels[1].Batches[0][0]
	m.levels[1].Batches[0] = m.levels[1].Batches[0][:0]
	m.levels[0].Batches[0] = append(m.levels[0].Batches[0], consumer)
	wantErr(t, nl, m, 4, ErrBatchAlias, "intra-dispatch alias")

	// With batch 1 the same plan is sequential and the defect is a
	// lifetime overlap instead — the classes stay distinct.
	wantErr(t, nl, m, 1, ErrLifetime, "sequential classification")

	// A free instruction interleaved with a pending buffered bootstrap it
	// depends on is the runBatch reorder hazard: the kernel's combos form
	// before the inline free ran... and the free gate reads a slot the
	// open dispatch group will write.
	b := circuit.NewBuilder("free-alias", circuit.NoOptimizations())
	x, y := b.Input("x"), b.Input("y")
	g := b.Gate(logic.NAND, x, y)
	n := b.Gate(logic.NOT, g, g)
	b.Output("o", n)
	nl2 := b.MustBuild()
	p2 := mustCompile(t, nl2, 1)
	m2 := clonePlan(p2)
	free := m2.levels[1].Batches[0][0]
	m2.levels[1].Batches[0] = m2.levels[1].Batches[0][:0]
	m2.levels[0].Batches[0] = append(m2.levels[0].Batches[0], free)
	wantErr(t, nl2, m2, 4, ErrBatchAlias, "free instr in open dispatch group")
}

func TestVerifyWrongDedupMerge(t *testing.T) {
	nl, p := twoGates(t)
	andID, orID := nl.GateID(0), nl.GateID(1)

	// The realistic wrong merge: drop OR's instruction, repoint its
	// output and dedup entry at AND — exactly what a buggy truth-table
	// hash would compile.
	m := clonePlan(p)
	andRef := m.outputs[0]
	li, w, k := findInstr(t, m, m.outputs[1])
	m.levels[li].Batches[w] = append(m.levels[li].Batches[w][:k], m.levels[li].Batches[w][k+1:]...)
	m.outputs[1] = andRef
	m.execOf[orID] = m.execOf[andID]
	wantErr(t, nl, m, 1, ErrDedup, "wrong merge, instruction dropped")

	// A corrupted dedup record alone (instructions intact) must also be
	// refuted by the independent cone comparison.
	m = clonePlan(p)
	m.execOf[orID] = m.execOf[andID]
	wantErr(t, nl, m, 1, ErrDedup, "corrupted dedup map")
}

func TestVerifySemanticsDefects(t *testing.T) {
	nl, p := twoGates(t)

	// Swapped output wiring.
	m := clonePlan(p)
	m.outputs[0], m.outputs[1] = m.outputs[1], m.outputs[0]
	wantErr(t, nl, m, 1, ErrSemantics, "swapped outputs")

	// Swapped instruction output slots (readers and outputs not updated).
	m = clonePlan(p)
	var sites []struct{ w, k int }
	for w, instrs := range m.levels[0].Batches {
		for k := range instrs {
			sites = append(sites, struct{ w, k int }{w, k})
		}
	}
	a, b := sites[0], sites[1]
	m.levels[0].Batches[a.w][a.k].Out, m.levels[0].Batches[b.w][b.k].Out =
		m.levels[0].Batches[b.w][b.k].Out, m.levels[0].Batches[a.w][a.k].Out
	wantErr(t, nl, m, 1, ErrSemantics, "swapped slots")

	// A silently flipped gate kind.
	m = clonePlan(p)
	li, w, k := findInstr(t, m, m.outputs[0])
	m.levels[li].Batches[w][k].Kind = logic.XOR
	wantErr(t, nl, m, 1, ErrSemantics, "flipped kind")
}

func TestVerifyRejectsInvalidNetlist(t *testing.T) {
	nl, p := chain(t, 2)
	bad := &circuit.Netlist{
		Name:      nl.Name,
		NumInputs: nl.NumInputs,
		Gates:     []circuit.Gate{{Kind: logic.AND, A: 9, B: 1}},
		Outputs:   nl.Outputs,
	}
	if _, err := Verify(bad, p); err == nil {
		t.Fatal("invalid netlist accepted")
	}
}
