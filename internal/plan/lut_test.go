package plan

import (
	"context"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/trand"

	"pytfhe/internal/tfhe/gate"
)

// lutNetlist mixes 3-input LUTs, a 2-input LUT, classic and free gates —
// the shape lut-cluster emits.
func lutNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-mix", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	w := b.Input("w")
	par := b.LUT(0x96, x, y, z) // PARITY3
	maj := b.LUT(0xE8, x, y, z) // MAJ
	mix := b.LUT(0x7E, par, maj, w)
	and := b.Gate(logic.AND, par, w)
	b.Output("mix", mix)
	b.Output("and", and)
	b.Output("not", b.Gate(logic.NOT, maj, maj))
	return b.MustBuild()
}

// TestPlanLUTMatchesEvaluate checks, exhaustively, that compiled LUT plans
// compute the netlist's function, that Verify (plain and batch-grouped)
// accepts them, and that LUT instructions survive into the stats.
func TestPlanLUTMatchesEvaluate(t *testing.T) {
	nl := lutNetlist()
	for _, workers := range []int{1, 2, 4} {
		p, err := Compile(nl, workers)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		if p.Stats().LogicalLUTs != 3 {
			t.Fatalf("w=%d logical LUTs = %d, want 3", workers, p.Stats().LogicalLUTs)
		}
		if p.Stats().ExecLUTs == 0 {
			t.Fatalf("w=%d exec LUTs = 0, LUT instructions were lost", workers)
		}
		if _, err := Verify(nl, p); err != nil {
			t.Fatalf("w=%d verify: %v", workers, err)
		}
		if _, err := VerifyBatch(nl, p, 4); err != nil {
			t.Fatalf("w=%d verify batch: %v", workers, err)
		}
		for m := 0; m < 1<<nl.NumInputs; m++ {
			in := make([]bool, nl.NumInputs)
			for i := range in {
				in[i] = m>>i&1 == 1
			}
			want, err := nl.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			got := evalPlan(p, in)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("w=%d input %b output %d: plan %v, reference %v",
						workers, m, i, got[i], want[i])
				}
			}
		}
	}
}

// TestPlanLUTDedupPermutation compiles two LUT gates that compute the same
// function with permuted operand order (the table permuted to match) and
// asserts capture merges them into one executed bootstrap.
func TestPlanLUTDedupPermutation(t *testing.T) {
	const tt = logic.TT(0x78) // asymmetric feasible 3-input table
	perm := []int{1, 0, 2}
	b := circuit.NewBuilder("lut-perm", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	g1 := b.LUT(tt, x, y, z)
	g2 := b.LUT(tt.Permute(3, perm), y, x, z)
	b.Output("a", g1)
	b.Output("b", g2)
	nl := b.MustBuild()

	// The permuted table really is the same function.
	for m := 0; m < 8; m++ {
		in := []bool{m>>0&1 == 1, m>>1&1 == 1, m>>2&1 == 1}
		want, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		if want[0] != want[1] {
			t.Fatalf("input %b: outputs disagree, test netlist is wrong", m)
		}
	}

	p, err := Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.Stats().LogicalLUTs != 2 {
		t.Fatalf("logical LUTs = %d, want 2", p.Stats().LogicalLUTs)
	}
	if p.Stats().ExecLUTs != 1 {
		t.Fatalf("exec LUTs = %d, want 1 (permuted operands must dedup)", p.Stats().ExecLUTs)
	}
	if _, err := Verify(nl, p); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

// TestPlanLUTFingerprint asserts the fingerprint covers the truth table:
// plans identical except for one LUT's table must not collide (they key
// shard caches and the daemon plan cache).
func TestPlanLUTFingerprint(t *testing.T) {
	build := func(tt logic.TT) *Plan {
		b := circuit.NewBuilder("fp", circuit.NoOptimizations())
		x := b.Input("x")
		y := b.Input("y")
		z := b.Input("z")
		b.Output("o", b.LUT(tt, x, y, z))
		p, err := Compile(b.MustBuild(), 1)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if build(0x96).Fingerprint() == build(0xE8).Fingerprint() {
		t.Fatal("plans with different LUT tables share a fingerprint")
	}
}

// TestPlanLUTReplayBatch replays a LUT plan homomorphically — sequential
// and batched — and checks decryption against the cleartext reference.
func TestPlanLUTReplayBatch(t *testing.T) {
	sk, ck := testKeys(t)
	nl := lutNetlist()
	p, err := Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	engines := []*gate.Engine{gate.NewEngine(ck), gate.NewEngine(ck)}
	rt := NewRuntime(ck.Params.LWEDimension)
	rng := trand.NewSeeded([]byte("plan-lut-replay"))

	for _, batch := range []int{1, 4} {
		for _, m := range []int{0, 5, 10, 15} {
			in := make([]bool, nl.NumInputs)
			cts := make([]*gate.Ciphertext, nl.NumInputs)
			for i := range in {
				in[i] = m>>i&1 == 1
				cts[i] = gate.NewCiphertext(sk.Params)
				gate.Encrypt(cts[i], in[i], sk, rng)
			}
			outs, err := ReplayBatch(context.Background(), p, engines, cts, rt, batch)
			if err != nil {
				t.Fatalf("batch=%d: %v", batch, err)
			}
			want, err := nl.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			for i, ct := range outs {
				if got := gate.Decrypt(ct, sk); got != want[i] {
					t.Fatalf("batch=%d input %b output %d: got %v want %v", batch, m, i, got, want[i])
				}
			}
		}
	}
}
