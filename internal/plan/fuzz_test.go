package plan

import (
	"errors"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// fuzzNetlist decodes an arbitrary byte string into a valid netlist: a
// small input set (<= 8, so verification is always exhaustive), then one
// gate per three bytes with operands reduced into the already-defined
// node range, then a handful of outputs. Every decodable netlist passes
// circuit.Validate by construction.
func fuzzNetlist(data []byte) *circuit.Netlist {
	if len(data) < 5 {
		return nil
	}
	numInputs := 2 + int(data[0]%7)
	nl := &circuit.Netlist{Name: "fuzz", NumInputs: numInputs}
	rest := data[1:]
	maxGates := len(rest) / 3
	if maxGates > 48 {
		maxGates = 48
	}
	if maxGates == 0 {
		return nil
	}
	for i := 0; i < maxGates; i++ {
		b := rest[i*3 : i*3+3]
		avail := numInputs + i // nodes 1..avail are defined
		nl.Gates = append(nl.Gates, circuit.Gate{
			Kind: logic.Kind(b[0] % uint8(logic.NumKinds)),
			A:    circuit.NodeID(1 + int(b[1])%avail),
			B:    circuit.NodeID(1 + int(b[2])%avail),
		})
	}
	tail := rest[maxGates*3:]
	numOutputs := 1 + len(tail)%3
	for i := 0; i < numOutputs; i++ {
		var sel byte
		if i < len(tail) {
			sel = tail[i]
		}
		nl.Outputs = append(nl.Outputs, circuit.NodeID(1+int(sel)%nl.NumNodes()))
	}
	return nl
}

// soleWriteReadLater finds an instruction whose output ref is written
// exactly once in the whole plan and read by a later level or an output —
// dropping it is guaranteed to strand a reader (ErrOrder).
func soleWriteReadLater(p *Plan) (level, worker, idx int, ok bool) {
	writes := map[Ref]int{}
	for _, lv := range p.levels {
		for _, instrs := range lv.Batches {
			for _, ins := range instrs {
				writes[ins.Out]++
			}
		}
	}
	readLater := map[Ref]bool{}
	for _, ref := range p.outputs {
		if ref >= 0 {
			readLater[ref] = true
		}
	}
	for li := len(p.levels) - 1; li >= 0; li-- {
		for w, instrs := range p.levels[li].Batches {
			for k, ins := range instrs {
				if writes[ins.Out] == 1 && readLater[ins.Out] {
					return li, w, k, true
				}
			}
		}
		for _, instrs := range p.levels[li].Batches {
			for _, ins := range instrs {
				if ins.A >= Ref(p.NumInputs) {
					readLater[ins.A] = true
				}
				if ins.B >= Ref(p.NumInputs) {
					readLater[ins.B] = true
				}
			}
		}
	}
	return 0, 0, 0, false
}

// crowdedLevel finds a level holding at least two instructions (across
// all workers) so a write-write collision can be seeded.
func crowdedLevel(p *Plan) (level int, sites []struct{ w, k int }, ok bool) {
	for li, lv := range p.levels {
		sites = sites[:0]
		for w, instrs := range lv.Batches {
			for k := range instrs {
				sites = append(sites, struct{ w, k int }{w, k})
				if len(sites) == 2 {
					return li, sites, true
				}
			}
		}
	}
	return 0, nil, false
}

// distinctFunctionPair finds two netlist gate nodes mapped to different
// exec nodes whose boolean functions provably differ under exhaustive
// simulation — merging their dedup entries must trip ErrDedup.
func distinctFunctionPair(nl *circuit.Netlist, p *Plan) (u, v circuit.NodeID, ok bool) {
	np := nl.NumInputs
	rounds := 1
	if np > 6 {
		rounds = 1 << (np - 6)
	}
	words := make(map[circuit.NodeID]uint64, nl.NumNodes())
	differ := make(map[[2]circuit.NodeID]bool)
	net := make([]uint64, nl.NumNodes()+1)
	in := make([]uint64, np)
	rng := &SimRNG{x: 1}
	for r := 0; r < rounds; r++ {
		SimFill(in, r, true, rng)
		for i := 0; i < np; i++ {
			net[i+1] = in[i]
		}
		for i, g := range nl.Gates {
			net[nl.GateID(i)] = EvalWord(g.Kind, net[g.A], net[g.B])
		}
		for i := range nl.Gates {
			words[nl.GateID(i)] = net[nl.GateID(i)]
		}
		for i := range nl.Gates {
			for j := i + 1; j < len(nl.Gates); j++ {
				a, b := nl.GateID(i), nl.GateID(j)
				if p.execOf[a] != p.execOf[b] && words[a] != words[b] {
					differ[[2]circuit.NodeID{a, b}] = true
				}
			}
		}
	}
	for pair := range differ {
		return pair[0], pair[1], true
	}
	return 0, 0, false
}

// FuzzVerify drives the plan-soundness verifier from both sides: every
// plan the compiler produces for a decodable netlist must verify clean,
// and a seeded defect (dropped instruction, slot collision, wrong dedup
// merge — chosen by the fuzz bytes) must be rejected.
func FuzzVerify(f *testing.F) {
	f.Add([]byte("\x03plans-are-checked-exhaustively-here!"))
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b})
	f.Add([]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88, 0x77, 0x66, 0x55, 0x44, 0x33})
	f.Add([]byte("nand-nand-nand-nand-nand-nand-nand"))
	f.Add([]byte{0x06, 0x0e, 0x00, 0x01, 0x0e, 0x01, 0x00, 0x08, 0x02, 0x03, 0x01, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		nl := fuzzNetlist(data)
		if nl == nil {
			t.Skip("undecodable")
		}
		if err := nl.Validate(); err != nil {
			t.Fatalf("generated netlist invalid: %v", err)
		}
		workers := 1 + int(data[0]>>4)%4
		batch := 1 + int(data[0]>>2)%4
		p, err := Compile(nl, workers)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		if _, err := VerifyBatch(nl, p, batch); err != nil {
			t.Fatalf("compiled plan failed verification: %v", err)
		}

		// Seed one guaranteed-harmful defect; fall through the mutation
		// kinds until one has a candidate site in this plan.
		for attempt := 0; attempt < 3; attempt++ {
			switch (int(data[len(data)-1]) + attempt) % 3 {
			case 0: // dropped instruction
				li, w, k, ok := soleWriteReadLater(p)
				if !ok {
					continue
				}
				m := clonePlan(p)
				m.levels[li].Batches[w] = append(m.levels[li].Batches[w][:k], m.levels[li].Batches[w][k+1:]...)
				if _, err := VerifyBatch(nl, m, batch); !errors.Is(err, ErrOrder) {
					t.Fatalf("dropped instruction: got %v, want ErrOrder", err)
				}
			case 1: // slot collision within a wavefront
				li, sites, ok := crowdedLevel(p)
				if !ok {
					continue
				}
				m := clonePlan(p)
				m.levels[li].Batches[sites[1].w][sites[1].k].Out = m.levels[li].Batches[sites[0].w][sites[0].k].Out
				if _, err := VerifyBatch(nl, m, batch); !errors.Is(err, ErrLifetime) {
					t.Fatalf("slot collision: got %v, want ErrLifetime", err)
				}
			case 2: // wrong dedup merge
				u, v, ok := distinctFunctionPair(nl, p)
				if !ok {
					continue
				}
				m := clonePlan(p)
				m.execOf[v] = m.execOf[u]
				if _, err := VerifyBatch(nl, m, batch); !errors.Is(err, ErrDedup) {
					t.Fatalf("wrong dedup merge: got %v, want ErrDedup", err)
				}
			}
			return
		}
		t.Skip("plan too degenerate to mutate")
	})
}
