package plan

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"
)

// Fingerprint returns a stable content hash of the compiled plan: the
// full instruction stream (levels, batches, refs, kinds), the output refs,
// and the input/worker shape. Two plans share a fingerprint exactly when
// replay would execute the identical schedule, so the hash is the cache
// key for derived artifacts — internal/shard keys its ship-once shard
// cache on it the way pytfhed keys its plan cache on program content. The
// hash is computed once and memoized; a Plan is immutable after Compile,
// so concurrent callers are safe.
func (p *Plan) Fingerprint() string {
	p.fpOnce.Do(func() {
		h := sha256.New()
		writeHashInt(h, int64(p.NumInputs))
		writeHashInt(h, int64(p.Workers))
		writeHashInt(h, int64(len(p.levels)))
		for _, lv := range p.levels {
			writeHashInt(h, int64(len(lv.Batches)))
			for _, instrs := range lv.Batches {
				writeHashInt(h, int64(len(instrs)))
				for _, ins := range instrs {
					h.Write(HashInstrBytes(ins))
				}
			}
		}
		writeHashInt(h, int64(len(p.outputs)))
		for _, ref := range p.outputs {
			writeHashInt(h, int64(ref))
		}
		p.fp = hex.EncodeToString(h.Sum(nil))
	})
	return p.fp
}

// HashInstrBytes renders one instruction into the canonical 19-byte layout
// shared by Plan.Fingerprint and internal/shard's manifest content hashes:
// Kind, Out/A/B as little-endian uint32, then Arity, TT, and C (zero for
// classic gates, so pre-LUT streams hash the same bytes per instruction
// with a constant suffix). Callers must treat the result as read-only; it
// aliases a per-call stack buffer escape.
func HashInstrBytes(ins Instr) []byte {
	var buf [19]byte
	buf[0] = byte(ins.Kind)
	binary.LittleEndian.PutUint32(buf[1:5], uint32(ins.Out))
	binary.LittleEndian.PutUint32(buf[5:9], uint32(ins.A))
	binary.LittleEndian.PutUint32(buf[9:13], uint32(ins.B))
	buf[13] = ins.Arity
	buf[14] = byte(ins.TT)
	binary.LittleEndian.PutUint32(buf[15:19], uint32(ins.C))
	return buf[:]
}

func writeHashInt(w io.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:]) // sha256.Write cannot fail
}
