package plan

import (
	"errors"
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Verification failure classes. Every defect a miscompiled plan can
// exhibit maps to exactly one sentinel, so mutation tests (and callers
// triaging a failed check) can classify with errors.Is.
var (
	// ErrShape: the plan is structurally malformed — ref out of range,
	// unknown gate kind, worker/level layout inconsistent with the
	// netlist, or a missing dedup map.
	ErrShape = errors.New("plan: verify: malformed plan")
	// ErrOrder: an instruction reads an arena slot no earlier level wrote
	// (its dependency was dropped or scheduled after it), or an output
	// names a never-written slot.
	ErrOrder = errors.New("plan: verify: dependency order violated")
	// ErrLifetime: two live values share an arena slot within one level —
	// a double write, or a slot read and rewritten in the same wavefront
	// (across workers this is a data race; within one worker it reads the
	// wrong generation).
	ErrLifetime = errors.New("plan: verify: arena slot lifetimes overlap")
	// ErrBatchAlias: within one batched kernel dispatch (runBatch groups
	// bootstrapped instructions up to the batch size, with free
	// instructions running inline between them), an instruction's input
	// slot aliases another member's output slot. The grouped dispatch
	// reorders effects, so such a plan reads values mid-rewrite.
	ErrBatchAlias = errors.New("plan: verify: batch aliases an input slot with an output slot")
	// ErrDedup: the compiler merged two netlist nodes that are not
	// functionally identical (caught by independent cone simulation, not
	// by trusting the compiler's own truth tables).
	ErrDedup = errors.New("plan: verify: dedup class not functionally identical")
	// ErrSemantics: the plan's outputs differ from the netlist's under
	// some input assignment.
	ErrSemantics = errors.New("plan: verify: plan output differs from netlist")
)

// VerifyReport summarizes a successful verification.
type VerifyReport struct {
	Instructions int // instructions across all levels
	Levels       int
	ArenaSlots   int
	MergedNodes  int // netlist gates folded onto an earlier node
	DedupClasses int // dedup classes with at least two members
	Vectors      int // input assignments simulated
	Exhaustive   bool
}

func (r *VerifyReport) String() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	return fmt.Sprintf("plan verified: %d instrs / %d levels / %d slots, %d merged nodes in %d classes, %d vectors (%s)",
		r.Instructions, r.Levels, r.ArenaSlots, r.MergedNodes, r.DedupClasses, r.Vectors, mode)
}

// Verify re-derives, from scratch, that the compiled plan is equivalent to
// its source netlist under sequential (unbatched) replay: structural
// shape, dependency ordering, arena-slot lifetime disjointness, the
// functional identity of every dedup merge, and input/output equivalence
// by bit-parallel simulation (exhaustive up to 12 inputs, randomized
// beyond). It trusts nothing the compiler computed beyond the plan itself
// and its node→exec map.
func Verify(nl *circuit.Netlist, p *Plan) (*VerifyReport, error) {
	return VerifyBatch(nl, p, 1)
}

// VerifyBatch is Verify under the batched replay schedule: it emulates
// runBatch's dispatch grouping for the given batch size and additionally
// rejects plans where a slot is both read and written within one kernel
// dispatch (ErrBatchAlias).
func VerifyBatch(nl *circuit.Netlist, p *Plan, batch int) (*VerifyReport, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: verify: source netlist invalid: %w", err)
	}
	if p == nil {
		return nil, fmt.Errorf("%w: nil plan", ErrShape)
	}
	if batch < 1 {
		batch = 1
	}
	np := p.NumInputs
	if np != nl.NumInputs {
		return nil, fmt.Errorf("%w: plan has %d inputs, netlist %d", ErrShape, np, nl.NumInputs)
	}
	if len(p.outputs) != len(nl.Outputs) {
		return nil, fmt.Errorf("%w: plan has %d outputs, netlist %d", ErrShape, len(p.outputs), len(nl.Outputs))
	}
	arena := p.stats.ArenaSlots
	nRefs := np + arena

	// The dedup map is the one compiler artifact the checks below consume
	// — and only as a *claim* to refute: every merge it records is
	// re-simulated independently.
	execOf := p.execOf
	if len(execOf) != nl.NumNodes()+1 {
		return nil, fmt.Errorf("%w: dedup map covers %d nodes, netlist has %d", ErrShape, len(execOf), nl.NumNodes()+1)
	}
	maxExec := int32(np + p.stats.ExecGates)
	for i := 1; i <= np; i++ {
		if execOf[i] != int32(i-1) {
			return nil, fmt.Errorf("%w: input %d mapped to exec node %d", ErrShape, i, execOf[i])
		}
	}
	for i := range nl.Gates {
		id := nl.GateID(i)
		if e := execOf[id]; e < 0 || e >= maxExec {
			return nil, fmt.Errorf("%w: gate node %d mapped to exec node %d of %d", ErrShape, id, e, maxExec)
		}
	}

	// Structural schedule scan: one forward pass over the levels tracking
	// which slots earlier levels wrote, plus a per-level collision table
	// classifying same-wavefront read/write overlap by worker and by
	// runBatch dispatch group.
	report := &VerifyReport{Levels: len(p.levels), ArenaSlots: arena}
	written := make([]bool, nRefs) // arena refs written by a strictly earlier level
	type writeSite struct {
		worker, group, idx int
	}
	for li, lv := range p.levels {
		writer := make(map[Ref]writeSite)
		groups := make([][]int, len(lv.Batches))
		for w, instrs := range lv.Batches {
			groups[w] = make([]int, len(instrs))
			g, pending := 0, 0
			for k, ins := range instrs {
				report.Instructions++
				if ins.IsLUT() {
					if ins.Arity < 2 || int(ins.Arity) > logic.MaxLUTArity {
						return nil, fmt.Errorf("%w: level %d worker %d instr %d has LUT arity %d", ErrShape, li, w, k, ins.Arity)
					}
					if ins.TT&^logic.TTMask(int(ins.Arity)) != 0 {
						return nil, fmt.Errorf("%w: level %d worker %d instr %d has table %#x wider than 2^%d", ErrShape, li, w, k, ins.TT, ins.Arity)
					}
					if !logic.LUTFeasible(int(ins.Arity), ins.TT) {
						return nil, fmt.Errorf("%w: level %d worker %d instr %d has LUT table %#x with no single-bootstrap plan", ErrShape, li, w, k, ins.TT)
					}
					if ins.Arity >= 3 && (ins.C < 0 || ins.C >= Ref(nRefs)) {
						return nil, fmt.Errorf("%w: level %d worker %d instr %d reads ref %d (valid range [0,%d))", ErrShape, li, w, k, ins.C, nRefs)
					}
				} else if ins.Kind >= logic.NumKinds {
					return nil, fmt.Errorf("%w: level %d worker %d instr %d has kind %d", ErrShape, li, w, k, ins.Kind)
				}
				if ins.Out < Ref(np) || ins.Out >= Ref(nRefs) {
					return nil, fmt.Errorf("%w: level %d worker %d instr %d writes ref %d (arena is [%d,%d))", ErrShape, li, w, k, ins.Out, np, nRefs)
				}
				if ins.A < 0 || ins.A >= Ref(nRefs) || ins.B < 0 || ins.B >= Ref(nRefs) {
					return nil, fmt.Errorf("%w: level %d worker %d instr %d reads refs %d,%d (valid range [0,%d))", ErrShape, li, w, k, ins.A, ins.B, nRefs)
				}
				// Dispatch-group emulation of runBatch: bootstrapped
				// instructions buffer into the open group and flush at the
				// batch size; free instructions run inline, interleaved
				// with (and therefore part of) the open group's step.
				groups[w][k] = g
				if batch > 1 {
					if ins.NeedsBootstrap() {
						if pending++; pending == batch {
							g, pending = g+1, 0
						}
					}
				} else {
					g++ // sequential: every instruction is its own step
				}
				if prev, dup := writer[ins.Out]; dup {
					return nil, fmt.Errorf("%w: level %d: ref %d written by worker %d instr %d and worker %d instr %d",
						ErrLifetime, li, ins.Out, prev.worker, prev.idx, w, k)
				}
				writer[ins.Out] = writeSite{worker: w, group: groups[w][k], idx: k}
			}
		}
		for w, instrs := range lv.Batches {
			for k, ins := range instrs {
				reads := [3]Ref{ins.A, ins.B, ins.A}
				nReads := 2
				if ins.Arity >= 3 {
					reads[2] = ins.C
					nReads = 3
				}
				for _, ref := range reads[:nReads] {
					if ref < Ref(np) {
						continue // caller-owned input, immutable during replay
					}
					if site, sameLevel := writer[ref]; sameLevel {
						if site.worker == w && site.group == groups[w][k] {
							return nil, fmt.Errorf("%w: level %d worker %d dispatch group %d: instr %d reads ref %d that instr %d writes",
								ErrBatchAlias, li, w, site.group, k, ref, site.idx)
						}
						return nil, fmt.Errorf("%w: level %d: ref %d read by worker %d instr %d while worker %d instr %d rewrites it",
							ErrLifetime, li, ref, w, k, site.worker, site.idx)
					}
					if !written[ref] {
						return nil, fmt.Errorf("%w: level %d worker %d instr %d reads ref %d before any level writes it",
							ErrOrder, li, w, k, ref)
					}
				}
			}
		}
		for ref := range writer {
			written[ref] = true
		}
	}

	for i, ref := range p.outputs {
		switch {
		case ref == ConstFalse || ref == ConstTrue:
		case ref < 0 || ref >= Ref(nRefs):
			return nil, fmt.Errorf("%w: output %d names ref %d (valid range [0,%d) or const)", ErrShape, i, ref, nRefs)
		case ref >= Ref(np) && !written[ref]:
			return nil, fmt.Errorf("%w: output %d reads ref %d that no level writes", ErrOrder, i, ref)
		}
	}

	// Dedup classes: every set of netlist nodes the compiler mapped onto
	// one exec node must agree under simulation. Inputs participate too —
	// a gate folded onto an input (COPY collapse) is checked against the
	// raw input column.
	classOf := make(map[int32][]circuit.NodeID)
	for i := 1; i <= np; i++ {
		classOf[execOf[i]] = append(classOf[execOf[i]], circuit.NodeID(i))
	}
	for i := range nl.Gates {
		id := nl.GateID(i)
		e := execOf[id]
		if len(classOf[e]) > 0 {
			report.MergedNodes++
		}
		classOf[e] = append(classOf[e], id)
	}
	var classes [][]circuit.NodeID
	for _, members := range classOf {
		if len(members) > 1 {
			classes = append(classes, members)
		}
	}
	report.DedupClasses = len(classes)

	// Bit-parallel simulation: 64 input assignments per word per round.
	// Up to 12 inputs every assignment is covered; beyond that, fixed
	// corner rounds plus deterministic random rounds.
	rounds, exhaustive := SimRounds(np)
	report.Exhaustive = exhaustive
	report.Vectors = rounds * 64
	rng := NewSimRNG()
	netWords := make([]uint64, nl.NumNodes()+1)
	planWords := make([]uint64, nRefs)
	inWords := make([]uint64, np)
	netAt := func(id circuit.NodeID) uint64 {
		switch id {
		case circuit.ConstFalse:
			return 0
		case circuit.ConstTrue:
			return ^uint64(0)
		}
		return netWords[id]
	}
	for r := 0; r < rounds; r++ {
		SimFill(inWords, r, report.Exhaustive, rng)
		for i := 0; i < np; i++ {
			netWords[i+1] = inWords[i]
			planWords[i] = inWords[i]
		}
		for i := range nl.Gates {
			g := &nl.Gates[i]
			if g.IsLUT() {
				netWords[nl.GateID(i)] = EvalWordTT(g.TT, int(g.Arity),
					netAt(g.A), netAt(g.B), netAt(g.C))
			} else {
				netWords[nl.GateID(i)] = EvalWord(g.Kind, netWords[g.A], netWords[g.B])
			}
		}
		for _, lv := range p.levels {
			for _, instrs := range lv.Batches {
				for _, ins := range instrs {
					if ins.IsLUT() {
						var c uint64
						if ins.Arity >= 3 {
							c = planWords[ins.C]
						}
						planWords[ins.Out] = EvalWordTT(ins.TT, int(ins.Arity), planWords[ins.A], planWords[ins.B], c)
					} else {
						planWords[ins.Out] = EvalWord(ins.Kind, planWords[ins.A], planWords[ins.B])
					}
				}
			}
		}
		for _, members := range classes {
			want := netAt(members[0])
			for _, id := range members[1:] {
				if netAt(id) != want {
					return nil, fmt.Errorf("%w: nodes %d and %d share exec node %d but differ on simulated assignments",
						ErrDedup, members[0], id, execOf[members[0]])
				}
			}
		}
		for i, ref := range p.outputs {
			var got uint64
			switch {
			case ref == ConstFalse:
				got = 0
			case ref == ConstTrue:
				got = ^uint64(0)
			default:
				got = planWords[ref]
			}
			if want := netAt(nl.Outputs[i]); got != want {
				return nil, fmt.Errorf("%w: output %d differs on simulated assignments (round %d)", ErrSemantics, i, r)
			}
		}
	}
	return report, nil
}

// EvalWordTT evaluates a k-input LUT over 64 packed boolean assignments by
// minterm masks (c is ignored at arity 2). Like EvalWord it is exported
// for internal/shard's decomposition verifier.
func EvalWordTT(tt logic.TT, arity int, a, b, c uint64) uint64 {
	words := [3]uint64{a, b, c}
	var out uint64
	for v := 0; v < 1<<arity; v++ {
		if !tt.Eval(uint8(v)) {
			continue
		}
		m := ^uint64(0)
		for i := 0; i < arity; i++ {
			if v>>(arity-1-i)&1 == 1 {
				m &= words[i]
			} else {
				m &= ^words[i]
			}
		}
		out |= m
	}
	return out
}

// EvalWord evaluates one gate over 64 packed boolean assignments by
// minterm masks. It is exported for internal/shard, whose decomposition
// verifier replays the same bit-parallel simulation over a sharded plan.
func EvalWord(k logic.Kind, a, b uint64) uint64 {
	var out uint64
	if k.EvalBit(0, 0)&1 == 1 {
		out |= ^a & ^b
	}
	if k.EvalBit(0, 1)&1 == 1 {
		out |= ^a & b
	}
	if k.EvalBit(1, 0)&1 == 1 {
		out |= a & ^b
	}
	if k.EvalBit(1, 1)&1 == 1 {
		out |= a & b
	}
	return out
}

// lanePatterns[i] assigns input i the i-th bit of the lane index, covering
// all 64 assignments of six inputs in one word.
var lanePatterns = func() [6]uint64 {
	var p [6]uint64
	for i := 0; i < 6; i++ {
		for lane := 0; lane < 64; lane++ {
			if lane>>i&1 == 1 {
				p[i] |= 1 << lane
			}
		}
	}
	return p
}()

// SimRounds sizes the bit-parallel simulation for a circuit with np
// inputs: the number of 64-lane rounds and whether those rounds enumerate
// every input assignment (np ≤ 12) or sample corners plus random words.
// Shared by Verify and internal/shard's decomposition verifier so both run
// the identical vector schedule.
func SimRounds(np int) (rounds int, exhaustive bool) {
	if np <= 12 {
		rounds = 1
		if np > 6 {
			rounds = 1 << (np - 6)
		}
		return rounds, true
	}
	return 10, false
}

// SimFill loads one round of input assignments: exhaustive rounds
// enumerate inputs 7.. through the round index; sampled rounds use the
// all-zero and all-one corners then deterministic random words.
func SimFill(in []uint64, round int, exhaustive bool, rng *SimRNG) {
	if exhaustive {
		for i := range in {
			if i < 6 {
				in[i] = lanePatterns[i]
			} else if round>>(i-6)&1 == 1 {
				in[i] = ^uint64(0)
			} else {
				in[i] = 0
			}
		}
		return
	}
	switch round {
	case 0:
		for i := range in {
			in[i] = 0
		}
	case 1:
		for i := range in {
			in[i] = ^uint64(0)
		}
	default:
		for i := range in {
			in[i] = rng.Next()
		}
	}
}

// SimRNG is a tiny deterministic xorshift generator: the verifiers must
// not depend on math/rand (their own analyzers police randomness hygiene)
// and need reproducible vectors.
type SimRNG struct{ x uint64 }

// NewSimRNG returns the generator in its fixed initial state.
func NewSimRNG() *SimRNG { return &SimRNG{x: 0x9E3779B97F4A7C15} }

// Next returns the next deterministic 64-bit word.
func (s *SimRNG) Next() uint64 {
	x := s.x
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	s.x = x
	return x * 0x2545F4914F6CDD1D
}
