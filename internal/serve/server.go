package serve

import (
	"context"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/cluster"
	"pytfhe/internal/core"
	"pytfhe/internal/params"
	"pytfhe/internal/plan"
	"pytfhe/internal/qos"
	"pytfhe/internal/telemetry"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/noise"
	"pytfhe/internal/wire"
)

// Config tunes the daemon. Zero values take the documented defaults.
type Config struct {
	// Workers is the shared executor's worker-goroutine count
	// (default runtime.NumCPU()).
	Workers int
	// MaxConcurrent caps evaluations running on the executor at once
	// (default 2×Workers). Requests past it wait in the admission queue.
	MaxConcurrent int
	// QueueCap bounds the admission queue: a request arriving when
	// MaxConcurrent evaluations run and QueueCap more wait is rejected
	// with ErrOverloaded instead of queueing without bound (default 64).
	QueueCap int
	// DefaultTimeout bounds each evaluation, queue wait included
	// (default 5m; ≤0 keeps the default). EvalRequest.TimeoutMs overrides
	// it per request.
	DefaultTimeout time.Duration
	// Batch is the bootstrap batch size: each executor worker drains up to
	// Batch ready bootstrapped gates — across concurrent tenant requests
	// under the same key — into one amortized blind-rotation kernel call,
	// and plan replays group instructions the same way (default 16; set 1
	// to disable batching).
	Batch int
	// NoiseParams selects the parameter set the registration-time static
	// noise-budget analysis (internal/tfhe/noise) runs against (default
	// params.Default128()). A program whose worst-case pre-bootstrap or
	// output noise falls under NoiseMinSigmas standard deviations of
	// margin is rejected with ErrRejected before any ciphertext is ever
	// submitted against it.
	NoiseParams *params.GateParams
	// NoiseMinSigmas is the sigma floor of the admission noise check
	// (default noise.DefaultMinSigmas).
	NoiseMinSigmas float64
	// DisableNoiseCheck admits programs without the static noise analysis.
	DisableNoiseCheck bool
	// LUT re-synthesizes every registered program through the
	// LUT-clustering pipeline (synth.OptimizeLUT via core.ApplyLUT) at
	// admission: fanout-free cones of classic gates collapse into k-input
	// programmable bootstraps, so each evaluation executes fewer
	// bootstraps for the same outputs. The registry key stays the
	// uploaded binary's content hash — clients address the program they
	// sent — while the cached program, its plan, its noise analysis, and
	// the shard exporter all see the multi-bit form. The rewrite is
	// exact, so results decrypt bit-identically to the LUT-off daemon's.
	LUT bool

	// ClusterListen, when non-empty, runs a cluster coordinator on this
	// address. pytfhe-worker processes join it at any time (late joiners
	// included); eligible evaluations are then dispatched as cached plan
	// shards across the pool, with only boundary ciphertexts on the wire.
	// The coordinator binds to the first session's cloud key — sessions
	// opened under a different key evaluate locally (documented limitation:
	// the worker pool holds one broadcast key at a time).
	ClusterListen string
	// ClusterWorkers is how many workers the first cluster-eligible
	// evaluation waits for before giving up on the pool (default 2).
	ClusterWorkers int
	// ClusterJoinWait bounds that first-evaluation wait (default 30s). If
	// the workers never arrive the failure is sticky and every evaluation
	// falls back to the local executor.
	ClusterJoinWait time.Duration

	// MetricsAddr, when non-empty, serves a Prometheus-text /metrics
	// endpoint on this address (port 0 picks a free port; see
	// Server.MetricsAddr for the bound address).
	MetricsAddr string
	// PlanCacheBytes caps the compiled-plan cache; past it the coldest
	// plans are evicted and transparently recompiled on next use
	// (0: unbounded — the pre-cache behavior).
	PlanCacheBytes int64
	// RuntimeCacheBytes caps the per-key replay-runner cache (engines +
	// arena); evicted runners are rebuilt on next use (0: unbounded).
	RuntimeCacheBytes int64
	// TenantMaxInFlight caps one tenant's concurrently admitted
	// evaluations; past it requests fail fast with qos.ErrQuotaExceeded
	// instead of consuming queue slots (0: unlimited). A tenant is a
	// cloud key (by content hash), not a connection.
	TenantMaxInFlight int
	// TenantMaxQueuedGates caps the total gate count of one tenant's
	// admitted evaluations (0: unlimited).
	TenantMaxQueuedGates int
	// TenantWeights maps a cloud-key hash prefix (hex) to a fair-share
	// scheduling weight. Sessions whose key hash matches a prefix get
	// that weight on the shared executor; everyone else gets 1.
	TenantWeights map[string]float64
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.NumCPU()
	}
	if c.MaxConcurrent < 1 {
		c.MaxConcurrent = 2 * c.Workers
	}
	if c.QueueCap < 1 {
		c.QueueCap = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 5 * time.Minute
	}
	if c.Batch < 1 {
		c.Batch = 16
	}
	if c.NoiseParams == nil {
		c.NoiseParams = params.Default128()
	}
	if c.NoiseMinSigmas <= 0 {
		c.NoiseMinSigmas = noise.DefaultMinSigmas
	}
	if c.ClusterWorkers < 1 {
		c.ClusterWorkers = 2
	}
	if c.ClusterJoinWait <= 0 {
		c.ClusterJoinWait = 30 * time.Second
	}
	return c
}

// latencyWindow is the per-program sliding window the latency quantiles
// are computed over.
const latencyWindow = 128

// programEntry is one registry slot: the compiled program, its evaluation
// hit count, and a latency window. The compiled execution plan itself
// lives in the server's byte-capped LRU (Server.planCache) under the
// program hash; the entry only coordinates who compiles it.
type programEntry struct {
	hash  string // content hash: the plan cache key
	prog  *core.Program
	noise ProgramNoise // registration-time static noise summary
	hits  int64        // atomic

	// planMu elects the compiling request. The first evaluation compiles
	// the plan (a PlanMiss) and holds the lock until it is stored in the
	// plan cache; contemporaries that fail the TryLock fall back to the
	// dynamic executor rather than queueing behind the compile.
	planMu  sync.Mutex
	planErr error // sticky compile failure: fall back forever

	latMu sync.Mutex
	lat   [latencyWindow]float64 // recent latencies, ms
	latN  int64                  // total recorded (ring position = latN % window)
}

// recordLatency appends one evaluation latency to the sliding window.
func (e *programEntry) recordLatency(ms float64) {
	e.latMu.Lock()
	e.lat[e.latN%latencyWindow] = ms
	e.latN++
	e.latMu.Unlock()
}

// latencyStats computes the window quantiles (zero Samples when no
// evaluation has completed yet).
func (e *programEntry) latencyStats() LatencyStats {
	e.latMu.Lock()
	n := int(e.latN)
	if n > latencyWindow {
		n = latencyWindow
	}
	window := make([]float64, n)
	copy(window, e.lat[:n])
	e.latMu.Unlock()
	if n == 0 {
		return LatencyStats{}
	}
	sort.Float64s(window)
	return LatencyStats{
		Samples: n,
		P50Ms:   window[(n-1)*50/100],
		P95Ms:   window[(n-1)*95/100],
	}
}

// planRunner is the per-cloud-key replay context: worker engines and a
// persistent arena runtime. One evaluation replays at a time per key
// (TryLock); contended requests use the shared dynamic executor instead.
type planRunner struct {
	mu      sync.Mutex
	engines []*gate.Engine
	rt      *plan.Runtime
}

// session is the per-connection evaluation context established by
// OpenSession: the shared-executor key handle and the key's content hash
// (the tenant identity: quota key, metric label, and the match against
// the cluster coordinator's bound key). The replay runner is looked up —
// and, after an eviction, rebuilt — per evaluation via runnerFor.
type session struct {
	handle  *backend.SharedKey
	keyHash string
}

// Server is the pytfhed daemon: program registry, session key cache,
// bounded admission queue, and the shared executor every request runs on.
type Server struct {
	cfg   Config
	exec  *backend.Shared
	ln    net.Listener
	start time.Time

	mu       sync.Mutex
	programs map[string]*programEntry
	keys     map[string]*backend.SharedKey // cloud-key hash → handle
	sessRefs map[string]int                // cloud-key hash → open sessions
	conns    map[net.Conn]struct{}

	// Byte-accounted caches (qos.LRU): compiled plans keyed by program
	// hash, replay runners keyed by cloud-key hash. Both previously grew
	// without bound for the daemon's lifetime.
	planCache *qos.LRU
	runtimes  *qos.LRU
	runnerMu  sync.Mutex // elects the builder of a missing runner

	quota *qos.Quota[string] // per-tenant admission quotas (nil: unlimited)

	reg        *telemetry.Registry
	met        *metrics
	metricsLn  net.Listener
	metricsSrv *http.Server

	slots    chan struct{} // MaxConcurrent evaluation slots
	queued   int32         // atomic: admitted requests (waiting + running)
	inflight int32         // atomic: requests holding an evaluation slot
	sessions uint64        // atomic: sessions opened since start
	evals    int64         // atomic: completed evaluations
	lutEvals int64         // atomic: logical LUT gates across completed evaluations
	rejected int64         // atomic: ErrOverloaded rejections
	quotaRej int64         // atomic: qos.ErrQuotaExceeded rejections
	draining int32         // atomic bool

	// Cluster dispatch (nil coord: disabled). The coordinator accepts
	// worker joins in the background from Start on; clusterRun serializes
	// sharded runs (one at a time — contended requests evaluate locally).
	coord      *cluster.Coordinator
	clusterRun sync.Mutex
	cmu        sync.Mutex // guards the three fields below
	clusterKey string     // cloud-key hash the pool is bound to ("" until first session)
	clusterUp  bool       // ClusterWorkers joined at least once
	clusterErr error      // sticky bind/join failure: local fallback forever

	clusterEvals     int64 // atomic: evaluations served by the worker pool
	clusterFallbacks int64 // atomic: cluster-eligible evals that ran locally

	planHits      int64 // atomic: evals that found a cached plan
	planMisses    int64 // atomic: evals that paid the plan compile
	planReplays   int64 // atomic: evals served by capture/replay
	planFallbacks int64 // atomic: evals served by the dynamic executor
	arenaHW       int64 // atomic max: peak replay-arena ciphertexts
	replayBatches int64 // atomic: batched kernel dispatches across replays
	replayBatched int64 // atomic: bootstraps those dispatches covered

	kickCh chan struct{}  // closed on forced shutdown to unblock slot waiters
	connWG sync.WaitGroup // connection handler goroutines
	evalWG sync.WaitGroup // evaluations in flight (response write included)
}

// New builds a server; call Start to begin listening.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:       cfg,
		exec:      backend.NewSharedBatch(cfg.Workers, cfg.Batch),
		start:     time.Now(),
		programs:  make(map[string]*programEntry),
		keys:      make(map[string]*backend.SharedKey),
		sessRefs:  make(map[string]int),
		conns:     make(map[net.Conn]struct{}),
		planCache: qos.NewLRU(cfg.PlanCacheBytes),
		runtimes:  qos.NewLRU(cfg.RuntimeCacheBytes),
		quota:     qos.NewQuota[string](cfg.TenantMaxInFlight, cfg.TenantMaxQueuedGates),
		reg:       telemetry.NewRegistry(),
		slots:     make(chan struct{}, cfg.MaxConcurrent),
		kickCh:    make(chan struct{}),
	}
	s.met = newMetrics(s.reg)
	s.reg.OnScrape(s.mirrorMetrics)
	return s
}

// Start listens on addr (e.g. "127.0.0.1:0") and serves connections in the
// background until Drain or Close. With Config.ClusterListen set it also
// brings up the cluster coordinator and starts accepting worker joins; the
// key broadcast happens when the first session binds the pool.
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	if s.cfg.ClusterListen != "" {
		coord, err := cluster.NewPendingCoordinator(s.cfg.ClusterListen)
		if err != nil {
			ln.Close()
			return fmt.Errorf("serve: cluster listen: %w", err)
		}
		s.coord = coord
		go coord.ServeJoins()
	}
	if s.cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			ln.Close()
			if s.coord != nil {
				_ = s.coord.Close()
			}
			return fmt.Errorf("serve: metrics listen: %w", err)
		}
		s.metricsLn = mln
		mux := http.NewServeMux()
		mux.Handle("/metrics", s.reg.Handler())
		s.metricsSrv = &http.Server{Handler: mux}
		go s.metricsSrv.Serve(mln)
	}
	s.connWG.Add(1)
	go s.acceptLoop()
	return nil
}

// MetricsAddr returns the bound /metrics listen address, or "" when the
// endpoint is disabled.
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return ""
	}
	return s.metricsLn.Addr().String()
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// ClusterAddr returns the coordinator's worker-join address, or "" when
// clustering is disabled.
func (s *Server) ClusterAddr() string {
	if s.coord == nil {
		return ""
	}
	return s.coord.Addr()
}

func (s *Server) acceptLoop() {
	defer s.connWG.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed: drain or shutdown
		}
		s.mu.Lock()
		if atomic.LoadInt32(&s.draining) != 0 {
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.connWG.Add(1)
		go s.handleConn(conn)
	}
}

func (s *Server) dropConn(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	conn.Close()
}

// handleConn serves one client connection: requests are processed in
// order, one session key per connection.
func (s *Server) handleConn(conn net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(conn)
	enc := gob.NewEncoder(conn)
	dec := gob.NewDecoder(conn)
	var sess *session
	defer func() {
		if sess != nil {
			s.closeSession(sess.keyHash)
		}
	}()
	for {
		var req Request
		if err := dec.Decode(&req); err != nil {
			return // connection closed or broken framing
		}
		var resp Response
		evalStarted := false
		switch {
		case req.Bye:
			return
		case req.Register != nil:
			resp = s.handleRegister(req.Register)
		case req.Open != nil:
			resp = s.handleOpen(req.Open, &sess)
		case req.Eval != nil:
			// The evalWG entry covers the response write too, so Drain
			// never closes a connection under a result in transit.
			if s.beginEval() {
				evalStarted = true
				resp = s.handleEval(sess, req.Eval)
			} else {
				resp = Response{Err: toWire(ErrDraining)}
			}
		case req.Stats != nil:
			resp = s.handleStats()
		default:
			resp = Response{Err: &WireError{Code: codeInternal, Msg: "empty request envelope"}}
		}
		err := enc.Encode(resp)
		if evalStarted {
			s.evalWG.Done()
		}
		if err != nil {
			return
		}
	}
}

// beginEval claims an evalWG entry unless the server is draining. The
// re-check after Add closes the race with Drain's flag flip.
func (s *Server) beginEval() bool {
	if atomic.LoadInt32(&s.draining) != 0 {
		return false
	}
	s.evalWG.Add(1)
	if atomic.LoadInt32(&s.draining) != 0 {
		s.evalWG.Done()
		return false
	}
	return true
}

func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// handleRegister admits a program binary into the registry: lint, strict
// load, static noise-budget analysis, cache under the content hash.
// Malformed or cyclic netlists — and netlists whose worst-case noise
// cannot keep the configured sigma margin under the server's parameter
// set — are rejected here, before any ciphertext is ever submitted
// against them.
func (s *Server) handleRegister(req *RegisterProgram) Response {
	hash := hashBytes(req.Binary)
	s.mu.Lock()
	entry, cached := s.programs[hash]
	s.mu.Unlock()
	if !cached {
		prog, err := core.LoadStrict(req.Binary)
		if err != nil {
			return Response{Err: toWire(fmt.Errorf("%w: %v", ErrRejected, err))}
		}
		if s.cfg.LUT {
			// The noise analysis below then runs on the clustered netlist,
			// so admission vets the form the daemon actually executes.
			if prog, err = core.ApplyLUT(prog); err != nil {
				return Response{Err: toWire(fmt.Errorf("%w: lut resynthesis: %v", ErrRejected, err))}
			}
		}
		pn, err := s.analyzeNoise(prog)
		if err != nil {
			return Response{Err: toWire(fmt.Errorf("%w: %v", ErrRejected, err))}
		}
		s.mu.Lock()
		if existing, ok := s.programs[hash]; ok {
			entry, cached = existing, true // lost a registration race
		} else {
			entry = &programEntry{hash: hash, prog: prog, noise: pn}
			s.programs[hash] = entry
		}
		s.mu.Unlock()
	}
	st := entry.prog.Stats
	return Response{Program: &ProgramInfo{
		Hash:         hash,
		Name:         entry.prog.Name,
		Cached:       cached,
		Inputs:       st.Inputs,
		Gates:        st.Gates,
		Bootstrapped: st.Bootstrapped,
		LUTs:         st.LUTs,
		Outputs:      st.Outputs,
		Depth:        st.Depth,
		Noise:        entry.noise,
	}}
}

// analyzeNoise runs the admission-time static noise-budget dataflow and
// returns the wire summary, or the rejection error for an over-budget (or
// unanalyzable) netlist. With the check disabled it reports an unchecked
// zero summary.
func (s *Server) analyzeNoise(prog *core.Program) (ProgramNoise, error) {
	if s.cfg.DisableNoiseCheck {
		return ProgramNoise{}, nil
	}
	rep, err := noise.AnalyzeNetlist(prog.Netlist, s.cfg.NoiseParams, s.cfg.NoiseMinSigmas)
	if err != nil {
		return ProgramNoise{}, err
	}
	if err := rep.Err(); err != nil {
		return ProgramNoise{}, err
	}
	worst := rep.MaxNoise.Sigmas
	if rep.Bootstrapped == 0 || rep.WorstOutputSigmas < worst {
		worst = rep.WorstOutputSigmas
	}
	return ProgramNoise{
		Checked:      true,
		Params:       rep.Params,
		HeadroomBits: rep.HeadroomBits,
		WorstSigmas:  worst,
		FailureProb:  rep.CircuitFailureProb,
	}, nil
}

// handleOpen registers the session's cloud key with the shared executor.
// Identical keys (by content hash) share one executor handle and one
// replay runner, so N sessions of the same tenant cost one engine set,
// not N. The server refcounts open sessions per key hash; the last close
// releases the key's executor engines and replay runner (closeSession).
func (s *Server) handleOpen(req *OpenSession, sess **session) Response {
	if req.Key == nil {
		return Response{Err: &WireError{Code: codeInternal, Msg: "open session carried no cloud key"}}
	}
	if err := req.Key.Params.Validate(); err != nil {
		return Response{Err: &WireError{Code: codeInternal, Msg: fmt.Sprintf("bad cloud key: %v", err)}}
	}
	keyHash, err := hashKey(req.Key)
	if err != nil {
		return Response{Err: &WireError{Code: codeInternal, Msg: err.Error()}}
	}
	// The ref increment shares the critical section with the handle
	// lookup so a concurrent closeSession of the same key cannot release
	// the handle between our lookup and our claim on it.
	s.mu.Lock()
	handle, shared := s.keys[keyHash]
	if shared {
		s.sessRefs[keyHash]++
	}
	s.mu.Unlock()
	if !shared {
		h, err := s.exec.RegisterKey(req.Key)
		if err != nil {
			return Response{Err: toWire(err)}
		}
		s.mu.Lock()
		if existing, ok := s.keys[keyHash]; ok {
			handle, shared = existing, true // lost an open race; h stays unused
		} else {
			handle = h
			s.keys[keyHash] = h
		}
		s.sessRefs[keyHash]++
		s.mu.Unlock()
	}
	for prefix, w := range s.cfg.TenantWeights {
		if strings.HasPrefix(keyHash, prefix) {
			s.exec.SetTenantWeight(handle, w)
		}
	}
	if s.coord != nil {
		s.bindCluster(keyHash, req.Key)
	}
	// A re-open on the same connection replaces the session: drop the old
	// key's ref or it would leak until the connection closes.
	if *sess != nil {
		s.closeSession((*sess).keyHash)
	}
	*sess = &session{handle: handle, keyHash: keyHash}
	id := atomic.AddUint64(&s.sessions, 1)
	return Response{Session: &SessionInfo{ID: id, KeyShared: shared}}
}

// closeSession drops one session's claim on its cloud key. The last
// session out releases the key's worker engines on the shared executor
// and removes its replay runner — counted as a cache eviction, because
// that is what it is: the cached per-key state is gone and the next
// session under the same key rebuilds it.
func (s *Server) closeSession(keyHash string) {
	s.mu.Lock()
	n := s.sessRefs[keyHash] - 1
	if n > 0 {
		s.sessRefs[keyHash] = n
		s.mu.Unlock()
		return
	}
	delete(s.sessRefs, keyHash)
	handle := s.keys[keyHash]
	delete(s.keys, keyHash)
	s.mu.Unlock()
	if handle != nil {
		s.exec.ReleaseKey(handle)
	}
	s.runtimes.Remove(keyHash)
}

// runnerFor returns the session key's replay runner, rebuilding it when
// the runtime cache evicted it (or no evaluation under this key replayed
// yet). runnerMu elects one builder; losers of the race wait and share.
func (s *Server) runnerFor(sess *session) *planRunner {
	if v, ok := s.runtimes.Get(sess.keyHash); ok {
		return v.(*planRunner)
	}
	s.runnerMu.Lock()
	defer s.runnerMu.Unlock()
	if v, ok := s.runtimes.Get(sess.keyHash); ok {
		return v.(*planRunner)
	}
	ck := sess.handle.Params()
	runner := &planRunner{
		engines: make([]*gate.Engine, s.cfg.Workers),
		rt:      plan.NewRuntime(ck.Params.LWEDimension),
	}
	for i := range runner.engines {
		runner.engines[i] = gate.NewEngine(ck)
	}
	s.runtimes.Add(sess.keyHash, runner, runnerSizeBytes(ck.Params.LWEDimension, s.cfg.Workers, 0))
	return runner
}

// runnerSizeBytes is the accounting estimate for one replay runner:
// per-worker engine scratch plus the arena's high-water ciphertexts at
// the key's LWE dimension. Like plan.SizeBytes it is an estimate for the
// byte-capped cache, not a heap measurement.
func runnerSizeBytes(dim, workers, highWater int) int64 {
	sample := int64(dim)*4 + 64          // torus coefficients + headers
	const engineScratch = int64(1) << 14 // scratch samples + batch buffers
	return int64(workers)*engineScratch + int64(highWater)*sample + 512
}

// bindCluster broadcasts the first session's cloud key to the worker pool.
// Later sessions with the same key share the binding; sessions with a
// different key are simply not eligible for cluster dispatch (the check in
// evaluateCluster compares hashes), so they evaluate locally.
func (s *Server) bindCluster(keyHash string, ck *boot.CloudKey) {
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if s.clusterErr != nil || s.clusterKey != "" {
		return
	}
	if err := s.coord.SetKey(ck); err != nil {
		s.clusterErr = fmt.Errorf("serve: cluster key broadcast: %w", err)
		return
	}
	s.clusterKey = keyHash
}

// hashKey content-addresses a cloud key; the hash doubles as the cluster
// handshake's key check, so the streaming logic lives in wire.KeyHash.
func hashKey(ck *boot.CloudKey) (string, error) {
	return wire.KeyHash(ck)
}

// handleEval wraps the evaluation path with telemetry: every request is
// counted by tenant and outcome (the wire error code), and successful
// latencies feed the per-tenant SLO histogram.
func (s *Server) handleEval(sess *session, req *EvalRequest) Response {
	tenant := "none"
	if sess != nil {
		tenant = tenantLabel(sess.keyHash)
	}
	start := time.Now()
	resp := s.doEval(sess, req)
	s.met.observeRequest(tenant, resp, float64(time.Since(start).Nanoseconds())/1e6)
	return resp
}

// doEval is the admission-controlled evaluation path: per-tenant quota,
// bounded queue, slot acquisition with deadline, then either a plan
// replay (fast path) or the shared executor.
func (s *Server) doEval(sess *session, req *EvalRequest) Response {
	if sess == nil {
		return Response{Err: toWire(ErrNoSession)}
	}
	s.mu.Lock()
	entry := s.programs[req.ProgramHash]
	s.mu.Unlock()
	if entry == nil {
		return Response{Err: toWire(fmt.Errorf("%w: %.16s…", ErrUnknownProgram, req.ProgramHash))}
	}
	prog := entry.prog
	if len(req.Inputs) != prog.Stats.Inputs {
		return Response{Err: &WireError{Code: codeInternal,
			Msg: fmt.Sprintf("program %s takes %d inputs, got %d", prog.Name, prog.Stats.Inputs, len(req.Inputs))}}
	}

	// Per-tenant quota: a tenant over its in-flight or gate budget fails
	// fast before consuming a queue slot, so one tenant's burst cannot
	// occupy the shared admission queue.
	if err := s.quota.Acquire(sess.keyHash, prog.Stats.Gates); err != nil {
		atomic.AddInt64(&s.quotaRej, 1)
		return Response{Err: toWire(err)}
	}
	defer s.quota.Release(sess.keyHash, prog.Stats.Gates)

	// Admission: the queue is bounded at MaxConcurrent running plus
	// QueueCap waiting; past that the request is shed immediately.
	if n := atomic.AddInt32(&s.queued, 1); int(n) > s.cfg.MaxConcurrent+s.cfg.QueueCap {
		atomic.AddInt32(&s.queued, -1)
		atomic.AddInt64(&s.rejected, 1)
		return Response{Err: toWire(ErrOverloaded)}
	}
	defer atomic.AddInt32(&s.queued, -1)

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	waitStart := time.Now()
	select {
	case s.slots <- struct{}{}:
		s.met.queueWait.Observe(float64(time.Since(waitStart).Nanoseconds()) / 1e6)
	case <-ctx.Done():
		return Response{Err: toWire(fmt.Errorf("%w after %v in queue", ErrTimeout, timeout))}
	case <-s.kickCh:
		return Response{Err: toWire(ErrDraining)}
	}
	atomic.AddInt32(&s.inflight, 1)
	defer func() {
		atomic.AddInt32(&s.inflight, -1)
		<-s.slots
	}()

	start := time.Now()
	outs, err := s.evaluate(ctx, sess, entry, req.Inputs)
	if err != nil {
		if ctx.Err() != nil {
			return Response{Err: toWire(fmt.Errorf("%w after %v", ErrTimeout, timeout))}
		}
		if errors.Is(err, backend.ErrExecutorClosed) {
			return Response{Err: toWire(ErrDraining)}
		}
		return Response{Err: toWire(err)}
	}
	elapsed := time.Since(start)
	entry.recordLatency(float64(elapsed.Nanoseconds()) / 1e6)
	atomic.AddInt64(&entry.hits, 1)
	atomic.AddInt64(&s.evals, 1)
	if n := prog.Stats.LUTs; n > 0 {
		atomic.AddInt64(&s.lutEvals, int64(n))
	}
	return Response{Eval: &EvalResult{
		Outputs:   outs,
		ElapsedMs: elapsed.Milliseconds(),
	}}
}

// evaluate runs one admitted request: the replay fast path when the
// program's plan and the key's runner are available, the shared dynamic
// executor otherwise. The plan cache is the server's byte-capped LRU
// keyed by program content hash: the first request pays the compile — a
// PlanMiss, overlapped with its own execution via the level stream — and
// later requests are PlanHits that replay with zero scheduling work. An
// evicted plan is simply a future PlanMiss: the next request recompiles
// and re-caches it, transparently.
func (s *Server) evaluate(ctx context.Context, sess *session, entry *programEntry, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if outs, ok := s.evaluateCluster(sess, entry, inputs); ok {
		return outs, nil
	}
	var cached *plan.Plan
	var stream *plan.Stream
	if v, ok := s.planCache.Get(entry.hash); ok {
		cached = v.(*plan.Plan)
		atomic.AddInt64(&s.planHits, 1)
	} else if entry.planMu.TryLock() {
		switch {
		case entry.planErr != nil:
			entry.planMu.Unlock()
		default:
			if v, ok := s.planCache.Get(entry.hash); ok {
				// A contemporary stored the plan between our miss and the
				// lock: use it instead of compiling twice.
				cached = v.(*plan.Plan)
				entry.planMu.Unlock()
				atomic.AddInt64(&s.planHits, 1)
				break
			}
			// We are the compiling request: keep planMu until the finished
			// plan (or the sticky error) is stored so contemporaries fall
			// back instead of compiling twice.
			atomic.AddInt64(&s.planMisses, 1)
			st, err := plan.CompileStream(entry.prog.Netlist, s.cfg.Workers)
			if err != nil {
				entry.planErr = err
				entry.planMu.Unlock()
			} else {
				stream = st
				defer func() {
					p := stream.Plan()
					s.planCache.Add(entry.hash, p, p.SizeBytes())
					entry.planMu.Unlock()
				}()
			}
		}
	}

	if cached != nil || stream != nil {
		// Only the replay path needs the runner; the dynamic fallback
		// must not pay (or cache) an engine set it will not use.
		runner := s.runnerFor(sess)
		if runner.mu.TryLock() {
			defer runner.mu.Unlock()
			// A forced Drain must be able to abort a replay just like it
			// aborts shared-executor submissions.
			rctx, cancel := context.WithCancel(ctx)
			defer cancel()
			stop := make(chan struct{})
			defer close(stop)
			go func() {
				select {
				case <-s.kickCh:
					cancel()
				case <-stop:
				}
			}()
			atomic.AddInt64(&s.planReplays, 1)
			var outs []*lwe.Sample
			var err error
			if stream != nil {
				outs, err = plan.ReplayStreamBatch(rctx, stream, runner.engines, inputs, runner.rt, s.cfg.Batch)
			} else {
				outs, err = plan.ReplayBatch(rctx, cached, runner.engines, inputs, runner.rt, s.cfg.Batch)
			}
			hw := int64(runner.rt.HighWater())
			for {
				cur := atomic.LoadInt64(&s.arenaHW)
				if hw <= cur || atomic.CompareAndSwapInt64(&s.arenaHW, cur, hw) {
					break
				}
			}
			// Harvest this replay's batch occupancy while we still hold the
			// runner (the runtime's counters reset on its next replay), and
			// re-account the arena growth in the byte-capped runtime cache.
			rb, rbb := runner.rt.BatchOccupancy()
			atomic.AddInt64(&s.replayBatches, rb)
			atomic.AddInt64(&s.replayBatched, rbb)
			dim := sess.handle.Params().Params.LWEDimension
			s.runtimes.Update(sess.keyHash, runnerSizeBytes(dim, s.cfg.Workers, int(hw)))
			return outs, err
		}
	}

	// Dynamic fallback: runner contended, plan unavailable, or compile
	// failed. The stream (if we hold one) still finishes in the background
	// and is cached by the deferred store above.
	atomic.AddInt64(&s.planFallbacks, 1)
	return s.exec.Submit(ctx, sess.handle, entry.prog.Netlist, inputs)
}

// evaluateCluster tries to dispatch one evaluation as plan shards across
// the worker pool. ok=false means "evaluate locally": clustering disabled,
// the pool is bound to a different key, another sharded run owns the
// workers, the pool never came up, or this run lost every worker mid-way.
// Run failures are not sticky — ServeJoins keeps admitting replacement
// workers, so the next evaluation probes the pool again.
func (s *Server) evaluateCluster(sess *session, entry *programEntry, inputs []*lwe.Sample) ([]*lwe.Sample, bool) {
	if s.coord == nil {
		return nil, false
	}
	s.cmu.Lock()
	eligible := s.clusterErr == nil && s.clusterKey != "" && s.clusterKey == sess.keyHash
	s.cmu.Unlock()
	if !eligible {
		return nil, false
	}
	if !s.clusterRun.TryLock() {
		atomic.AddInt64(&s.clusterFallbacks, 1)
		return nil, false
	}
	defer s.clusterRun.Unlock()
	if !s.clusterWorkersUp() {
		atomic.AddInt64(&s.clusterFallbacks, 1)
		return nil, false
	}
	outs, err := s.coord.RunSharded(entry.prog.Netlist, inputs)
	if err != nil {
		atomic.AddInt64(&s.clusterFallbacks, 1)
		return nil, false
	}
	atomic.AddInt64(&s.clusterEvals, 1)
	return outs, true
}

// clusterWorkersUp waits (once, bounded by ClusterJoinWait) for the
// configured worker count to join. A pool that never comes up is a sticky
// failure; a pool that came up once is trusted from then on — RunSharded
// itself tolerates losses down to a single surviving worker.
func (s *Server) clusterWorkersUp() bool {
	s.cmu.Lock()
	up, failed := s.clusterUp, s.clusterErr != nil
	s.cmu.Unlock()
	if up {
		return true
	}
	if failed {
		return false
	}
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.ClusterJoinWait)
	defer cancel()
	err := s.coord.WaitWorkers(ctx, s.cfg.ClusterWorkers)
	s.cmu.Lock()
	defer s.cmu.Unlock()
	if err != nil {
		s.clusterErr = fmt.Errorf("serve: cluster pool never came up: %w", err)
		return false
	}
	s.clusterUp = true
	return true
}

func (s *Server) handleStats() Response {
	return Response{Stats: s.statsSnapshot()}
}

// statsSnapshot assembles the full statistics reply. It backs both the
// Stats RPC and the /metrics scrape mirror, so the wire struct and the
// exported series can never drift apart.
func (s *Server) statsSnapshot() *StatsReply {
	ex := s.exec.Stats()
	labels := s.tenantLabels()
	s.mu.Lock()
	per := make(map[string]int64, len(s.programs))
	lat := make(map[string]LatencyStats, len(s.programs))
	noi := make(map[string]ProgramNoise, len(s.programs))
	for hash, entry := range s.programs {
		per[hash] = atomic.LoadInt64(&entry.hits)
		lat[hash] = entry.latencyStats()
		noi[hash] = entry.noise
	}
	nProgs := len(s.programs)
	s.mu.Unlock()
	picks := make(map[string]int64, len(ex.TenantPicks))
	for id, n := range ex.TenantPicks {
		picks[labelForID(labels, id)] = n
	}
	tq := make(map[string]int, len(ex.TenantQueued))
	for id, n := range ex.TenantQueued {
		tq[labelForID(labels, id)] = n
	}
	// Batch occupancy: the shared executor's cross-request batches plus
	// the within-replay batches harvested from the plan runners.
	batches := ex.Batches + atomic.LoadInt64(&s.replayBatches)
	batched := ex.BatchedBootstraps + atomic.LoadInt64(&s.replayBatched)
	var avgFill float64
	if batches > 0 {
		avgFill = float64(batched) / float64(batches)
	}
	queued := atomic.LoadInt32(&s.queued)
	inflight := atomic.LoadInt32(&s.inflight)
	depth := int(queued - inflight)
	if depth < 0 {
		depth = 0
	}
	var cs *ClusterStats
	if s.coord != nil {
		tot := s.coord.Totals()
		cs = &ClusterStats{
			Workers:       s.coord.WorkerCount(),
			Evals:         atomic.LoadInt64(&s.clusterEvals),
			Fallbacks:     atomic.LoadInt64(&s.clusterFallbacks),
			ShardRuns:     tot.ShardRuns,
			ShardHits:     tot.ShardHits,
			ShardMisses:   tot.ShardMisses,
			ShardReships:  tot.ShardReships,
			WireBytesSent: tot.WireBytesSent,
			WireBytesRecv: tot.WireBytesRecv,
			BoundaryBytes: tot.BoundaryBytes,
			WorkersLost:   tot.WorkersLost,
		}
	}
	return &StatsReply{
		QueueDepth:       depth,
		InFlight:         int(inflight),
		Sessions:         atomic.LoadUint64(&s.sessions),
		Programs:         nProgs,
		Evaluations:      atomic.LoadInt64(&s.evals),
		Rejected:         atomic.LoadInt64(&s.rejected),
		QuotaRejected:    atomic.LoadInt64(&s.quotaRej),
		KeysReleased:     ex.KeysReleased,
		TenantPicks:      picks,
		TenantQueued:     tq,
		PlanCache:        cacheStats(s.planCache.Stats()),
		RuntimeCache:     cacheStats(s.runtimes.Stats()),
		GatesPerSec:      ex.GatesPerSec(),
		BootstrapsPerSec: ex.BootstrapsPerSec(),
		UptimeMs:         time.Since(s.start).Milliseconds(),
		PerProgram:       per,
		ExecutorGates:    ex.Gates,
		ExecutorLUTs:     ex.LUTs,
		LUTsEvaluated:    atomic.LoadInt64(&s.lutEvals),

		PlanHits:          atomic.LoadInt64(&s.planHits),
		PlanMisses:        atomic.LoadInt64(&s.planMisses),
		PlanReplays:       atomic.LoadInt64(&s.planReplays),
		PlanFallbacks:     atomic.LoadInt64(&s.planFallbacks),
		ArenaHighWater:    int(atomic.LoadInt64(&s.arenaHW)),
		PerProgramLatency: lat,
		ProgramNoise:      noi,

		BatchSize:         ex.BatchSize,
		Batches:           batches,
		BatchedBootstraps: batched,
		CrossRunBatches:   ex.CrossRunBatches,
		AvgBatchFill:      avgFill,

		Cluster: cs,
	}
}

// cacheStats converts a qos.LRU snapshot to its wire form.
func cacheStats(st qos.LRUStats) CacheStats {
	return CacheStats{
		Entries:   st.Entries,
		Bytes:     st.Bytes,
		CapBytes:  st.CapBytes,
		Hits:      st.Hits,
		Misses:    st.Misses,
		Evictions: st.Evictions,
	}
}

// Drain gracefully shuts the server down: stop accepting connections,
// reject new evaluations with ErrDraining, wait for in-flight evaluations
// (responses included) to finish — or for ctx to expire — then close all
// connections and the executor. It returns ctx.Err() when the deadline
// cut the wait short, nil on a clean drain.
func (s *Server) Drain(ctx context.Context) error {
	if !atomic.CompareAndSwapInt32(&s.draining, 0, 1) {
		s.connWG.Wait()
		return nil
	}
	if s.ln != nil {
		s.ln.Close()
	}
	done := make(chan struct{})
	go func() {
		s.evalWG.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		// Forced shutdown: kick requests still waiting for a slot and
		// abort in-flight executor submissions, or the connection
		// handlers below could block for the full request timeout.
		err = ctx.Err()
		close(s.kickCh)
		s.exec.Close()
	}
	// Dismiss the worker pool: on a clean drain no sharded run is in
	// flight; on a forced one closing the worker links aborts it and the
	// request falls back to the (also closing) executor.
	if s.coord != nil {
		_ = s.coord.Close()
	}
	s.mu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	s.connWG.Wait()
	s.exec.Close()
	if s.metricsSrv != nil {
		_ = s.metricsSrv.Close() // last: metrics stay scrapeable through the drain
	}
	return err
}

// Close shuts down immediately: in-flight evaluations are aborted by the
// executor closing under them.
func (s *Server) Close() error {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := s.Drain(ctx)
	if err == context.Canceled {
		return nil
	}
	return err
}

// Executor exposes the shared executor (tests and the daemon's log line).
func (s *Server) Executor() *backend.Shared { return s.exec }
