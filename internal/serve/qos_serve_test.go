package serve

import (
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"pytfhe/internal/qos"
)

// evalOnce registers prog on a fresh connection, opens kp's session, and
// runs one evaluation, returning the decrypted result.
func evalOnce(t *testing.T, srv *Server, kpIdx int, width int, a, b uint64) uint64 {
	t.Helper()
	kp := tenantKeys(t)[kpIdx]
	prog := adderProg(t, width)
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	outs, err := cl.Evaluate(info.Hash, kp.EncryptBits(append(bitsOf(a, width), bitsOf(b, width)...)))
	if err != nil {
		t.Fatal(err)
	}
	return uintOf(kp.DecryptBits(outs))
}

// TestServePlanCacheEviction pins the byte-capped plan cache: with a cap
// that holds roughly one compiled plan, registering and evaluating
// several programs stays under the cap, evicts the cold plans, and an
// evicted program still evaluates correctly (transparent recompile).
func TestServePlanCacheEviction(t *testing.T) {
	// An adder plan is ~1 KiB accounted; cap the cache below the sum of
	// the three widths below so later compiles must evict.
	srv := startServer(t, Config{Workers: 1, PlanCacheBytes: 2 << 10})

	for i, width := range []int{3, 4, 5} {
		if got := evalOnce(t, srv, 0, width, 2, 3); got != 5 {
			t.Fatalf("program %d: 2+3 = %d", i, got)
		}
	}
	st := srv.statsSnapshot()
	if st.PlanCache.Bytes > st.PlanCache.CapBytes {
		t.Fatalf("plan cache over cap: %+v", st.PlanCache)
	}
	if st.PlanCache.Evictions == 0 {
		t.Fatalf("no evictions despite %d compiles into a %d-byte cap: %+v",
			st.PlanMisses, st.PlanCache.CapBytes, st.PlanCache)
	}
	misses := st.PlanMisses

	// The width-3 plan was evicted long ago; evaluating it again must
	// recompile (a fresh PlanMiss) and still be correct.
	if got := evalOnce(t, srv, 0, 3, 3, 4); got != 7 {
		t.Fatalf("re-eval after eviction: 3+4 = %d", got)
	}
	if st2 := srv.statsSnapshot(); st2.PlanMisses <= misses {
		t.Fatalf("evicted plan did not recompile: misses %d -> %d", misses, st2.PlanMisses)
	}
}

// TestServeKeyLifecycleRelease pins the session-refcounted key release:
// while any session under a key is open the key's executor engines and
// replay runner stay cached; when the last one closes they are released,
// the release is counted as a runtime-cache eviction, and a later
// session under the same key transparently rebuilds everything.
func TestServeKeyLifecycleRelease(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 1})

	open := func() *Client {
		cl, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := cl.RegisterProgram(prog.Binary); err != nil {
			t.Fatal(err)
		}
		if _, err := cl.OpenSession(kp.Cloud); err != nil {
			t.Fatal(err)
		}
		return cl
	}
	hash := hashBytes(prog.Binary)

	cl1, cl2 := open(), open()
	if _, err := cl1.Evaluate(hash, kp.EncryptBits(bitsOf(0x35, 8))); err != nil {
		t.Fatal(err)
	}
	if st := srv.statsSnapshot(); st.RuntimeCache.Entries != 1 {
		t.Fatalf("runtime cache entries = %d after first replay, want 1", st.RuntimeCache.Entries)
	}

	// First session closes: the key is still claimed by cl2, so nothing
	// is released and cl2 keeps evaluating.
	cl1.Close()
	deadline := time.Now().Add(5 * time.Second)
	if _, err := cl2.Evaluate(hash, kp.EncryptBits(bitsOf(0x11, 8))); err != nil {
		t.Fatal(err)
	}
	if st := srv.statsSnapshot(); st.KeysReleased != 0 {
		t.Fatalf("key released while a session still holds it: %+v", st)
	}

	// Last session closes: release must land (asynchronously).
	cl2.Close()
	for {
		st := srv.statsSnapshot()
		if st.KeysReleased == 1 && st.RuntimeCache.Entries == 0 && st.RuntimeCache.Evictions >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("lifecycle release never landed: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The same key opens again and everything rebuilds transparently.
	cl3 := open()
	defer cl3.Close()
	outs, err := cl3.Evaluate(hash, kp.EncryptBits(bitsOf(0x35, 8)))
	if err != nil {
		t.Fatalf("eval after lifecycle release: %v", err)
	}
	if got := uintOf(kp.DecryptBits(outs)); got != 0x3+0x5 {
		t.Fatalf("post-release eval = %#x", got)
	}
}

// TestServeTenantQuota pins per-tenant admission quotas end to end: the
// typed error crosses the wire, the gate budget rejects deterministically,
// and under concurrency one tenant's in-flight cap does not throttle the
// other tenant.
func TestServeTenantQuota(t *testing.T) {
	kps := tenantKeys(t)
	prog := adder4Prog(t)

	// Gate budget: the adder has more than 3 gates, so every evaluation
	// of it is over budget — rejected with the typed error, no slot used.
	srv := startServer(t, Config{Workers: 1, TenantMaxQueuedGates: 3})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kps[0].Cloud); err != nil {
		t.Fatal(err)
	}
	_, err = cl.Evaluate(info.Hash, kps[0].EncryptBits(bitsOf(0, 8)))
	if !errors.Is(err, ErrQuotaExceeded) || !errors.Is(err, qos.ErrQuotaExceeded) {
		t.Fatalf("gate-budget overflow: err = %v, want ErrQuotaExceeded", err)
	}
	if st := srv.statsSnapshot(); st.QuotaRejected != 1 {
		t.Fatalf("QuotaRejected = %d, want 1", st.QuotaRejected)
	}

	// In-flight cap: tenant 0 runs two connections against a cap of one
	// concurrent evaluation; overlap must produce a quota rejection on
	// tenant 0 while tenant 1 keeps evaluating untouched.
	srv2 := startServer(t, Config{Workers: 1, MaxConcurrent: 2, TenantMaxInFlight: 1})
	dial := func(kpIdx int) *Client {
		c, err := Dial(srv2.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.RegisterProgram(prog.Binary); err != nil {
			t.Fatal(err)
		}
		if _, err := c.OpenSession(kps[kpIdx].Cloud); err != nil {
			t.Fatal(err)
		}
		return c
	}
	a1, a2, b1 := dial(0), dial(0), dial(1)
	defer a1.Close()
	defer a2.Close()
	defer b1.Close()

	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Tenant 0's first connection keeps an evaluation in flight;
			// quota rejections here are fine too (both conns share the cap).
			_, err := a1.Evaluate(info.Hash, kps[0].EncryptBits(bitsOf(0x21, 8)))
			if err != nil && !errors.Is(err, ErrQuotaExceeded) {
				return
			}
		}
	}()
	sawQuota := false
	deadline := time.Now().Add(20 * time.Second)
	for !sawQuota && time.Now().Before(deadline) {
		if _, err := a2.Evaluate(info.Hash, kps[0].EncryptBits(bitsOf(0x21, 8))); errors.Is(err, ErrQuotaExceeded) {
			sawQuota = true
		} else if err != nil {
			t.Fatalf("tenant 0: %v", err)
		}
		// Tenant 1 is never throttled by tenant 0's cap.
		if _, err := b1.Evaluate(info.Hash, kps[1].EncryptBits(bitsOf(0x21, 8))); err != nil {
			t.Fatalf("tenant 1 throttled: %v", err)
		}
	}
	close(stop)
	if !sawQuota {
		t.Fatal("tenant 0 never hit its in-flight cap despite concurrent connections")
	}
}

// TestServeMetricsEndpoint drives the daemon with the /metrics listener
// on and checks the exposition end to end: the endpoint serves the
// Prometheus text format, the key series exist, and they move as
// requests are served.
func TestServeMetricsEndpoint(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 1, MetricsAddr: "127.0.0.1:0"})
	if srv.MetricsAddr() == "" {
		t.Fatal("metrics listener not bound")
	}

	scrape := func() string {
		t.Helper()
		resp, err := http.Get("http://" + srv.MetricsAddr() + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Fatalf("content type %q", ct)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}

	// Before any traffic: the endpoint serves, and unlabeled families are
	// present with zero values.
	first := scrape()
	for _, want := range []string{
		"# TYPE pytfhed_evaluations_total counter",
		"# TYPE pytfhed_queue_depth gauge",
		"pytfhed_evaluations_total 0",
		`pytfhed_cache_bytes{cache="plan"}`,
		`pytfhed_cache_bytes{cache="runtime"}`,
	} {
		if !strings.Contains(first, want) {
			t.Fatalf("scrape missing %q:\n%s", want, first)
		}
	}

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := cl.Evaluate(info.Hash, kp.EncryptBits(bitsOf(0x53, 8))); err != nil {
			t.Fatal(err)
		}
	}

	keyHash, err := hashKey(kp.Cloud)
	if err != nil {
		t.Fatal(err)
	}
	tenant := tenantLabel(keyHash)
	second := scrape()
	for _, want := range []string{
		"# TYPE pytfhed_request_latency_ms histogram",
		"pytfhed_evaluations_total 3",
		`pytfhed_requests_total{tenant="` + tenant + `",outcome="ok"} 3`,
		`pytfhed_request_latency_ms_count{tenant="` + tenant + `"} 3`,
		"pytfhed_sessions_total 1",
		"pytfhed_plan_misses_total 1",
		"pytfhed_executor_gates_total",
		"pytfhed_plan_replays_total 3",
		"pytfhed_uptime_seconds",
	} {
		if !strings.Contains(second, want) {
			t.Fatalf("scrape missing %q:\n%s", want, second)
		}
	}
	// Plan cache hits moved between scrapes (evals 2 and 3 hit).
	if !strings.Contains(second, `pytfhed_cache_hits_total{cache="plan"} 2`) {
		t.Fatalf("plan cache hit series did not move:\n%s", second)
	}

	// Every non-comment line is NAME or NAME{labels}, one float value.
	for _, line := range strings.Split(strings.TrimSpace(second), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp <= 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}
