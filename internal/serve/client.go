package serve

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
	"time"

	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// Client is the pytfhed wire client. One client maps to one server
// connection and therefore one session; it is safe for concurrent use,
// with requests serialized over the connection.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder
}

// Dial connects to a pytfhed daemon.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("serve: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, enc: gob.NewEncoder(conn), dec: gob.NewDecoder(conn)}, nil
}

// roundTrip sends one request and decodes the paired response, converting
// wire errors back into the package's typed sentinels.
func (c *Client) roundTrip(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.enc.Encode(req); err != nil {
		return nil, fmt.Errorf("serve: send: %w", err)
	}
	var resp Response
	if err := c.dec.Decode(&resp); err != nil {
		return nil, fmt.Errorf("serve: receive: %w", err)
	}
	if resp.Err != nil {
		return nil, resp.Err.Err()
	}
	return &resp, nil
}

// RegisterProgram uploads a PyTFHE binary for admission into the server's
// program registry and returns its content hash plus compile-time stats.
// Registering the same binary twice is a cache hit (Cached=true).
func (c *Client) RegisterProgram(bin []byte) (*ProgramInfo, error) {
	resp, err := c.roundTrip(Request{Register: &RegisterProgram{Binary: bin}})
	if err != nil {
		return nil, err
	}
	if resp.Program == nil {
		return nil, fmt.Errorf("serve: register: malformed response")
	}
	return resp.Program, nil
}

// OpenSession uploads the cloud evaluation key for this connection. Every
// Evaluate call afterwards runs under it.
func (c *Client) OpenSession(ck *boot.CloudKey) (*SessionInfo, error) {
	resp, err := c.roundTrip(Request{Open: &OpenSession{Key: ck}})
	if err != nil {
		return nil, err
	}
	if resp.Session == nil {
		return nil, fmt.Errorf("serve: open session: malformed response")
	}
	return resp.Session, nil
}

// Evaluate runs a registered program over the session's key with the
// server's default timeout.
func (c *Client) Evaluate(programHash string, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	return c.EvaluateTimeout(programHash, inputs, 0)
}

// EvaluateTimeout is Evaluate with an explicit per-request timeout
// (0 keeps the server default).
func (c *Client) EvaluateTimeout(programHash string, inputs []*lwe.Sample, timeout time.Duration) ([]*lwe.Sample, error) {
	req := &EvalRequest{ProgramHash: programHash, Inputs: inputs}
	if timeout > 0 {
		req.TimeoutMs = timeout.Milliseconds()
		if req.TimeoutMs == 0 {
			req.TimeoutMs = 1 // sub-millisecond timeouts still time out
		}
	}
	resp, err := c.roundTrip(Request{Eval: req})
	if err != nil {
		return nil, err
	}
	if resp.Eval == nil {
		return nil, fmt.Errorf("serve: evaluate: malformed response")
	}
	return resp.Eval.Outputs, nil
}

// Stats fetches a server statistics snapshot.
func (c *Client) Stats() (*StatsReply, error) {
	resp, err := c.roundTrip(Request{Stats: &StatsRequest{}})
	if err != nil {
		return nil, err
	}
	if resp.Stats == nil {
		return nil, fmt.Errorf("serve: stats: malformed response")
	}
	return resp.Stats, nil
}

// Close says goodbye and closes the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_ = c.enc.Encode(Request{Bye: true}) // best effort; the close is authoritative
	return c.conn.Close()
}
