package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

// Two tenant key pairs, generated once (test parameters, seeded).
var (
	keyOnce sync.Once
	tenants [2]*core.KeyPair
)

func tenantKeys(t testing.TB) [2]*core.KeyPair {
	t.Helper()
	keyOnce.Do(func() {
		for i, seed := range []string{"serve-tenant-0", "serve-tenant-1"} {
			rng := trand.NewSeeded([]byte(seed))
			sk, ck, err := boot.GenerateKeys(params.Test(), rng)
			if err != nil {
				panic(err)
			}
			tenants[i] = &core.KeyPair{Secret: sk, Cloud: ck}
		}
	})
	return tenants
}

// adderProg and xor4Prog are the distinct serving workloads.
func adderProg(t testing.TB, width int) *core.Program {
	t.Helper()
	b := circuit.NewBuilder(fmt.Sprintf("adder%d", width), circuit.AllOptimizations())
	a := b.Inputs("a", width)
	bb := b.Inputs("b", width)
	carry := b.Const(false)
	for i := 0; i < width; i++ {
		axb := b.Xor(a[i], bb[i])
		b.Output("s", b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], bb[i]), b.And(axb, carry))
	}
	b.Output("cout", carry)
	return compile(t, b)
}

func adder4Prog(t testing.TB) *core.Program { return adderProg(t, 4) }

func xor4Prog(t testing.TB) *core.Program {
	t.Helper()
	b := circuit.NewBuilder("xor4", circuit.AllOptimizations())
	a := b.Inputs("a", 4)
	bb := b.Inputs("b", 4)
	for i := 0; i < 4; i++ {
		b.Output("x", b.Xor(b.Nand(a[i], a[i]), bb[i]))
	}
	return compile(t, b)
}

func compile(t testing.TB, b *circuit.Builder) *core.Program {
	t.Helper()
	prog, err := core.Compile(b.MustBuild())
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func bitsOf(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

func uintOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	srv := New(cfg)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

// TestServeConcurrentSessions is the acceptance scenario: four concurrent
// client sessions across two tenants and two distinct programs, every
// decrypted result checked against a direct core.Run of the same program
// on a local single-core backend.
func TestServeConcurrentSessions(t *testing.T) {
	kps := tenantKeys(t)
	progs := []*core.Program{adder4Prog(t), xor4Prog(t)}
	srv := startServer(t, Config{Workers: 3})

	type sessionCase struct {
		kp   *core.KeyPair
		prog *core.Program
		vals [2]uint64
	}
	sessions := []sessionCase{
		{kps[0], progs[0], [2]uint64{5, 9}},
		{kps[1], progs[0], [2]uint64{15, 15}},
		{kps[0], progs[1], [2]uint64{0xA, 0x3}},
		{kps[1], progs[1], [2]uint64{0x5, 0xF}},
	}

	var wg sync.WaitGroup
	for i, sc := range sessions {
		wg.Add(1)
		go func(i int, sc sessionCase) {
			defer wg.Done()
			cl, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("session %d: %v", i, err)
				return
			}
			defer cl.Close()
			info, err := cl.RegisterProgram(sc.prog.Binary)
			if err != nil {
				t.Errorf("session %d register: %v", i, err)
				return
			}
			if _, err := cl.OpenSession(sc.kp.Cloud); err != nil {
				t.Errorf("session %d open: %v", i, err)
				return
			}
			in := append(bitsOf(sc.vals[0], 4), bitsOf(sc.vals[1], 4)...)
			outs, err := cl.Evaluate(info.Hash, sc.kp.EncryptBits(in))
			if err != nil {
				t.Errorf("session %d evaluate: %v", i, err)
				return
			}
			got := sc.kp.DecryptBits(outs)

			// Reference: a direct core.Run of the same program, same key.
			refOuts, err := core.Run(sc.prog, backend.NewSingle(sc.kp.Cloud), sc.kp.EncryptBits(in))
			if err != nil {
				t.Errorf("session %d reference run: %v", i, err)
				return
			}
			want := sc.kp.DecryptBits(refOuts)
			if uintOf(got) != uintOf(want) {
				t.Errorf("session %d (%s): served %#x, direct core.Run %#x",
					i, sc.prog.Name, uintOf(got), uintOf(want))
			}
		}(i, sc)
	}
	wg.Wait()

	// The registry deduplicated: 4 sessions, 2 programs, every eval counted.
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Programs != 2 || st.Sessions != 4 || st.Evaluations != 4 {
		t.Fatalf("stats = %+v, want 2 programs, 4 sessions, 4 evaluations", st)
	}
	var hits int64
	for _, h := range st.PerProgram {
		hits += h
	}
	if hits != 4 {
		t.Fatalf("per-program hits sum to %d, want 4", hits)
	}
}

// TestServeRegistryAdmission checks malformed binaries are rejected at
// registration and re-registering is a cache hit.
func TestServeRegistryAdmission(t *testing.T) {
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 1})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.RegisterProgram([]byte("not a pytfhe binary")); !errors.Is(err, ErrRejected) {
		t.Fatalf("garbage register: err = %v, want ErrRejected", err)
	}
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if info.Cached {
		t.Fatal("first registration reported as cached")
	}
	again, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Hash != info.Hash {
		t.Fatalf("re-registration: cached=%v hash match=%v", again.Cached, again.Hash == info.Hash)
	}

	// Evaluating an unregistered hash is a typed failure.
	if _, err := cl.OpenSession(tenantKeys(t)[0].Cloud); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Evaluate("deadbeef", nil); !errors.Is(err, ErrUnknownProgram) {
		t.Fatalf("unknown hash: err = %v, want ErrUnknownProgram", err)
	}
	// Evaluating before OpenSession is too.
	cl2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.Evaluate(info.Hash, nil); !errors.Is(err, ErrNoSession) {
		t.Fatalf("no session: err = %v, want ErrNoSession", err)
	}
}

// TestServeNoiseAdmission drives the registration-time static noise
// analysis: under a degraded parameter set any bootstrapped netlist is
// rejected (the bootstrap output noise alone eats the output decode
// margin), a free-gate program still registers (NOT only shifts the
// fresh input noise, which keeps 32 sigmas even degraded) and its noise
// summary rides ProgramInfo and the Stats RPC, and the default
// production set admits the deep program with positive headroom.
func TestServeNoiseAdmission(t *testing.T) {
	deep := func() *core.Program {
		b := circuit.NewBuilder("nandchain3", circuit.NoOptimizations())
		ins := b.Inputs("x", 2)
		cur := ins[0]
		for i := 0; i < 3; i++ {
			cur = b.Nand(cur, ins[1])
		}
		b.Output("o", cur)
		return compile(t, b)
	}()
	free := func() *core.Program {
		b := circuit.NewBuilder("not1", circuit.NoOptimizations())
		ins := b.Inputs("x", 1)
		b.Output("o", b.Not(ins[0]))
		return compile(t, b)
	}()

	// Degraded set: test parameters with the fresh LWE noise cranked from
	// 2^-20 to 2^-8, so a bootstrap output's noise stdev (~0.18) swamps
	// the 1/8 output decode margin and any bootstrapped program is over
	// budget, while the free NOT keeps its fresh 2^-8 stdev (32 sigmas).
	degraded := *params.Test()
	degraded.Name = "degraded"
	degraded.LWEStdev = math.Exp2(-8)
	srv := startServer(t, Config{Workers: 1, NoiseParams: &degraded})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	if _, err := cl.RegisterProgram(deep.Binary); !errors.Is(err, ErrRejected) {
		t.Fatalf("deep netlist under degraded params: err = %v, want ErrRejected", err)
	} else if !strings.Contains(err.Error(), "over budget") {
		t.Fatalf("rejection does not name the noise budget: %v", err)
	}
	info, err := cl.RegisterProgram(free.Binary)
	if err != nil {
		t.Fatalf("free-gate netlist under degraded params: %v", err)
	}
	if !info.Noise.Checked || info.Noise.Params != "degraded" {
		t.Fatalf("noise summary = %+v, want checked under degraded", info.Noise)
	}
	if info.Noise.HeadroomBits <= 0 || info.Noise.WorstSigmas < 4 {
		t.Fatalf("admitted program reports no margin: %+v", info.Noise)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if pn, ok := st.ProgramNoise[info.Hash]; !ok || pn != info.Noise {
		t.Fatalf("stats noise = %+v (ok=%v), want %+v", pn, ok, info.Noise)
	}

	// The production default128 set admits the deep chain with headroom.
	srv2 := startServer(t, Config{Workers: 1})
	cl2, err := Dial(srv2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	info2, err := cl2.RegisterProgram(deep.Binary)
	if err != nil {
		t.Fatalf("deep netlist under default128: %v", err)
	}
	if !info2.Noise.Checked || info2.Noise.HeadroomBits <= 0 {
		t.Fatalf("default128 noise summary = %+v, want checked with positive headroom", info2.Noise)
	}

	// A server with the check disabled admits anything and says so.
	srv3 := startServer(t, Config{Workers: 1, NoiseParams: &degraded, DisableNoiseCheck: true})
	cl3, err := Dial(srv3.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl3.Close()
	info3, err := cl3.RegisterProgram(deep.Binary)
	if err != nil {
		t.Fatalf("noise check disabled: %v", err)
	}
	if info3.Noise.Checked {
		t.Fatalf("disabled check still reported a summary: %+v", info3.Noise)
	}
}

// TestServeBackpressure saturates a deliberately tiny admission queue and
// checks the server sheds load with ErrOverloaded instead of queueing
// without bound, then keeps serving afterwards.
func TestServeBackpressure(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 1, MaxConcurrent: 1, QueueCap: 1})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}

	const burst = 8
	var overloaded, succeeded atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Errorf("dial %d: %v", i, err)
				return
			}
			defer c.Close()
			if _, err := c.OpenSession(kp.Cloud); err != nil {
				t.Errorf("open %d: %v", i, err)
				return
			}
			in := append(bitsOf(uint64(i), 4), bitsOf(3, 4)...)
			outs, err := c.Evaluate(info.Hash, kp.EncryptBits(in))
			switch {
			case errors.Is(err, ErrOverloaded):
				overloaded.Add(1)
			case err != nil:
				t.Errorf("eval %d: %v", i, err)
			default:
				succeeded.Add(1)
				if got := uintOf(kp.DecryptBits(outs)); got != uint64(i)+3 {
					t.Errorf("eval %d: %d+3 = %d under load", i, i, got)
				}
			}
		}(i)
	}
	wg.Wait()
	if overloaded.Load() == 0 {
		t.Fatalf("no ErrOverloaded out of %d concurrent requests on a 1+1 queue", burst)
	}
	if succeeded.Load() == 0 {
		t.Fatal("every request shed: admission control is rejecting admitted work")
	}
	t.Logf("burst %d: %d served, %d shed", burst, succeeded.Load(), overloaded.Load())

	// The shed requests left no residue: the server still serves.
	if _, err := cl.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	outs, err := cl.Evaluate(info.Hash, kp.EncryptBits(bitsOf(0x21, 8)))
	if err != nil {
		t.Fatalf("server wedged after overload burst: %v", err)
	}
	if got := uintOf(kp.DecryptBits(outs)); got != 3 {
		t.Fatalf("1+2 = %d after overload burst", got)
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Rejected != overloaded.Load() {
		t.Fatalf("stats.Rejected = %d, clients saw %d", st.Rejected, overloaded.Load())
	}
}

// TestServePlanCacheAndLatency drives the same program through repeated
// evaluations and checks the capture/replay serving path: the first
// request pays the plan compile (a miss), every later request is a cache
// hit replaying the plan, and the Stats RPC reports the counters, the
// arena high-water mark, and per-program latency quantiles.
func TestServePlanCacheAndLatency(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 2})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	const runs = 3
	for i := 0; i < runs; i++ {
		in := append(bitsOf(uint64(i), 4), bitsOf(7, 4)...)
		outs, err := cl.Evaluate(info.Hash, kp.EncryptBits(in))
		if err != nil {
			t.Fatalf("eval %d: %v", i, err)
		}
		if got := uintOf(kp.DecryptBits(outs)); got != uint64(i)+7 {
			t.Fatalf("eval %d: %d+7 = %d on the replay path", i, i, got)
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.PlanMisses != 1 || st.PlanHits != runs-1 {
		t.Fatalf("plan cache: %d misses, %d hits; want 1 and %d", st.PlanMisses, st.PlanHits, runs-1)
	}
	if st.PlanReplays != runs || st.PlanFallbacks != 0 {
		t.Fatalf("plan execution: %d replays, %d fallbacks; want %d and 0",
			st.PlanReplays, st.PlanFallbacks, runs)
	}
	if st.ArenaHighWater <= 0 {
		t.Fatalf("arena high water = %d, want > 0", st.ArenaHighWater)
	}
	lat, ok := st.PerProgramLatency[info.Hash]
	if !ok || lat.Samples != runs {
		t.Fatalf("latency window = %+v (ok=%v), want %d samples", lat, ok, runs)
	}
	if lat.P50Ms <= 0 || lat.P95Ms < lat.P50Ms {
		t.Fatalf("latency quantiles implausible: %+v", lat)
	}
}

// TestServeCrossRequestBatching is the multi-tenant batching acceptance
// scenario: several concurrent sessions of one tenant evaluate a wide
// single-wavefront program on a one-worker server, so the shared
// executor's ready queue holds bootstrap tasks from multiple requests at
// once and the worker's batch drain fuses them into shared kernel
// dispatches. The Stats RPC must report the occupancy, including batches
// that spanned ≥2 requests.
func TestServeCrossRequestBatching(t *testing.T) {
	kp := tenantKeys(t)[0]
	// 13 independent XORs: one level-0 wavefront, and 13 is not a multiple
	// of the batch size, so request boundaries land mid-batch.
	const width = 13
	b := circuit.NewBuilder("xorwide", circuit.AllOptimizations())
	a := b.Inputs("a", width)
	bb := b.Inputs("b", width)
	for i := 0; i < width; i++ {
		b.Output("x", b.Xor(a[i], bb[i]))
	}
	prog := compile(t, b)

	// One worker so every request funnels into one drain loop; MaxConcurrent
	// must admit the whole burst or the admission slots (default 2×workers)
	// serialize the very concurrency the test needs.
	srv := startServer(t, Config{Workers: 1, Batch: 8, MaxConcurrent: 8})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}

	// Cumulative stats: repeat the burst until a cross-request batch shows
	// up (one burst nearly always suffices; the retry absorbs scheduler
	// noise on loaded machines).
	const clientsN = 6
	for attempt := 0; attempt < 5; attempt++ {
		var start, done sync.WaitGroup
		start.Add(1)
		for i := 0; i < clientsN; i++ {
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c.OpenSession(kp.Cloud); err != nil {
				t.Fatal(err)
			}
			done.Add(1)
			go func(i int, c *Client) {
				defer done.Done()
				defer c.Close()
				av, bv := uint64(i*37+5)&(1<<width-1), uint64(i*101+9)&(1<<width-1)
				in := append(bitsOf(av, width), bitsOf(bv, width)...)
				start.Wait()
				outs, err := c.Evaluate(info.Hash, kp.EncryptBits(in))
				if err != nil {
					t.Errorf("client %d: %v", i, err)
					return
				}
				if got := uintOf(kp.DecryptBits(outs)); got != av^bv {
					t.Errorf("client %d: %#x^%#x = %#x under batching", i, av, bv, got)
				}
			}(i, c)
		}
		start.Done()
		done.Wait()

		st, err := cl.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.BatchSize != 8 {
			t.Fatalf("stats.BatchSize = %d, want 8", st.BatchSize)
		}
		if st.CrossRunBatches > 0 {
			if st.Batches <= 0 || st.BatchedBootstraps < st.Batches {
				t.Fatalf("implausible occupancy: %d batches covering %d bootstraps",
					st.Batches, st.BatchedBootstraps)
			}
			if st.AvgBatchFill < 1 {
				t.Fatalf("AvgBatchFill = %.2f with %d batches", st.AvgBatchFill, st.Batches)
			}
			t.Logf("attempt %d: %d batches (%d cross-request), %d batched bootstraps, avg fill %.2f",
				attempt, st.Batches, st.CrossRunBatches, st.BatchedBootstraps, st.AvgBatchFill)
			return
		}
		t.Logf("attempt %d: no cross-request batch yet (%d batches, %d fallbacks)",
			attempt, st.Batches, st.PlanFallbacks)
	}
	t.Fatal("no cross-request batch formed in 5 bursts of 6 concurrent sessions")
}

// TestServeTimeout checks the per-request deadline fires (queue wait
// included) as ErrTimeout.
func TestServeTimeout(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := adder4Prog(t)
	srv := startServer(t, Config{Workers: 1})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	in := kp.EncryptBits(bitsOf(0x42, 8))
	if _, err := cl.EvaluateTimeout(info.Hash, in, time.Nanosecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("1ns evaluation: err = %v, want ErrTimeout", err)
	}
}

// TestServeGracefulDrain starts evaluations, drains the server mid-flight,
// and checks every in-flight request completes with a correct result while
// new work is refused.
func TestServeGracefulDrain(t *testing.T) {
	kp := tenantKeys(t)[0]
	// A 16-bit adder is long enough (≈80 bootstraps) that the drain
	// reliably lands while evaluations are in flight.
	prog := adderProg(t, 16)
	srv := startServer(t, Config{Workers: 2})

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}

	const inflight = 3
	results := make(chan error, inflight)
	for i := 0; i < inflight; i++ {
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.OpenSession(kp.Cloud); err != nil {
			t.Fatal(err)
		}
		go func(i int, c *Client) {
			defer c.Close()
			in := append(bitsOf(uint64(i), 16), bitsOf(5, 16)...)
			outs, err := c.Evaluate(info.Hash, kp.EncryptBits(in))
			if err != nil {
				results <- err
				return
			}
			if got := uintOf(kp.DecryptBits(outs)); got != uint64(i)+5 {
				results <- errors.New("wrong sum under drain")
				return
			}
			results <- nil
		}(i, c)
	}

	// Wait until every evaluation has been admitted (or already served):
	// evals is bumped before the queued decrement, so the sum counts
	// admissions monotonically. Draining any earlier could bounce a
	// late-arriving request with ErrDraining.
	admitted := func() int64 {
		return atomic.LoadInt64(&srv.evals) + int64(atomic.LoadInt32(&srv.queued))
	}
	for deadline := time.Now().Add(60 * time.Second); admitted() < inflight; {
		if time.Now().After(deadline) {
			t.Fatal("evaluations never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	for i := 0; i < inflight; i++ {
		if err := <-results; err != nil {
			t.Fatalf("in-flight request during drain: %v", err)
		}
	}
	// The drained server accepts nothing new.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Fatal("drained server accepted a new connection")
	}
}
