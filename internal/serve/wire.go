// Package serve implements pytfhed, the persistent multi-tenant FHE
// evaluation daemon: a gob-framed TCP protocol (the wire style of
// internal/cluster) over a program registry, per-session cloud keys, a
// bounded admission queue, and one shared backend executor. Where the CLI
// pays key distribution and program compilation per invocation, the daemon
// pays them once per session and once per program hash — the serving-layer
// analogue of the paper amortizing CUDA-Graph construction across batches
// and cloud-key broadcast across wavefronts (PAPER.md §IV).
package serve

import (
	"errors"
	"fmt"

	"pytfhe/internal/qos"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/wire"
)

func init() { wire.Register() }

// Typed request failures. The wire carries a stable code for each; the
// client rehydrates them so callers can classify with errors.Is.
var (
	// ErrOverloaded: the bounded admission queue is full. Back off and
	// retry; the server sheds load instead of queueing without bound.
	ErrOverloaded = errors.New("serve: server overloaded")
	// ErrUnknownProgram: the program hash was never registered (or the
	// registry was restarted). Re-register the binary.
	ErrUnknownProgram = errors.New("serve: unknown program")
	// ErrNoSession: Evaluate before OpenSession on this connection.
	ErrNoSession = errors.New("serve: no session key registered")
	// ErrTimeout: the request exceeded its evaluation deadline (queue wait
	// included).
	ErrTimeout = errors.New("serve: evaluation timed out")
	// ErrDraining: the server is shutting down and admits no new work.
	ErrDraining = errors.New("serve: server draining")
	// ErrRejected: the program failed admission linting.
	ErrRejected = errors.New("serve: program rejected")
	// ErrQuotaExceeded aliases qos.ErrQuotaExceeded: the session's tenant
	// is over its per-tenant in-flight or gate budget. Unlike
	// ErrOverloaded this is not a server-wide condition — other tenants
	// are unaffected, and the request should be retried after the
	// tenant's own work drains.
	ErrQuotaExceeded = qos.ErrQuotaExceeded
)

// Request is the single client→server envelope; exactly one field is set.
type Request struct {
	Register *RegisterProgram
	Open     *OpenSession
	Eval     *EvalRequest
	Stats    *StatsRequest
	Bye      bool
}

// RegisterProgram uploads an assembled PyTFHE binary. The server lints it
// (asm.Lint via core.LoadStrict), compiles it once, and caches it under
// its content hash; re-registering an already-cached binary is a cheap
// cache hit.
type RegisterProgram struct {
	Binary []byte
}

// OpenSession registers the client's cloud evaluation key for this
// connection. The ~MB key upload is paid once here; every subsequent
// Evaluate on the connection reuses it.
type OpenSession struct {
	Key *boot.CloudKey
}

// EvalRequest submits one encrypted evaluation of a registered program.
type EvalRequest struct {
	ProgramHash string
	Inputs      []*lwe.Sample
	// TimeoutMs overrides the server's default per-request timeout when
	// positive.
	TimeoutMs int64
}

// StatsRequest asks for a server statistics snapshot.
type StatsRequest struct{}

// Response is the single server→client envelope; Err is set on failure,
// otherwise exactly one result field is.
type Response struct {
	Program *ProgramInfo
	Session *SessionInfo
	Eval    *EvalResult
	Stats   *StatsReply
	Err     *WireError
}

// ProgramInfo describes a registered program.
type ProgramInfo struct {
	Hash   string // hex SHA-256 of the binary
	Name   string
	Cached bool // true when the hash was already in the registry
	Inputs, Gates, Bootstrapped, Outputs,
	Depth int
	// LUTs counts the program's multi-input LUT gates — non-zero when the
	// daemon runs with -lut and the registered circuit had clusterable
	// cones (or the uploaded binary already carried LUT instructions).
	LUTs int
	// Noise is the static noise-budget summary computed at registration
	// (zero Checked when the server was configured with the check off).
	// A program that fails the analysis is never admitted, so a non-zero
	// Noise always describes a passing report.
	Noise ProgramNoise
}

// ProgramNoise summarizes a program's registration-time static noise
// analysis (internal/tfhe/noise) for the wire.
type ProgramNoise struct {
	Checked      bool    // analysis ran at registration
	Params       string  // parameter set the analysis used
	HeadroomBits float64 // log2 margin over the sigma floor (+Inf: no noisy wires)
	WorstSigmas  float64 // sigma margin of the worst gate or output
	FailureProb  float64 // union bound on any decryption error per evaluation
}

// SessionInfo acknowledges an opened session.
type SessionInfo struct {
	ID        uint64
	KeyShared bool // true when an identical cloud key was already registered
}

// EvalResult carries the output ciphertexts of one evaluation.
type EvalResult struct {
	Outputs   []*lwe.Sample
	ElapsedMs int64
}

// StatsReply is the Stats RPC payload.
type StatsReply struct {
	QueueDepth  int // admission queue occupancy (waiting, not running)
	InFlight    int // evaluations currently executing
	Sessions    uint64
	Programs    int
	Evaluations int64 // completed evaluations
	Rejected    int64 // ErrOverloaded rejections
	// QuotaRejected counts requests refused by per-tenant quotas
	// (qos.ErrQuotaExceeded) — tenant-local, unlike Rejected.
	QuotaRejected int64
	// KeysReleased counts cloud keys whose executor engines and replay
	// runner were released because their last session closed.
	KeysReleased int64
	// TenantPicks/TenantQueued report the fair scheduler's per-tenant
	// service counts and current ready-gate queue depths, keyed by the
	// tenant label (cloud-key hash prefix).
	TenantPicks  map[string]int64
	TenantQueued map[string]int
	// PlanCache/RuntimeCache report the byte-capped LRU caches behind
	// compiled plans and per-key replay runners.
	PlanCache    CacheStats
	RuntimeCache CacheStats
	// GatesPerSec is the executor's all-gate throughput; BootstrapsPerSec
	// counts only bootstrapped evaluations (the figure earlier releases
	// mislabeled GatesPerSec).
	GatesPerSec      float64
	BootstrapsPerSec float64
	UptimeMs         int64
	PerProgram       map[string]int64 // hash → evaluation count
	ExecutorGates    int64            // gates evaluated by the shared executor
	// ExecutorLUTs counts multi-input LUT gates the shared dynamic
	// executor evaluated (each one programmable bootstrap, included in
	// its bootstrap count); LUTsEvaluated counts logical LUT gates across
	// every completed evaluation regardless of path — replay, dynamic
	// fallback, or cluster dispatch. Both stay zero on a LUT-off daemon
	// serving classic binaries.
	ExecutorLUTs  int64
	LUTsEvaluated int64

	// Plan cache counters: an eval request that finds its program's
	// execution plan already compiled is a PlanHit; the request that pays
	// the compile is a PlanMiss. PlanReplays ran on the capture/replay
	// fast path, PlanFallbacks on the shared dynamic executor (replay
	// runner busy or plan unavailable).
	PlanHits      int64
	PlanMisses    int64
	PlanReplays   int64
	PlanFallbacks int64
	// ArenaHighWater is the peak ciphertext count across all replay
	// arenas.
	ArenaHighWater int
	// PerProgramLatency maps program hash → evaluation latency quantiles
	// over a sliding window of recent requests.
	PerProgramLatency map[string]LatencyStats
	// ProgramNoise maps program hash → the static noise-budget summary
	// recorded at registration.
	ProgramNoise map[string]ProgramNoise

	// Batch occupancy across the shared executor and the plan-replay
	// runners: how many amortized kernel dispatches ran, how many
	// bootstrapped gates they covered, and how many spanned ≥2 concurrent
	// tenant requests (shared executor only — replays are per-request).
	// AvgBatchFill is BatchedBootstraps/Batches — the amortization the
	// kernel actually saw.
	BatchSize         int
	Batches           int64
	BatchedBootstraps int64
	CrossRunBatches   int64
	AvgBatchFill      float64

	// Cluster reports the worker-pool coordinator's counters; nil when the
	// daemon runs without -cluster-listen.
	Cluster *ClusterStats
}

// ClusterStats is the daemon's view of its cluster coordinator: how many
// evaluations the worker pool served (vs fell back to local execution),
// the shard-cache economics, and the measured wire traffic.
type ClusterStats struct {
	Workers   int   // workers currently joined
	Evals     int64 // evaluations dispatched as plan shards
	Fallbacks int64 // cluster-eligible evaluations that ran locally
	// Shard shipping: a ShardRun replays cached shards; hits found the
	// shard resident on its worker, misses paid the one-time shipment,
	// reships re-hosted a shard after its worker was lost.
	ShardRuns    int64
	ShardHits    int64
	ShardMisses  int64
	ShardReships int64
	// Measured coordinator-side traffic (all runs), plus the portion that
	// was per-run boundary ciphertexts.
	WireBytesSent int64
	WireBytesRecv int64
	BoundaryBytes int64
	WorkersLost   int64
}

// CacheStats is the wire form of one byte-accounted cache's counters.
// Evictions include lifecycle removals (a key's last session closing
// releases its runner), not just capacity pressure.
type CacheStats struct {
	Entries   int
	Bytes     int64
	CapBytes  int64 // 0: unbounded
	Hits      int64
	Misses    int64
	Evictions int64
}

// LatencyStats summarizes recent evaluation latencies of one program.
type LatencyStats struct {
	Samples int // window occupancy (≤ latencyWindow)
	P50Ms   float64
	P95Ms   float64
}

// WireError is the serialized form of a typed failure.
type WireError struct {
	Code string
	Msg  string
}

// Stable wire codes for the typed errors.
const (
	codeOverloaded     = "overloaded"
	codeUnknownProgram = "unknown-program"
	codeNoSession      = "no-session"
	codeTimeout        = "timeout"
	codeDraining       = "draining"
	codeRejected       = "rejected"
	codeQuota          = "quota"
	codeInternal       = "internal"
)

var errCodes = map[string]error{
	codeOverloaded:     ErrOverloaded,
	codeUnknownProgram: ErrUnknownProgram,
	codeNoSession:      ErrNoSession,
	codeTimeout:        ErrTimeout,
	codeDraining:       ErrDraining,
	codeRejected:       ErrRejected,
	codeQuota:          ErrQuotaExceeded,
}

// toWire converts a server-side error to its wire form.
func toWire(err error) *WireError {
	for code, sentinel := range errCodes {
		if errors.Is(err, sentinel) {
			return &WireError{Code: code, Msg: err.Error()}
		}
	}
	return &WireError{Code: codeInternal, Msg: err.Error()}
}

// Err rehydrates a wire error into one that matches the package sentinels
// under errors.Is.
func (w *WireError) Err() error {
	if sentinel, ok := errCodes[w.Code]; ok {
		if w.Msg == sentinel.Error() {
			return sentinel
		}
		return fmt.Errorf("%w: %s", sentinel, w.Msg)
	}
	return fmt.Errorf("serve: server error: %s", w.Msg)
}
