package serve

import (
	"strconv"

	"pytfhe/internal/telemetry"
)

// tenantLabel is the metric label for a tenant: the cloud-key hash's
// first 8 hex digits — stable across sessions of the same key, short
// enough for dashboards, and not the full hash (label cardinality).
func tenantLabel(keyHash string) string {
	if len(keyHash) > 8 {
		return keyHash[:8]
	}
	return keyHash
}

// metrics is the daemon's telemetry surface. Request counts, latency,
// and queue wait are observed inline on the request path; everything
// else is a scrape-time mirror of the counters the daemon already keeps
// (Server.mirrorMetrics), so the hot path pays nothing for them.
type metrics struct {
	// Inline-observed.
	requests  *telemetry.CounterVec   // {tenant, outcome}
	latency   *telemetry.HistogramVec // {tenant}, ms, ok requests only
	queueWait *telemetry.Histogram    // ms waiting for an evaluation slot

	// Scrape-time mirrors.
	queueDepth    *telemetry.Gauge
	inflight      *telemetry.Gauge
	sessions      *telemetry.Counter
	programs      *telemetry.Gauge
	evals         *telemetry.Counter
	rejected      *telemetry.Counter
	quotaRejected *telemetry.Counter
	keysReleased  *telemetry.Counter
	uptime        *telemetry.Gauge

	schedPicks  *telemetry.CounterVec // {tenant}
	schedQueued *telemetry.GaugeVec   // {tenant}

	workers    *telemetry.Gauge
	workerBusy *telemetry.Counter // milliseconds
	execGates  *telemetry.Counter
	execBoots  *telemetry.Counter
	execLUTs   *telemetry.Counter
	lutsEval   *telemetry.Counter

	planHits      *telemetry.Counter
	planMisses    *telemetry.Counter
	planReplays   *telemetry.Counter
	planFallbacks *telemetry.Counter
	arenaHW       *telemetry.Gauge

	batches      *telemetry.Counter
	batchedBoots *telemetry.Counter
	crossBatches *telemetry.Counter
	batchFill    *telemetry.Gauge

	cacheBytes     *telemetry.GaugeVec   // {cache}
	cacheCap       *telemetry.GaugeVec   // {cache}
	cacheEntries   *telemetry.GaugeVec   // {cache}
	cacheHits      *telemetry.CounterVec // {cache}
	cacheMisses    *telemetry.CounterVec // {cache}
	cacheEvictions *telemetry.CounterVec // {cache}

	clusterWorkers   *telemetry.Gauge
	clusterEvals     *telemetry.Counter
	clusterFallbacks *telemetry.Counter
	shardRuns        *telemetry.Counter
	shardHits        *telemetry.Counter
	shardMisses      *telemetry.Counter
	shardReships     *telemetry.Counter
	wireSent         *telemetry.Counter
	wireRecv         *telemetry.Counter
	boundaryBytes    *telemetry.Counter
	workersLost      *telemetry.Counter
}

// latencyBuckets spans sub-millisecond test-parameter replays up to
// multi-minute production evaluations: 1ms … ~8.7min, ×2 per bucket.
var latencyBuckets = telemetry.ExpBuckets(1, 2, 20)

func newMetrics(reg *telemetry.Registry) *metrics {
	return &metrics{
		requests: reg.CounterVec("pytfhed_requests_total",
			"Evaluation requests by tenant and outcome (outcome is ok or a wire error code).",
			"tenant", "outcome"),
		latency: reg.HistogramVec("pytfhed_request_latency_ms",
			"End-to-end latency of successful evaluations, queue wait included.",
			latencyBuckets, "tenant"),
		queueWait: reg.Histogram("pytfhed_queue_wait_ms",
			"Time admitted requests spent waiting for an evaluation slot.",
			latencyBuckets),

		queueDepth:    reg.Gauge("pytfhed_queue_depth", "Admitted requests waiting for a slot."),
		inflight:      reg.Gauge("pytfhed_inflight", "Evaluations currently executing."),
		sessions:      reg.Counter("pytfhed_sessions_total", "Sessions opened since start."),
		programs:      reg.Gauge("pytfhed_programs", "Programs in the registry."),
		evals:         reg.Counter("pytfhed_evaluations_total", "Completed evaluations."),
		rejected:      reg.Counter("pytfhed_rejected_total", "Requests shed by the bounded admission queue."),
		quotaRejected: reg.Counter("pytfhed_quota_rejected_total", "Requests refused by per-tenant quotas."),
		keysReleased:  reg.Counter("pytfhed_keys_released_total", "Cloud keys released after their last session closed."),
		uptime:        reg.Gauge("pytfhed_uptime_seconds", "Seconds since the daemon started."),

		schedPicks: reg.CounterVec("pytfhed_sched_picks_total",
			"Fair-scheduler picks per tenant.", "tenant"),
		schedQueued: reg.GaugeVec("pytfhed_sched_queued",
			"Ready gates queued per tenant on the shared executor.", "tenant"),

		workers:    reg.Gauge("pytfhed_workers", "Executor worker goroutines."),
		workerBusy: reg.Counter("pytfhed_worker_busy_ms_total", "Cumulative evaluation time across workers, ms."),
		execGates:  reg.Counter("pytfhed_executor_gates_total", "Gates evaluated by the shared executor."),
		execBoots:  reg.Counter("pytfhed_executor_bootstraps_total", "Bootstrapped gates evaluated by the shared executor."),
		execLUTs:   reg.Counter("pytfhed_executor_luts_total", "Multi-input LUT gates evaluated by the shared executor."),
		lutsEval:   reg.Counter("pytfhed_luts_evaluated_total", "Logical LUT gates across completed evaluations, all paths."),

		planHits:      reg.Counter("pytfhed_plan_hits_total", "Evaluations that found a cached execution plan."),
		planMisses:    reg.Counter("pytfhed_plan_misses_total", "Evaluations that paid a plan compile."),
		planReplays:   reg.Counter("pytfhed_plan_replays_total", "Evaluations served by capture/replay."),
		planFallbacks: reg.Counter("pytfhed_plan_fallbacks_total", "Evaluations served by the dynamic executor."),
		arenaHW:       reg.Gauge("pytfhed_arena_high_water", "Peak ciphertext count across replay arenas."),

		batches:      reg.Counter("pytfhed_batches_total", "Amortized bootstrap kernel dispatches."),
		batchedBoots: reg.Counter("pytfhed_batched_bootstraps_total", "Bootstrapped gates covered by batched dispatches."),
		crossBatches: reg.Counter("pytfhed_cross_run_batches_total", "Batches spanning two or more concurrent requests."),
		batchFill:    reg.Gauge("pytfhed_batch_fill", "Average bootstrapped gates per batched dispatch."),

		cacheBytes:     reg.GaugeVec("pytfhed_cache_bytes", "Accounted bytes resident per cache.", "cache"),
		cacheCap:       reg.GaugeVec("pytfhed_cache_cap_bytes", "Configured byte cap per cache (0: unbounded).", "cache"),
		cacheEntries:   reg.GaugeVec("pytfhed_cache_entries", "Entries resident per cache.", "cache"),
		cacheHits:      reg.CounterVec("pytfhed_cache_hits_total", "Cache lookups that hit.", "cache"),
		cacheMisses:    reg.CounterVec("pytfhed_cache_misses_total", "Cache lookups that missed.", "cache"),
		cacheEvictions: reg.CounterVec("pytfhed_cache_evictions_total", "Entries evicted (lifecycle releases included).", "cache"),

		clusterWorkers:   reg.Gauge("pytfhed_cluster_workers", "Workers currently joined to the coordinator."),
		clusterEvals:     reg.Counter("pytfhed_cluster_evals_total", "Evaluations dispatched as plan shards."),
		clusterFallbacks: reg.Counter("pytfhed_cluster_fallbacks_total", "Cluster-eligible evaluations that ran locally."),
		shardRuns:        reg.Counter("pytfhed_cluster_shard_runs_total", "Sharded plan runs."),
		shardHits:        reg.Counter("pytfhed_cluster_shard_hits_total", "Shards found resident on their worker."),
		shardMisses:      reg.Counter("pytfhed_cluster_shard_misses_total", "Shards shipped on first use."),
		shardReships:     reg.Counter("pytfhed_cluster_shard_reships_total", "Shards re-hosted after a worker loss."),
		wireSent:         reg.Counter("pytfhed_cluster_wire_bytes_sent_total", "Coordinator bytes sent to workers."),
		wireRecv:         reg.Counter("pytfhed_cluster_wire_bytes_recv_total", "Coordinator bytes received from workers."),
		boundaryBytes:    reg.Counter("pytfhed_cluster_boundary_bytes_total", "Bytes of per-run boundary ciphertexts on the wire."),
		workersLost:      reg.Counter("pytfhed_cluster_workers_lost_total", "Workers lost mid-run."),
	}
}

// observeRequest records one finished evaluation request. The outcome
// label is "ok" or the response's stable wire error code, so alerting
// can slice failures the same way clients classify them.
func (m *metrics) observeRequest(tenant string, resp Response, elapsedMs float64) {
	outcome := "ok"
	if resp.Err != nil {
		outcome = resp.Err.Code
	}
	m.requests.With(tenant, outcome).Inc()
	if resp.Err == nil {
		m.latency.With(tenant).Observe(elapsedMs)
	}
}

// mirrorMetrics copies the daemon's counters into the registry; it runs
// once per scrape via telemetry.Registry.OnScrape.
func (s *Server) mirrorMetrics() {
	m := s.met
	st := s.statsSnapshot()
	ex := s.exec.Stats()

	m.queueDepth.Set(float64(st.QueueDepth))
	m.inflight.Set(float64(st.InFlight))
	m.sessions.Set(int64(st.Sessions))
	m.programs.Set(float64(st.Programs))
	m.evals.Set(st.Evaluations)
	m.rejected.Set(st.Rejected)
	m.quotaRejected.Set(st.QuotaRejected)
	m.keysReleased.Set(st.KeysReleased)
	m.uptime.Set(float64(st.UptimeMs) / 1e3)

	for tenant, picks := range st.TenantPicks {
		m.schedPicks.With(tenant).Set(picks)
	}
	for tenant, queued := range st.TenantQueued {
		m.schedQueued.With(tenant).Set(float64(queued))
	}

	m.workers.Set(float64(ex.Workers))
	m.workerBusy.Set(ex.WorkerBusy.Milliseconds())
	m.execGates.Set(ex.Gates)
	m.execBoots.Set(ex.Bootstraps)
	m.execLUTs.Set(ex.LUTs)
	m.lutsEval.Set(st.LUTsEvaluated)

	m.planHits.Set(st.PlanHits)
	m.planMisses.Set(st.PlanMisses)
	m.planReplays.Set(st.PlanReplays)
	m.planFallbacks.Set(st.PlanFallbacks)
	m.arenaHW.Set(float64(st.ArenaHighWater))

	m.batches.Set(st.Batches)
	m.batchedBoots.Set(st.BatchedBootstraps)
	m.crossBatches.Set(st.CrossRunBatches)
	m.batchFill.Set(st.AvgBatchFill)

	mirrorCache := func(name string, cs CacheStats) {
		m.cacheBytes.With(name).Set(float64(cs.Bytes))
		m.cacheCap.With(name).Set(float64(cs.CapBytes))
		m.cacheEntries.With(name).Set(float64(cs.Entries))
		m.cacheHits.With(name).Set(cs.Hits)
		m.cacheMisses.With(name).Set(cs.Misses)
		m.cacheEvictions.With(name).Set(cs.Evictions)
	}
	mirrorCache("plan", st.PlanCache)
	mirrorCache("runtime", st.RuntimeCache)

	if cs := st.Cluster; cs != nil {
		m.clusterWorkers.Set(float64(cs.Workers))
		m.clusterEvals.Set(cs.Evals)
		m.clusterFallbacks.Set(cs.Fallbacks)
		m.shardRuns.Set(cs.ShardRuns)
		m.shardHits.Set(cs.ShardHits)
		m.shardMisses.Set(cs.ShardMisses)
		m.shardReships.Set(cs.ShardReships)
		m.wireSent.Set(cs.WireBytesSent)
		m.wireRecv.Set(cs.WireBytesRecv)
		m.boundaryBytes.Set(cs.BoundaryBytes)
		m.workersLost.Set(cs.WorkersLost)
	}
}

// tenantLabels maps shared-executor tenant ids to serve-level tenant
// labels for the snapshot's per-tenant maps. Ids without a live key
// (e.g. just-released tenants still in the fairness snapshot) fall back
// to the numeric id.
func (s *Server) tenantLabels() map[int64]string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[int64]string, len(s.keys))
	for keyHash, handle := range s.keys {
		out[handle.ID()] = tenantLabel(keyHash)
	}
	return out
}

func labelForID(labels map[int64]string, id int64) string {
	if l, ok := labels[id]; ok {
		return l
	}
	return strconv.FormatInt(id, 10)
}
