package serve

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pytfhe/internal/params"
)

// weightFlags collects repeated -tenant-weight KEYHASHPREFIX=WEIGHT
// flags into the Config.TenantWeights map.
type weightFlags map[string]float64

func (w weightFlags) String() string {
	parts := make([]string, 0, len(w))
	for prefix, weight := range w {
		parts = append(parts, fmt.Sprintf("%s=%g", prefix, weight))
	}
	return strings.Join(parts, ",")
}

func (w weightFlags) Set(v string) error {
	prefix, val, ok := strings.Cut(v, "=")
	if !ok || prefix == "" {
		return fmt.Errorf("want KEYHASHPREFIX=WEIGHT, got %q", v)
	}
	weight, err := strconv.ParseFloat(val, 64)
	if err != nil || weight <= 0 {
		return fmt.Errorf("weight must be a positive number, got %q", val)
	}
	w[prefix] = weight
	return nil
}

// noiseParamSet resolves the -noise-params flag.
func noiseParamSet(name string) (*params.GateParams, error) {
	switch name {
	case "test":
		return params.Test(), nil
	case "default128", "default":
		return params.Default128(), nil
	}
	return nil, fmt.Errorf("unknown noise parameter set %q (want test or default128)", name)
}

// RunDaemon parses daemon flags, starts a Server, and blocks until
// SIGTERM/SIGINT triggers a graceful drain: stop accepting, finish
// in-flight evaluations, then exit. It backs both `pytfhed` and
// `pytfhe serve`.
func RunDaemon(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("pytfhed", flag.ContinueOnError)
	listen := fs.String("listen", "127.0.0.1:7701", "TCP listen address (port 0 picks a free port)")
	workers := fs.Int("workers", 0, "executor worker goroutines (0: NumCPU)")
	maxConc := fs.Int("max-concurrent", 0, "evaluations running at once (0: 2x workers)")
	queue := fs.Int("queue", 0, "admission queue bound beyond max-concurrent (0: 64)")
	timeout := fs.Duration("timeout", 0, "default per-request evaluation timeout (0: 5m)")
	batch := fs.Int("batch", 0, "bootstrap batch size per executor worker, amortized across tenant requests (0: 16, 1: unbatched)")
	noiseParams := fs.String("noise-params", "default128", "parameter set the admission noise analysis assumes: test or default128")
	minSigmas := fs.Float64("min-sigmas", 0, "sigma margin registered programs must keep under the noise analysis (0: default 4)")
	noNoise := fs.Bool("no-noise-check", false, "admit programs without the static noise-budget analysis")
	lut := fs.Bool("lut", false, "re-synthesize registered programs through lut-cluster: gate cones collapse into k-input programmable bootstraps before caching")
	drainT := fs.Duration("drain-timeout", time.Minute, "grace period for in-flight work on shutdown")
	addrFile := fs.String("addr-file", "", "write the bound address to this file once listening")
	clusterListen := fs.String("cluster-listen", "", "run a cluster coordinator on this address; pytfhe-worker processes join it and evaluations run as cached plan shards")
	clusterWorkers := fs.Int("cluster-workers", 0, "workers the first cluster evaluation waits for (0: 2)")
	clusterJoinWait := fs.Duration("cluster-join-wait", 0, "bound on that first wait before sticky local fallback (0: 30s)")
	clusterAddrFile := fs.String("cluster-addr-file", "", "write the coordinator's worker-join address to this file once listening")
	metricsAddr := fs.String("metrics-addr", "", "serve a Prometheus-text /metrics endpoint on this address (port 0 picks a free port)")
	metricsAddrFile := fs.String("metrics-addr-file", "", "write the bound metrics address to this file once listening")
	planCacheBytes := fs.Int64("plan-cache-bytes", 0, "byte cap on the compiled-plan cache; coldest plans are evicted and recompiled on next use (0: unbounded)")
	runtimeCacheBytes := fs.Int64("runtime-cache-bytes", 0, "byte cap on the per-key replay-runner cache (0: unbounded)")
	tenantMaxInflight := fs.Int("tenant-max-inflight", 0, "per-tenant cap on concurrently admitted evaluations (0: unlimited)")
	tenantMaxQueued := fs.Int("tenant-max-queued-gates", 0, "per-tenant cap on the total gate count of admitted evaluations (0: unlimited)")
	weights := weightFlags{}
	fs.Var(weights, "tenant-weight", "fair-share weight for a tenant as KEYHASHPREFIX=WEIGHT (repeatable; unmatched tenants weigh 1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clusterAddrFile != "" && *clusterListen == "" {
		return fmt.Errorf("-cluster-addr-file needs -cluster-listen")
	}
	if *metricsAddrFile != "" && *metricsAddr == "" {
		return fmt.Errorf("-metrics-addr-file needs -metrics-addr")
	}
	np, err := noiseParamSet(*noiseParams)
	if err != nil {
		return err
	}

	srv := New(Config{
		Workers:              *workers,
		MaxConcurrent:        *maxConc,
		QueueCap:             *queue,
		DefaultTimeout:       *timeout,
		Batch:                *batch,
		NoiseParams:          np,
		NoiseMinSigmas:       *minSigmas,
		DisableNoiseCheck:    *noNoise,
		LUT:                  *lut,
		ClusterListen:        *clusterListen,
		ClusterWorkers:       *clusterWorkers,
		ClusterJoinWait:      *clusterJoinWait,
		MetricsAddr:          *metricsAddr,
		PlanCacheBytes:       *planCacheBytes,
		RuntimeCacheBytes:    *runtimeCacheBytes,
		TenantMaxInFlight:    *tenantMaxInflight,
		TenantMaxQueuedGates: *tenantMaxQueued,
		TenantWeights:        weights,
	})
	if err := srv.Start(*listen); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "pytfhed: serving on %s (workers=%d, max-concurrent=%d, queue=%d, batch=%d, lut=%v)\n",
		srv.Addr(), srv.cfg.Workers, srv.cfg.MaxConcurrent, srv.cfg.QueueCap, srv.cfg.Batch, srv.cfg.LUT)
	if ca := srv.ClusterAddr(); ca != "" {
		fmt.Fprintf(stdout, "pytfhed: cluster coordinator on %s (join with pytfhe-worker, waiting for %d)\n",
			ca, srv.cfg.ClusterWorkers)
	}
	if ma := srv.MetricsAddr(); ma != "" {
		fmt.Fprintf(stdout, "pytfhed: metrics on http://%s/metrics\n", ma)
	}
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(srv.Addr()+"\n"), 0o644); err != nil {
			srv.Close()
			return err
		}
	}
	if *clusterAddrFile != "" {
		if err := os.WriteFile(*clusterAddrFile, []byte(srv.ClusterAddr()+"\n"), 0o644); err != nil {
			srv.Close()
			return err
		}
	}
	if *metricsAddrFile != "" {
		if err := os.WriteFile(*metricsAddrFile, []byte(srv.MetricsAddr()+"\n"), 0o644); err != nil {
			srv.Close()
			return err
		}
	}

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGINT, syscall.SIGTERM)
	sig := <-sigCh
	signal.Stop(sigCh)
	fmt.Fprintf(stdout, "pytfhed: %v — draining (grace %v)\n", sig, *drainT)
	ctx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		return fmt.Errorf("pytfhed: drain cut short: %w", err)
	}
	fmt.Fprintln(stdout, "pytfhed: drained, exiting")
	return nil
}
