package serve

import (
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/cluster"
	"pytfhe/internal/core"
)

// TestServeClusterDispatch is the daemon-side acceptance scenario for
// sharded dispatch: a server with a cluster coordinator, two workers that
// join before any session exists, and evaluations that ride the worker
// pool — the first paying the shard shipment, the second all cache hits.
// A second tenant's key never binds the pool, so its evaluation runs
// locally and still decrypts correctly.
func TestServeClusterDispatch(t *testing.T) {
	kps := tenantKeys(t)
	prog := adder4Prog(t)
	srv := startServer(t, Config{
		Workers:         2,
		ClusterListen:   "127.0.0.1:0",
		ClusterWorkers:  2,
		ClusterJoinWait: 30 * time.Second,
	})
	for i := 0; i < 2; i++ {
		// The workers park at the coordinator until the first session's key
		// broadcast; Serve errors on teardown are expected (conn close).
		go func() { _ = cluster.NewWorker(2).Serve(srv.ClusterAddr()) }()
	}

	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kps[0].Cloud); err != nil {
		t.Fatal(err)
	}
	for _, tc := range [][2]uint64{{5, 9}, {15, 15}} {
		in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
		outs, err := cl.Evaluate(info.Hash, kps[0].EncryptBits(in))
		if err != nil {
			t.Fatal(err)
		}
		if got := uintOf(kps[0].DecryptBits(outs)); got != tc[0]+tc[1] {
			t.Fatalf("cluster-served %d+%d = %d", tc[0], tc[1], got)
		}
	}

	// A different key never binds the already-bound pool: local execution,
	// same answer.
	cl2, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	if _, err := cl2.OpenSession(kps[1].Cloud); err != nil {
		t.Fatal(err)
	}
	in := append(bitsOf(3, 4), bitsOf(4, 4)...)
	outs, err := cl2.Evaluate(info.Hash, kps[1].EncryptBits(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := uintOf(kps[1].DecryptBits(outs)); got != 7 {
		t.Fatalf("local-fallback 3+4 = %d", got)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	cs := st.Cluster
	if cs == nil {
		t.Fatal("stats carried no cluster block")
	}
	if cs.Workers != 2 || cs.Evals != 2 || cs.ShardRuns != 2 {
		t.Fatalf("cluster stats = %+v, want 2 workers, 2 sharded evals", cs)
	}
	if cs.ShardMisses == 0 || cs.ShardHits == 0 {
		t.Fatalf("shard cache: %d hits, %d misses — want the first run to ship and the second to hit", cs.ShardHits, cs.ShardMisses)
	}
	// BoundaryBytes counts ciphertext payloads both ways (fills out,
	// exports back); the measured wire traffic must cover it plus framing.
	if cs.BoundaryBytes == 0 || cs.BoundaryBytes >= cs.WireBytesSent+cs.WireBytesRecv {
		t.Fatalf("wire accounting: boundary %d of %d sent + %d received",
			cs.BoundaryBytes, cs.WireBytesSent, cs.WireBytesRecv)
	}
	if st.Evaluations != 3 {
		t.Fatalf("evaluations = %d, want 3", st.Evaluations)
	}
}

// TestServeClusterPoolNeverUp: a coordinator whose workers never join must
// not take evaluations down with it — the join wait expires once, the
// failure is sticky, and everything runs locally.
func TestServeClusterPoolNeverUp(t *testing.T) {
	kps := tenantKeys(t)
	prog := adder4Prog(t)
	srv := startServer(t, Config{
		Workers:         1,
		ClusterListen:   "127.0.0.1:0",
		ClusterWorkers:  1,
		ClusterJoinWait: 50 * time.Millisecond,
	})
	cl, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	info, err := cl.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.OpenSession(kps[0].Cloud); err != nil {
		t.Fatal(err)
	}
	in := append(bitsOf(6, 4), bitsOf(7, 4)...)
	for run := 0; run < 2; run++ {
		start := time.Now()
		outs, err := cl.Evaluate(info.Hash, kps[0].EncryptBits(in))
		if err != nil {
			t.Fatal(err)
		}
		if got := uintOf(kps[0].DecryptBits(outs)); got != 13 {
			t.Fatalf("run %d: 6+7 = %d", run, got)
		}
		// The second run must not wait out the join budget again.
		if run == 1 && time.Since(start) > 20*time.Second {
			t.Fatalf("sticky fallback did not stick: run %d took %v", run, time.Since(start))
		}
	}
	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	// Only the first evaluation pays the join wait and counts as a
	// fallback; the sticky failure makes later evals plain local runs.
	cs := st.Cluster
	if cs == nil || cs.Evals != 0 || cs.Fallbacks != 1 {
		t.Fatalf("cluster stats = %+v, want 0 cluster evals, 1 fallback", cs)
	}

	// Reference decrypt to be sure the local path really ran the program.
	refOuts, err := core.Run(prog, backend.NewSingle(kps[0].Cloud), kps[0].EncryptBits(in))
	if err != nil {
		t.Fatal(err)
	}
	if uintOf(kps[0].DecryptBits(refOuts)) != 13 {
		t.Fatal("reference run disagrees")
	}
}
