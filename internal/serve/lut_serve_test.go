package serve

import (
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/core"
)

// naeProg compiles a classic 2-input-gate circuit full of clusterable
// cones: two not-all-equal detectors NAE(a,b,c) = (a⊕b)∨(b⊕c) over
// disjoint inputs, combined by an XOR. Under a -lut daemon each NAE cone
// collapses into one 0x7E programmable bootstrap at registration.
func naeProg(t testing.TB) *core.Program {
	t.Helper()
	b := circuit.NewBuilder("nae-pair", circuit.AllOptimizations())
	xs := b.Inputs("x", 6)
	nae := func(x, y, z circuit.NodeID) circuit.NodeID {
		return b.Or(b.Xor(x, y), b.Xor(y, z))
	}
	n1 := nae(xs[0], xs[1], xs[2])
	n2 := nae(xs[3], xs[4], xs[5])
	b.Output("n1", n1)
	b.Output("agree", b.Xor(n1, n2))
	return compile(t, b)
}

// TestServeLUT registers a classic binary with a -lut daemon and checks
// the whole surface: the program is re-synthesized into multi-bit form at
// admission (fewer bootstraps, LUTs > 0 in ProgramInfo) under the
// uploaded binary's hash, evaluations decrypt bit-identically to the
// classic netlist, and the Stats RPC reports the LUT counts.
func TestServeLUT(t *testing.T) {
	kp := tenantKeys(t)[0]
	prog := naeProg(t)
	if prog.Stats.LUTs != 0 {
		t.Fatalf("setup: classic binary already has %d LUTs", prog.Stats.LUTs)
	}

	srv := startServer(t, Config{Workers: 2, LUT: true})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	info, err := c.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if info.Hash != hashBytes(prog.Binary) {
		t.Fatalf("registry key %s is not the uploaded binary's hash", info.Hash)
	}
	if info.LUTs == 0 {
		t.Fatalf("lut daemon admitted %q without clustering: %+v", info.Name, info)
	}
	if info.Bootstrapped >= prog.Stats.Bootstrapped {
		t.Fatalf("clustering did not reduce bootstraps: %d -> %d",
			prog.Stats.Bootstrapped, info.Bootstrapped)
	}
	if !info.Noise.Checked {
		t.Fatal("noise analysis did not run on the clustered form")
	}
	if again, err := c.RegisterProgram(prog.Binary); err != nil || !again.Cached {
		t.Fatalf("re-register: cached=%v err=%v", again != nil && again.Cached, err)
	}

	if _, err := c.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	evals := 0
	for _, v := range []uint64{0, 0b101101, 0b111000, 0b010111} {
		bits := bitsOf(v, 6)
		want, err := prog.Netlist.Evaluate(bits)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := c.Evaluate(info.Hash, kp.EncryptBits(bits))
		if err != nil {
			t.Fatal(err)
		}
		got := kp.DecryptBits(outs)
		if len(got) != len(want) {
			t.Fatalf("inputs %06b: %d outputs, want %d", v, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("inputs %06b output %d: daemon says %v, classic netlist says %v", v, i, got[i], want[i])
			}
		}
		evals++
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(evals * info.LUTs); st.LUTsEvaluated != want {
		t.Fatalf("stats report %d LUTs evaluated, want %d", st.LUTsEvaluated, want)
	}

	// The same binary on a LUT-off daemon serves the classic form — and
	// still decrypts to the same bits, since the rewrite is exact.
	off := startServer(t, Config{Workers: 2})
	oc, err := Dial(off.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer oc.Close()
	oinfo, err := oc.RegisterProgram(prog.Binary)
	if err != nil {
		t.Fatal(err)
	}
	if oinfo.LUTs != 0 {
		t.Fatalf("lut-off daemon reports %d LUTs", oinfo.LUTs)
	}
	if _, err := oc.OpenSession(kp.Cloud); err != nil {
		t.Fatal(err)
	}
	bits := bitsOf(0b101101, 6)
	want, err := prog.Netlist.Evaluate(bits)
	if err != nil {
		t.Fatal(err)
	}
	outs, err := oc.Evaluate(oinfo.Hash, kp.EncryptBits(bits))
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range kp.DecryptBits(outs) {
		if g != want[i] {
			t.Fatalf("lut-off output %d: got %v, want %v", i, g, want[i])
		}
	}
	ost, err := oc.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if ost.LUTsEvaluated != 0 || ost.ExecutorLUTs != 0 {
		t.Fatalf("lut-off daemon counted LUTs: %+v", ost)
	}
}
