package shard

import (
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/plan"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// lutNetlist builds the mixed LUT/classic shape the synthesis pass emits,
// wired so LUT operands cross shard boundaries when split.
func lutNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-shard", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	w := b.Input("w")
	par := b.LUT(0x96, x, y, z)
	maj := b.LUT(0xE8, x, y, w)
	b.Output("mix", b.LUT(0x7E, par, maj, w))
	b.Output("and", b.Gate(logic.AND, par, maj))
	b.Output("xor", b.Gate(logic.XOR, par, z))
	return b.MustBuild()
}

// TestSplitLUTMatchesNetlist routes LUT plans through every shard count and
// checks the decomposition against the netlist on all input assignments,
// with Verify's independent simulation agreeing.
func TestSplitLUTMatchesNetlist(t *testing.T) {
	nl := lutNetlist()
	for _, workers := range []int{1, 2, 4} {
		p, err := plan.Compile(nl, workers)
		if err != nil {
			t.Fatalf("w=%d: %v", workers, err)
		}
		for _, n := range []int{1, 2, 3} {
			s, err := Split(p, n)
			if err != nil {
				t.Fatalf("w=%d n=%d: %v", workers, n, err)
			}
			if _, err := Verify(p, s); err != nil {
				t.Fatalf("w=%d n=%d verify: %v", workers, n, err)
			}
			for m := 0; m < 1<<nl.NumInputs; m++ {
				in := make([]bool, nl.NumInputs)
				for i := range in {
					in[i] = m>>i&1 == 1
				}
				want, err := nl.Evaluate(in)
				if err != nil {
					t.Fatal(err)
				}
				got := evalSharded(s, in)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("w=%d n=%d input %b output %d: sharded %v, reference %v",
							workers, n, m, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestShardHashCoversLUTTable asserts the ship-once cache key covers the
// truth table: shards identical except one LUT's table must not collide.
func TestShardHashCoversLUTTable(t *testing.T) {
	build := func(tt logic.TT) *Shard {
		b := circuit.NewBuilder("fp", circuit.NoOptimizations())
		x := b.Input("x")
		y := b.Input("y")
		z := b.Input("z")
		b.Output("o", b.LUT(tt, x, y, z))
		p, err := plan.Compile(b.MustBuild(), 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Split(p, 1)
		if err != nil {
			t.Fatal(err)
		}
		return s.Shards[0]
	}
	a, b := build(0x96), build(0xE8)
	// Force identical plan hashes so only the instruction bytes distinguish
	// the shards — the per-instruction layout itself must cover the table.
	b.PlanHash = a.PlanHash
	if a.contentHash() == b.contentHash() {
		t.Fatal("shards with different LUT tables share a content hash")
	}
}

// TestRuntimeEncryptedLUT drives the worker runtime homomorphically over a
// LUT plan split two ways, emulating the router, and checks decryption.
func TestRuntimeEncryptedLUT(t *testing.T) {
	sk, ck := keys(t)
	nl := lutNetlist()
	p, err := plan.Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Split(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	dim := ck.Params.LWEDimension
	engines := []*gate.Engine{gate.NewEngine(ck), gate.NewEngine(ck)}
	rts := make([]*Runtime, len(s.Shards))
	for w, sh := range s.Shards {
		rts[w] = NewRuntime(sh, dim)
	}
	var boots int64
	for _, m := range []uint64{0, 6, 11, 15} {
		inBits := make([]bool, nl.NumInputs)
		for i := range inBits {
			inBits[i] = m>>uint(i)&1 == 1
		}
		inputs := backend.EncryptInputs(sk, inBits)
		for _, rt := range rts {
			rt.Reset()
		}
		exports := make([]*lwe.Sample, s.CutEdges)
		for li := range p.Levels() {
			for w := range s.Shards {
				for _, f := range s.Fills[w][li] {
					var v *lwe.Sample
					if f.Input >= 0 {
						v = inputs[f.Input]
					} else {
						v = exports[f.Export]
					}
					if err := rts[w].SetRemote(f.Slot, v); err != nil {
						t.Fatal(err)
					}
				}
			}
			for w := range s.Shards {
				outs, err := rts[w].RunLevel(engines, li)
				if err != nil {
					t.Fatal(err)
				}
				for k, v := range outs {
					exports[s.ExportIDs[w][li][k]] = v
				}
			}
		}
		want, err := nl.Evaluate(inBits)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range s.Outputs {
			var got bool
			switch {
			case src.Input >= 0:
				got = backend.DecryptOutputs(sk, []*lwe.Sample{inputs[src.Input]})[0]
			case src.Export >= 0:
				got = backend.DecryptOutputs(sk, []*lwe.Sample{exports[src.Export]})[0]
			default:
				got = src.Const == plan.ConstTrue
			}
			if got != want[i] {
				t.Fatalf("input %d output %d: sharded %v, reference %v", m, i, got, want[i])
			}
		}
		boots = rts[0].Bootstraps() + rts[1].Bootstraps()
	}
	if boots == 0 {
		t.Fatal("no bootstraps counted")
	}
}
