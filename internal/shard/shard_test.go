package shard

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/params"
	"pytfhe/internal/plan"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func keys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("shard-test-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

func randomNetlist(seed int64, numInputs, numGates int) *circuit.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand", circuit.NoOptimizations())
	nodes := make([]circuit.NodeID, 0, numInputs+numGates)
	for i := 0; i < numInputs; i++ {
		nodes = append(nodes, b.Input("x"))
	}
	for i := 0; i < numGates; i++ {
		kind := logic.TFHEGates()[rng.Intn(11)]
		x := nodes[rng.Intn(len(nodes))]
		y := nodes[rng.Intn(len(nodes))]
		nodes = append(nodes, b.Gate(kind, x, y))
	}
	for i := 0; i < 4; i++ {
		b.Output("o", nodes[len(nodes)-1-i*2])
	}
	return b.MustBuild()
}

func nandChains(chains, depth int) *circuit.Netlist {
	b := circuit.NewBuilder("nand-chains", circuit.NoOptimizations())
	starts := b.Inputs("x", chains)
	y := b.Input("y")
	for c := 0; c < chains; c++ {
		n := starts[c]
		for d := 0; d < depth; d++ {
			n = b.Gate(logic.NAND, n, y)
		}
		b.Output("o", n)
	}
	return b.MustBuild()
}

// evalSharded interprets the decomposition over cleartext bits, emulating
// the coordinator's level-synchronized router exactly: all fills for a
// level install before any shard executes it, exports gather afterwards.
func evalSharded(s *Sharding, inputs []bool) []bool {
	vals := make([][]bool, len(s.Shards))
	for w, sh := range s.Shards {
		vals[w] = make([]bool, sh.NumRemote+sh.NumLocal)
	}
	exports := make([]bool, s.CutEdges)
	for li := range s.Plan.Levels() {
		for w := range s.Shards {
			for _, f := range s.Fills[w][li] {
				if f.Input >= 0 {
					vals[w][f.Slot] = inputs[f.Input]
				} else {
					vals[w][f.Slot] = exports[f.Export]
				}
			}
		}
		for w, sh := range s.Shards {
			for _, ins := range sh.Levels[li] {
				if ins.IsLUT() {
					if ins.Arity >= 3 {
						vals[w][ins.Out] = ins.TT.EvalBits(vals[w][ins.A], vals[w][ins.B], vals[w][ins.C])
					} else {
						vals[w][ins.Out] = ins.TT.EvalBits(vals[w][ins.A], vals[w][ins.B])
					}
					continue
				}
				vals[w][ins.Out] = ins.Kind.Eval(vals[w][ins.A], vals[w][ins.B])
			}
			for k, ref := range sh.Exports[li] {
				exports[s.ExportIDs[w][li][k]] = vals[w][ref]
			}
		}
	}
	outs := make([]bool, len(s.Outputs))
	for i, src := range s.Outputs {
		switch {
		case src.Input >= 0:
			outs[i] = inputs[src.Input]
		case src.Export >= 0:
			outs[i] = exports[src.Export]
		default:
			outs[i] = src.Const == plan.ConstTrue
		}
	}
	return outs
}

// TestSplitMatchesNetlist is the cleartext end-to-end proof: for every
// netlist × worker count × shard count, the routed decomposition computes
// the netlist's function on every input assignment, and Verify agrees.
func TestSplitMatchesNetlist(t *testing.T) {
	netlists := []*circuit.Netlist{
		randomNetlist(1, 5, 40),
		randomNetlist(2, 6, 80),
		randomNetlist(3, 4, 200),
		nandChains(3, 17),
	}
	for _, nl := range netlists {
		for _, workers := range []int{1, 2, 4} {
			p, err := plan.Compile(nl, workers)
			if err != nil {
				t.Fatalf("%s w=%d: %v", nl.Name, workers, err)
			}
			for _, n := range []int{1, 2, 3, 4, 7} {
				s, err := Split(p, n)
				if err != nil {
					t.Fatalf("%s w=%d n=%d: %v", nl.Name, workers, n, err)
				}
				if got := len(s.Shards); got > workers {
					t.Fatalf("%s: %d shards from a %d-worker plan", nl.Name, got, workers)
				}
				if _, err := Verify(p, s); err != nil {
					t.Fatalf("%s w=%d n=%d: %v", nl.Name, workers, n, err)
				}
				for m := 0; m < 1<<nl.NumInputs; m++ {
					in := make([]bool, nl.NumInputs)
					for i := range in {
						in[i] = m>>i&1 == 1
					}
					want, err := nl.Evaluate(in)
					if err != nil {
						t.Fatal(err)
					}
					got := evalSharded(s, in)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s w=%d n=%d input %b output %d: sharded %v, reference %v",
								nl.Name, workers, n, m, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestCutSmallerThanGates pins the wire-traffic win the subsystem exists
// for: the per-run boundary traffic (cut edges + input fills) must be
// strictly below what the legacy gate dispatcher ships (three ciphertexts
// per executed gate).
func TestCutSmallerThanGates(t *testing.T) {
	nl := nandChains(7, 30)
	p, err := plan.Compile(nl, 4)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Split(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	report, err := Verify(p, s)
	if err != nil {
		t.Fatal(err)
	}
	gateTraffic := 3 * p.Stats().ExecGates
	if boundary := report.CutEdges + report.Fills; boundary >= gateTraffic {
		t.Fatalf("boundary traffic %d (cut %d + fills %d) not below gate dispatch %d",
			boundary, report.CutEdges, report.Fills, gateTraffic)
	}
}

// TestShardHashes: the content hash is deterministic across splits, keyed
// by decomposition shape, and distinct across shards.
func TestShardHashes(t *testing.T) {
	p, err := plan.Compile(nandChains(3, 9), 4)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := Split(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Split(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for w := range s1.Shards {
		if s1.Shards[w].Hash != s2.Shards[w].Hash {
			t.Fatalf("shard %d hash differs across identical splits", w)
		}
		if s1.Shards[w].Hash == "" || s1.Shards[w].PlanHash != p.Fingerprint() {
			t.Fatalf("shard %d hash/planhash malformed: %+v", w, s1.Shards[w])
		}
	}
	if s1.Shards[0].Hash == s1.Shards[1].Hash {
		t.Fatal("distinct shards share a content hash")
	}
	s3, err := Split(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Shards[0].Hash == s1.Shards[0].Hash {
		t.Fatal("shard 0 hash identical across different shard counts")
	}
}

// TestVerifyCatchesSeededDefects mutates sound decompositions one defect
// at a time and requires Verify to reject each with the right class.
func TestVerifyCatchesSeededDefects(t *testing.T) {
	build := func() (*plan.Plan, *Sharding) {
		p, err := plan.Compile(randomNetlist(5, 6, 60), 4)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Split(p, 3)
		if err != nil {
			t.Fatal(err)
		}
		return p, s
	}
	findFill := func(s *Sharding) (w, li, k int) {
		for w := range s.Fills {
			for li := range s.Fills[w] {
				for k, f := range s.Fills[w][li] {
					if f.Export >= 0 {
						return w, li, k
					}
				}
			}
		}
		t.Fatal("no boundary fill in decomposition")
		return 0, 0, 0
	}
	t.Run("rewired-fill", func(t *testing.T) {
		p, s := build()
		w, li, k := findFill(s)
		s.Fills[w][li][k].Export = (s.Fills[w][li][k].Export + 1) % int32(s.CutEdges)
		if _, err := Verify(p, s); err == nil {
			t.Fatal("verify accepted a rewired boundary fill")
		}
	})
	t.Run("dropped-fill", func(t *testing.T) {
		p, s := build()
		w, li, k := findFill(s)
		s.Fills[w][li] = append(s.Fills[w][li][:k], s.Fills[w][li][k+1:]...)
		if _, err := Verify(p, s); !errors.Is(err, ErrRouting) && !errors.Is(err, ErrSemantics) {
			t.Fatalf("dropped fill: got %v, want routing or semantics error", err)
		}
	})
	t.Run("mutated-kind", func(t *testing.T) {
		// Flip one instruction's kind at a time (rebuilding between
		// attempts); at least one flip must land on a live instruction and
		// trip the semantic comparison.
		p, s := build()
		for w := range s.Shards {
			for li := range s.Shards[w].Levels {
				for k := range s.Shards[w].Levels[li] {
					p2, s2 := p, s
					if w+li+k > 0 {
						p2, s2 = build()
					}
					ins := &s2.Shards[w].Levels[li][k]
					if ins.Kind == logic.NAND {
						ins.Kind = logic.NOR
					} else {
						ins.Kind = logic.NAND
					}
					if _, err := Verify(p2, s2); errors.Is(err, ErrSemantics) {
						return
					}
				}
			}
		}
		t.Fatal("no kind flip tripped ErrSemantics")
	})
	t.Run("swapped-export-ids", func(t *testing.T) {
		p, s := build()
		for w := range s.ExportIDs {
			for li := range s.ExportIDs[w] {
				if len(s.ExportIDs[w][li]) >= 2 {
					ids := s.ExportIDs[w][li]
					ids[0], ids[1] = ids[1], ids[0]
					if _, err := Verify(p, s); err == nil {
						t.Fatal("verify accepted swapped export ids")
					}
					return
				}
			}
		}
		t.Skip("no level exports two values")
	})
	t.Run("truncated-level", func(t *testing.T) {
		p, s := build()
		for _, sh := range s.Shards {
			for li := range sh.Levels {
				if len(sh.Levels[li]) > 0 {
					sh.Levels[li] = sh.Levels[li][:len(sh.Levels[li])-1]
					if _, err := Verify(p, s); !errors.Is(err, ErrShape) && !errors.Is(err, ErrRouting) {
						t.Fatalf("truncated level: got %v, want shape or routing error", err)
					}
					return
				}
			}
		}
	})
}

// TestRuntimeEncrypted drives per-shard Runtimes through a local router
// loop over real ciphertexts and checks the decrypted outputs against the
// netlist — the single-process proof of the worker-side execution path.
func TestRuntimeEncrypted(t *testing.T) {
	sk, ck := keys(t)
	nl := nandChains(3, 5)
	p, err := plan.Compile(nl, 2)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Split(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	dim := ck.Params.LWEDimension
	engines := []*gate.Engine{gate.NewEngine(ck), gate.NewEngine(ck)}
	rts := make([]*Runtime, len(s.Shards))
	for w, sh := range s.Shards {
		rts[w] = NewRuntime(sh, dim)
	}
	for _, m := range []uint64{0, 5, 15} {
		inBits := make([]bool, nl.NumInputs)
		for i := range inBits {
			inBits[i] = m>>uint(i)&1 == 1
		}
		inputs := backend.EncryptInputs(sk, inBits)
		for _, rt := range rts {
			rt.Reset()
		}
		exports := make([]*lwe.Sample, s.CutEdges)
		for li := range p.Levels() {
			for w := range s.Shards {
				for _, f := range s.Fills[w][li] {
					var v *lwe.Sample
					if f.Input >= 0 {
						v = inputs[f.Input]
					} else {
						v = exports[f.Export]
					}
					if err := rts[w].SetRemote(f.Slot, v); err != nil {
						t.Fatal(err)
					}
				}
			}
			for w := range s.Shards {
				outs, err := rts[w].RunLevel(engines, li)
				if err != nil {
					t.Fatal(err)
				}
				for k, v := range outs {
					exports[s.ExportIDs[w][li][k]] = v
				}
			}
		}
		want, err := nl.Evaluate(inBits)
		if err != nil {
			t.Fatal(err)
		}
		for i, src := range s.Outputs {
			var got bool
			switch {
			case src.Input >= 0:
				got = backend.DecryptOutputs(sk, []*lwe.Sample{inputs[src.Input]})[0]
			case src.Export >= 0:
				got = backend.DecryptOutputs(sk, []*lwe.Sample{exports[src.Export]})[0]
			default:
				got = src.Const == plan.ConstTrue
			}
			if got != want[i] {
				t.Fatalf("input %d output %d: sharded %v, reference %v", m, i, got, want[i])
			}
		}
	}
	if rts[0].Bootstraps()+rts[1].Bootstraps() == 0 {
		t.Fatal("no bootstraps counted")
	}
}
