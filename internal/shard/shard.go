// Package shard partitions a compiled plan.Plan into per-worker shards so
// the cluster coordinator can become a data-plane router instead of a gate
// dispatcher. The cut follows the plan's existing static level partition:
// shard w owns batch columns j ≡ w (mod n) of every level, so the
// compiler's heaviest-first balance carries over and the split itself is a
// single linear walk. Each shard is a self-contained replay program — its
// instructions renumbered into a private value table of remote-input slots
// (values produced elsewhere: run inputs and cross-shard boundary values)
// followed by local arena slots — plus a per-level export manifest naming
// the values other shards or the run outputs will consume. The shard is
// shipped to its worker once, keyed by content hash, and cached across
// runs; per run only the boundary traffic moves: O(cut edges) ciphertexts
// instead of the legacy path's O(gates).
//
// This is the distributed-inference shape the paper reaches with Ray
// actors and CHET reaches with its compiler/runtime split: the expensive
// placement decision happens once at compile time, the runtime is a thin
// level-synchronized router. Correctness of arena-slot reuse carries over
// from the plan: the router barriers on every level exactly like
// plan.Replay's workers, exported values are gob-copied off the producer
// before any later level can rewrite the slot, and distinct generations of
// a reused global slot get distinct export ids (and therefore distinct
// remote slots in every consumer).
package shard

import (
	"errors"
	"fmt"

	"pytfhe/internal/plan"
)

// Shard is the self-contained slice of a compiled plan owned by one
// worker. It is the unit of shipment and caching: Hash keys the worker's
// cross-run shard cache, so a program evaluated twice ships its shards
// exactly once.
//
// Local refs partition into remote-input slots [0, NumRemote) — filled by
// the router each run with input or boundary ciphertexts — and local
// arena slots [NumRemote, NumRemote+NumLocal) written by the shard's own
// instructions.
type Shard struct {
	PlanHash string // fingerprint of the source plan
	Index    int    // shard index within the decomposition
	Count    int    // total shards in the decomposition
	Hash     string // content hash of this shard (ship-once cache key)

	NumRemote int // remote-input slots the router fills per run
	NumLocal  int // slots the shard's own instructions write

	// Levels[l] holds the shard's instructions for global plan level l;
	// an empty entry means the shard idles through that level and the
	// router skips it entirely.
	Levels [][]plan.Instr
	// Exports[l] lists the local refs whose values return to the router
	// after level l executes, in manifest order (the router pairs them
	// with Sharding.ExportIDs[shard][l] by position).
	Exports [][]int32
}

// Fill instructs the router to install one value into a shard's
// remote-input slot before a level runs. Exactly one of Input (a run
// input index) and Export (a boundary export id) is non-negative. Fills
// are scheduled at the consumer's first-use level, which by construction
// is a level where the shard has instructions.
type Fill struct {
	Slot   int32 // remote slot in the consumer shard
	Input  int32 // run input index, or -1
	Export int32 // boundary export id, or -1
}

// OutputSrc locates one plan output for the router's collector: a
// constant sentinel, a run input (COPY collapse can fold an output onto
// an input), or a boundary export.
type OutputSrc struct {
	Input  int32    // run input index, or -1
	Export int32    // boundary export id, or -1
	Const  plan.Ref // ConstFalse/ConstTrue; consulted only when Input and Export are -1
}

// Sharding is the complete decomposition of one plan: the shards to ship
// plus the routing manifest the coordinator drives each run with. The
// manifest never leaves the coordinator — workers see only their Shard.
type Sharding struct {
	Plan   *plan.Plan
	Shards []*Shard

	// Fills[w][l] lists the remote-slot installs shard w needs before
	// executing level l.
	Fills [][][]Fill
	// ExportIDs[w][l] holds the boundary export ids aligned by position
	// with Shards[w].Exports[l].
	ExportIDs [][][]int32
	// Outputs locates each plan output, aligned with Plan.Outputs().
	Outputs []OutputSrc
	// CutEdges counts the distinct boundary values streamed back to the
	// router per run — the wire traffic the decomposition pays instead of
	// the legacy path's per-gate operand shipping.
	CutEdges int
}

// ErrSplit marks a decomposition request Split cannot honor.
var ErrSplit = errors.New("shard: invalid split")

// writerRec tracks, per global arena slot, the shard and local ref that
// hold its current generation, the level that wrote it, and the boundary
// export id assigned to that generation (-1 until a foreign reader or a
// run output needs it).
type writerRec struct {
	shard  int
	local  int32 // provisional local ref (encoded -1-idx until finalize)
	level  int
	export int32
}

// Split decomposes a compiled plan into n shards along its static level
// partition. n is clamped to the plan's worker count (extra workers would
// own empty batch columns). The walk maintains, per global arena slot,
// which shard wrote its current generation; a read from another shard (or
// a plan output) lazily creates a boundary export at the producer and a
// remote-input slot at the consumer, so only values that actually cross
// the cut are ever routed.
func Split(p *plan.Plan, n int) (*Sharding, error) {
	if p == nil {
		return nil, fmt.Errorf("%w: nil plan", ErrSplit)
	}
	if n < 1 {
		return nil, fmt.Errorf("%w: %d shards", ErrSplit, n)
	}
	if n > p.Workers {
		n = p.Workers
	}
	np := plan.Ref(p.NumInputs)
	levels := p.Levels()
	planHash := p.Fingerprint()

	writers := make([]writerRec, p.ArenaSlots())
	for i := range writers {
		writers[i].shard = -1
	}

	s := &Sharding{
		Plan:      p,
		Shards:    make([]*Shard, n),
		Fills:     make([][][]Fill, n),
		ExportIDs: make([][][]int32, n),
	}
	remoteIn := make([]map[int32]int32, n)  // run input index → remote slot
	remoteExp := make([]map[int32]int32, n) // export id → remote slot
	localOf := make([]map[int32]int32, n)   // global arena slot → local slot index
	for w := 0; w < n; w++ {
		s.Shards[w] = &Shard{
			PlanHash: planHash,
			Index:    w,
			Count:    n,
			Levels:   make([][]plan.Instr, len(levels)),
			Exports:  make([][]int32, len(levels)),
		}
		s.Fills[w] = make([][]Fill, len(levels))
		s.ExportIDs[w] = make([][]int32, len(levels))
		remoteIn[w] = make(map[int32]int32)
		remoteExp[w] = make(map[int32]int32)
		localOf[w] = make(map[int32]int32)
	}

	nextExport := int32(0)
	// ensureExport assigns a boundary export id to the generation wr
	// currently holds, appending it to the producer's manifest for the
	// level that wrote it. Appending retroactively is safe: nothing is
	// streamed during Split, and the worker sends Exports[l] at the end
	// of level l, before any later level can rewrite the slot.
	ensureExport := func(wr *writerRec) int32 {
		if wr.export >= 0 {
			return wr.export
		}
		wr.export = nextExport
		nextExport++
		prod := s.Shards[wr.shard]
		prod.Exports[wr.level] = append(prod.Exports[wr.level], wr.local)
		s.ExportIDs[wr.shard][wr.level] = append(s.ExportIDs[wr.shard][wr.level], wr.export)
		return wr.export
	}
	// mapRead renumbers an operand ref into shard w's table at level li,
	// creating remote slots and fills on first foreign use.
	mapRead := func(w, li int, r plan.Ref) (plan.Ref, error) {
		if r < np { // run input
			if slot, ok := remoteIn[w][r]; ok {
				return slot, nil
			}
			slot := int32(s.Shards[w].NumRemote)
			s.Shards[w].NumRemote++
			remoteIn[w][r] = slot
			s.Fills[w][li] = append(s.Fills[w][li], Fill{Slot: slot, Input: r, Export: -1})
			return slot, nil
		}
		g := r - np
		wr := &writers[g]
		if wr.shard < 0 {
			return 0, fmt.Errorf("%w: level %d reads arena slot %d before any level writes it", ErrSplit, li, g)
		}
		if wr.shard == w {
			lo, ok := localOf[w][g]
			if !ok {
				return 0, fmt.Errorf("%w: shard-local read of arena slot %d has no local slot", ErrSplit, g)
			}
			return -1 - lo, nil
		}
		e := ensureExport(wr)
		if slot, ok := remoteExp[w][e]; ok {
			return slot, nil
		}
		slot := int32(s.Shards[w].NumRemote)
		s.Shards[w].NumRemote++
		remoteExp[w][e] = slot
		s.Fills[w][li] = append(s.Fills[w][li], Fill{Slot: slot, Input: -1, Export: e})
		return slot, nil
	}

	// Two passes per level: operands resolve against the writer records of
	// strictly earlier levels (instructions within a wavefront are
	// independent), then the level's writes update the records.
	type pending struct {
		w       int
		ins     plan.Instr
		a, b, c plan.Ref
	}
	var pends []pending
	for li, lv := range levels {
		pends = pends[:0]
		for j, instrs := range lv.Batches {
			w := j % n
			for _, ins := range instrs {
				a, err := mapRead(w, li, ins.A)
				if err != nil {
					return nil, err
				}
				b, err := mapRead(w, li, ins.B)
				if err != nil {
					return nil, err
				}
				var c plan.Ref
				if ins.Arity >= 3 {
					if c, err = mapRead(w, li, ins.C); err != nil {
						return nil, err
					}
				}
				pends = append(pends, pending{w: w, ins: ins, a: a, b: b, c: c})
			}
		}
		for _, pd := range pends {
			sh := s.Shards[pd.w]
			g := pd.ins.Out - np
			lo, ok := localOf[pd.w][g]
			if !ok {
				lo = int32(sh.NumLocal)
				sh.NumLocal++
				localOf[pd.w][g] = lo
			}
			out := -1 - lo // provisional local encoding
			writers[g] = writerRec{shard: pd.w, local: out, level: li, export: -1}
			sh.Levels[li] = append(sh.Levels[li], plan.Instr{
				Kind: pd.ins.Kind, Out: out, A: pd.a, B: pd.b,
				C: pd.c, TT: pd.ins.TT, Arity: pd.ins.Arity,
			})
		}
	}

	for _, r := range p.Outputs() {
		switch {
		case r == plan.ConstFalse || r == plan.ConstTrue:
			s.Outputs = append(s.Outputs, OutputSrc{Input: -1, Export: -1, Const: r})
		case r < np:
			s.Outputs = append(s.Outputs, OutputSrc{Input: r, Export: -1})
		default:
			wr := &writers[r-np]
			if wr.shard < 0 {
				return nil, fmt.Errorf("%w: output reads arena slot %d that no level writes", ErrSplit, r-np)
			}
			s.Outputs = append(s.Outputs, OutputSrc{Input: -1, Export: ensureExport(wr)})
		}
	}
	s.CutEdges = int(nextExport)

	// Finalize: local refs were provisionally encoded -1-idx because the
	// remote-slot count was still growing; rebase them past NumRemote.
	for _, sh := range s.Shards {
		for li := range sh.Levels {
			for k := range sh.Levels[li] {
				ins := &sh.Levels[li][k]
				ins.Out = finalRef(sh, ins.Out)
				ins.A = finalRef(sh, ins.A)
				ins.B = finalRef(sh, ins.B)
				if ins.Arity >= 3 {
					ins.C = finalRef(sh, ins.C)
				}
			}
			for k, ref := range sh.Exports[li] {
				sh.Exports[li][k] = finalRef(sh, ref)
			}
		}
		sh.Hash = sh.contentHash()
	}
	return s, nil
}

// finalRef rebases a provisional ref: remote refs ([0, NumRemote)) pass
// through, provisional locals (-1-idx) land at NumRemote+idx.
func finalRef(sh *Shard, r plan.Ref) plan.Ref {
	if r < 0 {
		return int32(sh.NumRemote) + (-1 - r)
	}
	return r
}
