package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"io"

	"pytfhe/internal/plan"
)

// contentHash digests everything the worker's execution of this shard
// depends on: the source-plan fingerprint, the shard's position in the
// decomposition, the value-table shape, the full instruction stream, and
// the export manifest. Two shards hash equal exactly when a cached replay
// runtime built from one can execute the other, which is what makes the
// hash safe as the ship-once cache key.
func (sh *Shard) contentHash() string {
	h := sha256.New()
	io.WriteString(h, sh.PlanHash) // sha256.Write cannot fail
	writeShardInt(h, int64(sh.Index))
	writeShardInt(h, int64(sh.Count))
	writeShardInt(h, int64(sh.NumRemote))
	writeShardInt(h, int64(sh.NumLocal))
	writeShardInt(h, int64(len(sh.Levels)))
	for li := range sh.Levels {
		writeShardInt(h, int64(len(sh.Levels[li])))
		for _, ins := range sh.Levels[li] {
			h.Write(plan.HashInstrBytes(ins))
		}
		writeShardInt(h, int64(len(sh.Exports[li])))
		for _, ref := range sh.Exports[li] {
			writeShardInt(h, int64(ref))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

func writeShardInt(w io.Writer, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	w.Write(buf[:]) // sha256.Write cannot fail
}
