package shard

import (
	"errors"
	"fmt"

	"pytfhe/internal/logic"
	"pytfhe/internal/plan"
)

// evalInstrWord evaluates one instruction bit-parallel: LUT instructions
// through their truth table (the third operand read from tbl[cRef] only at
// arity 3, so classic instructions never index with their zero C field),
// classic gates through the kind.
func evalInstrWord(ins plan.Instr, a, b uint64, tbl []uint64, cRef plan.Ref) uint64 {
	if ins.IsLUT() {
		var c uint64
		if ins.Arity >= 3 {
			c = tbl[cRef]
		}
		return plan.EvalWordTT(ins.TT, int(ins.Arity), a, b, c)
	}
	return plan.EvalWord(ins.Kind, a, b)
}

// Verification failure classes for shard decompositions, mirroring
// plan.Verify's sentinel style so callers classify with errors.Is.
var (
	// ErrShape: the decomposition is structurally malformed — shard/level
	// counts inconsistent with the plan, refs out of range, or manifest
	// slices misaligned.
	ErrShape = errors.New("shard: verify: malformed sharding")
	// ErrRouting: the routing manifest is unsound — a remote slot read
	// before any fill installs it, a fill consuming an export no earlier
	// level produced, a local slot read before written, or export ids
	// that do not cover [0, CutEdges) exactly once.
	ErrRouting = errors.New("shard: verify: routing manifest inconsistent")
	// ErrSemantics: the sharded execution's outputs differ from the source
	// plan's under some simulated input assignment.
	ErrSemantics = errors.New("shard: verify: sharded outputs differ from plan")
)

// VerifyReport summarizes a successful decomposition verification.
type VerifyReport struct {
	Shards       int
	Instructions int
	CutEdges     int // boundary ciphertexts routed per run
	Fills        int // remote-slot installs per run (inputs + boundary)
	Vectors      int
	Exhaustive   bool
}

func (r *VerifyReport) String() string {
	mode := "sampled"
	if r.Exhaustive {
		mode = "exhaustive"
	}
	return fmt.Sprintf("sharding verified: %d shards / %d instrs, %d cut edges, %d fills, %d vectors (%s)",
		r.Shards, r.Instructions, r.CutEdges, r.Fills, r.Vectors, mode)
}

// Verify extends plan verification to a shard decomposition: it re-derives
// that routing the plan through s — filling remote slots level by level,
// executing each shard's renumbered instructions, gathering exports — is
// equivalent to replaying the plan directly. Structure first (ref ranges,
// manifest alignment, export-id coverage), then the same bit-parallel
// simulation schedule plan.Verify uses (plan.SimRounds/SimFill/EvalWord),
// emulating the router over 64 packed assignments per word and comparing
// outputs against the unsharded plan. Definedness is tracked per slot, so
// a read of a never-filled remote slot or never-written local slot is
// caught even when its garbage value happens to agree.
func Verify(p *plan.Plan, s *Sharding) (*VerifyReport, error) {
	if p == nil || s == nil {
		return nil, fmt.Errorf("%w: nil plan or sharding", ErrShape)
	}
	np := p.NumInputs
	levels := p.Levels()
	n := len(s.Shards)
	if n == 0 || len(s.Fills) != n || len(s.ExportIDs) != n {
		return nil, fmt.Errorf("%w: %d shards, %d fill tables, %d export tables", ErrShape, n, len(s.Fills), len(s.ExportIDs))
	}
	if len(s.Outputs) != len(p.Outputs()) {
		return nil, fmt.Errorf("%w: %d output sources, plan has %d outputs", ErrShape, len(s.Outputs), len(p.Outputs()))
	}
	report := &VerifyReport{Shards: n, CutEdges: s.CutEdges}

	// Structural pass: shapes, ref ranges, manifest alignment, and that
	// the per-level instruction counts across shards add up to the plan's.
	seenExport := make([]bool, s.CutEdges)
	for w, sh := range s.Shards {
		if sh == nil || len(sh.Levels) != len(levels) || len(sh.Exports) != len(levels) {
			return nil, fmt.Errorf("%w: shard %d has %d levels, plan has %d", ErrShape, w, len(sh.Levels), len(levels))
		}
		if len(s.Fills[w]) != len(levels) || len(s.ExportIDs[w]) != len(levels) {
			return nil, fmt.Errorf("%w: shard %d manifest not level-aligned", ErrShape, w)
		}
		nRefs := int32(sh.NumRemote + sh.NumLocal)
		for li := range sh.Levels {
			for k, ins := range sh.Levels[li] {
				report.Instructions++
				if ins.Out < int32(sh.NumRemote) || ins.Out >= nRefs {
					return nil, fmt.Errorf("%w: shard %d level %d instr %d writes ref %d (locals are [%d,%d))",
						ErrShape, w, li, k, ins.Out, sh.NumRemote, nRefs)
				}
				if ins.A < 0 || ins.A >= nRefs || ins.B < 0 || ins.B >= nRefs {
					return nil, fmt.Errorf("%w: shard %d level %d instr %d reads refs %d,%d (valid range [0,%d))",
						ErrShape, w, li, k, ins.A, ins.B, nRefs)
				}
				if ins.Arity != 0 && (ins.Arity < 2 || int(ins.Arity) > logic.MaxLUTArity) {
					return nil, fmt.Errorf("%w: shard %d level %d instr %d has LUT arity %d", ErrShape, w, li, k, ins.Arity)
				}
				if ins.Arity >= 3 && (ins.C < 0 || ins.C >= nRefs) {
					return nil, fmt.Errorf("%w: shard %d level %d instr %d reads LUT ref %d (valid range [0,%d))",
						ErrShape, w, li, k, ins.C, nRefs)
				}
			}
			if len(sh.Exports[li]) != len(s.ExportIDs[w][li]) {
				return nil, fmt.Errorf("%w: shard %d level %d exports %d refs but %d ids",
					ErrShape, w, li, len(sh.Exports[li]), len(s.ExportIDs[w][li]))
			}
			for k, ref := range sh.Exports[li] {
				if ref < int32(sh.NumRemote) || ref >= nRefs {
					return nil, fmt.Errorf("%w: shard %d level %d export %d names ref %d (locals are [%d,%d))",
						ErrShape, w, li, k, ref, sh.NumRemote, nRefs)
				}
				e := s.ExportIDs[w][li][k]
				if e < 0 || int(e) >= s.CutEdges {
					return nil, fmt.Errorf("%w: shard %d level %d export id %d outside [0,%d)", ErrShape, w, li, e, s.CutEdges)
				}
				if seenExport[e] {
					return nil, fmt.Errorf("%w: export id %d produced twice", ErrRouting, e)
				}
				seenExport[e] = true
			}
			for _, f := range s.Fills[w][li] {
				report.Fills++
				if f.Slot < 0 || f.Slot >= int32(sh.NumRemote) {
					return nil, fmt.Errorf("%w: shard %d level %d fill targets slot %d (remotes are [0,%d))",
						ErrShape, w, li, f.Slot, sh.NumRemote)
				}
				switch {
				case f.Input >= 0 && f.Export < 0:
					if f.Input >= int32(np) {
						return nil, fmt.Errorf("%w: fill reads run input %d of %d", ErrShape, f.Input, np)
					}
				case f.Export >= 0 && f.Input < 0:
					if int(f.Export) >= s.CutEdges {
						return nil, fmt.Errorf("%w: fill reads export %d of %d", ErrShape, f.Export, s.CutEdges)
					}
				default:
					return nil, fmt.Errorf("%w: fill names both or neither of input/export (%d,%d)", ErrShape, f.Input, f.Export)
				}
			}
		}
	}
	for e, ok := range seenExport {
		if !ok {
			return nil, fmt.Errorf("%w: export id %d never produced", ErrRouting, e)
		}
	}
	for li := range levels {
		planCount := 0
		for _, instrs := range levels[li].Batches {
			planCount += len(instrs)
		}
		shardCount := 0
		for _, sh := range s.Shards {
			shardCount += len(sh.Levels[li])
		}
		if planCount != shardCount {
			return nil, fmt.Errorf("%w: level %d has %d plan instrs but %d sharded", ErrShape, li, planCount, shardCount)
		}
	}
	for i, src := range s.Outputs {
		switch {
		case src.Input >= 0 && src.Export < 0:
			if src.Input >= int32(np) {
				return nil, fmt.Errorf("%w: output %d reads run input %d of %d", ErrShape, i, src.Input, np)
			}
		case src.Export >= 0 && src.Input < 0:
			if int(src.Export) >= s.CutEdges {
				return nil, fmt.Errorf("%w: output %d reads export %d of %d", ErrShape, i, src.Export, s.CutEdges)
			}
		case src.Const == plan.ConstFalse || src.Const == plan.ConstTrue:
		default:
			return nil, fmt.Errorf("%w: output %d has no source", ErrShape, i)
		}
	}

	// Simulation pass: emulate the router bit-parallel over the same
	// deterministic vector schedule plan.Verify uses, with per-slot
	// definedness tracking.
	rounds, exhaustive := plan.SimRounds(np)
	report.Exhaustive = exhaustive
	report.Vectors = rounds * 64
	rng := plan.NewSimRNG()
	inWords := make([]uint64, np)
	planWords := make([]uint64, np+p.ArenaSlots())
	exports := make([]uint64, s.CutEdges)
	exportReady := make([]bool, s.CutEdges)
	words := make([][]uint64, n)
	defined := make([][]bool, n)
	for w, sh := range s.Shards {
		words[w] = make([]uint64, sh.NumRemote+sh.NumLocal)
		defined[w] = make([]bool, sh.NumRemote+sh.NumLocal)
	}
	for r := 0; r < rounds; r++ {
		plan.SimFill(inWords, r, exhaustive, rng)
		copy(planWords, inWords)
		for e := range exportReady {
			exportReady[e] = false
		}
		for w := range defined {
			for i := range defined[w] {
				defined[w][i] = false
			}
		}
		for _, lv := range levels {
			for _, instrs := range lv.Batches {
				for _, ins := range instrs {
					planWords[ins.Out] = evalInstrWord(ins, planWords[ins.A], planWords[ins.B], planWords, ins.C)
				}
			}
		}
		for li := range levels {
			// The router installs every shard's fills for a level before
			// any shard executes it; the simulation must match, so a fill
			// consuming a same-level export is caught as unrouteable.
			for w := range s.Shards {
				for _, f := range s.Fills[w][li] {
					if f.Input >= 0 {
						words[w][f.Slot] = inWords[f.Input]
					} else {
						if !exportReady[f.Export] {
							return nil, fmt.Errorf("%w: shard %d level %d fill consumes export %d before it is produced",
								ErrRouting, w, li, f.Export)
						}
						words[w][f.Slot] = exports[f.Export]
					}
					defined[w][f.Slot] = true
				}
			}
			for w, sh := range s.Shards {
				for k, ins := range sh.Levels[li] {
					if !defined[w][ins.A] || !defined[w][ins.B] || (ins.Arity >= 3 && !defined[w][ins.C]) {
						return nil, fmt.Errorf("%w: shard %d level %d instr %d reads an undefined slot", ErrRouting, w, li, k)
					}
					words[w][ins.Out] = evalInstrWord(ins, words[w][ins.A], words[w][ins.B], words[w], ins.C)
					defined[w][ins.Out] = true
				}
				for k, ref := range sh.Exports[li] {
					if !defined[w][ref] {
						return nil, fmt.Errorf("%w: shard %d level %d exports undefined ref %d", ErrRouting, w, li, ref)
					}
					exports[s.ExportIDs[w][li][k]] = words[w][ref]
					exportReady[s.ExportIDs[w][li][k]] = true
				}
			}
		}
		for i, src := range s.Outputs {
			var got uint64
			switch {
			case src.Input >= 0:
				got = inWords[src.Input]
			case src.Export >= 0:
				got = exports[src.Export]
			case src.Const == plan.ConstTrue:
				got = ^uint64(0)
			default:
				got = 0
			}
			ref := p.Outputs()[i]
			var want uint64
			switch {
			case ref == plan.ConstFalse:
				want = 0
			case ref == plan.ConstTrue:
				want = ^uint64(0)
			default:
				want = planWords[ref]
			}
			if got != want {
				return nil, fmt.Errorf("%w: output %d differs on simulated assignments (round %d)", ErrSemantics, i, r)
			}
		}
	}
	return report, nil
}
