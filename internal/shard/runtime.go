package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"pytfhe/internal/exec"
	"pytfhe/internal/plan"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// Runtime is the worker-side replay state for one shard: a value table
// whose remote-input slots the router fills each run (SetRemote) and whose
// local slots come from a lazily populated exec.Arena, exactly like
// plan.Runtime's. A Runtime is single-owner between levels — the worker's
// serve loop installs fills and drives RunLevel sequentially; only the
// engine fan-out inside RunLevel is concurrent, and it touches disjoint
// slots (the plan's level independence carries over to the shard). The
// unsynced-exec-state analyzer enforces that remote-slot writes never
// happen on a Runtime captured by a goroutine outside the executor layer.
type Runtime struct {
	sh    *Shard
	arena *exec.Arena
	vals  []*lwe.Sample
	boots int64
}

// NewRuntime builds a reusable runtime for sh at the given LWE dimension.
func NewRuntime(sh *Shard, dim int) *Runtime {
	return &Runtime{
		sh:    sh,
		arena: exec.NewArena(dim),
		vals:  make([]*lwe.Sample, sh.NumRemote+sh.NumLocal),
	}
}

// Shard returns the shard this runtime executes.
func (rt *Runtime) Shard() *Shard { return rt.sh }

// Bootstraps returns the bootstrapped instructions executed since the
// last Reset.
func (rt *Runtime) Bootstraps() int64 { return atomic.LoadInt64(&rt.boots) }

// SetRemote installs a router-delivered ciphertext into a remote-input
// slot. The runtime borrows the sample for the rest of the run; it is
// never returned to the arena (it was not allocated from it).
func (rt *Runtime) SetRemote(slot int32, v *lwe.Sample) error {
	if slot < 0 || slot >= int32(rt.sh.NumRemote) {
		return fmt.Errorf("shard: remote slot %d outside [0,%d)", slot, rt.sh.NumRemote)
	}
	if v == nil {
		return fmt.Errorf("%w: remote slot %d", exec.ErrNilInput, slot)
	}
	rt.vals[slot] = v
	return nil
}

// RunLevel executes the shard's instructions for one global plan level,
// fanning the batch out across the worker's engines — safe because
// instructions within a level write disjoint slots and read only earlier
// levels, so the only shared structure is the internally locked arena —
// and returns the level's exported ciphertexts in manifest order.
func (rt *Runtime) RunLevel(engines []*gate.Engine, level int) ([]*lwe.Sample, error) {
	if level < 0 || level >= len(rt.sh.Levels) {
		return nil, fmt.Errorf("shard %d: level %d outside plan (%d levels)", rt.sh.Index, level, len(rt.sh.Levels))
	}
	instrs := rt.sh.Levels[level]
	if len(instrs) > 0 {
		if len(engines) == 0 {
			return nil, fmt.Errorf("shard %d: no engines", rt.sh.Index)
		}
		chunk := (len(instrs) + len(engines) - 1) / len(engines)
		var wg sync.WaitGroup
		var errMu sync.Mutex
		var firstErr error
		for e := 0; e*chunk < len(instrs); e++ {
			lo, hi := e*chunk, (e+1)*chunk
			if hi > len(instrs) {
				hi = len(instrs)
			}
			wg.Add(1)
			go func(eng *gate.Engine, part []plan.Instr) {
				defer wg.Done()
				if err := rt.runChunk(eng, part); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
				}
			}(engines[e], instrs[lo:hi])
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}
	exp := rt.sh.Exports[level]
	outs := make([]*lwe.Sample, len(exp))
	for i, ref := range exp {
		v := rt.vals[ref]
		if v == nil {
			return nil, fmt.Errorf("shard %d: level %d exports unwritten slot %d", rt.sh.Index, level, ref)
		}
		outs[i] = v
	}
	return outs, nil
}

// runChunk evaluates one engine's slice of a level. Output slots allocate
// from the arena on first touch, mirroring plan.Runtime's lazy warm-up.
func (rt *Runtime) runChunk(eng *gate.Engine, part []plan.Instr) error {
	for _, ins := range part {
		a, b := rt.vals[ins.A], rt.vals[ins.B]
		if a == nil || b == nil {
			return fmt.Errorf("shard %d: instr reads unfilled slot (%d,%d)", rt.sh.Index, ins.A, ins.B)
		}
		out := rt.vals[ins.Out]
		if out == nil {
			out = rt.arena.Get()
			rt.vals[ins.Out] = out
		}
		if ins.IsLUT() {
			ops := [3]*lwe.Sample{a, b, nil}
			if ins.Arity >= 3 {
				if ops[2] = rt.vals[ins.C]; ops[2] == nil {
					return fmt.Errorf("shard %d: LUT instr reads unfilled slot %d", rt.sh.Index, ins.C)
				}
			}
			if err := eng.LUT(int(ins.Arity), ins.TT, out, ops[:ins.Arity]...); err != nil {
				return fmt.Errorf("shard %d: %w", rt.sh.Index, err)
			}
			atomic.AddInt64(&rt.boots, 1)
			continue
		}
		if err := eng.Binary(ins.Kind, out, a, b); err != nil {
			return fmt.Errorf("shard %d: %w", rt.sh.Index, err)
		}
		if ins.Kind.NeedsBootstrap() {
			atomic.AddInt64(&rt.boots, 1)
		}
	}
	return nil
}

// Reset prepares the runtime for the next run: local slots return to the
// arena for reuse, remote slots drop their borrowed samples.
func (rt *Runtime) Reset() {
	for i := 0; i < rt.sh.NumRemote; i++ {
		rt.vals[i] = nil
	}
	for i := rt.sh.NumRemote; i < len(rt.vals); i++ {
		if rt.vals[i] != nil {
			rt.arena.Put(rt.vals[i])
			rt.vals[i] = nil
		}
	}
	atomic.StoreInt64(&rt.boots, 0)
}
