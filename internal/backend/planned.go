package backend

import (
	"context"
	"fmt"
	"sync"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/plan"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// Planned is the capture/replay backend — the CPU analogue of the paper's
// CUDA-Graph batch scheduling. The first Run of a netlist captures it into
// an immutable execution plan (streamed, so level 0 executes while later
// levels are still being laid out); every later Run of the same netlist
// replays the cached plan with no scheduling work at all: no ready heap,
// no per-gate atomics, no refcounting, and no ciphertext allocations
// (the exec.Arena persists in the runtime).
//
// Capture also performs exact functional deduplication, so replay executes
// only the netlist's distinct boolean functions. Stats reports the
// *logical* gate and bootstrap counts — BootstrapsPerSec is the program's
// effective throughput (logical bootstraps per second), the number
// comparable across backends; PlanStats carries the executed counts.
type Planned struct {
	ws    *exec.Workers
	batch int

	mu    sync.Mutex
	plans map[*circuit.Netlist]*plan.Plan
	rt    *plan.Runtime

	Stats     RunStats
	PlanStats plan.Stats
}

// NewPlanned returns a capture/replay backend with the given worker count
// (minimum 1).
func NewPlanned(ck *boot.CloudKey, workers int) *Planned {
	return NewPlannedBatch(ck, workers, 1)
}

// NewPlannedBatch is NewPlanned with batched bootstrap dispatch during
// replay: each worker groups the bootstrapped instructions of its level
// slice up to batch per amortized kernel call (plan.ReplayBatch). batch <=
// 1 behaves exactly like NewPlanned.
func NewPlannedBatch(ck *boot.CloudKey, workers, batch int) *Planned {
	if batch < 1 {
		batch = 1
	}
	ws := exec.NewWorkers(ck, workers)
	return &Planned{
		ws:    ws,
		batch: batch,
		plans: make(map[*circuit.Netlist]*plan.Plan),
		rt:    plan.NewRuntime(ws.Dim()),
	}
}

// Name implements Backend.
func (p *Planned) Name() string {
	name := fmt.Sprintf("plan-cpu(%d)", p.ws.N())
	if p.batch > 1 {
		name += fmt.Sprintf("[batch=%d]", p.batch)
	}
	return name
}

// ArenaHighWater returns the peak number of arena ciphertexts held across
// all runs.
func (p *Planned) ArenaHighWater() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.rt.HighWater()
}

// Plan returns the cached plan for nl, compiling it if needed.
func (p *Planned) Plan(nl *circuit.Netlist) (*plan.Plan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.plans[nl]; ok {
		return cached, nil
	}
	compiled, err := plan.Compile(nl, p.ws.N())
	if err != nil {
		return nil, err
	}
	p.plans[nl] = compiled
	return compiled, nil
}

// Run implements Backend.
func (p *Planned) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if err := exec.CheckInputs(nl, inputs, p.ws.Dim()); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	start := time.Now()

	var outs []*lwe.Sample
	compiled, hit := p.plans[nl]
	if hit {
		var err error
		outs, err = plan.ReplayBatch(context.Background(), compiled, p.ws.Engines(), inputs, p.rt, p.batch)
		if err != nil {
			return nil, err
		}
	} else {
		// Cold path: capture and execute overlapped, then cache the plan.
		s, err := plan.CompileStream(nl, p.ws.N())
		if err != nil {
			return nil, err
		}
		outs, err = plan.ReplayStreamBatch(context.Background(), s, p.ws.Engines(), inputs, p.rt, p.batch)
		if err != nil {
			return nil, err
		}
		compiled = s.Plan()
		p.plans[nl] = compiled
	}

	st := compiled.Stats()
	p.PlanStats = st
	p.Stats = RunStats{
		Gates:      st.LogicalGates,
		Bootstraps: st.LogicalBootstraps,
		LUTs:       st.LogicalLUTs,
		Levels:     st.Levels,
		Workers:    p.ws.N(),
		BatchSize:  p.batch,
	}
	if batches, batched := p.rt.BatchOccupancy(); batches > 0 {
		p.Stats.Batches = int(batches)
		p.Stats.BatchedBootstraps = int(batched)
	}
	p.Stats.Finish(start)
	return outs, nil
}
