package backend

import (
	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/trand"
)

// Plain is the functional reference backend: it evaluates gates on
// cleartext bits carried in trivial (noiseless) LWE samples. It performs no
// cryptography and exists so the same Backend-shaped code paths can be
// validated and profiled without keys. Inputs must be trivial samples (as
// produced by TrivialInputs); encrypted inputs would decode incorrectly.
type Plain struct{}

// Name implements Backend.
func (Plain) Name() string { return "plain" }

// Run implements Backend.
func (Plain) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	// dim 0 skips the dimension check: Plain takes whatever dimension the
	// trivial samples carry.
	if err := exec.CheckRawInputs(inputs, nl.NumInputs, 0); err != nil {
		return nil, err
	}
	bits := make([]bool, len(inputs))
	for i, in := range inputs {
		bits[i] = int32(in.B) > 0
	}
	out, err := nl.Evaluate(bits)
	if err != nil {
		return nil, err
	}
	dim := 0
	if len(inputs) > 0 {
		dim = inputs[0].Dimension()
	}
	cts := make([]*lwe.Sample, len(out))
	for i, b := range out {
		ct := lwe.NewSample(dim)
		gate.Trivial(ct, b)
		cts[i] = ct
	}
	return cts, nil
}

// TrivialInputs wraps plaintext bits as trivial samples of the given
// dimension for the Plain backend.
func TrivialInputs(dim int, bits []bool) []*lwe.Sample {
	cts := make([]*lwe.Sample, len(bits))
	for i, b := range bits {
		ct := lwe.NewSample(dim)
		gate.Trivial(ct, b)
		cts[i] = ct
	}
	return cts
}

func newEncryptionRNG() *trand.Source { return trand.New() }
