package backend

import (
	"sync"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

func TestReadyQueuePriorityOrder(t *testing.T) {
	prio := []int64{5, 1, 9, 3, 7}
	q := newReadyQueue(5, prio)
	for gi := range prio {
		q.push(int32(gi))
	}
	want := []int32{2, 4, 0, 3, 1} // descending remaining depth
	for _, w := range want {
		gi, ok := q.pop()
		if !ok || gi != w {
			t.Fatalf("pop = %d,%v; want %d", gi, ok, w)
		}
	}
	q.finish()
	if _, ok := q.pop(); ok {
		t.Fatal("pop after finish must report done")
	}
}

func TestReadyQueueFIFOOrder(t *testing.T) {
	q := newReadyQueue(4, nil)
	for _, gi := range []int32{3, 1, 2, 0} {
		q.push(gi)
	}
	for _, w := range []int32{3, 1, 2, 0} {
		gi, ok := q.pop()
		if !ok || gi != w {
			t.Fatalf("pop = %d,%v; want %d", gi, ok, w)
		}
	}
}

// TestReadyQueueBlockingPop: a pop blocked on an empty queue is woken by a
// later push, and finish releases all remaining waiters.
func TestReadyQueueBlockingPop(t *testing.T) {
	q := newReadyQueue(1, nil)
	var wg sync.WaitGroup
	got := make(chan int32, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		gi, ok := q.pop()
		if ok {
			got <- gi
		}
		// Second pop parks until finish.
		if _, ok := q.pop(); ok {
			t.Error("second pop should observe finish")
		}
	}()
	q.push(42)
	if gi := <-got; gi != 42 {
		t.Fatalf("blocked pop woke with %d", gi)
	}
	q.finish()
	wg.Wait()
}

// TestRemainingDepth: on a chain a→b→c plus a side gate off a, the chain
// head must carry the full remaining bootstrap count and the side gate a
// shallower one, so the scheduler prefers the chain.
func TestRemainingDepth(t *testing.T) {
	b := circuit.NewBuilder("depth", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g0 := b.Gate(logic.NAND, x, y) // chain head, remaining 3
	g1 := b.Gate(logic.NAND, g0, y)
	g2 := b.Gate(logic.NAND, g1, y)
	side := b.Gate(logic.AND, x, y) // independent, remaining 1
	b.Output("chain", g2)
	b.Output("side", side)
	nl := b.MustBuild()

	children := make([][]int32, nl.NumNodes()+1)
	for i, g := range nl.Gates {
		for _, in := range [2]circuit.NodeID{g.A, g.B} {
			if nl.GateIndex(in) >= 0 {
				children[in] = append(children[in], int32(i))
			}
		}
	}
	rem := remainingDepth(nl, children)
	if rem[0] != 3 || rem[1] != 2 || rem[2] != 1 || rem[3] != 1 {
		t.Fatalf("remaining depths = %v, want [3 2 1 1]", rem)
	}
}

func TestParseSched(t *testing.T) {
	if s, err := ParseSched("critical"); err != nil || s != SchedCritical {
		t.Fatalf("critical: %v %v", s, err)
	}
	if s, err := ParseSched("fifo"); err != nil || s != SchedFIFO {
		t.Fatalf("fifo: %v %v", s, err)
	}
	if s, err := ParseSched(""); err != nil || s != SchedCritical {
		t.Fatalf("default: %v %v", s, err)
	}
	if _, err := ParseSched("lifo"); err == nil {
		t.Fatal("bad policy accepted")
	}
}
