package backend

import (
	"context"
	"errors"
	"runtime"
	"sort"
	"sync"
	"testing"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/qos"
)

// nandChain builds a serial chain of n NAND gates — no parallelism, so its
// latency is the per-gate service time times n. The light tenant's probe.
func nandChain(t testing.TB, n int) *circuit.Netlist {
	t.Helper()
	b := circuit.NewBuilder("chain", circuit.AllOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	v := b.Nand(x, y)
	for i := 1; i < n; i++ {
		v = b.Nand(v, y)
	}
	b.Output("out", v)
	return b.MustBuild()
}

// wideXor builds one XOR per distinct input pair over m inputs — maximal
// parallelism, the hot tenant's flood: every gate is ready immediately,
// and distinct operand pairs keep the optimizer from folding them.
func wideXor(t testing.TB, m int) *circuit.Netlist {
	t.Helper()
	b := circuit.NewBuilder("wide", circuit.AllOptimizations())
	a := b.Inputs("a", m)
	for i := 0; i < m; i++ {
		for j := i + 1; j < m; j++ {
			b.Output("o", b.Xor(a[i], a[j]))
		}
	}
	return b.MustBuild()
}

// chainP95 runs the chain reps times on ex under key and returns the p95
// latency.
func chainP95(t *testing.T, ex *Shared, key *SharedKey, nl *circuit.Netlist, in []bool, reps int) time.Duration {
	t.Helper()
	sk, _ := keys(t)
	enc := EncryptInputs(sk, in)
	lats := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := ex.Submit(context.Background(), key, nl, enc); err != nil {
			t.Fatalf("chain rep %d: %v", i, err)
		}
		lats = append(lats, time.Since(start))
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats[(len(lats)-1)*95/100]
}

// TestSharedFairnessUnderLoad is the starvation regression test: a light
// tenant running a short NAND chain keeps its p95 latency within 3x of
// its uncontended p95 even while a hot tenant floods the executor with
// wide parallel circuits. Under the old single cross-run heap the light
// tenant queued behind the entire flood (arrival order) and the ratio
// blew past 3x; start-time fair queuing bounds its wait to about one
// pick per gate.
func TestSharedFairnessUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("bootstrapping benchmark-style test; skipped in -short")
	}
	sk, ck := keys(t)
	chain := nandChain(t, 4)
	flood := wideXor(t, 8) // 28 independent bootstrapped gates
	in := []bool{true, false}
	const reps = 12

	ex := NewSharedBatch(2, 1)
	defer ex.Close()
	light, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}
	hot, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}

	// Warm both tenants first: per-worker engines build lazily on first
	// use, and that one-time cost must not land in either measurement.
	if _, err := ex.Submit(context.Background(), hot, flood, EncryptInputs(sk, bitsOf(0xA5, 8))); err != nil {
		t.Fatal(err)
	}
	chainP95(t, ex, light, chain, in, 2)

	// Solo baseline: the chain with the executor otherwise idle. Measured
	// again after the contended phase — go test runs sibling packages
	// concurrently, so machine load can ramp mid-test; comparing against
	// the worse of the two baselines isolates the scheduler's contribution
	// from ambient CPU contention.
	solo := chainP95(t, ex, light, chain, in, reps)

	// Contended: the hot tenant keeps the queue saturated with wide
	// floods while the light tenant re-runs its probe.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	encFlood := EncryptInputs(sk, bitsOf(0xA5, 8))
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := ex.Submit(context.Background(), hot, flood, encFlood); err != nil {
					if !errors.Is(err, ErrExecutorClosed) {
						t.Errorf("flood: %v", err)
					}
					return
				}
			}
		}()
	}
	contended := chainP95(t, ex, light, chain, in, reps)
	close(stop)
	wg.Wait()

	if after := chainP95(t, ex, light, chain, in, reps); after > solo {
		solo = after
	}

	// The fairness bound: one pick's worth of wait per chain gate keeps
	// the contended p95 within 3x of solo. On a single-CPU machine the
	// two worker threads time-share one core during the contended phase,
	// roughly doubling every gate's execution — a hardware effect no
	// scheduler can remove — so the bound is scaled there. The regression
	// this guards (light tenant queued behind the whole flood backlog)
	// is an order of magnitude, not a factor.
	bound := time.Duration(3)
	if runtime.NumCPU() < 2 {
		bound = 6
	}
	t.Logf("light tenant p95: solo %v, contended %v (%.2fx, bound %dx)",
		solo, contended, float64(contended)/float64(solo), bound)
	if contended > bound*solo {
		t.Fatalf("light tenant starved: contended p95 %v > %dx solo p95 %v", contended, bound, solo)
	}

	st := ex.Stats()
	if st.TenantPicks[light.ID()] == 0 || st.TenantPicks[hot.ID()] == 0 {
		t.Fatalf("per-tenant pick accounting dead: %+v", st.TenantPicks)
	}
}

// TestSharedTenantQuota pins fail-fast admission: with one in-flight run
// allowed, a concurrent second Submit from the same tenant is refused
// with qos.ErrQuotaExceeded while another tenant is admitted, and the
// refusal is counted.
func TestSharedTenantQuota(t *testing.T) {
	sk, ck := keys(t)
	nl := nandChain(t, 6)
	enc := EncryptInputs(sk, []bool{true, false})

	ex := NewSharedQoS(1, 1, QoSConfig{MaxRunsPerTenant: 1})
	defer ex.Close()
	k1, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}

	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := ex.Submit(context.Background(), k1, nl, enc)
		done <- err
	}()
	<-started
	// Wait until the first run is admitted (in flight), then collide.
	for i := 0; ; i++ {
		if ex.Stats().InFlight >= 1 {
			break
		}
		if i > 1000 {
			t.Fatal("first submission never became in-flight")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := ex.Submit(context.Background(), k1, nl, enc); !errors.Is(err, qos.ErrQuotaExceeded) {
		t.Fatalf("second run of tenant 1: err = %v, want ErrQuotaExceeded", err)
	}
	if _, err := ex.Submit(context.Background(), k2, nl, enc); err != nil {
		t.Fatalf("tenant 2 throttled by tenant 1's quota: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first run: %v", err)
	}
	// Quota released with the run: the same tenant is admitted again.
	if _, err := ex.Submit(context.Background(), k1, nl, enc); err != nil {
		t.Fatalf("tenant 1 after drain: %v", err)
	}
	if st := ex.Stats(); st.QuotaRejects != 1 {
		t.Fatalf("QuotaRejects = %d, want 1", st.QuotaRejects)
	}

	// Gate-budget variant: a run larger than the gate cap is rejected
	// even with no contention.
	exg := NewSharedQoS(1, 1, QoSConfig{MaxQueuedGatesPerTenant: 3})
	defer exg.Close()
	kg, err := exg.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exg.Submit(context.Background(), kg, nl, enc); !errors.Is(err, qos.ErrQuotaExceeded) {
		t.Fatalf("oversized run: err = %v, want ErrQuotaExceeded", err)
	}
}

// TestSharedReleaseKey pins the lifecycle hook: a released key refuses
// new submissions, is counted in KeysReleased, and its fairness state is
// forgotten, while other keys keep working.
func TestSharedReleaseKey(t *testing.T) {
	sk, ck := keys(t)
	nl := nandChain(t, 2)
	enc := EncryptInputs(sk, []bool{true, false})

	ex := NewShared(2)
	defer ex.Close()
	k1, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}
	// Warm both tenants so workers cache engines for k1.
	for _, k := range []*SharedKey{k1, k2} {
		if _, err := ex.Submit(context.Background(), k, nl, enc); err != nil {
			t.Fatal(err)
		}
	}

	ex.ReleaseKey(k1)
	ex.ReleaseKey(k1) // idempotent: second call is a no-op
	if _, err := ex.Submit(context.Background(), k1, nl, enc); !errors.Is(err, ErrKeyReleased) {
		t.Fatalf("submit on released key: err = %v, want ErrKeyReleased", err)
	}
	outs, err := ex.Submit(context.Background(), k2, nl, enc)
	if err != nil {
		t.Fatalf("live key broken by sibling release: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}

	st := ex.Stats()
	if st.KeysReleased != 1 {
		t.Fatalf("KeysReleased = %d, want 1", st.KeysReleased)
	}
	if _, ok := st.TenantPicks[k1.ID()]; ok {
		t.Fatalf("released tenant still in fairness snapshot: %+v", st.TenantPicks)
	}
	if _, ok := st.TenantPicks[k2.ID()]; !ok {
		t.Fatalf("live tenant missing from snapshot: %+v", st.TenantPicks)
	}
}
