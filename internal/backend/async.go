package backend

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// Async is the barrier-free, dependency-driven CPU executor. Where Pool
// drains the DAG wavefront by wavefront with a barrier per level
// (Algorithm 1 verbatim), Async dispatches every gate the moment its last
// operand is produced: each gate carries an atomic pending-operand counter,
// finished gates decrement their children's counters, and a counter hitting
// zero pushes the child onto a shared ready queue served by persistent
// worker goroutines (one gate.Engine each, spun up once per Run, not per
// level). This is how a real task runtime such as Ray — the paper's backend
// — actually behaves, and it is the executor that internal/sched's
// SimulateAsync models; on deep or irregular netlists it keeps workers
// saturated where the level barrier would leave them idle.
//
// Ciphertext recycling is lock-free on the hot path: every node carries an
// atomic fan-out refcount, each worker owns a private ciphertextPool, a
// gate's output slot is claimed from the popping worker's pool when the
// gate is popped, and an operand is returned to the releasing worker's pool
// the moment its refcount hits zero. Peak memory therefore still tracks the
// live frontier of the DAG, as in Pool, but with no shared free-list lock.
// Outputs hold one reference each (circuit.FanOut counts them), so a result
// can never be recycled before collectOutputs reads it, even when the
// output node also feeds interior gates.
//
// The ready set is ordered by the Sched policy: SchedCritical (default)
// pops the gate with the deepest remaining bootstrap chain first, so
// limited workers always advance the DAG's critical path; SchedFIFO keeps
// plain arrival order as the baseline.
type Async struct {
	ck      *boot.CloudKey
	workers int
	sched   Sched
	engines []*gate.Engine
	Stats   RunStats
}

// NewAsync returns a dependency-driven backend with the given worker count
// (minimum 1) and the critical-path scheduler. Like Pool, an Async value
// is not safe for concurrent Run calls: the engines persist across runs
// and each run reuses them.
func NewAsync(ck *boot.CloudKey, workers int) *Async {
	return NewAsyncSched(ck, workers, SchedCritical)
}

// NewAsyncSched is NewAsync with an explicit ready-queue policy.
func NewAsyncSched(ck *boot.CloudKey, workers int, sched Sched) *Async {
	if workers < 1 {
		workers = 1
	}
	engines := make([]*gate.Engine, workers)
	for i := range engines {
		engines[i] = gate.NewEngine(ck)
	}
	return &Async{ck: ck, workers: workers, sched: sched, engines: engines}
}

// Name implements Backend.
func (a *Async) Name() string {
	if a.sched == SchedFIFO {
		return fmt.Sprintf("async-cpu(%d,fifo)", a.workers)
	}
	return fmt.Sprintf("async-cpu(%d)", a.workers)
}

// Run implements Backend.
func (a *Async) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	dim := a.ck.Params.LWEDimension
	if err := checkInputs(nl, inputs, dim); err != nil {
		return nil, err
	}
	start := time.Now()
	nGates := len(nl.Gates)

	values := make([]*lwe.Sample, nl.NumNodes()+1)
	for i, in := range inputs {
		values[i+1] = in
	}

	stats := RunStats{Gates: nGates, Workers: a.workers}
	for _, g := range nl.Gates {
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}

	// Dependency bookkeeping, mirroring sched.SimulateAsync: children of
	// each node, and per-gate atomic counters of unproduced gate operands.
	// A unary gate reading node X twice counts X twice, matching FanOut.
	children := make([][]int32, nl.NumNodes()+1)
	pending := make([]int32, nGates)
	for i, g := range nl.Gates {
		for _, in := range [2]circuit.NodeID{g.A, g.B} {
			if nl.GateIndex(in) >= 0 {
				pending[i]++
				children[in] = append(children[in], int32(i))
			}
		}
	}

	// Atomic fan-out refcounts drive recycling; inputs are never recycled
	// (the caller owns them) and outputs hold a reference until collection.
	fan := nl.FanOut()
	refs := make([]int32, len(fan))
	for i, f := range fan {
		refs[i] = int32(f)
	}

	// The ready queue holds every gate index at most once. Under
	// SchedCritical it is a max-heap on each gate's remaining critical-path
	// depth; under SchedFIFO it preserves arrival order.
	var prio []int64
	if a.sched == SchedCritical {
		prio = remainingDepth(nl, children)
	}
	ready := newReadyQueue(nGates, prio)
	readyAt := make([]int64, nGates) // ns timestamp of enqueue, for QueueWait
	now := time.Now().UnixNano()
	for i := range nl.Gates {
		if pending[i] == 0 {
			readyAt[i] = now
			ready.push(int32(i))
		}
	}
	if nGates == 0 {
		ready.finish()
	}

	var (
		done        int32 // gates fully processed; the last one finishes ready
		queueWaitNs int64
		busyNs      int64
		runErr      error
		errOnce     sync.Once
	)
	fail := func(err error) {
		errOnce.Do(func() {
			runErr = err
			ready.finish()
		})
	}

	workers := a.workers
	if workers > nGates && nGates > 0 {
		workers = nGates
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(eng *gate.Engine) {
			defer wg.Done()
			local := &ciphertextPool{dim: dim}
			var busy time.Duration
			defer func() { atomic.AddInt64(&busyNs, int64(busy)) }()
			release := func(id circuit.NodeID) {
				if id <= 0 || nl.IsInput(id) {
					return
				}
				if atomic.AddInt32(&refs[id], -1) == 0 {
					// Every reader decremented after finishing its own
					// evaluation, so nobody can still be reading this slot.
					local.put(values[id])
					values[id] = nil
				}
			}
			for {
				gi, ok := ready.pop()
				if !ok {
					return
				}
				popped := time.Now()
				atomic.AddInt64(&queueWaitNs, popped.UnixNano()-readyAt[gi])
				g := nl.Gates[gi]
				id := nl.GateID(int(gi))
				out := local.get()
				if err := eng.Binary(g.Kind, out, values[g.A], values[g.B]); err != nil {
					local.put(out)
					fail(fmt.Errorf("backend: gate %d: %w", id, err))
					return
				}
				// Publish the result, then wake children: the atomic
				// decrement plus the queue's mutex order the write to
				// values[id] before any child's read of it.
				values[id] = out
				for _, child := range children[id] {
					if atomic.AddInt32(&pending[child], -1) == 0 {
						readyAt[child] = time.Now().UnixNano()
						ready.push(child)
					}
				}
				release(g.A)
				release(g.B)
				busy += time.Since(popped)
				if atomic.AddInt32(&done, 1) == int32(nGates) {
					// All gates evaluated, so every push has already
					// happened; finishing wakes the idle workers.
					ready.finish()
				}
			}
		}(a.engines[w])
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}

	outs, err := collectOutputs(nl, values, dim)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	stats.QueueWait = time.Duration(queueWaitNs)
	stats.WorkerBusy = time.Duration(busyNs)
	if nGates > 0 {
		stats.AvgQueueWait = stats.QueueWait / time.Duration(nGates)
	}
	if stats.Elapsed > 0 && workers > 0 {
		stats.Utilization = float64(stats.WorkerBusy) / (float64(stats.Elapsed) * float64(workers))
	}
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.GatesPerSec = float64(stats.Bootstraps) / secs
	}
	a.Stats = stats
	return outs, nil
}
