package backend

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

// Async is the barrier-free, dependency-driven CPU executor. Where Pool
// drains the DAG wavefront by wavefront with a barrier per level
// (Algorithm 1 verbatim), Async dispatches every gate the moment its last
// operand is produced — exec.RunReady's policy: atomic pending-operand
// counters, a blocking ready queue served by persistent worker
// goroutines (one gate.Engine each), and per-worker ciphertext pools so
// recycling stays lock-free on the hot path. This is how a real task
// runtime such as Ray — the paper's backend — actually behaves, and it is
// the executor that internal/sched's SimulateAsync models; on deep or
// irregular netlists it keeps workers saturated where the level barrier
// would leave them idle.
//
// The ready set is ordered by the Sched policy: SchedCritical (default)
// pops the gate with the deepest remaining bootstrap chain first, so
// limited workers always advance the DAG's critical path; SchedFIFO keeps
// plain arrival order as the baseline.
type Async struct {
	ws    *exec.Workers
	sched Sched
	batch int
	Stats RunStats
}

// NewAsync returns a dependency-driven backend with the given worker count
// (minimum 1) and the critical-path scheduler. Like Pool, an Async value
// is not safe for concurrent Run calls: the engines persist across runs
// and each run reuses them.
func NewAsync(ck *boot.CloudKey, workers int) *Async {
	return NewAsyncSched(ck, workers, SchedCritical)
}

// NewAsyncSched is NewAsync with an explicit ready-queue policy.
func NewAsyncSched(ck *boot.CloudKey, workers int, sched Sched) *Async {
	return &Async{ws: exec.NewWorkers(ck, workers), sched: sched, batch: 1}
}

// NewAsyncBatch is NewAsyncSched with batched bootstrap dispatch: each
// worker drains up to batch ready bootstrapped gates per pull and
// evaluates them through one amortized blind-rotation kernel call
// (exec.RunReadyBatch). batch <= 1 behaves exactly like NewAsyncSched.
func NewAsyncBatch(ck *boot.CloudKey, workers int, sched Sched, batch int) *Async {
	if batch < 1 {
		batch = 1
	}
	return &Async{ws: exec.NewWorkers(ck, workers), sched: sched, batch: batch}
}

// Name implements Backend.
func (a *Async) Name() string {
	name := fmt.Sprintf("async-cpu(%d)", a.ws.N())
	if a.sched == SchedFIFO {
		name = fmt.Sprintf("async-cpu(%d,fifo)", a.ws.N())
	}
	if a.batch > 1 {
		name += fmt.Sprintf("[batch=%d]", a.batch)
	}
	return name
}

// Run implements Backend.
func (a *Async) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	outs, stats, err := exec.RunReadyBatch(a.ws, nl, inputs, a.sched, exec.NewPoolMemory, a.batch)
	if err != nil {
		return nil, err
	}
	a.Stats = stats
	return outs, nil
}
