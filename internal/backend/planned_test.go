package backend

import (
	"math/rand"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/plan"
)

func TestPlannedBackendHomomorphic(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	for _, workers := range []int{1, 2, 4} {
		be := NewPlanned(ck, workers)
		for run := 0; run < 2; run++ { // second run replays the cached plan
			in := append(bitsOf(11, 4), bitsOf(6, 4)...)
			outs, err := be.Run(nl, EncryptInputs(sk, in))
			if err != nil {
				t.Fatal(err)
			}
			got := uintOf(DecryptOutputs(sk, outs))
			if got != 17 {
				t.Fatalf("plan(%d) run %d: 11+6 = %d", workers, run, got)
			}
		}
		if be.Stats.Bootstraps == 0 || be.Stats.GatesPerSec <= 0 {
			t.Fatalf("plan(%d): stats not recorded: %+v", workers, be.Stats)
		}
		if be.PlanStats.ExecBootstraps == 0 || be.PlanStats.ExecBootstraps > be.PlanStats.LogicalBootstraps {
			t.Fatalf("plan(%d): implausible plan stats: %+v", workers, be.PlanStats)
		}
		if hw := be.ArenaHighWater(); hw == 0 || hw > be.PlanStats.ArenaSlots {
			t.Fatalf("plan(%d): arena high water %d outside (0, %d]", workers, hw, be.PlanStats.ArenaSlots)
		}
	}
}

// TestPlanLivenessMatchesRefcounting checks the compile-time arena
// assignment against the invariant the dynamic executors enforce with
// runtime refcounts: the arena is never larger than the peak number of
// simultaneously live gate ciphertexts (computed here with the same
// barrier-granularity refcount walk Pool and Async perform at runtime).
func TestPlanLivenessMatchesRefcounting(t *testing.T) {
	nls := []*circuit.Netlist{adder4(t)}
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 3; trial++ {
		b := circuit.NewBuilder("rand", circuit.NoOptimizations())
		nodes := []circuit.NodeID{b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d"), b.Input("e")}
		for i := 0; i < 60; i++ {
			kind := logic.TFHEGates()[rng.Intn(11)]
			nodes = append(nodes, b.Gate(kind, nodes[rng.Intn(len(nodes))], nodes[rng.Intn(len(nodes))]))
		}
		b.Output("o0", nodes[len(nodes)-1])
		b.Output("o1", nodes[len(nodes)-7])
		nls = append(nls, b.MustBuild())
	}
	for _, nl := range nls {
		// Barrier-granularity refcount simulation over the logical netlist:
		// a gate's ciphertext is live from its level until the level after
		// its last reader (outputs stay live to the end) — exactly the
		// executors' release() discipline.
		remaining := nl.FanOut()
		live, peak := 0, 0
		values := make(map[circuit.NodeID]bool)
		for _, level := range nl.Levels() {
			for _, gi := range level {
				values[nl.GateID(gi)] = true
				live++
			}
			if live > peak {
				peak = live
			}
			for _, gi := range level {
				for _, op := range [2]circuit.NodeID{nl.Gates[gi].A, nl.Gates[gi].B} {
					if nl.IsInput(op) {
						continue
					}
					remaining[op]--
					if remaining[op] == 0 && values[op] {
						values[op] = false
						live--
					}
				}
			}
		}
		for _, workers := range []int{1, 2, 4} {
			p, err := plan.Compile(nl, workers)
			if err != nil {
				t.Fatal(err)
			}
			if p.ArenaSlots() > peak {
				t.Fatalf("%s w=%d: arena %d exceeds refcounted peak live %d",
					nl.Name, workers, p.ArenaSlots(), peak)
			}
			st := p.Stats()
			if st.ExecBootstraps > st.LogicalBootstraps {
				t.Fatalf("%s w=%d: dedup grew the program: %+v", nl.Name, workers, st)
			}
		}
	}
}
