package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// ErrExecutorClosed is returned by Shared.Submit once Close has been
// called; in-flight submissions are failed with it too.
var ErrExecutorClosed = errors.New("backend: shared executor closed")

// Shared is the multi-tenant variant of Async: one persistent worker set
// that evaluates gates from any number of concurrent Submit calls, over any
// number of cloud keys. Where Async owns a single run at a time, Shared
// interleaves the ready gates of every in-flight netlist in one global
// priority queue, so a small circuit never leaves workers idle while a
// large one drains — the serving-layer analogue of the paper amortizing
// CUDA-Graph construction across batches. Each worker lazily builds one
// gate.Engine per registered key (engines are not safe to share), and
// recycles ciphertexts through per-dimension local pools exactly as Async
// does.
//
// Ordering within a run is critical-path-first (remainingDepth, as
// SchedCritical); across runs, equal priorities fall back to global
// arrival order, which keeps concurrent tenants roughly fair.
type Shared struct {
	workers int
	q       *sharedQueue
	wg      sync.WaitGroup

	mu     sync.Mutex
	closed bool
	runs   map[*sharedRun]struct{}
	keySeq int64

	// Cumulative counters since construction (atomics).
	gatesDone  int64
	bootsDone  int64
	busyNs     int64
	submits    int64
	inflightRn int32
}

// SharedKey is a cloud key registered with a Shared executor. Every worker
// caches one engine per SharedKey, so registering the same key once per
// tenant session (rather than per request) is what makes key upload a
// session-scoped cost.
type SharedKey struct {
	owner *Shared
	id    int64
	ck    *boot.CloudKey
}

// Params exposes the key's parameter set.
func (k *SharedKey) Params() *boot.CloudKey { return k.ck }

// NewShared starts a shared executor with the given worker count
// (minimum 1). It owns its goroutines until Close.
func NewShared(workers int) *Shared {
	if workers < 1 {
		workers = 1
	}
	s := &Shared{
		workers: workers,
		q:       newSharedQueue(),
		runs:    make(map[*sharedRun]struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers returns the size of the worker set.
func (s *Shared) Workers() int { return s.workers }

// RegisterKey makes a cloud key available to the worker set and returns
// the handle Submit requires. Engines for the key are created lazily, one
// per worker, on first use.
func (s *Shared) RegisterKey(ck *boot.CloudKey) (*SharedKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrExecutorClosed
	}
	s.keySeq++
	return &SharedKey{owner: s, id: s.keySeq, ck: ck}, nil
}

// SharedStats is a snapshot of the executor's cumulative counters.
type SharedStats struct {
	Workers    int
	QueueDepth int           // gates currently ready and waiting
	InFlight   int           // submissions currently executing
	Gates      int64         // gates evaluated since construction
	Bootstraps int64         // bootstrapped gates since construction
	Submits    int64         // Submit calls accepted
	WorkerBusy time.Duration // cumulative evaluation time across workers
}

// GatesPerSec is the executor's cumulative bootstrapped-gate throughput
// per busy worker-second — the figure of merit the paper reports.
func (st SharedStats) GatesPerSec() float64 {
	if st.WorkerBusy <= 0 {
		return 0
	}
	return float64(st.Bootstraps) / st.WorkerBusy.Seconds() * float64(st.Workers)
}

// Stats returns a snapshot of the executor counters.
func (s *Shared) Stats() SharedStats {
	return SharedStats{
		Workers:    s.workers,
		QueueDepth: s.q.depth(),
		InFlight:   int(atomic.LoadInt32(&s.inflightRn)),
		Gates:      atomic.LoadInt64(&s.gatesDone),
		Bootstraps: atomic.LoadInt64(&s.bootsDone),
		Submits:    atomic.LoadInt64(&s.submits),
		WorkerBusy: time.Duration(atomic.LoadInt64(&s.busyNs)),
	}
}

// Close shuts the worker set down. In-flight submissions fail with
// ErrExecutorClosed; Close blocks until every worker has exited.
func (s *Shared) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	runs := make([]*sharedRun, 0, len(s.runs))
	for r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		r.abort(ErrExecutorClosed)
	}
	s.q.finish()
	s.wg.Wait()
}

// sharedRun is the per-submission dependency state, mirroring Async.Run's
// locals so concurrent submissions stay fully independent.
type sharedRun struct {
	nl       *circuit.Netlist
	key      *SharedKey
	values   []*lwe.Sample
	children [][]int32
	pending  []int32
	refs     []int32
	prio     []int64
	nGates   int32
	done     int32

	aborted atomic.Bool
	once    sync.Once
	err     error
	doneCh  chan struct{}
}

func (r *sharedRun) finish(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.doneCh)
	})
}

func (r *sharedRun) abort(err error) {
	r.aborted.Store(true)
	r.finish(err)
}

// Submit evaluates nl's gates on the shared worker set under the given
// key, blocking until the outputs are ready, the context is done, or the
// executor closes. It is safe to call from any number of goroutines; the
// inputs are not modified and the caller keeps ownership of them.
func (s *Shared) Submit(ctx context.Context, key *SharedKey, nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if key == nil || key.owner != s {
		return nil, fmt.Errorf("backend: key not registered with this executor")
	}
	dim := key.ck.Params.LWEDimension
	if err := checkInputs(nl, inputs, dim); err != nil {
		return nil, err
	}

	nGates := len(nl.Gates)
	r := &sharedRun{
		nl:     nl,
		key:    key,
		values: make([]*lwe.Sample, nl.NumNodes()+1),
		nGates: int32(nGates),
		doneCh: make(chan struct{}),
	}
	for i, in := range inputs {
		r.values[i+1] = in
	}
	r.children = make([][]int32, nl.NumNodes()+1)
	r.pending = make([]int32, nGates)
	for i, g := range nl.Gates {
		for _, in := range [2]circuit.NodeID{g.A, g.B} {
			if nl.GateIndex(in) >= 0 {
				r.pending[i]++
				r.children[in] = append(r.children[in], int32(i))
			}
		}
	}
	// The initial ready set must be fixed before the first push: workers
	// start decrementing pending counters the moment a task is visible.
	var initial []int32
	for i := range nl.Gates {
		if r.pending[i] == 0 {
			initial = append(initial, int32(i))
		}
	}
	fan := nl.FanOut()
	r.refs = make([]int32, len(fan))
	for i, f := range fan {
		r.refs[i] = int32(f)
	}
	r.prio = remainingDepth(nl, r.children)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrExecutorClosed
	}
	s.runs[r] = struct{}{}
	s.mu.Unlock()
	atomic.AddInt64(&s.submits, 1)
	atomic.AddInt32(&s.inflightRn, 1)
	defer func() {
		atomic.AddInt32(&s.inflightRn, -1)
		s.mu.Lock()
		delete(s.runs, r)
		s.mu.Unlock()
	}()

	if nGates == 0 {
		return collectOutputs(nl, r.values, dim)
	}
	for _, gi := range initial {
		s.q.push(r, gi, r.prio[gi])
	}

	select {
	case <-r.doneCh:
	case <-ctx.Done():
		// Mark first so workers popping this run's queued gates drop them;
		// gates whose operands never arrive are simply never enqueued.
		r.abort(ctx.Err())
		<-r.doneCh
	}
	if r.err != nil {
		return nil, r.err
	}
	return collectOutputs(nl, r.values, dim)
}

// worker is one persistent evaluation goroutine. It keeps an engine per
// registered key and a ciphertext pool per LWE dimension, and survives
// individual run failures — only Close stops it.
func (s *Shared) worker() {
	defer s.wg.Done()
	engines := make(map[int64]*gate.Engine)
	pools := make(map[int]*ciphertextPool)
	for {
		t, ok := s.q.pop()
		if !ok {
			return
		}
		r := t.run
		if r.aborted.Load() {
			continue
		}
		dim := r.key.ck.Params.LWEDimension
		pool := pools[dim]
		if pool == nil {
			pool = &ciphertextPool{dim: dim}
			pools[dim] = pool
		}
		eng := engines[r.key.id]
		if eng == nil {
			eng = gate.NewEngine(r.key.ck)
			engines[r.key.id] = eng
		}

		g := r.nl.Gates[t.gi]
		id := r.nl.GateID(int(t.gi))
		out := pool.get()
		start := time.Now()
		if err := eng.Binary(g.Kind, out, r.values[g.A], r.values[g.B]); err != nil {
			pool.put(out)
			r.abort(fmt.Errorf("backend: gate %d: %w", id, err))
			continue
		}
		// Publish the result, then wake children: the queue's mutex orders
		// the write to values[id] before any child's read of it.
		r.values[id] = out
		for _, child := range r.children[id] {
			if atomic.AddInt32(&r.pending[child], -1) == 0 {
				s.q.push(r, child, r.prio[child])
			}
		}
		s.release(r, g.A, pool)
		s.release(r, g.B, pool)
		atomic.AddInt64(&s.busyNs, int64(time.Since(start)))
		atomic.AddInt64(&s.gatesDone, 1)
		if g.Kind.NeedsBootstrap() {
			atomic.AddInt64(&s.bootsDone, 1)
		}
		if atomic.AddInt32(&r.done, 1) == r.nGates {
			r.finish(nil)
		}
	}
}

// release drops one fan-out reference to a node; the last reader returns
// the ciphertext to the releasing worker's pool. Inputs belong to the
// caller and are never recycled; outputs hold a FanOut reference until
// collectOutputs reads them.
func (s *Shared) release(r *sharedRun, id circuit.NodeID, pool *ciphertextPool) {
	if id <= 0 || r.nl.IsInput(id) {
		return
	}
	if atomic.AddInt32(&r.refs[id], -1) == 0 {
		pool.put(r.values[id])
		r.values[id] = nil
	}
}

// sharedTask is one ready gate of one in-flight submission.
type sharedTask struct {
	run  *sharedRun
	gi   int32
	prio int64
	seq  uint64
}

// sharedQueue is the blocking cross-run ready set: a max-heap on the
// gate's remaining critical-path depth, arrival order breaking ties so no
// tenant starves. finish wakes all workers for shutdown.
type sharedQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []sharedTask
	seq   uint64
	done  bool
}

func newSharedQueue() *sharedQueue {
	q := &sharedQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *sharedQueue) push(r *sharedRun, gi int32, prio int64) {
	q.mu.Lock()
	q.seq++
	q.items = append(q.items, sharedTask{run: r, gi: gi, prio: prio, seq: q.seq})
	q.up(len(q.items) - 1)
	q.mu.Unlock()
	q.cond.Signal()
}

func (q *sharedQueue) pop() (sharedTask, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.done {
			return sharedTask{}, false
		}
		if len(q.items) > 0 {
			top := q.items[0]
			last := len(q.items) - 1
			q.items[0] = q.items[last]
			q.items[last] = sharedTask{} // release the run pointer
			q.items = q.items[:last]
			if last > 0 {
				q.down(0)
			}
			return top, true
		}
		q.cond.Wait()
	}
}

func (q *sharedQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}

func (q *sharedQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *sharedQueue) less(i, j int) bool {
	if q.items[i].prio != q.items[j].prio {
		return q.items[i].prio > q.items[j].prio
	}
	return q.items[i].seq < q.items[j].seq
}

func (q *sharedQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *sharedQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
