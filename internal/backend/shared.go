package backend

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/logic"
	"pytfhe/internal/qos"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// ErrExecutorClosed is returned by Shared.Submit once Close has been
// called; in-flight submissions are failed with it too.
var ErrExecutorClosed = errors.New("backend: shared executor closed")

// ErrKeyReleased is returned by Submit for a key handle that has been
// released with ReleaseKey (the last session under the key closed).
var ErrKeyReleased = errors.New("backend: cloud key released")

// QoSConfig tunes the shared executor's per-tenant quality of service.
// The zero value is the legacy behavior: no quotas, equal weights.
type QoSConfig struct {
	// MaxRunsPerTenant caps a tenant's concurrent Submit calls; past it
	// Submit fails fast with qos.ErrQuotaExceeded (0: unlimited).
	MaxRunsPerTenant int
	// MaxQueuedGatesPerTenant caps the total gate count of a tenant's
	// in-flight submissions (0: unlimited). A single run larger than the
	// cap is always rejected, so size the cap to the largest admitted
	// program times the desired concurrency.
	MaxQueuedGatesPerTenant int
}

// Shared is the multi-tenant variant of Async: one persistent worker set
// that evaluates gates from any number of concurrent Submit calls, over any
// number of cloud keys. Where Async owns a single run at a time, Shared
// interleaves the ready gates of every in-flight netlist across workers, so
// a small circuit never leaves workers idle while a large one drains — the
// serving-layer analogue of the paper amortizing CUDA-Graph construction
// across batches. Each worker lazily builds one gate.Engine per registered
// key (engines are not safe to share), and recycles ciphertexts through
// per-dimension exec.Pool free lists exactly as the ready driver does; each
// run's value table, dependency counters, and refcount release are the
// shared exec.State/exec.Deps machinery.
//
// Scheduling is two-level. Each tenant (cloud-key registration) owns a
// private heap ordered critical-path-first (exec.CriticalDepth, as
// SchedCritical) with arrival order breaking ties; across tenants a
// weighted start-time fair-queuing picker (qos.Fair) interleaves service
// in proportion to configured weights, so a hot tenant flooding thousands
// of gates can no longer starve a light one — the property the earlier
// single cross-run heap (priority, then global arrival order) lacked.
type Shared struct {
	workers int
	batch   int
	q       *qos.Fair[sharedTask]
	quota   *qos.Quota[int64]
	wg      sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	runs     map[*sharedRun]struct{}
	keySeq   int64
	released map[int64]struct{} // key ids dropped by ReleaseKey
	seq      uint64             // arrival tiebreak for queued tasks (atomic)

	// Cumulative counters since construction (atomics).
	gatesDone  int64
	bootsDone  int64
	lutsDone   int64
	busyNs     int64
	submits    int64
	quotaRej   int64
	keysFreed  int64
	relGen     int64 // bumped by ReleaseKey; workers prune engines on change
	inflightRn int32

	// Batch occupancy (atomics; only touched when batch > 1).
	batchesDone  int64
	batchedBoots int64
	crossRunBtch int64 // batches whose members spanned ≥2 submissions
}

// SharedKey is a cloud key registered with a Shared executor. Every worker
// caches one engine per SharedKey, so registering the same key once per
// tenant session (rather than per request) is what makes key upload a
// session-scoped cost. The key doubles as the executor's tenant identity:
// fairness, quotas, and pick accounting are all per SharedKey.
type SharedKey struct {
	owner *Shared
	id    int64
	ck    *boot.CloudKey
}

// Params exposes the key's parameter set.
func (k *SharedKey) Params() *boot.CloudKey { return k.ck }

// ID exposes the executor-local tenant id the key registered under (the
// join key for SharedStats.TenantPicks/TenantQueued).
func (k *SharedKey) ID() int64 { return k.id }

// NewShared starts a shared executor with the given worker count
// (minimum 1). It owns its goroutines until Close.
func NewShared(workers int) *Shared {
	return NewSharedQoS(workers, 1, QoSConfig{})
}

// NewSharedBatch is NewShared with batched bootstrap dispatch: a worker
// that pops a bootstrapped gate drains up to batch-1 more ready
// bootstrapped gates *under the same key* and evaluates them in one
// amortized kernel call. Because every in-flight submission's ready gates
// are queued, the batches it forms span concurrent tenant requests — the
// serving-side amortization the batch engine exists for. batch <= 1
// behaves exactly like NewShared.
func NewSharedBatch(workers, batch int) *Shared {
	return NewSharedQoS(workers, batch, QoSConfig{})
}

// NewSharedQoS is NewSharedBatch with per-tenant admission quotas (see
// QoSConfig). Weights default to equal; SetTenantWeight adjusts them per
// key.
func NewSharedQoS(workers, batch int, cfg QoSConfig) *Shared {
	if workers < 1 {
		workers = 1
	}
	if batch < 1 {
		batch = 1
	}
	s := &Shared{
		workers:  workers,
		batch:    batch,
		q:        qos.NewFair[sharedTask](taskLess),
		quota:    qos.NewQuota[int64](cfg.MaxRunsPerTenant, cfg.MaxQueuedGatesPerTenant),
		runs:     make(map[*sharedRun]struct{}),
		released: make(map[int64]struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Workers returns the size of the worker set.
func (s *Shared) Workers() int { return s.workers }

// RegisterKey makes a cloud key available to the worker set and returns
// the handle Submit requires. Engines for the key are created lazily, one
// per worker, on first use.
func (s *Shared) RegisterKey(ck *boot.CloudKey) (*SharedKey, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrExecutorClosed
	}
	s.keySeq++
	return &SharedKey{owner: s, id: s.keySeq, ck: ck}, nil
}

// SetTenantWeight sets the key's fair-scheduling service share (default
// 1; weights are relative, so weight 2 receives twice the picks of
// weight 1 under contention).
func (s *Shared) SetTenantWeight(k *SharedKey, w float64) {
	if k == nil || k.owner != s {
		return
	}
	s.q.SetWeight(k.id, w)
}

// ReleaseKey drops a key registration: the lifecycle hook for "the last
// session under this cloud key closed". Subsequent Submits with the
// handle fail with ErrKeyReleased, the fair scheduler forgets the
// tenant, and every worker prunes its cached engine for the key on its
// next dispatch — without this, per-key engine caches accumulate for the
// daemon's whole lifetime. In-flight runs under the key are unaffected
// (their engines are pruned only after the queue no longer holds the
// key's gates; the release check is at Submit, not per gate).
func (s *Shared) ReleaseKey(k *SharedKey) {
	if k == nil || k.owner != s {
		return
	}
	s.mu.Lock()
	if _, dup := s.released[k.id]; dup || s.closed {
		s.mu.Unlock()
		return
	}
	s.released[k.id] = struct{}{}
	s.mu.Unlock()
	atomic.AddInt64(&s.keysFreed, 1)
	atomic.AddInt64(&s.relGen, 1)
	s.q.Forget(k.id)
}

// SharedStats is a snapshot of the executor's cumulative counters.
type SharedStats struct {
	Workers    int
	QueueDepth int           // gates currently ready and waiting
	InFlight   int           // submissions currently executing
	Gates      int64         // gates evaluated since construction
	Bootstraps int64         // bootstrapped gates since construction
	LUTs       int64         // multi-input LUT gates among those (each one programmable bootstrap)
	Submits    int64         // Submit calls accepted
	WorkerBusy time.Duration // cumulative evaluation time across workers

	// Per-tenant fairness and quota accounting, keyed by SharedKey.ID.
	TenantPicks  map[int64]int64 // scheduler picks per tenant
	TenantQueued map[int64]int   // ready gates queued per tenant
	QuotaRejects int64           // Submits refused with qos.ErrQuotaExceeded
	KeysReleased int64           // ReleaseKey calls honored

	// Batch occupancy (zero unless the executor was built with
	// NewSharedBatch and batch > 1).
	BatchSize         int   // configured batch limit
	Batches           int64 // batched bootstrap dispatches
	BatchedBootstraps int64 // bootstrapped gates covered by those dispatches
	CrossRunBatches   int64 // batches spanning ≥2 concurrent submissions
}

// AvgBatchFill is the average number of bootstrapped gates per batched
// dispatch, or 0 when no batches ran.
func (st SharedStats) AvgBatchFill() float64 {
	if st.Batches == 0 {
		return 0
	}
	return float64(st.BatchedBootstraps) / float64(st.Batches)
}

// BootstrapsPerSec is the executor's cumulative bootstrapped-gate
// throughput per busy worker-second — the figure of merit the paper
// reports (an earlier revision mislabeled it GatesPerSec).
func (st SharedStats) BootstrapsPerSec() float64 {
	if st.WorkerBusy <= 0 {
		return 0
	}
	return float64(st.Bootstraps) / st.WorkerBusy.Seconds() * float64(st.Workers)
}

// GatesPerSec is the executor's cumulative all-gate throughput per busy
// worker-second, free gates included.
func (st SharedStats) GatesPerSec() float64 {
	if st.WorkerBusy <= 0 {
		return 0
	}
	return float64(st.Gates) / st.WorkerBusy.Seconds() * float64(st.Workers)
}

// Stats returns a snapshot of the executor counters.
func (s *Shared) Stats() SharedStats {
	snap := s.q.Snapshot()
	picks := make(map[int64]int64, len(snap))
	queued := make(map[int64]int, len(snap))
	depth := 0
	for id, ts := range snap {
		picks[id] = ts.Picks
		queued[id] = ts.Queued
		depth += ts.Queued
	}
	return SharedStats{
		Workers:           s.workers,
		QueueDepth:        depth,
		InFlight:          int(atomic.LoadInt32(&s.inflightRn)),
		Gates:             atomic.LoadInt64(&s.gatesDone),
		Bootstraps:        atomic.LoadInt64(&s.bootsDone),
		LUTs:              atomic.LoadInt64(&s.lutsDone),
		Submits:           atomic.LoadInt64(&s.submits),
		WorkerBusy:        time.Duration(atomic.LoadInt64(&s.busyNs)),
		TenantPicks:       picks,
		TenantQueued:      queued,
		QuotaRejects:      atomic.LoadInt64(&s.quotaRej),
		KeysReleased:      atomic.LoadInt64(&s.keysFreed),
		BatchSize:         s.batch,
		Batches:           atomic.LoadInt64(&s.batchesDone),
		BatchedBootstraps: atomic.LoadInt64(&s.batchedBoots),
		CrossRunBatches:   atomic.LoadInt64(&s.crossRunBtch),
	}
}

// Close shuts the worker set down. In-flight submissions fail with
// ErrExecutorClosed; Close blocks until every worker has exited.
func (s *Shared) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	runs := make([]*sharedRun, 0, len(s.runs))
	for r := range s.runs {
		runs = append(runs, r)
	}
	s.mu.Unlock()
	for _, r := range runs {
		r.abort(ErrExecutorClosed)
	}
	s.q.Finish()
	s.wg.Wait()
}

// sharedRun is the per-submission scheduling state: the shared execution
// core's value table and dependency counters, plus the completion latch
// that lets concurrent submissions stay fully independent.
type sharedRun struct {
	nl     *circuit.Netlist
	key    *SharedKey
	st     *exec.State
	deps   *exec.Deps
	prio   []int64
	nGates int32
	done   int32

	aborted atomic.Bool
	once    sync.Once
	err     error
	doneCh  chan struct{}
}

func (r *sharedRun) finish(err error) {
	r.once.Do(func() {
		r.err = err
		close(r.doneCh)
	})
}

func (r *sharedRun) abort(err error) {
	r.aborted.Store(true)
	r.finish(err)
}

// Submit evaluates nl's gates on the shared worker set under the given
// key, blocking until the outputs are ready, the context is done, or the
// executor closes. It is safe to call from any number of goroutines; the
// inputs are not modified and the caller keeps ownership of them. With
// quotas configured a tenant over its run or gate budget fails fast with
// qos.ErrQuotaExceeded (other tenants are unaffected); a released key
// fails with ErrKeyReleased.
func (s *Shared) Submit(ctx context.Context, key *SharedKey, nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if key == nil || key.owner != s {
		return nil, fmt.Errorf("backend: key not registered with this executor")
	}
	s.mu.Lock()
	_, rel := s.released[key.id]
	s.mu.Unlock()
	if rel {
		return nil, ErrKeyReleased
	}
	nGates := len(nl.Gates)
	if err := s.quota.Acquire(key.id, nGates); err != nil {
		atomic.AddInt64(&s.quotaRej, 1)
		return nil, err
	}
	defer s.quota.Release(key.id, nGates)

	dim := key.ck.Params.LWEDimension
	st, err := exec.NewState(nl, inputs, dim)
	if err != nil {
		return nil, err
	}

	r := &sharedRun{
		nl:     nl,
		key:    key,
		st:     st,
		deps:   exec.NewDeps(nl),
		nGates: int32(nGates),
		doneCh: make(chan struct{}),
	}
	// The initial ready set must be fixed before the first push: workers
	// start decrementing pending counters the moment a task is visible.
	initial := r.deps.Ready()
	r.prio = exec.CriticalDepth(nl, r.deps.Children)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, ErrExecutorClosed
	}
	s.runs[r] = struct{}{}
	s.mu.Unlock()
	atomic.AddInt64(&s.submits, 1)
	atomic.AddInt32(&s.inflightRn, 1)
	defer func() {
		atomic.AddInt32(&s.inflightRn, -1)
		s.mu.Lock()
		delete(s.runs, r)
		s.mu.Unlock()
	}()

	if nGates == 0 {
		return r.st.Collect(dim)
	}
	for _, gi := range initial {
		s.push(r, gi)
	}

	select {
	case <-r.doneCh:
	case <-ctx.Done():
		// Mark first so workers popping this run's queued gates drop them;
		// gates whose operands never arrive are simply never enqueued.
		r.abort(ctx.Err())
		<-r.doneCh
	}
	if r.err != nil {
		return nil, r.err
	}
	return r.st.Collect(dim)
}

// push enqueues one ready gate of r on its tenant's heap, stamping the
// arrival sequence that breaks priority ties within the tenant.
func (s *Shared) push(r *sharedRun, gi int32) {
	s.q.Push(r.key.id, sharedTask{run: r, gi: gi, prio: r.prio[gi], seq: atomic.AddUint64(&s.seq, 1)})
}

// complete publishes one finished gate's result, wakes its children, and
// recycles drained operands: the queue's mutex orders the write to
// Values[id] before any child's read of it.
func (s *Shared) complete(r *sharedRun, gi int32, out *lwe.Sample, pool *exec.Pool) {
	g := r.nl.Gates[gi]
	id := r.nl.GateID(int(gi))
	r.st.Values[id] = out
	for _, child := range r.deps.Children[id] {
		if atomic.AddInt32(&r.deps.Pending[child], -1) == 0 {
			s.push(r, child)
		}
	}
	for k := 0; k < g.NumOperands(); k++ {
		r.st.Release(g.Operand(k), pool)
	}
	atomic.AddInt64(&s.gatesDone, 1)
	if g.NeedsBootstrap() {
		atomic.AddInt64(&s.bootsDone, 1)
	}
	if g.IsLUT() {
		atomic.AddInt64(&s.lutsDone, 1)
	}
	if atomic.AddInt32(&r.done, 1) == r.nGates {
		r.finish(nil)
	}
}

// evalSingle evaluates one gate — classic 2-input or k-input LUT — on the
// single path, timing it into the cumulative busy counter.
func (s *Shared) evalSingle(eng *gate.Engine, pool *exec.Pool, t sharedTask) {
	r := t.run
	g := r.nl.Gates[t.gi]
	out := pool.Get()
	start := time.Now()
	var err error
	if g.IsLUT() {
		var ins [logic.MaxLUTArity]*lwe.Sample
		n := g.NumOperands()
		for k := 0; k < n; k++ {
			ins[k] = r.st.Values[g.Operand(k)]
		}
		err = eng.LUT(n, g.TT, out, ins[:n]...)
	} else {
		err = eng.Binary(g.Kind, out, r.st.Values[g.A], r.st.Values[g.B])
	}
	if err != nil {
		pool.Put(out)
		r.abort(fmt.Errorf("backend: gate %d: %w", r.nl.GateID(int(t.gi)), err))
		return
	}
	s.complete(r, t.gi, out, pool)
	atomic.AddInt64(&s.busyNs, int64(time.Since(start)))
}

// pruneEngines drops worker-local engines for released keys; called when
// the release generation moves, so the steady-state cost is one atomic
// load per dispatch.
func (s *Shared) pruneEngines(engines map[int64]*gate.Engine) {
	s.mu.Lock()
	for id := range engines {
		if _, dead := s.released[id]; dead {
			delete(engines, id)
		}
	}
	s.mu.Unlock()
}

// worker is one persistent evaluation goroutine. It keeps an engine per
// registered key and a ciphertext pool per LWE dimension, and survives
// individual run failures — only Close stops it. With batch > 1 a popped
// bootstrapped gate seeds a batch that is topped up from the same
// tenant's heap without blocking (only gates under one key can share a
// kernel dispatch, and a tenant is exactly a key); because that heap
// interleaves every in-flight submission of the tenant, those batches
// routinely span concurrent requests. The fair queue charges the burst
// to the tenant's virtual time, so batching amortizes kernels without
// distorting cross-tenant fairness.
func (s *Shared) worker() {
	defer s.wg.Done()
	engines := make(map[int64]*gate.Engine)
	pools := make(map[int]*exec.Pool)
	var relSeen int64
	var (
		tasks []sharedTask
		ops   []gate.Op
		outs  []*lwe.Sample
		avs   []*lwe.Sample
		bvs   []*lwe.Sample
		cvs   []*lwe.Sample
	)
	for {
		t, _, ok := s.q.Pop()
		if !ok {
			return
		}
		if g := atomic.LoadInt64(&s.relGen); g != relSeen {
			relSeen = g
			s.pruneEngines(engines)
		}
		r := t.run
		if r.aborted.Load() {
			continue
		}
		dim := r.key.ck.Params.LWEDimension
		pool := pools[dim]
		if pool == nil {
			pool = exec.NewPool(dim)
			pools[dim] = pool
		}
		eng := engines[r.key.id]
		if eng == nil {
			eng = gate.NewEngine(r.key.ck)
			engines[r.key.id] = eng
		}

		if s.batch <= 1 || !r.nl.Gates[t.gi].NeedsBootstrap() {
			s.evalSingle(eng, pool, t)
			continue
		}

		tasks, ops, outs = tasks[:0], ops[:0], outs[:0]
		avs, bvs, cvs = avs[:0], bvs[:0], cvs[:0]
		collect := func(t sharedTask) {
			g := t.run.nl.Gates[t.gi]
			tasks = append(tasks, t)
			ops = append(ops, gate.Op{Kind: g.Kind, TT: g.TT, Arity: g.Arity})
			outs = append(outs, pool.Get())
			avs = append(avs, t.run.st.Values[g.A])
			bvs = append(bvs, t.run.st.Values[g.B])
			if g.Arity >= 3 {
				cvs = append(cvs, t.run.st.Values[g.C])
			} else {
				cvs = append(cvs, nil)
			}
		}
		collect(t)
		for len(tasks) < s.batch {
			t2, ok := s.q.TryPopTenant(r.key.id)
			if !ok {
				break
			}
			if t2.run.aborted.Load() {
				continue
			}
			if !t2.run.nl.Gates[t2.gi].NeedsBootstrap() {
				s.evalSingle(eng, pool, t2)
				continue
			}
			collect(t2)
		}

		b := len(tasks)
		start := time.Now()
		if err := eng.OpBatch(ops[:b], outs[:b], avs[:b], bvs[:b], cvs[:b]); err != nil {
			for _, out := range outs[:b] {
				pool.Put(out)
			}
			for _, tm := range tasks[:b] {
				tm.run.abort(fmt.Errorf("backend: gate %d: %w", tm.run.nl.GateID(int(tm.gi)), err))
			}
			continue
		}
		atomic.AddInt64(&s.batchesDone, 1)
		atomic.AddInt64(&s.batchedBoots, int64(b))
		for _, tm := range tasks[1:b] {
			if tm.run != r {
				atomic.AddInt64(&s.crossRunBtch, 1)
				break
			}
		}
		for m := 0; m < b; m++ {
			s.complete(tasks[m].run, tasks[m].gi, outs[m], pool)
		}
		atomic.AddInt64(&s.busyNs, int64(time.Since(start)))
	}
}

// sharedTask is one ready gate of one in-flight submission.
type sharedTask struct {
	run  *sharedRun
	gi   int32
	prio int64
	seq  uint64
}

// taskLess orders each tenant's heap: deepest remaining critical path
// first, arrival order breaking ties. Cross-tenant order is the fair
// picker's job, not the heap's.
func taskLess(a, b sharedTask) bool {
	if a.prio != b.prio {
		return a.prio > b.prio
	}
	return a.seq < b.seq
}
