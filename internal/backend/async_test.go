package backend

import (
	"sort"
	"testing"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
	"pytfhe/internal/sched"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/trand"
)

func TestAsyncBackendHomomorphic(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	for _, workers := range []int{1, 2, 4} {
		be := NewAsync(ck, workers)
		in := append(bitsOf(13, 4), bitsOf(9, 4)...)
		outs, err := be.Run(nl, EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		got := uintOf(DecryptOutputs(sk, outs))
		if got != 22 {
			t.Fatalf("async(%d): 13+9 = %d", workers, got)
		}
		st := be.Stats
		if st.Bootstraps == 0 || st.GatesPerSec <= 0 {
			t.Fatalf("async(%d): stats not recorded: %+v", workers, st)
		}
		if st.Workers != workers {
			t.Fatalf("async(%d): workers recorded as %d", workers, st.Workers)
		}
		if st.WorkerBusy <= 0 || st.Utilization <= 0 || st.Utilization > 1.0001 {
			t.Fatalf("async(%d): utilization breakdown wrong: %+v", workers, st)
		}
		if st.QueueWait < 0 || st.AvgQueueWait < 0 {
			t.Fatalf("async(%d): queue wait negative: %+v", workers, st)
		}
	}
}

func TestAsyncConstAndEchoOutputs(t *testing.T) {
	sk, ck := keys(t)
	b := circuit.NewBuilder("consts", circuit.AllOptimizations())
	x := b.Input("x")
	b.Output("one", b.Xnor(x, x))
	b.Output("echo", x)
	nl := b.MustBuild()
	be := NewAsync(ck, 2)
	outs, err := be.Run(nl, EncryptInputs(sk, []bool{false}))
	if err != nil {
		t.Fatal(err)
	}
	got := DecryptOutputs(sk, outs)
	if got[0] != true || got[1] != false {
		t.Fatalf("const outputs = %v", got)
	}
}

func TestAsyncInputValidation(t *testing.T) {
	_, ck := keys(t)
	nl := adder4(t)
	be := NewAsync(ck, 2)
	if _, err := be.Run(nl, nil); err == nil {
		t.Fatal("missing inputs not rejected")
	}
	if _, err := be.Run(nl, TrivialInputs(3, bitsOf(0, 8))); err == nil {
		t.Fatal("wrong dimension not rejected")
	}
}

// TestAsyncMatchesSimulatedMakespan calibrates sched.SimulateAsync against
// the real executor: with the measured single-gate cost plugged into the
// LocalPool platform, the simulator's predicted makespan must fall within a
// factor of 3 of backend.Async's measured wall clock (stated tolerance —
// generous because CI machines jitter, but tight enough that a simulator
// predicting wavefront-barrier behaviour, or ignoring the critical path,
// fails).
func TestAsyncMatchesSimulatedMakespan(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration needs wall-clock measurements")
	}
	sk, ck := keys(t)

	// A deep-and-wide netlist: 4 independent 8-gate chains, so 2 workers
	// are busy but the barrier-free schedule matters.
	b := circuit.NewBuilder("calib", circuit.NoOptimizations())
	ins := b.Inputs("x", 5)
	for c := 0; c < 4; c++ {
		cur := ins[c]
		for d := 0; d < 8; d++ {
			cur = b.Gate(logic.NAND, cur, ins[4])
		}
		b.Output("o", cur)
	}
	nl := b.MustBuild()

	// Measure the single-core bootstrapped-gate cost with a dedicated
	// engine (median of a few samples).
	eng := gate.NewEngine(ck)
	rng := trand.NewSeeded([]byte("calib"))
	x := gate.NewCiphertext(ck.Params)
	y := gate.NewCiphertext(ck.Params)
	out := gate.NewCiphertext(ck.Params)
	gate.Encrypt(x, true, sk, rng)
	gate.Encrypt(y, false, sk, rng)
	const samples = 5
	times := make([]time.Duration, samples)
	for i := range times {
		t0 := time.Now()
		if err := eng.Binary(logic.NAND, out, x, y); err != nil {
			t.Fatal(err)
		}
		times[i] = time.Since(t0)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	gt := times[samples/2] // median damps warm-up and GC outliers

	const workers = 2
	predicted := sched.SimulateAsync(nl, sched.LocalPool(workers, gt)).Makespan

	be := NewAsync(ck, workers)
	in := make([]bool, nl.NumInputs)
	if _, err := be.Run(nl, EncryptInputs(sk, in)); err != nil {
		t.Fatal(err)
	}
	measured := be.Stats.Elapsed

	ratio := float64(measured) / float64(predicted)
	if ratio < 1.0/3 || ratio > 3 {
		t.Fatalf("measured %v vs predicted %v (ratio %.2f, tolerance 3x): simulator out of calibration", measured, predicted, ratio)
	}
}
