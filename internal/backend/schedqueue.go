package backend

import (
	"fmt"
	"sync"

	"pytfhe/internal/circuit"
)

// Sched selects the Async executor's ready-queue policy.
type Sched uint8

const (
	// SchedCritical pops the ready gate with the longest remaining
	// bootstrap-weighted dependency chain first. Under limited workers this
	// keeps the DAG's critical path moving and defers wide-but-shallow
	// side branches, which FIFO arrival order interleaves arbitrarily.
	// This is the default.
	SchedCritical Sched = iota
	// SchedFIFO pops gates in arrival order — the policy of the original
	// channel-based executor, kept as the A/B baseline (-sched fifo).
	SchedFIFO
)

func (s Sched) String() string {
	if s == SchedFIFO {
		return "fifo"
	}
	return "critical"
}

// ParseSched resolves a -sched flag value.
func ParseSched(s string) (Sched, error) {
	switch s {
	case "", "critical":
		return SchedCritical, nil
	case "fifo":
		return SchedFIFO, nil
	}
	return 0, fmt.Errorf("backend: unknown scheduler %q (want critical or fifo)", s)
}

// remainingDepth computes, for every gate, the number of bootstrapped
// gates on the longest dependency chain from that gate to any sink —
// the gate's remaining critical-path cost. Bootstraps dominate runtime
// by orders of magnitude, so linear gates weigh zero. Gates are in
// topological order (Validate forbids forward references), so one
// reverse sweep over the prebuilt children lists suffices.
func remainingDepth(nl *circuit.Netlist, children [][]int32) []int64 {
	rem := make([]int64, len(nl.Gates))
	for i := len(nl.Gates) - 1; i >= 0; i-- {
		var longest int64
		for _, c := range children[nl.GateID(i)] {
			if rem[c] > longest {
				longest = rem[c]
			}
		}
		var w int64
		if nl.Gates[i].Kind.NeedsBootstrap() {
			w = 1
		}
		rem[i] = w + longest
	}
	return rem
}

// readyQueue is the blocking multi-producer multi-consumer ready set of
// the Async executor. With a priority slice it is a max-heap keyed by
// prio[gate] (critical-path-first); without one it degenerates to a FIFO
// ring. finish wakes all waiters for both normal completion and abort,
// replacing the old stop-channel + close(chan) pair.
type readyQueue struct {
	mu    sync.Mutex
	cond  *sync.Cond
	items []int32
	head  int     // FIFO consumption point; unused in heap mode
	prio  []int64 // non-nil → max-heap keyed by prio[item]
	done  bool
}

func newReadyQueue(capacity int, prio []int64) *readyQueue {
	q := &readyQueue{items: make([]int32, 0, capacity), prio: prio}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *readyQueue) push(gi int32) {
	q.mu.Lock()
	q.items = append(q.items, gi)
	if q.prio != nil {
		q.up(len(q.items) - 1)
	}
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until an item is available or the queue is finished; the
// second result is false once finish has been called.
func (q *readyQueue) pop() (int32, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		if q.done {
			return 0, false
		}
		if q.prio != nil {
			if len(q.items) > 0 {
				top := q.items[0]
				last := len(q.items) - 1
				q.items[0] = q.items[last]
				q.items = q.items[:last]
				if last > 0 {
					q.down(0)
				}
				return top, true
			}
		} else if q.head < len(q.items) {
			gi := q.items[q.head]
			q.head++
			if q.head == len(q.items) {
				q.items = q.items[:0]
				q.head = 0
			}
			return gi, true
		}
		q.cond.Wait()
	}
}

// finish makes every current and future pop return false and wakes all
// blocked workers. Called when the last gate completes or the run aborts;
// pushes racing with an abort land in the slice but are never popped.
func (q *readyQueue) finish() {
	q.mu.Lock()
	q.done = true
	q.mu.Unlock()
	q.cond.Broadcast()
}

func (q *readyQueue) less(i, j int) bool { return q.prio[q.items[i]] > q.prio[q.items[j]] }

func (q *readyQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *readyQueue) down(i int) {
	n := len(q.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && q.less(l, best) {
			best = l
		}
		if r < n && q.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		q.items[i], q.items[best] = q.items[best], q.items[i]
		i = best
	}
}
