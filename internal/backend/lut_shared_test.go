package backend

import (
	"context"
	"testing"

	"pytfhe/internal/circuit"
)

// lutMixNetlist mixes arity-3 LUTs, an arity-2 LUT, and classic gates, so
// both shared-executor dispatch paths see every gate shape.
func lutMixNetlist(t testing.TB) *circuit.Netlist {
	t.Helper()
	b := circuit.NewBuilder("lut-mix", circuit.NoOptimizations())
	x, y, z, w := b.Input("x"), b.Input("y"), b.Input("z"), b.Input("w")
	par := b.LUT(0x96, x, y, z) // PARITY3
	maj := b.LUT(0xE8, x, y, z) // MAJ
	mix := b.LUT(0x7E, par, maj, w)
	b.Output("mix", mix)
	b.Output("pair", b.LUT(0x6, par, w)) // XOR as an arity-2 table
	b.Output("classic", b.And(b.Not(maj), w))
	return b.MustBuild()
}

// TestSharedLUT submits a LUT-bearing netlist to the shared executor —
// unbatched and with the mixed OpBatch path — and checks every decrypted
// output against the cleartext reference, plus the cumulative LUT counter.
func TestSharedLUT(t *testing.T) {
	sk, ck := keys(t)
	nl := lutMixNetlist(t)
	wantLUTs := int64(nl.ComputeStats().LUTs)
	if wantLUTs == 0 {
		t.Fatal("setup: netlist has no LUT gates")
	}

	for _, tc := range []struct {
		name  string
		batch int
	}{{"single", 1}, {"batched", 4}} {
		t.Run(tc.name, func(t *testing.T) {
			ex := NewSharedBatch(2, tc.batch)
			defer ex.Close()
			key, err := ex.RegisterKey(ck)
			if err != nil {
				t.Fatal(err)
			}
			var luts int64
			for v := uint64(0); v < 16; v++ {
				bits := bitsOf(v, 4)
				want, err := nl.Evaluate(bits)
				if err != nil {
					t.Fatal(err)
				}
				outs, err := ex.Submit(context.Background(), key, nl, EncryptInputs(sk, bits))
				if err != nil {
					t.Fatal(err)
				}
				got := DecryptOutputs(sk, outs)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("inputs %04b output %d: got %v, want %v", v, i, got[i], want[i])
					}
				}
				luts += wantLUTs
			}
			st := ex.Stats()
			if st.LUTs != luts {
				t.Fatalf("executor counted %d LUTs, want %d", st.LUTs, luts)
			}
			if st.Bootstraps < st.LUTs {
				t.Fatalf("LUTs (%d) not included in bootstraps (%d)", st.LUTs, st.Bootstraps)
			}
		})
	}
}
