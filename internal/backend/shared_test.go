package backend

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

// secondKeys generates a distinct tenant key pair, so Shared tests exercise
// cross-key engine caching rather than a single shared key.
var (
	secondOnce sync.Once
	secondSK   *boot.SecretKey
	secondCK   *boot.CloudKey
)

func keys2(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	secondOnce.Do(func() {
		rng := trand.NewSeeded([]byte("backend-test-keys-tenant2"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		secondSK, secondCK = sk, ck
	})
	return secondSK, secondCK
}

// TestSharedMatchesSingle runs concurrent submissions from two tenants
// (distinct cloud keys) on one Shared worker set and checks every result
// against the single-core reference under the matching key.
func TestSharedMatchesSingle(t *testing.T) {
	sk1, ck1 := keys(t)
	sk2, ck2 := keys2(t)
	nl := adder4(t)

	ex := NewShared(3)
	defer ex.Close()
	k1, err := ex.RegisterKey(ck1)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := ex.RegisterKey(ck2)
	if err != nil {
		t.Fatal(err)
	}

	type tenant struct {
		sk  *boot.SecretKey
		key *SharedKey
	}
	tenants := []tenant{{sk1, k1}, {sk2, k2}, {sk1, k1}, {sk2, k2}}
	cases := [][2]uint64{{3, 5}, {15, 15}, {0, 9}, {7, 12}}

	var wg sync.WaitGroup
	errs := make([]error, len(tenants))
	for i, tn := range tenants {
		wg.Add(1)
		go func(i int, tn tenant) {
			defer wg.Done()
			tc := cases[i]
			in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
			outs, err := ex.Submit(context.Background(), tn.key, nl, EncryptInputs(tn.sk, in))
			if err != nil {
				errs[i] = err
				return
			}
			if got := uintOf(DecryptOutputs(tn.sk, outs)); got != tc[0]+tc[1] {
				t.Errorf("tenant %d: %d+%d = %d on shared executor", i, tc[0], tc[1], got)
			}
		}(i, tn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
	}

	st := ex.Stats()
	if st.Submits != 4 || st.Gates == 0 || st.Bootstraps == 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestSharedContextCancel checks a submission aborts promptly when its
// context is cancelled and the executor survives to serve later work.
func TestSharedContextCancel(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	ex := NewShared(1)
	defer ex.Close()
	key, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the run must not start from scratch and hang
	in := append(bitsOf(1, 4), bitsOf(2, 4)...)
	if _, err := ex.Submit(ctx, key, nl, EncryptInputs(sk, in)); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled submit: err = %v, want context.Canceled", err)
	}

	outs, err := ex.Submit(context.Background(), key, nl, EncryptInputs(sk, in))
	if err != nil {
		t.Fatalf("executor unusable after cancel: %v", err)
	}
	if got := uintOf(DecryptOutputs(sk, outs)); got != 3 {
		t.Fatalf("1+2 = %d after cancel", got)
	}
}

// TestSharedCloseFailsInFlight checks Close aborts pending submissions
// with ErrExecutorClosed rather than leaving them blocked.
func TestSharedCloseFailsInFlight(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	ex := NewShared(1)
	key, err := ex.RegisterKey(ck)
	if err != nil {
		t.Fatal(err)
	}

	in := EncryptInputs(sk, bitsOf(0x35, 8))
	done := make(chan error, 1)
	go func() {
		_, err := ex.Submit(context.Background(), key, nl, in)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond) // let the run enter the queue
	ex.Close()
	err = <-done
	if err != nil && !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("in-flight submit after Close: %v", err)
	}
	if _, err := ex.Submit(context.Background(), key, nl, in); !errors.Is(err, ErrExecutorClosed) {
		t.Fatalf("submit after Close: err = %v, want ErrExecutorClosed", err)
	}
}
