// Package backend implements the in-process PyTFHE execution backends: the
// Plain functional reference, the Single single-core homomorphic evaluator,
// Pool, the multi-worker wavefront evaluator implementing Algorithm 1 of
// the paper (a BFS over the gate DAG that submits every ready gate to a
// worker and barriers per level), and Async, the barrier-free
// dependency-driven executor that dispatches each gate the moment its
// operands are produced (see async.go). Every backend is a thin scheduling
// policy over the shared execution core of internal/exec — the value
// table, input checks, refcount release, ciphertext recycling, worker
// engine sets, stats, and output collection live there exactly once. The
// distributed multi-node backend lives in internal/cluster; the
// GPU-simulator backend in internal/gpu.
package backend

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// Backend executes a compiled gate netlist over LWE ciphertexts.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Run evaluates the netlist: inputs[i] feeds primary input i+1. The
	// returned slice parallels nl.Outputs. Inputs are not modified.
	Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error)
}

// RunStats captures execution metrics from the most recent Run.
type RunStats = exec.Stats

// ErrNilInput marks a nil ciphertext among a run's inputs.
var ErrNilInput = exec.ErrNilInput

// Sched selects the ready-driven executors' queue policy.
type Sched = exec.Sched

const (
	// SchedCritical pops the ready gate with the longest remaining
	// bootstrap-weighted dependency chain first (the default).
	SchedCritical = exec.SchedCritical
	// SchedFIFO pops gates in arrival order — the A/B baseline.
	SchedFIFO = exec.SchedFIFO
)

// ParseSched resolves a -sched flag value.
func ParseSched(s string) (Sched, error) { return exec.ParseSched(s) }

// Single evaluates gates sequentially on one core — the sequential driver
// over a refcounted free-list pool.
type Single struct {
	eng   *gate.Engine
	Stats RunStats
}

// NewSingle returns a single-core backend over ck.
func NewSingle(ck *boot.CloudKey) *Single {
	return &Single{eng: gate.NewEngine(ck)}
}

// Name implements Backend.
func (s *Single) Name() string { return "single-cpu" }

// Engine exposes the underlying gate engine (for profiling).
func (s *Single) Engine() *gate.Engine { return s.eng }

// Run implements Backend.
func (s *Single) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	outs, stats, err := exec.RunSequential(s.eng, nl, inputs, exec.NewPool(s.eng.Params().LWEDimension))
	if err != nil {
		return nil, err
	}
	s.Stats = stats
	return outs, nil
}

// Pool evaluates the DAG wavefront by wavefront with W worker goroutines,
// each owning a gate engine over the shared cloud key — the in-process
// equivalent of the paper's Ray actors, and the level driver of the
// execution core.
type Pool struct {
	ws    *exec.Workers
	Stats RunStats
}

// NewPool returns a backend with the given worker count (minimum 1).
func NewPool(ck *boot.CloudKey, workers int) *Pool {
	return &Pool{ws: exec.NewWorkers(ck, workers)}
}

// Name implements Backend.
func (p *Pool) Name() string { return fmt.Sprintf("pool-cpu(%d)", p.ws.N()) }

// Run implements Backend.
func (p *Pool) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	outs, stats, err := exec.RunLevels(p.ws, nl, inputs, exec.NewPool(p.ws.Dim()))
	if err != nil {
		return nil, err
	}
	p.Stats = stats
	return outs, nil
}

// EncryptInputs encrypts plaintext bits for a netlist run.
func EncryptInputs(sk *boot.SecretKey, bits []bool) []*lwe.Sample {
	rng := newEncryptionRNG()
	cts := make([]*lwe.Sample, len(bits))
	for i, b := range bits {
		ct := gate.NewCiphertext(sk.Params)
		gate.Encrypt(ct, b, sk, rng)
		cts[i] = ct
	}
	return cts
}

// DecryptOutputs decrypts backend outputs to plaintext bits.
func DecryptOutputs(sk *boot.SecretKey, cts []*lwe.Sample) []bool {
	bits := make([]bool, len(cts))
	for i, ct := range cts {
		bits[i] = gate.Decrypt(ct, sk)
	}
	return bits
}
