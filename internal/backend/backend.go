// Package backend implements the in-process PyTFHE execution backends: the
// Plain functional reference, the Single single-core homomorphic evaluator,
// Pool, the multi-worker wavefront evaluator implementing Algorithm 1 of
// the paper (a BFS over the gate DAG that submits every ready gate to a
// worker and barriers per level), and Async, the barrier-free
// dependency-driven executor that dispatches each gate the moment its
// operands are produced (see async.go). The distributed multi-node backend
// lives in internal/cluster; the GPU-simulator backend in internal/gpu.
package backend

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// Backend executes a compiled gate netlist over LWE ciphertexts.
type Backend interface {
	// Name identifies the backend in reports.
	Name() string
	// Run evaluates the netlist: inputs[i] feeds primary input i+1. The
	// returned slice parallels nl.Outputs. Inputs are not modified.
	Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error)
}

// RunStats captures execution metrics from the most recent Run.
type RunStats struct {
	Gates       int           // gates evaluated (including free gates)
	Bootstraps  int           // bootstrapped gate evaluations
	Levels      int           // wavefronts executed (0 for barrier-free Async)
	Elapsed     time.Duration // wall-clock for the Run call
	GatesPerSec float64

	// Breakdowns recorded by the concurrent executors (Pool leaves them
	// zero except Workers; Async fills them all).
	Workers      int           // worker goroutines used
	QueueWait    time.Duration // cumulative time gates sat in the ready queue
	AvgQueueWait time.Duration // QueueWait / Gates
	WorkerBusy   time.Duration // cumulative time workers spent evaluating
	Utilization  float64       // WorkerBusy / (Elapsed * Workers)
}

// ciphertextPool recycles LWE samples between gates so large programs do
// not allocate one ciphertext per node.
type ciphertextPool struct {
	dim  int
	free []*lwe.Sample
}

func (p *ciphertextPool) get() *lwe.Sample {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return lwe.NewSample(p.dim)
}

func (p *ciphertextPool) put(s *lwe.Sample) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

// Single evaluates gates sequentially on one core.
type Single struct {
	eng   *gate.Engine
	Stats RunStats
}

// NewSingle returns a single-core backend over ck.
func NewSingle(ck *boot.CloudKey) *Single {
	return &Single{eng: gate.NewEngine(ck)}
}

// Name implements Backend.
func (s *Single) Name() string { return "single-cpu" }

// Engine exposes the underlying gate engine (for profiling).
func (s *Single) Engine() *gate.Engine { return s.eng }

// Run implements Backend.
func (s *Single) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if err := checkInputs(nl, inputs, s.eng.Params().LWEDimension); err != nil {
		return nil, err
	}
	start := time.Now()
	dim := s.eng.Params().LWEDimension
	pool := &ciphertextPool{dim: dim}

	values := make([]*lwe.Sample, nl.NumNodes()+1)
	for i, in := range inputs {
		values[i+1] = in
	}
	remaining := nl.FanOut()

	stats := RunStats{Gates: len(nl.Gates)}
	release := func(id circuit.NodeID) {
		if id <= 0 {
			return
		}
		remaining[id]--
		if remaining[id] == 0 && !nl.IsInput(id) {
			pool.put(values[id])
			values[id] = nil
		}
	}
	for i, g := range nl.Gates {
		id := nl.GateID(i)
		out := pool.get()
		if err := s.eng.Binary(g.Kind, out, values[g.A], values[g.B]); err != nil {
			pool.put(out)
			return nil, fmt.Errorf("backend: gate %d: %w", id, err)
		}
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
		values[id] = out
		release(g.A)
		release(g.B)
	}
	outs, err := collectOutputs(nl, values, dim)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.GatesPerSec = float64(stats.Bootstraps) / secs
	}
	s.Stats = stats
	return outs, nil
}

// Pool evaluates the DAG wavefront by wavefront with W worker goroutines,
// each owning a gate engine over the shared cloud key — the in-process
// equivalent of the paper's Ray actors.
type Pool struct {
	ck      *boot.CloudKey
	workers int
	engines []*gate.Engine
	Stats   RunStats
}

// NewPool returns a backend with the given worker count (minimum 1).
func NewPool(ck *boot.CloudKey, workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	engines := make([]*gate.Engine, workers)
	for i := range engines {
		engines[i] = gate.NewEngine(ck)
	}
	return &Pool{ck: ck, workers: workers, engines: engines}
}

// Name implements Backend.
func (p *Pool) Name() string { return fmt.Sprintf("pool-cpu(%d)", p.workers) }

// Run implements Backend.
func (p *Pool) Run(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	dim := p.ck.Params.LWEDimension
	if err := checkInputs(nl, inputs, dim); err != nil {
		return nil, err
	}
	start := time.Now()
	values := make([]*lwe.Sample, nl.NumNodes()+1)
	for i, in := range inputs {
		values[i+1] = in
	}

	levels := nl.Levels()
	stats := RunStats{Gates: len(nl.Gates), Levels: len(levels), Workers: p.workers}
	for _, g := range nl.Gates {
		if g.Kind.NeedsBootstrap() {
			stats.Bootstraps++
		}
	}

	// Reference counting lets finished wavefronts return their ciphertexts
	// to a free list: peak memory follows the live frontier, not the whole
	// program (a 2M-gate MNIST netlist would otherwise hold ~5 GB).
	remaining := nl.FanOut()
	pool := &ciphertextPool{dim: dim}
	release := func(id circuit.NodeID) {
		if id <= 0 || nl.IsInput(id) {
			return
		}
		remaining[id]--
		if remaining[id] == 0 {
			pool.put(values[id])
			values[id] = nil
		}
	}

	var firstErr error
	var errMu sync.Mutex
	for _, level := range levels {
		// Algorithm 1: every gate in this wavefront has all parents ready;
		// submit them to the workers and barrier before the next level.
		for _, gi := range level {
			values[nl.GateID(gi)] = pool.get()
		}
		// Workers pull the next gate via an atomic counter rather than
		// pre-sliced chunks: with static chunking one slow chunk (a run of
		// bootstrapped gates landing in the same slice) stalls the whole
		// level barrier while the other workers sit idle.
		var next int64
		var wg sync.WaitGroup
		nw := p.workers
		if nw > len(level) {
			nw = len(level)
		}
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(eng *gate.Engine) {
				defer wg.Done()
				for {
					i := int(atomic.AddInt64(&next, 1)) - 1
					if i >= len(level) {
						return
					}
					gi := level[i]
					g := nl.Gates[gi]
					if err := eng.Binary(g.Kind, values[nl.GateID(gi)], values[g.A], values[g.B]); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = fmt.Errorf("backend: gate %d: %w", nl.GateID(gi), err)
						}
						errMu.Unlock()
						return
					}
				}
			}(p.engines[w])
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
		// Operand releases happen after the barrier so no worker frees a
		// ciphertext another worker is still reading.
		for _, gi := range level {
			release(nl.Gates[gi].A)
			release(nl.Gates[gi].B)
		}
	}
	outs, err := collectOutputs(nl, values, dim)
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	if secs := stats.Elapsed.Seconds(); secs > 0 {
		stats.GatesPerSec = float64(stats.Bootstraps) / secs
	}
	p.Stats = stats
	return outs, nil
}

func checkInputs(nl *circuit.Netlist, inputs []*lwe.Sample, dim int) error {
	if len(inputs) != nl.NumInputs {
		return fmt.Errorf("backend: %d inputs supplied, want %d", len(inputs), nl.NumInputs)
	}
	for i, in := range inputs {
		if in.Dimension() != dim {
			return fmt.Errorf("backend: input %d has dimension %d, want %d", i, in.Dimension(), dim)
		}
	}
	return nil
}

func collectOutputs(nl *circuit.Netlist, values []*lwe.Sample, dim int) ([]*lwe.Sample, error) {
	outs := make([]*lwe.Sample, len(nl.Outputs))
	for i, id := range nl.Outputs {
		out := lwe.NewSample(dim)
		switch {
		case id == circuit.ConstTrue:
			gate.Trivial(out, true)
		case id == circuit.ConstFalse:
			gate.Trivial(out, false)
		case values[id] == nil:
			return nil, fmt.Errorf("backend: output %d references freed node %d", i, id)
		default:
			out.Copy(values[id])
		}
		outs[i] = out
	}
	return outs, nil
}

// EncryptInputs encrypts plaintext bits for a netlist run.
func EncryptInputs(sk *boot.SecretKey, bits []bool) []*lwe.Sample {
	rng := newEncryptionRNG()
	cts := make([]*lwe.Sample, len(bits))
	for i, b := range bits {
		ct := gate.NewCiphertext(sk.Params)
		gate.Encrypt(ct, b, sk, rng)
		cts[i] = ct
	}
	return cts
}

// DecryptOutputs decrypts backend outputs to plaintext bits.
func DecryptOutputs(sk *boot.SecretKey, cts []*lwe.Sample) []bool {
	bits := make([]bool, len(cts))
	for i, ct := range cts {
		bits[i] = gate.Decrypt(ct, sk)
	}
	return bits
}
