package backend

import (
	"sync"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func keys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("backend-test-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

// fullAdder4 builds a 4-bit ripple adder netlist.
func adder4(t testing.TB) *circuit.Netlist {
	t.Helper()
	b := circuit.NewBuilder("adder4", circuit.AllOptimizations())
	a := b.Inputs("a", 4)
	bb := b.Inputs("b", 4)
	carry := b.Const(false)
	for i := 0; i < 4; i++ {
		axb := b.Xor(a[i], bb[i])
		sum := b.Xor(axb, carry)
		carry = b.Or(b.And(a[i], bb[i]), b.And(axb, carry))
		b.Output("s", sum)
	}
	b.Output("cout", carry)
	return b.MustBuild()
}

func bitsOf(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

func uintOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func TestPlainBackend(t *testing.T) {
	nl := adder4(t)
	for _, tc := range [][2]uint64{{3, 5}, {15, 1}, {0, 0}, {9, 9}} {
		in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
		outs, err := Plain{}.Run(nl, TrivialInputs(8, in))
		if err != nil {
			t.Fatal(err)
		}
		bits := make([]bool, len(outs))
		for i, ct := range outs {
			bits[i] = int32(ct.B) > 0 // trivial samples decode by sign
		}
		got := uintOf(bits)
		if got != tc[0]+tc[1] {
			t.Fatalf("%d+%d = %d", tc[0], tc[1], got)
		}
	}
}

func TestSingleBackendHomomorphic(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	be := NewSingle(ck)
	for _, tc := range [][2]uint64{{3, 5}, {7, 9}, {15, 15}} {
		in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
		outs, err := be.Run(nl, EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		got := uintOf(DecryptOutputs(sk, outs))
		if got != tc[0]+tc[1] {
			t.Fatalf("homomorphic %d+%d = %d", tc[0], tc[1], got)
		}
	}
	if be.Stats.Bootstraps == 0 || be.Stats.GatesPerSec <= 0 {
		t.Fatalf("stats not recorded: %+v", be.Stats)
	}
}

func TestPoolBackendHomomorphic(t *testing.T) {
	sk, ck := keys(t)
	nl := adder4(t)
	for _, workers := range []int{1, 2, 4} {
		be := NewPool(ck, workers)
		in := append(bitsOf(11, 4), bitsOf(6, 4)...)
		outs, err := be.Run(nl, EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		got := uintOf(DecryptOutputs(sk, outs))
		if got != 17 {
			t.Fatalf("pool(%d): 11+6 = %d", workers, got)
		}
		if be.Stats.Levels == 0 {
			t.Fatalf("pool(%d): levels not recorded", workers)
		}
	}
}

func TestInputValidation(t *testing.T) {
	_, ck := keys(t)
	nl := adder4(t)
	be := NewSingle(ck)
	if _, err := be.Run(nl, nil); err == nil {
		t.Fatal("missing inputs not rejected")
	}
	bad := TrivialInputs(3, bitsOf(0, 8)) // wrong dimension
	if _, err := be.Run(nl, bad); err == nil {
		t.Fatal("wrong dimension not rejected")
	}
}

func TestConstOutputBackends(t *testing.T) {
	sk, ck := keys(t)
	b := circuit.NewBuilder("consts", circuit.AllOptimizations())
	x := b.Input("x")
	b.Output("one", b.Xnor(x, x))
	b.Output("echo", x)
	nl := b.MustBuild()
	be := NewSingle(ck)
	outs, err := be.Run(nl, EncryptInputs(sk, []bool{false}))
	if err != nil {
		t.Fatal(err)
	}
	got := DecryptOutputs(sk, outs)
	if got[0] != true || got[1] != false {
		t.Fatalf("const outputs = %v", got)
	}
}
