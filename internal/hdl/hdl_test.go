package hdl

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pytfhe/internal/circuit"
)

// runUnary builds a module computing f over one w-bit input and returns a
// closure that evaluates it on concrete values.
func runBinaryOp(t *testing.T, w int, build func(m *Module, a, b Bus) Bus) func(x, y uint64) uint64 {
	t.Helper()
	m := New("op")
	a := m.InputBus("a", w)
	b := m.InputBus("b", w)
	out := build(m, a, b)
	m.OutputBus("out", out)
	nl := m.MustBuild()
	return func(x, y uint64) uint64 {
		in := make([]bool, 2*w)
		for i := 0; i < w; i++ {
			in[i] = x>>uint(i)&1 == 1
			in[w+i] = y>>uint(i)&1 == 1
		}
		res, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		return bitsToUint(res)
	}
}

func runPredicate(t *testing.T, w int, build func(m *Module, a, b Bus) circuit.NodeID) func(x, y uint64) bool {
	t.Helper()
	m := New("pred")
	a := m.InputBus("a", w)
	b := m.InputBus("b", w)
	m.Output("out", build(m, a, b))
	nl := m.MustBuild()
	return func(x, y uint64) bool {
		in := make([]bool, 2*w)
		for i := 0; i < w; i++ {
			in[i] = x>>uint(i)&1 == 1
			in[w+i] = y>>uint(i)&1 == 1
		}
		res, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		return res[0]
	}
}

func bitsToUint(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

func signExt(v uint64, w int) int64 {
	shift := 64 - uint(w)
	return int64(v<<shift) >> shift
}

const w4mask = 0xF

func TestAddExhaustive(t *testing.T) {
	add := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.Add(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if got := add(x, y); got != (x+y)&w4mask {
				t.Fatalf("%d+%d = %d", x, y, got)
			}
		}
	}
}

func TestSubExhaustive(t *testing.T) {
	sub := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.Sub(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if got := sub(x, y); got != (x-y)&w4mask {
				t.Fatalf("%d-%d = %d", x, y, got)
			}
		}
	}
}

func TestMulUExhaustive(t *testing.T) {
	mul := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.MulU(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if got := mul(x, y); got != x*y {
				t.Fatalf("%d*%d = %d", x, y, got)
			}
		}
	}
}

func TestMulSExhaustive(t *testing.T) {
	mul := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.MulS(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			sx, sy := signExt(x, 4), signExt(y, 4)
			want := uint64(sx*sy) & 0xFF
			if got := mul(x, y); got != want {
				t.Fatalf("%d*%d = %d, want %d", sx, sy, got, want)
			}
		}
	}
}

func TestDivUExhaustive(t *testing.T) {
	div := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus {
		q, r := m.DivU(a, b)
		return m.Concat(q, r)
	})
	for x := uint64(0); x < 16; x++ {
		for y := uint64(1); y < 16; y++ {
			got := div(x, y)
			q, r := got&w4mask, got>>4
			if q != x/y || r != x%y {
				t.Fatalf("%d/%d = %d rem %d, want %d rem %d", x, y, q, r, x/y, x%y)
			}
		}
	}
}

func TestDivSSelected(t *testing.T) {
	div := runBinaryOp(t, 5, func(m *Module, a, b Bus) Bus {
		q, r := m.DivS(a, b)
		return m.Concat(q, r)
	})
	for _, tc := range []struct{ x, y int64 }{
		{7, 2}, {-7, 2}, {7, -2}, {-7, -2}, {0, 5}, {-1, 1}, {15, 3}, {-15, -3}, {-16, 1},
	} {
		got := div(uint64(tc.x)&0x1F, uint64(tc.y)&0x1F)
		q := signExt(got&0x1F, 5)
		r := signExt(got>>5, 5)
		wantQ, wantR := tc.x/tc.y, tc.x%tc.y
		if q != wantQ || r != wantR {
			t.Fatalf("%d/%d = %d rem %d, want %d rem %d", tc.x, tc.y, q, r, wantQ, wantR)
		}
	}
}

func TestComparisonsExhaustive(t *testing.T) {
	ltu := runPredicate(t, 4, func(m *Module, a, b Bus) circuit.NodeID { return m.LtU(a, b) })
	lts := runPredicate(t, 4, func(m *Module, a, b Bus) circuit.NodeID { return m.LtS(a, b) })
	eq := runPredicate(t, 4, func(m *Module, a, b Bus) circuit.NodeID { return m.Eq(a, b) })
	geu := runPredicate(t, 4, func(m *Module, a, b Bus) circuit.NodeID { return m.GeU(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if ltu(x, y) != (x < y) {
				t.Fatalf("LtU(%d,%d)", x, y)
			}
			if geu(x, y) != (x >= y) {
				t.Fatalf("GeU(%d,%d)", x, y)
			}
			if lts(x, y) != (signExt(x, 4) < signExt(y, 4)) {
				t.Fatalf("LtS(%d,%d)", signExt(x, 4), signExt(y, 4))
			}
			if eq(x, y) != (x == y) {
				t.Fatalf("Eq(%d,%d)", x, y)
			}
		}
	}
}

func TestMinMaxAbsRelu(t *testing.T) {
	ops := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus {
		return m.Concat(m.MinS(a, b), m.MaxS(a, b), m.AbsS(a), m.ReluS(a))
	})
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			got := ops(x, y)
			sx, sy := signExt(x, 4), signExt(y, 4)
			minW, maxW := sx, sy
			if sy < sx {
				minW, maxW = sy, sx
			}
			absW := sx
			if absW < 0 {
				absW = -absW
			}
			reluW := sx
			if reluW < 0 {
				reluW = 0
			}
			if signExt(got&15, 4) != minW {
				t.Fatalf("MinS(%d,%d) = %d", sx, sy, signExt(got&15, 4))
			}
			if signExt(got>>4&15, 4) != maxW {
				t.Fatalf("MaxS(%d,%d) = %d", sx, sy, signExt(got>>4&15, 4))
			}
			if int64(got>>8&15) != absW&15 {
				t.Fatalf("AbsS(%d) = %d", sx, got>>8&15)
			}
			if signExt(got>>12&15, 4) != reluW {
				t.Fatalf("ReluS(%d) = %d", sx, signExt(got>>12&15, 4))
			}
		}
	}
}

func TestShifts(t *testing.T) {
	shl := runBinaryOp(t, 8, func(m *Module, a, b Bus) Bus { return m.ShlVar(a, b[:3]) })
	shr := runBinaryOp(t, 8, func(m *Module, a, b Bus) Bus { return m.ShrVar(a, b[:3]) })
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 200; i++ {
		x := uint64(rng.Intn(256))
		k := uint64(rng.Intn(8))
		if got := shl(x, k); got != (x<<k)&0xFF {
			t.Fatalf("%d<<%d = %d", x, k, got)
		}
		if got := shr(x, k); got != x>>k {
			t.Fatalf("%d>>%d = %d", x, k, got)
		}
	}
}

func TestConstShifts(t *testing.T) {
	m := New("cshift")
	a := m.InputBus("a", 8)
	m.OutputBus("shl", m.ShlConst(a, 3))
	m.OutputBus("shr", m.ShrConst(a, 3))
	m.OutputBus("asr", m.AshrConst(a, 3))
	nl := m.MustBuild()
	if len(nl.Gates) != 0 {
		t.Fatalf("constant shifts must be pure wiring, got %d gates", len(nl.Gates))
	}
	in := make([]bool, 8)
	x := uint64(0xB5)
	for i := range in {
		in[i] = x>>uint(i)&1 == 1
	}
	out, _ := nl.Evaluate(in)
	v := bitsToUint(out)
	if got := v & 0xFF; got != (x<<3)&0xFF {
		t.Fatalf("shl3 = %#x", got)
	}
	if got := v >> 8 & 0xFF; got != x>>3 {
		t.Fatalf("shr3 = %#x", got)
	}
	if got := v >> 16 & 0xFF; got != uint64(uint8(int8(uint8(x))>>3)) {
		t.Fatalf("asr3 = %#x", got)
	}
}

func TestMulConstSMatchesMulS(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 24; trial++ {
		c := int64(rng.Intn(513) - 256) // includes 0, ±1, runs of ones
		m := New("mulc")
		a := m.InputBus("a", 6)
		out := m.MulConstS(a, c, 16)
		m.OutputBus("out", out)
		nl := m.MustBuild()
		for x := uint64(0); x < 64; x += 7 {
			in := make([]bool, 6)
			for i := range in {
				in[i] = x>>uint(i)&1 == 1
			}
			res, err := nl.Evaluate(in)
			if err != nil {
				t.Fatal(err)
			}
			got := signExt(bitsToUint(res), 16)
			want := signExt(x, 6) * c
			if got != want {
				t.Fatalf("MulConstS(%d, %d) = %d, want %d", signExt(x, 6), c, got, want)
			}
		}
	}
}

func TestPopCount(t *testing.T) {
	m := New("pop")
	a := m.InputBus("a", 7)
	m.OutputBus("out", m.PopCount(a))
	nl := m.MustBuild()
	for x := uint64(0); x < 128; x++ {
		in := make([]bool, 7)
		n := 0
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
			if in[i] {
				n++
			}
		}
		res, _ := nl.Evaluate(in)
		if got := bitsToUint(res); got != uint64(n) {
			t.Fatalf("popcount(%#b) = %d, want %d", x, got, n)
		}
	}
}

func TestWidthManipulationIsFree(t *testing.T) {
	m := New("wiring")
	a := m.InputBus("a", 8)
	m.OutputBus("z", m.ZeroExtend(a, 12))
	m.OutputBus("s", m.SignExtend(a, 12))
	m.OutputBus("t", m.Truncate(a, 4))
	m.OutputBus("c", m.Concat(a[:4], a[4:]))
	nl := m.MustBuild()
	if len(nl.Gates) != 0 {
		t.Fatalf("width manipulation must not cost gates, got %d", len(nl.Gates))
	}
}

func TestReductions(t *testing.T) {
	m := New("red")
	a := m.InputBus("a", 5)
	m.Output("or", m.OrReduce(a))
	m.Output("and", m.AndReduce(a))
	m.Output("xor", m.XorReduce(a))
	m.Output("zero", m.IsZero(a))
	nl := m.MustBuild()
	for x := uint64(0); x < 32; x++ {
		in := make([]bool, 5)
		for i := range in {
			in[i] = x>>uint(i)&1 == 1
		}
		out, _ := nl.Evaluate(in)
		pop := 0
		for _, b := range in {
			if b {
				pop++
			}
		}
		if out[0] != (x != 0) || out[1] != (x == 31) || out[2] != (pop%2 == 1) || out[3] != (x == 0) {
			t.Fatalf("reductions of %#b = %v", x, out[:4])
		}
	}
}

func TestAddExpandNoOverflow(t *testing.T) {
	addx := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.AddExpand(a, b) })
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			if got := addx(x, y); got != x+y {
				t.Fatalf("AddExpand(%d,%d) = %d", x, y, got)
			}
		}
	}
}

func TestNegInc(t *testing.T) {
	ops := runBinaryOp(t, 4, func(m *Module, a, b Bus) Bus { return m.Concat(m.Neg(a), m.Inc(a)) })
	for x := uint64(0); x < 16; x++ {
		got := ops(x, 0)
		if got&15 != (-x)&15 {
			t.Fatalf("Neg(%d) = %d", x, got&15)
		}
		if got>>4 != (x+1)&15 {
			t.Fatalf("Inc(%d) = %d", x, got>>4)
		}
	}
}

func TestGateCountsAreReasonable(t *testing.T) {
	// Adder: ~5 gates/bit. Multiplier: O(w^2). These bounds catch
	// regressions that would silently blow up every benchmark.
	m := New("count")
	a := m.InputBus("a", 8)
	b := m.InputBus("b", 8)
	m.OutputBus("s", m.Add(a, b))
	nl := m.MustBuild()
	if g := len(nl.Gates); g > 8*6 {
		t.Fatalf("8-bit adder uses %d gates", g)
	}

	m2 := New("count2")
	a2 := m2.InputBus("a", 8)
	b2 := m2.InputBus("b", 8)
	m2.OutputBus("p", m2.MulU(a2, b2))
	nl2 := m2.MustBuild()
	if g := len(nl2.Gates); g > 8*8*8 {
		t.Fatalf("8x8 multiplier uses %d gates", g)
	}
}

func TestAddCLAExhaustive(t *testing.T) {
	add := runBinaryOp(t, 6, func(m *Module, a, b Bus) Bus { return m.AddCLA(a, b) })
	for x := uint64(0); x < 64; x++ {
		for y := uint64(0); y < 64; y++ {
			if got := add(x, y); got != (x+y)&63 {
				t.Fatalf("CLA %d+%d = %d", x, y, got)
			}
		}
	}
}

func TestSubCLAExhaustive(t *testing.T) {
	sub := runBinaryOp(t, 5, func(m *Module, a, b Bus) Bus { return m.SubCLA(a, b) })
	for x := uint64(0); x < 32; x++ {
		for y := uint64(0); y < 32; y++ {
			if got := sub(x, y); got != (x-y)&31 {
				t.Fatalf("CLA %d-%d = %d", x, y, got)
			}
		}
	}
}

func TestAddCLACarryOut(t *testing.T) {
	m := New("clac")
	a := m.InputBus("a", 4)
	b := m.InputBus("b", 4)
	s, cout := m.AddCLACarry(a, b, m.B.Const(false))
	m.OutputBus("s", s)
	m.Output("c", cout)
	nl := m.MustBuild()
	for x := uint64(0); x < 16; x++ {
		for y := uint64(0); y < 16; y++ {
			in := make([]bool, 8)
			for i := 0; i < 4; i++ {
				in[i] = x>>uint(i)&1 == 1
				in[4+i] = y>>uint(i)&1 == 1
			}
			out, _ := nl.Evaluate(in)
			v := bitsToUint(out)
			if v&15 != (x+y)&15 || (v>>4 == 1) != (x+y > 15) {
				t.Fatalf("CLA carry %d+%d -> %#x", x, y, v)
			}
		}
	}
}

// TestCLADepthAdvantage verifies the latency/gates trade against the
// ripple adder: logarithmic vs linear bootstrapped depth.
func TestCLADepthAdvantage(t *testing.T) {
	const w = 32
	mr := New("ripple")
	ra := mr.InputBus("a", w)
	rb := mr.InputBus("b", w)
	mr.OutputBus("s", mr.Add(ra, rb))
	ripple := mr.MustBuild()

	mc := New("cla")
	ca := mc.InputBus("a", w)
	cb := mc.InputBus("b", w)
	mc.OutputBus("s", mc.AddCLA(ca, cb))
	cla := mc.MustBuild()

	rd, cd := ripple.Depth(), cla.Depth()
	if cd >= rd/3 {
		t.Fatalf("CLA depth %d not far below ripple depth %d", cd, rd)
	}
	if len(cla.Gates) <= len(ripple.Gates) {
		t.Fatalf("CLA should spend gates for depth: %d vs %d", len(cla.Gates), len(ripple.Gates))
	}
	t.Logf("32-bit adder: ripple %d gates depth %d; Kogge-Stone %d gates depth %d",
		len(ripple.Gates), rd, len(cla.Gates), cd)
}

// Property-based invariants (testing/quick) over the arithmetic units.

func TestPropertyAddCommutes(t *testing.T) {
	add := runBinaryOp(t, 8, func(m *Module, a, b Bus) Bus { return m.Add(a, b) })
	f := func(x, y uint8) bool { return add(uint64(x), uint64(y)) == add(uint64(y), uint64(x)) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyAddSubInverse(t *testing.T) {
	m := New("addsub")
	a := m.InputBus("a", 8)
	b := m.InputBus("b", 8)
	m.OutputBus("r", m.Sub(m.Add(a, b), b))
	nl := m.MustBuild()
	f := func(x, y uint8) bool {
		in := make([]bool, 16)
		for i := 0; i < 8; i++ {
			in[i] = x>>uint(i)&1 == 1
			in[8+i] = y>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			return false
		}
		return bitsToUint(out) == uint64(x)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMulCommutes(t *testing.T) {
	mul := runBinaryOp(t, 6, func(m *Module, a, b Bus) Bus { return m.MulU(a, b) })
	f := func(x, y uint8) bool {
		xv, yv := uint64(x&63), uint64(y&63)
		return mul(xv, yv) == mul(yv, xv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyCLAEqualsRipple(t *testing.T) {
	ripple := runBinaryOp(t, 10, func(m *Module, a, b Bus) Bus { return m.Add(a, b) })
	cla := runBinaryOp(t, 10, func(m *Module, a, b Bus) Bus { return m.AddCLA(a, b) })
	f := func(x, y uint16) bool {
		xv, yv := uint64(x&1023), uint64(y&1023)
		return ripple(xv, yv) == cla(xv, yv)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDivQuotientRemainder(t *testing.T) {
	div := runBinaryOp(t, 6, func(m *Module, a, b Bus) Bus {
		q, r := m.DivU(a, b)
		return m.Concat(q, r)
	})
	f := func(x, y uint8) bool {
		xv, yv := uint64(x&63), uint64(y&63)
		if yv == 0 {
			return true
		}
		got := div(xv, yv)
		q, r := got&63, got>>6
		return q*yv+r == xv && r < yv
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDeMorgan(t *testing.T) {
	// NOT(a AND b) == NOT a OR NOT b at the bus level.
	m := New("demorgan")
	a := m.InputBus("a", 8)
	b := m.InputBus("b", 8)
	m.OutputBus("l", m.Not(m.And(a, b)))
	m.OutputBus("r", m.Or(m.Not(a), m.Not(b)))
	nl := m.MustBuild()
	f := func(x, y uint8) bool {
		in := make([]bool, 16)
		for i := 0; i < 8; i++ {
			in[i] = x>>uint(i)&1 == 1
			in[8+i] = y>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			return false
		}
		v := bitsToUint(out)
		return v&0xFF == v>>8
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
