package hdl

import (
	"math"

	"pytfhe/internal/logic"
)

// Floating-point reciprocal and division. A combinational restoring
// divider over mantissas would cost O(Mant^2) gates of O(Mant) depth per
// division; instead FRecip computes 1/(1.m) by a linear initial estimate
// (the classic 48/17 - 32/17·d rescaled to [1,2), max error 1/17) refined
// with Newton
// iterations x <- x(2 - d·x), which square the error — two iterations
// suffice through Mant = 10, three through Mant = 22.

// fixMul multiplies two signed fixed-point buses with `frac` fractional
// bits, keeping the input width.
func (m *Module) fixMul(a, b Bus, frac int) Bus {
	w := len(a)
	prod := m.MulS(a, b)
	return m.Slice(prod, frac, frac+w)
}

// FRecip computes 1/a. Semantics follow the package's float rules: the
// result truncates toward zero, overflow saturates, underflow flushes to
// zero; a zero input saturates to the format maximum (of the input's
// sign) since there is no Inf encoding.
func (m *Module) FRecip(f FloatFormat, a Bus) Bus {
	pa := m.funpack(f, a)

	// Working fixed point: frac fractional bits, signed width w. Values
	// stay within (0, 3), so two integer bits plus sign suffice.
	frac := f.Mant + 2
	w := frac + 3
	// d = 1.m in fixed point: (1<<Mant | mant) has Mant fractional bits.
	d := m.ZeroExtend(m.ShlConstExpand(pa.mant, frac-f.Mant), w)

	// x0 = 24/17 - 8/17 * d: the classic 48/17 - 32/17·d estimate rescaled
	// from d ∈ [0.5, 1) to our normalized mantissa range d ∈ [1, 2).
	c1 := int64(math.Round(24.0 / 17 * float64(int64(1)<<uint(frac))))
	c2 := int64(math.Round(8.0 / 17 * float64(int64(1)<<uint(frac))))
	// c2 and d both carry frac fractional bits: realign after the product.
	x := m.Sub(m.ConstBus(uint64(c1), w), m.Slice(m.MulConstS(d, c2, w+frac+1), frac, frac+w))

	iters := 2
	if f.Mant > 10 {
		iters = 3
	}
	if f.Mant > 22 {
		iters = 4
	}
	two := m.ConstBus(uint64(int64(2)<<uint(frac)), w)
	for i := 0; i < iters; i++ {
		t := m.Sub(two, m.fixMul(d, x, frac))
		x = m.fixMul(x, t, frac)
	}

	// x ≈ 1/(1.m) ∈ [0.5, 1]. Normalize: y = 2x ∈ [1, 2]; if y reaches 2
	// (input mantissa was exactly 1.0) the result is 1.0 with exponent
	// bumped by one.
	y := m.ShlConst(x, 1)
	carry := y[frac+1] // y >= 2
	mant := m.Mux(carry, m.ConstBus(0, f.Mant), m.Slice(y, frac-f.Mant, frac))

	// Exponent: 1/b = (2x) * 2^(bias - 1 - (e - bias)) => eNew = 2*bias-1-e
	// (+1 when carry).
	expW := f.Exp + 2
	e := m.Sub(m.ConstBus(uint64(2*f.Bias()-1), expW), m.ZeroExtend(pa.exp, expW))
	e = m.Add(e, m.ZeroExtend(Bus{carry}, expW))

	zeroIn := m.FIsZero(f, a)
	underflow := m.LeS(e, m.ConstBus(0, expW))
	overflow := m.GeS(e, m.ConstBus(uint64(f.MaxExp()), expW))
	// 1/0 saturates; fold it into the overflow path.
	overflow = m.B.Or(overflow, zeroIn)
	zeroOut := m.B.Gate(logic.ANDYN, underflow, zeroIn) // underflow AND NOT zeroIn

	packedExp := m.Mux(overflow, m.ConstBus(uint64(f.MaxExp()), f.Exp), m.Truncate(e, f.Exp))
	packedMant := m.Mux(overflow, m.ConstBus(1<<uint(f.Mant)-1, f.Mant), mant)
	res := m.fpack(f, pa.sign, packedExp, packedMant)
	return m.Mux(zeroOut, m.FZero(f), res)
}

// FDiv computes a / b as a * (1/b).
func (m *Module) FDiv(f FloatFormat, a, b Bus) Bus {
	return m.FMul(f, a, m.FRecip(f, b))
}
