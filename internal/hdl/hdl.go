// Package hdl is PyTFHE's combinational hardware construction library — the
// role Chisel plays in the paper. A Module wraps a circuit.Builder and
// provides multi-bit buses with logic, arithmetic, comparison, shift and
// floating-point operators. Everything lowers to the two-input TFHE gate
// alphabet; because TFHE programs must be data-oblivious, only
// combinational (stateless) constructs exist.
//
// Buses are little-endian: index 0 is the least significant bit. Signed
// values use two's complement.
package hdl

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Bus is an ordered collection of wires, LSB first.
type Bus []circuit.NodeID

// Width returns the number of bits in the bus.
func (b Bus) Width() int { return len(b) }

// Module builds one combinational design.
type Module struct {
	B *circuit.Builder
}

// New returns a module using the PyTFHE-optimizing builder.
func New(name string) *Module {
	return &Module{B: circuit.NewBuilder(name, circuit.AllOptimizations())}
}

// NewWithOptions returns a module with explicit builder options (used by
// the baseline framework models, which optimize less).
func NewWithOptions(name string, opts circuit.BuilderOptions) *Module {
	return &Module{B: circuit.NewBuilder(name, opts)}
}

// Input declares a single-bit input.
func (m *Module) Input(name string) circuit.NodeID { return m.B.Input(name) }

// InputBus declares a width-bit input bus named name[i].
func (m *Module) InputBus(name string, width int) Bus {
	return Bus(m.B.Inputs(name, width))
}

// Output registers a single-bit output.
func (m *Module) Output(name string, id circuit.NodeID) { m.B.Output(name, id) }

// OutputBus registers a bus of outputs.
func (m *Module) OutputBus(name string, b Bus) { m.B.OutputBus(name, []circuit.NodeID(b)) }

// Build finalizes the netlist.
func (m *Module) Build() (*circuit.Netlist, error) { return m.B.Build() }

// MustBuild finalizes the netlist, panicking on structural errors.
func (m *Module) MustBuild() *circuit.Netlist { return m.B.MustBuild() }

// ConstBus returns a bus holding the unsigned constant v in width bits.
func (m *Module) ConstBus(v uint64, width int) Bus {
	b := make(Bus, width)
	for i := range b {
		b[i] = m.B.Const(v>>uint(i)&1 == 1)
	}
	return b
}

// ConstBusSigned returns a bus holding the two's-complement constant v.
func (m *Module) ConstBusSigned(v int64, width int) Bus {
	return m.ConstBus(uint64(v), width)
}

// Lit returns a single constant wire.
func (m *Module) Lit(v bool) circuit.NodeID { return m.B.Const(v) }

// --- bitwise operators ---

// Not returns the bitwise complement of a.
func (m *Module) Not(a Bus) Bus {
	out := make(Bus, len(a))
	for i, x := range a {
		out[i] = m.B.Not(x)
	}
	return out
}

func (m *Module) zipBus(kind logic.Kind, a, b Bus) Bus {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdl: width mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Bus, len(a))
	for i := range a {
		out[i] = m.B.Gate(kind, a[i], b[i])
	}
	return out
}

// And returns the bitwise AND of equal-width buses.
func (m *Module) And(a, b Bus) Bus { return m.zipBus(logic.AND, a, b) }

// Or returns the bitwise OR of equal-width buses.
func (m *Module) Or(a, b Bus) Bus { return m.zipBus(logic.OR, a, b) }

// Xor returns the bitwise XOR of equal-width buses.
func (m *Module) Xor(a, b Bus) Bus { return m.zipBus(logic.XOR, a, b) }

// AndBit ANDs every bit of a with the single wire s (bus masking).
func (m *Module) AndBit(a Bus, s circuit.NodeID) Bus {
	out := make(Bus, len(a))
	for i, x := range a {
		out[i] = m.B.And(x, s)
	}
	return out
}

// Mux returns sel ? t : f bitwise. Buses must have equal width.
func (m *Module) Mux(sel circuit.NodeID, t, f Bus) Bus {
	if len(t) != len(f) {
		panic(fmt.Sprintf("hdl: mux width mismatch %d vs %d", len(t), len(f)))
	}
	out := make(Bus, len(t))
	for i := range t {
		out[i] = m.B.Mux(sel, t[i], f[i])
	}
	return out
}

// --- reductions ---

// reduceTree folds a balanced binary tree of the given gate over the wires,
// keeping logic depth logarithmic.
func (m *Module) reduceTree(kind logic.Kind, bits []circuit.NodeID) circuit.NodeID {
	if len(bits) == 0 {
		panic("hdl: reduction of empty bus")
	}
	for len(bits) > 1 {
		next := make([]circuit.NodeID, 0, (len(bits)+1)/2)
		for i := 0; i+1 < len(bits); i += 2 {
			next = append(next, m.B.Gate(kind, bits[i], bits[i+1]))
		}
		if len(bits)%2 == 1 {
			next = append(next, bits[len(bits)-1])
		}
		bits = next
	}
	return bits[0]
}

// OrReduce returns the OR of all bits (a != 0).
func (m *Module) OrReduce(a Bus) circuit.NodeID { return m.reduceTree(logic.OR, a) }

// AndReduce returns the AND of all bits (a == all ones).
func (m *Module) AndReduce(a Bus) circuit.NodeID { return m.reduceTree(logic.AND, a) }

// XorReduce returns the parity of the bus.
func (m *Module) XorReduce(a Bus) circuit.NodeID { return m.reduceTree(logic.XOR, a) }

// IsZero returns a wire that is high when a == 0.
func (m *Module) IsZero(a Bus) circuit.NodeID { return m.B.Not(m.OrReduce(a)) }

// --- width manipulation (pure wiring, zero gates) ---

// ZeroExtend widens a to width bits with zeros.
func (m *Module) ZeroExtend(a Bus, width int) Bus {
	if len(a) >= width {
		return a[:width]
	}
	out := make(Bus, width)
	copy(out, a)
	for i := len(a); i < width; i++ {
		out[i] = m.B.Const(false)
	}
	return out
}

// SignExtend widens a to width bits replicating the sign bit.
func (m *Module) SignExtend(a Bus, width int) Bus {
	if len(a) == 0 {
		panic("hdl: sign extend of empty bus")
	}
	if len(a) >= width {
		return a[:width]
	}
	out := make(Bus, width)
	copy(out, a)
	sign := a[len(a)-1]
	for i := len(a); i < width; i++ {
		out[i] = sign
	}
	return out
}

// Truncate keeps the low width bits.
func (m *Module) Truncate(a Bus, width int) Bus {
	if width > len(a) {
		panic(fmt.Sprintf("hdl: truncate %d-bit bus to %d bits", len(a), width))
	}
	return a[:width]
}

// Slice returns bits [lo, hi) of the bus.
func (m *Module) Slice(a Bus, lo, hi int) Bus {
	if lo < 0 || hi > len(a) || lo > hi {
		panic(fmt.Sprintf("hdl: slice [%d,%d) of %d-bit bus", lo, hi, len(a)))
	}
	return a[lo:hi]
}

// Concat joins buses with the first argument in the least significant
// position.
func (m *Module) Concat(parts ...Bus) Bus {
	var out Bus
	for _, p := range parts {
		out = append(out, p...)
	}
	return out
}

// Repeat replicates a single wire into a width-bit bus.
func (m *Module) Repeat(w circuit.NodeID, width int) Bus {
	out := make(Bus, width)
	for i := range out {
		out[i] = w
	}
	return out
}

// --- constant shifts (pure wiring) ---

// ShlConst shifts left by k, keeping the original width.
func (m *Module) ShlConst(a Bus, k int) Bus {
	out := make(Bus, len(a))
	for i := range out {
		if i < k {
			out[i] = m.B.Const(false)
		} else {
			out[i] = a[i-k]
		}
	}
	return out
}

// ShrConst shifts right logically by k, keeping the original width.
func (m *Module) ShrConst(a Bus, k int) Bus {
	out := make(Bus, len(a))
	for i := range out {
		if i+k < len(a) {
			out[i] = a[i+k]
		} else {
			out[i] = m.B.Const(false)
		}
	}
	return out
}

// AshrConst shifts right arithmetically by k.
func (m *Module) AshrConst(a Bus, k int) Bus {
	sign := a[len(a)-1]
	out := make(Bus, len(a))
	for i := range out {
		if i+k < len(a) {
			out[i] = a[i+k]
		} else {
			out[i] = sign
		}
	}
	return out
}

// --- variable shifts (barrel shifter) ---

// ShlVar shifts a left by the unsigned amount sh. Out-of-range amounts
// yield zero.
func (m *Module) ShlVar(a, sh Bus) Bus {
	cur := a
	for i, bit := range sh {
		k := 1 << uint(i)
		if k >= len(a)*2 { // further stages can only produce zero or identity
			k = len(a) * 2
		}
		shifted := m.ShlConst(cur, min(k, len(a)))
		cur = m.Mux(bit, shifted, cur)
	}
	return cur
}

// ShrVar shifts a right logically by the unsigned amount sh.
func (m *Module) ShrVar(a, sh Bus) Bus {
	cur := a
	for i, bit := range sh {
		k := min(1<<uint(i), len(a))
		shifted := m.ShrConst(cur, k)
		cur = m.Mux(bit, shifted, cur)
	}
	return cur
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
