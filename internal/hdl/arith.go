package hdl

import (
	"fmt"

	"pytfhe/internal/circuit"
)

// halfAdder returns (sum, carry) of two wires.
func (m *Module) halfAdder(a, b circuit.NodeID) (sum, carry circuit.NodeID) {
	return m.B.Xor(a, b), m.B.And(a, b)
}

// fullAdder returns (sum, carry) of three wires.
func (m *Module) fullAdder(a, b, cin circuit.NodeID) (sum, carry circuit.NodeID) {
	axb := m.B.Xor(a, b)
	sum = m.B.Xor(axb, cin)
	carry = m.B.Or(m.B.And(a, b), m.B.And(axb, cin))
	return sum, carry
}

// AddCarry computes a + b + cin over equal-width buses, returning the
// width-bit sum and the carry out (ripple-carry).
func (m *Module) AddCarry(a, b Bus, cin circuit.NodeID) (Bus, circuit.NodeID) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdl: add width mismatch %d vs %d", len(a), len(b)))
	}
	out := make(Bus, len(a))
	c := cin
	for i := range a {
		out[i], c = m.fullAdder(a[i], b[i], c)
	}
	return out, c
}

// Add computes a + b modulo 2^w for equal-width buses.
func (m *Module) Add(a, b Bus) Bus {
	out, _ := m.AddCarry(a, b, m.B.Const(false))
	return out
}

// AddExpand computes a + b exactly, widening by one bit.
func (m *Module) AddExpand(a, b Bus) Bus {
	w := max(len(a), len(b)) + 1
	out, _ := m.AddCarry(m.ZeroExtend(a, w), m.ZeroExtend(b, w), m.B.Const(false))
	return out
}

// AddExpandSigned computes a + b exactly for signed operands, widening by
// one bit.
func (m *Module) AddExpandSigned(a, b Bus) Bus {
	w := max(len(a), len(b)) + 1
	out, _ := m.AddCarry(m.SignExtend(a, w), m.SignExtend(b, w), m.B.Const(false))
	return out
}

// Sub computes a - b modulo 2^w via a + ~b + 1.
func (m *Module) Sub(a, b Bus) Bus {
	out, _ := m.SubBorrow(a, b)
	return out
}

// SubBorrow computes a - b, additionally returning the NOT-borrow (carry
// out): high when a >= b for unsigned operands.
func (m *Module) SubBorrow(a, b Bus) (Bus, circuit.NodeID) {
	if len(a) != len(b) {
		panic(fmt.Sprintf("hdl: sub width mismatch %d vs %d", len(a), len(b)))
	}
	return m.AddCarry(a, m.Not(b), m.B.Const(true))
}

// Neg computes -a in two's complement.
func (m *Module) Neg(a Bus) Bus {
	zero := m.ConstBus(0, len(a))
	return m.Sub(zero, a)
}

// Inc computes a + 1.
func (m *Module) Inc(a Bus) Bus {
	one := m.ConstBus(1, len(a))
	return m.Add(a, one)
}

// --- comparisons ---

// Eq returns a == b.
func (m *Module) Eq(a, b Bus) circuit.NodeID {
	return m.AndReduce(m.Xnor(a, b))
}

// Xnor returns the bitwise XNOR.
func (m *Module) Xnor(a, b Bus) Bus {
	x := m.Xor(a, b)
	return m.Not(x)
}

// Ne returns a != b.
func (m *Module) Ne(a, b Bus) circuit.NodeID {
	return m.OrReduce(m.Xor(a, b))
}

// LtU returns a < b for unsigned operands (borrow of a - b).
func (m *Module) LtU(a, b Bus) circuit.NodeID {
	_, noBorrow := m.SubBorrow(a, b)
	return m.B.Not(noBorrow)
}

// GeU returns a >= b unsigned.
func (m *Module) GeU(a, b Bus) circuit.NodeID {
	_, noBorrow := m.SubBorrow(a, b)
	return noBorrow
}

// LeU returns a <= b unsigned.
func (m *Module) LeU(a, b Bus) circuit.NodeID { return m.GeU(b, a) }

// GtU returns a > b unsigned.
func (m *Module) GtU(a, b Bus) circuit.NodeID { return m.LtU(b, a) }

// LtS returns a < b for signed operands: flip the sign bits and compare
// unsigned.
func (m *Module) LtS(a, b Bus) circuit.NodeID {
	return m.LtU(m.flipSign(a), m.flipSign(b))
}

// GeS returns a >= b signed.
func (m *Module) GeS(a, b Bus) circuit.NodeID { return m.B.Not(m.LtS(a, b)) }

// LeS returns a <= b signed.
func (m *Module) LeS(a, b Bus) circuit.NodeID { return m.GeS(b, a) }

// GtS returns a > b signed.
func (m *Module) GtS(a, b Bus) circuit.NodeID { return m.LtS(b, a) }

func (m *Module) flipSign(a Bus) Bus {
	out := make(Bus, len(a))
	copy(out, a)
	out[len(a)-1] = m.B.Not(a[len(a)-1])
	return out
}

// MinU returns the unsigned minimum of a and b.
func (m *Module) MinU(a, b Bus) Bus { return m.Mux(m.LtU(a, b), a, b) }

// MaxU returns the unsigned maximum of a and b.
func (m *Module) MaxU(a, b Bus) Bus { return m.Mux(m.LtU(a, b), b, a) }

// MinS returns the signed minimum of a and b.
func (m *Module) MinS(a, b Bus) Bus { return m.Mux(m.LtS(a, b), a, b) }

// MaxS returns the signed maximum of a and b.
func (m *Module) MaxS(a, b Bus) Bus { return m.Mux(m.LtS(a, b), b, a) }

// AbsS returns |a| for a signed bus (keeping the same width; the most
// negative value wraps, as in two's-complement hardware).
func (m *Module) AbsS(a Bus) Bus {
	sign := a[len(a)-1]
	return m.Mux(sign, m.Neg(a), a)
}

// ReluS returns max(a, 0) for a signed bus: mask everything when the sign
// bit is set. This is the one-gate-per-bit ReLU the frontend uses.
func (m *Module) ReluS(a Bus) Bus {
	notSign := m.B.Not(a[len(a)-1])
	return m.AndBit(a, notSign)
}

// --- multiplication ---

// MulU computes the full 2w-bit unsigned product via a shift-add array.
func (m *Module) MulU(a, b Bus) Bus {
	outW := len(a) + len(b)
	acc := m.ConstBus(0, outW)
	for i, bit := range b {
		pp := m.ZeroExtend(m.ShlConstExpand(m.AndBit(a, bit), i), outW)
		acc = m.Add(acc, pp)
	}
	return acc
}

// MulS computes the full-width signed product by sign-extending both
// operands to the output width and multiplying modulo 2^w.
func (m *Module) MulS(a, b Bus) Bus {
	outW := len(a) + len(b)
	ea := m.SignExtend(a, outW)
	eb := m.SignExtend(b, outW)
	return m.MulModular(ea, eb)
}

// MulModular computes a*b mod 2^w for equal-width buses; partial products
// above the width are discarded, so it is cheaper than a full multiplier.
func (m *Module) MulModular(a, b Bus) Bus {
	w := len(a)
	if len(b) != w {
		panic(fmt.Sprintf("hdl: modular mul width mismatch %d vs %d", len(a), len(b)))
	}
	acc := m.ConstBus(0, w)
	for i, bit := range b {
		if i >= w {
			break
		}
		pp := m.ShlConst(m.AndBit(a, bit), i)
		// Bits below i of pp are zero; add only the meaningful span.
		sum, _ := m.AddCarry(acc[i:], pp[i:], m.B.Const(false))
		next := make(Bus, w)
		copy(next, acc[:i])
		copy(next[i:], sum)
		acc = next
	}
	return acc
}

// ShlConstExpand shifts left by k, widening the bus so no bits are lost.
func (m *Module) ShlConstExpand(a Bus, k int) Bus {
	out := make(Bus, len(a)+k)
	for i := 0; i < k; i++ {
		out[i] = m.B.Const(false)
	}
	copy(out[k:], a)
	return out
}

// MulConstS multiplies the signed bus a by the compile-time constant c,
// producing outW bits. The constant is recoded in canonical signed digit
// (CSD) form so each nonzero digit costs one add or subtract of a shifted
// operand — the optimization that lets the frontend fold plaintext weights
// cheaply.
func (m *Module) MulConstS(a Bus, c int64, outW int) Bus {
	if c == 0 {
		return m.ConstBus(0, outW)
	}
	ea := m.SignExtend(a, outW)
	var acc Bus
	neg := false
	if c < 0 {
		c = -c
		neg = true
	}
	// CSD recoding: repeatedly take the lowest set bit; if the low bits
	// look like 0b...0111 (run of ones), replace with +2^(k+run) - 2^k.
	for shift := 0; c != 0; {
		for c&1 == 0 {
			c >>= 1
			shift++
		}
		// Count the run of ones.
		run := 0
		for c>>uint(run)&1 == 1 {
			run++
		}
		term := m.ShlConst(ea, shift)
		if run >= 3 {
			// -2^shift, +2^(shift+run) later.
			if acc == nil {
				acc = m.Neg(term)
			} else {
				acc = m.Sub(acc, term)
			}
			c >>= uint(run)
			c++ // carry into the next digit
			shift += run
		} else {
			if acc == nil {
				acc = term
			} else {
				acc = m.Add(acc, term)
			}
			c >>= 1
			shift++
		}
	}
	if neg {
		acc = m.Neg(acc)
	}
	return acc
}

// --- division ---

// DivU computes the unsigned quotient and remainder by restoring division.
// Division by zero yields quotient all-ones and remainder a (the usual
// hardware convention).
func (m *Module) DivU(a, b Bus) (quot, rem Bus) {
	w := len(a)
	if len(b) != w {
		panic(fmt.Sprintf("hdl: div width mismatch %d vs %d", len(a), len(b)))
	}
	// The working remainder needs w+1 bits: before each step r < b, so the
	// shifted value 2r+1 can reach one bit beyond the divisor width.
	r := m.ConstBus(0, w+1)
	bw := m.ZeroExtend(b, w+1)
	q := make(Bus, w)
	for i := w - 1; i >= 0; i-- {
		// r = (r << 1) | a[i]
		r = append(Bus{a[i]}, r[:w]...)
		diff, noBorrow := m.SubBorrow(r, bw)
		q[i] = noBorrow
		r = m.Mux(noBorrow, diff, r)
	}
	return q, r[:w]
}

// DivS computes the signed quotient (truncating toward zero) and remainder
// with the sign of the dividend.
func (m *Module) DivS(a, b Bus) (quot, rem Bus) {
	sa := a[len(a)-1]
	sb := b[len(b)-1]
	q, r := m.DivU(m.AbsS(a), m.AbsS(b))
	qNeg := m.B.Xor(sa, sb)
	quot = m.Mux(qNeg, m.Neg(q), q)
	rem = m.Mux(sa, m.Neg(r), r)
	return quot, rem
}

// PopCount returns the number of set bits as a minimal-width bus.
func (m *Module) PopCount(a Bus) Bus {
	// Pairwise tree of widening adders.
	groups := make([]Bus, len(a))
	for i, w := range a {
		groups[i] = Bus{w}
	}
	for len(groups) > 1 {
		next := make([]Bus, 0, (len(groups)+1)/2)
		for i := 0; i+1 < len(groups); i += 2 {
			next = append(next, m.AddExpand(groups[i], groups[i+1]))
		}
		if len(groups)%2 == 1 {
			next = append(next, groups[len(groups)-1])
		}
		groups = next
	}
	return groups[0]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
