package hdl

import (
	"math"
	"math/rand"
	"testing"

	"pytfhe/internal/circuit"
)

var bf16 = FloatFormat{Exp: 8, Mant: 8}
var fp16 = FloatFormat{Exp: 5, Mant: 11}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, f := range []FloatFormat{bf16, fp16, {Exp: 4, Mant: 4}} {
		maxVal := (2 - math.Ldexp(1, -f.Mant)) * math.Ldexp(1, f.MaxExp()-f.Bias())
		for _, v := range []float64{0, 1, -1, 0.5, 3.25, -7.75, 100, -1024, 0.0625} {
			got := f.Decode(f.Encode(v))
			if v == 0 {
				if got != 0 {
					t.Fatalf("%v: encode(0) decoded to %g", f, got)
				}
				continue
			}
			if math.Abs(v) >= maxVal {
				// Out-of-range values saturate to the format maximum.
				if math.Abs(got) < maxVal/2 || math.Signbit(got) != math.Signbit(v) {
					t.Fatalf("%v: %g should saturate, decoded to %g", f, v, got)
				}
				continue
			}
			rel := math.Abs(got-v) / math.Abs(v)
			if rel > math.Ldexp(1, -f.Mant+1) {
				t.Fatalf("%v: %g -> %g (rel %g)", f, v, got, rel)
			}
		}
	}
}

func runFloatBinary(t *testing.T, f FloatFormat, build func(m *Module, a, b Bus) Bus) func(x, y float64) float64 {
	t.Helper()
	m := New("fop")
	a := m.InputBus("a", f.Width())
	b := m.InputBus("b", f.Width())
	m.OutputBus("out", build(m, a, b))
	nl := m.MustBuild()
	return func(x, y float64) float64 {
		xa, ya := f.Encode(x), f.Encode(y)
		in := make([]bool, 2*f.Width())
		for i := 0; i < f.Width(); i++ {
			in[i] = xa>>uint(i)&1 == 1
			in[f.Width()+i] = ya>>uint(i)&1 == 1
		}
		out, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		return f.Decode(bitsToUint(out))
	}
}

// checkRel asserts the circuit result is within a truncation-rounding
// tolerance of the exact value.
func checkRel(t *testing.T, f FloatFormat, desc string, got, exact float64) {
	t.Helper()
	minNormal := math.Ldexp(1, 1-f.Bias())
	if exact == 0 {
		// Result may underflow to zero or be a tiny value.
		if math.Abs(got) > minNormal*4 {
			t.Fatalf("%s: got %g, want ~0", desc, got)
		}
		return
	}
	if got == 0 && math.Abs(exact) < minNormal*2 {
		return // underflow flushes to zero by design
	}
	rel := math.Abs(got-exact) / math.Abs(exact)
	// Inputs carry up to 1 ulp of quantization each; the op truncates.
	tol := math.Ldexp(1, -f.Mant+2)
	if rel > tol {
		t.Fatalf("%s: got %g, want %g (rel err %g > %g)", desc, got, exact, rel, tol)
	}
}

func TestFAddBasic(t *testing.T) {
	add := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FAdd(bf16, a, b) })
	cases := [][2]float64{
		{1, 1}, {1, 2}, {0.5, 0.25}, {3, -1}, {-3, 1}, {-2, -2},
		{100, 0.5}, {1, 0}, {0, -7}, {0, 0}, {1, -1}, {2.5, 2.5},
		{1e4, 1}, {1, 1e4}, {0.125, -0.0625},
	}
	for _, c := range cases {
		got := add(c[0], c[1])
		qa := bf16.Decode(bf16.Encode(c[0]))
		qb := bf16.Decode(bf16.Encode(c[1]))
		checkRel(t, bf16, "FAdd", got, qa+qb)
	}
}

func TestFAddRandom(t *testing.T) {
	for _, f := range []FloatFormat{bf16, fp16} {
		add := runFloatBinary(t, f, func(m *Module, a, b Bus) Bus { return m.FAdd(f, a, b) })
		rng := rand.New(rand.NewSource(21))
		for i := 0; i < 300; i++ {
			x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(16)-8)
			y := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(16)-8)
			qx, qy := f.Decode(f.Encode(x)), f.Decode(f.Encode(y))
			got := add(x, y)
			checkRel(t, f, "FAdd", got, qx+qy)
		}
	}
}

func TestFMulRandom(t *testing.T) {
	for _, f := range []FloatFormat{bf16, fp16} {
		mul := runFloatBinary(t, f, func(m *Module, a, b Bus) Bus { return m.FMul(f, a, b) })
		rng := rand.New(rand.NewSource(22))
		for i := 0; i < 300; i++ {
			x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			y := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			qx, qy := f.Decode(f.Encode(x)), f.Decode(f.Encode(y))
			got := mul(x, y)
			checkRel(t, f, "FMul", got, qx*qy)
		}
	}
}

func TestFMulZeroAndSigns(t *testing.T) {
	mul := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FMul(bf16, a, b) })
	if got := mul(0, 5); got != 0 {
		t.Fatalf("0*5 = %g", got)
	}
	if got := mul(-3, 0); got != 0 {
		t.Fatalf("-3*0 = %g", got)
	}
	if got := mul(-2, 3); got != -6 {
		t.Fatalf("-2*3 = %g", got)
	}
	if got := mul(-2, -3); got != 6 {
		t.Fatalf("-2*-3 = %g", got)
	}
}

func TestFCompare(t *testing.T) {
	m := New("fcmp")
	a := m.InputBus("a", bf16.Width())
	b := m.InputBus("b", bf16.Width())
	m.Output("lt", m.FLt(bf16, a, b))
	m.Output("eq", m.FEq(bf16, a, b))
	nl := m.MustBuild()
	eval := func(x, y float64) (bool, bool) {
		xa, ya := bf16.Encode(x), bf16.Encode(y)
		in := make([]bool, 2*bf16.Width())
		for i := 0; i < bf16.Width(); i++ {
			in[i] = xa>>uint(i)&1 == 1
			in[bf16.Width()+i] = ya>>uint(i)&1 == 1
		}
		out, _ := nl.Evaluate(in)
		return out[0], out[1]
	}
	cases := [][2]float64{
		{1, 2}, {2, 1}, {-1, 1}, {1, -1}, {-2, -1}, {-1, -2},
		{0, 1}, {1, 0}, {0, -1}, {-1, 0}, {0, 0}, {3.5, 3.5},
	}
	for _, c := range cases {
		lt, eq := eval(c[0], c[1])
		if lt != (c[0] < c[1]) {
			t.Errorf("FLt(%g,%g) = %v", c[0], c[1], lt)
		}
		if eq != (c[0] == c[1]) {
			t.Errorf("FEq(%g,%g) = %v", c[0], c[1], eq)
		}
	}
	// -0 == +0
	m2 := New("zeros")
	za := m2.ConstBus(bf16.Encode(math.Copysign(0, -1)), bf16.Width())
	zb := m2.FZero(bf16)
	m2.Output("eq", m2.FEq(bf16, za, zb))
	m2.Output("lt", m2.FLt(bf16, za, zb))
	nl2 := m2.MustBuild()
	_ = nl2
}

func TestFNegAbsRelu(t *testing.T) {
	ops := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus {
		_ = b
		return m.Concat(m.FNeg(bf16, a), m.FAbs(bf16, a), m.FRelu(bf16, a))
	})
	for _, v := range []float64{1.5, -2.25, 0, 7, -100} {
		got := ops(v, 0)
		_ = got
	}
	// Simpler: dedicated circuits per op.
	neg := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FNeg(bf16, a) })
	relu := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FRelu(bf16, a) })
	for _, v := range []float64{1.5, -2.25, 7, -100} {
		q := bf16.Decode(bf16.Encode(v))
		if got := neg(v, 0); got != -q {
			t.Fatalf("FNeg(%g) = %g", v, got)
		}
		want := q
		if q < 0 {
			want = 0
		}
		if got := relu(v, 0); got != want {
			t.Fatalf("FRelu(%g) = %g", v, got)
		}
	}
}

func TestFMaxMin(t *testing.T) {
	fmax := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FMax(bf16, a, b) })
	fmin := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FMin(bf16, a, b) })
	cases := [][2]float64{{1, 2}, {-1, -3}, {0, 5}, {-2, 2}, {4, 4}}
	for _, c := range cases {
		qa, qb := bf16.Decode(bf16.Encode(c[0])), bf16.Decode(bf16.Encode(c[1]))
		if got := fmax(c[0], c[1]); got != math.Max(qa, qb) {
			t.Fatalf("FMax(%g,%g) = %g", c[0], c[1], got)
		}
		if got := fmin(c[0], c[1]); got != math.Min(qa, qb) {
			t.Fatalf("FMin(%g,%g) = %g", c[0], c[1], got)
		}
	}
}

func TestFAddOverflowSaturates(t *testing.T) {
	f := FloatFormat{Exp: 4, Mant: 4}
	add := runFloatBinary(t, f, func(m *Module, a, b Bus) Bus { return m.FAdd(f, a, b) })
	big := f.Decode(f.Encode(200))
	got := add(200, 200)
	if got < big {
		t.Fatalf("saturating add went down: %g + %g -> %g", big, big, got)
	}
}

func TestFloatFormatProperties(t *testing.T) {
	if bf16.Width() != 17 { // 1+8+8: our Float(8,8) is 17 bits, documented
		t.Fatalf("Float(8,8) width = %d", bf16.Width())
	}
	if fp16.Bias() != 15 {
		t.Fatalf("Float(5,11) bias = %d", fp16.Bias())
	}
}

var _ = circuit.NodeID(0)

func TestFRecip(t *testing.T) {
	for _, f := range []FloatFormat{bf16, fp16} {
		recip := runFloatBinary(t, f, func(m *Module, a, b Bus) Bus { return m.FRecip(f, a) })
		for _, v := range []float64{1, 2, 0.5, 3, -4, 1.5, -0.75, 100, 0.01, 7.3, -1} {
			q := f.Decode(f.Encode(v))
			got := recip(v, 0)
			checkRel(t, f, "FRecip", got, 1/q)
		}
	}
}

func TestFRecipOfZeroSaturates(t *testing.T) {
	recip := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FRecip(bf16, a) })
	got := recip(0, 0)
	if got < 1e30 {
		t.Fatalf("1/0 = %g, want saturation to the format max", got)
	}
}

func TestFDivRandom(t *testing.T) {
	for _, f := range []FloatFormat{bf16, fp16} {
		div := runFloatBinary(t, f, func(m *Module, a, b Bus) Bus { return m.FDiv(f, a, b) })
		rng := rand.New(rand.NewSource(33))
		for i := 0; i < 200; i++ {
			x := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			y := (rng.Float64() - 0.5) * math.Ldexp(1, rng.Intn(12)-6)
			if math.Abs(y) < 1e-3 {
				continue
			}
			qx, qy := f.Decode(f.Encode(x)), f.Decode(f.Encode(y))
			got := div(x, y)
			// Division compounds two roundings (recip + mul) on top of the
			// input quantization.
			exact := qx / qy
			if exact == 0 {
				continue
			}
			rel := math.Abs(got-exact) / math.Abs(exact)
			if got == 0 && math.Abs(exact) < math.Ldexp(1, 3-f.Bias()) {
				continue // underflow flush
			}
			if rel > math.Ldexp(1, -f.Mant+3) {
				t.Fatalf("%v: %g / %g = %g, want %g (rel %g)", f, x, y, got, exact, rel)
			}
		}
	}
}

func TestFDivSigns(t *testing.T) {
	div := runFloatBinary(t, bf16, func(m *Module, a, b Bus) Bus { return m.FDiv(bf16, a, b) })
	cases := [][3]float64{{6, 2, 3}, {-6, 2, -3}, {6, -2, -3}, {-6, -2, 3}, {0, 5, 0}}
	for _, c := range cases {
		if got := div(c[0], c[1]); math.Abs(got-c[2]) > 0.05 {
			t.Fatalf("%g / %g = %g, want %g", c[0], c[1], got, c[2])
		}
	}
}
