package hdl

import (
	"fmt"

	"pytfhe/internal/circuit"
)

// Parallel-prefix (Kogge-Stone) addition. The ripple adder of arith.go
// minimizes gate count but has O(w) bootstrapped depth; in the wavefront
// backends depth is wall-clock, so latency-critical circuits trade gates
// for logarithmic depth. BenchmarkAblationAdderDepth quantifies the trade:
// w-bit ripple ≈ 5w gates at depth ≈ 2w; Kogge-Stone ≈ 2w + 3w·log2(w)
// gates at depth ≈ log2(w)+2.

// AddCLACarry computes a + b + cin with a Kogge-Stone carry tree,
// returning the w-bit sum and carry out.
func (m *Module) AddCLACarry(a, b Bus, cin circuit.NodeID) (Bus, circuit.NodeID) {
	w := len(a)
	if len(b) != w {
		panic(fmt.Sprintf("hdl: add width mismatch %d vs %d", len(a), len(b)))
	}
	if w == 0 {
		return nil, cin
	}
	// Generate/propagate per bit position.
	gen := make([]circuit.NodeID, w)
	prop := make([]circuit.NodeID, w)
	for i := 0; i < w; i++ {
		gen[i] = m.B.And(a[i], b[i])
		prop[i] = m.B.Xor(a[i], b[i])
	}
	// Fold the carry-in into position 0: g0' = g0 | (p0 & cin).
	gen[0] = m.B.Or(gen[0], m.B.And(prop[0], cin))

	// Kogge-Stone prefix tree over (g, p):
	// (g, p) ∘ (g', p') = (g | (p & g'), p & p').
	g := append([]circuit.NodeID(nil), gen...)
	p := append([]circuit.NodeID(nil), prop...)
	for dist := 1; dist < w; dist <<= 1 {
		ng := append([]circuit.NodeID(nil), g...)
		np := append([]circuit.NodeID(nil), p...)
		for i := dist; i < w; i++ {
			ng[i] = m.B.Or(g[i], m.B.And(p[i], g[i-dist]))
			np[i] = m.B.And(p[i], p[i-dist])
		}
		g, p = ng, np
	}

	// g[i] is now the carry OUT of position i; sum_i = prop_i ^ carry_in_i.
	sum := make(Bus, w)
	sum[0] = m.B.Xor(prop[0], cin)
	for i := 1; i < w; i++ {
		sum[i] = m.B.Xor(prop[i], g[i-1])
	}
	return sum, g[w-1]
}

// AddCLA computes a + b (mod 2^w) with logarithmic depth.
func (m *Module) AddCLA(a, b Bus) Bus {
	s, _ := m.AddCLACarry(a, b, m.B.Const(false))
	return s
}

// SubCLA computes a - b with logarithmic depth.
func (m *Module) SubCLA(a, b Bus) Bus {
	s, _ := m.AddCLACarry(a, m.Not(b), m.B.Const(true))
	return s
}
