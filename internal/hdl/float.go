package hdl

import (
	"fmt"
	"math"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// FloatFormat describes a parameterizable floating-point type with Exp
// exponent bits and Mant mantissa bits (plus an implicit sign bit), the
// Float(e,m) data type of ChiselTorch. Float(5,11) is a half-precision
// float; Float(8,8) is bfloat16-like.
//
// Semantics are IEEE-754-like with simplifications appropriate for
// gate-count-sensitive FHE hardware (and documented in DESIGN.md):
// subnormals flush to zero, rounding is truncation (round toward zero),
// and there are no NaN/Inf encodings — the exponent saturates.
type FloatFormat struct {
	Exp  int
	Mant int
}

// Width returns the total bit width: 1 + Exp + Mant.
func (f FloatFormat) Width() int { return 1 + f.Exp + f.Mant }

// Bias returns the exponent bias 2^(Exp-1) - 1.
func (f FloatFormat) Bias() int { return 1<<(f.Exp-1) - 1 }

// MaxExp returns the largest (saturating) biased exponent.
func (f FloatFormat) MaxExp() int { return 1<<f.Exp - 1 }

func (f FloatFormat) String() string { return fmt.Sprintf("Float(%d,%d)", f.Exp, f.Mant) }

// Encode converts a Go float64 into the format's bit pattern (software
// reference used to bake constants into circuits and by tests).
func (f FloatFormat) Encode(v float64) uint64 {
	var sign uint64
	if math.Signbit(v) {
		sign = 1
		v = -v
	}
	if v == 0 || math.IsNaN(v) {
		return sign << uint(f.Exp+f.Mant)
	}
	frac, exp2 := math.Frexp(v) // v = frac * 2^exp2, frac in [0.5, 1)
	// Normalize to 1.xxx * 2^(exp2-1).
	e := exp2 - 1 + f.Bias()
	if e <= 0 {
		return sign << uint(f.Exp+f.Mant) // flush to zero
	}
	if e >= f.MaxExp() {
		e = f.MaxExp()
		return sign<<uint(f.Exp+f.Mant) | uint64(e)<<uint(f.Mant) | (1<<uint(f.Mant) - 1)
	}
	mant := uint64((frac*2 - 1) * float64(uint64(1)<<uint(f.Mant))) // truncate
	if mant >= 1<<uint(f.Mant) {
		mant = 1<<uint(f.Mant) - 1
	}
	return sign<<uint(f.Exp+f.Mant) | uint64(e)<<uint(f.Mant) | mant
}

// Decode converts a bit pattern back to float64.
func (f FloatFormat) Decode(bits uint64) float64 {
	mant := bits & (1<<uint(f.Mant) - 1)
	e := int(bits >> uint(f.Mant) & (1<<uint(f.Exp) - 1))
	sign := bits>>uint(f.Exp+f.Mant)&1 == 1
	if e == 0 {
		if sign {
			return math.Copysign(0, -1)
		}
		return 0
	}
	v := (1 + float64(mant)/float64(uint64(1)<<uint(f.Mant))) * math.Ldexp(1, e-f.Bias())
	if sign {
		return -v
	}
	return v
}

// floatParts is the unpacked representation used inside the units.
type floatParts struct {
	sign circuit.NodeID
	exp  Bus // Exp bits, biased
	mant Bus // Mant+1 bits including the hidden leading one (zero when exp==0)
}

func (m *Module) funpack(f FloatFormat, a Bus) floatParts {
	if len(a) != f.Width() {
		panic(fmt.Sprintf("hdl: %v operand has width %d", f, len(a)))
	}
	exp := a[f.Mant : f.Mant+f.Exp]
	nonzero := m.OrReduce(exp) // exp == 0 means the value is zero
	mant := make(Bus, f.Mant+1)
	copy(mant, a[:f.Mant])
	mant[f.Mant] = nonzero // hidden bit
	// A zero value must have a zero mantissa so arithmetic treats it as 0.
	mant = m.AndBit(mant, nonzero)
	return floatParts{sign: a[f.Width()-1], exp: exp, mant: mant}
}

func (m *Module) fpack(f FloatFormat, sign circuit.NodeID, exp Bus, mant Bus) Bus {
	out := make(Bus, 0, f.Width())
	out = append(out, mant[:f.Mant]...)
	out = append(out, exp[:f.Exp]...)
	out = append(out, sign)
	return out
}

// FZero returns the positive-zero constant.
func (m *Module) FZero(f FloatFormat) Bus { return m.ConstBus(0, f.Width()) }

// FConst returns the format's encoding of the compile-time constant v.
func (m *Module) FConst(f FloatFormat, v float64) Bus {
	return m.ConstBus(f.Encode(v), f.Width())
}

// FNeg flips the sign bit.
func (m *Module) FNeg(f FloatFormat, a Bus) Bus {
	out := make(Bus, len(a))
	copy(out, a)
	out[f.Width()-1] = m.B.Not(a[f.Width()-1])
	return out
}

// FAbs clears the sign bit.
func (m *Module) FAbs(f FloatFormat, a Bus) Bus {
	out := make(Bus, len(a))
	copy(out, a)
	out[f.Width()-1] = m.Lit(false)
	return out
}

// FIsZero returns high when a encodes zero (exponent all zeros).
func (m *Module) FIsZero(f FloatFormat, a Bus) circuit.NodeID {
	return m.IsZero(a[f.Mant : f.Mant+f.Exp])
}

// FRelu returns a when a > 0, else +0: zero out everything when the sign
// bit is set.
func (m *Module) FRelu(f FloatFormat, a Bus) Bus {
	pos := m.B.Not(a[f.Width()-1])
	return m.AndBit(a, pos)
}

// FLt returns a < b. Sign-magnitude comparison: compare (exp,mant) as an
// unsigned integer, then fix up signs; equal-zero values compare equal
// regardless of sign.
func (m *Module) FLt(f FloatFormat, a, b Bus) circuit.NodeID {
	magA := a[:f.Width()-1] // exp|mant as unsigned magnitude
	magB := b[:f.Width()-1]
	sa, sb := a[f.Width()-1], b[f.Width()-1]
	ltMag := m.LtU(magA, magB)
	gtMag := m.LtU(magB, magA)
	bothZero := m.B.And(m.IsZero(magA), m.IsZero(magB))
	// a<b cases: sa=1,sb=0 and not both zero; same signs: positive -> ltMag,
	// negative -> gtMag.
	negA := m.B.Gate(logic.ANDYN, sa, sb) // sa AND NOT sb
	sameSignPos := m.B.Nor(sa, sb)
	sameSignNeg := m.B.And(sa, sb)
	lt := m.B.Or(
		m.B.And(sameSignPos, ltMag),
		m.B.And(sameSignNeg, gtMag),
	)
	lt = m.B.Or(lt, negA)
	return m.B.Gate(logic.ANDYN, lt, bothZero) // lt AND NOT bothZero
}

// FMax returns the larger operand.
func (m *Module) FMax(f FloatFormat, a, b Bus) Bus {
	return m.Mux(m.FLt(f, a, b), b, a)
}

// FMin returns the smaller operand.
func (m *Module) FMin(f FloatFormat, a, b Bus) Bus {
	return m.Mux(m.FLt(f, a, b), a, b)
}

// FEq returns a == b (with +0 == -0).
func (m *Module) FEq(f FloatFormat, a, b Bus) circuit.NodeID {
	bitEq := m.Eq(a, b)
	bothZero := m.B.And(m.FIsZero(f, a), m.FIsZero(f, b))
	return m.B.Or(bitEq, bothZero)
}

// FAdd computes a + b. Alignment uses one guard plus one sticky bit;
// results round toward zero; overflow saturates; underflow flushes to zero.
func (m *Module) FAdd(f FloatFormat, a, b Bus) Bus {
	pa := m.funpack(f, a)
	pb := m.funpack(f, b)

	// Order operands so x has the larger magnitude (exp|mant).
	magA := a[:f.Width()-1]
	magB := b[:f.Width()-1]
	aSmaller := m.LtU(magA, magB)
	xSign := m.B.Mux(aSmaller, pb.sign, pa.sign)
	ySign := m.B.Mux(aSmaller, pa.sign, pb.sign)
	xExp := m.Mux(aSmaller, pb.exp, pa.exp)
	yExp := m.Mux(aSmaller, pa.exp, pb.exp)
	xMant := m.Mux(aSmaller, pb.mant, pa.mant)
	yMant := m.Mux(aSmaller, pa.mant, pb.mant)

	// Align the smaller mantissa: shift right by the exponent difference.
	// Work with two extra low-order bits (guard + sticky approximation).
	const g = 2
	diff := m.Sub(xExp, yExp) // >= 0 by construction
	xm := m.ShlConstExpand(xMant, g)
	ym := m.ShlConstExpand(yMant, g)
	// Clamp the shift: anything >= Mant+1+g zeroes the operand anyway.
	ym = m.ShrVar(ym, diff)

	// Effective operation: same signs add, different signs subtract.
	subOp := m.B.Xor(xSign, ySign)
	w := len(xm) + 1
	xw := m.ZeroExtend(xm, w)
	yw := m.ZeroExtend(ym, w)
	sum := m.Add(xw, yw)
	dif := m.Sub(xw, yw)          // non-negative: |x| >= |y|
	mag := m.Mux(subOp, dif, sum) // w = Mant+1+g+1 bits

	// Normalize: find the leading one. The result of the add path can
	// carry one position above the hidden bit; the subtract path can
	// cancel down to zero.
	// The working exponent needs to represent values down to
	// xExp+1-(Mant+3), so widen beyond Exp+2 for very wide mantissas.
	expW := f.Exp + 2
	for 1<<(expW-1) < len(mag)+1 {
		expW++
	}
	norm, normExpAdj, isZero := m.normalizeFloat(f, mag, expW)
	// Exponent: xExp + 1 - shiftBack where normExpAdj = (leading index
	// adjustment). normExpAdj is signed relative to the hidden-bit slot.
	e := m.ZeroExtend(xExp, expW)
	e = m.Add(e, m.ConstBusSigned(int64(1), expW)) // account for carry slot
	e = m.Sub(e, normExpAdj)

	// Underflow (e <= 0) flushes to zero; overflow saturates.
	zeroOut := m.B.Or(isZero, m.LeS(e, m.ConstBus(0, expW)))
	maxE := m.ConstBus(uint64(f.MaxExp()), expW)
	overflow := m.GeS(e, maxE)
	packedExp := m.Mux(overflow, m.ConstBus(uint64(f.MaxExp()), f.Exp), m.Truncate(e, f.Exp))
	packedMant := m.Mux(overflow, m.ConstBus(1<<uint(f.Mant)-1, f.Mant), norm)

	// Result sign: the larger-magnitude operand's sign. For exact
	// cancellation the result is +0 via zeroOut.
	res := m.fpack(f, xSign, packedExp, packedMant)
	zero := m.FZero(f)
	return m.Mux(zeroOut, zero, res)
}

// normalizeFloat locates the leading one of mag (width Mant+1+g+1, with the
// hidden-bit slot at index Mant+g) and returns the normalized Mant-bit
// mantissa field, the exponent adjustment (w-1 minus the leading index,
// expW bits wide), and an is-zero flag.
func (m *Module) normalizeFloat(f FloatFormat, mag Bus, expW int) (Bus, Bus, circuit.NodeID) {
	w := len(mag)
	// Priority select: for each possible leading position p (from MSB down),
	// shifted mantissa and adjustment. Build with a cascading mux.
	isZero := m.IsZero(mag)
	resMant := m.ConstBus(0, f.Mant)
	resAdj := m.ConstBus(0, expW)
	// Iterate from LSB to MSB so the highest set bit wins the final mux.
	for p := 0; p < w; p++ {
		// If bit p is the leading one: mantissa = bits below p left-aligned
		// into Mant bits (truncating), exponent adjustment = (w-1) - p.
		sh := make(Bus, f.Mant)
		for i := 0; i < f.Mant; i++ {
			src := p - f.Mant + i
			if src >= 0 && src < w {
				sh[i] = mag[src]
			} else {
				sh[i] = m.Lit(false)
			}
		}
		adj := m.ConstBus(uint64(w-1-p), expW)
		resMant = m.Mux(mag[p], sh, resMant)
		resAdj = m.Mux(mag[p], adj, resAdj)
	}
	return resMant, resAdj, isZero
}

// FMul computes a * b with truncation rounding.
func (m *Module) FMul(f FloatFormat, a, b Bus) Bus {
	pa := m.funpack(f, a)
	pb := m.funpack(f, b)
	sign := m.B.Xor(pa.sign, pb.sign)

	// Product of (Mant+1)-bit mantissas: 2*Mant+2 bits with the leading one
	// at position 2*Mant or 2*Mant+1.
	prod := m.MulU(pa.mant, pb.mant)
	top := prod[len(prod)-1]
	// Normalized mantissa: take Mant bits below the leading one.
	mantHi := m.Slice(prod, f.Mant+1, 2*f.Mant+1) // leading at 2M+1
	mantLo := m.Slice(prod, f.Mant, 2*f.Mant)     // leading at 2M
	mant := m.Mux(top, mantHi, mantLo)

	// Exponent: ea + eb - bias (+1 if the product carried).
	expW := f.Exp + 2
	e := m.Add(m.ZeroExtend(pa.exp, expW), m.ZeroExtend(pb.exp, expW))
	e = m.Sub(e, m.ConstBus(uint64(f.Bias()), expW))
	carry := m.ZeroExtend(Bus{top}, expW)
	e = m.Add(e, carry)

	zeroIn := m.B.Or(m.FIsZero(f, a), m.FIsZero(f, b))
	underflow := m.LeS(e, m.ConstBus(0, expW))
	zeroOut := m.B.Or(zeroIn, underflow)
	maxE := m.ConstBus(uint64(f.MaxExp()), expW)
	overflow := m.GeS(e, maxE)
	packedExp := m.Mux(overflow, m.ConstBus(uint64(f.MaxExp()), f.Exp), m.Truncate(e, f.Exp))
	packedMant := m.Mux(overflow, m.ConstBus(1<<uint(f.Mant)-1, f.Mant), mant)

	res := m.fpack(f, sign, packedExp, packedMant)
	return m.Mux(zeroOut, m.FZero(f), res)
}
