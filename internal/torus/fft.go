package torus

import (
	"math"
	"sync"
	"sync/atomic"
)

// FourierPoly is a polynomial evaluated at the N odd 2N-th roots of unity
// ψ^(1-2k) with ψ = e^{iπ/N}. Because X^N = -1 at every such point,
// pointwise multiplication of Fourier polynomials corresponds to negacyclic
// multiplication in the coefficient domain. The real and imaginary parts are
// kept in separate slices so the butterfly loops stay allocation- and
// interface-free.
type FourierPoly struct {
	Re, Im []float64
}

// NewFourierPoly returns a zero Fourier polynomial for ring degree n.
func NewFourierPoly(n int) *FourierPoly {
	return &FourierPoly{Re: make([]float64, n), Im: make([]float64, n)}
}

// Clear zeroes the Fourier polynomial.
func (f *FourierPoly) Clear() {
	for i := range f.Re {
		f.Re[i] = 0
		f.Im[i] = 0
	}
}

// Copy copies src into f.
func (f *FourierPoly) Copy(src *FourierPoly) {
	copy(f.Re, src.Re)
	copy(f.Im, src.Im)
}

// MulAccTo accumulates f += a*b pointwise. This is the inner loop of the
// TGSW external product performed in the Fourier domain.
func (f *FourierPoly) MulAccTo(a, b *FourierPoly) {
	fr, fi := f.Re, f.Im
	ar, ai := a.Re, a.Im
	br, bi := b.Re, b.Im
	for k := range fr {
		fr[k] += ar[k]*br[k] - ai[k]*bi[k]
		fi[k] += ar[k]*bi[k] + ai[k]*br[k]
	}
}

// Processor owns the precomputed twiddle factors for one ring degree N and
// the scratch buffers for transforms. A Processor is not safe for concurrent
// use; obtain one per goroutine with NewProcessor (tables are shared and
// immutable, scratch is per-Processor).
type Processor struct {
	n      int
	tab    *fftTables
	half   *halfTables // lazily built (see half.go)
	scReRe []float64   // scratch real part
	scIm   []float64   // scratch imaginary part
}

// fftTables holds the immutable per-N precomputed data shared by all
// Processors of that size.
type fftTables struct {
	n       int
	rev     []int     // bit-reversal permutation
	wRe     []float64 // stage twiddles, forward direction, length n/2
	wIm     []float64
	twistRe []float64 // e^{iπj/N}
	twistIm []float64
}

// The twiddle-table cache is an immutable map snapshot behind an atomic
// pointer: lookups after the first construction of a size are a single
// atomic load with no locking (NewProcessor is called once per worker per
// run, often from many goroutines at once). Inserting a new size copies the
// snapshot under tableMu and publishes the extended map.
var (
	tableMu    sync.Mutex
	tableCache atomic.Pointer[map[int]*fftTables]
)

func tablesFor(n int) *fftTables {
	if m := tableCache.Load(); m != nil {
		if t, ok := (*m)[n]; ok {
			return t
		}
	}
	tableMu.Lock()
	defer tableMu.Unlock()
	old := tableCache.Load()
	if old != nil {
		if t, ok := (*old)[n]; ok {
			return t
		}
	}
	t := newTables(n)
	next := make(map[int]*fftTables, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[n] = t
	tableCache.Store(&next)
	return t
}

func newTables(n int) *fftTables {
	if n <= 0 || n&(n-1) != 0 {
		panic("torus: FFT size must be a positive power of two")
	}
	t := &fftTables{n: n}
	t.rev = make([]int, n)
	logn := 0
	for 1<<logn < n {
		logn++
	}
	for i := 0; i < n; i++ {
		r := 0
		for b := 0; b < logn; b++ {
			if i&(1<<b) != 0 {
				r |= 1 << (logn - 1 - b)
			}
		}
		t.rev[i] = r
	}
	t.wRe = make([]float64, n/2)
	t.wIm = make([]float64, n/2)
	for j := 0; j < n/2; j++ {
		// Forward transform uses e^{-2πij/n}.
		ang := -2 * math.Pi * float64(j) / float64(n)
		t.wRe[j] = math.Cos(ang)
		t.wIm[j] = math.Sin(ang)
	}
	t.twistRe = make([]float64, n)
	t.twistIm = make([]float64, n)
	for j := 0; j < n; j++ {
		ang := math.Pi * float64(j) / float64(n)
		t.twistRe[j] = math.Cos(ang)
		t.twistIm[j] = math.Sin(ang)
	}
	return t
}

// NewProcessor returns a transform processor for ring degree n (a power of
// two). Twiddle tables are computed once per size and shared.
func NewProcessor(n int) *Processor {
	return &Processor{
		n:      n,
		tab:    tablesFor(n),
		scReRe: make([]float64, n),
		scIm:   make([]float64, n),
	}
}

// N returns the ring degree the processor was built for.
func (p *Processor) N() int { return p.n }

// fft performs an in-place forward FFT (ω = e^{-2πi/n}) on re/im.
func (t *fftTables) fft(re, im []float64) {
	n := t.n
	for i, r := range t.rev {
		if i < r {
			re[i], re[r] = re[r], re[i]
			im[i], im[r] = im[r], im[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				wr := t.wRe[tw]
				wi := t.wIm[tw]
				tw += step
				j := k + half
				xr := re[j]*wr - im[j]*wi
				xi := re[j]*wi + im[j]*wr
				re[j] = re[k] - xr
				im[j] = im[k] - xi
				re[k] += xr
				im[k] += xi
			}
		}
	}
}

// ifft performs an in-place inverse FFT without the 1/n scaling (the caller
// folds the scaling into the untwist step).
func (t *fftTables) ifft(re, im []float64) {
	// Inverse transform = conjugate, forward, conjugate.
	for i := range im {
		im[i] = -im[i]
	}
	t.fft(re, im)
	for i := range im {
		im[i] = -im[i]
	}
}

// IntToFourier transforms an integer polynomial into the Fourier domain.
func (p *Processor) IntToFourier(dst *FourierPoly, src *IntPoly) {
	tw := p.tab
	for j, c := range src.Coefs {
		v := float64(c)
		dst.Re[j] = v * tw.twistRe[j]
		dst.Im[j] = v * tw.twistIm[j]
	}
	tw.fft(dst.Re, dst.Im)
}

// TorusToFourier transforms a torus polynomial into the Fourier domain.
// Torus coefficients are interpreted as signed integers, which represents
// the same residue class modulo 2^32.
func (p *Processor) TorusToFourier(dst *FourierPoly, src *TorusPoly) {
	tw := p.tab
	for j, c := range src.Coefs {
		v := float64(int32(c))
		dst.Re[j] = v * tw.twistRe[j]
		dst.Im[j] = v * tw.twistIm[j]
	}
	tw.fft(dst.Re, dst.Im)
}

// FourierToTorus performs the inverse transform, rounding each coefficient
// to the nearest torus element. dst is overwritten.
func (p *Processor) FourierToTorus(dst *TorusPoly, src *FourierPoly) {
	tw := p.tab
	re, im := p.scReRe, p.scIm
	copy(re, src.Re)
	copy(im, src.Im)
	tw.ifft(re, im)
	inv := 1 / float64(p.n)
	for j := range dst.Coefs {
		// Untwist: multiply by conj(twist_j), keep the real part.
		r := (re[j]*tw.twistRe[j] + im[j]*tw.twistIm[j]) * inv
		dst.Coefs[j] = roundTorus(r)
	}
}

// AddFourierToTorus performs the inverse transform and adds the result to
// dst coefficient-wise.
func (p *Processor) AddFourierToTorus(dst *TorusPoly, src *FourierPoly) {
	tw := p.tab
	re, im := p.scReRe, p.scIm
	copy(re, src.Re)
	copy(im, src.Im)
	tw.ifft(re, im)
	inv := 1 / float64(p.n)
	for j := range dst.Coefs {
		r := (re[j]*tw.twistRe[j] + im[j]*tw.twistIm[j]) * inv
		dst.Coefs[j] += roundTorus(r)
	}
}

// roundTorus rounds a real value to the nearest 32-bit torus element,
// wrapping modulo 2^32. The magnitudes produced by TFHE kernels stay well
// below 2^52 so the float64 mantissa is never exhausted.
func roundTorus(r float64) Torus32 {
	return Torus32(int64(math.Round(r)))
}

// MulFFT computes result = a*b in T[X]/(X^N+1) using the FFT path. It is a
// convenience wrapper used by tests and small callers; the bootstrapping
// inner loops drive the Processor primitives directly to amortize
// transforms.
func (p *Processor) MulFFT(result *TorusPoly, a *IntPoly, b *TorusPoly) {
	fa := NewFourierPoly(p.n)
	fb := NewFourierPoly(p.n)
	fc := NewFourierPoly(p.n)
	p.IntToFourier(fa, a)
	p.TorusToFourier(fb, b)
	fc.MulAccTo(fa, fb)
	p.FourierToTorus(result, fc)
}
