package torus

import (
	"fmt"
	"testing"
)

// Kernel-hot-path microbenchmarks (run via `make bench-kernel`): forward and
// inverse transforms, single vs pair-packed, at the two ring degrees used by
// the Test and Default128 parameter sets. These pin a baseline for future
// kernel PRs.

func benchPolys(n int) (*IntPoly, *IntPoly, *TorusPoly, *TorusPoly) {
	a := NewIntPoly(n)
	b := NewIntPoly(n)
	ta := NewTorusPoly(n)
	tb := NewTorusPoly(n)
	for i := 0; i < n; i++ {
		a.Coefs[i] = int32((i*37+11)%127) - 63
		b.Coefs[i] = int32((i*53+7)%127) - 63
		ta.Coefs[i] = Torus32(i * 0x9e3779b9)
		tb.Coefs[i] = Torus32(i*0x85ebca6b + 17)
	}
	return a, b, ta, tb
}

func BenchmarkKernelIntToFourier(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			a, _, _, _ := benchPolys(n)
			dst := NewFourierPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.IntToFourier(dst, a)
			}
		})
	}
}

func BenchmarkKernelIntPairToFourier(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			pa, pb, _, _ := benchPolys(n)
			da := NewFourierPoly(n)
			db := NewFourierPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.IntPairToFourier(da, db, pa, pb)
			}
		})
	}
}

func BenchmarkKernelAddFourierToTorus(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			a, _, _, _ := benchPolys(n)
			f := NewFourierPoly(n)
			p.IntToFourier(f, a)
			dst := NewTorusPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.AddFourierToTorus(dst, f)
			}
		})
	}
}

func BenchmarkKernelAddFourierPairToTorus(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			pa, pb, _, _ := benchPolys(n)
			fa := NewFourierPoly(n)
			fb := NewFourierPoly(n)
			p.IntPairToFourier(fa, fb, pa, pb)
			da := NewTorusPoly(n)
			db := NewTorusPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.AddFourierPairToTorus(da, db, fa, fb)
			}
		})
	}
}

func BenchmarkKernelHalfFoldInt(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			a, _, _, _ := benchPolys(n)
			dst := NewHalfPoly(n / 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.HalfFoldInt(dst, a)
			}
		})
	}
}

func BenchmarkKernelAddHalfToTorus(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			a, _, _, _ := benchPolys(n)
			f := NewHalfPoly(n / 2)
			p.HalfFoldInt(f, a)
			dst := NewTorusPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p.AddHalfToTorus(dst, f)
			}
		})
	}
}

func BenchmarkKernelHalfMulAccPair(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			pa, pb, _, _ := benchPolys(n)
			f1 := NewHalfPoly(n / 2)
			f2 := NewHalfPoly(n / 2)
			p.HalfFoldInt(f1, pa)
			p.HalfFoldInt(f2, pb)
			acc := NewHalfPoly(n / 2)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.MulAccPairTo(f1, f2, f2, f1)
			}
		})
	}
}

func BenchmarkKernelMulAccTo(b *testing.B) {
	for _, n := range []int{256, 1024} {
		b.Run(fmt.Sprintf("N%d", n), func(b *testing.B) {
			p := NewProcessor(n)
			pa, pb, _, _ := benchPolys(n)
			fa := NewFourierPoly(n)
			fb := NewFourierPoly(n)
			p.IntPairToFourier(fa, fb, pa, pb)
			acc := NewFourierPoly(n)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				acc.MulAccTo(fa, fb)
			}
		})
	}
}
