package torus

// Pair-packed transforms: because the coefficient-domain polynomials are
// real, two of them fit in one complex FFT. For a real sequence a, the
// twisted spectrum A = FFT(a·twist) satisfies the conjugate symmetry
//
//	A_m = conj(A_{(N+1-m) mod N}),
//
// so packing z = (a + i·b)·twist and transforming once yields
//
//	A_m = (Z_m + conj(Z_{σ(m)})) / 2,   B_m = -i (Z_m - conj(Z_{σ(m)})) / 2
//
// with σ(m) = (N+1-m) mod N. Pointwise products of symmetric spectra stay
// symmetric, so the inverse direction packs two result polynomials into
// one inverse FFT the same way. This halves the FFT count of the external
// product — the hot loop of bootstrapping (see BenchmarkAblationFFTPair).

// IntPairToFourier transforms two integer polynomials with a single
// complex FFT. dstA/dstB receive the spectra of a and b respectively.
func (p *Processor) IntPairToFourier(dstA, dstB *FourierPoly, a, b *IntPoly) {
	tw := p.tab
	re, im := dstA.Re, dstA.Im // use dstA as the packed buffer
	for j := range a.Coefs {
		ar := float64(a.Coefs[j])
		br := float64(b.Coefs[j])
		// (ar + i·br) * twist_j
		re[j] = ar*tw.twistRe[j] - br*tw.twistIm[j]
		im[j] = ar*tw.twistIm[j] + br*tw.twistRe[j]
	}
	tw.fft(re, im)
	p.unpackPair(dstA, dstB)
}

// TorusPairToFourier is IntPairToFourier for torus polynomials
// (coefficients interpreted as signed integers).
func (p *Processor) TorusPairToFourier(dstA, dstB *FourierPoly, a, b *TorusPoly) {
	tw := p.tab
	re, im := dstA.Re, dstA.Im
	for j := range a.Coefs {
		ar := float64(int32(a.Coefs[j]))
		br := float64(int32(b.Coefs[j]))
		re[j] = ar*tw.twistRe[j] - br*tw.twistIm[j]
		im[j] = ar*tw.twistIm[j] + br*tw.twistRe[j]
	}
	tw.fft(re, im)
	p.unpackPair(dstA, dstB)
}

// unpackPair separates the packed spectrum in dstA into the two symmetric
// spectra A and B (in place for A, writing B into dstB).
func (p *Processor) unpackPair(dstA, dstB *FourierPoly) {
	n := p.n
	zr, zi := dstA.Re, dstA.Im
	br, bi := dstB.Re, dstB.Im
	// m = 0 pairs with σ(0) = 1; handle the general loop by splitting the
	// self-inverse structure: process each {m, σ(m)} orbit once.
	for m := 0; m < n; m++ {
		s := (n + 1 - m) % n
		if s < m {
			continue // orbit already processed from the smaller index
		}
		zmr, zmi := zr[m], zi[m]
		zsr, zsi := zr[s], zi[s]
		// A_m = (Z_m + conj(Z_s))/2; B_m = -i (Z_m - conj(Z_s))/2
		amr := (zmr + zsr) / 2
		ami := (zmi - zsi) / 2
		bmr := (zmi + zsi) / 2
		bmi := (zsr - zmr) / 2
		// A_s = conj(A_m); B_s = conj(B_m) by the symmetry.
		zr[m], zi[m] = amr, ami
		br[m], bi[m] = bmr, bmi
		if s != m {
			zr[s], zi[s] = amr, -ami
			br[s], bi[s] = bmr, -bmi
		}
	}
}

// AddFourierPairToTorus inverse-transforms two (conjugate-symmetric)
// spectra with one complex FFT and adds the resulting polynomials to
// dstA and dstB.
func (p *Processor) AddFourierPairToTorus(dstA, dstB *TorusPoly, srcA, srcB *FourierPoly) {
	tw := p.tab
	re, im := p.scReRe, p.scIm
	for k := range re {
		// Z = A + i·B
		re[k] = srcA.Re[k] - srcB.Im[k]
		im[k] = srcA.Im[k] + srcB.Re[k]
	}
	tw.ifft(re, im)
	inv := 1 / float64(p.n)
	for j := range dstA.Coefs {
		// Untwist: z_j * conj(twist_j) / N; real part -> a, imag -> b.
		zr := (re[j]*tw.twistRe[j] + im[j]*tw.twistIm[j]) * inv
		zi := (im[j]*tw.twistRe[j] - re[j]*tw.twistIm[j]) * inv
		dstA.Coefs[j] += roundTorus(zr)
		dstB.Coefs[j] += roundTorus(zi)
	}
}
