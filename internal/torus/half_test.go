package torus

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestHalfMulMatchesNaive drives the half-complex pipeline end to end —
// fold both operands, pointwise multiply, inverse — and requires exact
// agreement with the naive negacyclic convolution, across the ring sizes
// the parameter sets use (including odd and even log2(N/2) so both the
// radix-2-tail and pure-radix-4 FFT shapes are covered).
func TestHalfMulMatchesNaive(t *testing.T) {
	for _, n := range []int{4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048} {
		t.Run(fmt.Sprintf("N%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(n)))
			p := NewProcessor(n)
			a := NewIntPoly(n)
			b := NewTorusPoly(n)
			for i := 0; i < n; i++ {
				a.Coefs[i] = int32(rng.Intn(128)) - 64 // gadget-digit range
				b.Coefs[i] = Torus32(rng.Uint32())
			}
			fa := NewHalfPoly(n / 2)
			fb := NewHalfPoly(n / 2)
			p.HalfFoldInt(fa, a)
			p.HalfFoldTorus(fb, b)
			facc := NewHalfPoly(n / 2)
			facc.MulAccTo(fa, fb)
			got := NewTorusPoly(n)
			p.AddHalfToTorus(got, facc)

			want := NewTorusPoly(n)
			MulNaive(want, a, b)
			for i := 0; i < n; i++ {
				if got.Coefs[i] != want.Coefs[i] {
					t.Fatalf("coef %d: half %#x, naive %#x", i, got.Coefs[i], want.Coefs[i])
				}
			}
		})
	}
}

// TestHalfMatchesFullPath checks that the half path and the full-size FFT
// path round to identical torus results on the same inputs — the exactness
// property the batched bootstrap engine relies on.
func TestHalfMatchesFullPath(t *testing.T) {
	const n = 256
	rng := rand.New(rand.NewSource(7))
	p := NewProcessor(n)
	for trial := 0; trial < 20; trial++ {
		a := NewIntPoly(n)
		b := NewTorusPoly(n)
		for i := 0; i < n; i++ {
			a.Coefs[i] = int32(rng.Intn(128)) - 64
			b.Coefs[i] = Torus32(rng.Uint32())
		}
		full := NewTorusPoly(n)
		p.MulFFT(full, a, b)

		fa := NewHalfPoly(n / 2)
		fb := NewHalfPoly(n / 2)
		p.HalfFoldInt(fa, a)
		p.HalfFoldTorus(fb, b)
		facc := NewHalfPoly(n / 2)
		facc.MulAccTo(fa, fb)
		half := NewTorusPoly(n)
		p.AddHalfToTorus(half, facc)
		for i := 0; i < n; i++ {
			if half.Coefs[i] != full.Coefs[i] {
				t.Fatalf("trial %d coef %d: half %#x, full %#x", trial, i, half.Coefs[i], full.Coefs[i])
			}
		}
	}
}

// TestHalfMulAccPair checks the fused two-product accumulate against two
// separate MulAccTo calls (must be exact: same operation order per point).
func TestHalfMulAccPair(t *testing.T) {
	const n = 64
	rng := rand.New(rand.NewSource(11))
	p := NewProcessor(n)
	mk := func() *HalfPoly {
		a := NewIntPoly(n)
		for i := range a.Coefs {
			a.Coefs[i] = int32(rng.Intn(256)) - 128
		}
		f := NewHalfPoly(n / 2)
		p.HalfFoldInt(f, a)
		return f
	}
	a1, b1, a2, b2 := mk(), mk(), mk(), mk()
	sep := NewHalfPoly(n / 2)
	sep.MulAccTo(a1, b1)
	sep.MulAccTo(a2, b2)
	fused := NewHalfPoly(n / 2)
	fused.MulAccPairTo(a1, b1, a2, b2)
	for k := 0; k < n/2; k++ {
		d1 := sep.Re[k] - fused.Re[k]
		d2 := sep.Im[k] - fused.Im[k]
		if d1 > 1e-6 || d1 < -1e-6 || d2 > 1e-6 || d2 < -1e-6 {
			t.Fatalf("point %d: fused (%g,%g) vs separate (%g,%g)",
				k, fused.Re[k], fused.Im[k], sep.Re[k], sep.Im[k])
		}
	}
}
