package torus

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randIntPoly(rng *rand.Rand, n int, bound int32) *IntPoly {
	p := NewIntPoly(n)
	for i := range p.Coefs {
		p.Coefs[i] = rng.Int31n(2*bound+1) - bound
	}
	return p
}

func randTorusPoly(rng *rand.Rand, n int) *TorusPoly {
	p := NewTorusPoly(n)
	for i := range p.Coefs {
		p.Coefs[i] = rng.Uint32()
	}
	return p
}

func TestModSwitchRoundTrip(t *testing.T) {
	for _, msize := range []int32{2, 4, 8, 16, 1024} {
		for mu := int32(0); mu < msize; mu++ {
			phase := ModSwitchToTorus32(mu, msize)
			got := ModSwitchFromTorus32(phase, msize)
			if got != mu {
				t.Fatalf("ModSwitch round trip failed: msize=%d mu=%d got=%d", msize, mu, got)
			}
		}
	}
}

func TestModSwitchToleratesNoise(t *testing.T) {
	// A phase perturbed by less than half a slot must still decode.
	const msize = 8
	slot := uint32(1) << 29 // 2^32 / 8
	for mu := int32(0); mu < msize; mu++ {
		phase := ModSwitchToTorus32(mu, msize)
		if got := ModSwitchFromTorus32(phase+slot/2-1, msize); got != mu {
			t.Fatalf("mu=%d +noise decoded to %d", mu, got)
		}
		if got := ModSwitchFromTorus32(phase-slot/2+1, msize); got != mu {
			t.Fatalf("mu=%d -noise decoded to %d", mu, got)
		}
	}
}

func TestMulByXaiMinusOneMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const n = 16
	for a := 0; a < 2*n; a++ {
		src := randTorusPoly(rng, n)
		got := NewTorusPoly(n)
		got.MulByXaiMinusOne(a, src)

		// Reference: multiply by the explicit polynomial X^a - 1.
		xa := NewIntPoly(n)
		if a < n {
			xa.Coefs[a] += 1
		} else {
			xa.Coefs[a-n] -= 1
		}
		xa.Coefs[0] -= 1
		want := NewTorusPoly(n)
		MulNaive(want, xa, src)
		for i := range want.Coefs {
			if got.Coefs[i] != want.Coefs[i] {
				t.Fatalf("a=%d coef %d: got %d want %d", a, i, got.Coefs[i], want.Coefs[i])
			}
		}
	}
}

func TestMulByXaiMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 16
	for a := 0; a < 2*n; a++ {
		src := randTorusPoly(rng, n)
		got := NewTorusPoly(n)
		got.MulByXai(a, src)

		xa := NewIntPoly(n)
		if a < n {
			xa.Coefs[a] += 1
		} else {
			xa.Coefs[a-n] -= 1
		}
		want := NewTorusPoly(n)
		MulNaive(want, xa, src)
		for i := range want.Coefs {
			if got.Coefs[i] != want.Coefs[i] {
				t.Fatalf("a=%d coef %d: got %d want %d", a, i, got.Coefs[i], want.Coefs[i])
			}
		}
	}
}

func TestMulByXai2NIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const n = 32
	src := randTorusPoly(rng, n)
	tmp := NewTorusPoly(n)
	got := NewTorusPoly(n)
	tmp.MulByXai(n/2, src)
	got.MulByXai(2*n-n/2, tmp) // X^(2N) = 1
	for i := range src.Coefs {
		if got.Coefs[i] != src.Coefs[i] {
			t.Fatalf("X^2N should be identity, coef %d differs", i)
		}
	}
}

func TestFFTMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range []int{8, 64, 256, 1024} {
		proc := NewProcessor(n)
		for trial := 0; trial < 4; trial++ {
			a := randIntPoly(rng, n, 512) // decomposition-sized coefficients
			b := randTorusPoly(rng, n)
			want := NewTorusPoly(n)
			MulNaive(want, a, b)
			got := NewTorusPoly(n)
			proc.MulFFT(got, a, b)
			for i := range want.Coefs {
				// The FFT path may be off by a few ULPs of the torus.
				diff := int32(got.Coefs[i] - want.Coefs[i])
				if diff < -4 || diff > 4 {
					t.Fatalf("n=%d trial=%d coef %d: got %d want %d", n, trial, i, got.Coefs[i], want.Coefs[i])
				}
			}
		}
	}
}

func TestFFTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const n = 256
	proc := NewProcessor(n)
	src := randTorusPoly(rng, n)
	f := NewFourierPoly(n)
	proc.TorusToFourier(f, src)
	back := NewTorusPoly(n)
	proc.FourierToTorus(back, f)
	for i := range src.Coefs {
		diff := int32(back.Coefs[i] - src.Coefs[i])
		if diff < -2 || diff > 2 {
			t.Fatalf("round trip coef %d: got %d want %d", i, back.Coefs[i], src.Coefs[i])
		}
	}
}

func TestAddFourierToTorusAccumulates(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const n = 64
	proc := NewProcessor(n)
	a := randIntPoly(rng, n, 100)
	b := randTorusPoly(rng, n)
	base := randTorusPoly(rng, n)

	fa := NewFourierPoly(n)
	fb := NewFourierPoly(n)
	fc := NewFourierPoly(n)
	proc.IntToFourier(fa, a)
	proc.TorusToFourier(fb, b)
	fc.MulAccTo(fa, fb)

	got := NewTorusPoly(n)
	got.Copy(base)
	proc.AddFourierToTorus(got, fc)

	want := NewTorusPoly(n)
	want.Copy(base)
	AddMulNaive(want, a, b)
	for i := range want.Coefs {
		diff := int32(got.Coefs[i] - want.Coefs[i])
		if diff < -4 || diff > 4 {
			t.Fatalf("coef %d: got %d want %d", i, got.Coefs[i], want.Coefs[i])
		}
	}
}

// TestMulDistributesOverAddition is a property-based check that the
// negacyclic product distributes over torus addition.
func TestMulDistributesOverAddition(t *testing.T) {
	const n = 32
	f := func(aSeed, bSeed, cSeed int64) bool {
		rng := rand.New(rand.NewSource(aSeed))
		a := randIntPoly(rng, n, 64)
		rng = rand.New(rand.NewSource(bSeed))
		b := randTorusPoly(rng, n)
		rng = rand.New(rand.NewSource(cSeed))
		c := randTorusPoly(rng, n)

		sum := NewTorusPoly(n)
		sum.Copy(b)
		sum.AddTo(c)

		left := NewTorusPoly(n)
		MulNaive(left, a, sum)

		rb := NewTorusPoly(n)
		rc := NewTorusPoly(n)
		MulNaive(rb, a, b)
		MulNaive(rc, a, c)
		rb.AddTo(rc)

		for i := range left.Coefs {
			if left.Coefs[i] != rb.Coefs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPolyMulNaive1024(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	const n = 1024
	a := randIntPoly(rng, n, 512)
	p := randTorusPoly(rng, n)
	out := NewTorusPoly(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulNaive(out, a, p)
	}
}

func BenchmarkPolyMulFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	const n = 1024
	proc := NewProcessor(n)
	a := randIntPoly(rng, n, 512)
	p := randTorusPoly(rng, n)
	out := NewTorusPoly(n)
	fa := NewFourierPoly(n)
	fb := NewFourierPoly(n)
	fc := NewFourierPoly(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.IntToFourier(fa, a)
		proc.TorusToFourier(fb, p)
		fc.Clear()
		fc.MulAccTo(fa, fb)
		proc.FourierToTorus(out, fc)
	}
}

func BenchmarkForwardFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	const n = 1024
	proc := NewProcessor(n)
	a := randIntPoly(rng, n, 512)
	fa := NewFourierPoly(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.IntToFourier(fa, a)
	}
}

func TestPairForwardMatchesSingles(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, n := range []int{8, 64, 256} {
		proc := NewProcessor(n)
		a := randIntPoly(rng, n, 512)
		b := randIntPoly(rng, n, 512)
		fa := NewFourierPoly(n)
		fb := NewFourierPoly(n)
		proc.IntToFourier(fa, a)
		proc.IntToFourier(fb, b)
		pa := NewFourierPoly(n)
		pb := NewFourierPoly(n)
		proc.IntPairToFourier(pa, pb, a, b)
		for k := 0; k < n; k++ {
			if d := fa.Re[k] - pa.Re[k]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("n=%d A.Re[%d]: single %g pair %g", n, k, fa.Re[k], pa.Re[k])
			}
			if d := fa.Im[k] - pa.Im[k]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("n=%d A.Im[%d]: single %g pair %g", n, k, fa.Im[k], pa.Im[k])
			}
			if d := fb.Re[k] - pb.Re[k]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("n=%d B.Re[%d]: single %g pair %g", n, k, fb.Re[k], pb.Re[k])
			}
			if d := fb.Im[k] - pb.Im[k]; d > 1e-5 || d < -1e-5 {
				t.Fatalf("n=%d B.Im[%d]: single %g pair %g", n, k, fb.Im[k], pb.Im[k])
			}
		}
	}
}

func TestPairTorusForward(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	const n = 64
	proc := NewProcessor(n)
	a := randTorusPoly(rng, n)
	b := randTorusPoly(rng, n)
	fa := NewFourierPoly(n)
	fb := NewFourierPoly(n)
	proc.TorusToFourier(fa, a)
	proc.TorusToFourier(fb, b)
	pa := NewFourierPoly(n)
	pb := NewFourierPoly(n)
	proc.TorusPairToFourier(pa, pb, a, b)
	for k := 0; k < n; k++ {
		if d := fa.Re[k] - pa.Re[k]; d > 1e-2 || d < -1e-2 {
			t.Fatalf("A.Re[%d]: single %g pair %g", k, fa.Re[k], pa.Re[k])
		}
		if d := fb.Im[k] - pb.Im[k]; d > 1e-2 || d < -1e-2 {
			t.Fatalf("B.Im[%d]: single %g pair %g", k, fb.Im[k], pb.Im[k])
		}
	}
}

// TestPairedExternalProductPath checks the full pair-packed multiply:
// forward pair, pointwise, inverse pair against the naive reference.
func TestPairedExternalProductPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 128
	proc := NewProcessor(n)
	a1 := randIntPoly(rng, n, 512)
	a2 := randIntPoly(rng, n, 512)
	b1 := randTorusPoly(rng, n)
	b2 := randTorusPoly(rng, n)

	// Reference: two naive negacyclic products.
	want1 := NewTorusPoly(n)
	want2 := NewTorusPoly(n)
	MulNaive(want1, a1, b1)
	MulNaive(want2, a2, b2)

	// Pair-packed path.
	fa1 := NewFourierPoly(n)
	fa2 := NewFourierPoly(n)
	proc.IntPairToFourier(fa1, fa2, a1, a2)
	fb1 := NewFourierPoly(n)
	fb2 := NewFourierPoly(n)
	proc.TorusPairToFourier(fb1, fb2, b1, b2)
	fc1 := NewFourierPoly(n)
	fc2 := NewFourierPoly(n)
	fc1.MulAccTo(fa1, fb1)
	fc2.MulAccTo(fa2, fb2)
	got1 := NewTorusPoly(n)
	got2 := NewTorusPoly(n)
	proc.AddFourierPairToTorus(got1, got2, fc1, fc2)

	for i := 0; i < n; i++ {
		if d := int32(got1.Coefs[i] - want1.Coefs[i]); d < -4 || d > 4 {
			t.Fatalf("poly1 coef %d: got %d want %d", i, got1.Coefs[i], want1.Coefs[i])
		}
		if d := int32(got2.Coefs[i] - want2.Coefs[i]); d < -4 || d > 4 {
			t.Fatalf("poly2 coef %d: got %d want %d", i, got2.Coefs[i], want2.Coefs[i])
		}
	}
}

func BenchmarkForwardFFTPair1024(b *testing.B) {
	rng := rand.New(rand.NewSource(44))
	const n = 1024
	proc := NewProcessor(n)
	p1 := randIntPoly(rng, n, 512)
	p2 := randIntPoly(rng, n, 512)
	f1 := NewFourierPoly(n)
	f2 := NewFourierPoly(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.IntPairToFourier(f1, f2, p1, p2)
	}
}
