package torus

import (
	"math"
	"sync"
	"sync/atomic"
)

// Half-complex negacyclic transform — the kernel representation of the
// batched bootstrap engine.
//
// A real polynomial a in R[X]/(X^N+1) is determined by its evaluations at
// any set of N odd 2N-th roots of unity closed under conjugation; since a
// is real, the values at conjugate roots are conjugate, so M = N/2 complex
// evaluations carry all the information. The full-size representation in
// fft.go stores all N (conjugate-redundant) points, which doubles the work
// of every pointwise product and the footprint of every bootstrap-key row.
// The half representation evaluates only at
//
//	ζ_k = e^{-iπ(4k+1)/N},  k = 0..M-1,
//
// whose conjugates cover the remaining roots. Folding
//
//	c_j = (a_j - i·a_{j+M}) · e^{-iπj/N},  j = 0..M-1,
//
// gives a(ζ_k) = FFT_M(c)_k, and the inverse recovers
// a_j = Re(c_j·e^{iπj/N}), a_{j+M} = -Im(c_j·e^{iπj/N}).
//
// The M-point FFT core here is a radix-4 (plus one radix-2 stage when
// log2 M is odd) decimation-in-frequency transform that SKIPS the
// bit-reversal permutation: spectra are kept in the transform's natural
// digit-reversed order. That order is an internal convention — pointwise
// products preserve it and the inverse undoes the stages in reverse — so
// the permutation passes are pure overhead and are dropped. Per-stage
// twiddles are stored flat in access order, so the inner loops are
// sequential in memory.
//
// Bit-exactness with the full-size path: both pipelines compute the same
// integer convolutions with floating-point error far below 0.5, so after
// rounding to the torus the results are identical coefficient-for-
// coefficient (see roundTorus).

// HalfPoly is a polynomial of ring degree N held as M = N/2 half-complex
// evaluation points in the digit-reversed order of the half transform.
type HalfPoly struct {
	Re, Im []float64
}

// NewHalfPoly returns a zero half-complex polynomial with m = N/2 points.
func NewHalfPoly(m int) *HalfPoly {
	return &HalfPoly{Re: make([]float64, m), Im: make([]float64, m)}
}

// M returns the number of half-complex points.
func (f *HalfPoly) M() int { return len(f.Re) }

// Clear zeroes the polynomial.
func (f *HalfPoly) Clear() {
	for i := range f.Re {
		f.Re[i] = 0
		f.Im[i] = 0
	}
}

// MulAccTo accumulates f += a*b pointwise.
func (f *HalfPoly) MulAccTo(a, b *HalfPoly) {
	fr, fi := f.Re, f.Im
	ar, ai := a.Re, a.Im
	br, bi := b.Re, b.Im
	for k := range fr {
		fr[k] += ar[k]*br[k] - ai[k]*bi[k]
		fi[k] += ar[k]*bi[k] + ai[k]*br[k]
	}
}

// MulAccPairTo accumulates f += a1*b1 + a2*b2 in a single pass, halving the
// loads and stores of the accumulator relative to two MulAccTo calls. This
// is the inner loop of the batched external product.
func (f *HalfPoly) MulAccPairTo(a1, b1, a2, b2 *HalfPoly) {
	fr, fi := f.Re, f.Im
	a1r, a1i := a1.Re, a1.Im
	b1r, b1i := b1.Re, b1.Im
	a2r, a2i := a2.Re, a2.Im
	b2r, b2i := b2.Re, b2.Im
	for k := range fr {
		fr[k] += a1r[k]*b1r[k] - a1i[k]*b1i[k] + a2r[k]*b2r[k] - a2i[k]*b2i[k]
		fi[k] += a1r[k]*b1i[k] + a1i[k]*b1r[k] + a2r[k]*b2i[k] + a2i[k]*b2r[k]
	}
}

// halfStage describes one radix-4 pass: block size s, quarter q = s/4, and
// the offset of its twiddles in the flat tables.
type halfStage struct {
	s, q, off int
}

// halfTables holds the immutable per-N precomputed data of the half
// transform: fold twiddles e^{±iπj/N} and the per-stage FFT twiddles.
type halfTables struct {
	n, m   int
	foldRe []float64 // cos(πj/N), j < M
	foldIm []float64 // sin(πj/N), j < M
	stages []halfStage
	fwdRe  []float64 // per stage, per j: w^j, w^{2j}, w^{3j} with w = e^{-2πi/s}
	fwdIm  []float64
	radix2 bool // trailing size-2 stage when log2 M is odd
}

var (
	halfMu    sync.Mutex
	halfCache atomic.Pointer[map[int]*halfTables]
)

// halfTablesFor returns the shared tables for ring degree n, using the same
// lock-free snapshot scheme as tablesFor.
func halfTablesFor(n int) *halfTables {
	if m := halfCache.Load(); m != nil {
		if t, ok := (*m)[n]; ok {
			return t
		}
	}
	halfMu.Lock()
	defer halfMu.Unlock()
	old := halfCache.Load()
	if old != nil {
		if t, ok := (*old)[n]; ok {
			return t
		}
	}
	t := newHalfTables(n)
	next := make(map[int]*halfTables, 8)
	if old != nil {
		for k, v := range *old {
			next[k] = v
		}
	}
	next[n] = t
	halfCache.Store(&next)
	return t
}

func newHalfTables(n int) *halfTables {
	if n < 4 || n&(n-1) != 0 {
		panic("torus: half transform requires a power-of-two ring degree >= 4")
	}
	m := n / 2
	t := &halfTables{n: n, m: m}
	t.foldRe = make([]float64, m)
	t.foldIm = make([]float64, m)
	for j := 0; j < m; j++ {
		ang := math.Pi * float64(j) / float64(n)
		t.foldRe[j] = math.Cos(ang)
		t.foldIm[j] = math.Sin(ang)
	}
	for s := m; s >= 4; s >>= 2 {
		q := s / 4
		t.stages = append(t.stages, halfStage{s: s, q: q, off: len(t.fwdRe)})
		for j := 0; j < q; j++ {
			for r := 1; r <= 3; r++ {
				ang := -2 * math.Pi * float64(j*r) / float64(s)
				t.fwdRe = append(t.fwdRe, math.Cos(ang))
				t.fwdIm = append(t.fwdIm, math.Sin(ang))
			}
		}
		if s == 8 { // next size is 2: handled by the radix-2 tail
			t.radix2 = true
			break
		}
	}
	if m == 2 {
		t.radix2 = true
	}
	return t
}

// fft is the forward M-point transform (ω = e^{-2πi/M}), leaving the
// spectrum in digit-reversed order.
func (t *halfTables) fft(re, im []float64) {
	for _, st := range t.stages {
		s, q := st.s, st.q
		for b := 0; b < t.m; b += s {
			tw := st.off
			for j := b; j < b+q; j++ {
				i1 := j + q
				i2 := i1 + q
				i3 := i2 + q
				x0r, x0i := re[j], im[j]
				x1r, x1i := re[i1], im[i1]
				x2r, x2i := re[i2], im[i2]
				x3r, x3i := re[i3], im[i3]
				ar, ai := x0r+x2r, x0i+x2i // x0 + x2
				br, bi := x0r-x2r, x0i-x2i // x0 - x2
				cr, ci := x1r+x3r, x1i+x3i // x1 + x3
				dr, di := x1r-x3r, x1i-x3i // x1 - x3
				re[j], im[j] = ar+cr, ai+ci
				w1r, w1i := t.fwdRe[tw], t.fwdIm[tw]
				w2r, w2i := t.fwdRe[tw+1], t.fwdIm[tw+1]
				w3r, w3i := t.fwdRe[tw+2], t.fwdIm[tw+2]
				tw += 3
				// y1 = (b - i·d)·w^j
				t1r, t1i := br+di, bi-dr
				re[i1], im[i1] = t1r*w1r-t1i*w1i, t1r*w1i+t1i*w1r
				// y2 = (a - c)·w^{2j}
				t2r, t2i := ar-cr, ai-ci
				re[i2], im[i2] = t2r*w2r-t2i*w2i, t2r*w2i+t2i*w2r
				// y3 = (b + i·d)·w^{3j}
				t3r, t3i := br-di, bi+dr
				re[i3], im[i3] = t3r*w3r-t3i*w3i, t3r*w3i+t3i*w3r
			}
		}
	}
	if t.radix2 {
		for i := 0; i < t.m; i += 2 {
			xr, xi := re[i], im[i]
			yr, yi := re[i+1], im[i+1]
			re[i], im[i] = xr+yr, xi+yi
			re[i+1], im[i+1] = xr-yr, xi-yi
		}
	}
}

// ifft undoes fft up to an overall factor of M (folded into the unfold
// scaling by the callers): stages are inverted in reverse order with
// conjugated twiddles.
func (t *halfTables) ifft(re, im []float64) {
	if t.radix2 {
		for i := 0; i < t.m; i += 2 {
			xr, xi := re[i], im[i]
			yr, yi := re[i+1], im[i+1]
			re[i], im[i] = xr+yr, xi+yi
			re[i+1], im[i+1] = xr-yr, xi-yi
		}
	}
	for si := len(t.stages) - 1; si >= 0; si-- {
		st := t.stages[si]
		s, q := st.s, st.q
		for b := 0; b < t.m; b += s {
			tw := st.off
			for j := b; j < b+q; j++ {
				i1 := j + q
				i2 := i1 + q
				i3 := i2 + q
				w1r, w1i := t.fwdRe[tw], t.fwdIm[tw]
				w2r, w2i := t.fwdRe[tw+1], t.fwdIm[tw+1]
				w3r, w3i := t.fwdRe[tw+2], t.fwdIm[tw+2]
				tw += 3
				y0r, y0i := re[j], im[j]
				// z_r = y_r · conj(w^{rj})
				y1r, y1i := re[i1], im[i1]
				z1r, z1i := y1r*w1r+y1i*w1i, y1i*w1r-y1r*w1i
				y2r, y2i := re[i2], im[i2]
				z2r, z2i := y2r*w2r+y2i*w2i, y2i*w2r-y2r*w2i
				y3r, y3i := re[i3], im[i3]
				z3r, z3i := y3r*w3r+y3i*w3i, y3i*w3r-y3r*w3i
				ar, ai := y0r+z2r, y0i+z2i // 2(x0+x2)
				br, bi := y0r-z2r, y0i-z2i // 2(x1+x3)
				cr, ci := z1r+z3r, z1i+z3i // 2(x0-x2)
				// i·(z1-z3) = 2(x1-x3)
				dr, di := -(z1i - z3i), z1r-z3r
				re[j], im[j] = ar+cr, ai+ci
				re[i1], im[i1] = br+dr, bi+di
				re[i2], im[i2] = ar-cr, ai-ci
				re[i3], im[i3] = br-dr, bi-di
			}
		}
	}
}

// halfTab returns the processor's half-transform tables, building them on
// first use.
func (p *Processor) halfTab() *halfTables {
	if p.half == nil {
		p.half = halfTablesFor(p.n)
	}
	return p.half
}

// HalfM returns the number of half-complex points (N/2) for this processor.
func (p *Processor) HalfM() int { return p.n / 2 }

// HalfFoldInt transforms an integer polynomial into the half-complex
// domain.
func (p *Processor) HalfFoldInt(dst *HalfPoly, src *IntPoly) {
	t := p.halfTab()
	m := t.m
	re, im := dst.Re, dst.Im
	for j := 0; j < m; j++ {
		a := float64(src.Coefs[j])
		b := float64(src.Coefs[j+m])
		// (a - i·b) · e^{-iπj/N}
		re[j] = a*t.foldRe[j] - b*t.foldIm[j]
		im[j] = -(a*t.foldIm[j] + b*t.foldRe[j])
	}
	t.fft(re, im)
}

// HalfFoldTorus transforms a torus polynomial (coefficients as signed
// integers) into the half-complex domain.
func (p *Processor) HalfFoldTorus(dst *HalfPoly, src *TorusPoly) {
	t := p.halfTab()
	m := t.m
	re, im := dst.Re, dst.Im
	for j := 0; j < m; j++ {
		a := float64(int32(src.Coefs[j]))
		b := float64(int32(src.Coefs[j+m]))
		re[j] = a*t.foldRe[j] - b*t.foldIm[j]
		im[j] = -(a*t.foldIm[j] + b*t.foldRe[j])
	}
	t.fft(re, im)
}

// AddHalfToTorus inverse-transforms src and adds the resulting polynomial
// to dst, rounding each coefficient to the nearest torus element.
func (p *Processor) AddHalfToTorus(dst *TorusPoly, src *HalfPoly) {
	t := p.halfTab()
	m := t.m
	re, im := p.scReRe[:m], p.scIm[:m]
	copy(re, src.Re)
	copy(im, src.Im)
	t.ifft(re, im)
	inv := 1 / float64(m)
	for j := 0; j < m; j++ {
		// c_j·e^{iπj/N}: real part is coefficient j, -imag is j+M.
		cr := re[j] * inv
		ci := im[j] * inv
		rr := cr*t.foldRe[j] - ci*t.foldIm[j]
		ri := cr*t.foldIm[j] + ci*t.foldRe[j]
		dst.Coefs[j] += roundTorus(rr)
		dst.Coefs[j+m] += roundTorus(-ri)
	}
}
