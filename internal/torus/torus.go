// Package torus implements arithmetic over the discretized torus
// T = R/Z represented by 32-bit integers (Torus32), together with the
// integer and torus polynomial rings Z[X]/(X^N+1) and T[X]/(X^N+1) that
// underlie the TLWE and TGSW ciphertexts of the TFHE scheme.
//
// Polynomial multiplication — the hot kernel of TFHE bootstrapping — is
// provided both as a naive O(N^2) negacyclic convolution (the reference
// used by tests) and as an O(N log N) complex FFT evaluated at the odd
// 2N-th roots of unity (the production path, see fft.go).
package torus

// Torus32 is one element of the discretized torus: the uint32 value t
// represents the real number t / 2^32 (mod 1).
type Torus32 = uint32

// ModSwitchToTorus32 encodes the message mu in a message space of size
// msize as the torus element mu/msize. Centers of the message slots are
// offset by half a slot so that decoding is symmetric.
func ModSwitchToTorus32(mu, msize int32) Torus32 {
	interval := (uint64(1) << 32) / uint64(uint32(msize))
	phase := uint64(uint32(mu)%uint32(msize)) * interval
	return Torus32(phase)
}

// ModSwitchFromTorus32 decodes the torus element phase into the nearest
// message in a message space of size msize.
func ModSwitchFromTorus32(phase Torus32, msize int32) int32 {
	interval := (uint64(1) << 32) / uint64(uint32(msize))
	half := interval / 2
	v := (uint64(phase) + half) / interval
	return int32(v % uint64(uint32(msize)))
}

// IntPoly is a polynomial with (small) integer coefficients in
// Z[X]/(X^N+1), coefficient 0 first.
type IntPoly struct {
	Coefs []int32
}

// NewIntPoly returns a zero integer polynomial of degree bound n.
func NewIntPoly(n int) *IntPoly {
	return &IntPoly{Coefs: make([]int32, n)}
}

// N returns the degree bound of the polynomial.
func (p *IntPoly) N() int { return len(p.Coefs) }

// Clear zeroes all coefficients.
func (p *IntPoly) Clear() {
	for i := range p.Coefs {
		p.Coefs[i] = 0
	}
}

// Copy copies src into p. The polynomials must have the same degree.
func (p *IntPoly) Copy(src *IntPoly) {
	copy(p.Coefs, src.Coefs)
}

// TorusPoly is a polynomial with torus coefficients in T[X]/(X^N+1),
// coefficient 0 first.
type TorusPoly struct {
	Coefs []Torus32
}

// NewTorusPoly returns a zero torus polynomial of degree bound n.
func NewTorusPoly(n int) *TorusPoly {
	return &TorusPoly{Coefs: make([]Torus32, n)}
}

// N returns the degree bound of the polynomial.
func (p *TorusPoly) N() int { return len(p.Coefs) }

// Clear zeroes all coefficients.
func (p *TorusPoly) Clear() {
	for i := range p.Coefs {
		p.Coefs[i] = 0
	}
}

// Copy copies src into p. The polynomials must have the same degree.
func (p *TorusPoly) Copy(src *TorusPoly) {
	copy(p.Coefs, src.Coefs)
}

// AddTo adds src to p coefficient-wise.
func (p *TorusPoly) AddTo(src *TorusPoly) {
	for i, c := range src.Coefs {
		p.Coefs[i] += c
	}
}

// SubFrom subtracts src from p coefficient-wise.
func (p *TorusPoly) SubFrom(src *TorusPoly) {
	for i, c := range src.Coefs {
		p.Coefs[i] -= c
	}
}

// AddMulZTo adds z*src to p, where z is a plain integer.
func (p *TorusPoly) AddMulZTo(z int32, src *TorusPoly) {
	zz := uint32(z)
	for i, c := range src.Coefs {
		p.Coefs[i] += zz * c
	}
}

// MulByXaiMinusOne sets p = (X^a - 1) * src in T[X]/(X^N+1), with
// 0 <= a < 2N. This is the accumulator update primitive of blind rotation.
func (p *TorusPoly) MulByXaiMinusOne(a int, src *TorusPoly) {
	n := p.N()
	if a &= 2*n - 1; a < n {
		for i := 0; i < a; i++ {
			// X^a * X^(i) for i in the wrapped region picks up a sign.
			p.Coefs[i] = -src.Coefs[i-a+n] - src.Coefs[i]
		}
		for i := a; i < n; i++ {
			p.Coefs[i] = src.Coefs[i-a] - src.Coefs[i]
		}
	} else {
		aa := a - n
		for i := 0; i < aa; i++ {
			p.Coefs[i] = src.Coefs[i-aa+n] - src.Coefs[i]
		}
		for i := aa; i < n; i++ {
			p.Coefs[i] = -src.Coefs[i-aa] - src.Coefs[i]
		}
	}
}

// MulByXai sets p = X^a * src in T[X]/(X^N+1), with 0 <= a < 2N.
func (p *TorusPoly) MulByXai(a int, src *TorusPoly) {
	n := p.N()
	if a &= 2*n - 1; a < n {
		for i := 0; i < a; i++ {
			p.Coefs[i] = -src.Coefs[i-a+n]
		}
		for i := a; i < n; i++ {
			p.Coefs[i] = src.Coefs[i-a]
		}
	} else {
		aa := a - n
		for i := 0; i < aa; i++ {
			p.Coefs[i] = src.Coefs[i-aa+n]
		}
		for i := aa; i < n; i++ {
			p.Coefs[i] = -src.Coefs[i-aa]
		}
	}
}

// MulNaive computes the negacyclic product result = a * b in T[X]/(X^N+1)
// by direct O(N^2) convolution. It is the correctness reference for the FFT
// multiplier and the default for very small rings.
func MulNaive(result *TorusPoly, a *IntPoly, b *TorusPoly) {
	n := result.N()
	for i := range result.Coefs {
		result.Coefs[i] = 0
	}
	for i, ai := range a.Coefs {
		if ai == 0 {
			continue
		}
		aa := uint32(ai)
		for j, bj := range b.Coefs {
			k := i + j
			if k < n {
				result.Coefs[k] += aa * bj
			} else {
				result.Coefs[k-n] -= aa * bj
			}
		}
	}
}

// AddMulNaive computes result += a * b by direct negacyclic convolution.
func AddMulNaive(result *TorusPoly, a *IntPoly, b *TorusPoly) {
	n := result.N()
	for i, ai := range a.Coefs {
		if ai == 0 {
			continue
		}
		aa := uint32(ai)
		for j, bj := range b.Coefs {
			k := i + j
			if k < n {
				result.Coefs[k] += aa * bj
			} else {
				result.Coefs[k-n] -= aa * bj
			}
		}
	}
}
