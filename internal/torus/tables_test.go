package torus

import (
	"sync"
	"testing"
)

// TestTablesForConcurrent hammers the twiddle-table cache from 16 goroutines
// across several ring sizes at once. Run under -race it verifies the
// lock-free snapshot path: every goroutine must observe one canonical table
// per size, and concurrent first-time inserts of different sizes must not
// lose each other's entries.
func TestTablesForConcurrent(t *testing.T) {
	sizes := []int{16, 32, 64, 128, 256, 512, 1024, 2048}
	const goroutines = 16
	const iters = 200

	var wg sync.WaitGroup
	got := make([][]*fftTables, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seen := make([]*fftTables, len(sizes))
			for it := 0; it < iters; it++ {
				// Stagger the starting size so first-time constructions of
				// different sizes race with each other.
				for s := range sizes {
					n := sizes[(s+g)%len(sizes)]
					tab := tablesFor(n)
					if tab.n != n {
						t.Errorf("tablesFor(%d) returned tables for n=%d", n, tab.n)
						return
					}
					idx := (s + g) % len(sizes)
					if seen[idx] == nil {
						seen[idx] = tab
					} else if seen[idx] != tab {
						t.Errorf("tablesFor(%d) returned distinct instances", n)
						return
					}
				}
			}
			got[g] = seen
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// All goroutines must agree on the canonical instance per size.
	for g := 1; g < goroutines; g++ {
		for i := range sizes {
			if got[g][i] != got[0][i] {
				t.Fatalf("goroutines 0 and %d disagree on tables for size index %d", g, i)
			}
		}
	}
}

// TestProcessorSharesTables checks that Processors of equal size share one
// table instance (the cache actually caches).
func TestProcessorSharesTables(t *testing.T) {
	a := NewProcessor(64)
	b := NewProcessor(64)
	if a.tab != b.tab {
		t.Fatal("two processors of the same size got distinct twiddle tables")
	}
}
