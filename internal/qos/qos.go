// Package qos holds the runtime-layer quality-of-service primitives the
// serving stack composes: a weighted fair ready queue partitioned by
// tenant (Fair), per-tenant admission quotas (Quota), and a
// byte-accounted LRU cache (LRU) for the caches that otherwise grow
// without bound — compiled execution plans and per-key replay runtimes.
//
// Everything here is policy over the existing execution machinery, in the
// spirit of CHET's compiler/runtime split: no backend forks, no kernel
// changes. backend.Shared swaps its single cross-run critical-path heap
// for a Fair of per-tenant heaps, and pytfhed threads Quota and LRU
// through admission and its caches.
package qos

import "errors"

// ErrQuotaExceeded is returned when a tenant's admission quota (maximum
// in-flight runs or maximum queued gates) would be exceeded. It is a
// per-tenant backpressure signal: other tenants are unaffected, and the
// same tenant's next request succeeds once earlier work drains.
var ErrQuotaExceeded = errors.New("qos: tenant quota exceeded")
