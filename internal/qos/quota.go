package qos

import (
	"fmt"
	"sync"
)

// Quota enforces per-tenant admission limits: at most MaxRuns in-flight
// runs and at most MaxGates queued gates per tenant at once. Acquire
// claims a run (with its gate count) and Release returns it; a claim that
// would exceed either limit fails with ErrQuotaExceeded without touching
// the counters. The key type is generic so the executor layer can quota
// by key id (int64) and the serving layer by cloud-key hash (string).
//
// A nil *Quota is valid and admits everything — the zero-configuration
// path costs one nil check.
type Quota[K comparable] struct {
	mu       sync.Mutex
	maxRuns  int // 0: unlimited
	maxGates int // 0: unlimited
	runs     map[K]int
	gates    map[K]int
	rejects  int64
}

// NewQuota returns a quota with the given limits; a zero (or negative)
// limit is unlimited. When both limits are unlimited it returns nil, the
// admit-everything quota.
func NewQuota[K comparable](maxRuns, maxGates int) *Quota[K] {
	if maxRuns <= 0 && maxGates <= 0 {
		return nil
	}
	return &Quota[K]{
		maxRuns:  maxRuns,
		maxGates: maxGates,
		runs:     make(map[K]int),
		gates:    make(map[K]int),
	}
}

// Acquire claims one run of the given gate count for the tenant, or
// fails with ErrQuotaExceeded (wrapped with the limit that tripped).
func (q *Quota[K]) Acquire(tenant K, gates int) error {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.maxRuns > 0 && q.runs[tenant]+1 > q.maxRuns {
		q.rejects++
		return fmt.Errorf("%w: %d runs in flight (limit %d)", ErrQuotaExceeded, q.runs[tenant], q.maxRuns)
	}
	if q.maxGates > 0 && q.gates[tenant]+gates > q.maxGates {
		q.rejects++
		return fmt.Errorf("%w: %d+%d gates queued (limit %d)", ErrQuotaExceeded, q.gates[tenant], gates, q.maxGates)
	}
	q.runs[tenant]++
	q.gates[tenant] += gates
	return nil
}

// Release returns a claim made by a successful Acquire. Tenants whose
// counters reach zero are dropped, so the maps track only active tenants.
func (q *Quota[K]) Release(tenant K, gates int) {
	if q == nil {
		return
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.runs[tenant]--; q.runs[tenant] <= 0 {
		delete(q.runs, tenant)
	}
	if q.gates[tenant] -= gates; q.gates[tenant] <= 0 {
		delete(q.gates, tenant)
	}
}

// Rejects reports the cumulative Acquire failures.
func (q *Quota[K]) Rejects() int64 {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.rejects
}
