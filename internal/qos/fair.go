package qos

import "sync"

// Fair is a blocking multi-producer multi-consumer ready set partitioned
// by tenant: one heap per tenant (ordered by the caller's less function)
// plus a weighted start-time fair-queuing picker across tenants. It is
// the drop-in replacement for the single cross-run heap in
// backend.Shared — within a tenant the best task under less still pops
// first (critical-path order), but across tenants service is interleaved
// in proportion to weight, so a hot tenant with thousands of queued gates
// can no longer starve a light one that has a single gate ready.
//
// The picker is classic SFQ: every tenant carries a virtual time that
// advances by 1/weight per task served, and Pop serves the non-empty
// tenant with the smallest virtual time. A tenant that goes idle and
// returns is brought forward to the current virtual clock, so idleness
// banks no credit and a returning tenant is served promptly rather than
// monopolizing the queue to "catch up".
type Fair[T any] struct {
	mu   sync.Mutex
	cond *sync.Cond
	less func(a, b T) bool
	ten  map[int64]*tenantQ[T]
	n    int     // queued tasks across all tenants
	vc   float64 // virtual clock: start tag of the most recent pick
	done bool
}

// tenantQ is one tenant's heap plus its fair-queuing state.
type tenantQ[T any] struct {
	items  []T     // heap under Fair.less
	weight float64 // service share relative to other tenants (default 1)
	vt     float64 // virtual start time of the tenant's next task
	picks  int64   // tasks served to this tenant since creation
}

// FairTenantStats is one tenant's snapshot in Fair.Snapshot.
type FairTenantStats struct {
	Queued int     // tasks currently queued
	Picks  int64   // tasks served since the tenant first appeared
	Weight float64 // configured service weight
}

// NewFair returns a fair queue whose per-tenant heaps pop the least
// element under less first (pass a descending comparison for max-heaps).
func NewFair[T any](less func(a, b T) bool) *Fair[T] {
	f := &Fair[T]{less: less, ten: make(map[int64]*tenantQ[T])}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// tenant returns (creating if needed) the tenant's queue state.
func (f *Fair[T]) tenant(id int64) *tenantQ[T] {
	tq := f.ten[id]
	if tq == nil {
		tq = &tenantQ[T]{weight: 1}
		f.ten[id] = tq
	}
	return tq
}

// SetWeight sets a tenant's service share (weights are relative; the
// default is 1, and w <= 0 resets to 1). Safe at any time, including
// while the tenant has queued work.
func (f *Fair[T]) SetWeight(id int64, w float64) {
	if w <= 0 {
		w = 1
	}
	f.mu.Lock()
	f.tenant(id).weight = w
	f.mu.Unlock()
}

// Push enqueues v for the given tenant and wakes one blocked Pop. A
// tenant activating from idle starts at the current virtual clock, never
// behind it.
func (f *Fair[T]) Push(id int64, v T) {
	f.mu.Lock()
	tq := f.tenant(id)
	if len(tq.items) == 0 && tq.vt < f.vc {
		tq.vt = f.vc
	}
	tq.items = append(tq.items, v)
	f.up(tq, len(tq.items)-1)
	f.n++
	f.mu.Unlock()
	f.cond.Signal()
}

// Pop blocks until a task is available or the queue is finished; the
// second result is false once Finish has been called. The task returned
// belongs to the non-empty tenant with the least virtual time; within
// that tenant it is the best task under less. The tenant id rides along
// so batching consumers can top up from the same tenant.
func (f *Fair[T]) Pop() (T, int64, bool) {
	var zero T
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.done {
			return zero, 0, false
		}
		if v, id, ok := f.popLocked(); ok {
			return v, id, true
		}
		f.cond.Wait()
	}
}

// TryPop is Pop without blocking: it reports false when no task is
// immediately available or the queue is finished.
func (f *Fair[T]) TryPop() (T, int64, bool) {
	var zero T
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return zero, 0, false
	}
	return f.popLocked()
}

// TryPopTenant pops the given tenant's best task if one is immediately
// available — the batching top-up path: a worker that seeded a kernel
// batch with one tenant's bootstrap drains more work from the same
// tenant (batches can only share a cloud key). The service is charged to
// the tenant's virtual time exactly like a fair pick, so a tenant served
// in bursts pays for the burst on subsequent picks.
func (f *Fair[T]) TryPopTenant(id int64) (T, bool) {
	var zero T
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.done {
		return zero, false
	}
	tq := f.ten[id]
	if tq == nil || len(tq.items) == 0 {
		return zero, false
	}
	return f.serveLocked(tq), true
}

// popLocked picks the least-virtual-time non-empty tenant and serves its
// best task. The scan is linear in the number of tenants with queued
// work, which is small (tenants, not gates).
func (f *Fair[T]) popLocked() (T, int64, bool) {
	var zero T
	var best *tenantQ[T]
	var bestID int64
	for id, tq := range f.ten {
		if len(tq.items) == 0 {
			continue
		}
		if best == nil || tq.vt < best.vt || (tq.vt == best.vt && id < bestID) {
			best, bestID = tq, id
		}
	}
	if best == nil {
		return zero, 0, false
	}
	return f.serveLocked(best), bestID, true
}

// serveLocked pops tq's heap top and advances the fair-queuing clocks.
func (f *Fair[T]) serveLocked(tq *tenantQ[T]) T {
	var zero T
	top := tq.items[0]
	last := len(tq.items) - 1
	tq.items[0] = tq.items[last]
	tq.items[last] = zero // release any pointers in the popped slot
	tq.items = tq.items[:last]
	if last > 0 {
		f.down(tq, 0)
	}
	if tq.vt > f.vc {
		f.vc = tq.vt
	}
	tq.vt += 1 / tq.weight
	tq.picks++
	f.n--
	return top
}

// Len reports the number of queued tasks across all tenants.
func (f *Fair[T]) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// LenTenant reports one tenant's queued-task count.
func (f *Fair[T]) LenTenant(id int64) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if tq := f.ten[id]; tq != nil {
		return len(tq.items)
	}
	return 0
}

// Snapshot reports every known tenant's queue depth, cumulative picks,
// and weight.
func (f *Fair[T]) Snapshot() map[int64]FairTenantStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[int64]FairTenantStats, len(f.ten))
	for id, tq := range f.ten {
		out[id] = FairTenantStats{Queued: len(tq.items), Picks: tq.picks, Weight: tq.weight}
	}
	return out
}

// Forget drops an idle tenant's bookkeeping — the cache-lifecycle hook
// for "last session under this key closed". A tenant with queued work is
// kept (its tasks must still drain); forgetting is then a no-op.
func (f *Fair[T]) Forget(id int64) {
	f.mu.Lock()
	if tq := f.ten[id]; tq != nil && len(tq.items) == 0 {
		delete(f.ten, id)
	}
	f.mu.Unlock()
}

// Finish makes every current and future Pop return false and wakes all
// blocked consumers. Tasks still queued are never popped.
func (f *Fair[T]) Finish() {
	f.mu.Lock()
	f.done = true
	f.mu.Unlock()
	f.cond.Broadcast()
}

func (f *Fair[T]) up(tq *tenantQ[T], i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !f.less(tq.items[i], tq.items[parent]) {
			return
		}
		tq.items[i], tq.items[parent] = tq.items[parent], tq.items[i]
		i = parent
	}
}

func (f *Fair[T]) down(tq *tenantQ[T], i int) {
	n := len(tq.items)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && f.less(tq.items[l], tq.items[best]) {
			best = l
		}
		if r < n && f.less(tq.items[r], tq.items[best]) {
			best = r
		}
		if best == i {
			return
		}
		tq.items[i], tq.items[best] = tq.items[best], tq.items[i]
		i = best
	}
}
