package qos

import (
	"errors"
	"sync"
	"testing"
)

// intLess is an ascending heap order for test tasks.
func intLess(a, b int) bool { return a < b }

// TestFairInterleavesEqualTenants loads two equal-weight tenants and
// checks service alternates: any prefix of the pop sequence serves each
// tenant within one pick of the other.
func TestFairInterleavesEqualTenants(t *testing.T) {
	f := NewFair[int](intLess)
	for i := 0; i < 50; i++ {
		f.Push(1, 100+i)
		f.Push(2, 200+i)
	}
	counts := map[int64]int{}
	for i := 0; i < 100; i++ {
		v, id, ok := f.TryPop()
		if !ok {
			t.Fatalf("pop %d: queue empty early", i)
		}
		if id == 1 && (v < 100 || v >= 150) || id == 2 && (v < 200 || v >= 250) {
			t.Fatalf("pop %d: task %d attributed to tenant %d", i, v, id)
		}
		counts[id]++
		if d := counts[1] - counts[2]; d < -1 || d > 1 {
			t.Fatalf("after %d pops: tenant picks %v diverged beyond one", i+1, counts)
		}
	}
	if counts[1] != 50 || counts[2] != 50 {
		t.Fatalf("final picks = %v, want 50/50", counts)
	}
}

// TestFairWeights checks a weight-3 tenant receives ~3x the service of a
// weight-1 tenant over any window.
func TestFairWeights(t *testing.T) {
	f := NewFair[int](intLess)
	f.SetWeight(1, 3)
	for i := 0; i < 90; i++ {
		f.Push(1, i)
	}
	for i := 0; i < 30; i++ {
		f.Push(2, i)
	}
	heavy := 0
	for i := 0; i < 40; i++ {
		_, id, ok := f.TryPop()
		if !ok {
			t.Fatal("queue empty early")
		}
		if id == 1 {
			heavy++
		}
	}
	// Exactly 3:1 modulo boundary effects: 40 picks → 30 heavy, 10 light.
	if heavy < 28 || heavy > 32 {
		t.Fatalf("weight-3 tenant served %d of 40 picks, want ~30", heavy)
	}
	snap := f.Snapshot()
	if snap[1].Weight != 3 || snap[1].Picks != int64(heavy) {
		t.Fatalf("snapshot = %+v", snap[1])
	}
}

// TestFairNoStarvation floods tenant 1, then has tenant 2 arrive late
// with a single task: it must be served on the very next pick — idleness
// banks no credit, and arrival does not queue behind the flood.
func TestFairNoStarvation(t *testing.T) {
	f := NewFair[int](intLess)
	for i := 0; i < 1000; i++ {
		f.Push(1, i)
	}
	for i := 0; i < 100; i++ {
		if _, id, _ := f.TryPop(); id != 1 {
			t.Fatalf("pop %d: tenant %d before any tenant-2 push", i, id)
		}
	}
	f.Push(2, 7)
	v, id, ok := f.TryPop()
	if !ok || id != 2 || v != 7 {
		t.Fatalf("late-arriving light tenant not served next: got task %d of tenant %d", v, id)
	}
}

// TestFairWithinTenantOrder checks the per-tenant heap still pops the
// best task under less.
func TestFairWithinTenantOrder(t *testing.T) {
	f := NewFair[int](intLess)
	for _, v := range []int{5, 1, 4, 2, 3} {
		f.Push(1, v)
	}
	for want := 1; want <= 5; want++ {
		v, _, ok := f.TryPop()
		if !ok || v != want {
			t.Fatalf("pop = %d, want %d", v, want)
		}
	}
}

// TestFairTryPopTenant checks the batching top-up path drains only the
// requested tenant and charges its virtual time.
func TestFairTryPopTenant(t *testing.T) {
	f := NewFair[int](intLess)
	f.Push(1, 10)
	f.Push(1, 11)
	f.Push(2, 20)
	if _, ok := f.TryPopTenant(3); ok {
		t.Fatal("TryPopTenant served an unknown tenant")
	}
	v, ok := f.TryPopTenant(1)
	if !ok || v != 10 {
		t.Fatalf("TryPopTenant(1) = %d, %v", v, ok)
	}
	v, ok = f.TryPopTenant(1)
	if !ok || v != 11 {
		t.Fatalf("TryPopTenant(1) second = %d, %v", v, ok)
	}
	// Tenant 1 was served twice out of band; the fair pick goes to 2.
	if _, id, ok := f.TryPop(); !ok || id != 2 {
		t.Fatalf("fair pick after burst = tenant %d", id)
	}
	if _, ok := f.TryPopTenant(1); ok {
		t.Fatal("TryPopTenant on an empty tenant succeeded")
	}
}

// TestFairBlockingPopAndFinish checks Pop blocks until a push arrives and
// Finish wakes blocked consumers with ok=false.
func TestFairBlockingPopAndFinish(t *testing.T) {
	f := NewFair[int](intLess)
	got := make(chan int, 1)
	go func() {
		v, _, ok := f.Pop()
		if !ok {
			got <- -1
			return
		}
		got <- v
	}()
	f.Push(9, 42)
	if v := <-got; v != 42 {
		t.Fatalf("blocked Pop woke with %d", v)
	}

	done := make(chan bool, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, _, ok := f.Pop()
			done <- ok
		}()
	}
	f.Finish()
	for i := 0; i < 2; i++ {
		if ok := <-done; ok {
			t.Fatal("Pop returned ok after Finish")
		}
	}
	if _, _, ok := f.TryPop(); ok {
		t.Fatal("TryPop returned ok after Finish")
	}
}

// TestFairForget drops idle tenants but keeps ones with queued work.
func TestFairForget(t *testing.T) {
	f := NewFair[int](intLess)
	f.Push(1, 1)
	f.Forget(1)
	if n := f.LenTenant(1); n != 1 {
		t.Fatalf("Forget dropped a tenant with %d queued tasks", n)
	}
	f.TryPop()
	f.Forget(1)
	if _, ok := f.Snapshot()[1]; ok {
		t.Fatal("idle tenant survived Forget")
	}
}

// TestQuota exercises both limits and the typed error.
func TestQuota(t *testing.T) {
	if q := NewQuota[string](0, 0); q != nil {
		t.Fatal("unlimited quota should be nil")
	}
	var nilQ *Quota[string]
	if err := nilQ.Acquire("a", 1000); err != nil {
		t.Fatalf("nil quota rejected: %v", err)
	}
	nilQ.Release("a", 1000)

	q := NewQuota[string](2, 100)
	if err := q.Acquire("a", 60); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("a", 60); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("gate overflow: err = %v, want ErrQuotaExceeded", err)
	}
	if err := q.Acquire("a", 40); err != nil {
		t.Fatal(err)
	}
	if err := q.Acquire("a", 1); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("run overflow: err = %v, want ErrQuotaExceeded", err)
	}
	// Another tenant is unaffected.
	if err := q.Acquire("b", 100); err != nil {
		t.Fatalf("tenant b throttled by tenant a: %v", err)
	}
	q.Release("a", 60)
	if err := q.Acquire("a", 60); err != nil {
		t.Fatalf("release did not restore quota: %v", err)
	}
	if got := q.Rejects(); got != 2 {
		t.Fatalf("Rejects = %d, want 2", got)
	}
}

// TestLRU pins the byte-cap invariant, recency order, Update resizing,
// and the eviction counters.
func TestLRU(t *testing.T) {
	c := NewLRU(100)
	if ev := c.Add("a", "A", 40); len(ev) != 0 {
		t.Fatalf("eviction under cap: %v", ev)
	}
	c.Add("b", "B", 40)
	if _, ok := c.Get("a"); !ok { // refresh a: b is now coldest
		t.Fatal("a missing")
	}
	ev := c.Add("c", "C", 40)
	if len(ev) != 1 || ev[0].Key != "b" {
		t.Fatalf("evicted %v, want b", ev)
	}
	if c.Bytes() != 80 || c.Len() != 2 {
		t.Fatalf("bytes=%d len=%d after eviction", c.Bytes(), c.Len())
	}
	if _, ok := c.Get("b"); ok {
		t.Fatal("evicted entry still cached")
	}

	// Update growth forces eviction of the cold entry (c was added last
	// but a was refreshed before it... c is most recent; a is coldest).
	ev = c.Update("c", 80)
	if len(ev) != 1 || ev[0].Key != "a" {
		t.Fatalf("update evicted %v, want a", ev)
	}
	if c.Bytes() > c.Cap() {
		t.Fatalf("bytes %d exceed cap %d", c.Bytes(), c.Cap())
	}

	// An entry larger than the whole cap is never cached.
	ev = c.Add("huge", "H", 1000)
	found := false
	for _, e := range ev {
		if e.Key == "huge" {
			found = true
		}
	}
	if !found || c.Bytes() > c.Cap() {
		t.Fatalf("oversized entry: evicted=%v bytes=%d", ev, c.Bytes())
	}

	// Remove counts as an eviction.
	c.Add("d", "D", 10)
	before := c.Stats().Evictions
	if e, ok := c.Remove("d"); !ok || e.Bytes != 10 {
		t.Fatalf("remove = %+v, %v", e, ok)
	}
	st := c.Stats()
	if st.Evictions != before+1 {
		t.Fatalf("Remove not counted as eviction: %+v", st)
	}
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("hit/miss counters dead: %+v", st)
	}

	// Unbounded cache never evicts on Add.
	u := NewLRU(0)
	for i := 0; i < 10; i++ {
		if ev := u.Add(string(rune('a'+i)), i, 1<<20); len(ev) != 0 {
			t.Fatalf("unbounded cache evicted %v", ev)
		}
	}
}

// TestLRUConcurrent hammers the cache from several goroutines under
// -race; the assertion is the byte invariant at the end.
func TestLRUConcurrent(t *testing.T) {
	c := NewLRU(1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := string(rune('a' + (g+i)%16))
				c.Add(key, i, int64(50+i%100))
				c.Get(key)
				c.Update(key, int64(60+i%50))
			}
		}(g)
	}
	wg.Wait()
	if c.Bytes() > c.Cap() {
		t.Fatalf("bytes %d exceed cap %d after concurrent churn", c.Bytes(), c.Cap())
	}
}
