package qos

import (
	"container/list"
	"sync"
)

// LRU is a byte-accounted least-recently-used cache: every entry carries
// an accounted size, and inserts evict from the cold end until the total
// is back under the configured cap. It backs pytfhed's compiled-plan
// cache and per-key replay-runtime cache, which previously grew without
// bound. The accounting is the caller's estimate (plan instruction
// footprint, arena high-water × ciphertext size); the invariant the
// cache maintains is Bytes() <= Cap() after every mutation — an entry
// larger than the whole cap is evicted immediately and simply never
// cached.
type LRU struct {
	mu        sync.Mutex
	capBytes  int64 // <= 0: unbounded
	bytes     int64
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

// LRUEntry is one evicted (or removed) cache entry, returned so the
// caller can run release hooks on the value.
type LRUEntry struct {
	Key   string
	Value any
	Bytes int64
}

// LRUStats is a counters snapshot.
type LRUStats struct {
	Entries   int
	Bytes     int64
	CapBytes  int64 // 0: unbounded
	Hits      int64
	Misses    int64
	Evictions int64
}

type lruItem struct {
	key   string
	value any
	bytes int64
}

// NewLRU returns a cache bounded at capBytes accounted bytes (<= 0:
// unbounded — eviction then only happens via Remove).
func NewLRU(capBytes int64) *LRU {
	if capBytes < 0 {
		capBytes = 0
	}
	return &LRU{capBytes: capBytes, ll: list.New(), items: make(map[string]*list.Element)}
}

// Get returns the entry for key, marking it most recently used. Hit and
// miss counters feed the telemetry cache series.
func (c *LRU) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*lruItem).value, true
}

// Add inserts (or replaces) key with the given accounted size and
// returns the entries evicted to restore the byte cap. The new entry is
// itself evictable when it alone exceeds the cap.
func (c *LRU) Add(key string, value any, bytes int64) []LRUEntry {
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem)
		c.bytes += bytes - it.bytes
		it.value, it.bytes = value, bytes
		c.ll.MoveToFront(el)
		return c.evictLocked()
	}
	c.items[key] = c.ll.PushFront(&lruItem{key: key, value: value, bytes: bytes})
	c.bytes += bytes
	return c.evictLocked()
}

// Update resizes an existing entry's accounting without touching its
// recency (the replay-runtime cache re-measures arena high water after
// every replay). Unknown keys are ignored. Returns any evictions the
// growth forced.
func (c *LRU) Update(key string, bytes int64) []LRUEntry {
	if bytes < 0 {
		bytes = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil
	}
	it := el.Value.(*lruItem)
	c.bytes += bytes - it.bytes
	it.bytes = bytes
	return c.evictLocked()
}

// Remove deletes key, counting the removal as an eviction (the lifecycle
// release of a key's runtime is an eviction in the telemetry sense: the
// cached state is gone and the next use rebuilds it).
func (c *LRU) Remove(key string) (LRUEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return LRUEntry{}, false
	}
	it := el.Value.(*lruItem)
	c.ll.Remove(el)
	delete(c.items, key)
	c.bytes -= it.bytes
	c.evictions++
	return LRUEntry{Key: it.key, Value: it.value, Bytes: it.bytes}, true
}

// evictLocked trims cold entries until bytes <= cap.
func (c *LRU) evictLocked() []LRUEntry {
	if c.capBytes <= 0 {
		return nil
	}
	var out []LRUEntry
	for c.bytes > c.capBytes {
		el := c.ll.Back()
		if el == nil {
			break
		}
		it := el.Value.(*lruItem)
		c.ll.Remove(el)
		delete(c.items, it.key)
		c.bytes -= it.bytes
		c.evictions++
		out = append(out, LRUEntry{Key: it.key, Value: it.value, Bytes: it.bytes})
	}
	return out
}

// Bytes reports the accounted total.
func (c *LRU) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Cap reports the configured byte cap (0: unbounded).
func (c *LRU) Cap() int64 { return c.capBytes }

// Len reports the entry count.
func (c *LRU) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats snapshots the cache counters.
func (c *LRU) Stats() LRUStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return LRUStats{
		Entries:   len(c.items),
		Bytes:     c.bytes,
		CapBytes:  c.capBytes,
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
	}
}
