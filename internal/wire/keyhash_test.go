package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

func testKey(t *testing.T, seed string) *boot.CloudKey {
	t.Helper()
	_, ck, err := boot.GenerateKeys(params.Test(), trand.NewSeeded([]byte(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return ck
}

// TestKeyHashIndependentOfGobState is the regression test for the cluster
// handshake's cross-binary key check. Gob assigns wire type IDs
// process-globally in first-use order, so a hash over gob output depends
// on what else the process has gob-encoded — and the client, daemon, and
// worker binaries each do different gob work before hashing the same key.
// KeyHash must therefore produce identical hashes before and after
// arbitrary unrelated gob traffic and across an encode/decode round trip
// of the key itself.
func TestKeyHashIndependentOfGobState(t *testing.T) {
	ck := testKey(t, "wire-keyhash")
	h1, err := KeyHash(ck)
	if err != nil {
		t.Fatal(err)
	}

	// Unrelated gob activity: churn the process-global type registry.
	type noise struct{ X map[string][]int }
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(noise{X: map[string][]int{"a": {1}}}); err != nil {
		t.Fatal(err)
	}
	h2, err := KeyHash(ck)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash changed after unrelated gob traffic: %s vs %s", h1, h2)
	}

	// Round trip the key the way the serve and cluster streams carry it.
	buf.Reset()
	if err := gob.NewEncoder(&buf).Encode(ck); err != nil {
		t.Fatal(err)
	}
	var rt boot.CloudKey
	if err := gob.NewDecoder(&buf).Decode(&rt); err != nil {
		t.Fatal(err)
	}
	h3, err := KeyHash(&rt)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h3 {
		t.Fatalf("hash changed across gob round trip: %s vs %s", h1, h3)
	}
}

// TestKeyHashDistinguishesKeys checks the hash actually depends on the key
// material, not just the parameter set.
func TestKeyHashDistinguishesKeys(t *testing.T) {
	h1, err := KeyHash(testKey(t, "tenant-a"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := KeyHash(testKey(t, "tenant-b"))
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatalf("distinct keys hashed identically: %s", h1)
	}
}

// TestKeyHashNil pins the error paths: a nil key (or a key that never got
// its parameters) must fail loudly rather than hash an empty skeleton.
func TestKeyHashNil(t *testing.T) {
	if _, err := KeyHash(nil); err == nil {
		t.Fatal("KeyHash(nil) did not fail")
	}
	ck := testKey(t, "wire-keyhash")
	mut := &boot.CloudKey{BK: ck.BK, KS: ck.KS}
	h1, err := KeyHash(mut)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := KeyHash(ck)
	if err != nil {
		t.Fatal(err)
	}
	if h1 == h2 {
		t.Fatal("params presence not reflected in hash")
	}
}
