package wire

import (
	"bytes"
	"encoding/gob"
	"testing"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/lwe"
)

// TestCiphertextWireSize pins the per-ciphertext communication cost of
// Fig. 7: one LWE sample under the default128 parameter set is (630+1)
// 4-byte torus elements = 2524 B ≈ 2.46 KB. CiphertextBytes is the figure
// the cluster coordinator's BytesSent accounting multiplies by, so a drift
// here silently skews every communication profile.
func TestCiphertextWireSize(t *testing.T) {
	p := params.Default128()
	if got := p.CiphertextBytes(); got != 2524 {
		t.Fatalf("default128 ciphertext = %d B, want 2524 (~2.46 KB, Fig. 7)", got)
	}
	if kb := float64(p.CiphertextBytes()) / 1024; kb < 2.4 || kb > 2.5 {
		t.Fatalf("default128 ciphertext = %.2f KiB, want ~2.46", kb)
	}
}

// TestCiphertextGobOverhead checks that gob's steady-state framing of a
// ciphertext stays within a modest factor of the raw payload: the type
// descriptor is amortized over the stream (sent once per encoder), and
// each subsequent sample costs the varint-encoded coefficients plus a few
// bytes of framing. A regression past +45% would mean the wire format
// stopped matching the paper's communication model.
func TestCiphertextGobOverhead(t *testing.T) {
	Register()
	p := params.Default128()
	sample := func(seed uint32) *lwe.Sample {
		s := lwe.NewSample(p.LWEDimension)
		for i := range s.A {
			// Full-width torus values, the worst case for varints.
			s.A[i] = 0x89abcdef ^ (seed+uint32(i))*0x9e3779b9
		}
		s.B = 0xdeadbeef
		return s
	}
	var buf bytes.Buffer
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(sample(1)); err != nil {
		t.Fatal(err)
	}
	first := buf.Len()
	if err := enc.Encode(sample(2)); err != nil {
		t.Fatal(err)
	}
	steady := buf.Len() - first // second sample: no type descriptor
	raw := p.CiphertextBytes()
	if steady < raw {
		t.Fatalf("gob steady-state ciphertext = %d B, below raw payload %d B", steady, raw)
	}
	if limit := raw * 145 / 100; steady > limit {
		t.Fatalf("gob steady-state ciphertext = %d B, exceeds %d B (raw %d B +45%%)", steady, limit, raw)
	}
	t.Logf("raw %d B, gob steady-state %d B (+%.0f%%)", raw, steady, 100*float64(steady-raw)/float64(raw))
}
