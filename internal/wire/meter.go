package wire

import (
	"net"
	"sync/atomic"
)

// Meter wraps a net.Conn with atomic byte counters so both wire protocols
// can report measured traffic instead of the per-ciphertext estimate the
// paper's Fig. 7 model uses. Counters are monotonic for the life of the
// connection; callers snapshot them around a run to attribute bytes.
type Meter struct {
	net.Conn
	read    int64
	written int64
}

// NewMeter wraps c. The returned Meter satisfies net.Conn and can be
// handed straight to gob.
func NewMeter(c net.Conn) *Meter { return &Meter{Conn: c} }

func (m *Meter) Read(p []byte) (int, error) {
	n, err := m.Conn.Read(p)
	atomic.AddInt64(&m.read, int64(n))
	return n, err
}

func (m *Meter) Write(p []byte) (int, error) {
	n, err := m.Conn.Write(p)
	atomic.AddInt64(&m.written, int64(n))
	return n, err
}

// BytesRead returns the total bytes received over the connection so far.
func (m *Meter) BytesRead() int64 { return atomic.LoadInt64(&m.read) }

// BytesWritten returns the total bytes sent over the connection so far.
func (m *Meter) BytesWritten() int64 { return atomic.LoadInt64(&m.written) }
