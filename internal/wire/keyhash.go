package wire

import (
	"bufio"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"

	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
	"pytfhe/internal/tfhe/tgsw"
)

// KeyHash content-addresses a cloud key by streaming a canonical encoding
// through SHA-256 (no buffering of the ~25 MB key). Both the daemon's
// session registry and the cluster handshake use it, so a worker joining a
// coordinator can prove it will evaluate under the same key the clients
// encrypted against.
//
// The encoding hashed here is purpose-built rather than gob: gob assigns
// its wire type IDs process-globally in first-use order, so two processes
// that did different gob work before hashing the same key disagree on the
// byte stream (and therefore the hash). The cluster handshake compares
// hashes computed in three different binaries — client, daemon, worker —
// so the hash must depend on key content alone. Every field is length- or
// presence-prefixed, making the encoding prefix-free across keys.
func KeyHash(ck *boot.CloudKey) (string, error) {
	if ck == nil {
		return "", fmt.Errorf("wire: hash cloud key: nil key")
	}
	h := sha256.New()
	w := bufio.NewWriter(h)
	e := keyHasher{w: w}
	e.str("pytfhe-cloud-key-v1")
	e.params(ck.Params)
	e.u64(uint64(len(ck.BK)))
	for _, s := range ck.BK {
		e.bk(s)
	}
	e.ks(ck.KS)
	// bufio.Writer into sha256.Hash never fails; Flush surfaces nothing.
	if err := w.Flush(); err != nil {
		return "", fmt.Errorf("wire: hash cloud key: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// keyHasher streams primitive values into the hash in fixed-width
// little-endian form. Writes into a sha256 digest cannot fail, so the
// helpers drop bufio's always-nil errors.
type keyHasher struct {
	w *bufio.Writer
}

func (e keyHasher) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.w.Write(b[:])
}

func (e keyHasher) i64(v int) { e.u64(uint64(int64(v))) }

func (e keyHasher) f64(v float64) { e.u64(math.Float64bits(v)) }

func (e keyHasher) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.w.Write(b[:])
}

func (e keyHasher) str(s string) {
	e.i64(len(s))
	e.w.WriteString(s)
}

func (e keyHasher) params(p *params.GateParams) {
	if p == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.str(p.Name)
	e.i64(p.LWEDimension)
	e.f64(p.LWEStdev)
	e.i64(p.PolyDegree)
	e.i64(p.RingCount)
	e.f64(p.TLWEStdev)
	e.i64(p.DecompLevels)
	e.i64(p.DecompBaseLog)
	e.i64(p.KSLevels)
	e.i64(p.KSBaseLog)
}

func (e keyHasher) bk(s *tgsw.FourierSample) {
	if s == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.i64(s.K)
	e.i64(s.Params.Levels)
	e.i64(s.Params.BaseLog)
	e.i64(len(s.Rows))
	for _, row := range s.Rows {
		e.i64(len(row))
		for _, p := range row {
			if p == nil {
				e.u64(0)
				continue
			}
			e.u64(1)
			e.i64(len(p.Re))
			for _, v := range p.Re {
				e.f64(v)
			}
			e.i64(len(p.Im))
			for _, v := range p.Im {
				e.f64(v)
			}
		}
	}
}

func (e keyHasher) ks(k *lwe.SwitchKey) {
	if k == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.i64(k.NIn)
	e.i64(k.NOut)
	e.i64(k.Levels)
	e.i64(k.BaseLog)
	e.i64(len(k.Rows))
	for _, plane := range k.Rows {
		e.i64(len(plane))
		for _, row := range plane {
			e.i64(len(row))
			for _, s := range row {
				e.sample(s)
			}
		}
	}
}

func (e keyHasher) sample(s *lwe.Sample) {
	if s == nil {
		e.u64(0)
		return
	}
	e.u64(1)
	e.i64(len(s.A))
	for _, a := range s.A {
		e.u32(a)
	}
	e.u32(s.B)
	e.f64(s.Variance)
}
