// Package wire centralizes encoding/gob type registration for PyTFHE's
// network protocols. Both TCP protocols in the tree — the cluster
// coordinator↔worker link and the pytfhed client↔daemon link — frame their
// envelopes with gob and ship the same payload types: LWE ciphertexts and
// the cloud evaluation key. Registration used to be implicit and repeated
// per connection path; it now happens exactly once per process, from an
// init() in each protocol package calling Register.
//
// The package also pins the serialized ciphertext size. The paper's Fig. 7
// communication profile charges ≈2.46 KB per ciphertext — (n+1) 4-byte
// torus elements at n = 630 — and the coordinator's BytesSent accounting
// relies on params.CiphertextBytes matching that figure. A regression test
// here keeps both the raw figure and gob's framing overhead honest.
package wire

import (
	"encoding/gob"
	"sync"

	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/tfhe/lwe"
)

var once sync.Once

// Register records every payload type the PyTFHE wire protocols exchange
// with the gob type registry. It is idempotent and safe to call from any
// number of packages; cluster and serve both invoke it from init().
func Register() {
	once.Do(func() {
		gob.Register(&lwe.Sample{})
		gob.Register(&boot.CloudKey{})
		gob.Register(&boot.SecretKey{})
	})
}
