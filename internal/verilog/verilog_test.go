package verilog

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

func halfAdder() *circuit.Netlist {
	b := circuit.NewBuilder("half_adder", circuit.AllOptimizations())
	a := b.Input("A")
	bb := b.Input("B")
	b.Output("Sum", b.Xor(a, bb))
	b.Output("Carry", b.And(a, bb))
	return b.MustBuild()
}

func TestEmitHalfAdder(t *testing.T) {
	src, err := Emit(halfAdder())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"module half_adder", "input A;", "output Sum;", "^", "&", "endmodule"} {
		if !strings.Contains(src, want) {
			t.Errorf("emitted Verilog missing %q:\n%s", want, src)
		}
	}
}

func TestEmitParseRoundTrip(t *testing.T) {
	nl := halfAdder()
	src, err := Emit(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("parse error: %v\nsource:\n%s", err, src)
	}
	if back.Name != "half_adder" || back.NumInputs != 2 || len(back.Outputs) != 2 {
		t.Fatalf("interface mismatch: %v", back)
	}
	for v := 0; v < 4; v++ {
		in := []bool{v&1 != 0, v&2 != 0}
		a, _ := nl.Evaluate(in)
		b, _ := back.Evaluate(in)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("mismatch on %v: %v vs %v", in, a, b)
		}
	}
}

// TestRoundTripAllKinds covers every encodable gate kind through
// emit+parse.
func TestRoundTripAllKinds(t *testing.T) {
	for kind := logic.Kind(0); kind < logic.NumKinds; kind++ {
		b := circuit.NewBuilder("k", circuit.NoOptimizations())
		x := b.Input("x")
		y := b.Input("y")
		b.Output("o", b.Gate(kind, x, y))
		nl := b.MustBuild()
		src, err := Emit(nl)
		if err != nil {
			t.Fatalf("%v: %v", kind, err)
		}
		back, err := Parse(src)
		if err != nil {
			t.Fatalf("%v: parse: %v\n%s", kind, err, src)
		}
		for v := 0; v < 4; v++ {
			in := []bool{v&1 != 0, v&2 != 0}
			a, _ := nl.Evaluate(in)
			bb, _ := back.Evaluate(in)
			if a[0] != bb[0] {
				t.Fatalf("%v differs on %v (src:\n%s)", kind, in, src)
			}
		}
	}
}

func TestRoundTripRandom(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := circuit.NewBuilder("rnd", circuit.NoOptimizations())
		nodes := []circuit.NodeID{b.Input("a"), b.Input("b"), b.Input("c")}
		for i := 0; i < 25; i++ {
			kind := logic.Kind(rng.Intn(logic.NumKinds))
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Gate(kind, x, y))
		}
		b.Output("o", nodes[len(nodes)-1])
		nl := b.MustBuild()
		src, err := Emit(nl)
		if err != nil {
			return false
		}
		back, err := Parse(src)
		if err != nil {
			return false
		}
		for v := 0; v < 8; v++ {
			in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
			x, _ := nl.Evaluate(in)
			y, _ := back.Evaluate(in)
			if x[0] != y[0] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseOutOfOrderAssigns(t *testing.T) {
	src := `
module weird(a, b, o);
  input a;
  input b;
  output o;
  wire t2;
  wire t1;
  assign o = t2;
  assign t2 = t1 | b;
  assign t1 = a & b;
endmodule
`
	nl, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out, err := nl.Evaluate([]bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false {
		t.Fatalf("a&b|b with a=1,b=0 = %v", out[0])
	}
	out, _ = nl.Evaluate([]bool{false, true})
	if !out[0] {
		t.Fatal("a&b|b with b=1 should be true")
	}
}

func TestParseRejectsCycle(t *testing.T) {
	src := `
module cyc(a, o);
  input a;
  output o;
  assign o = x & a;
  assign x = o | a;
endmodule
`
	if _, err := Parse(src); err == nil {
		t.Fatal("combinational cycle not rejected")
	}
}

func TestParseRejectsUndefinedWire(t *testing.T) {
	src := `
module bad(a, o);
  input a;
  output o;
  assign o = a & ghost;
endmodule
`
	if _, err := Parse(src); err == nil {
		t.Fatal("undefined wire not rejected")
	}
}

func TestParseRejectsDoubleAssign(t *testing.T) {
	src := `
module bad(a, o);
  input a;
  output o;
  assign o = a;
  assign o = ~a;
endmodule
`
	if _, err := Parse(src); err == nil {
		t.Fatal("double assignment not rejected")
	}
}

func TestSanitizeNames(t *testing.T) {
	b := circuit.NewBuilder("my design!", circuit.NoOptimizations())
	x := b.Input("x[0]")
	y := b.Input("x[1]")
	b.Output("out[0]", b.And(x, y))
	nl := b.MustBuild()
	src, err := Emit(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	if back.NumInputs != 2 {
		t.Fatalf("inputs lost: %v", back)
	}
}

func TestConstOutputs(t *testing.T) {
	b := circuit.NewBuilder("consts", circuit.AllOptimizations())
	x := b.Input("x")
	b.Output("zero", b.Xor(x, x))
	b.Output("one", b.Xnor(x, x))
	nl := b.MustBuild()
	src, err := Emit(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, src)
	}
	out, _ := back.Evaluate([]bool{true})
	if out[0] != false || out[1] != true {
		t.Fatalf("const outputs = %v", out)
	}
}
