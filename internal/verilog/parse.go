package verilog

import (
	"fmt"
	"strings"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Parse reads a structural Verilog module in the supported subset back into
// a netlist. Assign statements may appear in any order; the parser
// topologically sorts them.
func Parse(src string) (*circuit.Netlist, error) {
	p := &parser{defs: map[string]*assign{}}
	if err := p.scan(src); err != nil {
		return nil, err
	}
	return p.build()
}

type assign struct {
	lhs     string
	rhs     rhsExpr
	visited uint8 // 0 unvisited, 1 in progress, 2 done
	node    circuit.NodeID
}

// rhsExpr is a parsed right-hand side: constant, unary or binary.
type rhsExpr struct {
	isConst bool
	cval    bool
	negAll  bool
	a, b    string // operand identifiers (b empty for unary)
	negA    bool
	negB    bool
	op      byte // '&', '|', '^', or 0 for unary/copy
}

type parser struct {
	moduleName string
	inputs     []string
	outputs    []string
	defs       map[string]*assign
	order      []string // statement order for deterministic output
}

func (p *parser) scan(src string) error {
	// Strip comments, then split into ';'-terminated statements.
	var clean strings.Builder
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		clean.WriteString(line)
		clean.WriteByte('\n')
	}
	text := clean.String()
	if i := strings.Index(text, "endmodule"); i >= 0 {
		text = text[:i]
	} else {
		return fmt.Errorf("verilog: missing endmodule")
	}

	for _, stmt := range strings.Split(text, ";") {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			continue
		}
		switch {
		case strings.HasPrefix(stmt, "module"):
			rest := strings.TrimSpace(strings.TrimPrefix(stmt, "module"))
			if i := strings.IndexByte(rest, '('); i >= 0 {
				p.moduleName = strings.TrimSpace(rest[:i])
			} else {
				p.moduleName = rest
			}
		case strings.HasPrefix(stmt, "input"):
			for _, n := range splitIdents(strings.TrimPrefix(stmt, "input")) {
				p.inputs = append(p.inputs, n)
			}
		case strings.HasPrefix(stmt, "output"):
			for _, n := range splitIdents(strings.TrimPrefix(stmt, "output")) {
				p.outputs = append(p.outputs, n)
			}
		case strings.HasPrefix(stmt, "wire"):
			// Declarations carry no structure we need.
		case strings.HasPrefix(stmt, "assign"):
			if err := p.parseAssign(strings.TrimPrefix(stmt, "assign")); err != nil {
				return err
			}
		default:
			return fmt.Errorf("verilog: unsupported statement %q", stmt)
		}
	}
	if p.moduleName == "" {
		return fmt.Errorf("verilog: missing module header")
	}
	return nil
}

func splitIdents(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part != "" {
			out = append(out, part)
		}
	}
	return out
}

func (p *parser) parseAssign(s string) error {
	eq := strings.IndexByte(s, '=')
	if eq < 0 {
		return fmt.Errorf("verilog: malformed assign %q", s)
	}
	lhs := strings.TrimSpace(s[:eq])
	rhs, err := parseRHS(strings.TrimSpace(s[eq+1:]))
	if err != nil {
		return fmt.Errorf("verilog: assign %s: %w", lhs, err)
	}
	if _, dup := p.defs[lhs]; dup {
		return fmt.Errorf("verilog: %s assigned twice", lhs)
	}
	p.defs[lhs] = &assign{lhs: lhs, rhs: rhs}
	p.order = append(p.order, lhs)
	return nil
}

func parseRHS(s string) (rhsExpr, error) {
	var e rhsExpr
	s = strings.TrimSpace(s)
	if s == "1'b0" || s == "1'b1" {
		e.isConst = true
		e.cval = s == "1'b1"
		return e, nil
	}
	// Whole-expression negation: ~( ... )
	if strings.HasPrefix(s, "~(") && strings.HasSuffix(s, ")") {
		e.negAll = true
		s = strings.TrimSpace(s[2 : len(s)-1])
	}
	// Find a top-level binary operator.
	opIdx := strings.IndexAny(s, "&|^")
	if opIdx < 0 {
		// Unary: optionally negated identifier.
		if strings.HasPrefix(s, "~") {
			e.negA = true
			s = strings.TrimSpace(s[1:])
		}
		if !isIdent(s) {
			return e, fmt.Errorf("bad operand %q", s)
		}
		e.a = s
		return e, nil
	}
	e.op = s[opIdx]
	left := strings.TrimSpace(s[:opIdx])
	right := strings.TrimSpace(s[opIdx+1:])
	if strings.HasPrefix(left, "~") {
		e.negA = true
		left = strings.TrimSpace(left[1:])
	}
	if strings.HasPrefix(right, "~") {
		e.negB = true
		right = strings.TrimSpace(right[1:])
	}
	if !isIdent(left) || !isIdent(right) {
		return e, fmt.Errorf("bad operands %q %q", left, right)
	}
	e.a, e.b = left, right
	return e, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		ok := r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9' && i > 0
		if !ok {
			return false
		}
	}
	return true
}

// kindOf converts a parsed binary expression into a gate kind by
// constructing its truth table.
func (e rhsExpr) kindOf() logic.Kind {
	eval := func(a, b bool) bool {
		x, y := a, b
		if e.negA {
			x = !x
		}
		if e.b == "" {
			if e.negAll {
				return !x
			}
			return x
		}
		if e.negB {
			y = !y
		}
		var v bool
		switch e.op {
		case '&':
			v = x && y
		case '|':
			v = x || y
		case '^':
			v = x != y
		}
		if e.negAll {
			v = !v
		}
		return v
	}
	return logic.FromTruthTable(eval(false, false), eval(false, true), eval(true, false), eval(true, true))
}

func (p *parser) build() (*circuit.Netlist, error) {
	b := circuit.NewBuilder(p.moduleName, circuit.NoOptimizations())
	nodes := map[string]circuit.NodeID{}
	for _, in := range p.inputs {
		nodes[in] = b.Input(in)
	}

	var resolve func(name string) (circuit.NodeID, error)
	resolve = func(name string) (circuit.NodeID, error) {
		if id, ok := nodes[name]; ok {
			return id, nil
		}
		def, ok := p.defs[name]
		if !ok {
			return 0, fmt.Errorf("verilog: undefined wire %q", name)
		}
		switch def.visited {
		case 1:
			return 0, fmt.Errorf("verilog: combinational cycle through %q", name)
		case 2:
			return def.node, nil
		}
		def.visited = 1
		var id circuit.NodeID
		e := def.rhs
		if e.isConst {
			id = b.Const(e.cval)
		} else {
			a, err := resolve(e.a)
			if err != nil {
				return 0, err
			}
			if e.b == "" {
				// Copy or NOT.
				if e.negA != e.negAll { // exactly one negation
					id = b.Not(a)
				} else {
					id = a
				}
			} else {
				bb, err := resolve(e.b)
				if err != nil {
					return 0, err
				}
				id = b.Gate(e.kindOf(), a, bb)
			}
		}
		def.visited = 2
		def.node = id
		nodes[name] = id
		return id, nil
	}

	for _, out := range p.outputs {
		id, err := resolve(out)
		if err != nil {
			return nil, err
		}
		b.Output(out, id)
	}
	return b.Build()
}
