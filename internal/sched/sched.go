// Package sched analyzes gate-DAG schedules and predicts execution time on
// modeled platforms. It implements the wavefront (BFS) schedule of
// Algorithm 1 as a discrete cost simulation: given a netlist and a platform
// (workers per node, node count, per-gate bootstrap cost, task dispatch
// overhead, network parameters), it returns the makespan, the ideal time,
// and the compute/communication/overhead breakdown.
//
// This is how the multi-node and GPU figures are regenerated on a machine
// that has neither a cluster nor a GPU: the single-core bootstrapped-gate
// cost is *measured* on the real TFHE implementation, and the schedule
// around it is simulated. Absolute numbers follow the local calibration;
// the shapes (who wins, where parallelism saturates) follow the schedule.
package sched

import (
	"time"

	"pytfhe/internal/circuit"
)

// CostModel carries the per-operation costs of one platform.
type CostModel struct {
	// GateTime is the single-core cost of one bootstrapped gate.
	GateTime time.Duration
	// FreeGateTime is the cost of a linear gate (NOT/COPY).
	FreeGateTime time.Duration
	// DispatchOverhead is the per-task submission cost (the Ray task
	// overhead in the paper's backend).
	DispatchOverhead time.Duration
	// LevelSync is the per-wavefront barrier cost.
	LevelSync time.Duration
	// CiphertextBytes is the wire size of one LWE ciphertext (2.46 KB at
	// the default parameters).
	CiphertextBytes int
	// NetBandwidth is the inter-node bandwidth in bytes/second; 0 means
	// all workers are local and no gate pays network cost.
	NetBandwidth float64
	// RemoteFraction is the fraction of gate operands that cross a node
	// boundary when Nodes > 1 (operands resident on another node).
	RemoteFraction float64
}

// Platform is a modeled execution target.
type Platform struct {
	Name           string
	Nodes          int
	WorkersPerNode int
	Cost           CostModel
}

// Workers returns the total worker count.
func (p Platform) Workers() int { return p.Nodes * p.WorkersPerNode }

// XeonNode models the paper's CPU platform (Table II: 2× Xeon Gold 5215).
// The paper measures an ideal scaling of 18 workers per node, so that is
// the modeled worker count. gateTime is the calibrated single-core
// bootstrapped-gate cost.
func XeonNode(nodes int, gateTime time.Duration) Platform {
	return Platform{
		Name:           nodeName(nodes),
		Nodes:          nodes,
		WorkersPerNode: 18,
		Cost: CostModel{
			GateTime:         gateTime,
			FreeGateTime:     gateTime / 2000,
			DispatchOverhead: gateTime / 90, // sub-ms Ray task overhead
			LevelSync:        gateTime / 20,
			CiphertextBytes:  2524,
			NetBandwidth:     125e6, // 1 Gbit NIC (Table II)
			RemoteFraction:   0.75,  // 3 of 4 nodes hold remote operands
		},
	}
}

func nodeName(nodes int) string {
	if nodes == 1 {
		return "xeon-1node"
	}
	return "xeon-" + itoa(nodes) + "nodes"
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// LocalPool models the in-process multi-worker executors (backend.Pool and
// backend.Async): workers goroutines on one node sharing memory, so gates
// pay no network cost and dispatch is a channel operation — negligible next
// to a bootstrap. Feeding it a measured gate time makes SimulateAsync's
// makespan directly comparable to backend.Async's wall clock (see the
// calibration test in internal/backend).
func LocalPool(workers int, gateTime time.Duration) Platform {
	if workers < 1 {
		workers = 1
	}
	return Platform{
		Name:           "local-pool",
		Nodes:          1,
		WorkersPerNode: workers,
		Cost: CostModel{
			GateTime:     gateTime,
			FreeGateTime: gateTime / 2000,
		},
	}
}

// SingleCore models the single-threaded CPU backend baseline.
func SingleCore(gateTime time.Duration) Platform {
	return Platform{
		Name:           "single-core",
		Nodes:          1,
		WorkersPerNode: 1,
		Cost: CostModel{
			GateTime:     gateTime,
			FreeGateTime: gateTime / 2000,
		},
	}
}

// Result is the outcome of simulating one netlist on one platform.
type Result struct {
	Platform Platform
	// Makespan is the simulated end-to-end execution time.
	Makespan time.Duration
	// Serial is the single-worker execution time of the same work.
	Serial time.Duration
	// Ideal is Serial divided by the worker count (perfect scaling).
	Ideal time.Duration
	// Compute, Comm, Overhead decompose the makespan.
	Compute  time.Duration
	Comm     time.Duration
	Overhead time.Duration
	// Levels is the number of wavefronts; CriticalPath the bootstrapped
	// depth of the DAG.
	Levels       int
	CriticalPath int
	Bootstraps   int
}

// Speedup returns Serial / Makespan.
func (r Result) Speedup() float64 {
	if r.Makespan <= 0 {
		return 0
	}
	return float64(r.Serial) / float64(r.Makespan)
}

// IdealSpeedup returns the platform's perfect-scaling speedup.
func (r Result) IdealSpeedup() float64 { return float64(r.Platform.Workers()) }

// Efficiency returns Speedup / Workers.
func (r Result) Efficiency() float64 {
	return r.Speedup() / float64(r.Platform.Workers())
}

// Simulate predicts the wavefront execution of nl on p.
func Simulate(nl *circuit.Netlist, p Platform) Result {
	c := p.Cost
	res := Result{
		Platform:     p,
		CriticalPath: nl.Depth(),
	}
	levels := nl.Levels()
	res.Levels = len(levels)
	w := p.Workers()
	if w < 1 {
		w = 1
	}

	// Per-gate communication cost: a gate moves two input ciphertexts in
	// and one result out; when operands live on another node that payload
	// crosses the NIC.
	var commPerGate time.Duration
	if p.Nodes > 1 && c.NetBandwidth > 0 {
		bytes := float64(3 * c.CiphertextBytes)
		commPerGate = time.Duration(bytes / c.NetBandwidth * c.RemoteFraction * float64(time.Second))
	}

	var makespan, compute, comm, overhead, serial time.Duration
	for _, level := range levels {
		boot, free := 0, 0
		for _, gi := range level {
			if nl.Gates[gi].Kind.NeedsBootstrap() {
				boot++
			} else {
				free++
			}
		}
		res.Bootstraps += boot
		serial += time.Duration(boot)*c.GateTime + time.Duration(free)*c.FreeGateTime

		// Tasks this level, distributed over w workers; the level finishes
		// when the most loaded worker finishes.
		waves := (boot + w - 1) / w
		if boot == 0 {
			waves = 0
		}
		lvlCompute := time.Duration(waves) * c.GateTime
		// Free gates ride along on worker 0.
		lvlCompute += time.Duration((free+w-1)/w) * c.FreeGateTime
		// Dispatch: every task submission costs the driver; submissions
		// from a single driver serialize, so it scales with total tasks.
		lvlOverhead := time.Duration(boot+free)*c.DispatchOverhead + c.LevelSync
		lvlComm := time.Duration(waves) * commPerGate

		makespan += lvlCompute + lvlOverhead + lvlComm
		compute += lvlCompute
		comm += lvlComm
		overhead += lvlOverhead
	}
	res.Makespan = makespan
	res.Compute = compute
	res.Comm = comm
	res.Overhead = overhead
	res.Serial = serial
	res.Ideal = serial / time.Duration(w)
	return res
}

// GateThroughput converts a calibrated gate time into gates/second.
func GateThroughput(gateTime time.Duration) float64 {
	if gateTime <= 0 {
		return 0
	}
	return float64(time.Second) / float64(gateTime)
}
