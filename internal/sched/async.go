package sched

import (
	"container/heap"
	"time"

	"pytfhe/internal/circuit"
)

// SimulateAsync models a barrier-free variant of Algorithm 1: instead of
// synchronizing at every wavefront, each gate is dispatched the moment its
// operands are ready, to the earliest-available worker (event-driven list
// scheduling). This is closer to how a task runtime like Ray actually
// drains the DAG and bounds what removing the level barrier can buy
// (BenchmarkAblationLevelBarrier). Dispatch overhead is charged to the
// task's service time.
func SimulateAsync(nl *circuit.Netlist, p Platform) Result {
	c := p.Cost
	w := p.Workers()
	if w < 1 {
		w = 1
	}
	res := Result{Platform: p, CriticalPath: nl.Depth(), Levels: len(nl.Levels())}

	var commPerGate time.Duration
	if p.Nodes > 1 && c.NetBandwidth > 0 {
		bytes := float64(3 * c.CiphertextBytes)
		commPerGate = time.Duration(bytes / c.NetBandwidth * c.RemoteFraction * float64(time.Second))
	}

	// Dependency bookkeeping: children of each node and the number of
	// gate (non-input) operands each gate still waits on.
	nGates := len(nl.Gates)
	children := make([][]int, nl.NumNodes()+1)
	pending := make([]int, nGates)
	for i, g := range nl.Gates {
		for _, in := range [2]circuit.NodeID{g.A, g.B} {
			if nl.GateIndex(in) >= 0 {
				pending[i]++
				children[in] = append(children[in], i)
			}
		}
	}

	ready := &taskHeap{}
	heap.Init(ready)
	for i := range nl.Gates {
		if pending[i] == 0 {
			heap.Push(ready, task{gate: i, ready: 0})
		}
	}

	avail := make(durationHeap, w)
	heap.Init(&avail)

	finish := make([]time.Duration, nl.NumNodes()+1)
	var makespan, serial, compute, comm, overhead time.Duration
	done := 0
	for ready.Len() > 0 {
		t := heap.Pop(ready).(task)
		g := nl.Gates[t.gate]
		cost := c.GateTime
		if !g.Kind.NeedsBootstrap() {
			cost = c.FreeGateTime
		} else {
			res.Bootstraps++
		}
		serial += cost

		start := t.ready
		if avail[0] > start {
			start = avail[0]
		}
		end := start + c.DispatchOverhead + cost + commPerGate
		compute += cost
		comm += commPerGate
		overhead += c.DispatchOverhead
		avail[0] = end
		heap.Fix(&avail, 0)

		id := nl.GateID(t.gate)
		finish[id] = end
		if end > makespan {
			makespan = end
		}
		done++
		for _, child := range children[id] {
			pending[child]--
			if pending[child] == 0 {
				cg := nl.Gates[child]
				r := finish[cg.A]
				if f := finish[cg.B]; f > r {
					r = f
				}
				heap.Push(ready, task{gate: child, ready: r})
			}
		}
	}
	_ = done // == nGates for any valid (acyclic, topologically ordered) netlist
	res.Makespan = makespan
	res.Serial = serial
	res.Ideal = serial / time.Duration(w)
	res.Compute = compute
	res.Comm = comm
	res.Overhead = overhead
	return res
}

type task struct {
	gate  int
	ready time.Duration
}

type taskHeap []task

func (h taskHeap) Len() int { return len(h) }
func (h taskHeap) Less(i, j int) bool {
	if h[i].ready != h[j].ready {
		return h[i].ready < h[j].ready
	}
	return h[i].gate < h[j].gate
}
func (h taskHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *taskHeap) Push(x any)   { *h = append(*h, x.(task)) }
func (h *taskHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

type durationHeap []time.Duration

func (h durationHeap) Len() int           { return len(h) }
func (h durationHeap) Less(i, j int) bool { return h[i] < h[j] }
func (h durationHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *durationHeap) Push(x any)        { *h = append(*h, x.(time.Duration)) }
func (h *durationHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
