package sched

import (
	"math/rand"
	"testing"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// wideNetlist builds a netlist with `width` independent gate chains of
// length `depth` — embarrassingly parallel work.
func wideNetlist(width, depth int) *circuit.Netlist {
	b := circuit.NewBuilder("wide", circuit.NoOptimizations())
	ins := b.Inputs("x", width+1)
	for w := 0; w < width; w++ {
		cur := ins[w]
		for d := 0; d < depth; d++ {
			cur = b.Gate(logic.NAND, cur, ins[w+1])
		}
		b.Output("o", cur)
	}
	return b.MustBuild()
}

// serialNetlist builds one long dependent chain — no parallelism.
func serialNetlist(depth int) *circuit.Netlist {
	b := circuit.NewBuilder("serial", circuit.NoOptimizations())
	a := b.Input("a")
	bb := b.Input("b")
	cur := a
	for i := 0; i < depth; i++ {
		cur = b.Gate(logic.NAND, cur, bb)
	}
	b.Output("o", cur)
	return b.MustBuild()
}

const gt = 10 * time.Millisecond

func TestWideCircuitScalesNearIdeal(t *testing.T) {
	nl := wideNetlist(360, 10) // 20 waves of work per level on 18 workers
	p := XeonNode(1, gt)
	r := Simulate(nl, p)
	if sp := r.Speedup(); sp < 12 || sp > 18 {
		t.Fatalf("wide circuit speedup %f, want near the 18-worker ideal", sp)
	}
	if r.Bootstraps != 3600 {
		t.Fatalf("bootstraps = %d", r.Bootstraps)
	}
}

func TestSerialCircuitDoesNotScale(t *testing.T) {
	nl := serialNetlist(50)
	r := Simulate(nl, XeonNode(1, gt))
	if sp := r.Speedup(); sp > 1.05 {
		t.Fatalf("serial circuit speedup %f, should be ~1", sp)
	}
}

func TestFourNodesBeatOneOnWideWork(t *testing.T) {
	nl := wideNetlist(720, 6)
	r1 := Simulate(nl, XeonNode(1, gt))
	r4 := Simulate(nl, XeonNode(4, gt))
	if r4.Makespan >= r1.Makespan {
		t.Fatalf("4 nodes (%v) should beat 1 node (%v)", r4.Makespan, r1.Makespan)
	}
	// Fig. 10 shape: 4-node speedup below the 72-worker ideal but well
	// above the single node's.
	if sp := r4.Speedup(); sp < r1.Speedup() || sp > 72 {
		t.Fatalf("4-node speedup %f out of range (1-node %f)", sp, r1.Speedup())
	}
}

func TestCommunicationIsSmallFraction(t *testing.T) {
	// Fig. 7: communication ~0.094% of a gate evaluation. Our model keeps
	// it well under 1% of the makespan for multi-node runs.
	nl := wideNetlist(720, 4)
	r := Simulate(nl, XeonNode(4, gt))
	frac := float64(r.Comm) / float64(r.Makespan)
	if frac > 0.01 {
		t.Fatalf("communication fraction %f too high", frac)
	}
	if r.Comm <= 0 {
		t.Fatal("multi-node run should pay some communication")
	}
}

func TestSingleCoreMatchesSerial(t *testing.T) {
	nl := wideNetlist(10, 10)
	r := Simulate(nl, SingleCore(gt))
	if r.Speedup() > 1.01 || r.Speedup() < 0.5 {
		t.Fatalf("single core speedup %f", r.Speedup())
	}
}

func TestFreeGatesAreCheap(t *testing.T) {
	b := circuit.NewBuilder("nots", circuit.NoOptimizations())
	x := b.Input("x")
	cur := x
	for i := 0; i < 1000; i++ {
		cur = b.Not(cur)
	}
	b.Output("o", cur)
	nl := b.MustBuild()
	r := Simulate(nl, SingleCore(gt))
	if r.Makespan > gt {
		t.Fatalf("1000 NOT gates took %v, should be far below one bootstrap", r.Makespan)
	}
}

func TestBreakdownSumsToMakespan(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		nl := wideNetlist(1+rng.Intn(100), 1+rng.Intn(10))
		r := Simulate(nl, XeonNode(1+rng.Intn(4), gt))
		sum := r.Compute + r.Comm + r.Overhead
		if sum != r.Makespan {
			t.Fatalf("breakdown %v != makespan %v", sum, r.Makespan)
		}
	}
}

func TestPlatformNames(t *testing.T) {
	if XeonNode(1, gt).Name != "xeon-1node" {
		t.Error(XeonNode(1, gt).Name)
	}
	if XeonNode(4, gt).Name != "xeon-4nodes" {
		t.Error(XeonNode(4, gt).Name)
	}
	if XeonNode(4, gt).Workers() != 72 {
		t.Error("worker count")
	}
}

func TestGateThroughput(t *testing.T) {
	if got := GateThroughput(10 * time.Millisecond); got != 100 {
		t.Fatalf("throughput = %f", got)
	}
	if GateThroughput(0) != 0 {
		t.Fatal("zero gate time should yield zero throughput")
	}
}

func TestLocalPoolPlatform(t *testing.T) {
	p := LocalPool(4, gt)
	if p.Workers() != 4 || p.Nodes != 1 {
		t.Fatalf("local pool shape: %+v", p)
	}
	if LocalPool(0, gt).Workers() != 1 {
		t.Fatal("worker floor not applied")
	}
	// No network, no dispatch model: a wide workload approaches the ideal.
	nl := wideNetlist(64, 4)
	r := SimulateAsync(nl, p)
	if sp := r.Speedup(); sp < 3.5 || sp > 4.0 {
		t.Fatalf("local-pool async speedup %f, want near the 4-worker ideal", sp)
	}
	if r.Comm != 0 || r.Overhead != 0 {
		t.Fatalf("local pool should pay no comm/dispatch: %+v", r)
	}
}

func TestAsyncNeverSlowerThanLevelSync(t *testing.T) {
	// Removing the barrier can only help (same dispatch model).
	for _, nl := range []*struct {
		name string
		n    func() *circuit.Netlist
	}{
		{"wide", func() *circuit.Netlist { return wideNetlist(100, 5) }},
		{"serial", func() *circuit.Netlist { return serialNetlist(40) }},
	} {
		net := nl.n()
		p := XeonNode(1, gt)
		sync := Simulate(net, p)
		async := SimulateAsync(net, p)
		if async.Makespan > sync.Makespan*11/10 {
			t.Fatalf("%s: async (%v) should not be slower than barriered (%v)", nl.name, async.Makespan, sync.Makespan)
		}
	}
}

func TestAsyncRespectsCriticalPath(t *testing.T) {
	nl := serialNetlist(30)
	r := SimulateAsync(nl, XeonNode(1, gt))
	// A pure chain cannot beat depth * gate time.
	if r.Makespan < 30*gt {
		t.Fatalf("async makespan %v below the critical path %v", r.Makespan, 30*gt)
	}
	if sp := r.Speedup(); sp > 1.1 {
		t.Fatalf("chain speedup %f should be ~1", sp)
	}
}

func TestAsyncUsesAllWorkers(t *testing.T) {
	nl := wideNetlist(180, 4)
	r := SimulateAsync(nl, XeonNode(1, gt))
	if sp := r.Speedup(); sp < 10 {
		t.Fatalf("wide workload async speedup %f, want near 18-worker ideal", sp)
	}
}
