package synth

import (
	"testing"

	"pytfhe/internal/circuit"
)

// xorChain builds the parity of n inputs as a linear chain of 2-input
// XOR gates — the canonical fanout-free cone lut-cluster collapses.
func xorChain(n int) *circuit.Netlist {
	b := circuit.NewBuilder("parity", circuit.NoOptimizations())
	ins := b.Inputs("x", n)
	acc := ins[0]
	for _, x := range ins[1:] {
		acc = b.Xor(acc, x)
	}
	b.Output("p", acc)
	return b.MustBuild()
}

func TestLUTClusterParityChain(t *testing.T) {
	nl := xorChain(8) // 7 XOR gates
	out, err := LUTCluster(nl)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, nl, out)
	st := out.ComputeStats()
	if st.LUTs < 2 {
		t.Fatalf("expected ≥2 LUT gates in clustered parity chain, got %+v", st)
	}
	before := nl.ComputeStats().Bootstrapped
	if st.Bootstrapped >= before {
		t.Fatalf("clustering did not reduce bootstraps: %d -> %d", before, st.Bootstrapped)
	}
	// Parity of 8 collapses 7 XORs into at most 4 bootstraps
	// (three parity-3 LUTs and one XOR).
	if st.Bootstrapped > 4 {
		t.Fatalf("parity-8 chain should need ≤4 bootstraps, got %d", st.Bootstrapped)
	}
}

func TestLUTClusterNandChainCollapses(t *testing.T) {
	// x_{i+1} = NAND(x_i, s): every chain link has 2-variable support
	// {x_0, s}, so the whole chain folds into a single 2-input gate.
	b := circuit.NewBuilder("chain", circuit.NoOptimizations())
	x0, s := b.Input("x0"), b.Input("s")
	acc := x0
	for i := 0; i < 6; i++ {
		acc = b.Nand(acc, s)
	}
	b.Output("o", acc)
	nl := b.MustBuild()

	out, err := LUTCluster(nl)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, nl, out)
	if st := out.ComputeStats(); st.Bootstrapped > 1 {
		t.Fatalf("NAND chain should collapse to ≤1 bootstrap, got %+v", st)
	}
}

func TestLUTClusterSharedNodesStayMaterialized(t *testing.T) {
	// s1 feeds two consumers, so neither may absorb it: it must survive
	// as its own gate and both consumers see it as a variable.
	b := circuit.NewBuilder("shared", circuit.NoOptimizations())
	a, bb, c, d := b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d")
	s1 := b.Xor(a, bb)
	b.Output("o1", b.And(s1, c))
	b.Output("o2", b.Or(s1, d))
	nl := b.MustBuild()

	out, err := LUTCluster(nl)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, nl, out)
	before := nl.ComputeStats().Bootstrapped
	after := out.ComputeStats().Bootstrapped
	if after > before {
		t.Fatalf("clustering increased bootstraps: %d -> %d", before, after)
	}
}

func TestLUTClusterNeverIncreasesBootstraps(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		nl := randomNetlist(seed, 40)
		opt, err := Optimize(nl)
		if err != nil {
			t.Fatal(err)
		}
		out, err := LUTCluster(opt.Netlist)
		if err != nil {
			t.Fatal(err)
		}
		equivalent(t, nl, out)
		before := opt.Netlist.ComputeStats().Bootstrapped
		after := out.ComputeStats().Bootstrapped
		if after > before {
			t.Fatalf("seed %d: clustering increased bootstraps: %d -> %d", seed, before, after)
		}
	}
}

func TestStandardPassesPreserveLUTNetlists(t *testing.T) {
	// A netlist already holding LUT nodes must replay losslessly through
	// every cleanup pass (and through another round of clustering).
	b := circuit.NewBuilder("lutsrc", circuit.AllOptimizations())
	x, y, z, w := b.Input("x"), b.Input("y"), b.Input("z"), b.Input("w")
	maj := b.LUT(0xE8, x, y, z)
	par := b.LUT(0x96, maj, z, w)
	b.Output("m", maj)
	b.Output("p", par)
	nl := b.MustBuild()
	if nl.ComputeStats().LUTs != 2 {
		t.Fatalf("setup: expected 2 LUTs, got %+v", nl.ComputeStats())
	}

	for _, p := range LUTPasses() {
		out, err := p.Run(nl)
		if err != nil {
			t.Fatalf("pass %s: %v", p.Name, err)
		}
		equivalent(t, nl, out)
	}
	out, err := Resynthesize(nl)
	if err != nil {
		t.Fatal(err)
	}
	equivalent(t, nl, out)
}

func TestOptimizeLUTRecordsDeltas(t *testing.T) {
	res, err := OptimizeLUT(xorChain(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Deltas) == 0 {
		t.Fatal("no per-pass deltas recorded")
	}
	sawCluster := false
	for i, d := range res.Deltas {
		if d.Pass == "lut-cluster" {
			sawCluster = true
			if d.LUTsAfter == 0 {
				t.Fatalf("lut-cluster delta reports no LUTs: %+v", d)
			}
		}
		if i > 0 && res.Deltas[i-1].Iteration == d.Iteration {
			if res.Deltas[i-1].GatesAfter != d.GatesBefore {
				t.Fatalf("delta chain broken at %d: %+v -> %+v", i, res.Deltas[i-1], d)
			}
		}
	}
	if !sawCluster {
		t.Fatalf("no lut-cluster delta in %+v", res.Deltas)
	}
	if res.Netlist.ComputeStats().LUTs == 0 {
		t.Fatal("OptimizeLUT produced no LUT gates on a parity chain")
	}
}
