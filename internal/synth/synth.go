// Package synth is the netlist optimization pipeline of PyTFHE — the role
// Yosys plays in the paper's flow. It rewrites gate-level netlists produced
// by any frontend: dead-gate elimination, global common-subexpression
// elimination, inverter absorption (free input negation in the TFHE gate
// alphabet), constant propagation, and a final compaction/renumbering pass
// that restores the sequential index scheme of the binary format.
//
// Each pass is exposed individually so the benchmark harness can ablate
// them; Optimize runs the standard pipeline to a fixed point.
package synth

import (
	"fmt"

	"pytfhe/internal/circuit"
)

// Pass is a single netlist-to-netlist rewrite. Passes must preserve
// functional equivalence.
type Pass struct {
	Name string
	Run  func(*circuit.Netlist) (*circuit.Netlist, error)
}

// StandardPasses returns the default pipeline in application order.
func StandardPasses() []Pass {
	return []Pass{
		{Name: "const-fold", Run: ConstFold},
		{Name: "absorb-not", Run: AbsorbInverters},
		{Name: "cse", Run: CSE},
		{Name: "dce", Run: DeadGateElimination},
	}
}

// LUTPasses returns the standard pipeline with the lut-cluster pass
// appended: cleanup first (const-fold, absorb-not, CSE, DCE), then cone
// clustering into k-input LUTs over the tidied netlist.
func LUTPasses() []Pass {
	return append(StandardPasses(), Pass{Name: "lut-cluster", Run: LUTCluster})
}

// PassDelta records the effect of one pass application on the netlist,
// in pipeline order (Iteration counts fixed-point rounds from zero).
type PassDelta struct {
	Iteration   int
	Pass        string
	GatesBefore int
	GatesAfter  int
	LUTsAfter   int
}

// Result records what a pipeline run did.
type Result struct {
	Netlist    *circuit.Netlist
	Iterations int
	GatesIn    int
	GatesOut   int
	Deltas     []PassDelta // one entry per pass application
}

// Optimize runs the standard pipeline repeatedly until the gate count stops
// improving (or maxIter pipeline iterations, whichever first).
func Optimize(nl *circuit.Netlist) (*Result, error) {
	return OptimizeWith(nl, StandardPasses(), 8)
}

// OptimizeLUT runs the standard pipeline plus lut-cluster to a fixed point.
func OptimizeLUT(nl *circuit.Netlist) (*Result, error) {
	return OptimizeWith(nl, LUTPasses(), 8)
}

// OptimizeWith runs the given passes to a fixed point.
func OptimizeWith(nl *circuit.Netlist, passes []Pass, maxIter int) (*Result, error) {
	res := &Result{Netlist: nl, GatesIn: len(nl.Gates)}
	for iter := 0; iter < maxIter; iter++ {
		before := len(res.Netlist.Gates)
		for _, p := range passes {
			nGatesBefore := len(res.Netlist.Gates)
			out, err := p.Run(res.Netlist)
			if err != nil {
				return nil, fmt.Errorf("synth: pass %s: %w", p.Name, err)
			}
			res.Netlist = out
			luts := 0
			for i := range out.Gates {
				if out.Gates[i].IsLUT() {
					luts++
				}
			}
			res.Deltas = append(res.Deltas, PassDelta{
				Iteration:   iter,
				Pass:        p.Name,
				GatesBefore: nGatesBefore,
				GatesAfter:  len(out.Gates),
				LUTsAfter:   luts,
			})
		}
		res.Iterations++
		if len(res.Netlist.Gates) >= before {
			break
		}
	}
	res.GatesOut = len(res.Netlist.Gates)
	return res, nil
}

// rebuilder replays a netlist through a fresh optimizing or literal builder
// while remapping node ids. It is the shared machinery of all passes.
type rebuilder struct {
	src     *circuit.Netlist
	b       *circuit.Builder
	remap   []circuit.NodeID // old node id -> new node id (or const sentinel)
	inputID []circuit.NodeID
}

func newRebuilder(src *circuit.Netlist, opts circuit.BuilderOptions) *rebuilder {
	r := &rebuilder{
		src:   src,
		b:     circuit.NewBuilder(src.Name, opts),
		remap: make([]circuit.NodeID, src.NumNodes()+1),
	}
	for i := 0; i < src.NumInputs; i++ {
		name := fmt.Sprintf("in[%d]", i)
		if src.InputNames != nil {
			name = src.InputNames[i]
		}
		r.remap[i+1] = r.b.Input(name)
	}
	return r
}

func (r *rebuilder) mapped(id circuit.NodeID) circuit.NodeID {
	if id.IsConst() {
		return id
	}
	return r.remap[id]
}

// replayGate re-emits one source gate through the builder with remapped
// operands; LUT nodes replay through Builder.LUT so every pass preserves
// them (with the builder's own table simplifications applied).
func (r *rebuilder) replayGate(g *circuit.Gate) circuit.NodeID {
	if g.IsLUT() {
		ops := make([]circuit.NodeID, g.NumOperands())
		for k := range ops {
			ops[k] = r.mapped(g.Operand(k))
		}
		return r.b.LUT(g.TT, ops...)
	}
	return r.b.Gate(g.Kind, r.mapped(g.A), r.mapped(g.B))
}

// replayAll replays every gate through the builder (which applies its own
// optimizations) and registers outputs.
func (r *rebuilder) replayAll() (*circuit.Netlist, error) {
	for i := range r.src.Gates {
		id := r.src.GateID(i)
		r.remap[id] = r.replayGate(&r.src.Gates[i])
	}
	r.finishOutputs()
	return r.b.Build()
}

func (r *rebuilder) finishOutputs() {
	for i, out := range r.src.Outputs {
		name := fmt.Sprintf("out[%d]", i)
		if r.src.OutputNames != nil {
			name = r.src.OutputNames[i]
		}
		r.b.Output(name, r.mapped(out))
	}
}

// ConstFold propagates constants through the netlist: any gate whose
// operands are (transitively) constant collapses, and gates with one
// constant operand specialize to cheaper forms.
func ConstFold(nl *circuit.Netlist) (*circuit.Netlist, error) {
	r := newRebuilder(nl, circuit.BuilderOptions{ConstFold: true, SameInput: true})
	return r.replayAll()
}

// CSE performs global common-subexpression elimination with commutative
// normalization: structurally identical gates merge into one.
func CSE(nl *circuit.Netlist) (*circuit.Netlist, error) {
	r := newRebuilder(nl, circuit.BuilderOptions{CSE: true, ConstFold: true, SameInput: true})
	return r.replayAll()
}

// AbsorbInverters rewrites consumers of NOT gates to negate the
// corresponding input in their truth table instead, since input negation is
// free in the TFHE gate alphabet. Orphaned NOT gates are left for DCE.
func AbsorbInverters(nl *circuit.Netlist) (*circuit.Netlist, error) {
	r := newRebuilder(nl, circuit.BuilderOptions{PushNot: true, ConstFold: true, SameInput: true})
	return r.replayAll()
}

// DeadGateElimination removes every gate not transitively reachable from an
// output, then renumbers the survivors into the compact sequential scheme.
func DeadGateElimination(nl *circuit.Netlist) (*circuit.Netlist, error) {
	live := make([]bool, nl.NumNodes()+1)
	var mark func(id circuit.NodeID)
	stack := make([]circuit.NodeID, 0, len(nl.Gates))
	mark = func(id circuit.NodeID) {
		if id <= 0 || live[id] {
			return
		}
		live[id] = true
		stack = append(stack, id)
	}
	for _, out := range nl.Outputs {
		mark(out)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if gi := nl.GateIndex(id); gi >= 0 {
			g := &nl.Gates[gi]
			for k := 0; k < g.NumOperands(); k++ {
				mark(g.Operand(k))
			}
		}
	}

	// Rebuild keeping only live gates, verbatim (no extra rewriting).
	r := newRebuilder(nl, circuit.NoOptimizations())
	for i := range nl.Gates {
		id := nl.GateID(i)
		if !live[id] {
			continue
		}
		r.remap[id] = r.replayGate(&nl.Gates[i])
	}
	r.finishOutputs()
	return r.b.Build()
}
