package synth

import (
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// LUTCluster greedily collapses fanout-free cones of gates into k-input
// LUT nodes (k ≤ logic.MaxLUTArity): every gate is annotated with the
// boolean function its cone computes over at most k live variables, the
// cone of an operand being absorbed only when the operand has exactly one
// consumer (and is not a netlist output), the merged support stays within
// k variables, and — at the full arity — the composed table has a
// single-bootstrap plan (logic.LUTFeasible). Absorbed interior gates are
// never emitted; each surviving root gate is emitted as one LUT over its
// cone's support, so a cone of b bootstrapped gates becomes exactly one
// programmable bootstrap and the pass never increases the bootstrap count.
//
// The pass is meant to run after the cleanup pipeline (const-fold,
// absorb-not, CSE, DCE — see LUTPasses): sharing discovered by CSE keeps
// multi-consumer nodes out of cones, and DCE has already removed the
// orphans that would otherwise inflate fanout counts.
func LUTCluster(nl *circuit.Netlist) (*circuit.Netlist, error) {
	// cone describes the function a node computes over its live support
	// (old-netlist node ids: inputs or non-absorbed gates), with the gate
	// count of the cone for greedy tie-breaking. Constants have an empty
	// support and tt bit 0 as their value; fresh variables are the
	// identity over themselves.
	type cone struct {
		vars  []circuit.NodeID
		tt    logic.TT
		gates int
	}
	freshCone := func(id circuit.NodeID) cone {
		return cone{vars: []circuit.NodeID{id}, tt: 0x2} // identity at arity 1
	}
	constCone := func(id circuit.NodeID) cone {
		if id == circuit.ConstTrue {
			return cone{tt: 0x1}
		}
		return cone{tt: 0x0}
	}

	// Fanout: number of distinct consumers (gates dedup their own operand
	// slots, so unary kinds with A == B count once) plus output references.
	fanout := make([]int, nl.NumNodes()+1)
	isOutput := make([]bool, nl.NumNodes()+1)
	for i := range nl.Gates {
		g := &nl.Gates[i]
		var seen [logic.MaxLUTArity]circuit.NodeID
		ns := 0
		for k := 0; k < g.NumOperands(); k++ {
			op := g.Operand(k)
			if op.IsConst() {
				continue
			}
			dup := false
			for _, s := range seen[:ns] {
				if s == op {
					dup = true
					break
				}
			}
			if !dup {
				seen[ns] = op
				ns++
				fanout[op]++
			}
		}
	}
	for _, out := range nl.Outputs {
		if !out.IsConst() {
			fanout[out]++
			isOutput[out] = true
		}
	}

	ann := make(map[circuit.NodeID]cone, len(nl.Gates))
	absorbed := make([]bool, nl.NumNodes()+1)

	// operandCone returns the cone an operand contributes when absorb is
	// requested (and allowed) or the fresh/const fallback otherwise.
	operandCone := func(id circuit.NodeID, absorb bool) cone {
		if id.IsConst() {
			return constCone(id)
		}
		if absorb && nl.GateIndex(id) >= 0 && fanout[id] == 1 && !isOutput[id] {
			if c, ok := ann[id]; ok {
				return c
			}
		}
		return freshCone(id)
	}

	// evalCone evaluates a cone under assignment v to the merged support
	// (support[j]'s value is bit len(support)-1-j of v, MSB-first).
	evalCone := func(c cone, support []circuit.NodeID, v uint8) bool {
		var idx uint8
		for _, cv := range c.vars {
			idx <<= 1
			for j, s := range support {
				if s == cv {
					idx |= v >> (len(support) - 1 - j) & 1
					break
				}
			}
		}
		return c.tt.Eval(idx)
	}

	for i := range nl.Gates {
		g := &nl.Gates[i]
		oldID := nl.GateID(i)
		nOps := g.NumOperands()

		// Candidate absorption masks, best first: everything, then single
		// operands by descending cone size, then nothing. The first
		// candidate whose merged support fits (and, at full arity, whose
		// table is feasible) wins.
		var masks []uint8
		all := uint8(1<<nOps) - 1
		masks = append(masks, all)
		if nOps == 2 {
			a := operandCone(g.Operand(0), true)
			b := operandCone(g.Operand(1), true)
			if a.gates >= b.gates {
				masks = append(masks, 0b01, 0b10)
			} else {
				masks = append(masks, 0b10, 0b01)
			}
		}
		masks = append(masks, 0)

		var chosen cone
		var chosenMask uint8
		found := false
		for _, mask := range masks {
			ops := make([]cone, nOps)
			var support []circuit.NodeID
			gatesIn := 1
			ok := true
			for k := 0; k < nOps; k++ {
				ops[k] = operandCone(g.Operand(k), mask>>k&1 == 1)
				gatesIn += ops[k].gates
				for _, cv := range ops[k].vars {
					dup := false
					for _, s := range support {
						if s == cv {
							dup = true
							break
						}
					}
					if !dup {
						support = append(support, cv)
					}
				}
				if len(support) > logic.MaxLUTArity {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			var tt logic.TT
			for v := uint8(0); v < 1<<len(support); v++ {
				var vals [logic.MaxLUTArity]bool
				for k := 0; k < nOps; k++ {
					vals[k] = evalCone(ops[k], support, v)
				}
				if g.Eval(vals) {
					tt |= 1 << v
				}
			}
			if len(support) == logic.MaxLUTArity && !logic.LUTFeasible(len(support), tt) {
				continue
			}
			chosen = cone{vars: support, tt: tt, gates: gatesIn}
			chosenMask = mask
			found = true
			break
		}
		if !found {
			// Unreachable: the empty mask always yields the gate's own
			// function over ≤ MaxLUTArity fresh variables, which is
			// feasible by netlist validation.
			return nil, fmt.Errorf("synth: lut-cluster: gate %d has no emit candidate", oldID)
		}
		for k := 0; k < nOps; k++ {
			if chosenMask>>k&1 == 1 {
				op := g.Operand(k)
				if !op.IsConst() && nl.GateIndex(op) >= 0 && fanout[op] == 1 && !isOutput[op] {
					if _, ok := ann[op]; ok {
						absorbed[op] = true
					}
				}
			}
		}
		ann[oldID] = chosen
	}

	// Emit: every non-absorbed gate becomes one LUT over its cone's
	// support (the builder reduces arity ≤ 2 to classic/free gates and
	// folds constants); absorbed interior gates vanish.
	r := newRebuilder(nl, circuit.AllOptimizations())
	for i := range nl.Gates {
		oldID := nl.GateID(i)
		if absorbed[oldID] {
			continue
		}
		c := ann[oldID]
		if len(c.vars) == 0 {
			r.remap[oldID] = r.b.Const(c.tt.Eval(0))
			continue
		}
		ops := make([]circuit.NodeID, len(c.vars))
		for k, v := range c.vars {
			ops[k] = r.mapped(v)
		}
		r.remap[oldID] = r.b.LUT(c.tt, ops...)
	}
	r.finishOutputs()
	out, err := r.b.Build()
	if err != nil {
		return nil, err
	}
	return DeadGateElimination(out)
}
