package synth

import (
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Resynthesize performs cut-size-2 rewriting: for every gate whose
// transitive support (within the window) spans at most two nodes, the
// entire subtree collapses into a single gate with the composed truth
// table. This is the classic local resynthesis that turns an AND/OR/NOT
// expansion like
//
//	OR(AND(a, NOT b), AND(NOT a, b))
//
// back into one XOR gate — the inverse of the Transpiler IR's restricted
// alphabet, and the optimization that makes executing HLS-generated
// netlists on the rich TFHE gate set profitable.
//
// The pass never increases the gate count: rewritten subtree roots become
// single gates and orphaned interior gates fall to the next DCE.
func Resynthesize(nl *circuit.Netlist) (*circuit.Netlist, error) {
	r := newRebuilder(nl, circuit.AllOptimizations())

	// ann[id] holds the local-function annotation of node id (in *new*
	// node-id space): a support of zero, one or two new nodes and the
	// truth table over them. Nodes with wider support act as fresh
	// variables; constants are zero-variable annotations.
	type annotation struct {
		vars [2]circuit.NodeID // unused slots are 0
		tt   logic.Kind
	}
	ann := map[circuit.NodeID]annotation{}

	fresh := func(id circuit.NodeID) annotation {
		return annotation{vars: [2]circuit.NodeID{id, 0}, tt: logic.COPY}
	}
	constAnn := func(id circuit.NodeID) annotation {
		tt := logic.False
		if id == circuit.ConstTrue {
			tt = logic.True
		}
		return annotation{tt: tt}
	}
	for i := 1; i <= nl.NumInputs; i++ {
		newID := r.remap[circuit.NodeID(i)]
		ann[newID] = fresh(newID)
	}

	// evalAnn evaluates an annotation under an assignment to the merged
	// support (s0, s1).
	evalAnn := func(a annotation, s0, s1 circuit.NodeID, v0, v1 bool) bool {
		x := v0
		if a.vars[0] == s1 {
			x = v1
		}
		y := false
		if a.vars[1] != 0 {
			y = v0
			if a.vars[1] == s1 {
				y = v1
			}
		}
		return a.tt.Eval(x, y)
	}

	for i, g := range nl.Gates {
		oldID := nl.GateID(i)
		if g.IsLUT() {
			// Multi-input LUT nodes are opaque to the 2-variable
			// annotation machinery: replay them and let the result act
			// as a fresh variable (LUTCluster is the pass that rewrites
			// cones around LUTs).
			newID := r.replayGate(&nl.Gates[i])
			r.remap[oldID] = newID
			if !newID.IsConst() {
				if _, ok := ann[newID]; !ok {
					ann[newID] = fresh(newID)
				}
			}
			continue
		}
		na := r.mapped(g.A)
		nb := r.mapped(g.B)
		lookup := func(id circuit.NodeID) annotation {
			if id.IsConst() {
				return constAnn(id)
			}
			if a, ok := ann[id]; ok {
				return a
			}
			a := fresh(id)
			ann[id] = a
			return a
		}
		aa := lookup(na)
		ab := lookup(nb)

		// Merge supports.
		var support []circuit.NodeID
		addVar := func(v circuit.NodeID) {
			if v == 0 {
				return
			}
			for _, s := range support {
				if s == v {
					return
				}
			}
			support = append(support, v)
		}
		addVar(aa.vars[0])
		addVar(aa.vars[1])
		addVar(ab.vars[0])
		addVar(ab.vars[1])

		if len(support) > 2 {
			// Too wide: emit the gate as-is; the result is a fresh var.
			newID := r.b.Gate(g.Kind, na, nb)
			r.remap[oldID] = newID
			if !newID.IsConst() {
				if _, ok := ann[newID]; !ok {
					ann[newID] = fresh(newID)
				}
			}
			continue
		}

		var s0, s1 circuit.NodeID
		if len(support) > 0 {
			s0 = support[0]
		}
		if len(support) == 2 {
			s1 = support[1]
		}
		// Compose the truth table of this gate over (s0, s1).
		var tt logic.Kind
		for bitsIdx := 0; bitsIdx < 4; bitsIdx++ {
			v0 := bitsIdx&2 != 0
			v1 := bitsIdx&1 != 0
			if g.Kind.Eval(evalAnn(aa, s0, s1, v0, v1), evalAnn(ab, s0, s1, v0, v1)) {
				tt |= 1 << uint(bitsIdx)
			}
		}
		// Emit a single gate computing tt(s0, s1). The builder folds
		// constants/projections automatically.
		if len(support) == 0 {
			r.remap[oldID] = r.b.Const(tt.ConstValue())
			continue
		}
		operandB := s1
		if operandB == 0 {
			operandB = s0
		}
		newID := r.b.Gate(tt, s0, operandB)
		r.remap[oldID] = newID
		if !newID.IsConst() {
			ann[newID] = annotation{vars: [2]circuit.NodeID{s0, s1}, tt: tt}
			if newID == s0 || newID == s1 {
				// Folded to a projection of an existing node: keep the
				// existing annotation.
				ann[newID] = fresh(newID)
			}
		}
	}
	r.finishOutputs()
	out, err := r.b.Build()
	if err != nil {
		return nil, err
	}
	// Orphaned interior gates are garbage now.
	return DeadGateElimination(out)
}
