package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// randomNetlist builds an unoptimized random DAG with deliberate
// redundancy: duplicated gates, inverter chains, and dead gates.
func randomNetlist(seed int64, nGates int) *circuit.Netlist {
	rng := rand.New(rand.NewSource(seed))
	b := circuit.NewBuilder("rand", circuit.NoOptimizations())
	nodes := []circuit.NodeID{b.Input("a"), b.Input("b"), b.Input("c"), b.Input("d")}
	for i := 0; i < nGates; i++ {
		kind := logic.Kind(rng.Intn(logic.NumKinds))
		x := nodes[rng.Intn(len(nodes))]
		y := nodes[rng.Intn(len(nodes))]
		id := b.Gate(kind, x, y)
		nodes = append(nodes, id)
		if rng.Intn(4) == 0 { // duplicate on purpose
			nodes = append(nodes, b.Gate(kind, x, y))
		}
		if rng.Intn(4) == 0 { // inverter chain
			nodes = append(nodes, b.Not(b.Not(id)))
		}
	}
	b.Output("o0", nodes[len(nodes)-1])
	b.Output("o1", nodes[len(nodes)/2])
	return b.MustBuild()
}

func equivalent(t *testing.T, a, b *circuit.Netlist) {
	t.Helper()
	if a.NumInputs != b.NumInputs || len(a.Outputs) != len(b.Outputs) {
		t.Fatalf("interface mismatch: %v vs %v", a, b)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 64; trial++ {
		in := make([]bool, a.NumInputs)
		for i := range in {
			in[i] = rng.Intn(2) == 1
		}
		oa, err := a.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		ob, err := b.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oa {
			if oa[i] != ob[i] {
				t.Fatalf("output %d differs on input %v", i, in)
			}
		}
	}
}

func TestEachPassPreservesSemantics(t *testing.T) {
	for _, p := range StandardPasses() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			f := func(seed int64) bool {
				nl := randomNetlist(seed, 30)
				out, err := p.Run(nl)
				if err != nil {
					return false
				}
				if err := out.Validate(); err != nil {
					return false
				}
				rng := rand.New(rand.NewSource(seed ^ 0x5a5a))
				for trial := 0; trial < 16; trial++ {
					in := make([]bool, nl.NumInputs)
					for i := range in {
						in[i] = rng.Intn(2) == 1
					}
					a, _ := nl.Evaluate(in)
					b, _ := out.Evaluate(in)
					for i := range a {
						if a[i] != b[i] {
							return false
						}
					}
				}
				return true
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestOptimizeShrinksRedundantNetlists(t *testing.T) {
	nl := randomNetlist(42, 60)
	res, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res.GatesOut >= res.GatesIn {
		t.Fatalf("optimizer did not shrink: %d -> %d", res.GatesIn, res.GatesOut)
	}
	equivalent(t, nl, res.Netlist)
}

func TestDeadGateElimination(t *testing.T) {
	b := circuit.NewBuilder("dead", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	live := b.And(x, y)
	b.Or(x, y)  // dead
	b.Xor(x, y) // dead
	b.Output("o", live)
	nl := b.MustBuild()
	out, err := DeadGateElimination(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 1 {
		t.Fatalf("expected 1 live gate, got %d", len(out.Gates))
	}
	equivalent(t, nl, out)
}

func TestCSEMergesAcrossLayers(t *testing.T) {
	b := circuit.NewBuilder("cse2", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	g1 := b.And(x, y)
	g2 := b.And(x, y) // duplicate
	g3 := b.Or(g1, g2)
	b.Output("o", g3)
	nl := b.MustBuild()
	out, err := CSE(nl)
	if err != nil {
		t.Fatal(err)
	}
	// AND deduplicates and OR(g,g) collapses to g.
	if len(out.Gates) != 1 {
		t.Fatalf("expected 1 gate after CSE, got %d", len(out.Gates))
	}
	equivalent(t, nl, out)
}

func TestAbsorbInverters(t *testing.T) {
	b := circuit.NewBuilder("inv", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	nx := b.Not(x)
	g := b.And(nx, y)
	b.Output("o", g)
	nl := b.MustBuild()
	out, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Netlist.Gates) != 1 {
		t.Fatalf("expected NOT to be absorbed, got %d gates", len(out.Netlist.Gates))
	}
	if out.Netlist.Gates[0].Kind != logic.ANDNY {
		t.Fatalf("expected ANDNY, got %v", out.Netlist.Gates[0].Kind)
	}
	equivalent(t, nl, out.Netlist)
}

func TestOptimizeIsIdempotent(t *testing.T) {
	nl := randomNetlist(7, 50)
	res1, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Optimize(res1.Netlist)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Netlist.Gates) != len(res1.Netlist.Gates) {
		t.Fatalf("second optimize changed gate count %d -> %d", len(res1.Netlist.Gates), len(res2.Netlist.Gates))
	}
}

func TestOptimizePreservesNamedInterface(t *testing.T) {
	b := circuit.NewBuilder("iface", circuit.NoOptimizations())
	x := b.Input("alpha")
	y := b.Input("beta")
	b.Output("gamma", b.And(x, y))
	nl := b.MustBuild()
	res, err := Optimize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Netlist.InputNames[0] != "alpha" || res.Netlist.InputNames[1] != "beta" {
		t.Fatalf("input names lost: %v", res.Netlist.InputNames)
	}
	if res.Netlist.OutputNames[0] != "gamma" {
		t.Fatalf("output names lost: %v", res.Netlist.OutputNames)
	}
}
