package synth

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

func TestResynthesizeCollapsesXORExpansion(t *testing.T) {
	// The Transpiler-style AND/OR/NOT expansion of XOR:
	// OR(AND(a, NOT b), AND(NOT a, b)) — 6 gates — must collapse to 1.
	b := circuit.NewBuilder("xorexp", circuit.NoOptimizations())
	a := b.Input("a")
	bb := b.Input("b")
	na := b.Not(a)
	nb := b.Not(bb)
	left := b.And(a, nb)
	right := b.And(na, bb)
	b.Output("o", b.Or(left, right))
	nl := b.MustBuild()
	if len(nl.Gates) != 5 {
		t.Fatalf("setup: expansion has %d gates", len(nl.Gates))
	}
	out, err := Resynthesize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 1 {
		t.Fatalf("resynthesis left %d gates, want 1", len(out.Gates))
	}
	if out.Gates[0].Kind != logic.XOR {
		t.Fatalf("recovered %v, want XOR", out.Gates[0].Kind)
	}
	equivalent(t, nl, out)
}

func TestResynthesizeCollapsesDeepTwoVariableTrees(t *testing.T) {
	// Any tree over just two variables computes a single 2-input function.
	b := circuit.NewBuilder("deep", circuit.NoOptimizations())
	a := b.Input("a")
	bb := b.Input("b")
	x := a
	for i := 0; i < 10; i++ {
		x = b.Gate(logic.NAND, x, bb)
		x = b.Gate(logic.OR, x, a)
	}
	b.Output("o", x)
	nl := b.MustBuild()
	out, err := Resynthesize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) > 1 {
		t.Fatalf("two-variable tree left %d gates", len(out.Gates))
	}
	equivalent(t, nl, out)
}

func TestResynthesizePreservesWideLogic(t *testing.T) {
	// A genuine 3-input function cannot collapse below 2 gates.
	b := circuit.NewBuilder("wide3", circuit.NoOptimizations())
	a := b.Input("a")
	bb := b.Input("b")
	c := b.Input("c")
	b.Output("o", b.Xor(b.Xor(a, bb), c))
	nl := b.MustBuild()
	out, err := Resynthesize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) != 2 {
		t.Fatalf("3-input parity has %d gates, want 2", len(out.Gates))
	}
	equivalent(t, nl, out)
}

// TestResynthesizeSemanticsRandom is the safety property: random netlists
// keep their function under resynthesis, never growing.
func TestResynthesizeSemanticsRandom(t *testing.T) {
	f := func(seed int64) bool {
		nl := randomNetlist(seed, 40)
		out, err := Resynthesize(nl)
		if err != nil {
			return false
		}
		if len(out.Gates) > len(nl.Gates) {
			return false
		}
		rng := rand.New(rand.NewSource(seed ^ 0x77))
		for trial := 0; trial < 16; trial++ {
			in := make([]bool, nl.NumInputs)
			for i := range in {
				in[i] = rng.Intn(2) == 1
			}
			x, _ := nl.Evaluate(in)
			y, _ := out.Evaluate(in)
			for i := range x {
				if x[i] != y[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResynthesizeShrinksTranspilerStyleAdder(t *testing.T) {
	// Build a ripple adder in the AND/OR/NOT alphabet (as the Transpiler
	// IR would) and check resynthesis recovers a meaningful fraction of
	// the expansion.
	b := circuit.NewBuilder("aon_adder", circuit.NoOptimizations())
	xa := b.Inputs("a", 8)
	xb := b.Inputs("b", 8)
	not := func(x circuit.NodeID) circuit.NodeID { return b.Not(x) }
	xor := func(x, y circuit.NodeID) circuit.NodeID {
		return b.Or(b.And(x, not(y)), b.And(not(x), y))
	}
	carry := b.And(xa[0], xb[0]) // placeholder to have a carry start
	carry = b.And(carry, not(carry))
	for i := 0; i < 8; i++ {
		axb := xor(xa[i], xb[i])
		b.Output("s", xor(axb, carry))
		carry = b.Or(b.And(xa[i], xb[i]), b.And(axb, carry))
	}
	nl := b.MustBuild()
	out, err := Resynthesize(nl)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Gates) >= len(nl.Gates)*3/4 {
		t.Fatalf("resynthesis only got %d -> %d gates", len(nl.Gates), len(out.Gates))
	}
	equivalent(t, nl, out)
	t.Logf("AND/OR/NOT adder: %d -> %d gates", len(nl.Gates), len(out.Gates))
}
