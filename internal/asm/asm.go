// Package asm implements the PyTFHE program binary format of the paper
// (Fig. 5): a sequence of 128-bit instructions — one header, one input
// instruction per primary input, one gate instruction per gate, and one
// output instruction per output — using a sequential gate-indexing scheme
// that supports up to 2^62 gates.
//
// Instruction layout (bit 127 .. bit 0):
//
//	[127:66] field1 (62 bits)   [65:4] field2 (62 bits)   [3:0] gate type
//
//	Header: field1 = 0,          field2 = total gate count, type = 0x0
//	Input:  field1 = all ones,   field2 = all ones,         type = 0xF
//	Gate:   field1 = input0 idx, field2 = input1 idx,       type = truth table
//	Output: field1 = all ones,   field2 = producing index,  type = 0x3
//
// Indices are implicit and sequential: the i-th input instruction reserves
// index i (starting at 1), and the j-th gate instruction receives index
// NumInputs + j. Each 128-bit instruction serializes as 16 little-endian
// bytes, low quadword first.
//
// Multi-input LUT gates extend the format using the type nibble 0x0,
// which the 2-input alphabet wastes on the constant-FALSE gate (Assemble
// rewrites those to the equivalent XOR(x, x), so 0x0 never names a
// classic gate record). A LUT is a two-word record occupying ONE gate
// index:
//
//	LUT lead:      field1 = input0 idx,            field2 = input1 idx,  type = 0x0
//	LUT extension: field1 = input2 idx / all ones, field2 = truth table, type = arity
//
// The extension word immediately follows its lead; its type nibble holds
// the arity (2..logic.MaxLUTArity), field1 holds the third operand for
// arity 3 and the all-ones marker for arity 2, and field2 holds the truth
// table (bit x₀·2^(k-1)|…|x₍k₋₁₎ = f(x₀..x₍k₋₁₎), at most 2^arity bits).
// The header's gate count stays the count of logical gates, not words.
package asm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Typed decode/encode failures. Callers can classify malformed programs
// with errors.Is; every error returned by Assemble, Inspect, Disassemble
// and Lint wraps one of these sentinels.
var (
	// ErrTruncated: the byte length is not a whole number of instructions.
	ErrTruncated = errors.New("asm: truncated or misaligned program")
	// ErrEmpty: zero instructions (not even a header).
	ErrEmpty = errors.New("asm: empty program")
	// ErrBadHeader: the first instruction is not a valid header.
	ErrBadHeader = errors.New("asm: malformed header instruction")
	// ErrBadLayout: input/gate/output records out of the mandated order.
	ErrBadLayout = errors.New("asm: instruction stream out of order")
	// ErrGateCount: the header's gate count disagrees with the stream.
	ErrGateCount = errors.New("asm: header gate count mismatch")
	// ErrIndexSpace: the program needs indices past the 62-bit limit.
	ErrIndexSpace = errors.New("asm: program exceeds the 2^62 index space")
	// ErrMalformed: the decoded program violates netlist invariants
	// (dangling references, forward references, bad ports).
	ErrMalformed = errors.New("asm: decoded program is malformed")
	// ErrLUTTruncated: a LUT lead record without its extension word.
	ErrLUTTruncated = errors.New("asm: LUT record missing its truth-table extension word")
	// ErrLUTArity: a LUT extension with arity outside [2, logic.MaxLUTArity]
	// or whose third-operand field disagrees with the declared arity.
	ErrLUTArity = errors.New("asm: LUT extension word declares an invalid arity")
	// ErrLUTTable: a LUT truth table wider than 2^arity bits.
	ErrLUTTable = errors.New("asm: LUT truth table wider than 2^arity bits")
)

// InstructionSize is the size of one encoded instruction in bytes.
const InstructionSize = 16

// MaxIndex is the largest encodable node index (2^62 - 2; the all-ones
// value is the input/output marker).
const MaxIndex = allOnes62 - 1

const allOnes62 = uint64(1)<<62 - 1

// Instruction is one decoded 128-bit PyTFHE instruction.
type Instruction struct {
	F1, F2 uint64 // 62-bit fields
	Type   uint8  // 4-bit gate type
}

// Kind classifies an instruction within a program stream.
type Kind uint8

// Instruction kinds.
const (
	KindHeader Kind = iota
	KindInput
	KindGate
	KindOutput
)

func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Classify determines the instruction kind from its markers. The header is
// positional (first instruction) and cannot be distinguished by content
// alone, so Classify never returns KindHeader.
func (in Instruction) Classify() Kind {
	if in.F1 == allOnes62 {
		if in.Type == 0xF && in.F2 == allOnes62 {
			return KindInput
		}
		return KindOutput
	}
	return KindGate
}

// encode packs the instruction into dst[0:16].
func (in Instruction) encode(dst []byte) {
	lo := in.F2<<4 | uint64(in.Type&0xF)
	hi := in.F1<<2 | in.F2>>60
	binary.LittleEndian.PutUint64(dst[0:8], lo)
	binary.LittleEndian.PutUint64(dst[8:16], hi)
}

// decode unpacks an instruction from src[0:16].
func decode(src []byte) Instruction {
	lo := binary.LittleEndian.Uint64(src[0:8])
	hi := binary.LittleEndian.Uint64(src[8:16])
	return Instruction{
		Type: uint8(lo & 0xF),
		F2:   (lo>>4 | hi<<60) & allOnes62,
		F1:   hi >> 2,
	}
}

// Assemble encodes a netlist as a PyTFHE program binary. Constant outputs
// (which the optimizing frontend can produce) are materialized as
// XOR/XNOR(x, x) gates since the format has no immediate operands; this
// requires at least one primary input.
func Assemble(nl *circuit.Netlist) ([]byte, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	gates := nl.Gates
	outputs := nl.Outputs

	// Materialize constant outputs if present.
	var constTrue, constFalse circuit.NodeID
	needsConst := false
	for _, o := range outputs {
		if o.IsConst() {
			needsConst = true
		}
	}
	if needsConst {
		if nl.NumInputs == 0 {
			return nil, fmt.Errorf("asm: netlist %q has constant outputs but no inputs to anchor them", nl.Name)
		}
		gates = append([]circuit.Gate(nil), gates...)
		outputs = append([]circuit.NodeID(nil), outputs...)
		for i, o := range outputs {
			switch o {
			case circuit.ConstTrue:
				if constTrue == 0 {
					gates = append(gates, circuit.Gate{Kind: logic.XNOR, A: 1, B: 1})
					constTrue = circuit.NodeID(nl.NumInputs + len(gates))
				}
				outputs[i] = constTrue
			case circuit.ConstFalse:
				if constFalse == 0 {
					gates = append(gates, circuit.Gate{Kind: logic.XOR, A: 1, B: 1})
					constFalse = circuit.NodeID(nl.NumInputs + len(gates))
				}
				outputs[i] = constFalse
			}
		}
	}

	if uint64(nl.NumInputs)+uint64(len(gates)) > MaxIndex {
		return nil, fmt.Errorf("%w: %d inputs + %d gates", ErrIndexSpace, nl.NumInputs, len(gates))
	}

	luts := 0
	for i := range gates {
		if gates[i].IsLUT() {
			luts++
		}
	}

	n := 1 + nl.NumInputs + len(gates) + luts + len(outputs)
	buf := make([]byte, n*InstructionSize)
	pos := 0
	put := func(in Instruction) {
		in.encode(buf[pos : pos+InstructionSize])
		pos += InstructionSize
	}

	put(Instruction{F1: 0, F2: uint64(len(gates)), Type: 0}) // header
	for i := 0; i < nl.NumInputs; i++ {
		put(Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF})
	}
	for _, g := range gates {
		switch {
		case g.IsLUT():
			put(Instruction{F1: uint64(g.A), F2: uint64(g.B), Type: 0x0})
			third := allOnes62
			if g.Arity >= 3 {
				third = uint64(g.C)
			}
			put(Instruction{F1: third, F2: uint64(g.TT), Type: g.Arity})
		case g.Kind == logic.False:
			// The 0x0 nibble is the LUT lead marker; a constant-FALSE gate
			// is re-encoded as the equivalent XOR(x, x).
			put(Instruction{F1: uint64(g.A), F2: uint64(g.A), Type: uint8(logic.XOR)})
		default:
			put(Instruction{F1: uint64(g.A), F2: uint64(g.B), Type: uint8(g.Kind)})
		}
	}
	for _, o := range outputs {
		put(Instruction{F1: allOnes62, F2: uint64(o), Type: 0x3})
	}
	return buf, nil
}

// decodeLUTExt validates the extension word following a LUT lead and
// returns the decoded (third operand, table, arity). The third operand is
// 0 for arity-2 LUTs.
func decodeLUTExt(ext Instruction, at int) (circuit.NodeID, logic.TT, uint8, error) {
	arity := int(ext.Type)
	switch {
	case ext.F1 == allOnes62 && ext.Type == 0x3:
		// An output record where the extension should be: the lead was the
		// last word of the gate section.
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: output record where the extension word belongs", ErrLUTTruncated, at)
	case ext.F1 == allOnes62 && ext.F2 == allOnes62 && ext.Type == 0xF:
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: input record where the extension word belongs", ErrLUTTruncated, at)
	case arity < 2 || arity > logic.MaxLUTArity:
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: arity %d outside [2, %d]", ErrLUTArity, at, arity, logic.MaxLUTArity)
	case arity == 2 && ext.F1 != allOnes62:
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: arity-2 LUT carries a third operand (%d)", ErrLUTArity, at, ext.F1)
	case arity >= 3 && ext.F1 == allOnes62:
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: arity-%d LUT lacks its third operand", ErrLUTArity, at, arity)
	case ext.F2 > uint64(logic.TTMask(arity)):
		return 0, 0, 0, fmt.Errorf("%w: instruction %d: table %#x exceeds the %d-bit mask of arity %d", ErrLUTTable, at, ext.F2, 1<<arity, arity)
	}
	var third circuit.NodeID
	if arity >= 3 {
		third = circuit.NodeID(ext.F1)
	}
	return third, logic.TT(ext.F2), uint8(arity), nil
}

// Info summarizes a program binary without fully decoding it.
type Info struct {
	Instructions int
	Inputs       int
	Gates        int // logical gates (a LUT pair counts once)
	LUTs         int // multi-input LUT records among Gates
	Outputs      int
}

// Inspect validates the framing of a program binary and returns counts.
func Inspect(bin []byte) (Info, error) {
	var info Info
	if len(bin)%InstructionSize != 0 {
		return info, fmt.Errorf("%w: %d bytes is not a multiple of %d", ErrTruncated, len(bin), InstructionSize)
	}
	n := len(bin) / InstructionSize
	if n == 0 {
		return info, ErrEmpty
	}
	info.Instructions = n
	header := decode(bin[:InstructionSize])
	if header.F1 != 0 || header.Type != 0 {
		return info, fmt.Errorf("%w: F1=%d type=%#x", ErrBadHeader, header.F1, header.Type)
	}
	declaredGates := header.F2

	i := 1
	for ; i < n; i++ {
		if decode(bin[i*InstructionSize:]).Classify() != KindInput {
			break
		}
		info.Inputs++
	}
	for ; i < n; i++ {
		inst := decode(bin[i*InstructionSize:])
		if inst.Classify() != KindGate {
			break
		}
		info.Gates++
		if inst.Type == 0x0 {
			// LUT lead: consume and validate the extension word.
			if i+1 >= n {
				return info, fmt.Errorf("%w: instruction %d ends the program", ErrLUTTruncated, i)
			}
			ext := decode(bin[(i+1)*InstructionSize:])
			if _, _, _, err := decodeLUTExt(ext, i+1); err != nil {
				return info, err
			}
			info.LUTs++
			i++
		}
	}
	for ; i < n; i++ {
		inst := decode(bin[i*InstructionSize:])
		if inst.Classify() != KindOutput {
			return info, fmt.Errorf("%w: instruction %d: expected output instruction, got %v", ErrBadLayout, i, inst.Classify())
		}
		info.Outputs++
	}
	if uint64(info.Gates) != declaredGates {
		return info, fmt.Errorf("%w: header declares %d gates, found %d", ErrGateCount, declaredGates, info.Gates)
	}
	return info, nil
}

// Disassemble decodes a program binary back into a netlist. Port names are
// synthesized (in[i], out[i]) since the format does not carry them.
func Disassemble(bin []byte) (*circuit.Netlist, error) {
	info, err := Inspect(bin)
	if err != nil {
		return nil, err
	}
	nl := &circuit.Netlist{
		Name:        "disassembled",
		NumInputs:   info.Inputs,
		Gates:       make([]circuit.Gate, 0, info.Gates),
		Outputs:     make([]circuit.NodeID, 0, info.Outputs),
		InputNames:  make([]string, info.Inputs),
		OutputNames: make([]string, info.Outputs),
	}
	for i := range nl.InputNames {
		nl.InputNames[i] = fmt.Sprintf("in[%d]", i)
	}
	for i := range nl.OutputNames {
		nl.OutputNames[i] = fmt.Sprintf("out[%d]", i)
	}
	at := 1 + info.Inputs
	for g := 0; g < info.Gates; g++ {
		inst := decode(bin[at*InstructionSize:])
		at++
		if inst.Type == 0x0 {
			// Inspect already validated the extension word.
			ext := decode(bin[at*InstructionSize:])
			at++
			third, tt, arity, err := decodeLUTExt(ext, at-1)
			if err != nil {
				return nil, err
			}
			nl.Gates = append(nl.Gates, circuit.Gate{
				A: circuit.NodeID(inst.F1), B: circuit.NodeID(inst.F2), C: third,
				TT: tt, Arity: arity,
			})
			continue
		}
		nl.Gates = append(nl.Gates, circuit.Gate{
			Kind: logic.Kind(inst.Type),
			A:    circuit.NodeID(inst.F1),
			B:    circuit.NodeID(inst.F2),
		})
	}
	for i := 0; i < info.Outputs; i++ {
		inst := decode(bin[(at+i)*InstructionSize:])
		nl.Outputs = append(nl.Outputs, circuit.NodeID(inst.F2))
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return nl, nil
}

// Listing renders a human-readable disassembly, one instruction per line.
func Listing(bin []byte) (string, error) {
	info, err := Inspect(bin)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("header  gates=%d\n", info.Gates)
	idx := 1
	for i := 1; i < info.Instructions; i++ {
		inst := decode(bin[i*InstructionSize:])
		switch inst.Classify() {
		case KindInput:
			out += fmt.Sprintf("input   #%d\n", idx)
			idx++
		case KindGate:
			if inst.Type == 0x0 {
				ext := decode(bin[(i+1)*InstructionSize:])
				third, tt, arity, err := decodeLUTExt(ext, i+1)
				if err != nil {
					return "", err
				}
				if arity >= 3 {
					out += fmt.Sprintf("lut%d    #%d = %#x(%d, %d, %d)\n", arity, idx, uint8(tt), inst.F1, inst.F2, third)
				} else {
					out += fmt.Sprintf("lut%d    #%d = %#x(%d, %d)\n", arity, idx, uint8(tt), inst.F1, inst.F2)
				}
				i++
			} else {
				out += fmt.Sprintf("gate    #%d = %s(%d, %d)\n", idx, logic.Kind(inst.Type), inst.F1, inst.F2)
			}
			idx++
		case KindOutput:
			out += fmt.Sprintf("output  <- #%d\n", inst.F2)
		}
	}
	return out, nil
}
