// Package asm implements the PyTFHE program binary format of the paper
// (Fig. 5): a sequence of 128-bit instructions — one header, one input
// instruction per primary input, one gate instruction per gate, and one
// output instruction per output — using a sequential gate-indexing scheme
// that supports up to 2^62 gates.
//
// Instruction layout (bit 127 .. bit 0):
//
//	[127:66] field1 (62 bits)   [65:4] field2 (62 bits)   [3:0] gate type
//
//	Header: field1 = 0,          field2 = total gate count, type = 0x0
//	Input:  field1 = all ones,   field2 = all ones,         type = 0xF
//	Gate:   field1 = input0 idx, field2 = input1 idx,       type = truth table
//	Output: field1 = all ones,   field2 = producing index,  type = 0x3
//
// Indices are implicit and sequential: the i-th input instruction reserves
// index i (starting at 1), and the j-th gate instruction receives index
// NumInputs + j. Each 128-bit instruction serializes as 16 little-endian
// bytes, low quadword first.
package asm

import (
	"encoding/binary"
	"errors"
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Typed decode/encode failures. Callers can classify malformed programs
// with errors.Is; every error returned by Assemble, Inspect, Disassemble
// and Lint wraps one of these sentinels.
var (
	// ErrTruncated: the byte length is not a whole number of instructions.
	ErrTruncated = errors.New("asm: truncated or misaligned program")
	// ErrEmpty: zero instructions (not even a header).
	ErrEmpty = errors.New("asm: empty program")
	// ErrBadHeader: the first instruction is not a valid header.
	ErrBadHeader = errors.New("asm: malformed header instruction")
	// ErrBadLayout: input/gate/output records out of the mandated order.
	ErrBadLayout = errors.New("asm: instruction stream out of order")
	// ErrGateCount: the header's gate count disagrees with the stream.
	ErrGateCount = errors.New("asm: header gate count mismatch")
	// ErrIndexSpace: the program needs indices past the 62-bit limit.
	ErrIndexSpace = errors.New("asm: program exceeds the 2^62 index space")
	// ErrMalformed: the decoded program violates netlist invariants
	// (dangling references, forward references, bad ports).
	ErrMalformed = errors.New("asm: decoded program is malformed")
)

// InstructionSize is the size of one encoded instruction in bytes.
const InstructionSize = 16

// MaxIndex is the largest encodable node index (2^62 - 2; the all-ones
// value is the input/output marker).
const MaxIndex = allOnes62 - 1

const allOnes62 = uint64(1)<<62 - 1

// Instruction is one decoded 128-bit PyTFHE instruction.
type Instruction struct {
	F1, F2 uint64 // 62-bit fields
	Type   uint8  // 4-bit gate type
}

// Kind classifies an instruction within a program stream.
type Kind uint8

// Instruction kinds.
const (
	KindHeader Kind = iota
	KindInput
	KindGate
	KindOutput
)

func (k Kind) String() string {
	switch k {
	case KindHeader:
		return "header"
	case KindInput:
		return "input"
	case KindGate:
		return "gate"
	case KindOutput:
		return "output"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Classify determines the instruction kind from its markers. The header is
// positional (first instruction) and cannot be distinguished by content
// alone, so Classify never returns KindHeader.
func (in Instruction) Classify() Kind {
	if in.F1 == allOnes62 {
		if in.Type == 0xF && in.F2 == allOnes62 {
			return KindInput
		}
		return KindOutput
	}
	return KindGate
}

// encode packs the instruction into dst[0:16].
func (in Instruction) encode(dst []byte) {
	lo := in.F2<<4 | uint64(in.Type&0xF)
	hi := in.F1<<2 | in.F2>>60
	binary.LittleEndian.PutUint64(dst[0:8], lo)
	binary.LittleEndian.PutUint64(dst[8:16], hi)
}

// decode unpacks an instruction from src[0:16].
func decode(src []byte) Instruction {
	lo := binary.LittleEndian.Uint64(src[0:8])
	hi := binary.LittleEndian.Uint64(src[8:16])
	return Instruction{
		Type: uint8(lo & 0xF),
		F2:   (lo>>4 | hi<<60) & allOnes62,
		F1:   hi >> 2,
	}
}

// Assemble encodes a netlist as a PyTFHE program binary. Constant outputs
// (which the optimizing frontend can produce) are materialized as
// XOR/XNOR(x, x) gates since the format has no immediate operands; this
// requires at least one primary input.
func Assemble(nl *circuit.Netlist) ([]byte, error) {
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	gates := nl.Gates
	outputs := nl.Outputs

	// Materialize constant outputs if present.
	var constTrue, constFalse circuit.NodeID
	needsConst := false
	for _, o := range outputs {
		if o.IsConst() {
			needsConst = true
		}
	}
	if needsConst {
		if nl.NumInputs == 0 {
			return nil, fmt.Errorf("asm: netlist %q has constant outputs but no inputs to anchor them", nl.Name)
		}
		gates = append([]circuit.Gate(nil), gates...)
		outputs = append([]circuit.NodeID(nil), outputs...)
		for i, o := range outputs {
			switch o {
			case circuit.ConstTrue:
				if constTrue == 0 {
					gates = append(gates, circuit.Gate{Kind: logic.XNOR, A: 1, B: 1})
					constTrue = circuit.NodeID(nl.NumInputs + len(gates))
				}
				outputs[i] = constTrue
			case circuit.ConstFalse:
				if constFalse == 0 {
					gates = append(gates, circuit.Gate{Kind: logic.XOR, A: 1, B: 1})
					constFalse = circuit.NodeID(nl.NumInputs + len(gates))
				}
				outputs[i] = constFalse
			}
		}
	}

	if uint64(nl.NumInputs)+uint64(len(gates)) > MaxIndex {
		return nil, fmt.Errorf("%w: %d inputs + %d gates", ErrIndexSpace, nl.NumInputs, len(gates))
	}

	n := 1 + nl.NumInputs + len(gates) + len(outputs)
	buf := make([]byte, n*InstructionSize)
	pos := 0
	put := func(in Instruction) {
		in.encode(buf[pos : pos+InstructionSize])
		pos += InstructionSize
	}

	put(Instruction{F1: 0, F2: uint64(len(gates)), Type: 0}) // header
	for i := 0; i < nl.NumInputs; i++ {
		put(Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF})
	}
	for _, g := range gates {
		put(Instruction{F1: uint64(g.A), F2: uint64(g.B), Type: uint8(g.Kind)})
	}
	for _, o := range outputs {
		put(Instruction{F1: allOnes62, F2: uint64(o), Type: 0x3})
	}
	return buf, nil
}

// Info summarizes a program binary without fully decoding it.
type Info struct {
	Instructions int
	Inputs       int
	Gates        int
	Outputs      int
}

// Inspect validates the framing of a program binary and returns counts.
func Inspect(bin []byte) (Info, error) {
	var info Info
	if len(bin)%InstructionSize != 0 {
		return info, fmt.Errorf("%w: %d bytes is not a multiple of %d", ErrTruncated, len(bin), InstructionSize)
	}
	n := len(bin) / InstructionSize
	if n == 0 {
		return info, ErrEmpty
	}
	info.Instructions = n
	header := decode(bin[:InstructionSize])
	if header.F1 != 0 || header.Type != 0 {
		return info, fmt.Errorf("%w: F1=%d type=%#x", ErrBadHeader, header.F1, header.Type)
	}
	declaredGates := header.F2

	i := 1
	for ; i < n; i++ {
		if decode(bin[i*InstructionSize:]).Classify() != KindInput {
			break
		}
		info.Inputs++
	}
	for ; i < n; i++ {
		inst := decode(bin[i*InstructionSize:])
		if inst.Classify() != KindGate {
			break
		}
		info.Gates++
	}
	for ; i < n; i++ {
		inst := decode(bin[i*InstructionSize:])
		if inst.Classify() != KindOutput {
			return info, fmt.Errorf("%w: instruction %d: expected output instruction, got %v", ErrBadLayout, i, inst.Classify())
		}
		info.Outputs++
	}
	if uint64(info.Gates) != declaredGates {
		return info, fmt.Errorf("%w: header declares %d gates, found %d", ErrGateCount, declaredGates, info.Gates)
	}
	return info, nil
}

// Disassemble decodes a program binary back into a netlist. Port names are
// synthesized (in[i], out[i]) since the format does not carry them.
func Disassemble(bin []byte) (*circuit.Netlist, error) {
	info, err := Inspect(bin)
	if err != nil {
		return nil, err
	}
	nl := &circuit.Netlist{
		Name:        "disassembled",
		NumInputs:   info.Inputs,
		Gates:       make([]circuit.Gate, 0, info.Gates),
		Outputs:     make([]circuit.NodeID, 0, info.Outputs),
		InputNames:  make([]string, info.Inputs),
		OutputNames: make([]string, info.Outputs),
	}
	for i := range nl.InputNames {
		nl.InputNames[i] = fmt.Sprintf("in[%d]", i)
	}
	for i := range nl.OutputNames {
		nl.OutputNames[i] = fmt.Sprintf("out[%d]", i)
	}
	base := 1 + info.Inputs
	for i := 0; i < info.Gates; i++ {
		inst := decode(bin[(base+i)*InstructionSize:])
		nl.Gates = append(nl.Gates, circuit.Gate{
			Kind: logic.Kind(inst.Type),
			A:    circuit.NodeID(inst.F1),
			B:    circuit.NodeID(inst.F2),
		})
	}
	base += info.Gates
	for i := 0; i < info.Outputs; i++ {
		inst := decode(bin[(base+i)*InstructionSize:])
		nl.Outputs = append(nl.Outputs, circuit.NodeID(inst.F2))
	}
	if err := nl.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return nl, nil
}

// Listing renders a human-readable disassembly, one instruction per line.
func Listing(bin []byte) (string, error) {
	info, err := Inspect(bin)
	if err != nil {
		return "", err
	}
	out := fmt.Sprintf("header  gates=%d\n", info.Gates)
	idx := 1
	for i := 1; i < info.Instructions; i++ {
		inst := decode(bin[i*InstructionSize:])
		switch inst.Classify() {
		case KindInput:
			out += fmt.Sprintf("input   #%d\n", idx)
			idx++
		case KindGate:
			out += fmt.Sprintf("gate    #%d = %s(%d, %d)\n", idx, logic.Kind(inst.Type), inst.F1, inst.F2)
			idx++
		case KindOutput:
			out += fmt.Sprintf("output  <- #%d\n", inst.F2)
		}
	}
	return out, nil
}
