package asm

import (
	"errors"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// TestInspectTypedErrors pins the sentinel each class of malformed input
// maps to, so callers can rely on errors.Is across refactors.
func TestInspectTypedErrors(t *testing.T) {
	good, err := Assemble(halfAdder(t))
	if err != nil {
		t.Fatal(err)
	}

	truncated := good[:len(good)-5]
	if _, err := Inspect(truncated); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncated header: got %v, want ErrTruncated", err)
	}

	if _, err := Inspect([]byte{}); !errors.Is(err, ErrEmpty) {
		t.Errorf("empty: got %v, want ErrEmpty", err)
	}

	badHeader := append([]byte(nil), good...)
	badHeader[15] = 0x80 // nonzero F1 in the header
	if _, err := Inspect(badHeader); !errors.Is(err, ErrBadHeader) {
		t.Errorf("bad header: got %v, want ErrBadHeader", err)
	}

	outOfOrder := craft(
		Instruction{F1: 0, F2: 1, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: 1, F2: 1, Type: 8},
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
		Instruction{F1: 1, F2: 1, Type: 8}, // gate after the output section
	)
	if _, err := Inspect(outOfOrder); !errors.Is(err, ErrBadLayout) {
		t.Errorf("out of order: got %v, want ErrBadLayout", err)
	}

	countLie := craft(
		Instruction{F1: 0, F2: 7, Type: 0}, // declares 7 gates
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: 1, F2: 1, Type: 8},
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	if _, err := Inspect(countLie); !errors.Is(err, ErrGateCount) {
		t.Errorf("gate-count lie: got %v, want ErrGateCount", err)
	}
}

// TestDisassembleTypedErrors: decodable framing but a malformed graph.
func TestDisassembleTypedErrors(t *testing.T) {
	dangling := craft(
		Instruction{F1: 0, F2: 1, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: MaxIndex, F2: 1, Type: 8}, // reads an index near 2^62
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	if _, err := Disassemble(dangling); !errors.Is(err, ErrMalformed) {
		t.Errorf("dangling 2^62-scale reference: got %v, want ErrMalformed", err)
	}
}

// TestAssembleIndexSpace: a netlist that would need indices past the
// 62-bit limit is refused before any buffer is sized.
func TestAssembleIndexSpace(t *testing.T) {
	nl := &circuit.Netlist{
		Name:      "huge",
		NumInputs: int(MaxIndex), // indices 1..2^62-2 consumed by inputs
		Gates:     []circuit.Gate{{Kind: logic.AND, A: 1, B: 2}},
		Outputs:   []circuit.NodeID{circuit.NodeID(MaxIndex) + 1},
	}
	if _, err := Assemble(nl); !errors.Is(err, ErrIndexSpace) {
		t.Errorf("index-space overflow: got %v, want ErrIndexSpace", err)
	}
}

// FuzzInspect throws arbitrary bytes at the three decoders. Nothing may
// panic, and a program that Lint passes without error-severity findings
// must also survive the strict Disassemble path.
func FuzzInspect(f *testing.F) {
	good, err := Assemble(halfAdderForFuzz())
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add([]byte{})
	f.Add(good[:len(good)-5])                        // truncated
	f.Add(craft(Instruction{F1: 1, F2: 0, Type: 0})) // bad header
	f.Add(craft(Instruction{F1: 0, F2: 9, Type: 0})) // gate-count lie
	f.Add(craft(                                     // cyclic
		Instruction{F1: 0, F2: 2, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: 3, F2: 1, Type: 8},
		Instruction{F1: 2, F2: 1, Type: 14},
		Instruction{F1: allOnes62, F2: 3, Type: 0x3},
	))
	f.Add(craft( // marker with unknown nibble
		Instruction{F1: 0, F2: 0, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: allOnes62, F2: 1, Type: 0x7},
	))
	f.Add(craft( // gate reading the top of the index space
		Instruction{F1: 0, F2: 1, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: MaxIndex, F2: MaxIndex, Type: 8},
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	))
	lutGood, err := Assemble(lutAdder(f))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(lutGood)                                                 // well-formed LUT program
	f.Add(lutGood[:len(lutGood)-3*InstructionSize])                // LUT lead ends the stream
	f.Add(lutProgram(func(in []Instruction) { in[5].Type = 0 }))   // arity 0
	f.Add(lutProgram(func(in []Instruction) { in[5].Type = 0x9 })) // arity over max
	f.Add(lutProgram(func(in []Instruction) { in[5].F2 = 0x100 })) // wide table
	f.Add(lutProgram(func(in []Instruction) { in[5].F2 = 0x80 }))  // infeasible AND3

	f.Fuzz(func(t *testing.T, bin []byte) {
		Inspect(bin)
		Disassemble(bin)
		rep := Lint(bin)
		if rep.Err() == nil {
			if _, err := Disassemble(bin); err != nil {
				t.Fatalf("Lint passed but Disassemble failed: %v", err)
			}
		}
	})
}

// halfAdderForFuzz rebuilds the half adder without a *testing.T, for use
// as a fuzz seed.
func halfAdderForFuzz() *circuit.Netlist {
	b := circuit.NewBuilder("half-adder", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	b.Output("s", b.Xor(x, y))
	b.Output("c", b.And(x, y))
	return b.MustBuild()
}
