package asm

import (
	"testing"

	"pytfhe/internal/circuit"
)

// craft hand-assembles a binary from raw instructions, bypassing every
// Assemble-side invariant — the attacker's view of the format.
func craft(insts ...Instruction) []byte {
	buf := make([]byte, 0, len(insts)*InstructionSize)
	var b [InstructionSize]byte
	for _, in := range insts {
		in.encode(b[:])
		buf = append(buf, b[:]...)
	}
	return buf
}

func lintCodes(t *testing.T, bin []byte) map[string]int {
	t.Helper()
	codes := map[string]int{}
	for _, d := range Lint(bin).Diags {
		codes[d.Code]++
	}
	return codes
}

func TestLintCleanBinary(t *testing.T) {
	bin, err := Assemble(halfAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	rep := Lint(bin)
	if err := rep.Err(); err != nil {
		t.Fatalf("clean binary flagged: %v\n%s", err, rep)
	}
	if len(rep.Diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", rep.Diags)
	}
	if rep.Inputs != 2 || rep.Gates != 2 || rep.Outputs != 2 {
		t.Fatalf("structure report wrong: %+v", rep)
	}
}

// TestLintRejectsCyclicBinary: gates 2 and 3 read each other. Disassemble
// refuses such a stream outright (topological order); Lint must name the
// cycle with its own diagnostic code.
func TestLintRejectsCyclicBinary(t *testing.T) {
	bin := craft(
		Instruction{F1: 0, F2: 2, Type: 0},                   // header: 2 gates
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF}, // input 1
		Instruction{F1: 3, F2: 1, Type: 8},                   // gate 2 = AND(3, 1)
		Instruction{F1: 2, F2: 1, Type: 14},                  // gate 3 = OR(2, 1)
		Instruction{F1: allOnes62, F2: 3, Type: 0x3},         // output <- 3
	)
	codes := lintCodes(t, bin)
	if codes[circuit.CodeCycle] == 0 {
		t.Fatalf("cycle not detected: %v", Lint(bin).Diags)
	}
	if codes[circuit.CodeUndrivenWire] != 0 || codes[circuit.CodeBadGateType] != 0 {
		t.Fatalf("cyclic binary produced unrelated diagnostics: %v", codes)
	}
	if Lint(bin).Err() == nil {
		t.Fatal("cyclic binary must be an error")
	}
}

// TestLintRejectsUndrivenWire: a gate operand past the last defined node.
func TestLintRejectsUndrivenWire(t *testing.T) {
	bin := craft(
		Instruction{F1: 0, F2: 1, Type: 0},                   // header: 1 gate
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF}, // input 1
		Instruction{F1: 9, F2: 1, Type: 8},                   // gate 2 = AND(9, 1); node 9 undriven
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	codes := lintCodes(t, bin)
	if codes[circuit.CodeUndrivenWire] == 0 {
		t.Fatalf("undriven wire not detected: %v", Lint(bin).Diags)
	}
	if codes[circuit.CodeCycle] != 0 || codes[circuit.CodeBadGateType] != 0 {
		t.Fatalf("undriven-wire binary produced unrelated diagnostics: %v", codes)
	}
	if Lint(bin).Err() == nil {
		t.Fatal("undriven wire must be an error")
	}
}

// TestLintRejectsUnknownTypeNibble: a marker record (F1 all-ones) whose
// type nibble is neither the input marker 0xF nor the output marker 0x3.
func TestLintRejectsUnknownTypeNibble(t *testing.T) {
	bin := craft(
		Instruction{F1: 0, F2: 1, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: 1, F2: 1, Type: 8},           // gate 2 = AND(1, 1)
		Instruction{F1: allOnes62, F2: 2, Type: 0x7}, // marker with bogus nibble
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	codes := lintCodes(t, bin)
	if codes[circuit.CodeBadGateType] == 0 {
		t.Fatalf("unknown type nibble not detected: %v", Lint(bin).Diags)
	}
	if codes[circuit.CodeCycle] != 0 || codes[circuit.CodeUndrivenWire] != 0 {
		t.Fatalf("bad-nibble binary produced unrelated diagnostics: %v", codes)
	}
	if Lint(bin).Err() == nil {
		t.Fatal("unknown type nibble must be an error")
	}
}

// TestLintDuplicateOutputRecords: two output records exporting the same
// node — legal to execute, so a warning, not an error.
func TestLintDuplicateOutputRecords(t *testing.T) {
	bin := craft(
		Instruction{F1: 0, F2: 1, Type: 0},
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
		Instruction{F1: 1, F2: 1, Type: 6}, // gate 2 = XOR(1, 1)
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	rep := Lint(bin)
	codes := lintCodes(t, bin)
	if codes[circuit.CodeDupOutput] != 1 {
		t.Fatalf("duplicate output not detected: %v", rep.Diags)
	}
	if rep.Err() != nil {
		t.Fatalf("duplicate outputs must stay a warning: %v", rep.Err())
	}
}

// TestLintBinaryFraming: truncation, emptiness and header corruption get
// binary-level codes and short-circuit the graph analysis.
func TestLintBinaryFraming(t *testing.T) {
	bin, err := Assemble(halfAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if c := lintCodes(t, bin[:len(bin)-3]); c[CodeTruncated] != 1 {
		t.Fatalf("truncation: %v", c)
	}
	if c := lintCodes(t, nil); c[CodeEmpty] != 1 {
		t.Fatalf("empty: %v", c)
	}
	bad := append([]byte(nil), bin...)
	bad[15] = 0xFF // high bits of the header's F1
	if c := lintCodes(t, bad); c[CodeBadHeader] != 1 {
		t.Fatalf("bad header: %v", c)
	}
}

// TestLintLayoutAndCount: misplaced records and a lying header are
// reported but do not stop the graph analysis behind them.
func TestLintLayoutAndCount(t *testing.T) {
	bin := craft(
		Instruction{F1: 0, F2: 3, Type: 0},                   // header lies: declares 3 gates
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF}, // input 1
		Instruction{F1: 1, F2: 1, Type: 8},                   // gate 2
		Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF}, // input after gates
		Instruction{F1: allOnes62, F2: 2, Type: 0x3},
	)
	codes := lintCodes(t, bin)
	if codes[CodeBadLayout] != 1 {
		t.Fatalf("misplaced input not detected: %v", Lint(bin).Diags)
	}
	if codes[CodeGateCount] != 1 {
		t.Fatalf("gate-count lie not detected: %v", Lint(bin).Diags)
	}
	if Lint(bin).Err() == nil {
		t.Fatal("layout violations must be errors")
	}
}
