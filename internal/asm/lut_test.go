package asm

import (
	"errors"
	"strings"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// lutAdder builds a full adder through the LUT builder: sum = parity,
// carry = majority — two arity-3 LUT gates instead of five 2-input gates.
func lutAdder(t testing.TB) *circuit.Netlist {
	b := circuit.NewBuilder("lut_adder", circuit.AllOptimizations())
	a := b.Input("a")
	x := b.Input("b")
	c := b.Input("cin")
	b.Output("sum", b.LUT(0x96, a, x, c))
	b.Output("cout", b.LUT(0xE8, a, x, c))
	return b.MustBuild()
}

func TestLUTBinaryLayout(t *testing.T) {
	bin, err := Assemble(lutAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	// header + 3 inputs + 2 LUTs × 2 words + 2 outputs = 10 instructions.
	if len(bin) != 10*InstructionSize {
		t.Fatalf("binary is %d words, want 10", len(bin)/InstructionSize)
	}
	header := decode(bin[:InstructionSize])
	if header.F2 != 2 {
		t.Fatalf("header declares %d gates, want 2 logical gates", header.F2)
	}
	lead := decode(bin[4*InstructionSize:])
	ext := decode(bin[5*InstructionSize:])
	if lead.Type != 0x0 || lead.F1 != 1 || lead.F2 != 2 {
		t.Fatalf("LUT lead = %+v", lead)
	}
	if ext.Type != 3 || ext.F1 != 3 || ext.F2 != 0x96 {
		t.Fatalf("LUT extension = %+v", ext)
	}

	info, err := Inspect(bin)
	if err != nil {
		t.Fatal(err)
	}
	if info.Gates != 2 || info.LUTs != 2 || info.Inputs != 3 || info.Outputs != 2 {
		t.Fatalf("info = %+v", info)
	}
}

func TestLUTRoundTrip(t *testing.T) {
	nl := lutAdder(t)
	bin, err := Assemble(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Gates) != len(nl.Gates) {
		t.Fatalf("gate count %d, want %d", len(back.Gates), len(nl.Gates))
	}
	for i, g := range nl.Gates {
		if back.Gates[i] != g {
			t.Fatalf("gate %d: %+v vs %+v", i, back.Gates[i], g)
		}
	}
	for v := 0; v < 8; v++ {
		in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
		want, _ := nl.Evaluate(in)
		got, _ := back.Evaluate(in)
		if want[0] != got[0] || want[1] != got[1] {
			t.Fatalf("outputs differ on %v", in)
		}
	}
}

func TestLUTListing(t *testing.T) {
	bin, _ := Assemble(lutAdder(t))
	text, err := Listing(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "lut3    #4 = 0x96(1, 2, 3)") {
		t.Fatalf("listing missing the LUT line:\n%s", text)
	}
}

// TestFalseGateReencoded: the 0x0 nibble now marks LUT leads, so a
// residual constant-FALSE gate assembles as the equivalent XOR(x, x).
func TestFalseGateReencoded(t *testing.T) {
	nl := &circuit.Netlist{
		Name:      "false-gate",
		NumInputs: 1,
		Gates:     []circuit.Gate{{Kind: logic.False, A: 1, B: 1}},
		Outputs:   []circuit.NodeID{2},
	}
	bin, err := Assemble(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.Gates[0].Kind != logic.XOR {
		t.Fatalf("FALSE gate re-encoded as %v, want XOR", back.Gates[0].Kind)
	}
	for _, v := range []bool{false, true} {
		out, _ := back.Evaluate([]bool{v})
		if out[0] {
			t.Fatalf("constant-false program output true on input %v", v)
		}
	}
}

// lutProgram hand-crafts: header, 3 inputs, one LUT (lead + ext), output.
// The mut callback can corrupt the instruction slice before encoding.
func lutProgram(mut func(insts []Instruction)) []byte {
	insts := []Instruction{
		{F1: 0, F2: 1, Type: 0},                   // header: 1 gate
		{F1: allOnes62, F2: allOnes62, Type: 0xF}, // inputs 1..3
		{F1: allOnes62, F2: allOnes62, Type: 0xF},
		{F1: allOnes62, F2: allOnes62, Type: 0xF},
		{F1: 1, F2: 2, Type: 0x0},    // LUT lead
		{F1: 3, F2: 0xE8, Type: 0x3}, // extension: arity 3, majority
		{F1: allOnes62, F2: 4, Type: 0x3},
	}
	if mut != nil {
		mut(insts)
	}
	return craft(insts...)
}

func TestLUTMalformed(t *testing.T) {
	if _, err := Inspect(lutProgram(nil)); err != nil {
		t.Fatalf("well-formed LUT program rejected: %v", err)
	}

	cases := []struct {
		name string
		mut  func([]Instruction)
		bin  []byte
		want error
	}{
		{name: "arity-0", mut: func(in []Instruction) { in[5].Type = 0 }, want: ErrLUTArity},
		{name: "arity-1", mut: func(in []Instruction) { in[5].Type = 1 }, want: ErrLUTArity},
		{name: "arity-over-max", mut: func(in []Instruction) { in[5].Type = 0x9 }, want: ErrLUTArity},
		{name: "arity-2-with-third-operand", mut: func(in []Instruction) { in[5].Type = 2 }, want: ErrLUTArity},
		{name: "arity-3-missing-operand", mut: func(in []Instruction) { in[5].F1 = allOnes62 }, want: ErrLUTTruncated},
		{name: "wide-table-arity-2", mut: func(in []Instruction) {
			in[5].Type = 2
			in[5].F1 = allOnes62
			in[5].F2 = 0x1F0 // 9 bits into a 4-bit table
		}, want: ErrLUTTable},
		{name: "wide-table-arity-3", mut: func(in []Instruction) { in[5].F2 = 0x100 }, want: ErrLUTTable},
		// Splicing out the extension makes the output record follow the lead.
		{name: "truncated-before-output", bin: craft(
			Instruction{F1: 0, F2: 1, Type: 0},
			Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
			Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
			Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF},
			Instruction{F1: 1, F2: 2, Type: 0x0},
			Instruction{F1: allOnes62, F2: 4, Type: 0x3},
		), want: ErrLUTTruncated},
		{name: "lead-ends-program", bin: lutProgram(nil)[:5*InstructionSize], want: ErrLUTTruncated},
	}
	for _, c := range cases {
		bin := c.bin
		if bin == nil {
			bin = lutProgram(c.mut)
		}
		if _, err := Inspect(bin); !errors.Is(err, c.want) {
			t.Errorf("%s: Inspect err %v, want %v", c.name, err, c.want)
		}
		if _, err := Disassemble(bin); err == nil {
			t.Errorf("%s: Disassemble accepted a malformed LUT program", c.name)
		}
		if rep := Lint(bin); rep.Err() == nil {
			t.Errorf("%s: Lint found no errors", c.name)
		}
	}

	// Note: in[5].F1 = allOnes62 with Type 0x3 is indistinguishable from a
	// missing extension followed by an output record, hence ErrLUTTruncated
	// above rather than ErrLUTArity.

	// An infeasible table decodes structurally but fails netlist
	// validation (and circuit lint) — AND3 has no single-bootstrap plan.
	infeasible := lutProgram(func(in []Instruction) { in[5].F2 = 0x80 })
	if _, err := Inspect(infeasible); err != nil {
		t.Fatalf("Inspect rejects framing-valid infeasible table: %v", err)
	}
	if _, err := Disassemble(infeasible); !errors.Is(err, ErrMalformed) {
		t.Errorf("infeasible table: Disassemble err %v, want ErrMalformed", err)
	}
	rep := Lint(infeasible)
	found := false
	for _, d := range rep.Diags {
		if d.Code == circuit.CodeInfeasibleLUT {
			found = true
		}
	}
	if !found {
		t.Errorf("Lint missed infeasible-lut; diags: %v", rep.Diags)
	}
}

// TestLintLUTTolerance: the tolerant linter reports LUT defects with
// stable codes instead of bailing at the first framing error.
func TestLintLUTTolerance(t *testing.T) {
	cases := []struct {
		name string
		bin  []byte
		code string
	}{
		{"bad-arity", lutProgram(func(in []Instruction) { in[5].Type = 0x9 }), circuit.CodeBadLUTArity},
		{"wide-table", lutProgram(func(in []Instruction) { in[5].F2 = 0x100 }), circuit.CodeWideLUTTable},
		{"truncated", lutProgram(nil)[:5*InstructionSize], CodeLUTTruncated},
	}
	for _, c := range cases {
		rep := Lint(c.bin)
		found := false
		for _, d := range rep.Diags {
			if d.Code == c.code {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: code %s not reported; diags: %v", c.name, c.code, rep.Diags)
		}
	}
}
