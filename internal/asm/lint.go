package asm

import (
	"errors"
	"fmt"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// Binary-level diagnostic codes, complementing the graph-level codes of
// internal/circuit.
const (
	CodeTruncated    = "truncated"     // byte length not a whole instruction count
	CodeEmpty        = "empty"         // no instructions at all
	CodeBadHeader    = "bad-header"    // first instruction is not a header
	CodeBadLayout    = "bad-layout"    // input/gate/output records out of order
	CodeGateCount    = "gate-count"    // header gate count disagrees with stream
	CodeLUTTruncated = "lut-truncated" // LUT lead without its extension word
)

// Lint statically verifies a program binary without executing it — the
// pre-flight check before committing a cluster to a multi-hour FHE run.
// Unlike Inspect/Disassemble, which stop at the first framing violation,
// Lint is tolerant: it decodes as much structure as it can, reports every
// binary-level defect (truncation, bad header, out-of-order records,
// header/stream gate-count disagreement), then hands the recovered gate
// graph to circuit.Lint for cycle, wiring, gate-type, output and dead-code
// analysis plus the depth/fan-out report.
func Lint(bin []byte) *circuit.Report {
	rep := &circuit.Report{Name: "program"}
	diag := func(sev circuit.Severity, code, msg string) {
		rep.Diags = append(rep.Diags, circuit.Diagnostic{Severity: sev, Code: code, Message: msg})
	}

	if len(bin)%InstructionSize != 0 {
		diag(circuit.SevError, CodeTruncated, ErrTruncated.Error())
		return rep
	}
	n := len(bin) / InstructionSize
	if n == 0 {
		diag(circuit.SevError, CodeEmpty, ErrEmpty.Error())
		return rep
	}
	header := decode(bin[:InstructionSize])
	if header.F1 != 0 || header.Type != 0 {
		diag(circuit.SevError, CodeBadHeader, ErrBadHeader.Error())
		return rep
	}

	// Tolerant decode: classify every instruction, note records that break
	// the header/inputs/gates/outputs layout, and recover the gate graph.
	nl := &circuit.Netlist{Name: "program"}
	phase := KindInput
	var binDiags []circuit.Diagnostic
	addBin := func(sev circuit.Severity, code, msg string) {
		binDiags = append(binDiags, circuit.Diagnostic{Severity: sev, Code: code, Message: msg})
	}
	for i := 1; i < n; i++ {
		inst := decode(bin[i*InstructionSize:])
		switch k := inst.Classify(); k {
		case KindInput:
			if phase != KindInput {
				addBin(circuit.SevError, CodeBadLayout,
					fmt.Sprintf("instruction %d: input record after the input section; indices cannot be assigned", i))
				continue
			}
			nl.NumInputs++
		case KindGate:
			if phase == KindOutput {
				addBin(circuit.SevError, CodeBadLayout,
					fmt.Sprintf("instruction %d: gate record after the output section", i))
				continue
			}
			phase = KindGate
			if inst.Type == 0x0 {
				// LUT lead: the next word is its extension, consumed
				// positionally (it may carry marker-looking field values).
				if i+1 >= n {
					addBin(circuit.SevError, CodeLUTTruncated,
						fmt.Sprintf("instruction %d: LUT lead ends the program without its extension word", i))
					continue
				}
				ext := decode(bin[(i+1)*InstructionSize:])
				third, tt, arity, err := decodeLUTExt(ext, i+1)
				if err != nil {
					switch {
					case errors.Is(err, ErrLUTTruncated):
						// The following record is a marker, not an
						// extension: report and let it reparse as itself.
						addBin(circuit.SevError, CodeLUTTruncated, err.Error())
					case errors.Is(err, ErrLUTTable):
						addBin(circuit.SevError, circuit.CodeWideLUTTable, err.Error())
						i++
					default:
						addBin(circuit.SevError, circuit.CodeBadLUTArity, err.Error())
						i++
					}
					continue
				}
				i++
				nl.Gates = append(nl.Gates, circuit.Gate{
					A: circuit.NodeID(inst.F1), B: circuit.NodeID(inst.F2), C: third,
					TT: tt, Arity: arity,
				})
				continue
			}
			nl.Gates = append(nl.Gates, circuit.Gate{
				Kind: logic.Kind(inst.Type),
				A:    circuit.NodeID(inst.F1),
				B:    circuit.NodeID(inst.F2),
			})
		case KindOutput:
			// Classify buckets every F1=all-ones record that is not a
			// well-formed input here, so marker records with an unknown
			// type nibble surface as bad gate types.
			if inst.Type != 0x3 {
				addBin(circuit.SevError, circuit.CodeBadGateType,
					fmt.Sprintf("instruction %d: marker record with unknown type nibble %#x (want input 0xF or output 0x3)", i, inst.Type))
				continue
			}
			phase = KindOutput
			nl.Outputs = append(nl.Outputs, circuit.NodeID(inst.F2))
		}
	}
	if uint64(len(nl.Gates)) != header.F2 {
		addBin(circuit.SevError, CodeGateCount,
			fmt.Sprintf("header declares %d gates, stream holds %d", header.F2, len(nl.Gates)))
	}

	rep = circuit.Lint(nl)
	rep.Name = "program"
	rep.Diags = append(binDiags, rep.Diags...)
	return rep
}
