package asm

import (
	"bytes"
	"math/rand"
	"testing"

	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

func halfAdder(t *testing.T) *circuit.Netlist {
	t.Helper()
	b := circuit.NewBuilder("half_adder", circuit.AllOptimizations())
	a := b.Input("A")
	bb := b.Input("B")
	b.Output("Sum", b.Xor(a, bb))
	b.Output("Carry", b.And(a, bb))
	return b.MustBuild()
}

// TestHalfAdderBinaryLayout reproduces the paper's Fig. 6: the half adder
// assembles to one header, two inputs, the XOR/AND gates (indices 3 and 4,
// XOR encoded as 0110), and two output instructions referencing them.
func TestHalfAdderBinaryLayout(t *testing.T) {
	bin, err := Assemble(halfAdder(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(bin) != 7*InstructionSize {
		t.Fatalf("binary is %d bytes, want %d", len(bin), 7*InstructionSize)
	}
	insts := make([]Instruction, 7)
	for i := range insts {
		insts[i] = decode(bin[i*InstructionSize:])
	}
	// Header: two gates.
	if insts[0].F1 != 0 || insts[0].F2 != 2 || insts[0].Type != 0 {
		t.Fatalf("header = %+v", insts[0])
	}
	// Two input instructions (indices 1, 2 implicit).
	for i := 1; i <= 2; i++ {
		if insts[i].Classify() != KindInput {
			t.Fatalf("instruction %d should be an input", i)
		}
	}
	// XOR gate (index 3) reading inputs 1 and 2, type 0110 = 6.
	if insts[3].F1 != 1 || insts[3].F2 != 2 || insts[3].Type != 6 {
		t.Fatalf("XOR gate = %+v", insts[3])
	}
	// AND gate (index 4), type 1000 = 8.
	if insts[4].F1 != 1 || insts[4].F2 != 2 || insts[4].Type != 8 {
		t.Fatalf("AND gate = %+v", insts[4])
	}
	// Outputs reference gates 3 (Sum) and 4 (Carry).
	if insts[5].Classify() != KindOutput || insts[5].F2 != 3 {
		t.Fatalf("Sum output = %+v", insts[5])
	}
	if insts[6].Classify() != KindOutput || insts[6].F2 != 4 {
		t.Fatalf("Carry output = %+v", insts[6])
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	nl := halfAdder(t)
	bin, err := Assemble(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumInputs != nl.NumInputs || len(back.Gates) != len(nl.Gates) || len(back.Outputs) != len(nl.Outputs) {
		t.Fatalf("shape mismatch after round trip: %v vs %v", back, nl)
	}
	for i, g := range nl.Gates {
		if back.Gates[i] != g {
			t.Fatalf("gate %d: %+v vs %+v", i, back.Gates[i], g)
		}
	}
	// Functional equivalence on all inputs.
	for v := 0; v < 4; v++ {
		in := []bool{v&1 == 1, v&2 == 2}
		a, _ := nl.Evaluate(in)
		b, _ := back.Evaluate(in)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("outputs differ on %v", in)
		}
	}
}

func TestRoundTripRandomNetlists(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 20; trial++ {
		b := circuit.NewBuilder("rand", circuit.NoOptimizations())
		nodes := []circuit.NodeID{b.Input("a"), b.Input("b"), b.Input("c")}
		for i := 0; i < 50; i++ {
			kind := logic.TFHEGates()[rng.Intn(11)]
			x := nodes[rng.Intn(len(nodes))]
			y := nodes[rng.Intn(len(nodes))]
			nodes = append(nodes, b.Gate(kind, x, y))
		}
		b.Output("o", nodes[len(nodes)-1])
		nl := b.MustBuild()

		bin, err := Assemble(nl)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Disassemble(bin)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 8; v++ {
			in := []bool{v&1 != 0, v&2 != 0, v&4 != 0}
			x, _ := nl.Evaluate(in)
			y, _ := back.Evaluate(in)
			if x[0] != y[0] {
				t.Fatalf("trial %d: outputs differ on %v", trial, in)
			}
		}
	}
}

func TestConstantOutputMaterialization(t *testing.T) {
	b := circuit.NewBuilder("const", circuit.AllOptimizations())
	x := b.Input("x")
	b.Output("zero", b.Xor(x, x)) // folds to ConstFalse
	b.Output("one", b.Xnor(x, x)) // folds to ConstTrue
	b.Output("echo", x)           // plain input output
	nl := b.MustBuild()
	bin, err := Assemble(nl)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Disassemble(bin)
	if err != nil {
		t.Fatal(err)
	}
	out, err := back.Evaluate([]bool{true})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != false || out[1] != true || out[2] != true {
		t.Fatalf("materialized constants evaluated to %v", out)
	}
}

func TestInspect(t *testing.T) {
	bin, _ := Assemble(halfAdder(t))
	info, err := Inspect(bin)
	if err != nil {
		t.Fatal(err)
	}
	if info.Inputs != 2 || info.Gates != 2 || info.Outputs != 2 || info.Instructions != 7 {
		t.Fatalf("info = %+v", info)
	}
}

func TestInspectRejectsCorruption(t *testing.T) {
	bin, _ := Assemble(halfAdder(t))

	// Truncated binary.
	if _, err := Inspect(bin[:len(bin)-3]); err == nil {
		t.Error("truncation not detected")
	}
	// Empty program.
	if _, err := Inspect(nil); err == nil {
		t.Error("empty program not detected")
	}
	// Corrupt header.
	bad := append([]byte(nil), bin...)
	bad[15] = 0xFF // set high bits of F1 in the header
	if _, err := Inspect(bad); err == nil {
		t.Error("corrupt header not detected")
	}
	// Wrong gate count in header.
	bad2 := append([]byte(nil), bin...)
	bad2[0] = 0x30 | bad2[0]&0x0F // header F2 low bits -> 3 gates
	if _, err := Inspect(bad2); err == nil {
		t.Error("gate count mismatch not detected")
	}
}

func TestDisassembleRejectsDanglingReference(t *testing.T) {
	// Hand-craft a program whose gate reads a not-yet-defined index.
	var buf bytes.Buffer
	writeInst := func(in Instruction) {
		var b [16]byte
		in.encode(b[:])
		buf.Write(b[:])
	}
	writeInst(Instruction{F1: 0, F2: 1, Type: 0})                   // header: 1 gate
	writeInst(Instruction{F1: allOnes62, F2: allOnes62, Type: 0xF}) // input 1
	writeInst(Instruction{F1: 5, F2: 1, Type: 8})                   // AND reads node 5 (invalid)
	writeInst(Instruction{F1: allOnes62, F2: 2, Type: 0x3})
	if _, err := Disassemble(buf.Bytes()); err == nil {
		t.Fatal("dangling reference not rejected")
	}
}

func TestEncodeDecodeInstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	for i := 0; i < 1000; i++ {
		in := Instruction{
			F1:   rng.Uint64() & allOnes62,
			F2:   rng.Uint64() & allOnes62,
			Type: uint8(rng.Intn(16)),
		}
		var b [16]byte
		in.encode(b[:])
		if got := decode(b[:]); got != in {
			t.Fatalf("round trip %+v -> %+v", in, got)
		}
	}
}

func TestListing(t *testing.T) {
	bin, _ := Assemble(halfAdder(t))
	text, err := Listing(bin)
	if err != nil {
		t.Fatal(err)
	}
	if text == "" {
		t.Fatal("empty listing")
	}
	for _, want := range []string{"header", "XOR(1, 2)", "AND(1, 2)", "output"} {
		if !bytes.Contains([]byte(text), []byte(want)) {
			t.Errorf("listing missing %q:\n%s", want, text)
		}
	}
}
