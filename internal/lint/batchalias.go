package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// batchAlias guards the batched TFHE entry points (BinaryBatch,
// BootstrapBatch, BootstrapLUTBatch, CMuxRotateBatch) against operand
// aliasing. The batch kernels interleave their per-lane work — forward
// FFTs for every lane, then the shared accumulator sweep, then the inverse
// FFTs — so writing dst[i] while src[j] still points at the same sample
// corrupts lanes that a loop of scalar calls would have handled correctly.
// The scalar path tolerates dst == a (it reads operands before writing);
// the batched path must not, and the kernels only check for nil, not for
// aliasing.
//
// The check is conservative and purely structural: two ciphertext-slice
// arguments (slices of pointers) that derive from the same variable or
// field — directly or through slicing/indexing — may alias and are
// reported. Distinct variables are assumed disjoint, matching how every
// call site in the executors is built (separate kinds/outs/avs/bvs
// staging slices).
type batchAlias struct{}

func (*batchAlias) Name() string { return "batch-alias" }
func (*batchAlias) Doc() string {
	return "batched TFHE call passes ciphertext slices sharing a backing variable"
}

// Match applies everywhere: batch entry points are exported and any layer
// may stage a batch.
func (*batchAlias) Match(string) bool { return true }

// batchMethods are the batched entry points declared under internal/tfhe.
var batchMethods = map[string]bool{
	"BinaryBatch":       true,
	"BootstrapBatch":    true,
	"BootstrapLUTBatch": true,
	"CMuxRotateBatch":   true,
}

func (a *batchAlias) Check(m *Module, pkg *Package) []Finding {
	var findings []Finding
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !batchMethods[sel.Sel.Name] {
				return true
			}
			if !typeFromPackage(pkg.Info.TypeOf(sel.X), "internal/tfhe") {
				return true
			}
			findings = append(findings, a.checkCall(m, pkg, call, sel.Sel.Name)...)
			return true
		})
	}
	return findings
}

// checkCall compares every pair of ciphertext-slice arguments of one
// batched call and reports pairs rooted in the same object.
func (a *batchAlias) checkCall(m *Module, pkg *Package, call *ast.CallExpr, method string) []Finding {
	type sliceArg struct {
		pos  int
		root types.Object
	}
	var args []sliceArg
	for i, arg := range call.Args {
		if !isPointerSlice(pkg.Info.TypeOf(arg)) {
			continue
		}
		if root := sliceRoot(pkg, arg); root != nil {
			args = append(args, sliceArg{pos: i, root: root})
		}
	}
	var findings []Finding
	for i := 0; i < len(args); i++ {
		for j := i + 1; j < len(args); j++ {
			if args[i].root != args[j].root {
				continue
			}
			findings = append(findings, Finding{
				Analyzer: a.Name(),
				Pos:      m.Fset.Position(call.Args[args[j].pos].Pos()),
				Message: fmt.Sprintf(
					"%s arguments %d and %d may alias: both derive from %s — batched kernels interleave lanes and need disjoint operand/output slices",
					method, args[i].pos, args[j].pos, args[i].root.Name()),
			})
		}
	}
	return findings
}

// isPointerSlice reports whether t is a slice of pointers — the shape of
// every ciphertext batch ([]*lwe.Sample, []*gate.Ciphertext, ...).
func isPointerSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	_, ok = s.Elem().Underlying().(*types.Pointer)
	return ok
}

// sliceRoot resolves a batch argument to the object backing it: slicing
// and indexing are unwrapped (outs[lo:hi] roots at outs), then a plain
// identifier resolves to its variable and a selector to its field. Other
// shapes (fresh composite literals, call results) root nowhere and are
// assumed disjoint.
func sliceRoot(pkg *Package, e ast.Expr) types.Object {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := pkg.Info.ObjectOf(x).(*types.Var); ok {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			if selection, ok := pkg.Info.Selections[x]; ok {
				return selection.Obj()
			}
			if v, ok := pkg.Info.ObjectOf(x.Sel).(*types.Var); ok {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}
