package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

func loadFixture(t *testing.T) *Module {
	t.Helper()
	m, err := LoadModule(filepath.Join("testdata", "badmod"))
	if err != nil {
		t.Fatalf("loading fixture module: %v", err)
	}
	return m
}

func findingsFor(findings []Finding, analyzer string) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Analyzer == analyzer {
			out = append(out, f)
		}
	}
	return out
}

func TestFixtureModuleLoads(t *testing.T) {
	m := loadFixture(t)
	if m.Path != "badmod" {
		t.Fatalf("module path = %q, want badmod", m.Path)
	}
	for _, want := range []string{
		"badmod/internal/tfhe",
		"badmod/internal/mathutil",
		"badmod/internal/backend",
		"badmod/internal/plan",
		"badmod/internal/exec",
		"badmod/internal/shard",
		"badmod/internal/daemon",
	} {
		if m.Packages[want] == nil {
			t.Errorf("package %s not loaded", want)
		}
	}
}

func TestInsecureRandFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "insecure-rand")
	if len(got) != 2 {
		t.Fatalf("insecure-rand findings = %d, want 2 (direct + transitive):\n%v", len(got), got)
	}
	var files []string
	for _, f := range got {
		files = append(files, filepath.Base(f.Pos.Filename))
	}
	sort := strings.Join(files, ",")
	if !strings.Contains(sort, "engine.go") || !strings.Contains(sort, "mathutil.go") {
		t.Fatalf("findings in %v, want engine.go (direct) and mathutil.go (transitive)", files)
	}
}

func TestDiscardedErrorFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "discarded-error")
	if len(got) != 3 {
		t.Fatalf("discarded-error findings = %d, want 3 (the fourth is suppressed):\n%v", len(got), got)
	}
	wantSubstrings := []string{"doWork", "assigned to _", "doTwo"}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range got {
			if strings.Contains(f.Message, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("no finding mentioning %q:\n%v", want, got)
		}
	}
}

func TestLockedBootstrapFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "locked-bootstrap")
	if len(got) != 1 {
		t.Fatalf("locked-bootstrap findings = %d, want 1 (post-unlock call is clean):\n%v", len(got), got)
	}
	if !strings.Contains(got[0].Message, "LockedEval") || !strings.Contains(got[0].Message, "Binary") {
		t.Fatalf("unexpected message: %s", got[0].Message)
	}
}

func TestLeakedCiphertextFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "leaked-ciphertext")
	if len(got) != 3 {
		t.Fatalf("leaked-ciphertext findings = %d, want 3 (pool + arena + Memory; the balanced counterparts are clean):\n%v", len(got), got)
	}
	var files []string
	for _, f := range got {
		if !strings.Contains(f.Message, "out") {
			t.Fatalf("unexpected message: %s", f.Message)
		}
		files = append(files, filepath.Base(f.Pos.Filename))
	}
	joined := strings.Join(files, ",")
	if !strings.Contains(joined, "exec.go") || !strings.Contains(joined, "replay.go") || !strings.Contains(joined, "memory.go") {
		t.Fatalf("findings in %v, want exec.go (ciphertextPool), replay.go (arena), and memory.go (exec.Memory)", files)
	}
}

func TestUnsyncedExecStateFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "unsynced-exec-state")
	if len(got) != 6 {
		t.Fatalf("unsynced-exec-state findings = %d, want 6 (4 layering + 2 goroutine captures):\n%v", len(got), got)
	}
	var daemon, spawn int
	for _, f := range got {
		switch filepath.Base(f.Pos.Filename) {
		case "daemon.go":
			daemon++
			if !strings.Contains(f.Message, "executor layers") {
				t.Errorf("layering finding missing rationale: %s", f.Message)
			}
		case "spawn.go":
			spawn++
			if !strings.Contains(f.Message, "captured") {
				t.Errorf("capture finding missing rationale: %s", f.Message)
			}
		default:
			t.Errorf("finding in unexpected file: %v", f)
		}
	}
	if daemon != 4 || spawn != 2 {
		t.Fatalf("findings split daemon=%d spawn=%d, want 4/2 (SpawnOwned and SpawnRemoteOwned must stay clean):\n%v", daemon, spawn, got)
	}
}

func TestBatchAliasFindings(t *testing.T) {
	m := loadFixture(t)
	got := findingsFor(Run(m, Analyzers()), "batch-alias")
	if len(got) != 2 {
		t.Fatalf("batch-alias findings = %d, want 2 (DisjointBatch must stay clean):\n%v", len(got), got)
	}
	for _, f := range got {
		if filepath.Base(f.Pos.Filename) != "batch.go" {
			t.Errorf("finding in unexpected file: %v", f)
		}
		if !strings.Contains(f.Message, "may alias") || !strings.Contains(f.Message, "outs") {
			t.Errorf("unexpected message: %s", f.Message)
		}
	}
}

// TestIgnoreDirectiveRequiresReason: a bare //lint:ignore without analyzer
// and reason is itself reported.
func TestIgnoreDirectiveSuppresses(t *testing.T) {
	m := loadFixture(t)
	for _, f := range Run(m, Analyzers()) {
		if f.Analyzer == "discarded-error" && f.Pos.Line > 0 {
			// The suppressed discard sits right under the directive; make
			// sure no finding points at it. It is the only `_ = doWork()`
			// after the directive comment.
			if strings.Contains(f.Message, "suppress") {
				t.Fatalf("suppressed finding leaked through: %v", f)
			}
		}
	}
	got := findingsFor(Run(m, Analyzers()), "discarded-error")
	if len(got) != 3 {
		t.Fatalf("suppression failed: %d discarded-error findings, want 3", len(got))
	}
}

// TestRepositoryIsClean is the acceptance gate: the suite must exit clean
// on the repository itself (any genuine finding gets fixed, not ignored).
func TestRepositoryIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	m, err := LoadModule(filepath.Join("..", ".."))
	if err != nil {
		t.Fatalf("loading repository module: %v", err)
	}
	if m.Path != "pytfhe" {
		t.Fatalf("module path = %q, want pytfhe", m.Path)
	}
	findings := Run(m, Analyzers())
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
