// Package lint is the PyTFHE static-analysis suite. It machine-checks the
// two correctness-critical layers of the repository that go vet does not
// cover: the crypto/concurrency Go code (secure randomness, error
// discipline, lock hygiene around bootstrapping, ciphertext-pool balance,
// exec run-state ownership, batched-call operand disjointness) and —
// through internal/circuit and internal/asm — the assembled gate netlists
// themselves.
//
// The suite is pure standard library (go/parser, go/ast, go/types, with
// module-internal imports resolved by walking the module and everything
// else through the stdlib source importer), so it runs anywhere the repo
// builds, with no external tooling.
//
// A finding can be suppressed with a directive comment on the offending
// line or the line above it:
//
//	//lint:ignore <analyzer-name> <reason>
//
// The reason is mandatory; an ignore without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s [%s]", f.Pos, f.Message, f.Analyzer)
}

// Analyzer checks one property over a package.
type Analyzer interface {
	// Name is the short identifier used in reports and ignore directives.
	Name() string
	// Doc is a one-line description of what the analyzer reports.
	Doc() string
	// Match reports whether the analyzer applies to the package at the
	// given import path.
	Match(pkgPath string) bool
	// Check analyzes one package of the module and returns its findings.
	Check(m *Module, pkg *Package) []Finding
}

// Analyzers returns the full suite in stable order.
func Analyzers() []Analyzer {
	return []Analyzer{
		&insecureRand{},
		&discardedError{},
		&lockedBootstrap{},
		&leakedCiphertext{},
		&unsyncedExecState{},
		&batchAlias{},
	}
}

// Run applies every analyzer to every matching package of the module and
// returns the surviving findings sorted by position. Findings on lines
// carrying a valid ignore directive for that analyzer are dropped.
func Run(m *Module, analyzers []Analyzer) []Finding {
	paths := make([]string, 0, len(m.Packages))
	for p := range m.Packages {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var findings []Finding
	for _, path := range paths {
		pkg := m.Packages[path]
		ignores := collectIgnores(m.Fset, pkg)
		findings = append(findings, ignores.malformed...)
		for _, a := range analyzers {
			if !a.Match(path) {
				continue
			}
			for _, f := range a.Check(m, pkg) {
				if !ignores.covers(a.Name(), f.Pos) {
					findings = append(findings, f)
				}
			}
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// ignoreSet records //lint:ignore directives by file, line and analyzer.
type ignoreSet struct {
	byLine    map[string]map[int]map[string]bool // file -> line -> analyzer
	malformed []Finding
}

const ignorePrefix = "//lint:ignore "

func collectIgnores(fset *token.FileSet, pkg *Package) *ignoreSet {
	s := &ignoreSet{byLine: map[string]map[int]map[string]bool{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					s.malformed = append(s.malformed, Finding{
						Analyzer: "ignore-directive",
						Pos:      pos,
						Message:  "lint:ignore directive needs an analyzer name and a reason",
					})
					continue
				}
				lines := s.byLine[pos.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					s.byLine[pos.Filename] = lines
				}
				// The directive covers its own line (trailing comment) and
				// the next line (comment above the statement).
				for _, ln := range [2]int{pos.Line, pos.Line + 1} {
					if lines[ln] == nil {
						lines[ln] = map[string]bool{}
					}
					lines[ln][fields[0]] = true
				}
			}
		}
	}
	return s
}

func (s *ignoreSet) covers(analyzer string, pos token.Position) bool {
	return s.byLine[pos.Filename][pos.Line][analyzer]
}

// ---- shared helpers used by several analyzers ----

var errorType = types.Universe.Lookup("error").Type()

// isErrorType reports whether t is exactly the built-in error interface.
func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

// namedType returns the named type underlying t, unwrapping one level of
// pointer, or nil.
func namedType(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// typeFromPackage reports whether t (or *t) is a named type declared in a
// package whose import path contains the given fragment.
func typeFromPackage(t types.Type, fragment string) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return strings.Contains(n.Obj().Pkg().Path(), fragment)
}

// pathHasDir reports whether the import path contains dir as a complete
// path element sequence (e.g. "internal/backend" matches
// "pytfhe/internal/backend" but not "pytfhe/internal/backendx").
func pathHasDir(path, dir string) bool {
	return path == dir ||
		strings.HasSuffix(path, "/"+dir) ||
		strings.Contains(path, "/"+dir+"/") ||
		strings.HasPrefix(path, dir+"/")
}

// funcBodies yields every function body in the file — declarations and
// function literals — each exactly once, paired with a display name.
func funcBodies(f *ast.File) []funcBody {
	var out []funcBody
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				out = append(out, funcBody{name: fn.Name.Name, body: fn.Body})
			}
		case *ast.FuncLit:
			out = append(out, funcBody{name: "func literal", body: fn.Body})
		}
		return true
	})
	return out
}

type funcBody struct {
	name string
	body *ast.BlockStmt
}
