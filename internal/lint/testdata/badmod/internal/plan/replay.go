// Package plan is the fixture replay runtime: its arena mirrors the real
// plan package's slot allocator and triggers leaked-ciphertext exactly once.
package plan

import (
	"badmod/internal/tfhe"
)

// arena mirrors the real replay arena; the leaked-ciphertext analyzer keys
// on this type name alongside the executors' ciphertextPool.
type arena struct {
	free []*tfhe.Sample
}

func (a *arena) get() *tfhe.Sample {
	if n := len(a.free); n > 0 {
		s := a.free[n-1]
		a.free = a.free[:n-1]
		return s
	}
	return &tfhe.Sample{}
}

func (a *arena) put(s *tfhe.Sample) {
	if s != nil {
		a.free = append(a.free, s)
	}
}

// LeakSlot triggers leaked-ciphertext: the error path returns without
// handing the slot back to the arena.
func LeakSlot(eng *tfhe.Engine, ar *arena, x, y *tfhe.Sample) (*tfhe.Sample, error) {
	out := ar.get()
	if err := eng.Binary(5, out, x, y); err != nil {
		return nil, err // finding: out leaked
	}
	return out, nil
}

// BindSlot is the clean counterpart: the slot is published into the value
// table on success and put back on failure.
func BindSlot(eng *tfhe.Engine, ar *arena, vals []*tfhe.Sample, x, y *tfhe.Sample) error {
	out := ar.get()
	if err := eng.Binary(6, out, x, y); err != nil {
		ar.put(out)
		return err
	}
	vals[0] = out
	return nil
}
