// Package tfhe is the fixture's stand-in for the real TFHE engine: it is a
// crypto root for the insecure-rand analyzer and the declaring package for
// bootstrap-class operations.
package tfhe

import (
	"math/rand"

	"badmod/internal/mathutil"
)

// Sample is a fixture ciphertext.
type Sample struct {
	Body []float64
}

// Engine evaluates fixture gates.
type Engine struct{}

// Binary is the fixture's bootstrap-class operation.
func (e *Engine) Binary(kind uint8, dst, a, b *Sample) error {
	dst.Body = append(dst.Body[:0], mathutil.Jitter(), rand.Float64(), float64(kind))
	_ = a
	_ = b
	return nil
}

// BootstrapBatch is the fixture's batched bootstrap; the batch-alias
// analyzer keys on this method name on internal/tfhe receivers.
func (e *Engine) BootstrapBatch(dst, a, b []*Sample) error {
	for i := range dst {
		if err := e.Binary(0, dst[i], a[i], b[i]); err != nil {
			return err
		}
	}
	return nil
}
