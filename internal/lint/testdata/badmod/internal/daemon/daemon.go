// Package daemon is the fixture service layer: it reaches into the
// execution core's run state from outside the sanctioned executor
// packages, triggering unsynced-exec-state's layering rule.
package daemon

import (
	"badmod/internal/exec"
	"badmod/internal/shard"
	"badmod/internal/tfhe"
)

// Snapshot reads the executor's value table directly from the service
// layer.
func Snapshot(st *exec.State) int {
	return len(st.Values) // finding: State.Values outside the executor layers
}

// Recycle drives the executor pool from the service layer.
func Recycle(p *exec.Pool) {
	s := p.Get() // finding: Pool.Get outside the executor layers
	p.Put(s)     // finding: Pool.Put outside the executor layers
}

// InstallRemote writes a shard runtime's remote-input slot from the
// service layer, reaching around the router/executor ownership chain.
func InstallRemote(rt *shard.Runtime, s *tfhe.Sample) {
	rt.SetRemote(0, s) // finding: shard.Runtime outside the executor layers
}
