// Package shard is the fixture shard layer: its Runtime mirrors the real
// internal/shard replay runtime, whose remote-input slot table is exec
// run state held one layer out from internal/exec. The package itself is
// a sanctioned executor layer, so touching the table here is clean.
package shard

import (
	"badmod/internal/tfhe"
)

// Runtime mimics internal/shard.Runtime: a value table whose remote-input
// slots the data-plane router fills once per run.
type Runtime struct {
	Vals []*tfhe.Sample
}

// SetRemote installs a router-delivered ciphertext into a remote-input
// slot. The serve loop is the single owner of the table.
func (r *Runtime) SetRemote(slot int, s *tfhe.Sample) {
	r.Vals[slot] = s
}
