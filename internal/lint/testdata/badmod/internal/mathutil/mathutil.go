// Package mathutil is a helper pulled into the fixture's key-generation
// path; its math/rand import must be reported transitively.
package mathutil

import "math/rand"

// Jitter returns a random perturbation (insecurely).
func Jitter() float64 { return rand.Float64() }
