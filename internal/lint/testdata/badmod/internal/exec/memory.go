// Package exec is the fixture execution core: its exported Pool and
// Memory mirror the real internal/exec recycler API (capitalized Get/Put)
// and trigger leaked-ciphertext exactly once.
package exec

import (
	"badmod/internal/tfhe"
)

// State mirrors the real exec.State value table: single-owner run state
// that only the executor layers may reach into. The unsynced-exec-state
// analyzer keys on this name (alongside Pool, Arena and Memory) for its
// layering rule.
type State struct {
	Values []*tfhe.Sample
}

// Memory mirrors the real exec.Memory ownership interface; the
// leaked-ciphertext analyzer keys on this name alongside Pool and Arena.
type Memory interface {
	Get() *tfhe.Sample
	Put(s *tfhe.Sample)
}

// Pool mirrors the real exec.Pool free list.
type Pool struct {
	free []*tfhe.Sample
}

// Get pops a recycled sample or allocates a fresh one.
func (p *Pool) Get() *tfhe.Sample {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &tfhe.Sample{}
}

// Put returns a sample to the free list.
func (p *Pool) Put(s *tfhe.Sample) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

// LeakThroughInterface triggers leaked-ciphertext: the sample acquired
// from the Memory interface escapes on the error path without a Put.
func LeakThroughInterface(eng *tfhe.Engine, mem Memory, a, b *tfhe.Sample) (*tfhe.Sample, error) {
	out := mem.Get()
	if err := eng.Binary(7, out, a, b); err != nil {
		return nil, err // finding: out leaked
	}
	return out, nil
}

// PublishOrPut is the clean counterpart: the sample is either published
// into the value table or handed back to the pool.
func PublishOrPut(eng *tfhe.Engine, pool *Pool, values []*tfhe.Sample, a, b *tfhe.Sample) error {
	out := pool.Get()
	if err := eng.Binary(8, out, a, b); err != nil {
		pool.Put(out)
		return err
	}
	values[0] = out
	return nil
}
