package backend

import (
	"badmod/internal/tfhe"
)

// AliasedBatch triggers batch-alias twice: the output slice doubles as the
// a-operand batch, and the second call reuses subslices of the same
// backing array for output and b-operand.
func AliasedBatch(eng *tfhe.Engine, outs, ins []*tfhe.Sample) error {
	if err := eng.BootstrapBatch(outs, outs, ins); err != nil { // finding: dst aliases a
		return err
	}
	return eng.BootstrapBatch(outs[:1], ins, outs[1:]) // finding: dst aliases b
}

// DisjointBatch is the clean counterpart: three separately staged slices.
func DisjointBatch(eng *tfhe.Engine, outs, as, bs []*tfhe.Sample) error {
	return eng.BootstrapBatch(outs, as, bs)
}
