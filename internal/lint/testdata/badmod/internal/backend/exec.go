// Package backend is the fixture executor: it triggers discarded-error,
// locked-bootstrap and leaked-ciphertext exactly once each (plus one
// suppressed finding to exercise the ignore directive).
package backend

import (
	"errors"
	"sync"

	"badmod/internal/tfhe"
)

// ciphertextPool mirrors the real executor's recycling pool; the
// leaked-ciphertext analyzer keys on this type name.
type ciphertextPool struct {
	free []*tfhe.Sample
}

func (p *ciphertextPool) get() *tfhe.Sample {
	if n := len(p.free); n > 0 {
		s := p.free[n-1]
		p.free = p.free[:n-1]
		return s
	}
	return &tfhe.Sample{}
}

func (p *ciphertextPool) put(s *tfhe.Sample) {
	if s != nil {
		p.free = append(p.free, s)
	}
}

func doWork() error { return errors.New("boom") }

func doTwo() (int, error) { return 0, errors.New("boom") }

// DropErrors triggers discarded-error three ways: a bare call, a blank
// assignment, and a blank slot in a multi-value assignment. The fourth
// discard is suppressed by an ignore directive and must not be reported.
func DropErrors() int {
	doWork()        // finding: bare call discard
	_ = doWork()    // finding: blank assignment
	v, _ := doTwo() // finding: blank error slot
	//lint:ignore discarded-error fixture for the suppression test
	_ = doWork()
	return v
}

// LockedEval triggers locked-bootstrap: a Binary call inside the mutex
// critical section. The second Binary call runs after Unlock and is fine.
func LockedEval(eng *tfhe.Engine, mu *sync.Mutex, dst, a, b *tfhe.Sample) error {
	mu.Lock()
	err := eng.Binary(1, dst, a, b) // finding: bootstrap under lock
	mu.Unlock()
	if err != nil {
		return err
	}
	return eng.Binary(2, dst, a, b) // clean: lock released
}

// LeakOnError triggers leaked-ciphertext: the error path returns without
// putting the acquired sample back.
func LeakOnError(eng *tfhe.Engine, pool *ciphertextPool, a, b *tfhe.Sample) (*tfhe.Sample, error) {
	out := pool.get()
	if err := eng.Binary(3, out, a, b); err != nil {
		return nil, err // finding: out leaked
	}
	return out, nil
}

// BalancedEval is the clean counterpart: every path puts or returns.
func BalancedEval(eng *tfhe.Engine, pool *ciphertextPool, values []*tfhe.Sample, a, b *tfhe.Sample) error {
	out := pool.get()
	if err := eng.Binary(4, out, a, b); err != nil {
		pool.put(out)
		return err
	}
	values[0] = out
	return nil
}
