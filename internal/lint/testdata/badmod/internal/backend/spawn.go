package backend

import (
	"badmod/internal/exec"
	"badmod/internal/shard"
	"badmod/internal/tfhe"
)

// SpawnUnsynced triggers unsynced-exec-state's goroutine rule: the
// function literal captures the single-owner exec.Pool from the enclosing
// scope, so the spawned worker and the original owner race on the free
// list.
func SpawnUnsynced(p *exec.Pool, out chan<- *tfhe.Sample) {
	go func() {
		out <- p.Get() // finding: captured pool crossed a goroutine boundary
	}()
}

// SpawnOwned is the clean counterpart: ownership moves into the goroutine
// explicitly through the literal's parameter list.
func SpawnOwned(p *exec.Pool, out chan<- *tfhe.Sample) {
	go func(owned *exec.Pool) {
		out <- owned.Get()
	}(p)
}

// SpawnRemoteWriter triggers the goroutine rule for shard runtimes: the
// literal captures rt from the enclosing scope, so the spawned writer
// races the serve loop that owns the remote-input slot table.
func SpawnRemoteWriter(rt *shard.Runtime, s *tfhe.Sample) {
	go func() {
		rt.SetRemote(0, s) // finding: captured runtime crossed a goroutine boundary
	}()
}

// SpawnRemoteOwned is the clean counterpart: the runtime moves into the
// goroutine explicitly through the literal's parameter list.
func SpawnRemoteOwned(rt *shard.Runtime, s *tfhe.Sample) {
	go func(owned *shard.Runtime) {
		owned.SetRemote(0, s)
	}(rt)
}
