package backend

import (
	"badmod/internal/exec"
	"badmod/internal/tfhe"
)

// SpawnUnsynced triggers unsynced-exec-state's goroutine rule: the
// function literal captures the single-owner exec.Pool from the enclosing
// scope, so the spawned worker and the original owner race on the free
// list.
func SpawnUnsynced(p *exec.Pool, out chan<- *tfhe.Sample) {
	go func() {
		out <- p.Get() // finding: captured pool crossed a goroutine boundary
	}()
}

// SpawnOwned is the clean counterpart: ownership moves into the goroutine
// explicitly through the literal's parameter list.
func SpawnOwned(p *exec.Pool, out chan<- *tfhe.Sample) {
	go func(owned *exec.Pool) {
		out <- owned.Get()
	}(p)
}
