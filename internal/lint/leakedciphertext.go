package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// leakedCiphertext verifies acquire/release balance on the ciphertext
// recycling pools of the executors — the execution core's exec.Pool,
// exec.Arena, and exec.Memory interface, plus the legacy unexported
// ciphertextPool/arena shapes older trees used: a sample obtained with
// Get() must, on every path, either be published into the shared values
// table (assigned through an index or selector expression), returned to
// the caller, or handed back with Put() before the function returns. An
// early `return err` that forgets the put leaks one ciphertext per failing
// gate — exactly the imbalance that turns a long MNIST run into an OOM.
//
// The walker is branch-aware but deliberately optimistic: a release on any
// branch counts as a release, so it only reports paths where no release
// can be proven anywhere. That keeps it free of false positives on the
// real executors while still catching the forgotten-put pattern.
type leakedCiphertext struct{}

func (*leakedCiphertext) Name() string { return "leaked-ciphertext" }
func (*leakedCiphertext) Doc() string {
	return "ciphertext pool get() without put/publish on some return path"
}

func (*leakedCiphertext) Match(path string) bool {
	return pathHasDir(path, "internal/backend") || pathHasDir(path, "internal/plan") ||
		pathHasDir(path, "internal/exec")
}

func (a *leakedCiphertext) Check(m *Module, pkg *Package) []Finding {
	var findings []Finding
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			w := &leakWalker{
				m:        m,
				pkg:      pkg,
				analyzer: a.Name(),
				fn:       fb.name,
				held:     map[*types.Var]token.Pos{},
			}
			w.walkBlock(fb.body)
			// Anything still held when the function body ends fell off the
			// end of a scope unreleased.
			for v, pos := range w.held {
				w.report(v, pos, "still held at end of "+fb.name)
			}
			findings = append(findings, w.findings...)
		}
	}
	return findings
}

// leakWalker tracks pool-acquired variables through one function body.
type leakWalker struct {
	m        *Module
	pkg      *Package
	analyzer string
	fn       string
	held     map[*types.Var]token.Pos // acquired, not yet released/published
	findings []Finding
}

func (w *leakWalker) report(v *types.Var, acquired token.Pos, what string) {
	w.findings = append(w.findings, Finding{
		Analyzer: w.analyzer,
		Pos:      w.m.Fset.Position(acquired),
		Message: "ciphertext " + v.Name() + " acquired from the pool is neither published, returned, nor put back (" +
			what + ")",
	})
}

func (w *leakWalker) walkBlock(b *ast.BlockStmt) {
	w.walkStmts(b.List)
}

func (w *leakWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *leakWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.AssignStmt:
		w.handleAssign(st)
	case *ast.ExprStmt:
		w.handleCallStmt(st.X)
	case *ast.DeferStmt:
		w.dischargeCallArgs(st.Call) // defer pool.put(x) releases x
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.dischargeUses(e) // returning x transfers ownership out
		}
		for v, pos := range w.held {
			w.report(v, pos, "leaked on return in "+w.fn)
			delete(w.held, v) // one report per acquisition
		}
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkStmt(st.Body)
		if st.Else != nil {
			w.walkStmt(st.Else)
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkStmt(st.Body)
	case *ast.RangeStmt:
		w.walkStmt(st.Body)
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.walkCaseBodies(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkCaseBodies(st.Body)
	case *ast.SelectStmt:
		w.walkCaseBodies(st.Body)
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.GoStmt:
		w.dischargeCallArgs(st.Call) // ownership moves into the goroutine
	case *ast.SendStmt:
		w.dischargeUses(st.Value) // ownership moves through the channel
	}
}

func (w *leakWalker) walkCaseBodies(body *ast.BlockStmt) {
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			w.walkStmts(cc.Body)
		case *ast.CommClause:
			w.walkStmts(cc.Body)
		}
	}
}

// handleAssign tracks acquisitions (x := pool.get()) and publications
// (values[id] = x, s.field = x, y = x).
func (w *leakWalker) handleAssign(st *ast.AssignStmt) {
	if len(st.Rhs) == 1 && w.isPoolGet(st.Rhs[0]) && len(st.Lhs) == 1 {
		if id, ok := st.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			if v := w.varOf(id); v != nil {
				w.held[v] = st.Rhs[0].Pos()
				return
			}
		}
		// Assigned straight into an index/selector expression: published.
		return
	}
	// A held variable is published only when it is *stored*: appearing as
	// a whole right-hand side (values[id] = out, alias := out), inside a
	// composite literal, or as an append argument. Merely passing it to a
	// call (err := eng.Binary(kind, out, a, b)) keeps it held — the callee
	// writes into it and hands it straight back.
	for _, e := range st.Rhs {
		w.dischargeStores(e)
	}
}

// dischargeStores releases variables that e stores somewhere: a direct
// identifier, composite-literal elements, or append arguments.
func (w *leakWalker) dischargeStores(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		if v := w.varOf(x); v != nil {
			delete(w.held, v)
		}
	case *ast.UnaryExpr:
		w.dischargeStores(x.X)
	case *ast.CompositeLit:
		for _, el := range x.Elts {
			w.dischargeUses(el)
		}
	case *ast.CallExpr:
		if id, ok := x.Fun.(*ast.Ident); ok && id.Name == "append" {
			for _, arg := range x.Args {
				w.dischargeUses(arg)
			}
		}
	}
}

// handleCallStmt releases arguments of pool.put calls and treats passing a
// held ciphertext to another function as a potential transfer only for
// put; other calls (eng.Binary writes into it) keep it held.
func (w *leakWalker) handleCallStmt(e ast.Expr) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	w.dischargeCallArgs(call)
}

// dischargeCallArgs releases held variables passed to a pool Put() call.
func (w *leakWalker) dischargeCallArgs(call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "put" && sel.Sel.Name != "Put") || !w.isPoolExpr(sel.X) {
		return
	}
	for _, arg := range call.Args {
		w.dischargeUses(arg)
	}
}

// dischargeUses removes from the held set every variable referenced in e.
func (w *leakWalker) dischargeUses(e ast.Expr) {
	if e == nil || len(w.held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v := w.varOf(id); v != nil {
				delete(w.held, v)
			}
		}
		return true
	})
}

// isPoolGet reports whether e is a Get() call on a recycling pool type.
func (w *leakWalker) isPoolGet(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && (sel.Sel.Name == "get" || sel.Sel.Name == "Get") && w.isPoolExpr(sel.X)
}

// isPoolExpr reports whether e has a recycling-pool type (or pointer to
// one). Pool shapes are matched structurally by defining package and type
// name — the execution core's exported Pool/Arena/Memory, or the legacy
// unexported ciphertextPool/arena — so imported uses (backend code holding
// an exec.Pool) are recognized, not just types declared in the analyzed
// package.
func (w *leakWalker) isPoolExpr(e ast.Expr) bool {
	t := w.pkg.Info.TypeOf(e)
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	switch obj.Name() {
	case "ciphertextPool", "arena":
		return pathHasDir(path, "internal/backend") || pathHasDir(path, "internal/plan")
	case "Pool", "Arena", "Memory":
		return pathHasDir(path, "internal/exec")
	}
	return false
}

// varOf resolves an identifier to its *types.Var, or nil.
func (w *leakWalker) varOf(id *ast.Ident) *types.Var {
	if obj, ok := w.pkg.Info.Defs[id]; ok {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	if obj, ok := w.pkg.Info.Uses[id]; ok {
		if v, ok := obj.(*types.Var); ok {
			return v
		}
	}
	return nil
}
