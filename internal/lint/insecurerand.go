package lint

import "strings"

// cryptoRoots name the package directories whose code (and transitive
// module-internal dependencies) must never touch math/rand: the TFHE
// scheme itself, torus arithmetic, the secure sampler, and the key
// generation surface. All randomness on these paths must come from
// internal/trand, which is seeded from crypto/rand.
var cryptoRoots = []string{
	"internal/tfhe",
	"internal/torus",
	"internal/trand",
	"internal/core",
}

// insecureRand reports math/rand imports in any package reachable from the
// crypto roots. math/rand is deterministic and seedable; using it for key
// material or ciphertext noise silently destroys the security of the
// scheme (the classic TFHE deployment defect TFHE-Coder catalogues), so
// the rule is reachability-based rather than per-package: a helper package
// pulled into a key-generation path is held to the same standard.
type insecureRand struct{}

func (*insecureRand) Name() string { return "insecure-rand" }
func (*insecureRand) Doc() string {
	return "math/rand imported by code reachable from the TFHE/torus/keygen packages"
}

// Match accepts every package; reachability is decided in Check.
func (*insecureRand) Match(string) bool { return true }

func (a *insecureRand) Check(m *Module, pkg *Package) []Finding {
	if !reachableFromCryptoRoots(m)[pkg.Path] {
		return nil
	}
	var findings []Finding
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path == "math/rand" || path == "math/rand/v2" {
				findings = append(findings, Finding{
					Analyzer: a.Name(),
					Pos:      m.Fset.Position(imp.Pos()),
					Message:  "package on a crypto path imports " + path + "; use internal/trand (crypto/rand-seeded) instead",
				})
			}
		}
	}
	return findings
}

// reachableFromCryptoRoots computes, once per module, the set of package
// paths reachable (over module-internal import edges) from the crypto
// roots — including the roots themselves.
func reachableFromCryptoRoots(m *Module) map[string]bool {
	if m.cryptoReach != nil {
		return m.cryptoReach
	}
	reach := map[string]bool{}
	var visit func(path string)
	visit = func(path string) {
		if reach[path] {
			return
		}
		pkg, ok := m.Packages[path]
		if !ok {
			return
		}
		reach[path] = true
		for _, imp := range pkg.Imports {
			if imp == m.Path || strings.HasPrefix(imp, m.Path+"/") {
				visit(imp)
			}
		}
	}
	for path := range m.Packages {
		for _, root := range cryptoRoots {
			if pathHasDir(path, root) {
				visit(path)
			}
		}
	}
	m.cryptoReach = reach
	return reach
}
