package lint

import (
	"go/ast"
	"go/types"
)

// unsyncedExecState enforces the ownership discipline around the execution
// core's run state. internal/exec documents its types with two different
// contracts — exec.Pool and exec.State are single-owner ("not safe for
// concurrent use"), exec.Arena carries its own lock — and the executors
// lean on that split for their no-per-gate-atomics design. Two rules keep
// the contract machine-checked:
//
//  1. Layering: only the executor layers (internal/exec, internal/backend,
//     internal/plan, internal/cluster, internal/shard) may touch exec
//     run-state types — including shard.Runtime, whose remote-input slots
//     hold router-delivered ciphertexts — at all. A service- or CLI-layer
//     package reading State.Values or calling Pool.Get reaches around
//     every invariant the executors maintain (refcounted release,
//     per-dimension recycling, per-level barriers).
//
//  2. Goroutine capture: a function literal launched with `go` must not
//     call Get/Put on a single-owner pool — or SetRemote on a shard
//     runtime's remote-input slots — it captured from the enclosing
//     scope; that silently turns one owner into two. Handing the value in
//     through the literal's parameter list (ownership transfer, the
//     pattern the real drivers use) is fine, as is declaring a fresh one
//     inside the goroutine.
type unsyncedExecState struct{}

func (*unsyncedExecState) Name() string { return "unsynced-exec-state" }
func (*unsyncedExecState) Doc() string {
	return "exec run state touched outside the executor layers or via a goroutine-captured pool"
}

// Match applies everywhere: rule 1 gates on the package path itself and
// rule 2 is a per-function property.
func (*unsyncedExecState) Match(string) bool { return true }

// execStateDirs are the sanctioned owners of exec run state.
var execStateDirs = [...]string{
	"internal/exec", "internal/backend", "internal/plan", "internal/cluster",
	"internal/shard",
}

func inExecLayer(path string) bool {
	for _, d := range execStateDirs {
		if pathHasDir(path, d) {
			return true
		}
	}
	return false
}

func (a *unsyncedExecState) Check(m *Module, pkg *Package) []Finding {
	var findings []Finding
	sanctioned := inExecLayer(pkg.Path)
	for _, f := range pkg.Files {
		if !sanctioned {
			findings = append(findings, a.checkLayering(m, pkg, f)...)
		}
		findings = append(findings, a.checkGoroutines(m, pkg, f)...)
	}
	return findings
}

// checkLayering reports every field or method selection on an exec
// run-state type in a package outside the executor layers.
func (a *unsyncedExecState) checkLayering(m *Module, pkg *Package, f *ast.File) []Finding {
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection, ok := pkg.Info.Selections[sel]
		if !ok {
			return true // package qualifier, not a field/method selection
		}
		name, ok := execStateType(selection.Recv())
		if !ok {
			return true
		}
		findings = append(findings, Finding{
			Analyzer: a.Name(),
			Pos:      m.Fset.Position(sel.Sel.Pos()),
			Message: name + "." + sel.Sel.Name + " touched from " + pkg.Path +
				": only the executor layers may hold exec run state",
		})
		return true
	})
	return findings
}

// checkGoroutines reports Get/Put calls on a captured single-owner pool —
// and SetRemote calls on a captured shard runtime — inside go-launched
// function literals.
func (a *unsyncedExecState) checkGoroutines(m *Module, pkg *Package, f *ast.File) []Finding {
	var findings []Finding
	ast.Inspect(f, func(n ast.Node) bool {
		g, ok := n.(*ast.GoStmt)
		if !ok {
			return true
		}
		lit, ok := g.Call.Fun.(*ast.FuncLit)
		if !ok {
			return true // `go method()` transfers nothing implicitly
		}
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			var what string
			switch sel.Sel.Name {
			case "Get", "Put", "get", "put":
				if !singleOwnerPool(pkg.Info.TypeOf(sel.X)) {
					return true
				}
				what = "single-owner pool"
			case "SetRemote":
				if !shardRuntime(pkg.Info.TypeOf(sel.X)) {
					return true
				}
				what = "shard runtime remote-input slots of"
			default:
				return true
			}
			root := rootIdent(sel.X)
			if root == nil {
				return true
			}
			v, ok := pkg.Info.ObjectOf(root).(*types.Var)
			if !ok || !v.Pos().IsValid() {
				return true
			}
			if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
				return true // parameter of, or declared inside, the literal
			}
			findings = append(findings, Finding{
				Analyzer: a.Name(),
				Pos:      m.Fset.Position(sel.Sel.Pos()),
				Message: "goroutine calls " + sel.Sel.Name + " on " + what + " " + root.Name +
					" captured from the enclosing scope; pass it through the func literal's parameters instead",
			})
			return true
		})
		return true
	})
	return findings
}

// execStateType reports whether t (or *t) is one of the execution core's
// run-state types, returning its package-qualified display name. Besides
// internal/exec's own types it covers shard.Runtime: its remote-input
// slots hold router-delivered ciphertexts, the same run state one layer
// out.
func execStateType(t types.Type) (string, bool) {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return "", false
	}
	path := n.Obj().Pkg().Path()
	name := n.Obj().Name()
	switch {
	case pathHasDir(path, "internal/exec"):
		switch name {
		case "State", "Pool", "Arena", "Memory":
			return "exec." + name, true
		}
	case pathHasDir(path, "internal/shard"):
		if name == "Runtime" {
			return "shard." + name, true
		}
	}
	return "", false
}

// singleOwnerPool reports whether t is a pool type documented as
// single-owner: the execution core's exec.Pool or the legacy unexported
// ciphertextPool. exec.Arena is internally locked and exempt.
func singleOwnerPool(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	path := n.Obj().Pkg().Path()
	switch n.Obj().Name() {
	case "Pool":
		return pathHasDir(path, "internal/exec")
	case "ciphertextPool":
		return pathHasDir(path, "internal/backend") || pathHasDir(path, "internal/plan")
	}
	return false
}

// shardRuntime reports whether t is internal/shard's per-shard replay
// runtime. Its serve loop is the single owner of the remote-input slot
// table; a goroutine writing slots through a captured runtime races the
// level execution it feeds.
func shardRuntime(t types.Type) bool {
	n := namedType(t)
	if n == nil || n.Obj() == nil || n.Obj().Pkg() == nil {
		return false
	}
	return n.Obj().Name() == "Runtime" && pathHasDir(n.Obj().Pkg().Path(), "internal/shard")
}

// rootIdent unwraps selector/index/paren chains to the base identifier, or
// nil when the chain bottoms out in something else (a call, a literal).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}
