package lint

import (
	"go/ast"
	"go/types"
)

// errorCriticalDirs are the packages where a silently dropped error means a
// corrupted program binary, a wrong homomorphic result, or a wedged
// cluster — never an acceptable shortcut.
var errorCriticalDirs = []string{
	"internal/asm",
	"internal/backend",
	"internal/cluster",
}

// discardedError reports discarded error returns in the error-critical
// packages: bare call statements whose results include an error, and
// assignments of an error result to the blank identifier. Deferred and
// go-routine calls are exempt (there is no local control flow to act on
// the error), as are the fmt print family.
type discardedError struct{}

func (*discardedError) Name() string { return "discarded-error" }
func (*discardedError) Doc() string {
	return "error return silently discarded in asm/backend/cluster"
}

func (*discardedError) Match(path string) bool {
	for _, d := range errorCriticalDirs {
		if pathHasDir(path, d) {
			return true
		}
	}
	return false
}

func (a *discardedError) Check(m *Module, pkg *Package) []Finding {
	var findings []Finding
	report := func(n ast.Node, msg string) {
		findings = append(findings, Finding{
			Analyzer: a.Name(),
			Pos:      m.Fset.Position(n.Pos()),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.ExprStmt:
				call, ok := st.X.(*ast.CallExpr)
				if !ok || !callReturnsError(pkg.Info, call) || isPrintCall(pkg.Info, call) {
					return true
				}
				report(st, "result of "+callName(call)+" includes an error that is discarded")
			case *ast.AssignStmt:
				checkBlankErrorAssign(pkg.Info, st, report)
			}
			return true
		})
	}
	return findings
}

// checkBlankErrorAssign flags `_ = f()` and `v, _ := g()` where the blank
// slot holds an error.
func checkBlankErrorAssign(info *types.Info, st *ast.AssignStmt, report func(ast.Node, string)) {
	// Multi-value form: one call on the right, its tuple spread over LHS.
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		call, ok := st.Rhs[0].(*ast.CallExpr)
		if !ok {
			return
		}
		tuple, ok := info.TypeOf(call).(*types.Tuple)
		if !ok || tuple.Len() != len(st.Lhs) {
			return
		}
		for i, lhs := range st.Lhs {
			if isBlank(lhs) && isErrorType(tuple.At(i).Type()) {
				report(lhs, "error result of "+callName(call)+" assigned to _")
			}
		}
		return
	}
	// Parallel form: `_ = expr` per position.
	for i, lhs := range st.Lhs {
		if i >= len(st.Rhs) || !isBlank(lhs) {
			continue
		}
		if isErrorType(info.TypeOf(st.Rhs[i])) {
			report(lhs, "error value assigned to _")
		}
	}
}

// callReturnsError reports whether the call's result type is error or a
// tuple containing error.
func callReturnsError(info *types.Info, call *ast.CallExpr) bool {
	switch t := info.TypeOf(call).(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
	default:
		return isErrorType(t)
	}
	return false
}

// isPrintCall reports whether the call targets the fmt print family, whose
// error returns are conventionally ignored.
func isPrintCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkg, ok := info.Uses[id].(*types.PkgName)
	if !ok || pkg.Imported().Path() != "fmt" {
		return false
	}
	switch sel.Sel.Name {
	case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
		return true
	}
	return false
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}

// callName renders a short display name for a call expression.
func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
