package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one fully type-checked package of the module under analysis.
// Only non-test files are loaded: the analyzers check shipped code, and
// test files legitimately use math/rand, discard errors, and so on.
type Package struct {
	Path    string // import path, e.g. "pytfhe/internal/backend"
	Dir     string // absolute directory
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string // direct imports of the non-test files
}

// Module is a loaded Go module: every buildable package under the module
// root, type-checked against each other and the standard library.
type Module struct {
	Root     string // absolute module root (directory holding go.mod)
	Path     string // module path from the go.mod module directive
	Fset     *token.FileSet
	Packages map[string]*Package // keyed by import path

	dirs map[string]string // import path -> directory
	std  types.ImporterFrom
	pkgs map[string]*types.Package // type-checker cache (module + stdlib)

	cryptoReach map[string]bool // lazy cache for the insecure-rand analyzer
}

// LoadModule discovers, parses and type-checks every package under root.
// Directories named "testdata", hidden directories, and nested modules
// (directories with their own go.mod) are skipped, matching the go tool.
// Type checking uses only the standard library: module-internal imports
// resolve against the walked directories and everything else goes through
// the stdlib source importer.
func LoadModule(root string) (*Module, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	m := &Module{
		Root:     root,
		Path:     modPath,
		Fset:     fset,
		Packages: map[string]*Package{},
		dirs:     map[string]string{},
		pkgs:     map[string]*types.Package{},
	}
	m.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	// Pass 1: discover package directories so imports can resolve in any
	// order during type checking.
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root {
			if name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
				return filepath.SkipDir
			}
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir // nested module
			}
		}
		if hasGoFiles(path) {
			m.dirs[m.importPath(path)] = path
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Pass 2: type-check every discovered package.
	paths := make([]string, 0, len(m.dirs))
	for p := range m.dirs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if _, err := m.load(p); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", p, err)
		}
	}
	return m, nil
}

// importPath maps a directory under the module root to its import path.
func (m *Module) importPath(dir string) string {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || rel == "." {
		return m.Path
	}
	return m.Path + "/" + filepath.ToSlash(rel)
}

// hasGoFiles reports whether dir holds at least one buildable non-test Go
// file.
func hasGoFiles(dir string) bool {
	bp, err := build.ImportDir(dir, 0)
	return err == nil && len(bp.GoFiles) > 0
}

// load parses and type-checks the module package at the given import path,
// memoizing the result.
func (m *Module) load(path string) (*Package, error) {
	if pkg, ok := m.Packages[path]; ok {
		return pkg, nil
	}
	dir, ok := m.dirs[path]
	if !ok {
		return nil, fmt.Errorf("no such package in module")
	}
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir}
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			pkg.Imports = append(pkg.Imports, strings.Trim(imp.Path.Value, `"`))
		}
	}
	sort.Strings(pkg.Imports)

	pkg.Info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: m}
	tpkg, err := conf.Check(path, m.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, err
	}
	pkg.Types = tpkg
	m.Packages[path] = pkg
	m.pkgs[path] = tpkg
	return pkg, nil
}

// Import implements types.Importer for the type checker: module-internal
// paths load from the walked directories, everything else falls back to the
// standard library source importer.
func (m *Module) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom.
func (m *Module) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := m.pkgs[path]; ok {
		return p, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		pkg, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	p, err := m.std.ImportFrom(path, dir, mode)
	if err == nil {
		m.pkgs[path] = p
	}
	return p, err
}

// modulePath extracts the module directive from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("lint: no module directive in %s", gomod)
}
