package lint

import (
	"go/ast"
	"go/types"
)

// expensiveOps are the method names that perform (or transitively imply) a
// gate bootstrap or external product — the tens-of-milliseconds operations
// of the scheme.
var expensiveOps = map[string]bool{
	"Binary":           true,
	"Mux":              true,
	"Bootstrap":        true,
	"BootstrapWoKS":    true,
	"BootstrapLUT":     true,
	"BootstrapLUTWoKS": true,
	"ExternalProduct":  true,
	"BlindRotate":      true,
}

// concurrencyDirs are the packages whose locks guard executor shared state.
var concurrencyDirs = []string{
	"internal/backend",
	"internal/cluster",
}

// lockedBootstrap reports bootstrap-class TFHE operations performed while a
// sync.Mutex/RWMutex is held in the executor packages. A bootstrapped gate
// takes ~10ms+; running one under a lock serializes every other worker
// behind it (and invites lock-ordering deadlocks with the coordinator
// paths), so locks there must only guard bookkeeping. Function literals
// are analyzed as their own bodies: a goroutine launched under a lock does
// not itself hold the lock.
type lockedBootstrap struct{}

func (*lockedBootstrap) Name() string { return "locked-bootstrap" }
func (*lockedBootstrap) Doc() string {
	return "bootstrap/external-product call while holding a mutex in backend/cluster"
}

func (*lockedBootstrap) Match(path string) bool {
	for _, d := range concurrencyDirs {
		if pathHasDir(path, d) {
			return true
		}
	}
	return false
}

func (a *lockedBootstrap) Check(m *Module, pkg *Package) []Finding {
	var findings []Finding
	for _, f := range pkg.Files {
		for _, fb := range funcBodies(f) {
			w := &lockWalker{m: m, pkg: pkg, analyzer: a.Name(), fn: fb.name}
			w.walkStmts(fb.body.List)
			findings = append(findings, w.findings...)
		}
	}
	return findings
}

// lockWalker tracks mutex hold depth through one function body.
type lockWalker struct {
	m        *Module
	pkg      *Package
	analyzer string
	fn       string
	depth    int // currently-held lock count (deferred unlocks never decrement)
	findings []Finding
}

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok {
			switch mutexCallKind(w.pkg.Info, call) {
			case lockCall:
				w.depth++
				return
			case unlockCall:
				if w.depth > 0 {
					w.depth--
				}
				return
			}
		}
		w.scanExpr(st.X)
	case *ast.DeferStmt:
		// `defer mu.Unlock()` extends the critical section to the end of
		// the function, so it must not decrement; the deferred call itself
		// runs after the body and is not scanned.
	case *ast.GoStmt:
		// The goroutine body runs without this function's locks; its
		// FuncLit is analyzed separately by funcBodies.
		for _, arg := range st.Call.Args {
			w.scanExpr(arg)
		}
	case *ast.BlockStmt:
		w.walkStmts(st.List)
	case *ast.IfStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		w.scanExpr(st.Cond)
		entry := w.depth
		w.walkStmt(st.Body)
		w.depth = entry
		if st.Else != nil {
			w.walkStmt(st.Else)
			w.depth = entry
		}
	case *ast.ForStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Cond != nil {
			w.scanExpr(st.Cond)
		}
		entry := w.depth
		w.walkStmt(st.Body)
		w.depth = entry
	case *ast.RangeStmt:
		w.scanExpr(st.X)
		entry := w.depth
		w.walkStmt(st.Body)
		w.depth = entry
	case *ast.SwitchStmt:
		if st.Init != nil {
			w.walkStmt(st.Init)
		}
		if st.Tag != nil {
			w.scanExpr(st.Tag)
		}
		w.walkCases(st.Body)
	case *ast.TypeSwitchStmt:
		w.walkCases(st.Body)
	case *ast.SelectStmt:
		w.walkCases(st.Body)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			w.scanExpr(e)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			w.scanExpr(e)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.BranchStmt, *ast.EmptyStmt:
		// no calls of interest
	case *ast.LabeledStmt:
		w.walkStmt(st.Stmt)
	case *ast.SendStmt:
		w.scanExpr(st.Value)
	}
}

func (w *lockWalker) walkCases(body *ast.BlockStmt) {
	entry := w.depth
	for _, c := range body.List {
		switch cc := c.(type) {
		case *ast.CaseClause:
			w.walkStmts(cc.Body)
		case *ast.CommClause:
			w.walkStmts(cc.Body)
		}
		w.depth = entry
	}
}

// scanExpr reports expensive TFHE calls inside e when a lock is held.
// Function literals are skipped: they execute later, outside this critical
// section, and are checked as independent bodies.
func (w *lockWalker) scanExpr(e ast.Expr) {
	if w.depth == 0 || e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !expensiveOps[sel.Sel.Name] {
			return true
		}
		if !tfheReceiver(w.pkg.Info, sel) {
			return true
		}
		w.findings = append(w.findings, Finding{
			Analyzer: w.analyzer,
			Pos:      w.m.Fset.Position(call.Pos()),
			Message: "in " + w.fn + ": " + sel.Sel.Name +
				" (bootstrap-class TFHE op) called while holding a mutex; move it outside the critical section",
		})
		return true
	})
}

// tfheReceiver reports whether the selector's receiver is a type declared
// under internal/tfhe.
func tfheReceiver(info *types.Info, sel *ast.SelectorExpr) bool {
	if s, ok := info.Selections[sel]; ok {
		return typeFromPackage(s.Recv(), "internal/tfhe")
	}
	return typeFromPackage(info.TypeOf(sel.X), "internal/tfhe")
}

type mutexCall int

const (
	notMutexCall mutexCall = iota
	lockCall
	unlockCall
)

// mutexCallKind classifies a call as Lock/RLock or Unlock/RUnlock on a
// sync.Mutex or sync.RWMutex (directly or via an embedded/field selector).
func mutexCallKind(info *types.Info, call *ast.CallExpr) mutexCall {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return notMutexCall
	}
	var kind mutexCall
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = lockCall
	case "Unlock", "RUnlock":
		kind = unlockCall
	default:
		return notMutexCall
	}
	t := info.TypeOf(sel.X)
	n := namedType(t)
	if n == nil || n.Obj().Pkg() == nil || n.Obj().Pkg().Path() != "sync" {
		return notMutexCall
	}
	switch n.Obj().Name() {
	case "Mutex", "RWMutex":
		return kind
	}
	return notMutexCall
}
