package models

import (
	"testing"

	"pytfhe/internal/chiseltorch"
)

func TestMNISTSpecGeometry(t *testing.T) {
	s := MNISTS()
	if s.ConvOut() != 26 || s.PoolOut() != 24 || s.FlatSize() != 576 {
		t.Fatalf("MNIST_S geometry: conv=%d pool=%d flat=%d", s.ConvOut(), s.PoolOut(), s.FlatSize())
	}
	m := MNISTM()
	if m.FlatSize() != 2*576 {
		t.Fatalf("MNIST_M flat = %d", m.FlatSize())
	}
	l := MNISTL()
	if l.FlatSize() != 3*576 {
		t.Fatalf("MNIST_L flat = %d", l.FlatSize())
	}
}

func TestWeightsAreDeterministic(t *testing.T) {
	a := MNISTS().GenWeights()
	b := MNISTS().GenWeights()
	for i := range a.LinW {
		if a.LinW[i] != b.LinW[i] {
			t.Fatal("weights are not reproducible")
		}
	}
	c := MNISTM().GenWeights()
	if len(c.ConvW) == len(a.ConvW) {
		t.Fatal("different specs should have different weight shapes")
	}
}

func TestWeightShapes(t *testing.T) {
	s := MNISTS()
	w := s.GenWeights()
	if len(w.ConvW) != s.Kernels*s.Conv*s.Conv {
		t.Fatalf("conv weights %d", len(w.ConvW))
	}
	if len(w.LinW) != s.Classes*s.FlatSize() {
		t.Fatalf("linear weights %d", len(w.LinW))
	}
	if len(w.ConvB) != s.Kernels || len(w.LinB) != s.Classes {
		t.Fatal("bias shapes")
	}
}

func TestScaledSpec(t *testing.T) {
	s := MNISTS().Scaled(10)
	if s.Image != 10 || s.Name != "MNIST_S_scaled" {
		t.Fatalf("scaled spec %+v", s)
	}
	if s.FlatSize() != 36 { // (10-3+1-3+1)^2 = 6^2
		t.Fatalf("scaled flat = %d", s.FlatSize())
	}
}

func TestToChiselTorchCompiles(t *testing.T) {
	spec := MNISTS().Scaled(7)
	model := spec.ToChiselTorch(chiseltorch.NewSInt(6))
	c, err := model.Compile(1, spec.Image, spec.Image)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputShape[0] != spec.Classes {
		t.Fatalf("output shape %v", c.OutputShape)
	}
}

func TestAttentionSpecs(t *testing.T) {
	s := AttentionS()
	l := AttentionL()
	if s.Hidden != 32 || l.Hidden != 64 {
		t.Fatalf("hidden sizes %d/%d, want 32/64 per the paper", s.Hidden, l.Hidden)
	}
	scaled := s.Scaled(2, 4)
	model := scaled.ToChiselTorch(chiseltorch.NewFixed(8, 8))
	c, err := model.Compile(scaled.Seq, scaled.Hidden)
	if err != nil {
		t.Fatal(err)
	}
	if c.OutputShape[0] != 2 || c.OutputShape[1] != 4 {
		t.Fatalf("attention output %v", c.OutputShape)
	}
}
