// Package models defines the neural-network workload specifications shared
// by the ChiselTorch frontend and the baseline framework compilers: the
// three MNIST CNNs of the paper (MNIST_S from VIP-Bench plus the larger
// MNIST_M and MNIST_L with two and three convolution kernels), and the two
// self-attention configurations (Attention_S with hidden size 32,
// Attention_L with 64).
//
// Weights are deterministic pseudo-random values: the paper evaluates
// performance, not accuracy, and deterministic weights make every gate
// count and benchmark reproducible. Real trained weights can be plugged
// into the same specs.
package models

import (
	"math"

	"pytfhe/internal/chiseltorch"
	"pytfhe/internal/trand"
)

// MNISTSpec describes one MNIST CNN: Conv2d(1, Kernels, 3, 1) -> ReLU ->
// MaxPool2d(3,1) -> Flatten -> Linear(-, 10), the Fig. 4 topology.
type MNISTSpec struct {
	Name    string
	Image   int // input is Image×Image, one channel
	Kernels int // convolution output channels (1, 2, 3 for S, M, L)
	Conv    int // convolution kernel size
	Pool    int // pooling kernel size (stride 1)
	Classes int
}

// MNISTS returns the VIP-Bench MNIST network (one convolution kernel).
func MNISTS() MNISTSpec {
	return MNISTSpec{Name: "MNIST_S", Image: 28, Kernels: 1, Conv: 3, Pool: 3, Classes: 10}
}

// MNISTM returns the paper's two-kernel variant.
func MNISTM() MNISTSpec {
	return MNISTSpec{Name: "MNIST_M", Image: 28, Kernels: 2, Conv: 3, Pool: 3, Classes: 10}
}

// MNISTL returns the paper's three-kernel variant.
func MNISTL() MNISTSpec {
	return MNISTSpec{Name: "MNIST_L", Image: 28, Kernels: 3, Conv: 3, Pool: 3, Classes: 10}
}

// Scaled returns a copy with a reduced image size — used by tests and the
// quick benchmark mode to exercise identical code paths on smaller
// circuits.
func (s MNISTSpec) Scaled(image int) MNISTSpec {
	s.Image = image
	s.Name = s.Name + "_scaled"
	return s
}

// ConvOut returns the convolution output spatial size.
func (s MNISTSpec) ConvOut() int { return s.Image - s.Conv + 1 }

// PoolOut returns the pooled spatial size (stride-1 pooling).
func (s MNISTSpec) PoolOut() int { return s.ConvOut() - s.Pool + 1 }

// FlatSize returns the flattened feature count feeding the classifier
// (576 for MNIST_S at 28×28, matching Fig. 4's Linear(576, 10)).
func (s MNISTSpec) FlatSize() int { return s.Kernels * s.PoolOut() * s.PoolOut() }

// Weights bundles the deterministic parameters of a spec.
type Weights struct {
	ConvW []float64 // [Kernels][1][Conv][Conv]
	ConvB []float64 // [Kernels]
	LinW  []float64 // [Classes][FlatSize]
	LinB  []float64 // [Classes]
}

// GenWeights derives deterministic weights in roughly the magnitude range
// of a trained, normalized network.
func (s MNISTSpec) GenWeights() Weights {
	rng := trand.NewSeeded([]byte("pytfhe-weights-" + s.Name))
	gen := func(n int, scale float64) []float64 {
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Round((rng.Float64()*2-1)*scale*64) / 64 // quantization-friendly
		}
		return v
	}
	return Weights{
		ConvW: gen(s.Kernels*s.Conv*s.Conv, 0.5),
		ConvB: gen(s.Kernels, 0.25),
		LinW:  gen(s.Classes*s.FlatSize(), 0.25),
		LinB:  gen(s.Classes, 0.25),
	}
}

// ToChiselTorch builds the spec as a ChiselTorch model with the given data
// type (nil defaults to Fixed(8,8), the paper's example).
func (s MNISTSpec) ToChiselTorch(dt chiseltorch.DType) chiseltorch.Model {
	w := s.GenWeights()
	return chiseltorch.Model{
		Name:  s.Name,
		DType: dt,
		Net: chiseltorch.Sequential{
			&chiseltorch.Conv2d{
				InC: 1, OutC: s.Kernels, Kernel: s.Conv, Stride: 1,
				Weight: w.ConvW, Bias: w.ConvB,
			},
			chiseltorch.ReLU{},
			chiseltorch.MaxPool2d{Kernel: s.Pool, Stride: 1},
			chiseltorch.Flatten{},
			&chiseltorch.Linear{
				In: s.FlatSize(), Out: s.Classes,
				Weight: w.LinW, Bias: w.LinB,
			},
		},
	}
}

// AttentionSpec describes a single-head self-attention layer.
type AttentionSpec struct {
	Name   string
	Seq    int
	Hidden int
}

// AttentionS returns the paper's Attention_S (hidden dimension 32).
func AttentionS() AttentionSpec { return AttentionSpec{Name: "Attention_S", Seq: 8, Hidden: 32} }

// AttentionL returns the paper's Attention_L (hidden dimension 64).
func AttentionL() AttentionSpec { return AttentionSpec{Name: "Attention_L", Seq: 8, Hidden: 64} }

// Scaled returns a reduced copy for tests.
func (a AttentionSpec) Scaled(seq, hidden int) AttentionSpec {
	a.Seq, a.Hidden = seq, hidden
	a.Name = a.Name + "_scaled"
	return a
}

// ToChiselTorch builds the attention layer as a ChiselTorch model.
func (a AttentionSpec) ToChiselTorch(dt chiseltorch.DType) chiseltorch.Model {
	rng := trand.NewSeeded([]byte("pytfhe-attn-" + a.Name))
	gen := func() []float64 {
		v := make([]float64, a.Hidden*a.Hidden)
		for i := range v {
			v[i] = math.Round((rng.Float64()*2-1)*32) / 64
		}
		return v
	}
	return chiseltorch.Model{
		Name:  a.Name,
		DType: dt,
		Net: &chiseltorch.SelfAttention{
			Seq: a.Seq, Hidden: a.Hidden,
			Wq: gen(), Wk: gen(), Wv: gen(),
		},
	}
}
