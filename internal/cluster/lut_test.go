package cluster

import (
	"testing"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/logic"
)

// lutNetlist mixes 3-input LUTs with classic gates so both task shapes
// cross the wire in one wavefront.
func lutNetlist() *circuit.Netlist {
	b := circuit.NewBuilder("lut-cluster", circuit.NoOptimizations())
	x := b.Input("x")
	y := b.Input("y")
	z := b.Input("z")
	w := b.Input("w")
	par := b.LUT(0x96, x, y, z)
	maj := b.LUT(0xE8, x, y, w)
	b.Output("mix", b.LUT(0x7E, par, maj, w))
	b.Output("and", b.Gate(logic.AND, par, maj))
	b.Output("xor", b.Gate(logic.XOR, par, z))
	return b.MustBuild()
}

// TestDistributedLUT checks both cluster paths — per-gate dispatch and
// sharded plan replay — evaluate LUT netlists correctly, and that LUT
// tasks' third operand is accounted in the wire estimate.
func TestDistributedLUT(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 2, 2)
	nl := lutNetlist()
	for _, m := range []uint64{0, 6, 11, 15} {
		in := bitsOf(m, nl.NumInputs)
		want, err := nl.Evaluate(in)
		if err != nil {
			t.Fatal(err)
		}
		gateOuts, err := coord.Run(nl, backend.EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		shardOuts, err := coord.RunSharded(nl, backend.EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got := backend.DecryptOutputs(sk, gateOuts)[i]; got != want[i] {
				t.Fatalf("input %d output %d: gate dispatch %v, reference %v", m, i, got, want[i])
			}
			if got := backend.DecryptOutputs(sk, shardOuts)[i]; got != want[i] {
				t.Fatalf("input %d output %d: sharded %v, reference %v", m, i, got, want[i])
			}
		}
	}
	// Five gates, three of them arity-3 LUTs: 5 outputs + 3+3+3+2+2 operands.
	ctBytes := int64(ck.Params.CiphertextBytes())
	if want := 18 * ctBytes; coord.LastStat.BytesSent != want {
		// LastStat holds the sharded run; re-run the gate path to pin it.
		outs, err := coord.Run(nl, backend.EncryptInputs(sk, bitsOf(9, nl.NumInputs)))
		if err != nil || len(outs) == 0 {
			t.Fatal(err)
		}
		if got := coord.LastStat.BytesSent; got != want {
			t.Fatalf("gate-path estimate = %d bytes, want %d (third LUT operand unaccounted)", got, want)
		}
	}
}
