package cluster

import (
	"bytes"
	"encoding/gob"
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"pytfhe/internal/backend"
	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/params"
	"pytfhe/internal/tfhe/boot"
	"pytfhe/internal/trand"
)

var (
	keyOnce sync.Once
	testSK  *boot.SecretKey
	testCK  *boot.CloudKey
)

func keys(t testing.TB) (*boot.SecretKey, *boot.CloudKey) {
	keyOnce.Do(func() {
		rng := trand.NewSeeded([]byte("cluster-test-keys"))
		sk, ck, err := boot.GenerateKeys(params.Test(), rng)
		if err != nil {
			panic(err)
		}
		testSK, testCK = sk, ck
	})
	return testSK, testCK
}

func adder4() *circuit.Netlist {
	b := circuit.NewBuilder("adder4", circuit.AllOptimizations())
	a := b.Inputs("a", 4)
	bb := b.Inputs("b", 4)
	carry := b.Const(false)
	for i := 0; i < 4; i++ {
		axb := b.Xor(a[i], bb[i])
		b.Output("s", b.Xor(axb, carry))
		carry = b.Or(b.And(a[i], bb[i]), b.And(axb, carry))
	}
	b.Output("cout", carry)
	return b.MustBuild()
}

func bitsOf(v uint64, n int) []bool {
	bits := make([]bool, n)
	for i := range bits {
		bits[i] = v>>uint(i)&1 == 1
	}
	return bits
}

func uintOf(bits []bool) uint64 {
	var v uint64
	for i, b := range bits {
		if b {
			v |= 1 << uint(i)
		}
	}
	return v
}

// startCluster brings up a coordinator and n in-process workers connected
// over real TCP sockets on localhost.
func startCluster(t *testing.T, ck *boot.CloudKey, nWorkers, slots int) *Coordinator {
	t.Helper()
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nWorkers; i++ {
		go func() {
			if err := NewWorker(slots).Serve(coord.Addr()); err != nil {
				t.Errorf("worker: %v", err)
			}
		}()
	}
	if err := coord.AcceptWorkers(nWorkers); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	return coord
}

func TestDistributedAdder(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 2, 2)
	nl := adder4()
	for _, tc := range [][2]uint64{{5, 9}, {15, 15}} {
		in := append(bitsOf(tc[0], 4), bitsOf(tc[1], 4)...)
		outs, err := coord.Run(nl, backend.EncryptInputs(sk, in))
		if err != nil {
			t.Fatal(err)
		}
		got := uintOf(backend.DecryptOutputs(sk, outs))
		if got != tc[0]+tc[1] {
			t.Fatalf("distributed %d+%d = %d", tc[0], tc[1], got)
		}
	}
	st := coord.LastStat
	if st.Workers != 2 || st.Slots != 4 || st.Bootstraps == 0 || st.BytesSent == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestDistributedMatchesLocalBackend(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 3, 1)
	nl := adder4()
	in := append(bitsOf(7, 4), bitsOf(12, 4)...)

	local := backend.NewSingle(ck)
	wantOuts, err := local.Run(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatal(err)
	}
	gotOuts, err := coord.Run(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatal(err)
	}
	want := backend.DecryptOutputs(sk, wantOuts)
	got := backend.DecryptOutputs(sk, gotOuts)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("output %d: local %v, distributed %v", i, want[i], got[i])
		}
	}
}

func TestRunWithoutWorkersFails(t *testing.T) {
	_, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if _, err := coord.Run(adder4(), nil); err == nil {
		t.Fatal("expected error with no workers")
	}
}

// TestNilInputRejected: input validation runs before worker dispatch, so
// the typed exec error surfaces even on a coordinator with no workers.
func TestNilInputRejected(t *testing.T) {
	sk, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	inputs := backend.EncryptInputs(sk, bitsOf(0, 8))
	inputs[3] = nil
	if _, err := coord.Run(adder4(), inputs); !errors.Is(err, exec.ErrNilInput) {
		t.Fatalf("error = %v, want exec.ErrNilInput", err)
	}
}

func TestInputCountValidation(t *testing.T) {
	sk, ck := keys(t)
	coord := startCluster(t, ck, 1, 1)
	if _, err := coord.Run(adder4(), backend.EncryptInputs(sk, bitsOf(0, 3))); err == nil {
		t.Fatal("expected input count error")
	}
}

func TestPartitionCoversAllGates(t *testing.T) {
	level := []int{0, 1, 2, 3, 4, 5, 6}
	workers := []*workerConn{{slots: 1}, {slots: 2}, {slots: 1}}
	parts := partition(level, workers)
	seen := map[int]bool{}
	for _, p := range parts {
		for _, g := range p {
			if seen[g] {
				t.Fatalf("gate %d assigned twice", g)
			}
			seen[g] = true
		}
	}
	if len(seen) != len(level) {
		t.Fatalf("partition covered %d of %d gates", len(seen), len(level))
	}
	// The 2-slot worker should get at least as much as the 1-slot ones.
	if len(parts[1]) < len(parts[0]) {
		t.Fatalf("slot weighting ignored: %v", parts)
	}
}

// TestWorkerDisconnectSurfacesError kills a worker's connection mid-session
// and checks that the coordinator reports a transport error rather than
// hanging or returning wrong results.
func TestWorkerDisconnectSurfacesError(t *testing.T) {
	_, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// A fake worker that completes the handshake (Hello out, Welcome and
	// key in), then drops the link.
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := net.Dial("tcp", coord.Addr())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		if err := enc.Encode(Message{Hello: &Hello{Slots: 1, Version: ProtoVersion}}); err != nil {
			t.Errorf("hello: %v", err)
			return
		}
		var welcome, key Message
		if err := dec.Decode(&welcome); err != nil || welcome.Welcome == nil {
			t.Errorf("welcome: %+v (%v)", welcome, err)
			return
		}
		if err := dec.Decode(&key); err != nil || key.Key == nil {
			t.Errorf("key: %v", err)
			return
		}
		// Receive the first job, then vanish.
		var job Message
		_ = dec.Decode(&job)
		conn.Close()
	}()
	if err := coord.AcceptWorkers(1); err != nil {
		t.Fatal(err)
	}

	sk := testSK
	nl := adder4()
	in := backend.EncryptInputs(sk, bitsOf(1, 8))
	_, err = coord.Run(nl, in)
	if err == nil {
		t.Fatal("coordinator should report the dropped worker")
	}
	if !errors.Is(err, ErrWorkerLost) {
		t.Fatalf("err = %v, want ErrWorkerLost (no surviving workers)", err)
	}
	<-done
}

// deadAfterFirstJob joins the cluster as a well-behaved worker, then drops
// the connection the moment its first job arrives — a worker crashing
// mid-run.
func deadAfterFirstJob(t *testing.T, addr string) <-chan struct{} {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			return
		}
		enc := gob.NewEncoder(conn)
		dec := gob.NewDecoder(conn)
		if err := enc.Encode(Message{Hello: &Hello{Slots: 1, Version: ProtoVersion}}); err != nil {
			return
		}
		var welcome, key Message
		if err := dec.Decode(&welcome); err != nil {
			return
		}
		if err := dec.Decode(&key); err != nil {
			return
		}
		var job Message
		_ = dec.Decode(&job)
		conn.Close()
	}()
	return done
}

// TestWorkerLostMidRunRequeues kills one of two workers mid-run and checks
// that the coordinator requeues the dead worker's batch onto the survivor
// and still produces the right sum, rather than blocking forever or
// failing the run.
func TestWorkerLostMidRunRequeues(t *testing.T) {
	sk, ck := keys(t)
	coord, err := NewCoordinator(ck, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { coord.Close() })
	coord.JobTimeout = 10 * time.Second

	go func() { _ = NewWorker(1).Serve(coord.Addr()) }()
	dead := deadAfterFirstJob(t, coord.Addr())
	if err := coord.AcceptWorkers(2); err != nil {
		t.Fatal(err)
	}

	nl := adder4()
	in := append(bitsOf(9, 4), bitsOf(6, 4)...)
	outs, err := coord.Run(nl, backend.EncryptInputs(sk, in))
	if err != nil {
		t.Fatalf("run with one dead worker: %v", err)
	}
	if got := uintOf(backend.DecryptOutputs(sk, outs)); got != 15 {
		t.Fatalf("9+6 = %d after requeue", got)
	}
	<-dead
	if coord.WorkerCount() != 1 {
		t.Fatalf("dead worker still on the roster: %d workers", coord.WorkerCount())
	}
	if coord.LastStat.WorkersLost != 1 {
		t.Fatalf("stats.WorkersLost = %d, want 1", coord.LastStat.WorkersLost)
	}
}

// TestKeyBroadcastSize sanity-checks that the broadcast cloud key is the
// dominant setup payload (bootstrapping key in the Fourier domain).
func TestKeyBroadcastSize(t *testing.T) {
	_, ck := keys(t)
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(Message{Key: ck}); err != nil {
		t.Fatal(err)
	}
	// Test parameters: n=64 TGSW samples of 6 rows x 2 polys x 256 coeffs
	// x 16 B ≈ 25 MB, plus the switch key. It must at least exceed the
	// raw bootstrapping-key payload and stay within an order of it.
	min := 64 * 6 * 2 * 256 * 16
	if buf.Len() < min {
		t.Fatalf("serialized cloud key is %d B, below the raw payload %d B", buf.Len(), min)
	}
	t.Logf("cloud key wire size: %.1f MB", float64(buf.Len())/1e6)
}
