package cluster

import (
	"fmt"
	"sync"
	"time"

	"pytfhe/internal/circuit"
	"pytfhe/internal/exec"
	"pytfhe/internal/plan"
	"pytfhe/internal/shard"
	"pytfhe/internal/tfhe/gate"
	"pytfhe/internal/tfhe/lwe"
)

// This file is the sharded plan-replay path (protocol v2): the compiled
// plan is cut into per-worker shards (internal/shard), each shipped once
// and cached on its worker keyed by content hash. Per run the coordinator
// routes only input and cross-shard boundary ciphertexts — O(cut edges)
// traffic per level instead of the gate path's O(gates) operand shipping.

// ShardInit asks a worker to activate a shard for the coming run,
// resetting its runtime if resident. The worker answers ShardReady; a
// Cached=false answer makes the coordinator follow up with ShardData.
type ShardInit struct {
	PlanHash string
	Hash     string
}

// ShardReady reports shard residency after a ShardInit or ShardData.
type ShardReady struct {
	Hash   string
	Cached bool
}

// SlotSample installs one ciphertext into a remote-input slot.
type SlotSample struct {
	Slot int32
	Val  *lwe.Sample
}

// ShardStep drives one global plan level of one shard: the router's fills
// go in, the level's boundary exports come back in a ShardStepResult.
type ShardStep struct {
	Hash  string
	Level int
	Fills []SlotSample
}

// ShardStepResult returns a step's exports in manifest order. A result
// answering a ShardReplay carries no exports (the coordinator retained
// them) and Level echoes the replay horizon.
type ShardStepResult struct {
	Hash    string
	Level   int
	Exports []*lwe.Sample
}

// ShardReplay rebuilds a shard's state on a new worker after a loss: the
// worker re-executes the listed steps (levels 0..Through that the shard is
// active in, with the coordinator's retained fills) and discards the
// exports, leaving the runtime ready to continue from Through+1.
type ShardReplay struct {
	Hash    string
	Through int
	Steps   []ShardStep
}

// shardKey keys the coordinator's per-netlist sharding cache: the same
// netlist evaluated at a different live-worker count recompiles, the same
// count reuses the decomposition (and therefore the workers' shard caches).
type shardKey struct {
	nl *circuit.Netlist
	n  int
}

// workerAppError is a worker-reported evaluation failure: the connection
// is healthy, retrying elsewhere would fail identically, so the run aborts
// instead of treating the worker as lost.
type workerAppError struct{ msg string }

func (e *workerAppError) Error() string { return "cluster: worker: " + e.msg }

// sharding returns the cached decomposition of nl into n shards, building
// (compile → split → verify) on first use.
func (c *Coordinator) sharding(nl *circuit.Netlist, n int) (*shard.Sharding, error) {
	key := shardKey{nl: nl, n: n}
	c.mu.Lock()
	s := c.plans[key]
	c.mu.Unlock()
	if s != nil {
		return s, nil
	}
	p, err := plan.Compile(nl, n)
	if err != nil {
		return nil, err
	}
	s, err = shard.Split(p, n)
	if err != nil {
		return nil, err
	}
	// The decomposition is verified once per cache entry: structural
	// soundness plus a cleartext simulation of the routed execution
	// against the plan (see shard.Verify). Cheap next to one FHE gate.
	if _, err := shard.Verify(p, s); err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.plans == nil {
		c.plans = make(map[shardKey]*shard.Sharding)
	}
	c.plans[key] = s
	c.mu.Unlock()
	return s, nil
}

// shardRun is the per-run routing state of RunSharded.
type shardRun struct {
	c        *Coordinator
	s        *shard.Sharding
	inputs   []*lwe.Sample
	exported []*lwe.Sample // boundary values by export id, retained all run
	assign   []*workerConn // shard index → hosting worker (nil = needs a host)
	loads    map[*workerConn]int
	timeout  time.Duration
	ctBytes  int64
	statMu   sync.Mutex
	stats    *Stats
}

// RunSharded executes the netlist by sharded plan replay across the
// connected workers. The first run of a netlist compiles, splits, verifies
// and ships; later runs at the same worker count reuse the workers' shard
// caches and stream only input and boundary ciphertexts. Lost workers are
// recovered by re-installing their shards on the least-loaded survivor and
// replaying through the last completed level.
func (c *Coordinator) RunSharded(nl *circuit.Netlist, inputs []*lwe.Sample) ([]*lwe.Sample, error) {
	if c.ck == nil {
		return nil, fmt.Errorf("%w: run before SetKey", ErrHandshake)
	}
	dim := c.ck.Params.LWEDimension
	if err := exec.CheckRawInputs(inputs, nl.NumInputs, dim); err != nil {
		return nil, err
	}
	c.mu.Lock()
	workers := append([]*workerConn(nil), c.workers...)
	c.mu.Unlock()
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster: no workers connected")
	}
	s, err := c.sharding(nl, len(workers))
	if err != nil {
		return nil, err
	}
	p := s.Plan
	start := time.Now()
	snaps := c.snapMeters()
	ps := p.Stats()
	totalSlots := 0
	for _, w := range workers {
		totalSlots += w.slots
	}
	stats := Stats{
		Workers:    len(workers),
		Slots:      totalSlots,
		Levels:     ps.Levels,
		Gates:      ps.ExecGates,
		Bootstraps: ps.ExecBootstraps,
	}
	timeout := c.JobTimeout
	if timeout <= 0 {
		timeout = DefaultJobTimeout
	}
	r := &shardRun{
		c:        c,
		s:        s,
		inputs:   inputs,
		exported: make([]*lwe.Sample, s.CutEdges),
		assign:   make([]*workerConn, len(s.Shards)),
		loads:    make(map[*workerConn]int),
		timeout:  timeout,
		ctBytes:  int64(c.ck.Params.CiphertextBytes()),
		stats:    &stats,
	}
	// Initial placement: shard i on worker i (Split clamps the shard count
	// to the live worker roster, so the indices line up).
	for i := range s.Shards {
		r.assign[i] = workers[i]
		r.loads[workers[i]]++
	}
	for i := range s.Shards {
		if err := r.ensure(i, -1); err != nil {
			return nil, err
		}
	}
	for l := range p.Levels() {
		if err := r.runLevel(l); err != nil {
			return nil, err
		}
	}

	// Route the retained outputs through the shared collector so constant
	// sentinels and aliasing match every other backend bit for bit.
	refs := p.Outputs()
	byRef := make(map[plan.Ref]*lwe.Sample, len(refs))
	for i, src := range s.Outputs {
		switch {
		case src.Input >= 0:
			byRef[refs[i]] = inputs[src.Input]
		case src.Export >= 0:
			byRef[refs[i]] = r.exported[src.Export]
		}
	}
	outs, err := exec.CollectOutputs(dim, refs, func(ref plan.Ref) *lwe.Sample { return byRef[ref] })
	if err != nil {
		return nil, err
	}
	stats.Elapsed = time.Since(start)
	settleMeters(snaps, &stats)
	c.mu.Lock()
	c.LastStat = stats
	c.totals.ShardRuns++
	c.totals.ShardHits += int64(stats.ShardHits)
	c.totals.ShardMisses += int64(stats.ShardMisses)
	c.totals.ShardReships += int64(stats.ShardReships)
	c.totals.WireBytesSent += stats.WireBytesSent
	c.totals.WireBytesRecv += stats.WireBytesRecv
	c.totals.BoundaryBytes += stats.BoundaryBytes
	c.totals.WorkersLost += int64(stats.WorkersLost)
	c.mu.Unlock()
	return outs, nil
}

// roundTrip performs one request/response exchange on a worker connection
// under a read deadline. The caller owns the connection for the duration
// (per-worker goroutines during a level, the main goroutine otherwise).
func roundTrip(w *workerConn, msg Message, timeout time.Duration) (Message, error) {
	if err := w.enc.Encode(msg); err != nil {
		return Message{}, fmt.Errorf("cluster: send to %s: %w", w.conn.RemoteAddr(), err)
	}
	if err := w.conn.SetReadDeadline(time.Now().Add(timeout)); err != nil {
		return Message{}, fmt.Errorf("cluster: deadline on %s: %w", w.conn.RemoteAddr(), err)
	}
	var rep Message
	err := w.dec.Decode(&rep)
	if cerr := w.conn.SetReadDeadline(time.Time{}); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		return Message{}, fmt.Errorf("cluster: receive from %s: %w", w.conn.RemoteAddr(), err)
	}
	return rep, nil
}

// lose drops a dead worker from the run and the roster; every shard it
// hosted goes back to "needs a host".
func (r *shardRun) lose(w *workerConn) {
	r.c.dropWorker(w)
	delete(r.loads, w)
	for i := range r.assign {
		if r.assign[i] == w {
			r.assign[i] = nil
		}
	}
	r.stats.WorkersLost++
}

// leastLoaded picks the live worker hosting the fewest shards.
func (r *shardRun) leastLoaded() *workerConn {
	r.c.mu.Lock()
	live := append([]*workerConn(nil), r.c.workers...)
	r.c.mu.Unlock()
	var best *workerConn
	for _, w := range live {
		if best == nil || r.loads[w] < r.loads[best] {
			best = w
		}
	}
	return best
}

// fillsFor materializes the router manifest for one shard level: input
// fills read the run inputs, boundary fills read the retained exports (all
// strictly earlier levels, so they are present by construction).
func (r *shardRun) fillsFor(i, level int) []SlotSample {
	fs := r.s.Fills[i][level]
	if len(fs) == 0 {
		return nil
	}
	out := make([]SlotSample, len(fs))
	for k, f := range fs {
		v := &out[k]
		v.Slot = f.Slot
		if f.Input >= 0 {
			v.Val = r.inputs[f.Input]
		} else {
			v.Val = r.exported[f.Export]
		}
	}
	return out
}

// ensure makes shard i resident and caught up through level `through` on
// its assigned worker, electing a new host (least loaded survivor) as
// often as needed. through < 0 means ship only, no replay.
func (r *shardRun) ensure(i, through int) error {
	sh := r.s.Shards[i]
	for {
		w := r.assign[i]
		if w == nil {
			w = r.leastLoaded()
			if w == nil {
				return fmt.Errorf("cluster: no workers left to host shard %d: %w", i, ErrWorkerLost)
			}
			r.assign[i] = w
			r.loads[w]++
		}
		err := r.install(w, i, sh, through)
		if err == nil {
			return nil
		}
		if app, ok := err.(*workerAppError); ok {
			return app
		}
		r.lose(w)
	}
}

// install ships shard sh to w if not cached there and replays it through
// the given level using retained fills.
func (r *shardRun) install(w *workerConn, idx int, sh *shard.Shard, through int) error {
	rep, err := roundTrip(w, Message{ShardInit: &ShardInit{PlanHash: sh.PlanHash, Hash: sh.Hash}}, r.timeout)
	if err != nil {
		return err
	}
	if rep.Error != "" {
		return &workerAppError{msg: rep.Error}
	}
	if rep.ShardReady == nil || rep.ShardReady.Hash != sh.Hash {
		return fmt.Errorf("cluster: worker %s: malformed shard-init reply", w.conn.RemoteAddr())
	}
	r.statMu.Lock()
	if rep.ShardReady.Cached {
		r.stats.ShardHits++
	} else {
		r.stats.ShardMisses++
	}
	if through >= 0 {
		r.stats.ShardReships++
	}
	r.statMu.Unlock()
	if !rep.ShardReady.Cached {
		w0 := w.meter.BytesWritten()
		rep, err = roundTrip(w, Message{ShardData: sh}, r.timeout)
		if err != nil {
			return err
		}
		if rep.Error != "" {
			return &workerAppError{msg: rep.Error}
		}
		if rep.ShardReady == nil || !rep.ShardReady.Cached {
			return fmt.Errorf("cluster: worker %s: shard %s not resident after shipment", w.conn.RemoteAddr(), sh.Hash[:16])
		}
		r.statMu.Lock()
		r.stats.ShardBytesShipped += w.meter.BytesWritten() - w0
		r.statMu.Unlock()
	}
	if through < 0 {
		return nil
	}
	replay := &ShardReplay{Hash: sh.Hash, Through: through}
	for lv := 0; lv <= through; lv++ {
		if len(sh.Levels[lv]) == 0 {
			continue
		}
		replay.Steps = append(replay.Steps, ShardStep{Hash: sh.Hash, Level: lv, Fills: r.fillsFor(idx, lv)})
	}
	// The replay deadline scales with the number of re-executed levels:
	// rebuilding a deep prefix legitimately takes many level-times.
	rep, err = roundTrip(w, Message{Replay: replay}, r.timeout*time.Duration(len(replay.Steps)+1))
	if err != nil {
		return err
	}
	if rep.Error != "" {
		return &workerAppError{msg: rep.Error}
	}
	if rep.StepResult == nil || rep.StepResult.Hash != sh.Hash {
		return fmt.Errorf("cluster: worker %s: malformed replay reply", w.conn.RemoteAddr())
	}
	return nil
}

// step drives one level of one shard and returns its exports.
func (r *shardRun) step(w *workerConn, i, level int) ([]*lwe.Sample, error) {
	sh := r.s.Shards[i]
	fills := r.fillsFor(i, level)
	r.statMu.Lock()
	r.stats.SamplesSent += int64(len(fills))
	r.stats.BytesSent += r.ctBytes * int64(len(fills))
	r.stats.BoundaryBytes += r.ctBytes * int64(len(fills))
	r.statMu.Unlock()
	rep, err := roundTrip(w, Message{Step: &ShardStep{Hash: sh.Hash, Level: level, Fills: fills}}, r.timeout)
	if err != nil {
		return nil, err
	}
	if rep.Error != "" {
		return nil, &workerAppError{msg: rep.Error}
	}
	res := rep.StepResult
	if res == nil || res.Hash != sh.Hash || res.Level != level || len(res.Exports) != len(sh.Exports[level]) {
		return nil, fmt.Errorf("cluster: worker %s: malformed step result for shard %d level %d", w.conn.RemoteAddr(), i, level)
	}
	r.statMu.Lock()
	r.stats.SamplesReceived += int64(len(res.Exports))
	r.stats.BoundaryBytes += r.ctBytes * int64(len(res.Exports))
	r.statMu.Unlock()
	return res.Exports, nil
}

// runLevel drives one global plan level across every shard active in it,
// re-hosting and replaying the shards of any worker lost along the way.
func (r *shardRun) runLevel(l int) error {
	var pending []int
	for i, sh := range r.s.Shards {
		if len(sh.Levels[l]) > 0 {
			pending = append(pending, i)
		}
	}
	for len(pending) > 0 {
		byWorker := make(map[*workerConn][]int)
		for _, i := range pending {
			w := r.assign[i]
			byWorker[w] = append(byWorker[w], i)
		}
		type levelReply struct {
			w      *workerConn
			done   map[int][]*lwe.Sample
			failed []int // shards not completed because the worker died
			err    error
		}
		ch := make(chan levelReply, len(byWorker))
		for w, list := range byWorker {
			// One goroutine per worker: a connection carries one exchange
			// at a time, shards sharing a worker run back to back.
			go func(w *workerConn, list []int) {
				done := make(map[int][]*lwe.Sample, len(list))
				for k, i := range list {
					exports, err := r.step(w, i, l)
					if err != nil {
						if app, ok := err.(*workerAppError); ok {
							ch <- levelReply{w: w, done: done, err: app}
						} else {
							ch <- levelReply{w: w, done: done, failed: list[k:], err: err}
						}
						return
					}
					done[i] = exports
				}
				ch <- levelReply{w: w, done: done}
			}(w, list)
		}
		var next []int
		var appErr error
		var lost []*workerConn
		redo := make(map[int]bool)
		for range byWorker {
			rep := <-ch
			for i, exports := range rep.done {
				for k, id := range r.s.ExportIDs[i][l] {
					r.exported[id] = exports[k]
				}
			}
			if len(rep.failed) > 0 {
				lost = append(lost, rep.w)
				next = append(next, rep.failed...)
				for _, i := range rep.failed {
					redo[i] = true
				}
			} else if rep.err != nil {
				appErr = rep.err
			}
		}
		if appErr != nil {
			return appErr
		}
		for _, w := range lost {
			r.lose(w)
		}
		// Re-host every orphaned shard. Shards that already finished this
		// level (or idle through it) replay through l — their exports are
		// retained, only their runtime state needs rebuilding. Shards still
		// owed this level replay through l-1 and then rejoin the loop.
		for i := range r.assign {
			if r.assign[i] != nil {
				continue
			}
			through := l
			if redo[i] {
				through = l - 1
			}
			if err := r.ensure(i, through); err != nil {
				return err
			}
		}
		pending = next
	}
	return nil
}

// --- worker side ---

// shardEntry pairs a cached shard with its reusable runtime.
type shardEntry struct {
	sh *shard.Shard
	rt *shard.Runtime
}

// shardCache is the worker's cross-run shard cache: least recently
// initialized out first once capacity is hit.
type shardCache struct {
	cap   int
	ents  map[string]*shardEntry
	order []string // LRU order, most recent last
}

func newShardCache(capacity int) *shardCache {
	if capacity < 1 {
		capacity = DefaultShardCache
	}
	return &shardCache{cap: capacity, ents: make(map[string]*shardEntry)}
}

func (sc *shardCache) touch(hash string) {
	for k, h := range sc.order {
		if h == hash {
			sc.order = append(sc.order[:k], sc.order[k+1:]...)
			break
		}
	}
	sc.order = append(sc.order, hash)
}

func (sc *shardCache) get(hash string) *shardEntry {
	ent := sc.ents[hash]
	if ent != nil {
		sc.touch(hash)
	}
	return ent
}

func (sc *shardCache) put(hash string, ent *shardEntry) {
	sc.ents[hash] = ent
	sc.touch(hash)
	for len(sc.order) > sc.cap {
		evict := sc.order[0]
		sc.order = sc.order[1:]
		delete(sc.ents, evict)
	}
}

func (w *Worker) handleShardInit(sc *shardCache, init *ShardInit) Message {
	ent := sc.get(init.Hash)
	if ent == nil {
		return Message{ShardReady: &ShardReady{Hash: init.Hash, Cached: false}}
	}
	ent.rt.Reset()
	return Message{ShardReady: &ShardReady{Hash: init.Hash, Cached: true}}
}

func (w *Worker) handleShardData(sc *shardCache, sh *shard.Shard, dim int) Message {
	sc.put(sh.Hash, &shardEntry{sh: sh, rt: shard.NewRuntime(sh, dim)})
	return Message{ShardReady: &ShardReady{Hash: sh.Hash, Cached: true}}
}

// applyStep installs a step's fills and executes the level.
func applyStep(ent *shardEntry, engines []*gate.Engine, st *ShardStep) ([]*lwe.Sample, error) {
	for _, f := range st.Fills {
		if err := ent.rt.SetRemote(f.Slot, f.Val); err != nil {
			return nil, err
		}
	}
	return ent.rt.RunLevel(engines, st.Level)
}

func (w *Worker) handleStep(sc *shardCache, engines []*gate.Engine, st *ShardStep) Message {
	ent := sc.get(st.Hash)
	if ent == nil {
		return Message{Error: fmt.Sprintf("shard %.16s… not resident (evicted? raise -shard-cache)", st.Hash)}
	}
	exports, err := applyStep(ent, engines, st)
	if err != nil {
		return Message{Error: err.Error()}
	}
	return Message{StepResult: &ShardStepResult{Hash: st.Hash, Level: st.Level, Exports: exports}}
}

func (w *Worker) handleReplay(sc *shardCache, engines []*gate.Engine, rp *ShardReplay) Message {
	ent := sc.get(rp.Hash)
	if ent == nil {
		return Message{Error: fmt.Sprintf("shard %.16s… not resident for replay", rp.Hash)}
	}
	ent.rt.Reset()
	for i := range rp.Steps {
		if _, err := applyStep(ent, engines, &rp.Steps[i]); err != nil {
			return Message{Error: fmt.Sprintf("replay level %d: %v", rp.Steps[i].Level, err)}
		}
	}
	return Message{StepResult: &ShardStepResult{Hash: rp.Hash, Level: rp.Through}}
}
